#!/bin/sh
# Hot-path benchmark runner: exercises the end-to-end run benchmarks
# plus the pcm/thermal/cluster/sim microbenchmarks several times and
# records the samples (with per-benchmark medians) as JSON.
#
# Usage: scripts/bench.sh [count] [out.json]
#
#   count     repetitions per benchmark (go test -count; default 5)
#   out.json  output path (default BENCH_PR10.json in the repo root)
#
# Medians over several -count repetitions are the comparison currency:
# single runs on shared machines swing tens of percent. Compare the
# committed BENCH_PR10.json against a fresh run on the same host, not
# across hosts. The BenchmarkSessionStep median vs BenchmarkRun is the
# session-seam overhead bound (acceptance: ≤5%).
#
# A/B baseline: unless BENCH_NO_BASE=1, the shared benchmarks also run
# in a scratch worktree of $BASE (default: HEAD) and land in the same
# JSON under BenchmarkBase* names, so a working-tree change can be
# compared against the commit it started from on the same host in the
# same sitting.
set -eu

cd "$(dirname "$0")/.."

COUNT=${1:-5}
OUT=${2:-BENCH_PR10.json}
TMP=$(mktemp)
BASETREE=
cleanup() {
    rm -f "$TMP"
    if [ -n "$BASETREE" ]; then
        git worktree remove --force "$BASETREE" >/dev/null 2>&1 || true
    fi
}
trap cleanup EXIT

run_bench() {
    # run_bench <package> <pattern> <benchtime>
    echo "== $1 ($2)" >&2
    go test -run '^$' -bench "$2" -benchtime "$3" -count "$COUNT" "$1" >>"$TMP"
}

run_bench .                   '^(BenchmarkRun|BenchmarkSessionStep|BenchmarkRunTraced|BenchmarkRunStreamed|BenchmarkRunFullObservability)$'            20x
run_bench .                   '^BenchmarkAblationStudy(Cached|Uncached)$'                            5x
run_bench .                   '^BenchmarkAdaptiveGVStudy(Cached|Uncached)$'                          3x
run_bench ./internal/pcm/     'BenchmarkPackApply|BenchmarkEstimatorUpdate|BenchmarkCurveProjection' 2000000x
run_bench ./internal/thermal/ 'BenchmarkNodeStep'                                                    200000x
run_bench ./internal/cluster/ 'BenchmarkClusterStepWorkers'                                          500x

# FleetStep scaling: the worker-count comparison is sampled
# round-robin — one -count=1 invocation per variant per round — rather
# than as one consecutive block per variant. Host throughput drifts
# over tens of seconds on shared machines; consecutive sampling folds
# that drift into the variant comparison, interleaving spreads it
# evenly so the per-variant medians are comparable.
fleetstep() {
    # fleetstep <n> <benchtime> <rounds>
    echo "== ./internal/cluster/ (BenchmarkFleetStep n=$1, $3 interleaved rounds)" >&2
    r=0
    while [ "$r" -lt "$3" ]; do
        for w in 1 4 8; do
            go test -run '^$' -bench "^BenchmarkFleetStep\$/^n=$1\$/^workers=$w\$" \
                -benchtime "$2" -count 1 ./internal/cluster/ >>"$TMP"
        done
        r=$((r + 1))
    done
}

fleetstep 1000    500x "$COUNT"
fleetstep 10000   100x "$COUNT"
fleetstep 100000  20x  $((COUNT + 2))
fleetstep 1000000 3x   3

run_bench ./internal/sim/     'BenchmarkPeriodicDispatch|BenchmarkManyOneShots'                      100x

# A/B leg: the same shared benchmarks at $BASE, renamed Benchmark ->
# BenchmarkBase so the aggregator files them separately. FleetStep only
# exists in trees that have the SoA store, so the baseline sticks to
# the benchmarks both sides define.
if [ "${BENCH_NO_BASE:-0}" != 1 ] && git rev-parse --verify -q "${BASE:-HEAD}" >/dev/null; then
    BASETREE=$(mktemp -d)
    rmdir "$BASETREE"
    git worktree add --detach "$BASETREE" "${BASE:-HEAD}" >/dev/null
    echo "== baseline @ $(git rev-parse --short "${BASE:-HEAD}")" >&2
    BASETMP=$(mktemp)
    (cd "$BASETREE" && \
        go test -run '^$' -bench 'BenchmarkClusterStepWorkers' -benchtime 500x -count "$COUNT" ./internal/cluster/ && \
        go test -run '^$' -bench 'BenchmarkNodeStep' -benchtime 200000x -count "$COUNT" ./internal/thermal/) >"$BASETMP"
    sed 's/^Benchmark/BenchmarkBase/' "$BASETMP" >>"$TMP"
    rm -f "$BASETMP"
fi

awk -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    n = samples[name]++
    val[name, n] = ns
    lastb[name] = bop
    lasta[name] = allocs
    if (!(name in order)) { order[name] = ++norder; names[norder] = name }
}
END {
    printf "{\n  \"count\": %d,\n  \"benchmarks\": [\n", count
    for (k = 1; k <= norder; k++) {
        name = names[k]
        n = samples[name]
        # insertion sort the samples for the median
        for (i = 0; i < n; i++) sorted[i] = val[name, i] + 0
        for (i = 1; i < n; i++) {
            v = sorted[i]
            for (j = i - 1; j >= 0 && sorted[j] > v; j--) sorted[j + 1] = sorted[j]
            sorted[j + 1] = v
        }
        if (n % 2) median = sorted[int(n / 2)]
        else median = (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        printf "    {\"name\": \"%s\", \"median_ns_op\": %g, \"samples_ns_op\": [", name, median
        for (i = 0; i < n; i++) printf "%s%g", (i ? ", " : ""), val[name, i] + 0
        printf "]"
        if (lastb[name] != "") printf ", \"b_op\": %s, \"allocs_op\": %s", lastb[name], lasta[name]
        printf "}%s\n", (k < norder ? "," : "")
    }
    printf "  ]\n}\n"
}' "$TMP" >"$OUT"

echo "wrote $OUT" >&2
