#!/bin/sh
# Hot-path benchmark runner: exercises the end-to-end run benchmarks
# plus the pcm/thermal/cluster/sim microbenchmarks several times and
# records the samples (with per-benchmark medians) as JSON.
#
# Usage: scripts/bench.sh [count] [out.json]
#
#   count     repetitions per benchmark (go test -count; default 5)
#   out.json  output path (default BENCH_PR6.json in the repo root)
#
# Medians over several -count repetitions are the comparison currency:
# single runs on shared machines swing tens of percent. Compare the
# committed BENCH_PR6.json against a fresh run on the same host, not
# across hosts.
set -eu

cd "$(dirname "$0")/.."

COUNT=${1:-5}
OUT=${2:-BENCH_PR6.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

run_bench() {
    # run_bench <package> <pattern> <benchtime>
    echo "== $1 ($2)" >&2
    go test -run '^$' -bench "$2" -benchtime "$3" -count "$COUNT" "$1" >>"$TMP"
}

run_bench .                   '^(BenchmarkRun|BenchmarkRunTraced|BenchmarkRunStreamed|BenchmarkRunFullObservability)$'                                  20x
run_bench .                   '^BenchmarkAblationStudy(Cached|Uncached)$'                            5x
run_bench .                   '^BenchmarkAdaptiveGVStudy(Cached|Uncached)$'                          3x
run_bench ./internal/pcm/     'BenchmarkPackApply|BenchmarkEstimatorUpdate|BenchmarkCurveProjection' 2000000x
run_bench ./internal/thermal/ 'BenchmarkNodeStep'                                                    200000x
run_bench ./internal/cluster/ 'BenchmarkClusterStepWorkers'                                          500x
run_bench ./internal/sim/     'BenchmarkPeriodicDispatch|BenchmarkManyOneShots'                      100x

awk -v count="$COUNT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    n = samples[name]++
    val[name, n] = ns
    lastb[name] = bop
    lasta[name] = allocs
    if (!(name in order)) { order[name] = ++norder; names[norder] = name }
}
END {
    printf "{\n  \"count\": %d,\n  \"benchmarks\": [\n", count
    for (k = 1; k <= norder; k++) {
        name = names[k]
        n = samples[name]
        # insertion sort the samples for the median
        for (i = 0; i < n; i++) sorted[i] = val[name, i] + 0
        for (i = 1; i < n; i++) {
            v = sorted[i]
            for (j = i - 1; j >= 0 && sorted[j] > v; j--) sorted[j + 1] = sorted[j]
            sorted[j + 1] = v
        }
        if (n % 2) median = sorted[int(n / 2)]
        else median = (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        printf "    {\"name\": \"%s\", \"median_ns_op\": %g, \"samples_ns_op\": [", name, median
        for (i = 0; i < n; i++) printf "%s%g", (i ? ", " : ""), val[name, i] + 0
        printf "]"
        if (lastb[name] != "") printf ", \"b_op\": %s, \"allocs_op\": %s", lastb[name], lasta[name]
        printf "}%s\n", (k < norder ? "," : "")
    }
    printf "  ]\n}\n"
}' "$TMP" >"$OUT"

echo "wrote $OUT" >&2
