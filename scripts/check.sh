#!/bin/sh
# Repo-wide verification: formatting, vet, build, tests, and a race
# pass over the concurrency-bearing packages. Run from the repo root
# (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== vmtlint (strict: stale allows are failures)"
go run ./cmd/vmtlint -strict ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== golden + property harness (short mode)"
go test -short -count=1 \
    -run 'TestGolden|Property|BitIdentical' \
    . ./internal/pcm/ ./internal/thermal/ ./internal/cluster/

echo "== spec round-trip (encode -> decode -> execute)"
go test -count=1 -run 'TestSpecRoundTripExecute|TestSpecJSONRoundTrip' \
    . ./internal/experiment/

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/telemetry/ ./internal/cliobs/ ./internal/experiment/ \
    ./internal/sched/ ./internal/fault/ \
    -run 'Test' -count=1
go test -race ./internal/cluster/ \
    -run 'TestStepPhysicsWorkersBitIdentical|TestStepAggregates|TestEnergyConservationRandomJobs' -count=1
go test -race . -run 'TestRunMany|TestInstrumented|TestDefaultObservability|TestPhysicsWorkers|TestFaultRunBitIdentical|TestCacheCorruptionQuarantine' -count=1

echo "ok"
