#!/bin/sh
# Repo-wide verification: formatting, vet, build, tests, and a race
# pass over the concurrency-bearing packages. Run from the repo root
# (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== vmtlint (strict: stale allows are failures; warm cache in .vmtlint-cache)"
go run ./cmd/vmtlint -strict -cache .vmtlint-cache -cachestats ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== golden + property harness (short mode)"
go test -short -count=1 \
    -run 'TestGolden|Property|BitIdentical' \
    . ./internal/pcm/ ./internal/thermal/ ./internal/cluster/

echo "== differential oracle (SoA fleet vs scalar Node.Step, bit-exact)"
go test -count=1 -run 'TestFleetOracle|TestFleetVecKernel' ./internal/thermal/

echo "== spec round-trip (encode -> decode -> execute)"
go test -count=1 -run 'TestSpecRoundTripExecute|TestSpecJSONRoundTrip' \
    . ./internal/experiment/

echo "== stepped-vs-monolith equivalence (session golden stage)"
# A session stepped tick-by-tick and in ragged chunks must be
# bit-identical to the monolithic Run — the contract that lets Run be a
# thin wrapper over Session without re-blessing any golden fixture.
go test -count=1 \
    -run 'TestSessionStepToCompletionMatchesRun|TestSessionStepped|TestSessionHorizonBoundsSource' .

echo "== go test -race (concurrency-bearing packages)"
go test -race ./internal/telemetry/ ./internal/cliobs/ ./internal/experiment/ \
    ./internal/sched/ ./internal/fault/ ./internal/topology/ \
    -run 'Test' -count=1
go test -race -short ./internal/cluster/ \
    -run 'TestStepPhysicsWorkersBitIdentical|TestStepAggregates|TestEnergyConservationRandomJobs|TestFleetStoreInvariants' -count=1
go test -race ./internal/thermal/ \
    -run 'TestFleetOracleChunkedStepping|TestFleetViewAliasesState|TestSnapshotRoundTripBitIdentical' -count=1
go test -race . -run 'TestRunMany|TestInstrumented|TestDefaultObservers|TestDefaultObservability|TestPhysicsWorkers|TestFaultRunBitIdentical|TestCorrelatedFault|TestCacheCorruptionQuarantine|TestStreamMemoryIsBounded|TestSession' -count=1
go test -race ./internal/workload/ -count=1

echo "== vmtdiff self-check (determinism, end to end)"
# Two identical runs must diff clean; a one-value mutation must be
# pinpointed at its exact tick with exit status 1.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/vmtsim" ./cmd/vmtsim
go build -o "$tmp/vmtdiff" ./cmd/vmtdiff
"$tmp/vmtsim" -servers 10 -baseline=false -fleet-log "$tmp/a.ndjson" >/dev/null
"$tmp/vmtsim" -servers 10 -baseline=false -fleet-log "$tmp/b.ndjson" >/dev/null
"$tmp/vmtdiff" "$tmp/a.ndjson" "$tmp/b.ndjson" >/dev/null
awk 'NR==100 { sub(/"cooling_load_w":[0-9.eE+-]+/, "\"cooling_load_w\":1.5") } { print }' \
    "$tmp/a.ndjson" > "$tmp/c.ndjson"
status=0
"$tmp/vmtdiff" "$tmp/a.ndjson" "$tmp/c.ndjson" > "$tmp/diff.out" || status=$?
if [ "$status" -ne 1 ]; then
    echo "vmtdiff on a mutated stream exited $status, want 1" >&2
    exit 1
fi
if ! grep -q 'tick 100.*cooling_load_w' "$tmp/diff.out"; then
    echo "vmtdiff did not pinpoint the mutated tick:" >&2
    cat "$tmp/diff.out" >&2
    exit 1
fi

echo "== vmtlint warm cache (answers every package from disk)"
# The strict run above populated .vmtlint-cache; an immediate re-run
# over the unchanged tree must answer everything from disk without
# type-checking a single package.
warmstats=$(go run ./cmd/vmtlint -strict -cache .vmtlint-cache -cachestats ./... 2>&1 >/dev/null)
case "$warmstats" in
*"0 misses, 0 packages type-checked"*) ;;
*)
    echo "warm vmtlint run re-type-checked packages: $warmstats" >&2
    exit 1
    ;;
esac

echo "== kernelparity self-check (one-token kernel drift is pinpointed)"
# Flip a single token in stepGroup's mirror lane body and demand
# kernelparity fail the build naming the exact divergent position —
# the guarantee the scalar/SoA bit-identity story rests on.
mutdir="$tmp/kernelmut"
mkdir -p "$mutdir"
tar cf - --exclude ./.git --exclude ./.vmtlint-cache --exclude ./results \
    --exclude ./vmt.test . | (cd "$mutdir" && tar xf -)
awk '!done && sub(/toWax \* subSec/, "toRoom * subSec") { done = 1 } { print }' \
    internal/thermal/fleet.go > "$mutdir/internal/thermal/fleet.go"
mutline=$(grep -n 'toRoom \* subSec' "$mutdir/internal/thermal/fleet.go" | head -1 | cut -d: -f1)
go build -o "$tmp/vmtlint" ./cmd/vmtlint
status=0
(cd "$mutdir" && "$tmp/vmtlint" ./internal/thermal/) > "$tmp/kernel.out" 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "vmtlint on a mutated kernel exited $status, want 1:" >&2
    cat "$tmp/kernel.out" >&2
    exit 1
fi
if ! grep -q "internal/thermal/fleet.go:$mutline: \[kernelparity\].*diverges from oracle" "$tmp/kernel.out"; then
    echo "kernelparity did not pinpoint the mutated line $mutline:" >&2
    cat "$tmp/kernel.out" >&2
    exit 1
fi

echo "ok"
