package vmt

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vmt/internal/stats"
)

// resultJSON is the serialized form of a Result: configuration echo
// plus the sampled series. Grids are included only when recorded.
type resultJSON struct {
	Policy       Policy        `json:"policy"`
	Servers      int           `json:"servers"`
	GV           float64       `json:"gv,omitempty"`
	WaxThreshold float64       `json:"wax_threshold,omitempty"`
	StepSeconds  float64       `json:"step_seconds"`
	Seed         uint64        `json:"seed"`
	InletTempC   float64       `json:"inlet_temp_c"`
	InletStdevC  float64       `json:"inlet_stdev_c,omitempty"`
	TaskArrivals uint64        `json:"task_arrivals,omitempty"`
	TaskDrops    uint64        `json:"task_drops,omitempty"`
	Series       seriesJSONMap `json:"series"`
	AirTempGrid  [][]float64   `json:"air_temp_grid,omitempty"`
	MeltFracGrid [][]float64   `json:"melt_frac_grid,omitempty"`
}

type seriesJSONMap map[string][]float64

// WriteJSON serializes the result for external tooling (plotting,
// archiving). The format is stable: series are keyed by name with the
// sampling step recorded once.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Policy:       r.Config.Policy,
		Servers:      r.Config.Servers,
		GV:           r.Config.GV,
		WaxThreshold: r.Config.WaxThreshold.Value(),
		StepSeconds:  r.Config.Step.Seconds(),
		Seed:         r.Config.Seed,
		InletTempC:   r.Config.InletTempC.Value(),
		InletStdevC:  r.Config.InletStdevC,
		TaskArrivals: r.TaskArrivals,
		TaskDrops:    r.TaskDrops,
		Series:       seriesJSONMap{},
		AirTempGrid:  r.AirTempGrid,
		MeltFracGrid: r.MeltFracGrid,
	}
	add := func(name string, s *stats.Series) {
		if s != nil {
			out.Series[name] = s.Values
		}
	}
	add("cooling_load_w", r.CoolingLoadW)
	add("total_power_w", r.TotalPowerW)
	add("mean_air_temp_c", r.MeanAirTempC)
	add("hot_group_temp_c", r.HotGroupTempC)
	add("hot_group_size", r.HotGroupSize)
	add("mean_melt_frac", r.MeanMeltFrac)
	add("wax_energy_j", r.WaxEnergyJ)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadResultJSON loads a serialized result. Only the series and the
// identifying configuration fields round-trip; the full Config (trace
// spec, hardware spec) is not reconstructed.
func ReadResultJSON(r io.Reader) (*Result, error) {
	var in resultJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("vmt: decoding result: %w", err)
	}
	if in.StepSeconds <= 0 {
		return nil, fmt.Errorf("vmt: result has non-positive step")
	}
	step := time.Duration(in.StepSeconds * float64(time.Second))
	mk := func(name string) *stats.Series {
		vals, ok := in.Series[name]
		if !ok {
			return nil
		}
		return &stats.Series{Start: step, Step: step, Values: vals}
	}
	res := &Result{
		Config: Config{
			Policy:       in.Policy,
			Servers:      in.Servers,
			GV:           in.GV,
			WaxThreshold: Some(in.WaxThreshold),
			Step:         step,
			Seed:         in.Seed,
			InletTempC:   Some(in.InletTempC),
			InletStdevC:  in.InletStdevC,
		},
		CoolingLoadW:  mk("cooling_load_w"),
		TotalPowerW:   mk("total_power_w"),
		MeanAirTempC:  mk("mean_air_temp_c"),
		HotGroupTempC: mk("hot_group_temp_c"),
		HotGroupSize:  mk("hot_group_size"),
		MeanMeltFrac:  mk("mean_melt_frac"),
		WaxEnergyJ:    mk("wax_energy_j"),
		AirTempGrid:   in.AirTempGrid,
		MeltFracGrid:  in.MeltFracGrid,
		TaskArrivals:  in.TaskArrivals,
		TaskDrops:     in.TaskDrops,
	}
	if res.CoolingLoadW == nil {
		return nil, fmt.Errorf("vmt: result missing cooling_load_w series")
	}
	return res, nil
}
