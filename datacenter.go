package vmt

import (
	"fmt"
	"math"

	"vmt/internal/chiller"
	"vmt/internal/stats"
)

// Facility composes cluster simulations into a datacenter served by
// one cooling plant (Section IV-A: servers are divided into
// homogeneous clusters; the paper scales cluster results linearly to
// a 25 MW facility — this type performs the composition explicitly,
// allowing heterogeneous clusters).
type Facility struct {
	// Clusters are the member cluster configurations, simulated
	// independently (job scheduling is per-cluster in the paper).
	Clusters []Config
	// PlantMarginFrac sizes the cooling plant above the facility peak
	// when AutoSizePlant is used (e.g. 0.05 = 5% engineering margin).
	PlantMarginFrac float64
}

// FacilityResult aggregates a facility run.
type FacilityResult struct {
	// PerCluster holds each member cluster's result.
	PerCluster []*Result
	// CoolingLoadW is the summed facility cooling load.
	CoolingLoadW *stats.Series
	// TotalPowerW is the summed IT power.
	TotalPowerW *stats.Series
	// Plant is the cooling plant the facility was evaluated against.
	Plant chiller.Plant
	// PlantEval is the plant's evaluation over the facility load:
	// energy, peak electrical draw, and any capacity violations.
	PlantEval chiller.Evaluation
}

// RunFacility simulates every member cluster (in parallel), sums the
// cooling load, and evaluates it against the given plant. An unset
// plant auto-sizes to the facility peak plus PlantMarginFrac.
func RunFacility(f Facility, plantOpt Optional[chiller.Plant]) (*FacilityResult, error) {
	if len(f.Clusters) == 0 {
		return nil, fmt.Errorf("vmt: facility needs at least one cluster")
	}
	results, err := RunMany(f.Clusters)
	if err != nil {
		return nil, err
	}
	total := results[0].CoolingLoadW
	power := results[0].TotalPowerW
	sum := &stats.Series{Start: total.Start, Step: total.Step,
		Values: append([]float64(nil), total.Values...)}
	pw := &stats.Series{Start: power.Start, Step: power.Step,
		Values: append([]float64(nil), power.Values...)}
	for _, r := range results[1:] {
		if r.CoolingLoadW.Len() != sum.Len() || r.CoolingLoadW.Step != sum.Step {
			return nil, fmt.Errorf("vmt: facility clusters must share a trace length and step")
		}
		for i, v := range r.CoolingLoadW.Values {
			sum.Values[i] += v
		}
		for i, v := range r.TotalPowerW.Values {
			pw.Values[i] += v
		}
	}
	plant := plantOpt.Value()
	if !plantOpt.IsSet() {
		plant, err = chiller.SizeForPeak(sum, f.PlantMarginFrac)
		if err != nil {
			return nil, err
		}
	}
	eval, err := plant.Evaluate(sum)
	if err != nil {
		return nil, err
	}
	return &FacilityResult{
		PerCluster:   results,
		CoolingLoadW: sum,
		TotalPowerW:  pw,
		Plant:        plant,
		PlantEval:    eval,
	}, nil
}

// OversubscriptionStudy validates the paper's headline oversubscription
// claim *in simulation* rather than by arithmetic: size a cooling
// plant for a round-robin fleet, add the extra servers the measured
// VMT reduction promises room for, and check the enlarged VMT fleet
// still fits under the original plant.
type OversubscriptionStudy struct {
	// BaselineServers and ExtraServers describe the fleets.
	BaselineServers, ExtraServers int
	// MeasuredReductionPct is the VMT peak reduction at the baseline
	// scale that justified the expansion.
	MeasuredReductionPct float64
	// PlantCapacityW is the budget (the baseline peak).
	PlantCapacityW float64
	// VMTPeakW is the enlarged VMT fleet's peak cooling load.
	VMTPeakW float64
	// FitsBudget reports whether the enlarged fleet stayed within the
	// plant at every sample.
	FitsBudget bool
	// Violations counts samples over budget (0 when FitsBudget).
	Violations int
	// HeadroomPct is (budget − VMT peak)/budget × 100; negative when
	// over budget.
	HeadroomPct float64
}

// RunOversubscriptionStudy measures the VMT reduction at the given
// scale, grows the fleet by the implied oversubscription factor
// (derated by safetyFrac, e.g. 0.1 keeps 10% of the promise in
// reserve), and validates the enlarged fleet against the baseline
// cooling budget.
func RunOversubscriptionStudy(servers int, policy Policy, gv, safetyFrac float64) (OversubscriptionStudy, error) {
	if safetyFrac < 0 || safetyFrac >= 1 {
		return OversubscriptionStudy{}, fmt.Errorf("vmt: safety fraction %v out of [0,1)", safetyFrac)
	}
	baseline, err := Run(BaselineScenario(servers))
	if err != nil {
		return OversubscriptionStudy{}, err
	}
	budget := baseline.PeakCoolingW()
	vmtSame, err := Run(Scenario(servers, policy, gv))
	if err != nil {
		return OversubscriptionStudy{}, err
	}
	reduction := (budget - vmtSame.PeakCoolingW()) / budget * 100
	r := reduction / 100 * (1 - safetyFrac)
	extra := int(math.Floor((1/(1-r) - 1) * float64(servers)))
	enlarged, err := Run(Scenario(servers+extra, policy, gv))
	if err != nil {
		return OversubscriptionStudy{}, err
	}
	study := OversubscriptionStudy{
		BaselineServers:      servers,
		ExtraServers:         extra,
		MeasuredReductionPct: reduction,
		PlantCapacityW:       budget,
		VMTPeakW:             enlarged.PeakCoolingW(),
	}
	for _, v := range enlarged.CoolingLoadW.Values {
		if v > budget {
			study.Violations++
		}
	}
	study.FitsBudget = study.Violations == 0
	study.HeadroomPct = (budget - study.VMTPeakW) / budget * 100
	return study, nil
}
