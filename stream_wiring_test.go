package vmt

// Wiring tests for the streaming observability layer: a solo Run feeds
// the windowed time-series, publishes fleet snapshots, and bills band
// profiles — all strictly observationally (the bit-identity property
// test in telemetry_invariant_test.go proves the "never perturbs"
// half).

import (
	"bytes"
	"testing"

	"vmt/internal/telemetry"
)

func TestRunFeedsStreamAndFleet(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewNDJSONSink(&buf)
	cfg := Scenario(8, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Stream = telemetry.NewStream(telemetry.StreamOptions{WindowTicks: 16, Sink: sink})
	cfg.Fleet = telemetry.NewFleetPublisher(nil)
	cfg.ProfileBands = true

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Streamed series: every sealed window reached the sink, and the
	// run-end flush sealed the trailing partial.
	recs, err := telemetry.ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[string]uint64{}
	for _, rec := range recs {
		bySeries[rec.Series] += rec.Count
	}
	nTicks := uint64(res.CoolingLoadW.Len())
	for _, name := range []string{
		"cooling_load_w", "total_power_w", "mean_air_temp_c",
		"mean_melt_frac", "max_cpu_temp_c", "hot_group_size",
	} {
		if bySeries[name] != nTicks {
			t.Errorf("series %s streamed %d observations, want %d", name, bySeries[name], nTicks)
		}
	}

	// The streamed aggregates describe the same numbers the Result
	// series hold: the peak cooling load is some window's max.
	peak := res.PeakCoolingW()
	foundPeak := false
	for _, rec := range recs {
		if rec.Series == "cooling_load_w" && rec.Max == peak {
			foundPeak = true
		}
	}
	if !foundPeak {
		t.Errorf("no cooling_load_w window carries the run's peak %g", peak)
	}

	// Fleet live view: the final snapshot covers every server, tagged
	// with hot/cold groups, at the last sample tick.
	snap := cfg.Fleet.Load()
	if snap == nil {
		t.Fatal("no fleet snapshot published")
	}
	if snap.Tick != int64(nTicks) {
		t.Errorf("final fleet tick = %d, want %d", snap.Tick, nTicks)
	}
	if len(snap.Servers) != cfg.Servers {
		t.Fatalf("fleet snapshot has %d servers, want %d", len(snap.Servers), cfg.Servers)
	}
	groups := map[string]int{}
	for i, sv := range snap.Servers {
		if sv.ID != i {
			t.Fatalf("server %d has ID %d", i, sv.ID)
		}
		groups[sv.Group]++
	}
	if groups["hot"] == 0 || groups["cold"] == 0 {
		t.Errorf("grouping policy published groups %v, want hot and cold", groups)
	}

	// Band profiling billed the bands and its own overhead.
	for _, name := range []string{
		"band_wall_ns_physics", "band_spans_schedule", "band_spans_sample", "profiler_self_ns",
	} {
		if cfg.Metrics.Counter(name).Value() == 0 {
			t.Errorf("counter %s stayed zero", name)
		}
	}
	if got := cfg.Metrics.Counter("band_spans_physics").Value(); got != nTicks {
		t.Errorf("band_spans_physics = %d, want %d", got, nTicks)
	}
}

// TestDefaultObserversApplyToRuns exercises the extended process-wide
// fallback (stream/fleet/profiling), including that per-Config fields
// take precedence.
func TestDefaultObserversApplyToRuns(t *testing.T) {
	stream := telemetry.NewStream(telemetry.StreamOptions{WindowTicks: 8})
	fleet := telemetry.NewFleetPublisher(nil)
	reg := telemetry.NewRegistry()
	SetDefaultObservers(Observers{Metrics: reg, Stream: stream, Fleet: fleet, ProfileBands: true})
	defer SetDefaultObservers(Observers{})

	cfg := BaselineScenario(4)
	cfg.Trace = smallTrace()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(stream.Snapshot()) == 0 {
		t.Fatal("default stream saw no windows")
	}
	if fleet.Load() == nil {
		t.Fatal("default fleet publisher saw no snapshots")
	}
	if reg.Counter("band_spans_physics").Value() == 0 {
		t.Fatal("default ProfileBands did not profile")
	}

	// A per-Config stream takes precedence over the default.
	own := telemetry.NewStream(telemetry.StreamOptions{WindowTicks: 8})
	cfg.Stream = own
	before := len(stream.Snapshot())
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(own.Snapshot()) == 0 {
		t.Fatal("per-config stream ignored")
	}
	if len(stream.Snapshot()) != before {
		t.Fatal("default stream should not see a run with its own stream")
	}
}
