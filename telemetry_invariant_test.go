package vmt

// The telemetry contract: instrumentation observes, it never perturbs.
// These tests prove it by running the same configuration with and
// without full telemetry (recording tracer + metrics registry) and
// requiring the exported results to be byte-identical.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"vmt/internal/telemetry"
)

// exportBytes serializes a result through the stable export format.
func exportBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestInstrumentedRunIsBitIdentical(t *testing.T) {
	for _, policy := range []Policy{PolicyRoundRobin, PolicyVMTTA, PolicyVMTWA} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			t.Parallel()
			gv := 0.0
			if policy != PolicyRoundRobin {
				gv = 22
			}
			cfg := Scenario(10, policy, gv)
			cfg.Trace = smallTrace()

			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			instrumented := cfg
			rec := telemetry.NewRecorder()
			reg := telemetry.NewRegistry()
			instrumented.Tracer = rec
			instrumented.Metrics = reg
			traced, err := Run(instrumented)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := exportBytes(t, traced), exportBytes(t, plain); !bytes.Equal(got, want) {
				t.Fatalf("instrumented run diverged from uninstrumented run\ninstrumented: %s\nplain: %s",
					got, want)
			}

			// The instrumentation actually observed something.
			if rec.Len() == 0 {
				t.Fatal("tracer recorded no events")
			}
			snap := reg.Snapshot()
			counters := map[string]uint64{}
			for _, c := range snap.Counters {
				counters[c.Name] = c.Value
			}
			for _, name := range []string{"sim_events_dispatched", "sched_placements", "run_ticks"} {
				if counters[name] == 0 {
					t.Fatalf("counter %s stayed zero: %+v", name, snap.Counters)
				}
			}
			if len(snap.Histograms) == 0 || snap.Histograms[0].Count == 0 {
				t.Fatal("melt-fraction histogram recorded nothing")
			}
		})
	}
}

// TestInstrumentedStreamedRunIsBitIdentical extends the contract to
// the full streaming layer: a run carrying every instrument at once —
// metrics registry, span tracer, windowed stream with an NDJSON sink,
// fleet publisher with an NDJSON log, and band profiling — must export
// byte-identically to a bare run, at every physics worker count the
// determinism invariant covers.
func TestInstrumentedStreamedRunIsBitIdentical(t *testing.T) {
	base := Scenario(10, PolicyVMTTA, 22)
	base.Trace = smallTrace()

	plainCfg := base
	plainCfg.PhysicsWorkers = 1
	plain, err := Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := exportBytes(t, plain)

	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			var winBuf, fleetBuf bytes.Buffer
			cfg := base
			cfg.PhysicsWorkers = workers
			cfg.Metrics = telemetry.NewRegistry()
			cfg.Tracer = telemetry.NewRecorder()
			cfg.Stream = telemetry.NewStream(telemetry.StreamOptions{
				WindowTicks: 32,
				Sink:        telemetry.NewNDJSONSink(&winBuf),
			})
			cfg.Fleet = telemetry.NewFleetPublisher(telemetry.NewNDJSONFleetLog(&fleetBuf))
			cfg.ProfileBands = true

			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := exportBytes(t, res); !bytes.Equal(got, want) {
				t.Fatalf("fully instrumented streamed run (workers=%d) diverged from bare run", workers)
			}
			// Every instrument actually observed the run.
			if winBuf.Len() == 0 || fleetBuf.Len() == 0 {
				t.Fatalf("streams are empty: windows=%dB fleet=%dB", winBuf.Len(), fleetBuf.Len())
			}
			if cfg.Metrics.Counter("band_spans_physics").Value() == 0 {
				t.Fatal("band profiler recorded no physics spans")
			}
		})
	}
}

// TestStreamMemoryIsBoundedOverLongRun pins the bounded-memory claim:
// a full-day run seals an order of magnitude more windows than the
// ring retains, every one reaches the sink, and the in-memory snapshot
// never exceeds the ring size.
func TestStreamMemoryIsBoundedOverLongRun(t *testing.T) {
	const windowTicks, ringWindows = 4, 8
	var buf bytes.Buffer
	cfg := BaselineScenario(5)
	cfg.Trace = smallTrace() // one paper day: 1440 one-minute ticks
	sink := telemetry.NewNDJSONSink(&buf)
	cfg.Stream = telemetry.NewStream(telemetry.StreamOptions{
		WindowTicks: windowTicks,
		RingWindows: ringWindows,
		Sink:        sink,
	})
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perSeries := map[string]int{}
	for _, rec := range recs {
		perSeries[rec.Series]++
	}
	sealed := perSeries["cooling_load_w"]
	if sealed < 10*ringWindows {
		t.Fatalf("run sealed only %d windows; need ≥ %d to demonstrate bounded memory", sealed, 10*ringWindows)
	}
	inMem := map[string]int{}
	for _, rec := range cfg.Stream.Snapshot() {
		inMem[rec.Series]++
	}
	for series, n := range inMem {
		if n > ringWindows {
			t.Errorf("series %s retains %d windows in memory, ring bound is %d", series, n, ringWindows)
		}
	}
	if inMem["cooling_load_w"] == 0 {
		t.Fatal("snapshot is empty — bound proven vacuously")
	}
}

// TestRerunWithSameRecorderIsDeterministic re-runs one instrumented
// configuration and checks the *simulation-visible* span fields
// (phase, sim time, order) repeat exactly; only wall timings may
// differ between runs.
func TestTraceSpanStructureIsDeterministic(t *testing.T) {
	cfg := Scenario(8, PolicyVMTWA, 22)
	cfg.Trace = smallTrace()
	runOnce := func() []telemetry.SpanEvent {
		rec := telemetry.NewRecorder()
		c := cfg
		c.Tracer = rec
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].At != b[i].At {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for k, v := range a[i].Args {
			if b[i].Args[k] != v {
				t.Fatalf("span %d arg %s differs: %v vs %v", i, k, v, b[i].Args[k])
			}
		}
	}
}

// TestTracedRunExportsValidChromeTrace drives the full path the
// `vmtsim -trace out.json` flag uses and validates the artifact is
// well-formed Chrome trace_event JSON (the format Perfetto loads).
func TestTracedRunExportsValidChromeTrace(t *testing.T) {
	cfg := Scenario(6, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	rec := telemetry.NewRecorder()
	cfg.Tracer = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("not valid chrome trace JSON: %v", err)
	}
	phases := map[string]bool{}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph == "X" {
			phases[ev.Name] = true
		}
	}
	for _, want := range []string{"physics", "schedule", "sample"} {
		if !phases[want] {
			t.Fatalf("missing %q spans; phases seen: %v", want, phases)
		}
	}
}

// TestDefaultObservabilityAppliesToRuns exercises the process-wide
// fallback the CLI flags use, including cleanup.
func TestDefaultObservabilityAppliesToRuns(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder()
	SetDefaultObservability(reg, rec)
	defer SetDefaultObservability(nil, nil)

	cfg := BaselineScenario(5)
	cfg.Trace = smallTrace()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("sim_events_dispatched").Value() == 0 {
		t.Fatal("default registry saw no events")
	}
	if rec.Len() == 0 {
		t.Fatal("default tracer saw no spans")
	}

	// A per-Config registry takes precedence over the default.
	own := telemetry.NewRegistry()
	cfg.Metrics = own
	before := reg.Counter("sim_events_dispatched").Value()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if own.Counter("sim_events_dispatched").Value() == 0 {
		t.Fatal("per-config registry ignored")
	}
	if reg.Counter("sim_events_dispatched").Value() != before {
		t.Fatal("default registry should not see a run with its own registry")
	}
}
