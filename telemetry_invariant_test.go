package vmt

// The telemetry contract: instrumentation observes, it never perturbs.
// These tests prove it by running the same configuration with and
// without full telemetry (recording tracer + metrics registry) and
// requiring the exported results to be byte-identical.

import (
	"bytes"
	"encoding/json"
	"testing"

	"vmt/internal/telemetry"
)

// exportBytes serializes a result through the stable export format.
func exportBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestInstrumentedRunIsBitIdentical(t *testing.T) {
	for _, policy := range []Policy{PolicyRoundRobin, PolicyVMTTA, PolicyVMTWA} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			t.Parallel()
			gv := 0.0
			if policy != PolicyRoundRobin {
				gv = 22
			}
			cfg := Scenario(10, policy, gv)
			cfg.Trace = smallTrace()

			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			instrumented := cfg
			rec := telemetry.NewRecorder()
			reg := telemetry.NewRegistry()
			instrumented.Tracer = rec
			instrumented.Metrics = reg
			traced, err := Run(instrumented)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := exportBytes(t, traced), exportBytes(t, plain); !bytes.Equal(got, want) {
				t.Fatalf("instrumented run diverged from uninstrumented run\ninstrumented: %s\nplain: %s",
					got, want)
			}

			// The instrumentation actually observed something.
			if rec.Len() == 0 {
				t.Fatal("tracer recorded no events")
			}
			snap := reg.Snapshot()
			counters := map[string]uint64{}
			for _, c := range snap.Counters {
				counters[c.Name] = c.Value
			}
			for _, name := range []string{"sim_events_dispatched", "sched_placements", "run_ticks"} {
				if counters[name] == 0 {
					t.Fatalf("counter %s stayed zero: %+v", name, snap.Counters)
				}
			}
			if len(snap.Histograms) == 0 || snap.Histograms[0].Count == 0 {
				t.Fatal("melt-fraction histogram recorded nothing")
			}
		})
	}
}

// TestRerunWithSameRecorderIsDeterministic re-runs one instrumented
// configuration and checks the *simulation-visible* span fields
// (phase, sim time, order) repeat exactly; only wall timings may
// differ between runs.
func TestTraceSpanStructureIsDeterministic(t *testing.T) {
	cfg := Scenario(8, PolicyVMTWA, 22)
	cfg.Trace = smallTrace()
	runOnce := func() []telemetry.SpanEvent {
		rec := telemetry.NewRecorder()
		c := cfg
		c.Tracer = rec
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].At != b[i].At {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for k, v := range a[i].Args {
			if b[i].Args[k] != v {
				t.Fatalf("span %d arg %s differs: %v vs %v", i, k, v, b[i].Args[k])
			}
		}
	}
}

// TestTracedRunExportsValidChromeTrace drives the full path the
// `vmtsim -trace out.json` flag uses and validates the artifact is
// well-formed Chrome trace_event JSON (the format Perfetto loads).
func TestTracedRunExportsValidChromeTrace(t *testing.T) {
	cfg := Scenario(6, PolicyVMTTA, 22)
	cfg.Trace = smallTrace()
	rec := telemetry.NewRecorder()
	cfg.Tracer = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("not valid chrome trace JSON: %v", err)
	}
	phases := map[string]bool{}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph == "X" {
			phases[ev.Name] = true
		}
	}
	for _, want := range []string{"physics", "schedule", "sample"} {
		if !phases[want] {
			t.Fatalf("missing %q spans; phases seen: %v", want, phases)
		}
	}
}

// TestDefaultObservabilityAppliesToRuns exercises the process-wide
// fallback the CLI flags use, including cleanup.
func TestDefaultObservabilityAppliesToRuns(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder()
	SetDefaultObservability(reg, rec)
	defer SetDefaultObservability(nil, nil)

	cfg := BaselineScenario(5)
	cfg.Trace = smallTrace()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("sim_events_dispatched").Value() == 0 {
		t.Fatal("default registry saw no events")
	}
	if rec.Len() == 0 {
		t.Fatal("default tracer saw no spans")
	}

	// A per-Config registry takes precedence over the default.
	own := telemetry.NewRegistry()
	cfg.Metrics = own
	before := reg.Counter("sim_events_dispatched").Value()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if own.Counter("sim_events_dispatched").Value() == 0 {
		t.Fatal("per-config registry ignored")
	}
	if reg.Counter("sim_events_dispatched").Value() != before {
		t.Fatal("default registry should not see a run with its own registry")
	}
}
