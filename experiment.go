package vmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"vmt/internal/experiment"
	"vmt/internal/fault"
	"vmt/internal/pcm"
	"vmt/internal/stats"
	"vmt/internal/thermal"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

// This file binds the declarative experiment engine
// (internal/experiment) to the simulator: the settings vocabulary that
// maps spec files onto Configs, the canonical Config hash behind the
// content-addressed run cache, the spec executor on top of
// RunManyOpts, and the named reducers. The root studies in
// experiments.go / ablation.go / adaptability.go / adaptive.go are
// thin spec-builder + reducer adapters over this core.

// ---------------------------------------------------------------------
// Canonical Config hashing.

// hashableConfig shadows Config with exactly the fields that determine
// a run's Result. Metrics, Tracer, and PhysicsWorkers are excluded:
// telemetry is strictly observational and results are bit-identical
// for every physics worker count, so configurations differing only
// there are the same run. A set CustomTrace overrides Trace, so Trace
// is zeroed when the custom samples are hashed.
type hashableConfig struct {
	Servers             int
	Policy              Policy
	GV                  float64
	WaxThreshold        float64
	OracleWaxState      bool
	MigrationBudgetFrac float64
	GVSchedule          []GVChange
	PreserveUntil       time.Duration
	SacrificeFrac       float64
	Server              thermal.ServerSpec
	Material            pcm.Material
	InletTempC          float64
	InletStdevC         float64
	Seed                uint64
	Trace               trace.Spec
	CustomTraceStep     time.Duration
	CustomTraceSamples  []float64
	Source              *workload.SourceSpec
	Horizon             time.Duration
	Mix                 []workload.MixEntry
	Step                time.Duration
	RecordGrids         bool
	JobStream           bool
	TaskDurations       map[string]time.Duration
	Faults              *fault.Plan
}

// cacheKeyExclusions is the documented observational-exclusion set:
// every exported Config field deliberately absent (by name) from
// hashableConfig, with the reason it is safe to leave out of the run
// cache's key. vmtlint's cachekey analyzer checks Config against
// hashableConfig and this table, so a new Config field that is neither
// hashed nor listed here fails `make lint` instead of silently
// poisoning the cache; TestCacheKeyExclusionsConsistent is the runtime
// backstop for the same contract.
var cacheKeyExclusions = map[string]string{
	"Metrics":        "observational: metrics never alter results",
	"Tracer":         "observational: tracing never alters results",
	"Stream":         "observational: windowed time-series telemetry never alters results",
	"Fleet":          "observational: fleet snapshots never alter results",
	"ProfileBands":   "observational: band profiling never alters results",
	"PhysicsWorkers": "observational: results are bit-identical for every worker count",
	"CustomTrace":    "hashed via the derived CustomTraceStep/CustomTraceSamples fields",
}

// configKey returns cfg's content address: the canonical hash of its
// resolved simulation-relevant fields. Two configurations share a key
// exactly when Run would produce bit-identical Results for both.
func configKey(cfg Config) (string, error) {
	r := cfg.withDefaults()
	h := hashableConfig{
		Servers:             r.Servers,
		Policy:              r.Policy,
		GV:                  r.GV,
		WaxThreshold:        r.WaxThreshold.Value(),
		OracleWaxState:      r.OracleWaxState,
		MigrationBudgetFrac: r.MigrationBudgetFrac,
		GVSchedule:          r.GVSchedule,
		PreserveUntil:       r.PreserveUntil,
		SacrificeFrac:       r.SacrificeFrac.Value(),
		Server:              r.Server.Value(),
		Material:            r.Material.Value(),
		InletTempC:          r.InletTempC.Value(),
		InletStdevC:         r.InletStdevC,
		Seed:                r.Seed,
		Trace:               r.Trace,
		Source:              r.Source,
		Horizon:             r.Horizon,
		Mix:                 r.Mix.Entries(),
		Step:                r.Step,
		RecordGrids:         r.RecordGrids,
		JobStream:           r.JobStream,
		TaskDurations:       r.TaskDurations,
		Faults:              r.Faults,
	}
	if r.CustomTrace != nil {
		h.Trace = trace.Spec{}
		h.CustomTraceStep = r.CustomTrace.Step()
		h.CustomTraceSamples = r.CustomTrace.Values()
	}
	if r.Source != nil {
		// A set Source replaces the trace entirely, so the trace spec
		// is zeroed the same way a custom trace zeroes it.
		h.Trace = trace.Spec{}
	}
	return experiment.Key(h)
}

// ---------------------------------------------------------------------
// The session run cache.

// runCache deduplicates simulation runs across every study of the
// process: identical configurations (notably the shared round-robin
// baselines) simulate exactly once per session. Results handed out of
// the cache are shared — treat them as read-only, which every study
// already does; resultFingerprint is the backstop when one does not.
var runCache = func() *experiment.Cache {
	c := experiment.NewCache()
	c.SetVerifier(resultFingerprint)
	return c
}()

// resultFingerprint folds a cached *Result into a 64-bit integrity
// fingerprint: an FNV-1a-style fold over the exact float bits of every
// sampled series plus the scalar outcome fields. The cache re-checks
// it on every read, so a stored result mutated after Commit (an
// aliasing caller scribbling on a shared result) is quarantined and
// recomputed as a miss instead of silently poisoning later studies.
func resultFingerprint(v any) uint64 {
	r, ok := v.(*Result)
	if !ok || r == nil {
		return 0
	}
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	mix := func(u uint64) {
		h ^= u
		h *= prime
	}
	series := func(s *stats.Series) {
		if s == nil {
			mix(0)
			return
		}
		mix(uint64(len(s.Values)))
		for _, x := range s.Values {
			mix(math.Float64bits(x))
		}
	}
	series(r.CoolingLoadW)
	series(r.TotalPowerW)
	series(r.MeanAirTempC)
	series(r.HotGroupTempC)
	series(r.HotGroupSize)
	series(r.MeanMeltFrac)
	series(r.WaxEnergyJ)
	series(r.MaxCPUTempC)
	mix(uint64(r.ThrottleMinutes))
	mix(r.TaskArrivals)
	mix(r.TaskDrops)
	mix(r.FaultCrashes)
	mix(r.FaultRepairs)
	mix(r.EvacuatedJobs)
	mix(r.LostJobs)
	mix(r.DomainTrips)
	mix(r.ReportsQuarantined)
	return h
}

// RunCache exposes the process-wide run cache, mainly so callers can
// disable it (benchmarking the dedup win), Reset it between
// measurements, or read its hit/miss Stats.
func RunCache() *experiment.Cache { return runCache }

// RunManyCached is RunManyOpts through the session run cache: cached
// and intra-batch-duplicate configurations are answered without
// simulating, and fresh results are stored for the rest of the
// process. Cache traffic lands on the "experiment_cache_hits" /
// "experiment_cache_misses" counters of opts.Metrics (or the process
// default registry). Like RunManyOpts, a failure is reported as a
// *RunError carrying the index into cfgs, with results at all other
// indices still populated.
func RunManyCached(cfgs []Config, opts BatchOptions) ([]*Result, error) {
	keys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		k, err := configKey(cfg)
		if err != nil {
			return nil, &RunError{Index: i, Err: err}
		}
		keys[i] = k
	}
	plan := runCache.Plan(keys)

	metrics := opts.Metrics
	if metrics == nil {
		obsMu.RLock()
		metrics = defaultMetrics
		obsMu.RUnlock()
	}
	metrics.Counter("experiment_cache_hits").Add(uint64(len(cfgs) - plan.Misses()))
	metrics.Counter("experiment_cache_misses").Add(uint64(plan.Misses()))
	if n := plan.Corrupt(); n > 0 {
		metrics.Counter("experiment_cache_corruptions").Add(uint64(n))
	}

	toRun := make([]Config, len(plan.Run))
	for j, i := range plan.Run {
		toRun[j] = cfgs[i]
	}
	runs, runErr := RunManyOpts(toRun, opts)
	fresh := make([]any, len(toRun))
	for j, r := range runs {
		if r != nil {
			fresh[j] = r
		}
	}
	merged := runCache.Commit(plan, fresh)
	out := make([]*Result, len(cfgs))
	for i, v := range merged {
		if v != nil {
			out[i] = v.(*Result)
		}
	}
	if runErr != nil {
		var re *RunError
		if errors.As(runErr, &re) {
			return out, &RunError{Index: plan.Run[re.Index], Err: re.Err}
		}
		return out, runErr
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Settings → Config.

// settingKeys fixes the order configuration settings apply in, so
// modifier keys (pmt_c, volume_l, power_scale) compose deterministically
// on top of the objects they modify (material, the server spec).
var settingKeys = []string{
	"servers", "policy", "gv", "wax_threshold", "oracle_wax_state",
	"migration_budget_frac", "inlet_c", "inlet_stdev_c", "seed",
	"material", "pmt_c", "volume_l", "power_scale",
	"trace", "custom_trace", "source", "horizon_min",
	"record_grids", "job_stream", "faults",
}

// configFromSettings builds a Config from a spec's merged settings.
// Unknown keys are an error so spec-file typos fail loudly.
func configFromSettings(s experiment.Settings) (Config, error) {
	known := map[string]bool{}
	for _, k := range settingKeys {
		known[k] = true
	}
	for k := range s {
		if !known[k] {
			return Config{}, fmt.Errorf("vmt: unknown setting %q (known: %v)", k, settingKeys)
		}
	}
	var cfg Config
	for _, k := range settingKeys {
		v, ok := s[k]
		if !ok {
			continue
		}
		if err := applySetting(&cfg, k, v); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

func applySetting(cfg *Config, key string, v any) error {
	switch key {
	case "servers":
		n, err := settingInt(key, v)
		if err != nil {
			return err
		}
		cfg.Servers = n
	case "policy":
		str, ok := v.(string)
		if !ok {
			return fmt.Errorf("vmt: setting policy: want string, got %T", v)
		}
		p, err := parsePolicy(str)
		if err != nil {
			return err
		}
		cfg.Policy = p
	case "gv":
		return settingFloat(key, v, &cfg.GV)
	case "wax_threshold":
		var th float64
		if err := settingFloat(key, v, &th); err != nil {
			return err
		}
		cfg.WaxThreshold = Some(th)
	case "oracle_wax_state":
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("vmt: setting %s: want bool, got %T", key, v)
		}
		cfg.OracleWaxState = b
	case "migration_budget_frac":
		return settingFloat(key, v, &cfg.MigrationBudgetFrac)
	case "inlet_c":
		var inlet float64
		if err := settingFloat(key, v, &inlet); err != nil {
			return err
		}
		cfg.InletTempC = Some(inlet)
	case "inlet_stdev_c":
		return settingFloat(key, v, &cfg.InletStdevC)
	case "seed":
		n, err := settingInt(key, v)
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf("vmt: setting seed: negative %d", n)
		}
		cfg.Seed = uint64(n)
	case "material":
		str, ok := v.(string)
		if !ok {
			return fmt.Errorf("vmt: setting material: want string, got %T", v)
		}
		switch str {
		case "paper", "":
			cfg.Material = Optional[pcm.Material]{} // default commercial paraffin
		case "inert":
			cfg.Material = Some(pcm.Inert())
		default:
			return fmt.Errorf("vmt: unknown material %q (want paper or inert)", str)
		}
	case "pmt_c":
		var pmt float64
		if err := settingFloat(key, v, &pmt); err != nil {
			return err
		}
		mat := cfg.Material.Or(pcm.CommercialParaffin())
		cfg.Material = Some(mat.WithMeltTemp(pmt))
	case "volume_l":
		var vol float64
		if err := settingFloat(key, v, &vol); err != nil {
			return err
		}
		spec := cfg.Server.Or(thermal.PaperServer())
		spec.WaxVolumeL = vol
		cfg.Server = Some(spec)
	case "power_scale":
		var scale float64
		if err := settingFloat(key, v, &scale); err != nil {
			return err
		}
		spec := cfg.Server.Or(thermal.PaperServer())
		spec.PowerScale = scale
		cfg.Server = Some(spec)
	case "trace":
		spec, err := traceSpecFromSetting(v)
		if err != nil {
			return err
		}
		cfg.Trace = spec
	case "custom_trace":
		tr, err := customTraceFromSetting(v)
		if err != nil {
			return err
		}
		cfg.CustomTrace = tr
	case "source":
		spec, err := sourceSpecFromSetting(v)
		if err != nil {
			return err
		}
		cfg.Source = spec
	case "horizon_min":
		var min float64
		if err := settingFloat(key, v, &min); err != nil {
			return err
		}
		if min <= 0 {
			return fmt.Errorf("vmt: setting horizon_min: want positive minutes, got %v", min)
		}
		cfg.Horizon = time.Duration(min * float64(time.Minute))
	case "record_grids":
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("vmt: setting %s: want bool, got %T", key, v)
		}
		cfg.RecordGrids = b
	case "job_stream":
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("vmt: setting %s: want bool, got %T", key, v)
		}
		cfg.JobStream = b
	case "faults":
		p, err := faultPlanFromSetting(v)
		if err != nil {
			return err
		}
		cfg.Faults = p
	default:
		return fmt.Errorf("vmt: unknown setting %q", key)
	}
	return nil
}

// parsePolicy resolves a policy setting, accepting the canonical names
// plus the rr/cf shorthands the CLI tables use.
func parsePolicy(s string) (Policy, error) {
	switch s {
	case "rr", string(PolicyRoundRobin):
		return PolicyRoundRobin, nil
	case "cf", string(PolicyCoolestFirst):
		return PolicyCoolestFirst, nil
	case string(PolicyVMTTA):
		return PolicyVMTTA, nil
	case string(PolicyVMTWA):
		return PolicyVMTWA, nil
	case string(PolicyVMTPreserve):
		return PolicyVMTPreserve, nil
	}
	return "", fmt.Errorf("vmt: unknown policy %q", s)
}

func settingFloat(key string, v any, dst *float64) error {
	switch n := v.(type) {
	case float64:
		*dst = n
	case int:
		*dst = float64(n)
	default:
		return fmt.Errorf("vmt: setting %s: want number, got %T", key, v)
	}
	return nil
}

func settingInt(key string, v any) (int, error) {
	switch n := v.(type) {
	case int:
		return n, nil
	case float64:
		// Exact integrality test on a decoded JSON number, phrased over
		// the bit pattern (NaN/Inf pass through Trunc unchanged, so they
		// are caught explicitly).
		if math.IsNaN(n) || math.IsInf(n, 0) ||
			math.Float64bits(n) != math.Float64bits(math.Trunc(n)) {
			return 0, fmt.Errorf("vmt: setting %s: want integer, got %v", key, n)
		}
		return int(n), nil
	}
	return 0, fmt.Errorf("vmt: setting %s: want integer, got %T", key, v)
}

// traceSetting converts a trace.Spec into the nested settings value
// spec builders embed (and spec files write by hand).
func traceSetting(s trace.Spec) map[string]any {
	m := map[string]any{
		"days":           s.Days,
		"peak_util":      floatsToAny(s.PeakUtil),
		"trough_util":    s.TroughUtil,
		"peak_hours":     floatsToAny(s.PeakHours),
		"trough_hour":    s.TroughHour,
		"noise_amp":      s.NoiseAmp,
		"peak_sharpness": s.PeakSharpness,
	}
	if s.Seed != 0 {
		m["seed"] = float64(s.Seed)
	}
	return m
}

func traceSpecFromSetting(v any) (trace.Spec, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return trace.Spec{}, fmt.Errorf("vmt: setting trace: want object, got %T", v)
	}
	var s trace.Spec
	for k, fv := range m {
		var err error
		switch k {
		case "days":
			s.Days, err = settingInt("trace.days", fv)
		case "peak_util":
			s.PeakUtil, err = settingFloats("trace.peak_util", fv)
		case "trough_util":
			err = settingFloat("trace.trough_util", fv, &s.TroughUtil)
		case "peak_hours":
			s.PeakHours, err = settingFloats("trace.peak_hours", fv)
		case "trough_hour":
			err = settingFloat("trace.trough_hour", fv, &s.TroughHour)
		case "noise_amp":
			err = settingFloat("trace.noise_amp", fv, &s.NoiseAmp)
		case "peak_sharpness":
			err = settingFloat("trace.peak_sharpness", fv, &s.PeakSharpness)
		case "seed":
			var n int
			n, err = settingInt("trace.seed", fv)
			s.Seed = uint64(n)
		default:
			err = fmt.Errorf("vmt: unknown trace setting %q", k)
		}
		if err != nil {
			return trace.Spec{}, err
		}
	}
	return s, nil
}

// faultSetting converts a fault.Plan into its nested settings value:
// the plan's own JSON object form, widened to map[string]any, so specs
// built in Go expand (and hash) identically to specs decoded from JSON
// files.
func faultSetting(p fault.Plan) map[string]any {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("vmt: encoding fault plan: %v", err))
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		panic(fmt.Sprintf("vmt: round-tripping fault plan: %v", err))
	}
	return m
}

// faultPlanFromSetting decodes a faults setting back into a validated
// plan. Unknown keys are rejected so spec-file typos fail loudly, like
// every other setting.
func faultPlanFromSetting(v any) (*fault.Plan, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("vmt: setting faults: want object, got %T", v)
	}
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("vmt: setting faults: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var p fault.Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("vmt: setting faults: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// sourceSetting converts a workload.SourceSpec into its nested
// settings value: the spec's own canonical JSON object form, widened
// to map[string]any, so specs built in Go expand (and hash)
// identically to specs decoded from JSON files — the faultSetting
// pattern applied to arrival sources.
func sourceSetting(spec workload.SourceSpec) map[string]any {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("vmt: encoding source spec: %v", err))
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		panic(fmt.Sprintf("vmt: round-tripping source spec: %v", err))
	}
	return m
}

// sourceSpecFromSetting decodes a source setting back into a
// validated spec. Unknown keys are rejected so spec-file typos fail
// loudly, like every other setting.
func sourceSpecFromSetting(v any) (*workload.SourceSpec, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("vmt: setting source: want object, got %T", v)
	}
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("vmt: setting source: %w", err)
	}
	spec, err := workload.ParseSourceSpec(b)
	if err != nil {
		return nil, fmt.Errorf("vmt: setting source: %w", err)
	}
	return spec, nil
}

// customTraceSetting converts an externally supplied trace into its
// settings value: {"step_s": seconds, "samples": [...]}.
func customTraceSetting(samples []float64, step time.Duration) map[string]any {
	return map[string]any{
		"step_s":  step.Seconds(),
		"samples": floatsToAny(samples),
	}
}

func customTraceFromSetting(v any) (*trace.Trace, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("vmt: setting custom_trace: want object, got %T", v)
	}
	var stepS float64
	var samples []float64
	for k, fv := range m {
		var err error
		switch k {
		case "step_s":
			err = settingFloat("custom_trace.step_s", fv, &stepS)
		case "samples":
			samples, err = settingFloats("custom_trace.samples", fv)
		default:
			err = fmt.Errorf("vmt: unknown custom_trace setting %q", k)
		}
		if err != nil {
			return nil, err
		}
	}
	return trace.FromSamples(samples, time.Duration(stepS*float64(time.Second)))
}

func settingFloats(key string, v any) ([]float64, error) {
	switch vs := v.(type) {
	case []float64:
		return append([]float64(nil), vs...), nil
	case []any:
		out := make([]float64, len(vs))
		for i, e := range vs {
			if err := settingFloat(key, e, &out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("vmt: setting %s: want number array, got %T", key, v)
}

// floatsToAny widens a float slice for settings embedding, so specs
// built in Go expand identically to specs decoded from JSON.
func floatsToAny(fs []float64) []any {
	out := make([]any, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// ---------------------------------------------------------------------
// Spec execution.

// SpecRun holds one executed spec: the expanded grid and the simulation
// results, with every point's matched baseline resolvable. Results may
// be shared with the session cache — treat them as read-only.
type SpecRun struct {
	Spec experiment.Spec
	// Points and Results align: Results[i] is the run of Points[i].
	Points  []experiment.Point
	Results []*Result
	// Baselines aligns with Spec.BaselinePoints().
	Baselines   []*Result
	baselineIdx []int
}

// BaselineFor returns the baseline result matched to point i.
func (sr *SpecRun) BaselineFor(i int) *Result {
	return sr.Baselines[sr.baselineIdx[i]]
}

// RunSpecResults validates and executes a spec: the baselines and the
// full grid run as one deduplicated batch through the session run
// cache on top of RunManyOpts.
func RunSpecResults(spec experiment.Spec, opts BatchOptions) (*SpecRun, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	points := spec.Points()
	baselines := spec.BaselinePoints()
	baselineIdx, err := spec.BaselineIndex(points, baselines)
	if err != nil {
		return nil, err
	}
	cfgs := make([]Config, 0, len(baselines)+len(points))
	for _, b := range baselines {
		cfg, err := configFromSettings(b.Settings)
		if err != nil {
			return nil, fmt.Errorf("vmt: spec %s baseline: %w", spec.Name, err)
		}
		cfgs = append(cfgs, cfg)
	}
	for _, p := range points {
		cfg, err := configFromSettings(p.Settings)
		if err != nil {
			return nil, fmt.Errorf("vmt: spec %s point %d: %w", spec.Name, p.Index, err)
		}
		cfgs = append(cfgs, cfg)
	}
	runs, err := RunManyCached(cfgs, opts)
	if err != nil {
		return nil, err
	}
	return &SpecRun{
		Spec:        spec,
		Points:      points,
		Results:     runs[len(baselines):],
		Baselines:   runs[:len(baselines)],
		baselineIdx: baselineIdx,
	}, nil
}

// SpecReport is a reduced spec execution: one generic row per surviving
// label tuple, ready for tabulation or JSON emission.
type SpecReport struct {
	Spec experiment.Spec  `json:"spec"`
	Rows []experiment.Row `json:"rows"`
}

// RunSpec executes a spec and applies its named reducer — the
// everything-is-data path cmd/vmtsweep -spec uses. Studies with typed
// outputs use RunSpecResults and reduce themselves.
func RunSpec(spec experiment.Spec, opts BatchOptions) (*SpecReport, error) {
	sr, err := RunSpecResults(spec, opts)
	if err != nil {
		return nil, err
	}
	rows, err := sr.reduce()
	if err != nil {
		return nil, err
	}
	return &SpecReport{Spec: spec, Rows: rows}, nil
}

// pointReduction computes point i's peak cooling reduction against its
// matched baseline.
func (sr *SpecRun) pointReduction(i int) (float64, error) {
	return peakReductionPct(sr.BaselineFor(i), sr.Results[i])
}

func peakReductionPct(baseline, variant *Result) (float64, error) {
	base := baseline.PeakCoolingW()
	if base <= 0 {
		return 0, fmt.Errorf("vmt: non-positive baseline peak")
	}
	return (base - variant.PeakCoolingW()) / base * 100, nil
}

// reduce applies the spec's named reducer over the results.
func (sr *SpecRun) reduce() ([]experiment.Row, error) {
	switch sr.Spec.Reducer {
	case experiment.ReducePeakReduction:
		rows := make([]experiment.Row, len(sr.Points))
		for i, p := range sr.Points {
			red, err := sr.pointReduction(i)
			if err != nil {
				return nil, err
			}
			rows[i] = experiment.Row{
				Labels: p.Labels,
				Values: map[string]float64{"reduction_pct": red},
			}
		}
		return rows, nil
	case experiment.ReducePeakReductionMean:
		return sr.reduceGrouped(sr.Spec.MeanOver, func(row *experiment.Row, group []int) error {
			var sum float64
			for _, i := range group {
				red, err := sr.pointReduction(i)
				if err != nil {
					return err
				}
				sum += red
			}
			row.Values["reduction_pct"] = sum / float64(len(group))
			return nil
		})
	case experiment.ReducePeakReductionBest:
		axis := sr.Spec.BestOver
		return sr.reduceGrouped([]string{axis}, func(row *experiment.Row, group []int) error {
			best := math.Inf(-1)
			var bestLabel any
			for _, i := range group {
				red, err := sr.pointReduction(i)
				if err != nil {
					return err
				}
				if red > best {
					best = red
					bestLabel = sr.Points[i].Labels[axis]
				}
			}
			row.Values["reduction_pct"] = best
			if f, ok := bestLabel.(float64); ok {
				row.Values["best_"+axis] = f
			} else {
				row.Labels["best_"+axis] = bestLabel
			}
			return nil
		})
	}
	return nil, fmt.Errorf("vmt: unknown reducer %q", sr.Spec.Reducer)
}

// reduceGrouped buckets points by their labels minus the dropped axes
// (first-seen grid order, so reductions accumulate in the same order
// the sequential studies used) and emits one row per bucket.
func (sr *SpecRun) reduceGrouped(drop []string, fill func(*experiment.Row, []int) error) ([]experiment.Row, error) {
	dropped := map[string]bool{}
	for _, d := range drop {
		dropped[d] = true
	}
	var keep []string
	for _, ax := range sr.Spec.Axes {
		if !dropped[ax.Name] {
			keep = append(keep, ax.Name)
		}
	}
	groups := map[string][]int{}
	var order []string
	for i, p := range sr.Points {
		key := ""
		for _, k := range keep {
			key += fmt.Sprintf("%v\x00", p.Labels[k])
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	rows := make([]experiment.Row, 0, len(order))
	for _, key := range order {
		group := groups[key]
		row := experiment.Row{
			Labels: map[string]any{},
			Values: map[string]float64{},
		}
		for _, k := range keep {
			row.Labels[k] = sr.Points[group[0]].Labels[k]
		}
		if err := fill(&row, group); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
