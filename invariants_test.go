package vmt

import (
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/trace"
)

// randomTrace builds a valid trace spec from fuzz bytes.
func randomTrace(peakPct, troughPct, noisePct uint8, seed uint64) trace.Spec {
	trough := float64(troughPct%40)/100 + 0.05 // 0.05..0.44
	peak := 0.5 + float64(peakPct%51)/100      // 0.5..1.0
	return trace.Spec{
		Days:          1,
		PeakUtil:      []float64{peak},
		TroughUtil:    trough,
		PeakHours:     []float64{20},
		TroughHour:    5,
		NoiseAmp:      float64(noisePct%8) / 100,
		PeakSharpness: 1 + float64(seed%3)/2,
		Seed:          seed,
	}
}

// Cross-policy invariants under randomized traces: every policy keeps
// occupancy within capacity, melt fractions within [0,1], the air
// temperatures physical, and energy conserved — for the fluid and the
// query-level load models alike.
func TestPolicyInvariantsProperty(t *testing.T) {
	policies := []Policy{PolicyRoundRobin, PolicyCoolestFirst, PolicyVMTTA, PolicyVMTWA, PolicyVMTPreserve}
	f := func(peakPct, troughPct, noisePct, policyIdx uint8, seed uint64, stream bool) bool {
		cfg := Scenario(6, policies[int(policyIdx)%len(policies)], 22)
		cfg.Trace = randomTrace(peakPct, troughPct, noisePct, seed)
		cfg.Step = 2 * time.Minute // keep each case cheap
		cfg.JobStream = stream
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		var inJ, outJ float64
		stepS := cfg.Step.Seconds()
		for i := range res.CoolingLoadW.Values {
			load := res.CoolingLoadW.Values[i]
			power := res.TotalPowerW.Values[i]
			inJ += power * stepS
			outJ += load * stepS
			// Power bounded by the fleet envelope.
			if power < 6*100-1 || power > 6*500+1 {
				t.Logf("power %v outside fleet envelope", power)
				return false
			}
			// Temperatures physical.
			temp := res.MeanAirTempC.Values[i]
			if temp < 21 || temp > 60 {
				t.Logf("mean air temp %v unphysical", temp)
				return false
			}
			melt := res.MeanMeltFrac.Values[i]
			if melt < 0 || melt > 1 {
				t.Logf("melt %v out of bounds", melt)
				return false
			}
		}
		// Energy: ejected never exceeds input plus what the wax and
		// air could possibly release (they start cold, so residual
		// must be non-negative up to numerical tolerance).
		if outJ > inJ+1 {
			t.Logf("ejected %v exceeds input %v", outJ, inJ)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Scheduler determinism holds across every policy and both load
// models: rerunning any fuzzed configuration reproduces the series.
func TestPolicyDeterminismProperty(t *testing.T) {
	policies := []Policy{PolicyRoundRobin, PolicyCoolestFirst, PolicyVMTTA, PolicyVMTWA}
	f := func(policyIdx uint8, seed uint64, stream bool) bool {
		cfg := Scenario(5, policies[int(policyIdx)%len(policies)], 22)
		cfg.Trace = randomTrace(200, 30, 3, seed)
		cfg.Step = 3 * time.Minute
		cfg.JobStream = stream
		cfg.Seed = seed
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		for i := range a.CoolingLoadW.Values {
			if a.CoolingLoadW.Values[i] != b.CoolingLoadW.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
