package vmt

import (
	"context"
	"fmt"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/fault"
	"vmt/internal/sched"
	"vmt/internal/sim"
	"vmt/internal/stats"
	"vmt/internal/telemetry"
	"vmt/internal/trace"
	"vmt/internal/workload"
)

// Session is a long-lived, resumable simulation: the monolithic Run
// pipeline decomposed into Open → Observe/Place/Step → Close, so an
// external controller (an RL policy, an MPC loop, a live operator)
// can drive the cluster one tick at a time instead of replaying a
// closed batch. Determinism is preserved exactly: a session stepped
// tick by tick, in ragged chunks, or all at once produces a Result
// bit-identical to vmt.Run of the same Config — Run itself is a thin
// wrapper that opens a session and steps it to completion.
//
// Session state lives here, outside internal/sim: the engine owns
// only the event clock and its queue (which makes its chunked
// RunUntil trivially re-entrant), while everything the paper's
// pipeline accumulates between events — the cluster, the schedulers,
// the partially filled Result, the latched first error — belongs to
// the caller that wired the bands together. See DESIGN.md.
//
// A Session is not safe for concurrent use; drive it from one
// goroutine (the vmtsim -serve mode serializes HTTP access with a
// mutex).
type Session struct {
	cfg Config // resolved (withDefaults applied)
	ctx context.Context

	cl        *cluster.Cluster
	eng       *sim.Engine
	override  *sched.Override
	grouper   hotGrouper
	hasGroups bool
	src       workload.JobSource
	stream    *sched.StreamManager
	injector  *fault.Injector
	guard     *sched.Guard

	res        *Result
	step       time.Duration
	horizon    time.Duration // 0 = open-ended
	lastSample cluster.Sample
	runErr     error
	closed     bool
}

// Observation is a read-only snapshot of a session between steps —
// the observe half of the step/observe seam. Aggregates mirror the
// sample the last completed tick recorded; before the first step they
// are zero and Servers is empty (no physics has run yet).
type Observation struct {
	// Tick is the number of completed steps; SimTime = Tick × Step.
	Tick    int64         `json:"tick"`
	SimTime time.Duration `json:"sim_time_ns"`
	// Done reports a finite-horizon session that has reached its end.
	Done bool `json:"done"`
	// Utilization is the job source's demand level at SimTime.
	Utilization float64 `json:"utilization"`
	// Fleet aggregates from the last completed tick.
	CoolingLoadW float64 `json:"cooling_load_w"`
	TotalPowerW  float64 `json:"total_power_w"`
	MeanAirTempC float64 `json:"mean_air_temp_c"`
	MeanMeltFrac float64 `json:"mean_melt_frac"`
	MaxCPUTempC  float64 `json:"max_cpu_temp_c"`
	WaxEnergyJ   float64 `json:"wax_energy_j"`
	// SettledServers counts servers coasting on the memoized
	// steady-state physics transition; ThrottlingServers counts
	// servers whose die temperature is over the throttle point.
	SettledServers    int `json:"settled_servers"`
	ThrottlingServers int `json:"throttling_servers"`
	FreeCores         int `json:"free_cores"`
	BusyCores         int `json:"busy_cores"`
	// HotGroupSize is 0 for non-grouping policies.
	HotGroupSize int    `json:"hot_group_size"`
	TaskArrivals uint64 `json:"task_arrivals"`
	TaskDrops    uint64 `json:"task_drops"`
	// PlacementsOverridden and Rejected count the external placer's
	// accepted and refused decisions (the observe/place seam).
	PlacementsOverridden uint64 `json:"placements_overridden"`
	Rejected             uint64 `json:"placements_rejected"`
	// Servers is the per-server state, indexed by server ID.
	Servers []ServerObservation `json:"servers"`
}

// ServerObservation is one server's externally visible state.
type ServerObservation struct {
	ID        int     `json:"id"`
	AirTempC  float64 `json:"air_temp_c"`
	MeltFrac  float64 `json:"melt_frac"`
	FreeCores int     `json:"free_cores"`
	BusyCores int     `json:"busy_cores"`
	Crashed   bool    `json:"crashed"`
	Group     string  `json:"group,omitempty"`
}

// Open builds a session from cfg without advancing time. Equivalent
// to OpenCtx with a background context.
func Open(cfg Config) (*Session, error) {
	return OpenCtx(context.Background(), cfg)
}

// OpenCtx is Open with cancellation: when ctx is cancelled the engine
// stops at the next tick boundary, the session latches ctx.Err(), and
// Close still returns the cleanly sampled partial Result alongside
// the error. Cancellation can only truncate a run, never change what
// the completed prefix recorded.
func OpenCtx(ctx context.Context, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cfg = cfg.withDefaults().withDefaultObservability()

	cl, err := cluster.New(cluster.Config{
		NumServers:     cfg.Servers,
		Server:         cfg.Server.Value(),
		Material:       cfg.Material.Value(),
		InletTempC:     cfg.InletTempC.Value(),
		InletStdevC:    cfg.InletStdevC,
		Seed:           cfg.Seed,
		PhysicsWorkers: cfg.PhysicsWorkers,
	})
	if err != nil {
		return nil, err
	}
	scheduler, err := newScheduler(cfg, cl)
	if err != nil {
		return nil, err
	}

	// The job source: an open-loop generator when configured, the
	// (finite) trace otherwise. The horizon is the source's natural
	// length unless Horizon overrides it; zero means open-ended, which
	// only a stepped session can drive.
	var src workload.JobSource
	if cfg.Source != nil {
		src, err = cfg.Source.New()
		if err != nil {
			return nil, err
		}
	} else if cfg.CustomTrace != nil {
		src = cfg.CustomTrace
	} else {
		// Cached: sweeps rerun the same spec hundreds of times, and
		// generated traces are immutable, so every run of a batch
		// shares one decode.
		tr, err := trace.Cached(cfg.Trace, cfg.Step)
		if err != nil {
			return nil, err
		}
		src = tr
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = src.Horizon()
	}

	// The Override wrapper is the place half of the seam: with no
	// directives and no placer it is transparent (no RNG draws, no
	// changed decisions), so wrapping costs nothing and bit-identity
	// with the unwrapped pipeline holds by construction. The grouping
	// interface is resolved on the real policy underneath.
	override, err := sched.NewOverride(cl, scheduler)
	if err != nil {
		return nil, err
	}
	var reconcile reconciler
	var stream *sched.StreamManager
	if cfg.JobStream {
		durations := cfg.TaskDurations
		if durations == nil {
			durations = sched.DefaultTaskDurations()
		}
		stream, err = sched.NewStreamManager(cl, cfg.Mix, src, override, durations, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			stream.SetMetrics(cfg.Metrics)
		}
		reconcile = stream
	} else {
		lm, err := sched.NewLoadManager(cl, cfg.Mix, src, override)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			lm.SetMetrics(cfg.Metrics)
		}
		reconcile = lm
	}

	// Fault injection: the injector interposes sensors at construction
	// and ticks on the engine's fault band (after physics, before the
	// scheduler). Nil plan → nil injector → zero overhead. The guard
	// is the matching defense: whenever faults are in play it
	// cross-checks every server's reported telemetry against power
	// residuals and melt-rate physics, quarantining implausible
	// reporters (see internal/sched.Guard).
	var injector *fault.Injector
	var guard *sched.Guard
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		injector = fault.NewInjector(cfg.Faults, cl, reconcile, cfg.Metrics)
		guard = sched.NewGuard(cl, cfg.Mix, cfg.Step, cfg.Metrics)
	}

	// One sample lands per step over the horizon; preallocating the
	// series keeps the sample phase free of append reallocations. An
	// open-ended session grows as it goes.
	nSamples := 0
	if horizon > 0 {
		nSamples = int(horizon / cfg.Step)
	}
	res := &Result{
		Config:       cfg,
		CoolingLoadW: stats.NewSeriesCap(cfg.Step, nSamples),
		TotalPowerW:  stats.NewSeriesCap(cfg.Step, nSamples),
		MeanAirTempC: stats.NewSeriesCap(cfg.Step, nSamples),
		MeanMeltFrac: stats.NewSeriesCap(cfg.Step, nSamples),
		WaxEnergyJ:   stats.NewSeriesCap(cfg.Step, nSamples),
		MaxCPUTempC:  stats.NewSeriesCap(cfg.Step, nSamples),
	}
	grouper, hasGroups := scheduler.(hotGrouper)
	if hasGroups {
		res.HotGroupTempC = stats.NewSeriesCap(cfg.Step, nSamples)
		res.HotGroupSize = stats.NewSeriesCap(cfg.Step, nSamples)
	}

	eng := sim.NewEngine()
	eng.Instrument(cfg.Metrics)

	s := &Session{
		cfg:       cfg,
		ctx:       ctx,
		cl:        cl,
		eng:       eng,
		override:  override,
		grouper:   grouper,
		hasGroups: hasGroups,
		src:       src,
		stream:    stream,
		injector:  injector,
		guard:     guard,
		res:       res,
		step:      cfg.Step,
		horizon:   horizon,
	}
	fail := s.fail

	// Tracing and band profiling: span wraps a phase handler so each
	// tick emits one span event with wall timings and the gauges args
	// samples at close, and (with ProfileBands) brackets the handler
	// with the band profiler so wall/alloc deltas land on the band
	// counters and the allocation delta rides on the span event. With a
	// nil tracer and no profiler the handler is returned untouched, so
	// the uninstrumented hot path is unchanged.
	tracer := cfg.Tracer
	var profiler *telemetry.BandProfiler
	if cfg.ProfileBands {
		profiler = telemetry.NewBandProfiler(cfg.Metrics) // nil registry → nil profiler
	}
	var wall0 time.Time
	if tracer != nil {
		wall0 = time.Now() //vmtlint:allow detrand observational: span wall-clock origin, never read by the simulation
	}
	span := func(name string, fn sim.Handler, args func() map[string]float64) sim.Handler {
		if tracer == nil && profiler == nil {
			return fn
		}
		band := profiler.Band(name) // nil profiler → nil band, whose methods no-op
		return func(now time.Duration) {
			var t0 time.Time
			if tracer != nil {
				t0 = time.Now() //vmtlint:allow detrand observational: span timing feeds the tracer only
			}
			band.Begin() //vmtlint:allow detrand observational: band profiler wall/alloc deltas feed telemetry only
			fn(now)
			_, alloc := band.End() //vmtlint:allow detrand observational: band profiler wall/alloc deltas feed telemetry only
			if tracer == nil {
				return
			}
			ev := telemetry.SpanEvent{
				Name:       name,
				At:         now,
				WallStart:  t0.Sub(wall0),
				Wall:       time.Since(t0), //vmtlint:allow detrand observational: span timing feeds the tracer only
				AllocBytes: alloc,
			}
			if args != nil {
				ev.Args = args()
			}
			tracer.Emit(ev)
		}
	}

	// Streaming series handles, resolved once so the sample band does
	// no map lookups. A nil Stream hands out nil series whose Observe
	// is a no-op — the unstreamed run pays one nil check per series.
	var (
		stCooling = cfg.Stream.Series("cooling_load_w")
		stPower   = cfg.Stream.Series("total_power_w")
		stAirTemp = cfg.Stream.Series("mean_air_temp_c")
		stMelt    = cfg.Stream.Series("mean_melt_frac")
		stMaxCPU  = cfg.Stream.Series("max_cpu_temp_c")
		stHotSize *telemetry.TimeSeries
	)
	if hasGroups {
		stHotSize = cfg.Stream.Series("hot_group_size")
	}

	// Thermal/PCM instruments, sampled in the metrics band: the fleet
	// melt-fraction distribution and accumulated server-seconds above
	// the wax's physical melting temperature.
	var (
		meltHist  = cfg.Metrics.Histogram("pcm_melt_frac", telemetry.LinearBounds(0, 1, 10)...)
		abovePMT  = cfg.Metrics.Counter("thermal_above_pmt_server_s")
		runTicks  = cfg.Metrics.Counter("run_ticks")
		settledG  = cfg.Metrics.Gauge("cluster_settled_servers")
		pmtC      = cfg.Material.Value().MeltTempC
		stepSecs  = uint64(cfg.Step.Seconds())
		hasMetric = cfg.Metrics != nil
	)

	// Physics: advance the cluster by one period. Skipped at t=0 (no
	// elapsed time yet); the scheduler places the initial load first.
	if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityModel, span("physics", func(time.Duration) {
		if s.runErr != nil {
			return
		}
		if done != nil {
			select {
			case <-done:
				fail(ctx.Err())
				return
			default:
			}
		}
		smp, err := cl.Step(cfg.Step)
		if err != nil {
			fail(err)
			return
		}
		s.lastSample = smp
	}, func() map[string]float64 {
		return map[string]float64{
			"cooling_load_w":  s.lastSample.CoolingLoadW,
			"mean_air_temp_c": s.lastSample.MeanAirTempC,
			"mean_melt_frac":  s.lastSample.MeanMeltFrac,
		}
	})); err != nil {
		return nil, err
	}

	// Faults: crashes, repairs, and stochastic draws land between the
	// physics settling and the scheduler's reaction, in server-ID
	// order on the engine's single goroutine. A crash scheduled at
	// at_min lands on the first fault tick at or after it.
	if injector != nil {
		if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityFault, span("fault", func(now time.Duration) {
			if s.runErr != nil {
				return
			}
			if err := injector.Tick(now, cfg.Step); err != nil {
				fail(err)
			}
		}, nil)); err != nil {
			return nil, err
		}
		// The guard shares the fault band, registered after the
		// injector so same-time events fire injector-then-guard: trust
		// decisions are made on the tick's settled reports, before the
		// scheduler band reads them.
		if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityFault, span("guard", func(now time.Duration) {
			if s.runErr != nil {
				return
			}
			guard.Tick(now)
		}, nil)); err != nil {
			return nil, err
		}
	}

	// Scheduling: reconcile the job population with the source.
	if _, err := eng.Every(0, cfg.Step, sim.PriorityScheduler, span("schedule", func(now time.Duration) {
		if s.runErr != nil {
			return
		}
		if err := reconcile.Reconcile(now); err != nil {
			fail(err)
		}
	}, func() map[string]float64 {
		args := map[string]float64{"total_power_w": s.lastSample.TotalPowerW}
		if hasGroups {
			args["hot_group_size"] = float64(grouper.HotGroupSize())
		}
		return args
	})); err != nil {
		return nil, err
	}

	// Metrics: sample the settled state each period (after the first
	// physics step so the series align with elapsed intervals).
	if _, err := eng.Every(cfg.Step, cfg.Step, sim.PriorityMetrics, span("sample", func(now time.Duration) {
		if s.runErr != nil {
			return
		}
		lastSample := s.lastSample
		if hasMetric {
			runTicks.Inc()
			// How much of the fleet the physics memo is coasting
			// through — observational only, no control decisions.
			settledG.Set(float64(lastSample.SettledServers))
			for i, f := range lastSample.MeltFrac {
				meltHist.Observe(f)
				if lastSample.AirTempC[i] >= pmtC {
					abovePMT.Add(stepSecs)
				}
			}
		}
		res.CoolingLoadW.Append(lastSample.CoolingLoadW)
		res.TotalPowerW.Append(lastSample.TotalPowerW)
		res.MeanAirTempC.Append(lastSample.MeanAirTempC)
		res.MeanMeltFrac.Append(lastSample.MeanMeltFrac)
		res.MaxCPUTempC.Append(lastSample.MaxCPUTempC)
		if lastSample.ThrottlingServers > 0 {
			res.ThrottleMinutes++
		}
		// The cluster accumulates the fleet wax ledger during its own
		// reduction (same ID-order sum this loop used to run).
		res.WaxEnergyJ.Append(lastSample.WaxEnergyJ)
		if hasGroups {
			size := grouper.HotGroupSize()
			res.HotGroupSize.Append(float64(size))
			var sum float64
			for i := 0; i < size; i++ {
				sum += lastSample.AirTempC[i]
			}
			if size > 0 {
				res.HotGroupTempC.Append(sum / float64(size))
			} else {
				res.HotGroupTempC.Append(lastSample.MeanAirTempC)
			}
		}
		if cfg.RecordGrids {
			air := make([]float64, len(lastSample.AirTempC))
			copy(air, lastSample.AirTempC)
			melt := make([]float64, len(lastSample.MeltFrac))
			copy(melt, lastSample.MeltFrac)
			res.AirTempGrid = append(res.AirTempGrid, air)
			res.MeltFracGrid = append(res.MeltFracGrid, melt)
		}
		// Streamed telemetry: one observation per series per tick, fed
		// into the bounded-memory window samplers. Ticks are 1-based
		// (the first sample lands after one elapsed step).
		if cfg.Stream != nil || cfg.Fleet != nil {
			tick := int64(now / cfg.Step)
			stCooling.Observe(tick, lastSample.CoolingLoadW)
			stPower.Observe(tick, lastSample.TotalPowerW)
			stAirTemp.Observe(tick, lastSample.MeanAirTempC)
			stMelt.Observe(tick, lastSample.MeanMeltFrac)
			stMaxCPU.Observe(tick, lastSample.MaxCPUTempC)
			if hasGroups {
				stHotSize.Observe(tick, float64(grouper.HotGroupSize()))
			}
			if cfg.Fleet != nil {
				// A fresh immutable snapshot per tick: readers of the
				// live view may hold the previous one indefinitely.
				snap := &telemetry.FleetSnapshot{
					Tick:         tick,
					SimNS:        int64(now),
					CoolingLoadW: lastSample.CoolingLoadW,
					TotalPowerW:  lastSample.TotalPowerW,
					Servers:      make([]telemetry.ServerState, len(lastSample.AirTempC)),
				}
				hot := 0
				if hasGroups {
					hot = grouper.HotGroupSize()
				}
				for i := range snap.Servers {
					st := telemetry.ServerState{
						ID:       i,
						AirTempC: lastSample.AirTempC[i],
						MeltFrac: lastSample.MeltFrac[i],
						Crashed:  cl.Server(i).Failed(),
					}
					if hasGroups {
						if i < hot {
							st.Group = "hot"
						} else {
							st.Group = "cold"
						}
					}
					snap.Servers[i] = st
				}
				cfg.Fleet.Publish(snap)
			}
		}
	}, func() map[string]float64 {
		args := map[string]float64{"max_cpu_temp_c": s.lastSample.MaxCPUTempC}
		if n := res.WaxEnergyJ.Len(); n > 0 {
			args["wax_energy_j"] = res.WaxEnergyJ.Values[n-1]
		}
		return args
	})); err != nil {
		return nil, err
	}
	res.CoolingLoadW.Start = cfg.Step
	res.TotalPowerW.Start = cfg.Step
	res.MeanAirTempC.Start = cfg.Step
	res.MeanMeltFrac.Start = cfg.Step
	res.WaxEnergyJ.Start = cfg.Step
	res.MaxCPUTempC.Start = cfg.Step
	if hasGroups {
		res.HotGroupTempC.Start = cfg.Step
		res.HotGroupSize.Start = cfg.Step
	}
	return s, nil
}

// fail latches the first error; later handlers see it and no-op.
func (s *Session) fail(err error) {
	if s.runErr == nil {
		s.runErr = err
	}
}

// Tick returns the number of completed steps.
func (s *Session) Tick() int64 { return int64(s.eng.Now() / s.step) }

// Now returns the session's simulated time.
func (s *Session) Now() time.Duration { return s.eng.Now() }

// Done reports whether a finite-horizon session has reached its end.
// Open-ended sessions (an open-loop Source with no Horizon) are never
// done.
func (s *Session) Done() bool {
	return s.horizon > 0 && s.eng.Now() >= s.horizon
}

// Step advances the session n ticks (clamped to the horizon, when
// finite), then seals every telemetry window the advance completed so
// streamed runs flush incrementally on step boundaries. Stepping a
// finished session is a no-op; stepping a closed or failed session
// returns the latched error.
func (s *Session) Step(n int) error {
	if s.closed {
		return fmt.Errorf("vmt: session is closed")
	}
	if n <= 0 {
		return fmt.Errorf("vmt: step count %d must be positive", n)
	}
	if s.runErr != nil {
		return s.runErr
	}
	target := s.eng.Now() + time.Duration(n)*s.step
	if s.horizon > 0 && target > s.horizon {
		target = s.horizon
	}
	if err := s.eng.RunUntil(target); err != nil {
		s.fail(err)
		return err
	}
	if s.runErr != nil {
		return s.runErr
	}
	s.cfg.Stream.SealThrough(s.Tick())
	return nil
}

// StepAll advances a finite-horizon session to its end in one engine
// pass — exactly the monolithic Run loop, so Run-over-Session keeps
// every golden fixture byte-identical and pays no per-step overhead.
func (s *Session) StepAll() error {
	if s.closed {
		return fmt.Errorf("vmt: session is closed")
	}
	if s.horizon == 0 {
		return fmt.Errorf("vmt: session is open-ended (Source with no Horizon); use Step")
	}
	if s.runErr != nil {
		return s.runErr
	}
	if err := s.eng.RunUntil(s.horizon); err != nil {
		s.fail(err)
		return err
	}
	return s.runErr
}

// Observe snapshots the session's externally visible state. Slices
// are freshly allocated; the caller owns them.
func (s *Session) Observe() Observation {
	last := s.lastSample
	obs := Observation{
		Tick:                 s.Tick(),
		SimTime:              s.eng.Now(),
		Done:                 s.Done(),
		Utilization:          s.src.At(s.eng.Now()),
		CoolingLoadW:         last.CoolingLoadW,
		TotalPowerW:          last.TotalPowerW,
		MeanAirTempC:         last.MeanAirTempC,
		MeanMeltFrac:         last.MeanMeltFrac,
		MaxCPUTempC:          last.MaxCPUTempC,
		WaxEnergyJ:           last.WaxEnergyJ,
		SettledServers:       last.SettledServers,
		ThrottlingServers:    last.ThrottlingServers,
		BusyCores:            s.cl.BusyCores(),
		PlacementsOverridden: s.override.Overridden(),
		Rejected:             s.override.Rejected(),
		Servers:              make([]ServerObservation, len(last.AirTempC)),
	}
	obs.FreeCores = s.cl.TotalCores() - obs.BusyCores
	if s.hasGroups {
		obs.HotGroupSize = s.grouper.HotGroupSize()
	}
	if s.stream != nil {
		obs.TaskArrivals = s.stream.Arrived()
		obs.TaskDrops = s.stream.Dropped()
	}
	for i := range obs.Servers {
		srv := s.cl.Server(i)
		so := ServerObservation{
			ID:        i,
			AirTempC:  last.AirTempC[i],
			MeltFrac:  last.MeltFrac[i],
			FreeCores: srv.FreeCores(),
			BusyCores: srv.BusyCores(),
			Crashed:   srv.Failed(),
		}
		if s.hasGroups {
			if i < obs.HotGroupSize {
				so.Group = "hot"
			} else {
				so.Group = "cold"
			}
		}
		obs.Servers[i] = so
	}
	return obs
}

// Place enqueues a one-shot directive: the next placement of the
// named workload lands on the given server, if it is alive with a
// free core at placement time (otherwise the built-in policy decides
// and the rejection is counted). The place half of the seam.
func (s *Session) Place(workloadName string, serverID int) error {
	if s.closed {
		return fmt.Errorf("vmt: session is closed")
	}
	if serverID < 0 || serverID >= s.cl.Len() {
		return fmt.Errorf("vmt: server %d out of range [0,%d)", serverID, s.cl.Len())
	}
	for _, e := range s.cfg.Mix.Entries() {
		if e.Workload.Name == workloadName {
			s.override.Direct(workloadName, serverID)
			return nil
		}
	}
	return fmt.Errorf("vmt: unknown workload %q", workloadName)
}

// SetPlacer installs (or, with nil, removes) a standing placement
// callback consulted for every placement: a non-negative return
// forces that server, a negative return defers to the built-in
// policy.
func (s *Session) SetPlacer(fn func(workloadName string) int) {
	if fn == nil {
		s.override.SetPlacer(nil)
		return
	}
	s.override.SetPlacer(func(w workload.Workload) int { return fn(w.Name) })
}

// Close seals the session: trailing telemetry windows flush, the
// scheduler and fault totals land on the Result, and the Result is
// returned — complete after a full run, a clean partial prefix after
// cancellation or failure (returned alongside the latched error).
// Close is idempotent.
func (s *Session) Close() (*Result, error) {
	if !s.closed {
		s.closed = true
		// Seal trailing partial windows so the stream's sink holds the
		// full run. Nil-safe.
		s.cfg.Stream.Flush()
		if s.stream != nil {
			s.res.TaskArrivals = s.stream.Arrived()
			s.res.TaskDrops = s.stream.Dropped()
		}
		if s.injector != nil {
			s.res.FaultCrashes = s.injector.Crashes()
			s.res.FaultRepairs = s.injector.Repairs()
			s.res.EvacuatedJobs = s.injector.Evacuated()
			s.res.LostJobs = s.injector.Lost()
			s.res.DomainTrips = s.injector.DomainTrips()
		}
		if s.guard != nil {
			s.res.ReportsQuarantined = s.guard.Quarantined()
		}
	}
	return s.res, s.runErr
}
