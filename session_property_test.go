package vmt

import (
	"io"
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// instrumented turns on every observational surface at once — the
// configuration under which bit-identity is hardest to preserve,
// because any instrument that leaked into a control decision would
// show up as divergence.
func instrumented(cfg Config) Config {
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewRecorder()
	cfg.Stream = telemetry.NewStream(telemetry.StreamOptions{WindowTicks: 8})
	cfg.Fleet = telemetry.NewFleetPublisher(telemetry.NewNDJSONFleetLog(io.Discard))
	cfg.ProfileBands = true
	return cfg
}

// stepSession opens cfg and advances it with the given chunk schedule
// (cycling through chunks until done), returning the closed Result.
func stepSession(t *testing.T, cfg Config, chunks []int) *Result {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !s.Done(); i++ {
		n := chunks[i%len(chunks)]
		if err := s.Step(n); err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Fatal("session never finished")
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The tentpole property: a session stepped tick-by-tick, or in ragged
// chunks, is bit-identical (Float64bits, via identicalSeries) to the
// monolithic Run of the same Config at every physics worker count —
// fully instrumented, across policies and both load models.
func TestSessionSteppedBitIdenticalToRun(t *testing.T) {
	f := func(peakPct, troughPct, noisePct uint8, seed uint64, wa, stream bool, c1, c2, c3 uint8) bool {
		policy := PolicyVMTTA
		if wa {
			policy = PolicyVMTWA
		}
		base := Scenario(9, policy, 22)
		base.Trace = randomTrace(peakPct, troughPct, noisePct, seed)
		base.Step = 2 * time.Minute
		base.JobStream = stream
		base.Seed = seed

		// Ragged chunk schedule from the fuzzed bytes: 1..17 ticks per
		// call, cycling. Always includes tick-by-tick via the separate
		// {1} schedule below.
		ragged := []int{int(c1%17) + 1, int(c2%17) + 1, int(c3%17) + 1}

		for _, workers := range []int{1, 2, 8} {
			cfg := base
			cfg.PhysicsWorkers = workers
			ref, err := Run(instrumented(cfg))
			if err != nil {
				t.Logf("workers=%d run: %v", workers, err)
				return false
			}
			for _, chunks := range [][]int{{1}, ragged} {
				got := stepSession(t, instrumented(cfg), chunks)
				if d := identicalSeries(ref, got); d != "" {
					t.Logf("workers=%d chunks=%v: %s", workers, chunks, d)
					return false
				}
				if got.ThrottleMinutes != ref.ThrottleMinutes ||
					got.TaskArrivals != ref.TaskArrivals ||
					got.TaskDrops != ref.TaskDrops {
					t.Logf("workers=%d chunks=%v: scalar outcomes diverged", workers, chunks)
					return false
				}
			}
		}
		return true
	}
	n := 6
	if testing.Short() {
		n = 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// Hot-group series (absent from identicalSeries' five core series)
// carry the same guarantee for the grouping policies.
func TestSessionSteppedHotGroupBitIdentical(t *testing.T) {
	cfg := Scenario(8, PolicyVMTPreserve, 24)
	cfg.Trace = smallTrace()
	cfg.Step = 2 * time.Minute
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := stepSession(t, cfg, []int{5, 1, 3})
	for _, pair := range []struct {
		name string
		x, y []float64
	}{
		{"hot_group_temp", ref.HotGroupTempC.Values, got.HotGroupTempC.Values},
		{"hot_group_size", ref.HotGroupSize.Values, got.HotGroupSize.Values},
		{"max_cpu", ref.MaxCPUTempC.Values, got.MaxCPUTempC.Values},
	} {
		if len(pair.x) != len(pair.y) {
			t.Fatalf("%s: length mismatch %d vs %d", pair.name, len(pair.x), len(pair.y))
		}
		for i := range pair.x {
			if pair.x[i] != pair.y[i] { //vmtlint:allow floateq bit-identity assertion: stepped must equal monolithic exactly
				t.Fatalf("%s diverged at sample %d", pair.name, i)
			}
		}
	}
}

// Source-driven sessions carry the determinism guarantee too: the
// generators are random-access (value at tick i is a pure function of
// seed and i), so chunking cannot perturb the arrival stream.
func TestSessionSteppedSourceBitIdentical(t *testing.T) {
	cfg := Scenario(6, PolicyVMTTA, 22)
	cfg.Step = 2 * time.Minute
	cfg.Horizon = 3 * time.Hour
	specs := map[string]*workload.SourceSpec{
		"poisson": {Kind: "poisson", Level: 0.5, Events: 40, Seed: 7},
		"bursty": {Kind: "bursty", Level: 0.3, BurstUtil: 0.85,
			BurstProb: 0.25, EpochMin: 12, Seed: 7},
		"flashcrowd": {Kind: "flashcrowd", Level: 0.35, SpikeUtil: 0.9,
			SpikeEveryMin: 45, SpikeDecayMin: 15, Seed: 7},
	}
	for _, kind := range []string{"poisson", "bursty", "flashcrowd"} {
		cfg.Source = specs[kind]
		ref, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got := stepSession(t, cfg, []int{7, 2})
		if d := identicalSeries(ref, got); d != "" {
			t.Fatalf("%s: %s", kind, d)
		}
	}
}
