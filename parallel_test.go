package vmt

import (
	"testing"
)

func TestRunManyMatchesSequential(t *testing.T) {
	cfgs := []Config{
		func() Config { c := Scenario(5, PolicyRoundRobin, 0); c.Trace = smallTrace(); return c }(),
		func() Config { c := Scenario(5, PolicyVMTTA, 22); c.Trace = smallTrace(); return c }(),
		func() Config { c := Scenario(5, PolicyVMTWA, 22); c.Trace = smallTrace(); return c }(),
	}
	parallel, err := RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		seq, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].PeakCoolingW() != seq.PeakCoolingW() {
			t.Fatalf("cfg %d: parallel %v != sequential %v",
				i, parallel[i].PeakCoolingW(), seq.PeakCoolingW())
		}
		for j := range seq.CoolingLoadW.Values {
			if parallel[i].CoolingLoadW.Values[j] != seq.CoolingLoadW.Values[j] {
				t.Fatalf("cfg %d diverged at sample %d", i, j)
			}
		}
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	cfgs := []Config{
		func() Config { c := Scenario(3, PolicyRoundRobin, 0); c.Trace = smallTrace(); return c }(),
		Scenario(0, PolicyRoundRobin, 0), // invalid
	}
	if _, err := RunMany(cfgs); err == nil {
		t.Fatal("invalid config should fail the batch")
	}
}

func TestRunManyNWorkerBounds(t *testing.T) {
	if _, err := RunManyN(nil, 0); err == nil {
		t.Fatal("zero workers should fail")
	}
	cfg := Scenario(3, PolicyRoundRobin, 0)
	cfg.Trace = smallTrace()
	res, err := RunManyN([]Config{cfg}, 16) // workers > jobs
	if err != nil || len(res) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
