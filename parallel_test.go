package vmt

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vmt/internal/telemetry"
)

func TestRunManyMatchesSequential(t *testing.T) {
	cfgs := []Config{
		func() Config { c := BaselineScenario(5); c.Trace = smallTrace(); return c }(),
		func() Config { c := Scenario(5, PolicyVMTTA, 22); c.Trace = smallTrace(); return c }(),
		func() Config { c := Scenario(5, PolicyVMTWA, 22); c.Trace = smallTrace(); return c }(),
	}
	parallel, err := RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		seq, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].PeakCoolingW() != seq.PeakCoolingW() {
			t.Fatalf("cfg %d: parallel %v != sequential %v",
				i, parallel[i].PeakCoolingW(), seq.PeakCoolingW())
		}
		for j := range seq.CoolingLoadW.Values {
			if parallel[i].CoolingLoadW.Values[j] != seq.CoolingLoadW.Values[j] {
				t.Fatalf("cfg %d diverged at sample %d", i, j)
			}
		}
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	cfgs := []Config{
		func() Config { c := BaselineScenario(3); c.Trace = smallTrace(); return c }(),
		BaselineScenario(0), // invalid
	}
	if _, err := RunMany(cfgs); err == nil {
		t.Fatal("invalid config should fail the batch")
	}
}

func TestRunManyNWorkerBounds(t *testing.T) {
	if _, err := RunManyN(nil, 0); err == nil {
		t.Fatal("zero workers should fail")
	}
	cfg := BaselineScenario(3)
	cfg.Trace = smallTrace()
	res, err := RunManyN([]Config{cfg}, 16) // workers > jobs
	if err != nil || len(res) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

// TestRunManyPartialResults is the error-path contract: the returned
// error names the failing configuration's index, every other run still
// completes, and its result is populated.
func TestRunManyPartialResults(t *testing.T) {
	mk := func(servers int) Config {
		c := BaselineScenario(servers)
		c.Trace = smallTrace()
		return c
	}
	cfgs := []Config{mk(3), BaselineScenario(0) /* invalid */, mk(4)}
	results, err := RunManyN(cfgs, 2)
	if err == nil {
		t.Fatal("invalid config should fail the batch")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %v does not carry a *RunError", err)
	}
	if re.Index != 1 {
		t.Fatalf("failing index = %d, want 1", re.Index)
	}
	if len(results) != 3 {
		t.Fatalf("results length = %d, want 3", len(results))
	}
	if results[0] == nil || results[2] == nil {
		t.Fatalf("successful runs not populated: %v", results)
	}
	if results[1] != nil {
		t.Fatal("failed run should have a nil result")
	}
	// The completed runs match a sequential Run of the same config.
	seq, err := Run(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if results[2].PeakCoolingW() != seq.PeakCoolingW() {
		t.Fatal("in-flight run did not complete equivalently")
	}
}

func TestRunManyOptsProgressAndThroughput(t *testing.T) {
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = BaselineScenario(3)
		cfgs[i].Trace = smallTrace()
	}
	var buf bytes.Buffer
	if _, err := RunManyOpts(cfgs, BatchOptions{Workers: 2, Progress: &buf}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(cfgs) {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), len(cfgs), buf.String())
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "3/3") || !strings.Contains(last, "runs/s") {
		t.Fatalf("last progress line malformed: %q", last)
	}
	// Every line forecasts the remainder; the final line's remainder
	// is zero.
	for _, line := range lines {
		if !strings.Contains(line, "eta ") {
			t.Fatalf("progress line missing eta: %q", line)
		}
	}
	if !strings.Contains(last, "eta 0s") {
		t.Fatalf("final progress line should have eta 0s: %q", last)
	}
}

// TestRunManyOptsSharedStreamTagsRuns checks a batch-shared window
// stream forks per run: records from concurrent runs interleave in one
// sink but stay separable by run index.
func TestRunManyOptsSharedStreamTagsRuns(t *testing.T) {
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = BaselineScenario(3)
		cfgs[i].Trace = smallTrace()
	}
	var buf bytes.Buffer
	sink := telemetry.NewNDJSONSink(&buf) // sink serializes concurrent emits itself
	shared := telemetry.NewStream(telemetry.StreamOptions{WindowTicks: 4, Sink: sink})
	if _, err := RunManyOpts(cfgs, BatchOptions{Workers: 3, Stream: shared}); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perRun := map[int]int{}
	for _, rec := range recs {
		perRun[rec.Run]++
	}
	for i := range cfgs {
		if perRun[i] == 0 {
			t.Fatalf("no window records tagged run %d: %v", i, perRun)
		}
	}
}

// TestRunManyOptsSharedTracerTagsRuns checks a batch-shared recorder
// separates runs by index, and a shared registry aggregates.
func TestRunManyOptsSharedTracerTagsRuns(t *testing.T) {
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = BaselineScenario(3)
		cfgs[i].Trace = smallTrace()
	}
	rec := telemetry.NewRecorder()
	reg := telemetry.NewRegistry()
	if _, err := RunManyOpts(cfgs, BatchOptions{Tracer: rec, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	runs := map[int]int{}
	for _, ev := range rec.Events() {
		runs[ev.Run]++
	}
	if len(runs) != len(cfgs) {
		t.Fatalf("expected spans from %d runs, saw %v", len(cfgs), runs)
	}
	// run_ticks aggregates: 1-day trace at 1-minute step → 1440 ticks
	// per run.
	if got := reg.Counter("run_ticks").Value(); got != uint64(len(cfgs))*1440 {
		t.Fatalf("run_ticks = %d, want %d", got, len(cfgs)*1440)
	}
}
