package vmt_test

import (
	"fmt"

	"vmt"
)

// The TCO arithmetic is exact, so its examples double as the paper's
// Section V-E numbers.
func ExampleRunTCOStudy() {
	study, err := vmt.RunTCOStudy(12.8) // the paper's headline reduction
	if err != nil {
		panic(err)
	}
	fmt.Printf("cooling system: %.1f MW instead of 25 MW\n", study.Best.CoolingLoadMW)
	fmt.Printf("lifetime savings: $%.0f\n", study.Best.GrossCoolingSavingsUSD)
	fmt.Printf("or extra servers: %d\n", study.Best.ExtraServers)
	fmt.Printf("conservative 6%%: $%.0f or %d servers\n",
		study.Conservative.GrossCoolingSavingsUSD, study.Conservative.ExtraServers)
	// Output:
	// cooling system: 21.8 MW instead of 25 MW
	// lifetime savings: $2688000
	// or extra servers: 7339
	// conservative 6%: $1260000 or 3191 servers
}

func ExampleScenario() {
	cfg := vmt.Scenario(1000, vmt.PolicyVMTWA, 22)
	fmt.Println(cfg.Servers, cfg.Policy, cfg.GV)
	// Output: 1000 vmt-wa 22
}

func ExampleConfig_Validate() {
	bad := vmt.Scenario(100, vmt.PolicyVMTTA, 0) // VMT needs a GV
	fmt.Println(bad.Validate())
	// Output: vmt: policy vmt-ta requires a positive GV
}
