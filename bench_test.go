package vmt

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation. Each benchmark regenerates its artifact
// from scratch and reports the headline quantity as a custom metric,
// so `go test -bench=. -benchmem` doubles as the full reproduction
// run. Sweep-style figures use trimmed parameter grids here to keep
// the run minutes-scale; cmd/vmtreport regenerates them at full
// resolution.

import (
	"io"
	"testing"
	"time"

	"vmt/internal/energy"
	"vmt/internal/pcm"
	"vmt/internal/telemetry"
	"vmt/internal/thermal"
	"vmt/internal/trace"
)

// benchServers keeps the scale-out benchmarks at the paper's sweep
// size; the 1,000-server headline runs in TestShape* and vmtreport.
const benchServers = 100

// benchNoCache disables the session run cache for one benchmark, so
// study benchmarks keep measuring from-scratch regeneration (their
// meaning in earlier BENCH records) instead of cache-hit time after
// the first iteration. The explicit Cached/Uncached pair below is the
// one place the cache itself is measured.
func benchNoCache(b *testing.B) {
	b.Helper()
	RunCache().SetEnabled(false)
	b.Cleanup(func() { RunCache().SetEnabled(true) })
}

func BenchmarkTable01WorkloadCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := TableIRows()
		if len(rows) != 5 {
			b.Fatal("catalog size")
		}
	}
}

func BenchmarkFig01FeasibilityRegions(b *testing.B) {
	var vmtOnly int
	for i := 0; i < b.N; i++ {
		panels, err := FeasibilityMap(5)
		if err != nil {
			b.Fatal(err)
		}
		vmtOnly = 0
		for _, p := range panels {
			for _, pt := range p.Points {
				if pt.Class.String() == "Needs VMT" {
					vmtOnly++
				}
			}
		}
	}
	b.ReportMetric(float64(vmtOnly), "needs-vmt-points")
}

func BenchmarkFig02TTSFlattening(b *testing.B) {
	var flattened float64
	for i := 0; i < b.N; i++ {
		node, err := thermal.NewNode(thermal.PaperServer(), pcm.CommercialParaffin(), 22)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		var peakPower, peakLoad float64
		for m := 0; m <= int(tr.Duration().Minutes()); m++ {
			u := tr.At(time.Duration(m) * time.Minute)
			power := 100 + u*32*9.0
			res, err := node.Step(power, time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			if power > peakPower {
				peakPower = power
			}
			if res.CoolingLoadW > peakLoad {
				peakLoad = res.CoolingLoadW
			}
		}
		flattened = (peakPower - peakLoad) / peakPower * 100
	}
	b.ReportMetric(flattened, "peak-shaved-%")
}

func BenchmarkFig06ColocationQoS(b *testing.B) {
	var p90 float64
	for i := 0; i < b.N; i++ {
		_, search, err := ColocationStudy()
		if err != nil {
			b.Fatal(err)
		}
		p90 = search[len(search)-1].Lat["2C+Caching"].P90S
	}
	b.ReportMetric(p90*1000, "search-p90-ms")
}

func BenchmarkFig07Reliability(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		_, threeYr, err := ReliabilityStudy(benchServers, 22)
		if err != nil {
			b.Fatal(err)
		}
		delta = threeYr.DeltaPct
	}
	b.ReportMetric(delta, "3yr-delta-pts")
}

func BenchmarkFig08Trace(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(trace.PaperTwoDay(), time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		peak, _ = tr.Peak()
	}
	b.ReportMetric(peak*100, "peak-util-%")
}

// heatmapBench runs the 100-server grid recording for one policy and
// reports the fleet peak melt fraction.
func heatmapBench(b *testing.B, policy Policy, gv float64) {
	b.Helper()
	var melt float64
	for i := 0; i < b.N; i++ {
		study, err := RunHeatmapStudy(benchServers, policy, gv)
		if err != nil {
			b.Fatal(err)
		}
		melt = 0
		last := study.MeltFracGrid[len(study.MeltFracGrid)-1]
		_ = last
		for _, row := range study.MeltFracGrid {
			var sum float64
			for _, v := range row {
				sum += v
			}
			if m := sum / float64(len(row)); m > melt {
				melt = m
			}
		}
	}
	b.ReportMetric(melt*100, "peak-melt-%")
}

func BenchmarkFig09RoundRobinHeatmap(b *testing.B)   { heatmapBench(b, PolicyRoundRobin, 0) }
func BenchmarkFig10CoolestFirstHeatmap(b *testing.B) { heatmapBench(b, PolicyCoolestFirst, 0) }
func BenchmarkFig11VMTTAHeatmap(b *testing.B)        { heatmapBench(b, PolicyVMTTA, 22) }
func BenchmarkFig14VMTWAHeatmap(b *testing.B)        { heatmapBench(b, PolicyVMTWA, 20) }

func BenchmarkTable02GVMapping(b *testing.B) {
	var span float64
	for i := 0; i < b.N; i++ {
		rows, err := GVMapping(benchServers, []float64{20, 22, 24, 26})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1e9, -1e9
		for _, r := range rows {
			if !r.Melts {
				continue
			}
			if r.VMTTempC < lo {
				lo = r.VMTTempC
			}
			if r.VMTTempC > hi {
				hi = r.VMTTempC
			}
		}
		span = hi - lo
	}
	b.ReportMetric(span, "vmt-span-C")
}

// hotGroupTempBench reports the peak hot-group temperature at the best
// GV (Figures 12 and 15).
func hotGroupTempBench(b *testing.B, policy Policy) {
	b.Helper()
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := Run(Scenario(benchServers, policy, 22))
		if err != nil {
			b.Fatal(err)
		}
		peak, _, _ = res.HotGroupTempC.Peak()
	}
	b.ReportMetric(peak, "hot-peak-C")
}

func BenchmarkFig12HotGroupTempTA(b *testing.B) { hotGroupTempBench(b, PolicyVMTTA) }
func BenchmarkFig15HotGroupTempWA(b *testing.B) { hotGroupTempBench(b, PolicyVMTWA) }

// coolingLoadBench reports the GV=22 peak reduction (Figures 13/16).
func coolingLoadBench(b *testing.B, policy Policy) {
	b.Helper()
	benchNoCache(b)
	var best float64
	for i := 0; i < b.N; i++ {
		study, err := RunCoolingLoadStudy(benchServers, policy, []float64{20, 22, 24})
		if err != nil {
			b.Fatal(err)
		}
		best = study.Reductions["GV=22"]
	}
	b.ReportMetric(best, "gv22-reduction-%")
}

func BenchmarkFig13CoolingLoadTA(b *testing.B) { coolingLoadBench(b, PolicyVMTTA) }
func BenchmarkFig16CoolingLoadWA(b *testing.B) { coolingLoadBench(b, PolicyVMTWA) }

func BenchmarkFig17WaxThreshold(b *testing.B) {
	benchNoCache(b)
	var plateau float64
	for i := 0; i < b.N; i++ {
		pts, err := WaxThresholdSweep(benchServers, 22, []float64{0.85, 0.95, 0.98})
		if err != nil {
			b.Fatal(err)
		}
		plateau = pts[len(pts)-1].ReductionPct
	}
	b.ReportMetric(plateau, "plateau-reduction-%")
}

func BenchmarkFig18GVSweep(b *testing.B) {
	benchNoCache(b)
	var best float64
	for i := 0; i < b.N; i++ {
		pts, err := GVSweep(benchServers, PolicyVMTTA, []float64{18, 20, 22, 24, 26})
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, p := range pts {
			if p.ReductionPct > best {
				best = p.ReductionPct
			}
		}
	}
	b.ReportMetric(best, "best-reduction-%")
}

// inletVariationBench uses a trimmed grid (the full Figure 19/20 grids
// run in cmd/vmtreport).
func inletVariationBench(b *testing.B, policy Policy) {
	b.Helper()
	benchNoCache(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := InletVariationStudy(benchServers, policy, []float64{22}, []float64{0, 2}, 2)
		if err != nil {
			b.Fatal(err)
		}
		worst = pts[len(pts)-1].ReductionPct
	}
	b.ReportMetric(worst, "stdev2-reduction-%")
}

func BenchmarkFig19InletVariationTA(b *testing.B) { inletVariationBench(b, PolicyVMTTA) }
func BenchmarkFig20InletVariationWA(b *testing.B) { inletVariationBench(b, PolicyVMTWA) }

func BenchmarkTCOSavings(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		study, err := RunTCOStudy(12.8)
		if err != nil {
			b.Fatal(err)
		}
		savings = study.Best.GrossCoolingSavingsUSD
	}
	b.ReportMetric(savings/1e6, "savings-M$")
}

// BenchmarkClusterStep measures the simulator's core step cost, the
// throughput limit of every scale-out experiment.
func BenchmarkClusterStep(b *testing.B) {
	cfg := Scenario(benchServers, PolicyVMTTA, 22)
	cfg.Trace = trace.PaperTwoDay()
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchServers*48*60)/b.Elapsed().Seconds()/float64(b.N), "server-minutes/s")
}

// ===== Ablations (design choices called out in DESIGN.md) =====

// BenchmarkAblationWaxFeedback quantifies the wax-state feedback loop:
// VMT-WA vs VMT-TA at a GV where only feedback preserves benefit.
func BenchmarkAblationWaxFeedback(b *testing.B) {
	benchNoCache(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		pts, err := AblationStudy(benchServers, 20)
		if err != nil {
			b.Fatal(err)
		}
		red := map[string]float64{}
		for _, p := range pts {
			red[p.Name] = p.ReductionPct
		}
		gain = red["wa"] - red["ta"]
	}
	b.ReportMetric(gain, "wa-over-ta-pts")
}

// BenchmarkAblationOracleWaxState measures what perfect wax sensing
// would add over the per-server lookup-table estimator.
func BenchmarkAblationOracleWaxState(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		def, err := PeakReductionPct(Scenario(benchServers, PolicyVMTWA, 22))
		if err != nil {
			b.Fatal(err)
		}
		cfg := Scenario(benchServers, PolicyVMTWA, 22)
		cfg.OracleWaxState = true
		oracle, err := PeakReductionPct(cfg)
		if err != nil {
			b.Fatal(err)
		}
		delta = oracle - def
	}
	b.ReportMetric(delta, "oracle-gain-pts")
}

// BenchmarkAblationPreserve exercises the wax-preserving extension on
// the warm-night scenario where it matters.
func BenchmarkAblationPreserve(b *testing.B) {
	var dayTwoGain float64
	for i := 0; i < b.N; i++ {
		tr := AsymmetricTwoDay(0.90)
		tr.TroughUtil = 0.62
		run := func(p Policy) *Result {
			cfg := Scenario(benchServers, p, 22)
			cfg.Trace = tr
			if p == PolicyVMTPreserve {
				cfg.PreserveUntil = 38 * time.Hour
			}
			r, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		base := run(PolicyRoundRobin)
		_, waD2 := dayPeakReductions(base, run(PolicyVMTWA))
		_, presD2 := dayPeakReductions(base, run(PolicyVMTPreserve))
		dayTwoGain = presD2 - waD2
	}
	b.ReportMetric(dayTwoGain, "day2-gain-pts")
}

// BenchmarkAblationTraceSharpness measures how the diurnal peak shape
// moves the headline reduction (the pre-peak melt budget).
func BenchmarkAblationTraceSharpness(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		reds := make([]float64, 0, 2)
		for _, sharp := range []float64{1.0, 2.0} {
			tr := trace.PaperTwoDay()
			tr.PeakSharpness = sharp
			cfg := Scenario(benchServers, PolicyVMTTA, 22)
			cfg.Trace = tr
			red, err := PeakReductionPct(cfg)
			if err != nil {
				b.Fatal(err)
			}
			reds = append(reds, red)
		}
		spread = reds[1] - reds[0]
	}
	b.ReportMetric(spread, "sharp2-vs-1-pts")
}

// BenchmarkOversubscription validates the more-servers-same-cooling
// claim in simulation (Section V-E) with a 25% safety derate.
func BenchmarkOversubscription(b *testing.B) {
	var headroom float64
	for i := 0; i < b.N; i++ {
		st, err := RunOversubscriptionStudy(benchServers*2, PolicyVMTTA, 22, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		if !st.FitsBudget {
			b.Fatalf("enlarged fleet violated the budget: %+v", st)
		}
		headroom = st.HeadroomPct
	}
	b.ReportMetric(headroom, "headroom-%")
}

// BenchmarkAdaptabilityAmbient quantifies the Section I motivation:
// VMT's advantage over fixed wax at a cool ambient where TTS strands.
func BenchmarkAdaptabilityAmbient(b *testing.B) {
	benchNoCache(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		pts, err := AmbientSweep(benchServers, []float64{20}, []float64{18, 20, 22})
		if err != nil {
			b.Fatal(err)
		}
		gain = pts[0].VMTReductionPct - pts[0].TTSReductionPct
	}
	b.ReportMetric(gain, "vmt-over-tts-pts")
}

// BenchmarkAdaptabilityDrift quantifies the lifetime-drift motivation
// at a reduced workload power level.
func BenchmarkAdaptabilityDrift(b *testing.B) {
	benchNoCache(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		pts, err := DriftSweep(benchServers, []float64{1.3}, []float64{18, 20, 22})
		if err != nil {
			b.Fatal(err)
		}
		gain = pts[0].VMTReductionPct - pts[0].TTSReductionPct
	}
	b.ReportMetric(gain, "vmt-over-tts-pts")
}

// BenchmarkRunMany measures parallel sweep throughput.
func BenchmarkRunMany(b *testing.B) {
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = Scenario(25, PolicyVMTTA, 20+float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJobStream measures VMT's reduction under the query-level
// load model (Poisson arrivals, sampled durations) — the burstiness
// robustness check.
func BenchmarkJobStream(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		rr := BaselineScenario(benchServers)
		rr.JobStream = true
		base, err := Run(rr)
		if err != nil {
			b.Fatal(err)
		}
		cfg := Scenario(benchServers, PolicyVMTTA, 22)
		cfg.JobStream = true
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		red = (base.PeakCoolingW() - res.PeakCoolingW()) / base.PeakCoolingW() * 100
	}
	b.ReportMetric(red, "jobstream-reduction-%")
}

// BenchmarkAdaptiveGV runs the day-ahead closed loop (forecast → tune
// → retune) on a regime-shift week and reports the adaptive-vs-static
// margin.
func BenchmarkAdaptiveGV(b *testing.B) {
	benchNoCache(b)
	var margin float64
	for i := 0; i < b.N; i++ {
		st, err := RunAdaptiveGVStudy(benchServers, 50,
			[]float64{0.75, 0.76, 0.74, 0.95, 0.94, 0.95},
			[]float64{16, 18, 20, 22, 24})
		if err != nil {
			b.Fatal(err)
		}
		margin = st.MeanAdaptivePct - st.MeanStaticPct
	}
	b.ReportMetric(margin, "adaptive-margin-pts")
}

// BenchmarkEnergyCost prices the time-of-use cooling bill of VMT
// against round robin (the paper's closing off-peak-energy point).
func BenchmarkEnergyCost(b *testing.B) {
	var savings float64
	for i := 0; i < b.N; i++ {
		st, err := RunEnergyCostStudy(benchServers, 22, energy.TypicalTOU())
		if err != nil {
			b.Fatal(err)
		}
		savings = st.SavingsPct
	}
	b.ReportMetric(savings, "tou-savings-%")
}

// BenchmarkZonePlacement quantifies the paper's distribute-the-hot-
// group parenthetical: extra CRAC capacity a physically clustered hot
// group would demand.
func BenchmarkZonePlacement(b *testing.B) {
	var oversize float64
	for i := 0; i < b.N; i++ {
		st, err := RunZonePlacementStudy(benchServers, 5, 22)
		if err != nil {
			b.Fatal(err)
		}
		oversize = st.CRACOversizePct
	}
	b.ReportMetric(oversize, "crac-oversize-%")
}

// BenchmarkPMTSweep quantifies the melting-point purchasing cliff.
func BenchmarkPMTSweep(b *testing.B) {
	benchNoCache(b)
	var cliff float64
	for i := 0; i < b.N; i++ {
		pts, err := PMTSweep(60, []float64{35.7, 40}, []float64{20, 22, 24})
		if err != nil {
			b.Fatal(err)
		}
		cliff = pts[0].ReductionPct - pts[1].ReductionPct
	}
	b.ReportMetric(cliff, "pmt-cliff-pts")
}

// BenchmarkVolumeSweep quantifies what doubling the 4 L deployment
// would buy.
func BenchmarkVolumeSweep(b *testing.B) {
	benchNoCache(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		pts, err := VolumeSweep(60, []float64{4, 8}, []float64{20, 22, 24})
		if err != nil {
			b.Fatal(err)
		}
		gain = pts[1].ReductionPct - pts[0].ReductionPct
	}
	b.ReportMetric(gain, "8L-over-4L-pts")
}

// BenchmarkRun is the telemetry overhead baseline: one uninstrumented
// run at the paper sweep size. BenchmarkRunTraced must stay within a
// few percent of it.
func BenchmarkRun(b *testing.B) {
	cfg := Scenario(benchServers, PolicyVMTTA, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionStep runs the identical configuration through the
// resumable Session, stepped tick-by-tick — the worst case for the
// step/observe seam, since every tick pays the Step bookkeeping
// (horizon clamp, context check, stream seal scan). The acceptance
// bound against BenchmarkRun is ≤5% overhead.
func BenchmarkSessionStep(b *testing.B) {
	cfg := Scenario(benchServers, PolicyVMTTA, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for !s.Done() {
			if err := s.Step(1); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTraced runs the identical configuration with the full
// telemetry stack attached — recording tracer plus metrics registry —
// to quantify instrumentation overhead against BenchmarkRun.
func BenchmarkRunTraced(b *testing.B) {
	cfg := Scenario(benchServers, PolicyVMTTA, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Tracer = telemetry.NewRecorder()
		c.Metrics = telemetry.NewRegistry()
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunStreamed runs the identical configuration with the
// windowed time-series stream attached, sealed windows flushing to an
// NDJSON sink — the streaming-sink overhead on BenchmarkRun. The
// acceptance bound is ≤5%; measured, the stream disappears into run
// noise (~1%): six Observe calls per tick against a 40 ms run.
func BenchmarkRunStreamed(b *testing.B) {
	cfg := Scenario(benchServers, PolicyVMTTA, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Stream = telemetry.NewStream(telemetry.StreamOptions{
			Sink: telemetry.NewNDJSONSink(io.Discard),
		})
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFullObservability attaches every instrument at once —
// stream, per-tick fleet NDJSON log, metrics registry, and band
// profiling — the worst-case fully-observed run. The fleet log
// dominates (it writes every server's state every tick: pure
// AppendFloat volume), and band profiling pays two runtime/metrics
// reads per span, billed to profiler_self_ns. Both are opt-in
// diagnostics, priced here so nobody discovers the bill in production.
func BenchmarkRunFullObservability(b *testing.B) {
	cfg := Scenario(benchServers, PolicyVMTTA, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Metrics = telemetry.NewRegistry()
		c.Stream = telemetry.NewStream(telemetry.StreamOptions{
			Sink: telemetry.NewNDJSONSink(io.Discard),
		})
		c.Fleet = telemetry.NewFleetPublisher(telemetry.NewNDJSONFleetLog(io.Discard))
		c.ProfileBands = true
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// ===== Experiment-engine run cache =====

// BenchmarkAblationStudyUncached regenerates the ablation from scratch
// every iteration (session cache disabled) — the pre-engine cost of
// the study.
func BenchmarkAblationStudyUncached(b *testing.B) {
	benchNoCache(b)
	for i := 0; i < b.N; i++ {
		if _, err := AblationStudy(benchServers, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStudyCached regenerates the ablation with the
// session cache warm — what a repeated artifact pass (vmtreport
// regenerating figures that share configurations) pays per study.
func BenchmarkAblationStudyCached(b *testing.B) {
	c := RunCache()
	c.SetEnabled(true)
	c.Reset()
	b.Cleanup(c.Reset)
	if _, err := AblationStudy(benchServers, 20); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AblationStudy(benchServers, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// adaptiveGVBenchArgs keeps both adaptive cache benchmarks on the same
// downsized closed loop.
func runAdaptiveGVBench(b *testing.B) {
	b.Helper()
	if _, err := RunAdaptiveGVStudy(50, 25,
		[]float64{0.75, 0.95}, []float64{18, 20, 22}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdaptiveGVStudyUncached runs the closed loop with the cache
// disabled: every tuning run, the static sweep, and the final
// three-way comparison all simulate.
func BenchmarkAdaptiveGVStudyUncached(b *testing.B) {
	benchNoCache(b)
	for i := 0; i < b.N; i++ {
		runAdaptiveGVBench(b)
	}
}

// BenchmarkAdaptiveGVStudyCached resets the cache every iteration, so
// only the study's own internal reuse counts: the final comparison's
// round-robin base and static winner are exact hits from the static
// sweep, leaving one fresh full-trace simulation instead of three.
func BenchmarkAdaptiveGVStudyCached(b *testing.B) {
	c := RunCache()
	c.SetEnabled(true)
	b.Cleanup(c.Reset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		runAdaptiveGVBench(b)
	}
}
