package vmt

import (
	"fmt"

	"vmt/internal/qos"
	"vmt/internal/workload"
)

// LatencyImpact compares Web Search latency on a socket of a balanced
// (round-robin) server against a socket of a VMT hot-group server at
// peak load — the question an SRE asks before turning VMT on: does
// concentrating hot jobs hurt the latency-critical service riding
// along with them?
//
// The analysis composes the per-socket core allocation implied by each
// placement policy at peak utilization with the Figure 6 interference
// model. A perhaps counterintuitive outcome of the class grouping:
// the hot group contains *no Data Caching* (cold class), so search
// loses its most memory-aggressive neighbor and its latency can
// improve relative to balanced placement even though the hot group
// runs hotter.
type LatencyImpact struct {
	// RR and Hot are the search latencies on the two socket types.
	RR, Hot qos.Latency
	// MeanDeltaPct is (Hot−RR)/RR × 100 for the mean; negative means
	// the hot group is better for search.
	MeanDeltaPct float64
	// SearchCoresRR and SearchCoresHot are the per-socket core counts
	// the compositions imply.
	SearchCoresRR, SearchCoresHot int
}

// RunLatencyImpactStudy evaluates the comparison at peak utilization
// for the paper mix and the given GV.
func RunLatencyImpactStudy(gv float64, peakUtil float64) (LatencyImpact, error) {
	if peakUtil <= 0 || peakUtil > 1 {
		return LatencyImpact{}, fmt.Errorf("vmt: peak utilization %v out of (0,1]", peakUtil)
	}
	mix := workload.PaperMix()
	const socketCores = 8.0

	// Round-robin socket: every workload in mix proportion at peakUtil.
	rrSearch := int(mix.Share("WebSearch")*socketCores*peakUtil + 0.5)
	if rrSearch < 1 {
		rrSearch = 1
	}
	rrNeighborCores := socketCores*peakUtil - float64(rrSearch)
	rrPartner, err := qos.Blend(
		[]qos.Service{qos.DataCaching(), qos.VideoEncoding(), qos.VirusScan(), qos.Clustering()},
		[]float64{mix.Share("DataCaching"), mix.Share("VideoEncoding"),
			mix.Share("VirusScan"), mix.Share("Clustering")})
	if err != nil {
		return LatencyImpact{}, err
	}

	// Hot-group socket at the given GV: hot workloads only, scaled so
	// the hot group absorbs the whole hot share of the load.
	hotShare := mix.HotShare()
	groupFrac := gv / 35.7
	occupancy := peakUtil * hotShare / groupFrac // cores busy per core owned
	if occupancy > 1 {
		occupancy = 1
	}
	hotSearchShare := mix.Share("WebSearch") / hotShare
	hotSearch := int(hotSearchShare*socketCores*occupancy + 0.5)
	if hotSearch < 1 {
		hotSearch = 1
	}
	hotNeighborCores := socketCores*occupancy - float64(hotSearch)
	hotPartner, err := qos.Blend(
		[]qos.Service{qos.VideoEncoding(), qos.Clustering()},
		[]float64{mix.Share("VideoEncoding"), mix.Share("Clustering")})
	if err != nil {
		return LatencyImpact{}, err
	}

	f := qos.PaperFixture()
	eval := func(searchCores int, partner qos.Service, partnerCores float64) (qos.Latency, error) {
		m := qos.Mix{Primary: f.Search, Cores: searchCores}
		if partnerCores >= 1 {
			m.Partner = &partner
			m.PartnerCores = int(partnerCores + 0.5)
			m.PartnerUtil = 1
		}
		return m.EvaluateClosed(f.SearchFixedClientsPerCore, f.SearchThinkS)
	}
	rrLat, err := eval(rrSearch, rrPartner, rrNeighborCores)
	if err != nil {
		return LatencyImpact{}, err
	}
	hotLat, err := eval(hotSearch, hotPartner, hotNeighborCores)
	if err != nil {
		return LatencyImpact{}, err
	}
	return LatencyImpact{
		RR:             rrLat,
		Hot:            hotLat,
		MeanDeltaPct:   (hotLat.MeanS - rrLat.MeanS) / rrLat.MeanS * 100,
		SearchCoresRR:  rrSearch,
		SearchCoresHot: hotSearch,
	}, nil
}
