package tco_test

import (
	"fmt"

	"vmt/internal/tco"
)

func ExampleEvaluate() {
	out, err := tco.Evaluate(tco.PaperParams(), 12.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("$%.0f saved, or %d extra servers (%d per cluster)\n",
		out.GrossCoolingSavingsUSD, out.ExtraServers, out.ExtraServersPerCluster)
	// Output: $2688000 saved, or 7339 extra servers (146 per cluster)
}

func ExampleParams_CoolingCostUSDPerMW() {
	// $7/kW·month over a 10-year depreciation.
	fmt.Printf("$%.0f per MW of cooling over its life\n",
		tco.PaperParams().CoolingCostUSDPerMW())
	// Output: $840000 per MW of cooling over its life
}
