package tco

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.CriticalPowerMW = 0 },
		func(p *Params) { p.CoolingDepreciationUSDPerKWMonth = 0 },
		func(p *Params) { p.CoolingLifetimeYears = 0 },
		func(p *Params) { p.ServerPeakPowerW = 0 },
		func(p *Params) { p.ServersPerCluster = 0 },
		func(p *Params) { p.WaxVolumeLPerServer = -1 },
		func(p *Params) { p.Material.DensityKgPerL = 0 },
	}
	for i, mutate := range cases {
		p := PaperParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFleetSize(t *testing.T) {
	// 25 MW / 500 W = 50,000 servers.
	if got := PaperParams().Servers(); got != 50_000 {
		t.Fatalf("servers = %d, want 50000", got)
	}
}

func TestCoolingCostPerMW(t *testing.T) {
	// $7/kW·month × 1000 kW × 12 months × 10 years = $840,000/MW,
	// i.e. $84,000 per MW-year and $21M total for 25 MW (Section IV-F).
	p := PaperParams()
	if got := p.CoolingCostUSDPerMW(); got != 840_000 {
		t.Fatalf("cost per MW = %v", got)
	}
	total := p.CoolingCostUSDPerMW() * p.CriticalPowerMW
	if total != 21_000_000 {
		t.Fatalf("25 MW lifetime cooling cost = %v, want $21M", total)
	}
}

// Section V-E headline: 12.8% reduction on 25 MW saves ≈$2.69M over
// the cooling system's life and frees room for 7,339 more servers
// (146 per 1,000-server cluster).
func TestPaperHeadlineNumbers(t *testing.T) {
	out, err := Evaluate(PaperParams(), 12.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.GrossCoolingSavingsUSD-2_688_000) > 1 {
		t.Fatalf("gross savings = %v, want $2.688M", out.GrossCoolingSavingsUSD)
	}
	if math.Abs(out.CoolingLoadMW-21.8) > 1e-9 {
		t.Fatalf("reduced load = %v MW, want 21.8", out.CoolingLoadMW)
	}
	if math.Abs(out.ExtraServersPct-14.678899082568805) > 1e-9 {
		t.Fatalf("extra servers pct = %v", out.ExtraServersPct)
	}
	if out.ExtraServers != 7_339 {
		t.Fatalf("extra servers = %d, want 7339", out.ExtraServers)
	}
	if out.ExtraServersPerCluster != 146 {
		t.Fatalf("extra per cluster = %d, want 146", out.ExtraServersPerCluster)
	}
	// Net savings subtract the (small) wax deployment cost.
	if out.SmallerCoolingSavingsUSD >= out.GrossCoolingSavingsUSD {
		t.Fatal("net savings should be below gross")
	}
	if out.GrossCoolingSavingsUSD-out.SmallerCoolingSavingsUSD > 300_000 {
		t.Fatalf("wax cost %v implausibly large",
			out.GrossCoolingSavingsUSD-out.SmallerCoolingSavingsUSD)
	}
}

// The conservative 6% case: $1.26M savings, 3,191 extra servers.
func TestPaperConservativeNumbers(t *testing.T) {
	out, err := Evaluate(PaperParams(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.GrossCoolingSavingsUSD-1_260_000) > 1 {
		t.Fatalf("gross savings = %v, want $1.26M", out.GrossCoolingSavingsUSD)
	}
	if out.ExtraServers != 3_191 {
		t.Fatalf("extra servers = %d, want 3191", out.ExtraServers)
	}
	if out.ExtraServersPerCluster != 63 { // paper rounds to 64
		t.Fatalf("extra per cluster = %d", out.ExtraServersPerCluster)
	}
}

func TestEvaluateRejectsBadReduction(t *testing.T) {
	for _, r := range []float64{-1, 100, 150} {
		if _, err := Evaluate(PaperParams(), r); err == nil {
			t.Errorf("reduction %v should fail", r)
		}
	}
	bad := PaperParams()
	bad.CriticalPowerMW = 0
	if _, err := Evaluate(bad, 10); err == nil {
		t.Fatal("invalid params should fail")
	}
}

// The n-paraffin counterfactual: achieving VMT's effect with pure
// low-melting-point wax costs on the order of $10M — several times the
// VMT savings (Section V-E's parenthetical).
func TestNParaffinCounterfactual(t *testing.T) {
	p := PaperParams()
	cost, err := NParaffinAlternativeCostUSD(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cost < 8e6 || cost > 20e6 {
		t.Fatalf("n-paraffin fleet cost = %v, want ≈$10M", cost)
	}
	commercial := p.WaxDeploymentCostUSD()
	if cost/commercial != 75 {
		t.Fatalf("cost ratio = %v, want 75x", cost/commercial)
	}
	bad := p
	bad.CriticalPowerMW = 0
	if _, err := NParaffinAlternativeCostUSD(bad, 30); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestZeroReductionIsFree(t *testing.T) {
	out, err := Evaluate(PaperParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.GrossCoolingSavingsUSD != 0 || out.ExtraServers != 0 {
		t.Fatalf("zero reduction should save nothing: %+v", out)
	}
	if out.SmallerCoolingSavingsUSD >= 0 {
		t.Fatal("net of wax cost, zero reduction should be negative")
	}
}
