// Package tco quantifies the cost benefits of a reduced peak cooling
// load (Section V-E), adapting the Kontorinis et al. cooling-system
// depreciation model: $7 per kW of critical power per month over a
// 10-year straight-line depreciation, i.e. $84,000 per MW-year or
// $840,000 per MW over the cooling system's life.
//
// Two oversubscription strategies are priced:
//
//   - Smaller cooling system: shave r% off the peak and buy an r%
//     smaller chiller plant up front.
//   - More servers: keep the cooling plant and add 1/(1−r)−1 more
//     servers under the same cooling budget.
package tco

import (
	"fmt"
	"math"

	"vmt/internal/pcm"
)

// Params describes the datacenter for TCO purposes.
type Params struct {
	// CriticalPowerMW is the datacenter's critical (IT) power; the
	// paper uses 25 MW, just below the 27.25 MW reported median for
	// large facilities.
	CriticalPowerMW float64
	// CoolingDepreciationUSDPerKWMonth is the Kontorinis cooling
	// depreciation figure ($7/kW·month).
	CoolingDepreciationUSDPerKWMonth float64
	// CoolingLifetimeYears is the non-IT depreciation horizon (10 y).
	CoolingLifetimeYears float64
	// ServerPeakPowerW sizes the fleet: servers = critical power /
	// peak server power (500 W → 50,000 servers at 25 MW).
	ServerPeakPowerW float64
	// ServersPerCluster scales per-cluster figures (1,000).
	ServersPerCluster int
	// WaxVolumeLPerServer and Material price the PCM deployment.
	WaxVolumeLPerServer float64
	Material            pcm.Material
}

// PaperParams returns the Section V-E configuration.
func PaperParams() Params {
	return Params{
		CriticalPowerMW:                  25,
		CoolingDepreciationUSDPerKWMonth: 7,
		CoolingLifetimeYears:             10,
		ServerPeakPowerW:                 500,
		ServersPerCluster:                1000,
		WaxVolumeLPerServer:              4.0,
		Material:                         pcm.CommercialParaffin(),
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.CriticalPowerMW <= 0:
		return fmt.Errorf("tco: critical power must be positive")
	case p.CoolingDepreciationUSDPerKWMonth <= 0:
		return fmt.Errorf("tco: depreciation rate must be positive")
	case p.CoolingLifetimeYears <= 0:
		return fmt.Errorf("tco: cooling lifetime must be positive")
	case p.ServerPeakPowerW <= 0:
		return fmt.Errorf("tco: server peak power must be positive")
	case p.ServersPerCluster <= 0:
		return fmt.Errorf("tco: servers per cluster must be positive")
	case p.WaxVolumeLPerServer < 0:
		return fmt.Errorf("tco: negative wax volume")
	}
	return p.Material.Validate()
}

// Servers returns the fleet size implied by the critical power.
func (p Params) Servers() int {
	return int(p.CriticalPowerMW * 1e6 / p.ServerPeakPowerW)
}

// CoolingCostUSDPerMW returns the lifetime depreciation cost of one MW
// of cooling capacity ($840,000 with the paper's numbers).
func (p Params) CoolingCostUSDPerMW() float64 {
	return p.CoolingDepreciationUSDPerKWMonth * 1000 * 12 * p.CoolingLifetimeYears
}

// WaxDeploymentCostUSD returns the fleet-wide cost of the PCM itself
// (less than 0.5% of server purchase cost at $1,000/ton).
func (p Params) WaxDeploymentCostUSD() float64 {
	massKg := p.WaxVolumeLPerServer * p.Material.DensityKgPerL * float64(p.Servers())
	return massKg / 1000 * p.Material.CostUSDPerTon
}

// Outcome prices one peak-cooling-load reduction.
type Outcome struct {
	// ReductionPct is the applied peak cooling reduction.
	ReductionPct float64
	// CoolingLoadMW is the reduced peak the cooling system must
	// handle (25 MW → 21.8 MW at 12.8%).
	CoolingLoadMW float64
	// GrossCoolingSavingsUSD is the lifetime saving from buying an
	// r%-smaller cooling system — the figure the paper headlines
	// ($2.69M at 12.8%).
	GrossCoolingSavingsUSD float64
	// SmallerCoolingSavingsUSD nets out the wax deployment cost
	// (which is small: <0.5% of server cost at $1,000/ton).
	SmallerCoolingSavingsUSD float64
	// ExtraServersPct and ExtraServers quantify the added-capacity
	// alternative: more servers under the unchanged cooling budget.
	ExtraServersPct        float64
	ExtraServers           int
	ExtraServersPerCluster int
}

// Evaluate prices a peak cooling reduction of reductionPct percent.
func Evaluate(p Params, reductionPct float64) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	if reductionPct < 0 || reductionPct >= 100 {
		return Outcome{}, fmt.Errorf("tco: reduction %v%% out of [0,100)", reductionPct)
	}
	r := reductionPct / 100
	savedMW := p.CriticalPowerMW * r
	extraPct := (1/(1-r) - 1) * 100
	gross := savedMW * p.CoolingCostUSDPerMW()
	return Outcome{
		ReductionPct:             reductionPct,
		CoolingLoadMW:            p.CriticalPowerMW - savedMW,
		GrossCoolingSavingsUSD:   gross,
		SmallerCoolingSavingsUSD: gross - p.WaxDeploymentCostUSD(),
		ExtraServersPct:          extraPct,
		ExtraServers:             int(math.Floor(extraPct / 100 * float64(p.Servers()))),
		ExtraServersPerCluster:   int(math.Floor(extraPct / 100 * float64(p.ServersPerCluster))),
	}, nil
}

// NParaffinAlternativeCostUSD prices the paper's counterfactual: buying
// molecularly pure n-paraffin with a low enough melting point for TTS
// alone to match VMT (≈$10M at 30 °C for the whole fleet), versus the
// commercial wax VMT uses.
func NParaffinAlternativeCostUSD(p Params, meltTempC float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	alt := p
	alt.Material = pcm.PureNParaffin(meltTempC)
	return alt.WaxDeploymentCostUSD(), nil
}
