// Package zones models the spatial layer of the datacenter: servers
// are assigned to zones, each served by its own CRAC (computer-room
// air conditioner) of finite capacity. The paper notes that hot-group
// servers "do not need to be physically clustered: they can be
// distributed throughout the datacenter to maintain the same ... DC-
// level temperature distributions" — this package quantifies why:
// physically clustering the hot group overloads one CRAC while the
// others idle, whereas striping it across zones keeps every CRAC at
// the fleet-average load.
package zones

import (
	"fmt"

	"vmt/internal/stats"
)

// Assignment maps each server (by ID) to a zone.
type Assignment struct {
	zoneOf []int
	zones  int
}

// Zones returns the zone count.
func (a Assignment) Zones() int { return a.zones }

// ZoneOf returns server id's zone.
func (a Assignment) ZoneOf(id int) int { return a.zoneOf[id] }

// Striped assigns servers round-robin across zones: consecutive server
// IDs land in different zones, so any ID-prefix group (the VMT hot
// group) spreads evenly.
func Striped(servers, zones int) (Assignment, error) {
	if err := validate(servers, zones); err != nil {
		return Assignment{}, err
	}
	a := Assignment{zoneOf: make([]int, servers), zones: zones}
	for i := range a.zoneOf {
		a.zoneOf[i] = i % zones
	}
	return a, nil
}

// Clustered assigns servers in contiguous blocks: an ID-prefix hot
// group concentrates in the first zones — the layout the paper warns
// against.
func Clustered(servers, zones int) (Assignment, error) {
	if err := validate(servers, zones); err != nil {
		return Assignment{}, err
	}
	a := Assignment{zoneOf: make([]int, servers), zones: zones}
	per := (servers + zones - 1) / zones
	for i := range a.zoneOf {
		a.zoneOf[i] = i / per
	}
	return a, nil
}

func validate(servers, zones int) error {
	if servers <= 0 || zones <= 0 {
		return fmt.Errorf("zones: need positive servers and zones")
	}
	if zones > servers {
		return fmt.Errorf("zones: more zones (%d) than servers (%d)", zones, servers)
	}
	return nil
}

// ZoneLoads splits a per-server load snapshot (watts per server, by
// ID) into per-zone sums.
func (a Assignment) ZoneLoads(perServerW []float64) ([]float64, error) {
	if len(perServerW) != len(a.zoneOf) {
		return nil, fmt.Errorf("zones: snapshot has %d servers, assignment %d",
			len(perServerW), len(a.zoneOf))
	}
	out := make([]float64, a.zones)
	for i, w := range perServerW {
		out[a.zoneOf[i]] += w
	}
	return out, nil
}

// Imbalance summarizes how unevenly a load snapshot lands on the
// zones' CRACs.
type Imbalance struct {
	// MaxZoneW and MeanZoneW are the hottest and average zone loads.
	MaxZoneW, MeanZoneW float64
	// PeakToMean is MaxZoneW / MeanZoneW (1.0 = perfectly balanced);
	// each CRAC must be provisioned for its zone's peak, so the fleet
	// pays for PeakToMean × the balanced capacity.
	PeakToMean float64
}

// Summarize reduces per-zone loads.
func Summarize(zoneLoads []float64) (Imbalance, error) {
	if len(zoneLoads) == 0 {
		return Imbalance{}, fmt.Errorf("zones: no zones")
	}
	maxW, err := stats.Max(zoneLoads)
	if err != nil {
		return Imbalance{}, err
	}
	mean := stats.Mean(zoneLoads)
	im := Imbalance{MaxZoneW: maxW, MeanZoneW: mean}
	if mean > 0 {
		im.PeakToMean = maxW / mean
	}
	return im, nil
}

// WorstImbalance scans a [sample][server] cooling-load recording and
// returns the worst per-sample zone imbalance over the run.
func (a Assignment) WorstImbalance(grid [][]float64) (Imbalance, error) {
	if len(grid) == 0 {
		return Imbalance{}, fmt.Errorf("zones: empty recording")
	}
	var worst Imbalance
	for _, snap := range grid {
		loads, err := a.ZoneLoads(snap)
		if err != nil {
			return Imbalance{}, err
		}
		im, err := Summarize(loads)
		if err != nil {
			return Imbalance{}, err
		}
		if im.PeakToMean > worst.PeakToMean {
			worst = im
		}
	}
	return worst, nil
}
