package zones

import (
	"math"
	"testing"
)

func TestAssignmentsValidate(t *testing.T) {
	if _, err := Striped(0, 1); err == nil {
		t.Fatal("zero servers should fail")
	}
	if _, err := Clustered(4, 0); err == nil {
		t.Fatal("zero zones should fail")
	}
	if _, err := Striped(2, 3); err == nil {
		t.Fatal("more zones than servers should fail")
	}
}

func TestStripedSpreadsPrefixes(t *testing.T) {
	a, err := Striped(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Zones() != 4 {
		t.Fatal("zones")
	}
	// The first half of the IDs (a hot group) covers every zone twice.
	counts := make([]int, 4)
	for id := 0; id < 4; id++ {
		counts[a.ZoneOf(id)]++
	}
	for z, c := range counts {
		if c != 1 {
			t.Fatalf("zone %d has %d of the prefix, want 1", z, c)
		}
	}
}

func TestClusteredConcentratesPrefixes(t *testing.T) {
	a, err := Clustered(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The first quarter of IDs all land in zone 0.
	if a.ZoneOf(0) != 0 || a.ZoneOf(1) != 0 {
		t.Fatal("prefix should fill zone 0")
	}
	if a.ZoneOf(7) != 3 {
		t.Fatal("suffix should land in the last zone")
	}
}

func TestZoneLoads(t *testing.T) {
	a, err := Striped(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := a.ZoneLoads([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	// Zone 0: servers 0,2 → 40; zone 1: servers 1,3 → 60.
	if loads[0] != 40 || loads[1] != 60 {
		t.Fatalf("loads = %v", loads)
	}
	if _, err := a.ZoneLoads([]float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestSummarize(t *testing.T) {
	im, err := Summarize([]float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if im.MaxZoneW != 300 || im.MeanZoneW != 200 {
		t.Fatalf("summary = %+v", im)
	}
	if math.Abs(im.PeakToMean-1.5) > 1e-12 {
		t.Fatalf("peak-to-mean = %v", im.PeakToMean)
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty should fail")
	}
}

// The paper's point: a striped hot group keeps the CRACs balanced,
// a physically clustered one overloads some of them.
func TestWorstImbalanceStripedVsClustered(t *testing.T) {
	// 8 servers: the first 4 (the hot group) at 400 W, the rest at
	// 150 W — a VMT-like load snapshot repeated over time.
	grid := [][]float64{
		{400, 400, 400, 400, 150, 150, 150, 150},
		{420, 410, 400, 390, 140, 160, 150, 150},
	}
	striped, err := Striped(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := Clustered(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	sIm, err := striped.WorstImbalance(grid)
	if err != nil {
		t.Fatal(err)
	}
	cIm, err := clustered.WorstImbalance(grid)
	if err != nil {
		t.Fatal(err)
	}
	if sIm.PeakToMean > 1.05 {
		t.Fatalf("striped layout should stay balanced, got %v", sIm.PeakToMean)
	}
	if cIm.PeakToMean < 1.4 {
		t.Fatalf("clustered layout should overload a zone, got %v", cIm.PeakToMean)
	}
	if _, err := striped.WorstImbalance(nil); err == nil {
		t.Fatal("empty recording should fail")
	}
}
