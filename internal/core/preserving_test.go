package core

import (
	"testing"
	"time"

	"vmt/internal/sched"
	"vmt/internal/workload"
)

func TestPreservingBasics(t *testing.T) {
	c := newCluster(t, 10)
	p, err := NewPreserving(c, Config{GV: 22}, 30*time.Hour, 0.5) // base 6, sacrifice 3
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "vmt-preserve" {
		t.Fatal("name")
	}
	if p.sacrificeSize != 3 {
		t.Fatalf("sacrifice = %d, want 3", p.sacrificeSize)
	}
	if p.HotGroupSize() != 6 {
		t.Fatalf("hot group = %d, want 6", p.HotGroupSize())
	}
}

func TestPreservingClampsSacrifice(t *testing.T) {
	c := newCluster(t, 10)
	p, err := NewPreserving(c, Config{GV: 22}, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.sacrificeSize != 1 {
		t.Fatalf("sacrifice should clamp to 1, got %d", p.sacrificeSize)
	}
	p2, err := NewPreserving(c, Config{GV: 22}, time.Hour, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p2.sacrificeSize != 6 {
		t.Fatalf("sacrifice should clamp to the hot group, got %d", p2.sacrificeSize)
	}
	if _, err := NewPreserving(c, Config{GV: 0}, time.Hour, 0.5); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestPreservingConcentratesEarly(t *testing.T) {
	c := newCluster(t, 10)
	p, err := NewPreserving(c, Config{GV: 22}, 30*time.Hour, 0.5) // sacrifice 3
	if err != nil {
		t.Fatal(err)
	}
	p.Tick(1 * time.Hour) // inside the preservation window
	// Hot jobs pack into servers 0..2 until full.
	for i := 0; i < 3*32; i++ {
		s, err := p.Place(workload.Clustering)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID() >= 3 {
			t.Fatalf("placement %d escaped the sacrificial set to server %d", i, s.ID())
		}
		if err := s.Place(workload.Clustering); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow falls through to the wax-aware cascade (rest of hot group).
	s, err := p.Place(workload.Clustering)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() < 3 || s.ID() >= 6 {
		t.Fatalf("overflow went to server %d, want hot group 3..5", s.ID())
	}
	// Cold jobs still go to the cold group.
	cs, err := p.Place(workload.DataCaching)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ID() < 6 {
		t.Fatalf("cold job placed on hot server %d", cs.ID())
	}
}

func TestPreservingRemovalProtectsSacrifice(t *testing.T) {
	c := newCluster(t, 10)
	p, err := NewPreserving(c, Config{GV: 22}, 30*time.Hour, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.Tick(1 * time.Hour)
	if err := c.Server(0).Place(workload.WebSearch); err != nil { // sacrificial
		t.Fatal(err)
	}
	if err := c.Server(4).Place(workload.WebSearch); err != nil { // rest of hot group
		t.Fatal(err)
	}
	s, err := p.SelectRemoval(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 4 {
		t.Fatalf("removal chose %d, want non-sacrificial 4", s.ID())
	}
	if err := s.Remove(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	// With only the sacrificial job left, it is removable.
	s, err = p.SelectRemoval(workload.WebSearch)
	if err != nil || s.ID() != 0 {
		t.Fatalf("fallback removal = %v, %v", s, err)
	}
	if _, err := p.SelectRemoval(workload.VideoEncoding); err != sched.ErrNoJob {
		t.Fatalf("absent workload err = %v", err)
	}
}

func TestPreservingRevertsAfterWindow(t *testing.T) {
	c := newCluster(t, 10)
	p, err := NewPreserving(c, Config{GV: 22}, 2*time.Hour, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.Tick(3 * time.Hour) // past the window
	// Placement now follows the wax-aware even spread over the whole
	// hot group, not the sacrificial prefix.
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		s, err := p.Place(workload.WebSearch)
		if err != nil {
			t.Fatal(err)
		}
		seen[s.ID()] = true
		if err := s.Place(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("post-window placement should spread, saw %d servers", len(seen))
	}
}

func TestOracleWaxState(t *testing.T) {
	c := newCluster(t, 4)
	oracle, err := NewWaxAware(c, Config{GV: 22, OracleWaxState: true, WaxThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	reported, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Drive a server hot until truth and estimate straddle the 0.5
	// threshold; since the estimator lags slightly, there is a window
	// where only the oracle sees "melted".
	fillServer(t, c, 0, workload.VideoEncoding, 32)
	for i := 0; i < 12*60; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
		s := c.Server(0)
		if oracle.melted(s) != (s.MeltFrac() >= 0.5) {
			t.Fatal("oracle must read ground truth")
		}
		if reported.melted(s) != (s.ReportedMeltFrac() >= 0.5) {
			t.Fatal("default must read the estimator")
		}
	}
}

func TestMigrationBudgetDefault(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	if wa.cfg.MigrationBudgetFrac != 0.25 {
		t.Fatalf("default budget = %v, want 0.25", wa.cfg.MigrationBudgetFrac)
	}
	if _, err := NewWaxAware(c, Config{GV: 22, MigrationBudgetFrac: 2}); err == nil {
		t.Fatal("budget > 1 should fail validation")
	}
}
