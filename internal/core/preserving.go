package core

import (
	"time"

	"vmt/internal/cluster"
	"vmt/internal/sched"
	"vmt/internal/workload"
)

// Preserving is the paper's raise-the-melting-temperature variant
// (Section III): "VMT can also raise the melting temperature by
// locating hot jobs in a subset of servers with already melted wax,
// preserving wax in anticipation of a very hot peak still to come."
// The paper describes but does not evaluate it; this implementation is
// the reproduction's extension, exercised by the ablation benchmarks.
//
// Until PreserveUntil, hot jobs are concentrated on a *sacrificial*
// prefix of the hot group: those servers melt (and stay melted), while
// the rest of the hot group's wax is kept solid. After PreserveUntil
// the policy reverts to standard wax-aware behavior, meeting the
// anticipated peak with most of its storage intact. With a diurnal
// trace whose second day is much hotter than the first, preservation
// trades away day-one shaving to improve day-two shaving.
type Preserving struct {
	wa *WaxAware
	// preserveUntil is the simulation time after which preservation
	// stops.
	preserveUntil time.Duration
	// sacrificeSize is how many hot-group servers absorb the early
	// heat.
	sacrificeSize int
	now           time.Duration
}

// NewPreserving wraps a wax-aware scheduler with wax preservation
// until preserveUntil, sacrificing sacrificeFrac of the hot group
// (clamped to at least one server) to carry the early hot load.
func NewPreserving(c *cluster.Cluster, cfg Config, preserveUntil time.Duration, sacrificeFrac float64) (*Preserving, error) {
	wa, err := NewWaxAware(c, cfg)
	if err != nil {
		return nil, err
	}
	if sacrificeFrac < 0 {
		sacrificeFrac = 0
	}
	if sacrificeFrac > 1 {
		sacrificeFrac = 1
	}
	n := int(float64(wa.baseHot) * sacrificeFrac)
	if n < 1 {
		n = 1
	}
	return &Preserving{wa: wa, preserveUntil: preserveUntil, sacrificeSize: n}, nil
}

// Name implements sched.Scheduler.
func (p *Preserving) Name() string { return "vmt-preserve" }

// HotGroupSize reports the underlying hot group size.
func (p *Preserving) HotGroupSize() int { return p.wa.HotGroupSize() }

// preserving reports whether the policy is still in its preservation
// window.
func (p *Preserving) preserving() bool { return p.now < p.preserveUntil }

// Tick implements sched.Scheduler.
func (p *Preserving) Tick(now time.Duration) {
	p.now = now
	if p.preserving() {
		// Keep the Equation-1 grouping but skip extension and
		// rebalancing: preservation wants heat bottled up in the
		// sacrificial servers, not spread to fresh wax. The degraded
		// set still refreshes (and the prefix stretches over crashed
		// servers) so fault injection degrades gracefully here too.
		p.wa.refreshHealth()
		p.wa.g.hotSize = p.wa.g.sizeForAlive(p.wa.baseHot)
		return
	}
	p.wa.Tick(now)
}

// Place implements sched.Scheduler. During preservation, hot jobs
// are packed onto the sacrificial prefix (melted or not); once it is
// full they spill into the standard wax-aware cascade. Cold jobs
// always follow the wax-aware rules.
func (p *Preserving) Place(w workload.Workload) (*cluster.Server, error) {
	if !p.preserving() || w.Class != workload.Hot {
		return p.wa.Place(w)
	}
	if s := p.wa.g.leastBusy(0, p.sacrificeSize, w, nil); s != nil {
		return s, nil
	}
	return p.wa.Place(w)
}

// SelectRemoval implements sched.Scheduler. During preservation, hot
// evictions come from *outside* the sacrificial prefix first, so the
// sacrificial servers stay saturated and the rest of the hot group
// stays cold.
func (p *Preserving) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	if !p.preserving() || w.Class != workload.Hot {
		return p.wa.SelectRemoval(w)
	}
	n := p.wa.g.c.Len()
	if s := p.wa.g.mostBusyWith(p.sacrificeSize, n, w, nil); s != nil {
		return s, nil
	}
	if s := p.wa.g.mostBusyWith(0, p.sacrificeSize, w, nil); s != nil {
		return s, nil
	}
	return nil, sched.ErrNoJob
}

// Interface check.
var _ sched.Scheduler = (*Preserving)(nil)
