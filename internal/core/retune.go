package core

import (
	"fmt"
	"sort"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/sched"
	"vmt/internal/workload"
)

// GVChange schedules a grouping-value retune at a simulation time.
type GVChange struct {
	At time.Duration
	GV float64
}

// Tunable is a VMT scheduler whose grouping value can be retuned in
// place; ThermalAware and WaxAware both implement it.
type Tunable interface {
	sched.Scheduler
	SetGV(gv float64)
}

// Retuning wraps a tunable VMT scheduler and applies a GV schedule —
// the "change the GV to the optimal value each day" operating mode the
// paper describes for load-predictable datacenters (Section V-C).
type Retuning struct {
	inner    Tunable
	schedule []GVChange
	next     int
}

// NewRetuning wraps inner with a GV schedule (applied in time order;
// entries must be strictly increasing in time and have positive GVs).
func NewRetuning(inner Tunable, schedule []GVChange) (*Retuning, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: retuning needs a scheduler")
	}
	sorted := append([]GVChange(nil), schedule...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for i, ch := range sorted {
		if ch.GV <= 0 {
			return nil, fmt.Errorf("core: retune %d has non-positive GV", i)
		}
		if i > 0 && ch.At == sorted[i-1].At {
			return nil, fmt.Errorf("core: duplicate retune time %v", ch.At)
		}
	}
	return &Retuning{inner: inner, schedule: sorted}, nil
}

// Name implements sched.Scheduler.
func (r *Retuning) Name() string { return r.inner.Name() + "+retune" }

// HotGroupSize forwards to the inner scheduler (for result reporting).
func (r *Retuning) HotGroupSize() int {
	if hg, ok := r.inner.(interface{ HotGroupSize() int }); ok {
		return hg.HotGroupSize()
	}
	return 0
}

// Tick applies any due retunes, then forwards.
func (r *Retuning) Tick(now time.Duration) {
	for r.next < len(r.schedule) && r.schedule[r.next].At <= now {
		r.inner.SetGV(r.schedule[r.next].GV)
		r.next++
	}
	r.inner.Tick(now)
}

// Place implements sched.Scheduler.
func (r *Retuning) Place(w workload.Workload) (*cluster.Server, error) {
	return r.inner.Place(w)
}

// SelectRemoval implements sched.Scheduler.
func (r *Retuning) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	return r.inner.SelectRemoval(w)
}

// Interface checks.
var (
	_ sched.Scheduler = (*Retuning)(nil)
	_ Tunable         = (*ThermalAware)(nil)
	_ Tunable         = (*WaxAware)(nil)
)
