package core

import (
	"testing"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/workload"
)

// fillServer packs count jobs of w onto server id.
func fillServer(t *testing.T, c *cluster.Cluster, id int, w workload.Workload, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		if err := c.Server(id).Place(w); err != nil {
			t.Fatal(err)
		}
	}
}

// settle advances the cluster until temperatures stop moving.
func settle(t *testing.T, c *cluster.Cluster, minutes int) {
	t.Helper()
	for i := 0; i < minutes; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKeepWarmPower(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	keep := wa.keepWarmPowerW(c.Server(0))
	// (35.7 + 0.5 − 22) × 22.35 ≈ 317 W: enough to hold the server just
	// above the melting point at steady state.
	spec := c.Config().Server
	steady := spec.SteadyAirTempC(keep, 22)
	if steady < 35.7 || steady > 36.7 {
		t.Fatalf("keep-warm steady temp %v should sit just above PMT", steady)
	}
}

// A fully melted, loaded server sheds down to keep-warm power, with the
// shed jobs landing on servers that can still melt wax — and never
// sheds so far that its own wax would refreeze.
func TestRebalanceShedsToKeepWarm(t *testing.T) {
	c := newCluster(t, 6)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98}) // base 4
	if err != nil {
		t.Fatal(err)
	}
	// Melt servers 0 and 1 fully while loaded.
	fillServer(t, c, 0, workload.VideoEncoding, 32)
	fillServer(t, c, 1, workload.VideoEncoding, 32)
	settle(t, c, 10*60)
	if c.Server(0).ReportedMeltFrac() < 0.98 {
		t.Fatalf("server 0 should be melted, got %v", c.Server(0).ReportedMeltFrac())
	}
	wa.Tick(0)
	if wa.HotGroupSize() != 6 { // base 4 + 2 melted
		t.Fatalf("hot group = %d, want 6", wa.HotGroupSize())
	}
	keep := wa.keepWarmPowerW(c.Server(0))
	for _, id := range []int{0, 1} {
		s := c.Server(id)
		if s.PowerW() > keep+15 {
			t.Fatalf("server %d power %v not shed to keep-warm %v", id, s.PowerW(), keep)
		}
		perJob := workload.VideoEncoding.PerCorePowerW() * c.Config().Server.PowerScale
		if s.PowerW() < keep-perJob {
			t.Fatalf("server %d power %v fell below keep-warm %v", id, s.PowerW(), keep)
		}
	}
	// The shed jobs moved to other hot-group servers, none were lost.
	if got := c.JobCount(workload.VideoEncoding); got != 64 {
		t.Fatalf("job count changed during rebalance: %d", got)
	}
	moved := 0
	for i := 2; i < 6; i++ {
		moved += c.Server(i).Jobs(workload.VideoEncoding)
	}
	if moved == 0 {
		t.Fatal("no jobs migrated to melt targets")
	}
}

// The hot-for-cold swap: when melt targets are full of cold jobs, the
// rebalancer moves cold work onto melted servers to clear room.
func TestRebalanceSwapsColdForHot(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98}) // base 2
	if err != nil {
		t.Fatal(err)
	}
	// Servers 0,1: hot and melted. Servers 2,3: stuffed with cold work.
	fillServer(t, c, 0, workload.VideoEncoding, 32)
	fillServer(t, c, 1, workload.VideoEncoding, 32)
	fillServer(t, c, 2, workload.DataCaching, 32)
	fillServer(t, c, 3, workload.DataCaching, 32)
	settle(t, c, 10*60)
	wa.Tick(0)
	if wa.HotGroupSize() != 4 {
		t.Fatalf("hot group = %d, want 4", wa.HotGroupSize())
	}
	// Extension servers should now carry hot jobs despite having been
	// full: cold jobs moved to the melted servers' freed cores.
	hotOnExt := c.Server(2).Jobs(workload.VideoEncoding) + c.Server(3).Jobs(workload.VideoEncoding)
	if hotOnExt == 0 {
		t.Fatal("swap did not move hot work onto extension servers")
	}
	coldOnMelted := c.Server(0).Jobs(workload.DataCaching) + c.Server(1).Jobs(workload.DataCaching)
	if coldOnMelted == 0 {
		t.Fatal("swap did not move cold work onto melted servers")
	}
	// Totals preserved.
	if c.JobCount(workload.VideoEncoding) != 64 || c.JobCount(workload.DataCaching) != 64 {
		t.Fatal("swap lost jobs")
	}
	if c.BusyCores() != 128 {
		t.Fatalf("busy cores = %d, want 128", c.BusyCores())
	}
}

// Repeated ticks on a settled cluster converge: after the handover the
// rebalancer stops moving jobs instead of thrashing.
func TestRebalanceConverges(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	fillServer(t, c, 0, workload.VideoEncoding, 32)
	fillServer(t, c, 1, workload.VideoEncoding, 32)
	fillServer(t, c, 2, workload.DataCaching, 20)
	settle(t, c, 10*60)
	// Let the handover complete across several ticks.
	for i := 0; i < 30; i++ {
		wa.Tick(0)
		settle(t, c, 1)
	}
	snapshot := func() []int {
		var out []int
		for i := 0; i < c.Len(); i++ {
			out = append(out, c.Server(i).BusyCores())
		}
		return out
	}
	before := snapshot()
	wa.Tick(0)
	after := snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rebalance still thrashing at server %d: %v -> %v", i, before, after)
		}
	}
}

// The rebalancer does nothing when no server is melted.
func TestRebalanceNoopWhenUnmelted(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	fillServer(t, c, 0, workload.WebSearch, 10)
	fillServer(t, c, 2, workload.DataCaching, 10)
	before := []int{c.Server(0).BusyCores(), c.Server(1).BusyCores(),
		c.Server(2).BusyCores(), c.Server(3).BusyCores()}
	wa.Tick(0)
	after := []int{c.Server(0).BusyCores(), c.Server(1).BusyCores(),
		c.Server(2).BusyCores(), c.Server(3).BusyCores()}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("unmelted cluster should not rebalance: %v -> %v", before, after)
		}
	}
}

func TestLargestJob(t *testing.T) {
	c := newCluster(t, 1)
	wa, err := NewWaxAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Server(0)
	if _, ok := wa.largestJob(s, workload.Hot); ok {
		t.Fatal("empty server should have no largest job")
	}
	fillServer(t, c, 0, workload.WebSearch, 3)
	fillServer(t, c, 0, workload.Clustering, 5)
	fillServer(t, c, 0, workload.DataCaching, 7)
	w, ok := wa.largestJob(s, workload.Hot)
	if !ok || w.Name != "Clustering" {
		t.Fatalf("largest hot job = %v, want Clustering", w.Name)
	}
	cw, ok := wa.largestJob(s, workload.Cold)
	if !ok || cw.Name != "DataCaching" {
		t.Fatalf("largest cold job = %v, want DataCaching", cw.Name)
	}
}

// meltTarget concentrates within the extension region: the first
// extension server in ID order gets filled before the next.
func TestMeltTargetFillFirst(t *testing.T) {
	c := newCluster(t, 6)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98}) // base 4
	if err != nil {
		t.Fatal(err)
	}
	wa.g.hotSize = 6 // simulate an extension without melting
	// Base group saturated so the even-spread branch has no candidates.
	for i := 0; i < 4; i++ {
		fillServer(t, c, i, workload.VideoEncoding, 32)
	}
	dst := wa.meltTarget(workload.WebSearch, -1)
	if dst == nil || dst.ID() != 4 {
		t.Fatalf("fill-first target = %v, want server 4", dst)
	}
	fillServer(t, c, 4, workload.WebSearch, 32)
	dst = wa.meltTarget(workload.WebSearch, -1)
	if dst == nil || dst.ID() != 5 {
		t.Fatalf("next fill target = %v, want server 5", dst)
	}
}
