// Package core implements the paper's primary contribution: Virtual
// Melting Temperature job placement. Two policies are provided —
// thermal aware (VMT-TA, Section III-A) and wax aware (VMT-WA,
// Section III-B) — both built on the hot/cold grouping of Equations 1
// and 2:
//
//	hot_group_size  = GV/PMT × num_servers     (Eq. 1)
//	cold_group_size = num_servers − hot_group  (Eq. 2)
//
// Hot-class jobs are concentrated in the hot group so its servers
// exceed the wax's physical melting temperature (PMT) and store heat,
// even when the cluster-average temperature never could — a lower,
// "virtual" melting temperature.
package core

import (
	"fmt"
	"math"

	"vmt/internal/cluster"
	"vmt/internal/sched"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// HotGroupSize evaluates Equation 1, clamped to [0, numServers].
func HotGroupSize(gv, pmtC float64, numServers int) int {
	if pmtC <= 0 {
		return 0
	}
	n := int(math.Round(gv / pmtC * float64(numServers)))
	if n < 0 {
		n = 0
	}
	if n > numServers {
		n = numServers
	}
	return n
}

// groups tracks the hot/cold partition over a cluster. Servers with ID
// < hotSize form the hot group; the paper notes the groups need not be
// physically contiguous, so using the ID prefix loses no generality
// while keeping heat maps legible (hot group at the bottom, as in
// Figure 14).
type groups struct {
	c       *cluster.Cluster
	hotSize int
	// cursor rotates tie-breaking across scans: without it, "lowest
	// ID wins" hands every ±1 leftover job to the same few servers,
	// and that systematic bias (≈0.5 °C) smears per-server melt state
	// far more than the paper's uniform groups.
	cursor int
}

func (g *groups) isHot(s *cluster.Server) bool { return s.ID() < g.hotSize }

// sizeForAlive maps a target of alive hot servers to an ID-prefix
// length: the smallest prefix containing target alive (non-failed)
// servers. With no failures this is the identity (clamped to the
// cluster size), so fault-free runs never pay the scan; with failures
// the hot group stretches past crashed IDs so the policy keeps its
// intended count of working hot servers.
func (g *groups) sizeForAlive(target int) int {
	n := g.c.Len()
	if target <= 0 {
		return 0
	}
	if target > n {
		target = n
	}
	if g.c.FailedServers() == 0 {
		return target
	}
	alive := 0
	for i := 0; i < n; i++ {
		if !g.c.Server(i).Failed() {
			alive++
			if alive == target {
				return i + 1
			}
		}
	}
	return n
}

// leastBusy returns the best placement target with a free core among
// servers [lo,hi) that satisfy keep (nil = all): fewest jobs of w
// first (even per-workload spread keeps server thermal compositions
// uniform within a group), then fewest busy cores, with ties rotating.
// Returns nil if none qualify.
//
// The rotating scan is written as a direct loop: placement scans run
// hundreds of times per tick, and routing each visit through a
// closure (capturing the comparison state) was a measurable share of
// whole-run CPU. Each scan over a non-empty range advances the cursor
// by exactly one.
//
//vmt:hotpath
func (g *groups) leastBusy(lo, hi int, w workload.Workload, keep func(*cluster.Server) bool) *cluster.Server {
	wi := g.c.WorkloadIndex(w)
	n := hi - lo
	if n <= 0 {
		return nil
	}
	g.cursor++
	start := g.cursor % n
	servers := g.c.Servers()
	var best *cluster.Server
	bestJobs := 0
	// Walk [start, n) then [0, start) with a wrapping index instead of
	// a per-visit modulo — same visit order, two integer ops cheaper on
	// a loop that runs for every placement decision. The common nil
	// filter (every VMT-TA call) gets its own loop without the
	// per-visit keep check.
	idx := lo + start
	if keep == nil {
		for i := 0; i < n; i++ {
			s := servers[idx]
			idx++
			if idx == lo+n {
				idx = lo
			}
			if s.FreeCores() == 0 {
				continue
			}
			j := s.JobsAt(wi)
			if best == nil || j < bestJobs ||
				(j == bestJobs && s.BusyCores() < best.BusyCores()) {
				best, bestJobs = s, j
			}
		}
		return best
	}
	for i := 0; i < n; i++ {
		s := servers[idx]
		idx++
		if idx == lo+n {
			idx = lo
		}
		if s.FreeCores() == 0 {
			continue
		}
		if !keep(s) {
			continue
		}
		j := s.JobsAt(wi)
		if best == nil || j < bestJobs ||
			(j == bestJobs && s.BusyCores() < best.BusyCores()) {
			best, bestJobs = s, j
		}
	}
	return best
}

// mostBusyWith returns the server in [lo,hi) running w with the most
// jobs of w (ties rotating), optionally filtered by keep. Direct loop
// for the same reason as leastBusy.
//
//vmt:hotpath
func (g *groups) mostBusyWith(lo, hi int, w workload.Workload, keep func(*cluster.Server) bool) *cluster.Server {
	wi := g.c.WorkloadIndex(w)
	n := hi - lo
	if n <= 0 {
		return nil
	}
	g.cursor++
	start := g.cursor % n
	servers := g.c.Servers()
	var best *cluster.Server
	bestJobs := 0
	idx := lo + start
	if keep == nil {
		for i := 0; i < n; i++ {
			s := servers[idx]
			idx++
			if idx == lo+n {
				idx = lo
			}
			j := s.JobsAt(wi)
			if j == 0 {
				continue
			}
			if best == nil || j > bestJobs {
				best, bestJobs = s, j
			}
		}
		return best
	}
	for i := 0; i < n; i++ {
		s := servers[idx]
		idx++
		if idx == lo+n {
			idx = lo
		}
		j := s.JobsAt(wi)
		if j == 0 {
			continue
		}
		if !keep(s) {
			continue
		}
		if best == nil || j > bestJobs {
			best, bestJobs = s, j
		}
	}
	return best
}

// Config carries the knobs shared by both VMT policies.
type Config struct {
	// GV is the grouping value of Equation 1.
	GV float64
	// WaxThreshold is the reported melt fraction above which VMT-WA
	// considers a server "fully melted" (the paper fixes 0.98;
	// Figure 17 sweeps it). VMT-TA ignores it.
	WaxThreshold float64
	// OracleWaxState makes VMT-WA read ground-truth melt fractions
	// instead of the per-server lookup-table estimates — an ablation
	// quantifying what perfect wax-state knowledge would buy.
	OracleWaxState bool
	// MigrationBudgetFrac caps VMT-WA's per-tick job migrations as a
	// fraction of the cluster's cores; zero selects the default 0.25.
	// An ablation knob for the rebalancing granularity.
	MigrationBudgetFrac float64
	// Metrics, when non-nil, receives scheduler instrumentation:
	// sched_hot_group_resizes, sched_threshold_trips (servers crossing
	// the wax threshold), and sched_migrations (VMT-WA rebalancing
	// moves). Purely observational — placement decisions never read it.
	Metrics *telemetry.Registry
}

// DefaultWaxThreshold is the paper's operating point.
const DefaultWaxThreshold = 0.98

// Validate reports whether the configuration is usable for a cluster
// of the given PMT.
func (cfg Config) Validate() error {
	if cfg.GV <= 0 {
		return fmt.Errorf("core: GV must be positive, got %v", cfg.GV)
	}
	if cfg.WaxThreshold < 0 || cfg.WaxThreshold > 1 {
		return fmt.Errorf("core: wax threshold %v out of [0,1]", cfg.WaxThreshold)
	}
	if cfg.MigrationBudgetFrac < 0 || cfg.MigrationBudgetFrac > 1 {
		return fmt.Errorf("core: migration budget fraction %v out of [0,1]", cfg.MigrationBudgetFrac)
	}
	return nil
}

// Interface checks.
var (
	_ sched.Scheduler = (*ThermalAware)(nil)
	_ sched.Scheduler = (*WaxAware)(nil)
)
