package core

import (
	"testing"
	"time"

	"vmt/internal/workload"
)

func TestRetuningValidation(t *testing.T) {
	c := newCluster(t, 10)
	ta, err := NewThermalAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRetuning(nil, nil); err == nil {
		t.Fatal("nil inner should fail")
	}
	if _, err := NewRetuning(ta, []GVChange{{At: time.Hour, GV: 0}}); err == nil {
		t.Fatal("zero GV should fail")
	}
	if _, err := NewRetuning(ta, []GVChange{
		{At: time.Hour, GV: 20}, {At: time.Hour, GV: 22},
	}); err == nil {
		t.Fatal("duplicate times should fail")
	}
}

func TestRetuningAppliesInOrder(t *testing.T) {
	c := newCluster(t, 10)
	ta, err := NewThermalAware(c, Config{GV: 22}) // hot = 6
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately out of order; the constructor sorts.
	rt, err := NewRetuning(ta, []GVChange{
		{At: 4 * time.Hour, GV: 30},
		{At: 2 * time.Hour, GV: 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "vmt-ta+retune" {
		t.Fatalf("name = %s", rt.Name())
	}
	rt.Tick(time.Hour)
	if ta.HotGroupSize() != 6 {
		t.Fatalf("hot group changed early: %d", ta.HotGroupSize())
	}
	rt.Tick(2 * time.Hour)
	if ta.HotGroupSize() != 5 { // 18/35.7×10 ≈ 5.04 → 5
		t.Fatalf("after first retune: %d, want 5", ta.HotGroupSize())
	}
	rt.Tick(5 * time.Hour)      // both boundaries crossed at once
	if ta.HotGroupSize() != 8 { // 30/35.7×10 ≈ 8.4 → 8
		t.Fatalf("after second retune: %d, want 8", ta.HotGroupSize())
	}
	if rt.HotGroupSize() != 8 {
		t.Fatalf("wrapper HotGroupSize = %d", rt.HotGroupSize())
	}
}

func TestRetuningForwardsPlacement(t *testing.T) {
	c := newCluster(t, 10)
	wa, err := NewWaxAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetuning(wa, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if !wa.IsHot(s) {
		t.Fatal("placement not forwarded to the wax-aware policy")
	}
	if err := s.Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	rm, err := rt.SelectRemoval(workload.WebSearch)
	if err != nil || rm.ID() != s.ID() {
		t.Fatalf("removal not forwarded: %v, %v", rm, err)
	}
}

func TestSetGVDirect(t *testing.T) {
	c := newCluster(t, 10)
	ta, err := NewThermalAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	ta.SetGV(30)
	if ta.HotGroupSize() != 8 {
		t.Fatalf("TA SetGV: %d, want 8", ta.HotGroupSize())
	}
	wa, err := NewWaxAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	wa.SetGV(30)
	if wa.BaseHotGroupSize() != 8 || wa.HotGroupSize() != 8 {
		t.Fatalf("WA SetGV: base %d size %d", wa.BaseHotGroupSize(), wa.HotGroupSize())
	}
	// Lowering the base does not shrink an extended group mid-peak.
	wa.g.hotSize = 9
	wa.SetGV(20)
	if wa.HotGroupSize() != 9 {
		t.Fatalf("extended group should persist: %d", wa.HotGroupSize())
	}
	if wa.BaseHotGroupSize() != 6 {
		t.Fatalf("base should drop: %d", wa.BaseHotGroupSize())
	}
}
