package core

import (
	"errors"
	"testing"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/sched"
	"vmt/internal/workload"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.PaperCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHotGroupSizeEquation(t *testing.T) {
	// Eq. 1 with the paper's numbers: GV=22, PMT=35.7, 1000 servers.
	if got := HotGroupSize(22, 35.7, 1000); got != 616 {
		t.Fatalf("hot group = %d, want 616", got)
	}
	if got := HotGroupSize(0, 35.7, 1000); got != 0 {
		t.Fatalf("GV=0 hot group = %d", got)
	}
	if got := HotGroupSize(50, 35.7, 1000); got != 1000 {
		t.Fatalf("oversized GV should clamp, got %d", got)
	}
	if got := HotGroupSize(22, 0, 1000); got != 0 {
		t.Fatalf("zero PMT should yield 0, got %d", got)
	}
	if got := HotGroupSize(-5, 35.7, 1000); got != 0 {
		t.Fatalf("negative GV should clamp to 0, got %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{GV: 22, WaxThreshold: 0.98}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{GV: 0}).Validate(); err == nil {
		t.Fatal("zero GV should fail")
	}
	if err := (Config{GV: 22, WaxThreshold: 1.5}).Validate(); err == nil {
		t.Fatal("bad threshold should fail")
	}
}

func TestTAGrouping(t *testing.T) {
	c := newCluster(t, 100)
	ta, err := NewThermalAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	if ta.Name() != "vmt-ta" {
		t.Fatal("name")
	}
	// 22/35.7×100 ≈ 61.6 → 62 servers.
	if got := ta.HotGroupSize(); got != 62 {
		t.Fatalf("hot group = %d, want 62", got)
	}
	if !ta.IsHot(c.Server(0)) || ta.IsHot(c.Server(62)) {
		t.Fatal("group membership wrong")
	}
}

func TestTAPlacesByClass(t *testing.T) {
	c := newCluster(t, 10)
	ta, err := NewThermalAware(c, Config{GV: 22}) // hot group = 6
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		s, err := ta.Place(workload.WebSearch) // hot
		if err != nil {
			t.Fatal(err)
		}
		if !ta.IsHot(s) {
			t.Fatalf("hot job placed on cold server %d", s.ID())
		}
		if err := s.Place(workload.WebSearch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		s, err := ta.Place(workload.DataCaching) // cold
		if err != nil {
			t.Fatal(err)
		}
		if ta.IsHot(s) {
			t.Fatalf("cold job placed on hot server %d", s.ID())
		}
		if err := s.Place(workload.DataCaching); err != nil {
			t.Fatal(err)
		}
	}
	// Even distribution: 12 hot jobs over 6 hot servers = 2 each.
	for i := 0; i < 6; i++ {
		if got := c.Server(i).Jobs(workload.WebSearch); got != 2 {
			t.Fatalf("hot server %d has %d jobs, want 2", i, got)
		}
	}
	// 8 cold jobs over 4 cold servers = 2 each.
	for i := 6; i < 10; i++ {
		if got := c.Server(i).Jobs(workload.DataCaching); got != 2 {
			t.Fatalf("cold server %d has %d jobs, want 2", i, got)
		}
	}
}

func TestTASpillsWhenGroupFull(t *testing.T) {
	c := newCluster(t, 4)
	ta, err := NewThermalAware(c, Config{GV: 22}) // hot group = 2
	if err != nil {
		t.Fatal(err)
	}
	// Fill the hot group (2×32 cores), then one more hot job.
	for i := 0; i < 65; i++ {
		s, err := ta.Place(workload.Clustering)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Place(workload.Clustering); err != nil {
			t.Fatal(err)
		}
	}
	spilled := c.Server(2).Jobs(workload.Clustering) + c.Server(3).Jobs(workload.Clustering)
	if spilled != 1 {
		t.Fatalf("spilled jobs = %d, want 1", spilled)
	}
	// Removal evicts the spilled job first.
	s, err := ta.SelectRemoval(workload.Clustering)
	if err != nil {
		t.Fatal(err)
	}
	if ta.IsHot(s) {
		t.Fatalf("removal chose hot server %d before spilled job", s.ID())
	}
}

func TestTAFullCluster(t *testing.T) {
	c := newCluster(t, 2)
	ta, err := NewThermalAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		s, err := ta.Place(workload.VirusScan)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ta.Place(workload.VirusScan); !errors.Is(err, sched.ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if _, err := ta.SelectRemoval(workload.WebSearch); !errors.Is(err, sched.ErrNoJob) {
		t.Fatalf("want ErrNoJob for absent workload")
	}
}

func TestWAStartsLikeTA(t *testing.T) {
	c := newCluster(t, 100)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	if wa.Name() != "vmt-wa" {
		t.Fatal("name")
	}
	if wa.HotGroupSize() != 62 || wa.BaseHotGroupSize() != 62 {
		t.Fatalf("initial group sizes: %d/%d", wa.HotGroupSize(), wa.BaseHotGroupSize())
	}
	wa.Tick(0)
	if wa.HotGroupSize() != 62 {
		t.Fatalf("unmelted cluster should keep the base size, got %d", wa.HotGroupSize())
	}
	s, err := wa.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if !wa.IsHot(s) {
		t.Fatal("hot job should land in the hot group")
	}
	cs, err := wa.Place(workload.VirusScan)
	if err != nil {
		t.Fatal(err)
	}
	if wa.IsHot(cs) {
		t.Fatal("cold job should land in the cold group")
	}
}

func TestWADefaultThreshold(t *testing.T) {
	c := newCluster(t, 10)
	wa, err := NewWaxAware(c, Config{GV: 22})
	if err != nil {
		t.Fatal(err)
	}
	if wa.cfg.WaxThreshold != DefaultWaxThreshold {
		t.Fatalf("threshold = %v, want default", wa.cfg.WaxThreshold)
	}
}

// meltServers drives the given servers' wax fully molten concurrently
// (sequential melting would let the first refreeze) and leaves them
// loaded enough to stay molten.
func meltServers(t *testing.T, c *cluster.Cluster, ids ...int) {
	t.Helper()
	for _, id := range ids {
		s := c.Server(id)
		for s.FreeCores() > 0 {
			if err := s.Place(workload.VideoEncoding); err != nil {
				t.Fatal(err)
			}
		}
	}
	allMelted := func() bool {
		for _, id := range ids {
			if c.Server(id).ReportedMeltFrac() < 0.999 {
				return false
			}
		}
		return true
	}
	for i := 0; i < 12*60 && !allMelted(); i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if !allMelted() {
		t.Fatal("failed to melt servers")
	}
	// Shed most load but keep the servers warm enough to stay molten.
	for _, id := range ids {
		s := c.Server(id)
		for s.BusyCores() > 16 {
			if err := s.Remove(workload.VideoEncoding); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestWAExtendsHotGroupWhenMelted(t *testing.T) {
	c := newCluster(t, 10)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98}) // base 6
	if err != nil {
		t.Fatal(err)
	}
	meltServers(t, c, 0, 1)
	wa.Tick(0)
	if got := wa.HotGroupSize(); got != 8 {
		t.Fatalf("hot group = %d, want base 6 + 2 melted = 8", got)
	}
	// Hot jobs now prefer hot-group servers that can still melt wax —
	// not the two fully melted ones (they are also the least busy, so
	// naive least-busy placement would pick them).
	s, err := wa.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == 0 || s.ID() == 1 {
		t.Fatalf("hot job went to fully melted server %d", s.ID())
	}
	if !wa.IsHot(s) {
		t.Fatal("hot job left the hot group")
	}
}

func TestWAPlaceColdAvoidsUnmeltedHot(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98}) // base 2
	if err != nil {
		t.Fatal(err)
	}
	// Fill the cold group completely.
	for i := 2; i < 4; i++ {
		for c.Server(i).FreeCores() > 0 {
			if err := c.Server(i).Place(workload.DataCaching); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Cold placement must now overflow into the hot group (rule 3,
	// since nothing is melted).
	s, err := wa.Place(workload.DataCaching)
	if err != nil {
		t.Fatal(err)
	}
	if !wa.IsHot(s) {
		t.Fatal("expected overflow into the hot group")
	}
}

func TestWARemovalPrefersSpilledJobs(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98}) // base 2
	if err != nil {
		t.Fatal(err)
	}
	// A hot job in the hot group and one spilled to the cold group.
	if err := c.Server(0).Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	if err := c.Server(3).Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	s, err := wa.SelectRemoval(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 3 {
		t.Fatalf("removal chose server %d, want spilled job on 3", s.ID())
	}
	// Cold jobs spilled into the hot group are evicted first too.
	if err := c.Server(0).Place(workload.DataCaching); err != nil {
		t.Fatal(err)
	}
	if err := c.Server(2).Place(workload.DataCaching); err != nil {
		t.Fatal(err)
	}
	cs, err := wa.SelectRemoval(workload.DataCaching)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ID() != 0 {
		t.Fatalf("cold removal chose server %d, want spilled job on 0", cs.ID())
	}
}

func TestWAErrorPaths(t *testing.T) {
	c := newCluster(t, 1)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wa.SelectRemoval(workload.WebSearch); !errors.Is(err, sched.ErrNoJob) {
		t.Fatal("want ErrNoJob")
	}
	for c.Server(0).FreeCores() > 0 {
		if err := c.Server(0).Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wa.Place(workload.VirusScan); !errors.Is(err, sched.ErrNoCapacity) {
		t.Fatal("want ErrNoCapacity")
	}
	if _, err := wa.Place(workload.WebSearch); !errors.Is(err, sched.ErrNoCapacity) {
		t.Fatal("want ErrNoCapacity for hot jobs too")
	}
}

func TestWAHotGroupNeverExceedsCluster(t *testing.T) {
	c := newCluster(t, 3)
	wa, err := NewWaxAware(c, Config{GV: 35, WaxThreshold: 0.5}) // base 3 (clamped)
	if err != nil {
		t.Fatal(err)
	}
	meltServers(t, c, 0)
	wa.Tick(0)
	if got := wa.HotGroupSize(); got != 3 {
		t.Fatalf("hot group = %d, must clamp at 3", got)
	}
}
