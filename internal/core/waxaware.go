package core

import (
	"time"

	"vmt/internal/cluster"
	"vmt/internal/sched"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// WaxAware is VMT with wax aware job placement (VMT-WA, Section
// III-B). It schedules like VMT-TA until hot-group wax saturates:
// every scheduling period it scans each server's *reported* melt state
// (the per-server lookup-table estimator, not ground truth), counts
// the servers above the wax threshold, and rebuilds the hot group as
// the Equation-1 minimum plus one cold-group server per fully melted
// server — keeping melted servers loaded (so their wax stays molten)
// while steering fresh hot load onto newly added servers with
// unmelted wax.
type WaxAware struct {
	g   groups
	cfg Config
	// baseHot is the fault-free Equation-1 minimum; effBase is the
	// capacity-loss-aware minimum actually in effect this tick. With
	// no crashed servers effBase == baseHot, so fault-free runs are
	// bit-identical to the pre-topology behavior. When whole domains
	// disappear, Equation 1 is re-evaluated over the surviving
	// capacity — the hot fraction is a property of the fleet that
	// exists, not the fleet that was provisioned.
	baseHot int
	effBase int
	pmtC    float64
	// kAirWPerK and powerScale are hoisted spec scalars; reading them
	// through Config() would copy the whole spec struct once per
	// rebalancing probe.
	kAirWPerK  float64
	powerScale float64

	// Optional instruments (nil-safe) plus the last observed state
	// they diff against. prevMelted starts at 0 so the first tick's
	// melted servers (normally none) count as trips.
	resizes    *telemetry.Counter
	trips      *telemetry.Counter
	migrations *telemetry.Counter
	fallbacks  *telemetry.Counter
	prevMelted int

	// degraded[i] marks servers whose melt estimate cannot be trusted
	// this tick: the server is crashed, its estimate has gone stale
	// (sensor dropout past DefaultMaxEstimateAge), or the reported
	// fraction is garbage. Degraded servers read as "not melted" so
	// VMT-WA falls back to VMT-TA-style even placement for them
	// instead of acting on bad data. Refreshed by refreshHealth.
	degraded []bool
}

// DefaultMaxEstimateAge is how old a melt estimate may grow (no
// successful sensor reading) before VMT-WA stops trusting it and
// degrades that server to thermal-aware placement.
const DefaultMaxEstimateAge = 5 * time.Minute

// NewWaxAware builds a VMT-WA scheduler over c.
func NewWaxAware(c *cluster.Cluster, cfg Config) (*WaxAware, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WaxThreshold == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		cfg.WaxThreshold = DefaultWaxThreshold
	}
	if cfg.MigrationBudgetFrac == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		cfg.MigrationBudgetFrac = 0.25
	}
	pmt := c.Config().Material.MeltTempC
	base := HotGroupSize(cfg.GV, pmt, c.Len())
	return &WaxAware{
		g:          groups{c: c, hotSize: base},
		cfg:        cfg,
		baseHot:    base,
		effBase:    base,
		pmtC:       pmt,
		kAirWPerK:  c.Config().Server.AirConductanceWPerK,
		powerScale: c.Config().Server.PowerScale,
		resizes:    cfg.Metrics.Counter("sched_hot_group_resizes"),
		trips:      cfg.Metrics.Counter("sched_threshold_trips"),
		migrations: cfg.Metrics.Counter("sched_migrations"),
		fallbacks:  cfg.Metrics.Counter("sched_estimate_fallbacks"),
		degraded:   make([]bool, c.Len()),
	}, nil
}

// Name implements sched.Scheduler.
func (wa *WaxAware) Name() string { return "vmt-wa" }

// HotGroupSize returns the current (dynamic) hot group size.
func (wa *WaxAware) HotGroupSize() int { return wa.g.hotSize }

// BaseHotGroupSize returns the Equation-1 minimum.
func (wa *WaxAware) BaseHotGroupSize() int { return wa.baseHot }

// SetGV retunes the grouping value in place: the Equation-1 minimum is
// re-evaluated and the next Tick rebuilds the dynamic group from it.
func (wa *WaxAware) SetGV(gv float64) {
	wa.cfg.GV = gv
	wa.baseHot = HotGroupSize(gv, wa.pmtC, wa.g.c.Len())
	wa.effBase = wa.effectiveBase()
	if wa.g.hotSize < wa.effBase {
		wa.g.hotSize = wa.effBase
	}
}

// effectiveBase returns the Equation-1 minimum over the surviving
// capacity: identical to baseHot with no failures (the common case
// pays one counter read), re-derived from the alive count otherwise.
func (wa *WaxAware) effectiveBase() int {
	failed := wa.g.c.FailedServers()
	if failed == 0 {
		return wa.baseHot
	}
	return HotGroupSize(wa.cfg.GV, wa.pmtC, wa.g.c.Len()-failed)
}

// IsHot reports whether server s currently belongs to the hot group.
func (wa *WaxAware) IsHot(s *cluster.Server) bool { return wa.g.isHot(s) }

// melted reports whether the scheduler considers s fully melted: its
// reported melt fraction exceeds the wax threshold. A degraded server
// (crashed, stale, or garbage estimate) always reads as not melted —
// the graceful-degradation rule that turns VMT-WA into VMT-TA for the
// affected servers.
func (wa *WaxAware) melted(s *cluster.Server) bool {
	if id := s.ID(); id < len(wa.degraded) && wa.degraded[id] {
		return false
	}
	frac := s.ReportedMeltFrac()
	if wa.cfg.OracleWaxState {
		frac = s.MeltFrac()
	}
	return frac >= wa.cfg.WaxThreshold
}

// refreshHealth recomputes the degraded set. A healthy-to-degraded
// transition increments sched_estimate_fallbacks. With the oracle
// ablation only crashes degrade a server (ground truth cannot go
// stale).
func (wa *WaxAware) refreshHealth() {
	servers := wa.g.c.Servers()
	for i, s := range servers {
		d := s.Failed()
		if !d && !wa.cfg.OracleWaxState {
			if s.ReportsQuarantined() {
				// The guard's cross-checks caught this server lying
				// about its reports; distrust its melt state until the
				// quarantine lifts.
				d = true
			} else if s.Estimator().StaleFor() > DefaultMaxEstimateAge {
				d = true
			} else if frac := s.ReportedMeltFrac(); frac < -0.01 || frac > 1.01 {
				d = true
			}
		}
		if d && !wa.degraded[i] {
			wa.fallbacks.Inc()
		}
		wa.degraded[i] = d
	}
}

// canMeltMore reports whether placing hot load on s can melt more wax
// or keep molten wax melted: s is below the threshold or below the
// melting temperature (the Section III-B placement predicate).
func (wa *WaxAware) canMeltMore(s *cluster.Server) bool {
	return !wa.melted(s) || s.AirTempC() < wa.pmtC
}

// Tick implements sched.Scheduler: restart from the Equation-1
// minimum and grow the hot group by one server per fully melted
// server, never shrinking while those servers stay melted (cooling a
// melted server would release its stored heat mid-peak). After
// resizing, surplus load is migrated off fully melted servers — they
// keep "just enough load to keep the wax melted" — onto hot-group
// servers that can still store heat, which is what lets VMT-WA keep
// melting after the initial hot group saturates (Figure 14).
func (wa *WaxAware) Tick(time.Duration) {
	wa.refreshHealth()
	meltedCount := 0
	for _, s := range wa.g.c.Servers() {
		if wa.melted(s) {
			meltedCount++
		}
	}
	if meltedCount > wa.prevMelted {
		wa.trips.Add(uint64(meltedCount - wa.prevMelted))
	}
	wa.prevMelted = meltedCount
	wa.effBase = wa.effectiveBase()
	size := wa.effBase + meltedCount
	if size > wa.g.c.Len() {
		size = wa.g.c.Len()
	}
	// Under fault injection the prefix stretches past crashed servers
	// so the group keeps its intended count of working machines;
	// fault-free this is the identity.
	size = wa.g.sizeForAlive(size)
	if size != wa.g.hotSize {
		wa.resizes.Inc()
	}
	wa.g.hotSize = size
	wa.rebalanceMelted()
}

// keepWarmPowerW returns the power that holds server s just above the
// melting temperature at steady state — the "just enough load" level
// for a fully melted server. A +0.5 °C margin guards against the wax
// refreezing (and dumping its stored heat) on small load dips.
func (wa *WaxAware) keepWarmPowerW(s *cluster.Server) float64 {
	return (wa.pmtC + 0.5 - s.InletTempC()) * wa.kAirWPerK
}

// rebalanceMelted migrates load after the hot group saturates: surplus
// hot jobs leave fully melted servers (which keep just enough load to
// stay above the melting temperature) and concentrate on extension
// servers; the cold jobs those extension servers were running move
// onto the melted servers' freed cores, where their heat does minimal
// damage (the wax there is already molten). Near peak utilization the
// cluster has almost no free cores, so this hot-for-cold swap is what
// actually drives extension servers above the melting temperature.
// Migration preserves global job counts, so the load manager's
// bookkeeping is unaffected.
//
// The per-tick migration budget (MigrationBudgetFrac of the cores)
// bounds scheduler churn; the handover completes over a few ticks,
// matching the paper's observation that VMT-WA extends the hot group
// at a visible granularity (Figure 14).
func (wa *WaxAware) rebalanceMelted() {
	for budget := int(float64(wa.g.c.TotalCores()) * wa.cfg.MigrationBudgetFrac); budget > 0; {
		moved := false
		if wa.shedOneHot() {
			budget--
			moved = true
			wa.migrations.Inc()
		}
		if budget > 0 && wa.clearOneCold() {
			budget--
			moved = true
			wa.migrations.Inc()
		}
		if !moved && wa.swapOne() {
			// Fully packed cluster: neither side has a free core to
			// bootstrap the gradual handover, so exchange one hot job
			// for one cold job atomically.
			budget--
			moved = true
			wa.migrations.Inc()
		}
		if !moved {
			return
		}
	}
}

// swapOne exchanges one hot job on a melted keep-warm-surplus server
// for one cold job on an extension server, without needing any free
// core. Reports whether an exchange happened.
func (wa *WaxAware) swapOne() bool {
	for i := 0; i < wa.g.hotSize; i++ {
		src := wa.g.c.Server(i)
		if !wa.melted(src) || src.AirTempC() < wa.pmtC {
			continue
		}
		hot, ok := wa.largestJob(src, workload.Hot)
		if !ok {
			continue
		}
		keep := wa.keepWarmPowerW(src)
		if src.PowerW()-hot.PerCorePowerW()*wa.powerScale < keep {
			continue
		}
		for j := wa.effBase; j < wa.g.hotSize; j++ {
			e := wa.g.c.Server(j)
			if e.ID() == src.ID() || !wa.canMeltMore(e) {
				continue
			}
			cold, ok := wa.largestJob(e, workload.Cold)
			if !ok {
				continue
			}
			if src.Remove(hot) != nil {
				return false
			}
			if e.Remove(cold) != nil {
				_ = src.Place(hot) // roll back; should not happen
				return false
			}
			return e.Place(hot) == nil && src.Place(cold) == nil
		}
	}
	return false
}

// shedOneHot moves one hot job from a fully melted server with surplus
// power to the current melt target. Reports whether a move happened.
func (wa *WaxAware) shedOneHot() bool {
	for i := 0; i < wa.g.hotSize; i++ {
		src := wa.g.c.Server(i)
		if !wa.melted(src) || src.AirTempC() < wa.pmtC {
			continue
		}
		keep := wa.keepWarmPowerW(src)
		w, ok := wa.largestJob(src, workload.Hot)
		if !ok {
			continue
		}
		// Only shed if the server stays at keep-warm power afterwards;
		// draining it would refreeze the wax and release stored heat
		// in the middle of the peak.
		if src.PowerW()-w.PerCorePowerW()*wa.powerScale < keep {
			continue
		}
		dst := wa.meltTarget(w, src.ID())
		if dst == nil {
			return false
		}
		return src.Remove(w) == nil && dst.Place(w) == nil
	}
	return false
}

// clearOneCold moves one cold job off the extension server currently
// being filled, onto a melted hot-group server with a free core (where
// extra heat is thermally harmless), making room for hot load.
func (wa *WaxAware) clearOneCold() bool {
	for i := wa.effBase; i < wa.g.hotSize; i++ {
		e := wa.g.c.Server(i)
		if !wa.canMeltMore(e) {
			continue
		}
		w, ok := wa.largestJob(e, workload.Cold)
		if !ok {
			continue // already converted to hot load; fill the next one
		}
		var dst *cluster.Server
		for j := 0; j < wa.g.hotSize; j++ {
			d := wa.g.c.Server(j)
			if d.ID() != e.ID() && d.FreeCores() > 0 &&
				wa.melted(d) && d.AirTempC() >= wa.pmtC {
				dst = d
				break
			}
		}
		if dst == nil {
			return false
		}
		return e.Remove(w) == nil && dst.Place(w) == nil
	}
	return false
}

// largestJob returns the workload of the given class with the most
// jobs on s (name-ordered ties, via the cluster's allocation-free
// scan).
func (wa *WaxAware) largestJob(s *cluster.Server, class workload.Class) (workload.Workload, bool) {
	return s.LargestJob(class)
}

// Place implements sched.Scheduler using the Section III-B cascade.
func (wa *WaxAware) Place(w workload.Workload) (*cluster.Server, error) {
	if w.Class == workload.Hot {
		return wa.placeHot(w)
	}
	return wa.placeCold(w)
}

// meltTarget returns the hot-group server that should receive hot load
// to maximize wax melting, or nil if none qualifies. Within the base
// (Equation-1) group, load spreads evenly across servers that can
// still melt wax, exactly like VMT-TA. Within the extension region,
// load is *concentrated* fill-first in ID order: a freshly added
// server only melts wax if it is driven above the melting temperature,
// so spreading the surplus thinly would melt nothing (Section III-B:
// "moves the additional load to the newly added server").
func (wa *WaxAware) meltTarget(w workload.Workload, excludeID int) *cluster.Server {
	keep := func(s *cluster.Server) bool {
		return s.ID() != excludeID && wa.canMeltMore(s)
	}
	base := wa.effBase
	if base > wa.g.hotSize {
		base = wa.g.hotSize
	}
	if s := wa.g.leastBusy(0, base, w, keep); s != nil {
		return s
	}
	for i := base; i < wa.g.hotSize; i++ {
		s := wa.g.c.Server(i)
		if s.FreeCores() > 0 && keep(s) {
			return s
		}
	}
	return nil
}

func (wa *WaxAware) placeHot(w workload.Workload) (*cluster.Server, error) {
	n := wa.g.c.Len()
	// 1. A hot-group server that can melt more wax (below the wax
	//    threshold or below the melting temperature).
	if s := wa.meltTarget(w, -1); s != nil {
		return s, nil
	}
	// 2. Extend the hot group from the cold group sequentially until
	//    it includes such a server (sudden load spikes).
	for wa.g.hotSize < n {
		wa.g.hotSize++
		added := wa.g.c.Server(wa.g.hotSize - 1)
		if added.FreeCores() > 0 && wa.canMeltMore(added) {
			return added, nil
		}
	}
	// 3. Corner case with every server in the hot group: any server
	//    below the melted threshold, then any remaining server.
	if s := wa.g.leastBusy(0, n, w, func(s *cluster.Server) bool { return !wa.melted(s) }); s != nil {
		return s, nil
	}
	if s := wa.g.leastBusy(0, n, w, nil); s != nil {
		return s, nil
	}
	return nil, sched.ErrNoCapacity
}

func (wa *WaxAware) placeCold(w workload.Workload) (*cluster.Server, error) {
	n := wa.g.c.Len()
	// 1. The cold group.
	if s := wa.g.leastBusy(wa.g.hotSize, n, w, nil); s != nil {
		return s, nil
	}
	// 2. A hot-group server already above the melted threshold and the
	//    melting temperature — minimal thermal impact.
	alreadyMolten := func(s *cluster.Server) bool {
		return wa.melted(s) && s.AirTempC() >= wa.pmtC
	}
	if s := wa.g.leastBusy(0, wa.g.hotSize, w, alreadyMolten); s != nil {
		return s, nil
	}
	// 3. Any remaining hot-group server.
	if s := wa.g.leastBusy(0, wa.g.hotSize, w, nil); s != nil {
		return s, nil
	}
	return nil, sched.ErrNoCapacity
}

// SelectRemoval implements sched.Scheduler. Falling load sheds first
// from servers whose eviction least disturbs stored heat: spilled jobs
// in the wrong group, then hot-group servers that are not melting
// anyway (below the melting temperature), then the most-loaded server
// in the job's group — so melted servers keep just enough load to
// stay molten.
func (wa *WaxAware) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	n := wa.g.c.Len()
	if w.Class == workload.Hot {
		// Spilled hot jobs in the cold group first.
		if s := wa.g.mostBusyWith(wa.g.hotSize, n, w, nil); s != nil {
			return s, nil
		}
		// Then the same servers placements target (those still able to
		// melt wax): minute-scale churn cycles within that set, so
		// fully melted servers keep the load holding their wax molten.
		if s := wa.g.mostBusyWith(0, wa.g.hotSize, w, wa.canMeltMore); s != nil {
			return s, nil
		}
		if s := wa.g.mostBusyWith(0, wa.g.hotSize, w, nil); s != nil {
			return s, nil
		}
		return nil, sched.ErrNoJob
	}
	// Cold jobs: spilled into the hot group first, then cold group.
	if s := wa.g.mostBusyWith(0, wa.g.hotSize, w, nil); s != nil {
		return s, nil
	}
	if s := wa.g.mostBusyWith(wa.g.hotSize, n, w, nil); s != nil {
		return s, nil
	}
	return nil, sched.ErrNoJob
}
