package core

import (
	"testing"
	"time"

	"vmt/internal/workload"
)

// placeHot rule 2: when every current hot-group server is saturated,
// the group extends sequentially until a usable server appears.
func TestWAPlaceHotExtendsOnSpike(t *testing.T) {
	c := newCluster(t, 6)
	wa, err := NewWaxAware(c, Config{GV: 22}) // base 4
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fillServer(t, c, i, workload.WebSearch, 32)
	}
	s, err := wa.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 4 {
		t.Fatalf("spike placement went to %d, want first extension server 4", s.ID())
	}
	if wa.HotGroupSize() < 5 {
		t.Fatalf("hot group should have extended, size %d", wa.HotGroupSize())
	}
}

// placeHot rule 3 first arm: with the whole cluster in the hot group
// and every server either melted or full, the job goes to any server
// below the melted threshold.
func TestWAPlaceHotCornerCaseBelowThreshold(t *testing.T) {
	c := newCluster(t, 3)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Melt server 0 and keep it hot; saturate server 1 (unmelted, so
	// canMeltMore but full); leave server 2 partly free.
	fillServer(t, c, 0, workload.VideoEncoding, 32)
	for i := 0; i < 8*60 && c.Server(0).ReportedMeltFrac() < 0.999; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	fillServer(t, c, 1, workload.VirusScan, 32)
	fillServer(t, c, 2, workload.VirusScan, 30)
	wa.g.hotSize = 3
	wa.baseHot = 3
	s, err := wa.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 2 {
		t.Fatalf("corner-case placement went to %d, want unmelted server 2", s.ID())
	}
}

// placeHot rule 3 second arm: when only fully melted servers have free
// cores, hot jobs still land somewhere.
func TestWAPlaceHotLastResortMeltedServer(t *testing.T) {
	c := newCluster(t, 2)
	wa, err := NewWaxAware(c, Config{GV: 22, WaxThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Melt server 0 hot with spare cores; saturate server 1.
	fillServer(t, c, 0, workload.VideoEncoding, 30)
	for i := 0; i < 8*60 && c.Server(0).ReportedMeltFrac() < 0.999; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	fillServer(t, c, 1, workload.VirusScan, 32)
	wa.g.hotSize = 2
	wa.baseHot = 2
	s, err := wa.Place(workload.WebSearch)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 0 {
		t.Fatalf("last-resort placement went to %d, want melted server 0", s.ID())
	}
}

// Cold removal falls back to the cold group when no cold job was
// spilled into the hot group.
func TestWAColdRemovalFromColdGroup(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22}) // base 2
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Server(3).Place(workload.DataCaching); err != nil {
		t.Fatal(err)
	}
	s, err := wa.SelectRemoval(workload.DataCaching)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 3 {
		t.Fatalf("removal from %d, want 3", s.ID())
	}
}

// Hot removal's middle preference: a hot-group server below the
// melting temperature sheds before one above it.
func TestWAHotRemovalPrefersNonMelting(t *testing.T) {
	c := newCluster(t, 4)
	wa, err := NewWaxAware(c, Config{GV: 22}) // base 2
	if err != nil {
		t.Fatal(err)
	}
	// Server 0: hot and loaded (above PMT after warm-up); server 1:
	// barely loaded (below PMT). Both carry the workload.
	fillServer(t, c, 0, workload.VideoEncoding, 32)
	fillServer(t, c, 1, workload.VideoEncoding, 2)
	for i := 0; i < 4*60; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if c.Server(0).AirTempC() < 35.7 || c.Server(1).AirTempC() >= 35.7 {
		t.Fatalf("setup temps wrong: %.1f / %.1f",
			c.Server(0).AirTempC(), c.Server(1).AirTempC())
	}
	s, err := wa.SelectRemoval(workload.VideoEncoding)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 1 {
		t.Fatalf("removal from %d, want the non-melting server 1", s.ID())
	}
}
