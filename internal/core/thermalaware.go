package core

import (
	"time"

	"vmt/internal/cluster"
	"vmt/internal/sched"
	"vmt/internal/telemetry"
	"vmt/internal/workload"
)

// ThermalAware is VMT with thermal aware job placement (VMT-TA,
// Section III-A): the cluster is split into a fixed hot group and cold
// group by Equation 1; hot-class jobs go to the hot group and
// cold-class jobs to the cold group, each distributed evenly within
// its group. If a group fills, jobs spill to the other group (the
// paper's stated overflow rule), so no job is ever dropped while the
// cluster has cores.
type ThermalAware struct {
	g    groups
	cfg  Config
	pmtC float64
	// target is the Equation-1 hot-group size in alive servers; the
	// actual prefix (g.hotSize) stretches past crashed IDs so the
	// policy keeps target working hot servers under fault injection.
	target int
	// resizes counts SetGV-driven hot-group size changes (nil-safe).
	resizes *telemetry.Counter
}

// NewThermalAware builds a VMT-TA scheduler over c. The hot group size
// comes from Equation 1 using c's wax melting temperature as the PMT.
func NewThermalAware(c *cluster.Cluster, cfg Config) (*ThermalAware, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pmt := c.Config().Material.MeltTempC
	hot := HotGroupSize(cfg.GV, pmt, c.Len())
	return &ThermalAware{
		g:       groups{c: c, hotSize: hot},
		cfg:     cfg,
		pmtC:    pmt,
		target:  hot,
		resizes: cfg.Metrics.Counter("sched_hot_group_resizes"),
	}, nil
}

// SetGV retunes the grouping value in place (Equation 1 re-evaluated),
// the operator action behind day-to-day VMT adjustment.
func (t *ThermalAware) SetGV(gv float64) {
	t.cfg.GV = gv
	t.target = HotGroupSize(gv, t.pmtC, t.g.c.Len())
	if size := t.g.sizeForAlive(t.target); size != t.g.hotSize {
		t.g.hotSize = size
		t.resizes.Inc()
	}
}

// Name implements sched.Scheduler.
func (t *ThermalAware) Name() string { return "vmt-ta" }

// HotGroupSize returns the (static) hot group size.
func (t *ThermalAware) HotGroupSize() int { return t.g.hotSize }

// IsHot reports whether server s belongs to the hot group.
func (t *ThermalAware) IsHot(s *cluster.Server) bool { return t.g.isHot(s) }

// Tick implements sched.Scheduler. VMT-TA has no periodic state of
// its own, but under fault injection it re-evaluates Equation 1 over
// the surviving capacity (losing a whole rack shrinks the intended
// hot count proportionally, not just the prefix stretch) and
// re-stretches the hot-group prefix over crashed servers so the
// policy keeps that count of working hot machines. Fault-free this is
// the identity.
func (t *ThermalAware) Tick(time.Duration) {
	target := t.target
	if failed := t.g.c.FailedServers(); failed > 0 {
		target = HotGroupSize(t.cfg.GV, t.pmtC, t.g.c.Len()-failed)
	}
	if size := t.g.sizeForAlive(target); size != t.g.hotSize {
		t.g.hotSize = size
		t.resizes.Inc()
	}
}

// Place implements sched.Scheduler: even distribution within the
// job's class group, spilling to the other group when full.
func (t *ThermalAware) Place(w workload.Workload) (*cluster.Server, error) {
	n := t.g.c.Len()
	var primLo, primHi, secLo, secHi int
	if w.Class == workload.Hot {
		primLo, primHi, secLo, secHi = 0, t.g.hotSize, t.g.hotSize, n
	} else {
		primLo, primHi, secLo, secHi = t.g.hotSize, n, 0, t.g.hotSize
	}
	if s := t.g.leastBusy(primLo, primHi, w, nil); s != nil {
		return s, nil
	}
	if s := t.g.leastBusy(secLo, secHi, w, nil); s != nil {
		return s, nil
	}
	return nil, sched.ErrNoCapacity
}

// SelectRemoval implements sched.Scheduler: spilled jobs (those in the
// wrong group) are evicted first so falling load re-tightens the
// thermal separation; within a group the most-loaded server sheds
// first, mirroring the even-placement rule.
func (t *ThermalAware) SelectRemoval(w workload.Workload) (*cluster.Server, error) {
	n := t.g.c.Len()
	var primLo, primHi, spillLo, spillHi int
	if w.Class == workload.Hot {
		primLo, primHi, spillLo, spillHi = 0, t.g.hotSize, t.g.hotSize, n
	} else {
		primLo, primHi, spillLo, spillHi = t.g.hotSize, n, 0, t.g.hotSize
	}
	if s := t.g.mostBusyWith(spillLo, spillHi, w, nil); s != nil {
		return s, nil
	}
	if s := t.g.mostBusyWith(primLo, primHi, w, nil); s != nil {
		return s, nil
	}
	return nil, sched.ErrNoJob
}
