// Package energy prices cooling electricity under time-of-use tariffs,
// quantifying the benefit the paper's conclusion points at: because
// TTS/VMT shift cooling energy from peak hours into the night, they
// save on *energy* cost as well as on cooling capital, wherever peak
// kWh cost more than off-peak kWh.
package energy

import (
	"fmt"
	"math"
	"time"

	"vmt/internal/chiller"
	"vmt/internal/stats"
)

// Tariff is a time-of-use electricity price schedule, periodic over
// 24 hours.
type Tariff struct {
	// OffPeakUSDPerKWh applies outside the peak window.
	OffPeakUSDPerKWh float64
	// PeakUSDPerKWh applies inside [PeakStartHour, PeakEndHour).
	PeakUSDPerKWh float64
	// PeakStartHour and PeakEndHour bound the daily peak window
	// (0 ≤ start < end ≤ 24).
	PeakStartHour, PeakEndHour float64
}

// TypicalTOU returns a representative commercial time-of-use tariff:
// 14¢/kWh noon–22:00, 7¢/kWh overnight.
func TypicalTOU() Tariff {
	return Tariff{
		OffPeakUSDPerKWh: 0.07,
		PeakUSDPerKWh:    0.14,
		PeakStartHour:    12,
		PeakEndHour:      22,
	}
}

// Validate reports whether the tariff is well formed.
func (t Tariff) Validate() error {
	switch {
	case t.OffPeakUSDPerKWh < 0 || t.PeakUSDPerKWh < 0:
		return fmt.Errorf("energy: negative rate")
	case t.PeakStartHour < 0 || t.PeakEndHour > 24 || t.PeakStartHour >= t.PeakEndHour:
		return fmt.Errorf("energy: bad peak window [%v,%v)", t.PeakStartHour, t.PeakEndHour)
	}
	return nil
}

// InPeakWindow reports whether simulation time d falls inside the
// daily [PeakStartHour, PeakEndHour) window.
func (t Tariff) InPeakWindow(d time.Duration) bool {
	h := math.Mod(d.Hours(), 24)
	return h >= t.PeakStartHour && h < t.PeakEndHour
}

// RateAt returns the $/kWh price at simulation time d.
func (t Tariff) RateAt(d time.Duration) float64 {
	if t.InPeakWindow(d) {
		return t.PeakUSDPerKWh
	}
	return t.OffPeakUSDPerKWh
}

// Flat reports whether the tariff prices peak and off-peak kWh
// identically, which makes peak-window accounting meaningless.
//
//vmtlint:allow floateq exact comparison of two configured rate constants, not computed values
func (t Tariff) Flat() bool { return t.PeakUSDPerKWh == t.OffPeakUSDPerKWh }

// Bill summarizes the cooling electricity cost of one load series.
type Bill struct {
	// TotalUSD is the cooling energy cost over the series.
	TotalUSD float64
	// PeakWindowUSD and OffPeakUSD split it by tariff window.
	PeakWindowUSD, OffPeakUSD float64
	// EnergyKWh is the plant's total electrical energy.
	EnergyKWh float64
	// PeakWindowShare is the fraction of cooling energy consumed
	// inside the expensive window — what thermal time shifting pushes
	// down.
	PeakWindowShare float64
}

// CoolingBill prices a cooling-load series (watts of heat) through a
// chiller plant under the tariff.
func CoolingBill(load *stats.Series, plant chiller.Plant, tariff Tariff) (Bill, error) {
	if err := tariff.Validate(); err != nil {
		return Bill{}, err
	}
	if err := plant.Validate(); err != nil {
		return Bill{}, err
	}
	if load.Len() == 0 {
		return Bill{}, fmt.Errorf("energy: empty load series")
	}
	var bill Bill
	stepH := load.Step.Hours()
	for i, q := range load.Values {
		kwh := plant.ElectricalPowerW(q) * stepH / 1000
		bill.EnergyKWh += kwh
		at := load.TimeAt(i)
		cost := kwh * tariff.RateAt(at)
		bill.TotalUSD += cost
		if tariff.InPeakWindow(at) && !tariff.Flat() {
			bill.PeakWindowUSD += cost
			bill.PeakWindowShare += kwh
		} else {
			bill.OffPeakUSD += cost
		}
	}
	if bill.EnergyKWh > 0 {
		bill.PeakWindowShare /= bill.EnergyKWh
	}
	return bill, nil
}

// Comparison prices two cooling-load series (baseline vs variant)
// under the same plant and tariff.
type Comparison struct {
	Baseline, Variant Bill
	// SavingsUSD is baseline minus variant total cost.
	SavingsUSD float64
	// SavingsPct is the relative saving.
	SavingsPct float64
}

// Compare prices baseline and variant cooling-load series.
func Compare(baseline, variant *stats.Series, plant chiller.Plant, tariff Tariff) (Comparison, error) {
	b, err := CoolingBill(baseline, plant, tariff)
	if err != nil {
		return Comparison{}, err
	}
	v, err := CoolingBill(variant, plant, tariff)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{Baseline: b, Variant: v, SavingsUSD: b.TotalUSD - v.TotalUSD}
	if b.TotalUSD > 0 {
		cmp.SavingsPct = cmp.SavingsUSD / b.TotalUSD * 100
	}
	return cmp, nil
}
