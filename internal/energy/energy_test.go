package energy

import (
	"math"
	"testing"
	"time"

	"vmt/internal/chiller"
	"vmt/internal/stats"
)

func flatPlant(cap float64) chiller.Plant {
	return chiller.Plant{CapacityW: cap, NominalCOP: 4, PartLoadPenalty: 0}
}

func TestTariffValidate(t *testing.T) {
	if err := TypicalTOU().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Tariff{
		{OffPeakUSDPerKWh: -1, PeakUSDPerKWh: 1, PeakStartHour: 1, PeakEndHour: 2},
		{OffPeakUSDPerKWh: 1, PeakUSDPerKWh: -1, PeakStartHour: 1, PeakEndHour: 2},
		{OffPeakUSDPerKWh: 1, PeakUSDPerKWh: 1, PeakStartHour: 5, PeakEndHour: 5},
		{OffPeakUSDPerKWh: 1, PeakUSDPerKWh: 1, PeakStartHour: -1, PeakEndHour: 5},
		{OffPeakUSDPerKWh: 1, PeakUSDPerKWh: 1, PeakStartHour: 5, PeakEndHour: 25},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRateAt(t *testing.T) {
	tou := TypicalTOU()
	if got := tou.RateAt(13 * time.Hour); got != 0.14 {
		t.Fatalf("13h rate = %v", got)
	}
	if got := tou.RateAt(3 * time.Hour); got != 0.07 {
		t.Fatalf("3h rate = %v", got)
	}
	// Periodic over days: hour 37 = hour 13 of day 2.
	if got := tou.RateAt(37 * time.Hour); got != 0.14 {
		t.Fatalf("37h rate = %v", got)
	}
	// Window boundaries: start inclusive, end exclusive.
	if tou.RateAt(12*time.Hour) != 0.14 || tou.RateAt(22*time.Hour) != 0.07 {
		t.Fatal("window boundaries wrong")
	}
}

func TestCoolingBillArithmetic(t *testing.T) {
	// Two 1-hour samples: one off-peak (3h), one peak (13h).
	load := stats.NewSeries(time.Hour)
	for i := 0; i < 24; i++ {
		if i == 3 || i == 13 {
			load.Append(4000) // 4 kW heat → 1 kW electric at COP 4
		} else {
			load.Append(0)
		}
	}
	bill, err := CoolingBill(load, flatPlant(10_000), TypicalTOU())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bill.EnergyKWh-2) > 1e-12 {
		t.Fatalf("energy = %v, want 2 kWh", bill.EnergyKWh)
	}
	if math.Abs(bill.TotalUSD-(0.07+0.14)) > 1e-12 {
		t.Fatalf("total = %v, want 0.21", bill.TotalUSD)
	}
	if math.Abs(bill.PeakWindowUSD-0.14) > 1e-12 || math.Abs(bill.OffPeakUSD-0.07) > 1e-12 {
		t.Fatalf("split = %v / %v", bill.PeakWindowUSD, bill.OffPeakUSD)
	}
	if math.Abs(bill.PeakWindowShare-0.5) > 1e-12 {
		t.Fatalf("peak share = %v", bill.PeakWindowShare)
	}
}

func TestCoolingBillErrors(t *testing.T) {
	empty := stats.NewSeries(time.Hour)
	if _, err := CoolingBill(empty, flatPlant(1), TypicalTOU()); err == nil {
		t.Fatal("empty series should fail")
	}
	load := stats.NewSeries(time.Hour)
	load.Append(1)
	if _, err := CoolingBill(load, chiller.Plant{}, TypicalTOU()); err == nil {
		t.Fatal("bad plant should fail")
	}
	if _, err := CoolingBill(load, flatPlant(1), Tariff{OffPeakUSDPerKWh: -1}); err == nil {
		t.Fatal("bad tariff should fail")
	}
}

// Shifting the same energy off-peak cuts the bill — the mechanism the
// paper's conclusion credits to thermal time shifting.
func TestCompareRewardsShifting(t *testing.T) {
	baseline := stats.NewSeries(time.Hour)
	shifted := stats.NewSeries(time.Hour)
	for i := 0; i < 24; i++ {
		switch {
		case i >= 12 && i < 22: // peak window
			baseline.Append(10_000)
			shifted.Append(6_000)
		case i < 10: // overnight
			baseline.Append(2_000)
			shifted.Append(6_000)
		default:
			baseline.Append(2_000)
			shifted.Append(2_000)
		}
	}
	cmp, err := Compare(baseline, shifted, flatPlant(20_000), TypicalTOU())
	if err != nil {
		t.Fatal(err)
	}
	// Same total energy, different timing.
	if math.Abs(cmp.Baseline.EnergyKWh-cmp.Variant.EnergyKWh) > 1e-9 {
		t.Fatalf("energy differs: %v vs %v", cmp.Baseline.EnergyKWh, cmp.Variant.EnergyKWh)
	}
	if cmp.SavingsUSD <= 0 {
		t.Fatalf("shifting should save money, got %v", cmp.SavingsUSD)
	}
	if cmp.Variant.PeakWindowShare >= cmp.Baseline.PeakWindowShare {
		t.Fatal("variant should consume less in the peak window")
	}
	if cmp.SavingsPct <= 0 || cmp.SavingsPct >= 100 {
		t.Fatalf("savings pct %v out of range", cmp.SavingsPct)
	}
}

func TestFlatTariffNoPeakSplit(t *testing.T) {
	flat := Tariff{OffPeakUSDPerKWh: 0.1, PeakUSDPerKWh: 0.1, PeakStartHour: 12, PeakEndHour: 22}
	load := stats.NewSeries(time.Hour)
	for i := 0; i < 24; i++ {
		load.Append(4000)
	}
	bill, err := CoolingBill(load, flatPlant(10_000), flat)
	if err != nil {
		t.Fatal(err)
	}
	if bill.PeakWindowUSD != 0 {
		t.Fatalf("flat tariff should not attribute a peak window, got %v", bill.PeakWindowUSD)
	}
	if math.Abs(bill.TotalUSD-2.4) > 1e-12 { // 24 kWh × $0.1
		t.Fatalf("total = %v", bill.TotalUSD)
	}
}
