package pcm_test

import (
	"fmt"
	"time"

	"vmt/internal/pcm"
)

func ExamplePack_Apply() {
	pack, err := pcm.NewPack(pcm.CommercialParaffin(), 4.0, 22)
	if err != nil {
		panic(err)
	}
	fmt.Printf("battery: %.2f MJ of latent storage\n", pack.LatentCapacityJ()/1e6)

	// Heat to the melting point, then half-melt.
	sensible := pack.MassKg() * pack.Material().SpecificHeatSolidJPerKgK * (35.7 - 22)
	pack.Apply(sensible, time.Second)
	pack.Apply(pack.LatentCapacityJ()/2, time.Second)
	fmt.Printf("temperature pinned at %.1f °C, %.0f%% melted\n",
		pack.TempC(), pack.MeltFrac()*100)
	// Output:
	// battery: 0.94 MJ of latent storage
	// temperature pinned at 35.7 °C, 50% melted
}

func ExampleCommercialParaffin() {
	m := pcm.CommercialParaffin()
	fmt.Printf("%s melts at %.1f °C and costs $%.0f/ton\n",
		m.Name, m.MeltTempC, m.CostUSDPerTon)
	// Output: commercial-paraffin-35.7C melts at 35.7 °C and costs $1000/ton
}
