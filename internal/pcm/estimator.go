package pcm

import (
	"fmt"
	"sync"
	"time"
)

// Estimator is the lightweight per-server wax-state model of ref [24]:
// a single temperature sensor on the wax container tells the server
// when melting or freezing starts, and a lookup table maps the sensed
// air-to-wax temperature difference to a heat-flow rate, which the
// server integrates into an estimated melt fraction. The cluster
// scheduler (VMT-WA) consumes these estimates — not ground truth —
// once per minute.
//
// The lookup table quantizes the temperature difference, so the
// estimate drifts slightly from the true pack state; tests bound that
// drift. The update runs in constant time and is cheap enough to run
// once per minute on every server with negligible overhead, as the
// paper requires.
type Estimator struct {
	// shadow is held by value so a fleet of estimators stored in a
	// dense slice is fully contiguous — the estimator pass of a cluster
	// tick then streams memory instead of chasing per-server pointers.
	shadow Pack
	// table[i] is the estimated heat flow (W) for the i-th
	// temperature-difference bucket.
	table        []float64
	minDeltaC    float64
	bucketWidthC float64
	// invBucketWidthC is 1/bucketWidthC: the per-substep bucket index
	// is a multiply instead of a divide on the hottest loop in the
	// simulator.
	invBucketWidthC float64
	updates         uint64

	// sensor, when non-nil, interposes on the sensed air temperature
	// (fault injection). at accumulates sim time across Updates so the
	// sensor can evaluate time-windowed faults; stale accumulates time
	// since the last successful reading.
	sensor Sensor
	at     time.Duration
	stale  time.Duration
}

// Sensor models the physical temperature sensor feeding the estimator.
// Sense maps the true air temperature at the wax to the sensed reading
// at sim time at; ok=false means no reading was produced (dropout or
// dead sensor) and the estimate ages unchanged.
type Sensor interface {
	Sense(trueC float64, at time.Duration) (sensedC float64, ok bool)
}

// NewEstimator builds an estimator for a pack of volumeL liters of m
// starting at initialTempC, exchanging heat with the air stream through
// conductance hAWPerK (W/K). The lookup table covers temperature
// differences of ±40 °C in 0.1 °C buckets and is shared by every
// estimator with the same conductance (see tableFor).
func NewEstimator(m Material, volumeL, initialTempC, hAWPerK float64) (*Estimator, error) {
	e := new(Estimator)
	if err := InitEstimator(e, m, volumeL, initialTempC, hAWPerK); err != nil {
		return nil, err
	}
	return e, nil
}

// InitEstimator initializes dst in place — the allocation-free
// companion of NewEstimator for callers that keep estimators in dense
// slices. Any previous state of dst is overwritten.
func InitEstimator(dst *Estimator, m Material, volumeL, initialTempC, hAWPerK float64) error {
	if hAWPerK <= 0 {
		return fmt.Errorf("pcm: estimator conductance must be positive, got %v", hAWPerK)
	}
	*dst = Estimator{
		table:           tableFor(hAWPerK),
		minDeltaC:       tableMinDeltaC,
		bucketWidthC:    tableBucketWidthC,
		invBucketWidthC: 1 / tableBucketWidthC,
	}
	return InitPack(&dst.shadow, m, volumeL, initialTempC)
}

// The lookup table covers temperature differences of ±40 °C in 0.1 °C
// buckets. Buckets are centered on grid points (…, −0.5, 0, +0.5, …)
// so a zero temperature difference maps to exactly zero heat flow; a
// midpoint-offset table would leak heat at equilibrium.
const (
	tableMinDeltaC    = -40.0
	tableMaxDeltaC    = 40.0
	tableBucketWidthC = 0.1
)

// tableKey identifies a cached estimator table. Like curveKey, the
// float field is used only for identity (struct map key, never ranged
// or compared with a tolerance) — the floatkey analyzer's documented
// struct-identity exemption.
type tableKey struct {
	hAWPerK float64
}

var (
	tableMu    sync.Mutex
	tableCache = map[tableKey][]float64{}
)

// tableFor returns the shared lookup table for conductance hAWPerK,
// building it on first use. Tables are immutable after construction
// and their values depend only on hAWPerK and the bucket constants, so
// sharing one slice across every estimator of a fleet is safe and
// saves ~6.4 KB per server — the difference between megabytes and
// gigabytes at a million servers. Bounded like the curve cache: fuzzed
// or swept conductances must not grow it without limit.
func tableFor(hAWPerK float64) []float64 {
	key := tableKey{hAWPerK: hAWPerK}
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tableCache[key]; ok {
		return t
	}
	if len(tableCache) >= 256 {
		tableCache = map[tableKey][]float64{}
	}
	n := int((tableMaxDeltaC-tableMinDeltaC)/tableBucketWidthC) + 1
	table := make([]float64, n)
	for i := range table {
		table[i] = hAWPerK * (tableMinDeltaC + float64(i)*tableBucketWidthC)
	}
	tableCache[key] = table
	return table
}

// lookup returns the tabulated heat flow for the given temperature
// difference, rounding to the nearest bucket center and clamping
// out-of-range differences to the table edges.
//
//vmt:hotpath
func (e *Estimator) lookup(deltaC float64) float64 {
	i := int((deltaC-e.minDeltaC)*e.invBucketWidthC + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(e.table) {
		i = len(e.table) - 1
	}
	return e.table[i]
}

// Update advances the estimate by dt given the sensed air temperature
// at the wax. Call once per model period (the paper uses one minute).
// The update subdivides internally so the shadow state stays stable
// even though the wax time constant is shorter than the period.
//
//vmt:hotpath
func (e *Estimator) Update(airTempC float64, dt time.Duration) {
	const subStep = 10 * time.Second
	if e.sensor != nil {
		e.at += dt
		sensed, ok := e.sensor.Sense(airTempC, e.at)
		if !ok {
			// No reading: the estimate ages in place. updates still
			// counts so overhead accounting stays comparable.
			e.stale += dt
			e.updates++
			return
		}
		e.stale = 0
		airTempC = sensed
	}
	// This is the hottest loop in a whole-cluster run (every server,
	// every substep, every tick), so the shadow state is advanced on
	// locals: the enthalpy integrates directly and only the
	// temperature is projected per substep — the melt fraction is
	// needed once, at the end. Full substeps share one precomputed
	// duration-in-seconds; only a trailing partial substep pays the
	// conversion.
	subSec := subStep.Seconds()
	sh := &e.shadow
	cv := sh.cv
	h := sh.hJ
	t := sh.tempC
	// Settled-shadow fast path. If the cached temperature is the exact
	// projection of the enthalpy (true after any Update; only Reset
	// pins it verbatim) and the first substep's energy increment rounds
	// to zero against h, every substep is the identity — the loop would
	// leave h and t bit-identical — so the whole update is skipped.
	// This is the steady state of a settled cluster: the temperature
	// difference sits inside the zero-flow bucket (or the tabulated
	// flow is below h's rounding granularity) even as the sensed air
	// temperature jitters by ulps tick to tick.
	//vmtlint:allow floateq bit-exact fixed-point test: the fast path may fire only when the loop would be the identity
	if cv.tempAt(h) == t && h+e.lookup(airTempC-t)*subSec == h {
		e.updates++
		return
	}
	remaining := dt
	for ; remaining >= subStep; remaining -= subStep {
		h += e.lookup(airTempC-t) * subSec
		t = cv.tempAt(h)
	}
	if remaining > 0 {
		h += e.lookup(airTempC-t) * remaining.Seconds()
	}
	sh.hJ = h
	sh.tempC, sh.meltFrac = cv.state(h)
	e.updates++
}

// MeltFrac returns the estimated melted fraction in [0,1].
func (e *Estimator) MeltFrac() float64 { return e.shadow.MeltFrac() }

// TempC returns the estimated wax temperature.
func (e *Estimator) TempC() float64 { return e.shadow.TempC() }

// Updates returns how many times Update has run (for overhead
// accounting in tests).
func (e *Estimator) Updates() uint64 { return e.updates }

// SetSensor interposes s on the estimator's temperature input. A nil
// sensor restores direct (faultless) readings.
func (e *Estimator) SetSensor(s Sensor) { e.sensor = s }

// StaleFor returns how long the estimator has gone without a
// successful sensor reading. Always zero without a sensor installed.
func (e *Estimator) StaleFor() time.Duration { return e.stale }

// Reset re-initializes the estimate, e.g. after a server rotates
// between groups and its wax is known to have refrozen, or a repaired
// server boots with a cold estimator. The reading history is
// considered fresh again.
func (e *Estimator) Reset(tempC float64) {
	e.shadow.Reset(tempC)
	e.stale = 0
}
