package pcm

import "fmt"

// CurveParams is the exported view of the precomputed enthalpy-curve
// segment parameters for one (material, volume) pair — the flat scalar
// form the struct-of-arrays fleet store (internal/thermal.Fleet)
// copies into its per-server parameter slices. The fields mirror the
// internal curve exactly, so a consumer that replays the curve's
// segment arithmetic (same expressions, same order) reproduces Pack
// projections bit for bit.
type CurveParams struct {
	// MeltC is the physical melting temperature.
	MeltC float64
	// CapSolidJPerK and CapLiquidJPerK are the sensible heat
	// capacities (mass × specific heat) of the two phases.
	CapSolidJPerK  float64
	CapLiquidJPerK float64
	// LatentJ is the total heat of fusion (mass × latent heat).
	LatentJ float64
	// HMeltLoJ and HMeltHiJ are the breakpoint enthalpies: melting
	// spans [HMeltLoJ, HMeltHiJ).
	HMeltLoJ float64
	HMeltHiJ float64
	// InvCapSolidJPerK and InvCapLiquidJPerK are reciprocals of the
	// sensible capacities, for integrator loops that multiply instead
	// of divide. Melt fraction must keep true division by LatentJ so
	// (h−HMeltLoJ)/LatentJ can never round above 1 inside the segment.
	InvCapSolidJPerK  float64
	InvCapLiquidJPerK float64
}

// CurveParamsFor returns the curve parameters for volumeL liters of m.
// The values come from the same shared curve cache the packs use, so
// they are bit-identical to what any Pack of the same pair projects
// through.
func CurveParamsFor(m Material, volumeL float64) (CurveParams, error) {
	if err := m.Validate(); err != nil {
		return CurveParams{}, err
	}
	if volumeL <= 0 {
		return CurveParams{}, fmt.Errorf("pcm: volume must be positive, got %v L", volumeL)
	}
	cv := curveFor(m, volumeL*m.DensityKgPerL)
	return CurveParams{
		MeltC:             cv.meltC,
		CapSolidJPerK:     cv.capSolidJPerK,
		CapLiquidJPerK:    cv.capLiquidJPerK,
		LatentJ:           cv.latentJ,
		HMeltLoJ:          cv.hMeltLoJ,
		HMeltHiJ:          cv.hMeltHiJ,
		InvCapSolidJPerK:  cv.invCapSolidJPerK,
		InvCapLiquidJPerK: cv.invCapLiquidJPerK,
	}, nil
}

// EnthalpyAt inverts the curve at a phase-boundary state: fully solid
// (or, above the melting point, fully liquid) at tempC. Identical
// arithmetic to the internal curve's inversion, so initial states built
// from CurveParams match Pack initial states bit for bit.
func (p CurveParams) EnthalpyAt(tempC float64) float64 {
	if tempC > p.MeltC {
		return p.HMeltHiJ + p.CapLiquidJPerK*(tempC-p.MeltC)
	}
	return p.CapSolidJPerK * tempC
}

// State maps an enthalpy to (temperature, melt fraction) — the
// exported twin of the internal curve's projection, expression for
// expression.
func (p CurveParams) State(h float64) (tempC, meltFrac float64) {
	switch {
	case h < p.HMeltLoJ:
		return h * p.InvCapSolidJPerK, 0
	case h >= p.HMeltHiJ:
		return p.MeltC + (h-p.HMeltHiJ)*p.InvCapLiquidJPerK, 1
	default:
		return p.MeltC, (h - p.HMeltLoJ) / p.LatentJ
	}
}

// TempAt is the temperature-only projection of State, for integrator
// loops that only need the melt fraction once at the end.
func (p CurveParams) TempAt(h float64) float64 {
	switch {
	case h < p.HMeltLoJ:
		return h * p.InvCapSolidJPerK
	case h >= p.HMeltHiJ:
		return p.MeltC + (h-p.HMeltHiJ)*p.InvCapLiquidJPerK
	default:
		return p.MeltC
	}
}
