package pcm

import (
	"math"
	"testing"
	"time"
)

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(CommercialParaffin(), 4, 22, 0); err == nil {
		t.Fatal("zero conductance should fail")
	}
	if _, err := NewEstimator(CommercialParaffin(), 0, 22, 15); err == nil {
		t.Fatal("zero volume should fail")
	}
}

// The estimator must track a ground-truth pack driven by the same
// air-temperature history to within a few percent of melt fraction.
func TestEstimatorTracksGroundTruth(t *testing.T) {
	const hA = 15.0
	mat := CommercialParaffin()
	truth, err := NewPack(mat, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(mat, 4, 22, hA)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic diurnal air temperature: ramps to 40°C and back over
	// 24 h, sampled per minute like the paper's model updates. The wax
	// melts through midday and refreezes overnight; the estimate must
	// track ground truth at every sample, including the peak.
	step := time.Minute
	var maxTruth, maxDiff float64
	for minute := 0; minute < 24*60; minute++ {
		h := float64(minute) / 60
		air := 26 + 14*math.Sin(math.Pi*h/24) // 26..40..26 °C
		// Ground truth: exact conductance physics.
		q := hA * (air - truth.TempC())
		truth.Apply(q, step)
		est.Update(air, step)
		maxTruth = math.Max(maxTruth, truth.MeltFrac())
		maxDiff = math.Max(maxDiff, math.Abs(truth.MeltFrac()-est.MeltFrac()))
	}
	if maxTruth < 0.2 {
		t.Fatalf("test scenario should melt meaningful wax, got peak %.3f", maxTruth)
	}
	if maxDiff > 0.05 {
		t.Fatalf("estimator drift %.4f (truth peak %.3f)", maxDiff, maxTruth)
	}
	if est.Updates() != 24*60 {
		t.Fatalf("updates = %d", est.Updates())
	}
}

func TestEstimatorClampsExtremes(t *testing.T) {
	est, err := NewEstimator(CommercialParaffin(), 4, 22, 15)
	if err != nil {
		t.Fatal(err)
	}
	// A wildly out-of-range sensor reading must not blow up the table
	// lookup or produce unbounded melt fraction.
	for i := 0; i < 100; i++ {
		est.Update(500, time.Minute)
	}
	if est.MeltFrac() < 0 || est.MeltFrac() > 1 {
		t.Fatalf("melt frac out of bounds: %v", est.MeltFrac())
	}
	for i := 0; i < 1000; i++ {
		est.Update(-200, time.Minute)
	}
	if est.MeltFrac() != 0 {
		t.Fatalf("deep freeze should fully solidify, frac=%v", est.MeltFrac())
	}
}

func TestEstimatorReset(t *testing.T) {
	est, err := NewEstimator(CommercialParaffin(), 4, 22, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		est.Update(45, time.Minute)
	}
	if est.MeltFrac() == 0 {
		t.Fatal("expected some melting before reset")
	}
	est.Reset(22)
	if est.MeltFrac() != 0 || est.TempC() != 22 {
		t.Fatalf("reset state: frac=%v temp=%v", est.MeltFrac(), est.TempC())
	}
}

func TestEstimatorEquilibrium(t *testing.T) {
	// Holding air exactly at wax temperature must not change state
	// beyond one bucket's worth of quantization leakage.
	est, err := NewEstimator(CommercialParaffin(), 4, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		est.Update(est.TempC(), time.Minute)
	}
	if math.Abs(est.TempC()-30) > 1.5 {
		t.Fatalf("equilibrium drifted to %v", est.TempC())
	}
}
