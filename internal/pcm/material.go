// Package pcm models phase change materials (paraffin wax) for thermal
// time shifting: sensible and latent enthalpy bookkeeping, the
// melt-fraction state machine, and the lightweight lookup-table state
// estimator that servers run to report wax state to the cluster
// scheduler (Skach et al., IEEE Internet Computing 2017, ref [24] of
// the VMT paper).
//
// Units: temperatures in °C, power in W, energy in J, mass in kg.
package pcm

import "fmt"

// Material describes a phase change material. The VMT paper deploys
// commercial-grade paraffin: cheap (~$1,000/ton), non-corrosive,
// non-conductive, available with melting points between roughly 40 and
// 60 °C, with 35.7 °C the lowest commercially available option.
type Material struct {
	Name string
	// MeltTempC is the physical melting temperature (PMT).
	MeltTempC float64
	// LatentHeatJPerKg is the heat of fusion. Energy stored during the
	// phase transition dominates sensible storage several times over.
	LatentHeatJPerKg float64
	// SpecificHeatSolidJPerKgK and SpecificHeatLiquidJPerKgK are the
	// sensible heat capacities of the two phases.
	SpecificHeatSolidJPerKgK  float64
	SpecificHeatLiquidJPerKgK float64
	// DensityKgPerL converts the deployed volume to mass.
	DensityKgPerL float64
	// CostUSDPerTon is the bulk acquisition cost, used by the TCO
	// model. Commercial paraffin ≈ $1,000/ton; molecularly pure
	// n-paraffin with out-of-range melting points ≈ $75,000/ton.
	CostUSDPerTon float64
}

// Validate reports whether the material is physically sensible.
func (m Material) Validate() error {
	switch {
	case m.LatentHeatJPerKg <= 0:
		return fmt.Errorf("pcm: material %q: latent heat must be positive", m.Name)
	case m.SpecificHeatSolidJPerKgK <= 0 || m.SpecificHeatLiquidJPerKgK <= 0:
		return fmt.Errorf("pcm: material %q: specific heats must be positive", m.Name)
	case m.DensityKgPerL <= 0:
		return fmt.Errorf("pcm: material %q: density must be positive", m.Name)
	}
	return nil
}

// WithMeltTemp returns a copy of the material with a different physical
// melting temperature. Used by the Table II experiment, which sweeps
// the PMT above and below 35.7 °C while scaling the heat of fusion.
func (m Material) WithMeltTemp(tempC float64) Material {
	m.MeltTempC = tempC
	return m
}

// WithLatentHeat returns a copy with a scaled heat of fusion.
func (m Material) WithLatentHeat(jPerKg float64) Material {
	m.LatentHeatJPerKg = jPerKg
	return m
}

// CommercialParaffin returns the wax deployed in the paper's test
// datacenter: commercial paraffin with the lowest available melting
// temperature, 35.7 °C. Latent heat and specific heats are typical
// published paraffin values (Sharma et al. 2009; Pielichowska 2014).
func CommercialParaffin() Material {
	return Material{
		Name:                      "commercial-paraffin-35.7C",
		MeltTempC:                 35.7,
		LatentHeatJPerKg:          262_000, // J/kg, upper commercial range
		SpecificHeatSolidJPerKgK:  2_100,
		SpecificHeatLiquidJPerKgK: 2_200,
		DensityKgPerL:             0.90,
		CostUSDPerTon:             1_000,
	}
}

// PureNParaffin returns a molecularly pure n-paraffin with an arbitrary
// melting temperature. Thermally similar to commercial wax but cost
// prohibitive (~$75,000/ton) — the TCO comparison in Section V-E.
func PureNParaffin(meltTempC float64) Material {
	m := CommercialParaffin()
	m.Name = fmt.Sprintf("n-paraffin-%.1fC", meltTempC)
	m.MeltTempC = meltTempC
	m.CostUSDPerTon = 75_000
	return m
}

// Inert returns a non-melting placeholder with the thermal mass of
// paraffin but a melting point no datacenter reaches: the "no TTS"
// baseline for experiments that need a wax-free comparison while
// keeping the server's sensible thermal mass identical.
func Inert() Material {
	m := CommercialParaffin()
	m.Name = "inert-filler"
	m.MeltTempC = 1e9
	m.CostUSDPerTon = 0
	return m
}
