package pcm

import (
	"fmt"
	"time"
)

// Pack is a quantity of PCM installed in one server: the paper's 4.0
// liters of paraffin split across four aluminum containers behind the
// CPU heat sinks. Pack tracks the thermodynamic state — temperature
// and melt fraction — and conserves energy exactly: the enthalpy
// change over any Apply call equals the heat applied.
//
// The state machine has three regimes:
//
//	solid   (MeltFrac == 0, TempC <= melt): sensible heating/cooling
//	melting (TempC == melt, 0 < MeltFrac < 1 or at boundary): latent
//	liquid  (MeltFrac == 1, TempC >= melt): sensible heating/cooling
//
// During the phase transition the temperature is pinned at the melting
// point, which is what lets TTS hold server exhaust temperatures flat
// through the peak.
type Pack struct {
	mat      Material
	massKg   float64
	tempC    float64
	meltFrac float64
}

// NewPack returns a pack of volumeL liters of material m, fully solid
// (or fully liquid if the initial temperature exceeds the melting
// point) at initialTempC.
func NewPack(m Material, volumeL, initialTempC float64) (*Pack, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if volumeL <= 0 {
		return nil, fmt.Errorf("pcm: volume must be positive, got %v L", volumeL)
	}
	p := &Pack{mat: m, massKg: volumeL * m.DensityKgPerL, tempC: initialTempC}
	if initialTempC > m.MeltTempC {
		p.meltFrac = 1
	}
	return p, nil
}

// Material returns the pack's material.
func (p *Pack) Material() Material { return p.mat }

// MassKg returns the wax mass.
func (p *Pack) MassKg() float64 { return p.massKg }

// TempC returns the current wax temperature.
func (p *Pack) TempC() float64 { return p.tempC }

// MeltFrac returns the melted fraction in [0,1].
func (p *Pack) MeltFrac() float64 { return p.meltFrac }

// LatentCapacityJ returns the total latent storage capacity (mass ×
// heat of fusion) — the headline thermal battery size.
func (p *Pack) LatentCapacityJ() float64 {
	return p.massKg * p.mat.LatentHeatJPerKg
}

// EnthalpyJ returns the pack enthalpy relative to fully solid wax at
// refTempC (refTempC must not exceed the melting point for the
// reference to be meaningful).
func (p *Pack) EnthalpyJ(refTempC float64) float64 {
	m := p.mat
	if p.meltFrac == 0 {
		// Solid at tempC.
		return p.massKg * m.SpecificHeatSolidJPerKgK * (p.tempC - refTempC)
	}
	// Solid sensible up to melt, plus latent portion, plus any liquid
	// sensible beyond melt.
	h := p.massKg * m.SpecificHeatSolidJPerKgK * (m.MeltTempC - refTempC)
	h += p.meltFrac * p.LatentCapacityJ()
	if p.meltFrac == 1 && p.tempC > m.MeltTempC {
		h += p.massKg * m.SpecificHeatLiquidJPerKgK * (p.tempC - m.MeltTempC)
	}
	return h
}

// Apply transfers heat at powerW (negative to extract heat) for dt and
// returns the energy stored in the pack in joules (== powerW × dt;
// provided for caller bookkeeping). Phase boundaries are handled
// exactly: an interval may begin with sensible solid heating, cross
// into latent melting, and finish with liquid sensible heating.
func (p *Pack) Apply(powerW float64, dt time.Duration) float64 {
	energy := powerW * dt.Seconds()
	p.applyEnergy(energy)
	return energy
}

// applyEnergy adds (or removes, if negative) energy joules, walking the
// phase regimes in order.
func (p *Pack) applyEnergy(energy float64) {
	const eps = 1e-12
	m := p.mat
	for energy > eps || energy < -eps {
		switch {
		case energy > 0 && p.meltFrac == 0 && p.tempC < m.MeltTempC:
			// Sensible solid heating toward the melting point.
			cap := p.massKg * m.SpecificHeatSolidJPerKgK
			need := cap * (m.MeltTempC - p.tempC)
			if energy < need {
				p.tempC += energy / cap
				return
			}
			p.tempC = m.MeltTempC
			energy -= need
		case energy > 0 && p.meltFrac < 1:
			// Latent melting at the pinned melting temperature.
			p.tempC = m.MeltTempC
			need := (1 - p.meltFrac) * p.LatentCapacityJ()
			if energy < need {
				p.meltFrac += energy / p.LatentCapacityJ()
				return
			}
			p.meltFrac = 1
			energy -= need
		case energy > 0:
			// Sensible liquid heating.
			cap := p.massKg * m.SpecificHeatLiquidJPerKgK
			p.tempC += energy / cap
			return
		case energy < 0 && p.meltFrac == 1 && p.tempC > m.MeltTempC:
			// Sensible liquid cooling toward the melting point.
			cap := p.massKg * m.SpecificHeatLiquidJPerKgK
			avail := cap * (p.tempC - m.MeltTempC)
			if -energy < avail {
				p.tempC += energy / cap
				return
			}
			p.tempC = m.MeltTempC
			energy += avail
		case energy < 0 && p.meltFrac > 0:
			// Latent freezing at the pinned melting temperature.
			p.tempC = m.MeltTempC
			avail := p.meltFrac * p.LatentCapacityJ()
			if -energy < avail {
				p.meltFrac += energy / p.LatentCapacityJ()
				return
			}
			p.meltFrac = 0
			energy += avail
		default:
			// Sensible solid cooling (unbounded below).
			cap := p.massKg * m.SpecificHeatSolidJPerKgK
			p.tempC += energy / cap
			return
		}
	}
}

// Reset returns the pack to fully solid at tempC (or fully liquid if
// tempC is above the melting point).
func (p *Pack) Reset(tempC float64) {
	p.tempC = tempC
	if tempC > p.mat.MeltTempC {
		p.meltFrac = 1
	} else {
		p.meltFrac = 0
	}
}

// String summarizes the pack state.
func (p *Pack) String() string {
	return fmt.Sprintf("Pack(%s, %.2fkg, %.1f°C, %.0f%% melted)",
		p.mat.Name, p.massKg, p.tempC, p.meltFrac*100)
}
