package pcm

import (
	"fmt"
	"time"
)

// Pack is a quantity of PCM installed in one server: the paper's 4.0
// liters of paraffin split across four aluminum containers behind the
// CPU heat sinks. Pack tracks the thermodynamic state — temperature
// and melt fraction — and conserves energy exactly: the enthalpy
// change over any Apply call equals the heat applied.
//
// The state machine has three regimes:
//
//	solid   (MeltFrac == 0, TempC <= melt): sensible heating/cooling
//	melting (TempC == melt, 0 < MeltFrac < 1 or at boundary): latent
//	liquid  (MeltFrac == 1, TempC >= melt): sensible heating/cooling
//
// During the phase transition the temperature is pinned at the melting
// point, which is what lets TTS hold server exhaust temperatures flat
// through the peak.
//
// Internally the primary state is a single enthalpy scalar, and the
// observable (temperature, melt fraction) pair is read off a
// precomputed piecewise-linear enthalpy table built once per material
// (see curve). Adding heat is therefore one addition plus one segment
// interpolation, regardless of how many phase boundaries the interval
// crosses — the hot path the per-substep thermal integration hits.
type Pack struct {
	mat    Material
	massKg float64
	cv     *curve
	// hJ is the enthalpy relative to fully solid wax at 0 °C — the
	// single integrated state variable.
	hJ float64
	// tempC and meltFrac are cached projections of hJ through the
	// curve, refreshed on every state change.
	tempC    float64
	meltFrac float64
}

// NewPack returns a pack of volumeL liters of material m, fully solid
// (or fully liquid if the initial temperature exceeds the melting
// point) at initialTempC.
func NewPack(m Material, volumeL, initialTempC float64) (*Pack, error) {
	p := new(Pack)
	if err := InitPack(p, m, volumeL, initialTempC); err != nil {
		return nil, err
	}
	return p, nil
}

// InitPack initializes dst in place — the allocation-free companion of
// NewPack for callers that keep packs in dense slices (the cluster's
// estimator column). Any previous state of dst is overwritten.
func InitPack(dst *Pack, m Material, volumeL, initialTempC float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if volumeL <= 0 {
		return fmt.Errorf("pcm: volume must be positive, got %v L", volumeL)
	}
	*dst = Pack{mat: m, massKg: volumeL * m.DensityKgPerL}
	dst.cv = curveFor(m, dst.massKg)
	dst.Reset(initialTempC)
	return nil
}

// Material returns the pack's material.
func (p *Pack) Material() Material { return p.mat }

// MassKg returns the wax mass.
func (p *Pack) MassKg() float64 { return p.massKg }

// TempC returns the current wax temperature.
//
//vmt:hotpath
func (p *Pack) TempC() float64 { return p.tempC }

// MeltFrac returns the melted fraction in [0,1].
//
//vmt:hotpath
func (p *Pack) MeltFrac() float64 { return p.meltFrac }

// LatentCapacityJ returns the total latent storage capacity (mass ×
// heat of fusion) — the headline thermal battery size.
func (p *Pack) LatentCapacityJ() float64 { return p.cv.latentJ }

// EnthalpyJ returns the pack enthalpy relative to fully solid wax at
// refTempC (refTempC must not exceed the melting point for the
// reference to be meaningful).
func (p *Pack) EnthalpyJ(refTempC float64) float64 {
	return p.hJ - p.cv.capSolidJPerK*refTempC
}

// Apply transfers heat at powerW (negative to extract heat) for dt and
// returns the energy stored in the pack in joules (== powerW × dt;
// provided for caller bookkeeping). Phase boundaries are handled
// exactly: an interval may begin with sensible solid heating, cross
// into latent melting, and finish with liquid sensible heating.
func (p *Pack) Apply(powerW float64, dt time.Duration) float64 {
	energy := powerW * dt.Seconds()
	p.AddEnergyJ(energy)
	return energy
}

// AddEnergyJ adds (or removes, if negative) energy joules — the
// allocation-free fast path the thermal integration and the estimator
// use, equivalent to Apply with a precomputed energy.
func (p *Pack) AddEnergyJ(energy float64) {
	p.hJ += energy
	p.tempC, p.meltFrac = p.cv.state(p.hJ)
}

// IntegratorState returns the pack enthalpy and temperature so an
// integrator loop (thermal.Node) can advance the pack on locals and
// commit once via SetEnthalpyJ — the per-substep cost is then one
// addition plus one TempAtEnthalpyJ projection.
//
//vmt:hotpath
func (p *Pack) IntegratorState() (hJ, tempC float64) { return p.hJ, p.tempC }

// TempAtEnthalpyJ projects an enthalpy through the pack's curve to a
// temperature without touching pack state — the per-substep companion
// of IntegratorState.
//
//vmt:hotpath
func (p *Pack) TempAtEnthalpyJ(h float64) float64 { return p.cv.tempAt(h) }

// SetEnthalpyJ commits an externally integrated enthalpy and refreshes
// the cached temperature and melt fraction. Equivalent to AddEnergyJ
// of the accumulated delta.
//
//vmt:hotpath
func (p *Pack) SetEnthalpyJ(h float64) {
	p.hJ = h
	p.tempC, p.meltFrac = p.cv.state(h)
}

// Reset returns the pack to fully solid at tempC (or fully liquid if
// tempC is above the melting point). The cached temperature is set
// verbatim so resets land on exact values rather than round-tripping
// through the enthalpy table.
func (p *Pack) Reset(tempC float64) {
	p.hJ = p.cv.enthalpyAt(tempC)
	p.tempC = tempC
	if tempC > p.mat.MeltTempC {
		p.meltFrac = 1
	} else {
		p.meltFrac = 0
	}
}

// String summarizes the pack state.
func (p *Pack) String() string {
	return fmt.Sprintf("Pack(%s, %.2fkg, %.1f°C, %.0f%% melted)",
		p.mat.Name, p.massKg, p.tempC, p.meltFrac*100)
}
