package pcm

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// Random energy sequences through the enthalpy table must keep the
// observable state lawful: melt fraction in [0,1], temperature pinned
// at the melting point exactly while melting, and the three regimes
// consistent with the enthalpy segment boundaries.
func TestPackStateBoundedProperty(t *testing.T) {
	f := func(deltas []int16, volTenthsL uint8) bool {
		vol := 0.5 + float64(volTenthsL%80)/10 // 0.5..8.4 L
		p, err := NewPack(CommercialParaffin(), vol, 22)
		if err != nil {
			return false
		}
		for _, d := range deltas {
			p.AddEnergyJ(float64(d) * 50) // up to ±1.6 MJ swings
			frac, temp := p.MeltFrac(), p.TempC()
			if frac < 0 || frac > 1 || math.IsNaN(frac) {
				t.Logf("melt frac %v out of bounds", frac)
				return false
			}
			if math.IsNaN(temp) || math.IsInf(temp, 0) {
				t.Logf("temperature %v unphysical", temp)
				return false
			}
			switch {
			case frac > 0 && frac < 1:
				if temp != p.Material().MeltTempC {
					t.Logf("melting at %v°C, want pinned %v°C", temp, p.Material().MeltTempC)
					return false
				}
			case frac == 0:
				if temp > p.Material().MeltTempC {
					t.Logf("solid above melt: %v°C", temp)
					return false
				}
			case frac == 1:
				if temp < p.Material().MeltTempC {
					t.Logf("liquid below melt: %v°C", temp)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Enthalpy is the single integrated state: a sequence of AddEnergyJ
// calls accumulates exactly (same float additions in the same order as
// a running sum), and the observable state is a pure function of that
// enthalpy — a fresh pack fast-forwarded to the same enthalpy reads
// back the identical temperature and melt fraction.
func TestPackEnthalpyConservationProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		p, err := NewPack(CommercialParaffin(), 4, 22)
		if err != nil {
			return false
		}
		h0, _ := p.IntegratorState()
		sum := h0
		for _, d := range deltas {
			e := float64(d) * 100
			p.AddEnergyJ(e)
			sum += e
		}
		h, temp := p.IntegratorState()
		if math.Float64bits(h) != math.Float64bits(sum) {
			t.Logf("enthalpy %v, running sum %v", h, sum)
			return false
		}
		q, err := NewPack(CommercialParaffin(), 4, 22)
		if err != nil {
			return false
		}
		q.SetEnthalpyJ(h)
		if math.Float64bits(q.TempC()) != math.Float64bits(temp) ||
			math.Float64bits(q.MeltFrac()) != math.Float64bits(p.MeltFrac()) {
			t.Logf("state not a pure function of enthalpy: %v/%v vs %v/%v",
				q.TempC(), q.MeltFrac(), temp, p.MeltFrac())
			return false
		}
		// The temperature-only projection must agree with the full
		// state read at every enthalpy the walk visited.
		if math.Float64bits(p.TempAtEnthalpyJ(h)) != math.Float64bits(temp) {
			t.Logf("TempAtEnthalpyJ diverges from state projection")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The estimator's shadow state obeys the same bounds as the pack it
// shadows, for arbitrary sensed air temperatures and step lengths.
func TestEstimatorBoundedProperty(t *testing.T) {
	f := func(temps []int8, stepMin uint8) bool {
		e, err := NewEstimator(CommercialParaffin(), 4, 22, 18)
		if err != nil {
			return false
		}
		dt := time.Duration(1+stepMin%10) * time.Minute
		for _, tc := range temps {
			e.Update(float64(tc), dt) // −128..127 °C, well past the clamp range
			if f := e.MeltFrac(); f < 0 || f > 1 || math.IsNaN(f) {
				t.Logf("estimator melt %v out of bounds", f)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
