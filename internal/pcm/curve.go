package pcm

import "sync"

// curve is the precomputed enthalpy table for one (material, mass)
// pair: the piecewise-linear map between pack enthalpy (J, measured
// relative to fully solid wax at 0 °C) and the observable state
// (temperature, melt fraction). The table has two breakpoints — the
// enthalpies where melting starts and completes — with constant slopes
// between them, so advancing a pack is one addition plus one segment
// lookup instead of the regime-walking loop the old state machine ran
// per substep. Built once per material and shared by every pack (and
// estimator shadow pack) in a cluster via curveFor.
type curve struct {
	// meltC is the physical melting temperature.
	meltC float64
	// capSolidJPerK and capLiquidJPerK are the sensible heat
	// capacities (mass × specific heat) of the two phases.
	capSolidJPerK  float64
	capLiquidJPerK float64
	// latentJ is the total heat of fusion (mass × latent heat).
	latentJ float64
	// hMeltLoJ and hMeltHiJ are the breakpoint enthalpies: melting
	// spans [hMeltLoJ, hMeltHiJ).
	hMeltLoJ float64
	hMeltHiJ float64
	// invCapSolidJPerK and invCapLiquidJPerK are reciprocals of the
	// sensible capacities: the temperature projection runs once per
	// integration substep, and a multiply is several times cheaper
	// than a divide there. The melt fraction keeps true division so
	// (h−hMeltLo)/latentJ can never round above 1 inside the segment.
	invCapSolidJPerK  float64
	invCapLiquidJPerK float64
}

func newCurve(m Material, massKg float64) *curve {
	cv := &curve{
		meltC:          m.MeltTempC,
		capSolidJPerK:  massKg * m.SpecificHeatSolidJPerKgK,
		capLiquidJPerK: massKg * m.SpecificHeatLiquidJPerKgK,
		latentJ:        massKg * m.LatentHeatJPerKg,
	}
	cv.hMeltLoJ = cv.capSolidJPerK * m.MeltTempC
	cv.hMeltHiJ = cv.hMeltLoJ + cv.latentJ
	cv.invCapSolidJPerK = 1 / cv.capSolidJPerK
	cv.invCapLiquidJPerK = 1 / cv.capLiquidJPerK
	return cv
}

// enthalpyAt inverts the table at a phase boundary state: fully solid
// (or, above the melting point, fully liquid) at tempC.
func (cv *curve) enthalpyAt(tempC float64) float64 {
	if tempC > cv.meltC {
		return cv.hMeltHiJ + cv.capLiquidJPerK*(tempC-cv.meltC)
	}
	return cv.capSolidJPerK * tempC
}

// state maps an enthalpy to (temperature, melt fraction). Inside the
// melting segment the temperature is pinned exactly at the melting
// point and the fraction interpolates linearly across the latent span.
//
//vmt:hotpath
func (cv *curve) state(h float64) (tempC, meltFrac float64) {
	switch {
	case h < cv.hMeltLoJ:
		return h * cv.invCapSolidJPerK, 0
	case h >= cv.hMeltHiJ:
		return cv.meltC + (h-cv.hMeltHiJ)*cv.invCapLiquidJPerK, 1
	default:
		return cv.meltC, (h - cv.hMeltLoJ) / cv.latentJ
	}
}

// tempAt is the temperature-only projection of state, for integrator
// loops that advance enthalpy many substeps per reporting interval and
// only need the melt fraction once at the end.
//
//vmt:hotpath
func (cv *curve) tempAt(h float64) float64 {
	switch {
	case h < cv.hMeltLoJ:
		return h * cv.invCapSolidJPerK
	case h >= cv.hMeltHiJ:
		return cv.meltC + (h-cv.hMeltHiJ)*cv.invCapLiquidJPerK
	default:
		return cv.meltC
	}
}

// curveKey identifies a cached curve. Material is comparable (scalar
// and string fields only), so the pair is directly usable as a map key.
type curveKey struct {
	mat    Material
	massKg float64
}

var (
	curveMu    sync.Mutex
	curveCache = map[curveKey]*curve{}
)

// curveFor returns the shared curve for the pair, building it on first
// use. Curves are immutable after construction, so sharing one pointer
// across packs (and across RunMany workers) is safe; the cache is
// bounded by the number of distinct (material, volume) pairs a process
// sweeps, which the experiments keep small.
func curveFor(m Material, massKg float64) *curve {
	key := curveKey{mat: m, massKg: massKg}
	curveMu.Lock()
	defer curveMu.Unlock()
	if cv, ok := curveCache[key]; ok {
		return cv
	}
	// Material sweeps with many synthesized variants (e.g. fuzzed
	// specs) must not grow the cache without bound; dropping it whole
	// is cheap and keeps the steady state (a handful of materials) hot.
	if len(curveCache) >= 256 {
		curveCache = map[curveKey]*curve{}
	}
	cv := newCurve(m, massKg)
	curveCache[key] = cv
	return cv
}
