package pcm

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func newTestPack(t *testing.T) *Pack {
	t.Helper()
	p, err := NewPack(CommercialParaffin(), 4.0, 22)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPackBasics(t *testing.T) {
	p := newTestPack(t)
	if got := p.MassKg(); math.Abs(got-4.0*0.90) > 1e-9 {
		t.Fatalf("mass = %v", got)
	}
	if p.MeltFrac() != 0 || p.TempC() != 22 {
		t.Fatalf("initial state: %v", p)
	}
	wantCap := 4.0 * 0.90 * 262_000
	if got := p.LatentCapacityJ(); math.Abs(got-wantCap) > 1e-6 {
		t.Fatalf("capacity = %v, want %v", got, wantCap)
	}
}

func TestNewPackValidation(t *testing.T) {
	if _, err := NewPack(CommercialParaffin(), 0, 22); err == nil {
		t.Fatal("zero volume should fail")
	}
	bad := CommercialParaffin()
	bad.LatentHeatJPerKg = -1
	if _, err := NewPack(bad, 4, 22); err == nil {
		t.Fatal("bad material should fail")
	}
}

func TestNewPackAboveMeltStartsLiquid(t *testing.T) {
	p, err := NewPack(CommercialParaffin(), 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p.MeltFrac() != 1 {
		t.Fatalf("pack at 40°C should start liquid, frac=%v", p.MeltFrac())
	}
}

func TestSensibleSolidHeating(t *testing.T) {
	p := newTestPack(t)
	// Heat from 22°C but stay below melting: need m*c*ΔT.
	m := p.MassKg()
	energy := m * 2100 * 10 // +10°C
	p.Apply(energy, time.Second)
	if math.Abs(p.TempC()-32) > 1e-9 || p.MeltFrac() != 0 {
		t.Fatalf("state after heating: %v", p)
	}
}

func TestMeltingPinsTemperature(t *testing.T) {
	p := newTestPack(t)
	// Bring to melting point exactly, then half of latent capacity.
	m := p.MassKg()
	p.Apply(m*2100*(35.7-22), time.Second)
	p.Apply(p.LatentCapacityJ()/2, time.Second)
	if math.Abs(p.TempC()-35.7) > 1e-9 {
		t.Fatalf("temp should pin at melt: %v", p.TempC())
	}
	if math.Abs(p.MeltFrac()-0.5) > 1e-9 {
		t.Fatalf("melt frac = %v, want 0.5", p.MeltFrac())
	}
}

func TestCrossAllRegimesInOneApply(t *testing.T) {
	p := newTestPack(t)
	m := p.MassKg()
	solid := m * 2100 * (35.7 - 22)
	latent := p.LatentCapacityJ()
	liquid := m * 2200 * 5 // +5°C beyond melt
	p.Apply(solid+latent+liquid, time.Second)
	if p.MeltFrac() != 1 {
		t.Fatalf("should be fully melted: %v", p)
	}
	if math.Abs(p.TempC()-40.7) > 1e-9 {
		t.Fatalf("temp = %v, want 40.7", p.TempC())
	}
}

func TestFreezingReleasesSymmetrically(t *testing.T) {
	p := newTestPack(t)
	m := p.MassKg()
	up := m*2100*(35.7-22) + p.LatentCapacityJ() + m*2200*5
	p.Apply(up, time.Second)
	p.Apply(-up, time.Second)
	if math.Abs(p.TempC()-22) > 1e-9 || p.MeltFrac() != 0 {
		t.Fatalf("round trip should restore state: %v", p)
	}
}

func TestEnthalpyMatchesAppliedEnergy(t *testing.T) {
	p := newTestPack(t)
	ref := 22.0
	h0 := p.EnthalpyJ(ref)
	var applied float64
	steps := []float64{50_000, 120_000, -30_000, 900_000, -400_000, 250_000}
	for _, e := range steps {
		applied += p.Apply(e, time.Second)
	}
	h1 := p.EnthalpyJ(ref)
	if math.Abs((h1-h0)-applied) > 1e-6*math.Abs(applied) {
		t.Fatalf("enthalpy delta %v != applied %v", h1-h0, applied)
	}
}

func TestApplyPowerOverDuration(t *testing.T) {
	p := newTestPack(t)
	got := p.Apply(30, time.Minute) // 30 W for 1 minute
	if math.Abs(got-1800) > 1e-9 {
		t.Fatalf("stored %v J, want 1800", got)
	}
}

func TestReset(t *testing.T) {
	p := newTestPack(t)
	p.Apply(2e6, time.Second)
	p.Reset(20)
	if p.TempC() != 20 || p.MeltFrac() != 0 {
		t.Fatalf("reset state: %v", p)
	}
	p.Reset(50)
	if p.MeltFrac() != 1 {
		t.Fatalf("reset above melt should be liquid: %v", p)
	}
}

func TestWithMeltTempAndLatentHeat(t *testing.T) {
	m := CommercialParaffin().WithMeltTemp(30.7).WithLatentHeat(100_000)
	if m.MeltTempC != 30.7 || m.LatentHeatJPerKg != 100_000 {
		t.Fatalf("modifiers failed: %+v", m)
	}
	// Original untouched (value semantics).
	if CommercialParaffin().MeltTempC != 35.7 {
		t.Fatal("CommercialParaffin mutated")
	}
}

func TestPureNParaffinCost(t *testing.T) {
	m := PureNParaffin(29.7)
	if m.MeltTempC != 29.7 {
		t.Fatalf("melt temp = %v", m.MeltTempC)
	}
	if m.CostUSDPerTon != 75_000 {
		t.Fatalf("cost = %v", m.CostUSDPerTon)
	}
}

// Property: melt fraction always stays within [0,1] and enthalpy is
// exactly conserved across arbitrary heat sequences.
func TestPackInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		p, err := NewPack(CommercialParaffin(), 4.0, 22)
		if err != nil {
			return false
		}
		h0 := p.EnthalpyJ(0)
		var applied float64
		for _, r := range raw {
			applied += p.Apply(float64(r)*100, time.Minute)
			if p.MeltFrac() < 0 || p.MeltFrac() > 1 {
				return false
			}
			// Temperature must pin at melt during transition.
			if p.MeltFrac() > 0 && p.MeltFrac() < 1 &&
				math.Abs(p.TempC()-35.7) > 1e-9 {
				return false
			}
		}
		h1 := p.EnthalpyJ(0)
		tol := 1e-9 * (math.Abs(applied) + 1)
		return math.Abs((h1-h0)-applied) < tol+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying energy in many small steps lands on the same state
// as one large step (path independence for monotone heating).
func TestPackPathIndependence(t *testing.T) {
	f := func(totalKJ uint16, parts uint8) bool {
		total := float64(totalKJ) * 1000
		n := int(parts)%20 + 1
		a, _ := NewPack(CommercialParaffin(), 4.0, 22)
		b, _ := NewPack(CommercialParaffin(), 4.0, 22)
		a.Apply(total, time.Second)
		for i := 0; i < n; i++ {
			b.Apply(total/float64(n), time.Second)
		}
		return math.Abs(a.TempC()-b.TempC()) < 1e-6 &&
			math.Abs(a.MeltFrac()-b.MeltFrac()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackString(t *testing.T) {
	if newTestPack(t).String() == "" {
		t.Fatal("empty String()")
	}
}

func TestInertNeverMelts(t *testing.T) {
	p, err := NewPack(Inert(), 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	p.Apply(1e9, time.Hour) // a gigawatt-hour of heat
	if p.MeltFrac() != 0 {
		t.Fatalf("inert filler melted: %v", p.MeltFrac())
	}
	if err := Inert().Validate(); err != nil {
		t.Fatal(err)
	}
}
