package pcm

import (
	"testing"
	"time"
)

func BenchmarkPackApplySensible(b *testing.B) {
	p, err := NewPack(CommercialParaffin(), 4, 22)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate small heating/cooling in the sensible regime.
		if i%2 == 0 {
			p.Apply(50, time.Second)
		} else {
			p.Apply(-50, time.Second)
		}
	}
}

func BenchmarkPackApplyPhaseChange(b *testing.B) {
	p, err := NewPack(CommercialParaffin(), 4, 35.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Oscillate across the phase boundary.
		if i%2 == 0 {
			p.Apply(10_000, time.Second)
		} else {
			p.Apply(-10_000, time.Second)
		}
	}
}

func BenchmarkEstimatorUpdate(b *testing.B) {
	e, err := NewEstimator(CommercialParaffin(), 4, 22, 96)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Update(36+float64(i%5), time.Minute)
	}
}

// BenchmarkEstimatorUpdateSettled measures the settled fast path: the
// shadow has equilibrated and every update's enthalpy increment rounds
// to zero, so Update should cost a lookup and two compares.
func BenchmarkEstimatorUpdateSettled(b *testing.B) {
	e, err := NewEstimator(CommercialParaffin(), 4, 22, 96)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		e.Update(22, time.Minute)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Update(22, time.Minute)
	}
}

// BenchmarkCurveProjection measures the enthalpy-table reads the
// thermal substep loop performs: the temperature-only projection and
// the full (temperature, melt fraction) state read.
func BenchmarkCurveProjection(b *testing.B) {
	p, err := NewPack(CommercialParaffin(), 4, 22)
	if err != nil {
		b.Fatal(err)
	}
	h0, _ := p.IntegratorState()
	span := p.LatentCapacityJ() * 1.5
	b.Run("tempAt", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += p.TempAtEnthalpyJ(h0 + float64(i%16)/16*span)
		}
		benchSink = sink
	})
	b.Run("state", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.SetEnthalpyJ(h0 + float64(i%16)/16*span)
		}
	})
}

var benchSink float64
