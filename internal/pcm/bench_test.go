package pcm

import (
	"testing"
	"time"
)

func BenchmarkPackApplySensible(b *testing.B) {
	p, err := NewPack(CommercialParaffin(), 4, 22)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate small heating/cooling in the sensible regime.
		if i%2 == 0 {
			p.Apply(50, time.Second)
		} else {
			p.Apply(-50, time.Second)
		}
	}
}

func BenchmarkPackApplyPhaseChange(b *testing.B) {
	p, err := NewPack(CommercialParaffin(), 4, 35.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Oscillate across the phase boundary.
		if i%2 == 0 {
			p.Apply(10_000, time.Second)
		} else {
			p.Apply(-10_000, time.Second)
		}
	}
}

func BenchmarkEstimatorUpdate(b *testing.B) {
	e, err := NewEstimator(CommercialParaffin(), 4, 22, 96)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Update(36+float64(i%5), time.Minute)
	}
}
