package fault

import (
	"testing"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/workload"
)

// stubHost records evacuations without a scheduler: it "moves" every
// job off the crashed server by removing it.
type stubHost struct {
	evacuated []int
}

func (h *stubHost) Evacuate(s *cluster.Server) (moved, lost int, err error) {
	h.evacuated = append(h.evacuated, s.ID())
	for _, w := range s.Workloads() {
		for s.Jobs(w) > 0 {
			if err := s.Remove(w); err != nil {
				return moved, lost, err
			}
			moved++
		}
	}
	return moved, lost, nil
}

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.PaperCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScheduledCrashAndRepair(t *testing.T) {
	c := testCluster(t, 4)
	w := workload.WebSearch
	for i := 0; i < 3; i++ {
		if err := c.Server(1).Place(w); err != nil {
			t.Fatal(err)
		}
	}
	host := &stubHost{}
	plan := &Plan{Crashes: []Crash{{Server: 1, AtMin: 10, RepairAfterMin: 20}}}
	if err := plan.ValidateFor(c.Len()); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(plan, c, host, nil)

	step := time.Minute
	if err := inj.Tick(5*time.Minute, step); err != nil {
		t.Fatal(err)
	}
	if c.Server(1).Failed() {
		t.Fatal("server crashed before its scheduled time")
	}
	if err := inj.Tick(10*time.Minute, step); err != nil {
		t.Fatal(err)
	}
	if !c.Server(1).Failed() {
		t.Fatal("server should be down at its crash time")
	}
	if got := c.Server(1).FreeCores(); got != 0 {
		t.Fatalf("failed server advertises %d free cores, want 0", got)
	}
	if got := c.Server(1).PowerW(); got != 0 {
		t.Fatalf("failed server draws %v W, want 0", got)
	}
	if c.FailedServers() != 1 {
		t.Fatalf("FailedServers() = %d, want 1", c.FailedServers())
	}
	if len(host.evacuated) != 1 || host.evacuated[0] != 1 {
		t.Fatalf("evacuated = %v, want [1]", host.evacuated)
	}
	if inj.Crashes() != 1 || inj.Evacuated() != 3 || inj.Lost() != 0 {
		t.Fatalf("crashes=%d evacuated=%d lost=%d, want 1/3/0",
			inj.Crashes(), inj.Evacuated(), inj.Lost())
	}

	// Before the repair window elapses the server stays down.
	if err := inj.Tick(25*time.Minute, step); err != nil {
		t.Fatal(err)
	}
	if !c.Server(1).Failed() {
		t.Fatal("server repaired early")
	}
	if err := inj.Tick(30*time.Minute, step); err != nil {
		t.Fatal(err)
	}
	if c.Server(1).Failed() {
		t.Fatal("server should be repaired after its downtime")
	}
	if c.FailedServers() != 0 {
		t.Fatalf("FailedServers() = %d after repair, want 0", c.FailedServers())
	}
	if inj.Repairs() != 1 {
		t.Fatalf("Repairs() = %d, want 1", inj.Repairs())
	}
}

func TestUnrepairedCrashStaysDown(t *testing.T) {
	c := testCluster(t, 2)
	plan := &Plan{Crashes: []Crash{{Server: 0, AtMin: 1}}}
	inj := NewInjector(plan, c, &stubHost{}, nil)
	for minute := 1; minute <= 600; minute += 30 {
		if err := inj.Tick(time.Duration(minute)*time.Minute, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Server(0).Failed() {
		t.Fatal("unrepaired crash should keep the server down")
	}
	if inj.Repairs() != 0 {
		t.Fatalf("Repairs() = %d, want 0", inj.Repairs())
	}
}

// TestStochasticDeterminism: the same plan over two fresh clusters
// produces the identical crash history, tick for tick.
func TestStochasticDeterminism(t *testing.T) {
	run := func() []uint64 {
		c := testCluster(t, 8)
		plan := &Plan{Seed: 11, Stochastic: &Stochastic{RatePerHour: 2, RepairAfterMin: 15}}
		inj := NewInjector(plan, c, &stubHost{}, nil)
		var history []uint64
		for minute := 5; minute <= 600; minute += 5 {
			if err := inj.Tick(time.Duration(minute)*time.Minute, 5*time.Minute); err != nil {
				t.Fatal(err)
			}
			history = append(history, inj.Crashes(), inj.Repairs())
		}
		return history
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histories diverge at step %d: %d vs %d", i, a[i], b[i])
		}
	}
	if a[len(a)-2] == 0 {
		t.Fatal("rate 2/h over 10h on 8 servers should have crashed something")
	}
}

func TestStochasticSeedChangesHistory(t *testing.T) {
	crashAt := func(seed uint64) uint64 {
		c := testCluster(t, 8)
		plan := &Plan{Seed: seed, Stochastic: &Stochastic{RatePerHour: 2, RepairAfterMin: 15}}
		inj := NewInjector(plan, c, &stubHost{}, nil)
		var first uint64
		for minute := 5; minute <= 600; minute += 5 {
			if err := inj.Tick(time.Duration(minute)*time.Minute, 5*time.Minute); err != nil {
				t.Fatal(err)
			}
			if first == 0 && inj.Crashes() > 0 {
				first = uint64(minute)
			}
		}
		return first
	}
	if crashAt(1) == crashAt(2) && crashAt(3) == crashAt(1) {
		t.Fatal("three seeds all crash first at the same tick; RNG looks unseeded")
	}
}

func TestArrheniusMTBFOverride(t *testing.T) {
	c := testCluster(t, 2)
	plan := &Plan{Stochastic: &Stochastic{Arrhenius: true, MTBFHours: 1234}}
	inj := NewInjector(plan, c, &stubHost{}, nil)
	if inj.model.MTBFHours != 1234 {
		t.Fatalf("MTBFHours = %v, want the plan's 1234", inj.model.MTBFHours)
	}
}

func TestSensorFaultKinds(t *testing.T) {
	c := testCluster(t, 4)
	plan := &Plan{
		Seed: 5,
		Sensors: []SensorFault{
			{Server: 0, Kind: KindStuck, StartMin: 10, EndMin: 20, ValueC: 99},
			{Server: 1, Kind: KindDrift, StartMin: 0, DriftCPerHour: 6},
			{Server: 2, Kind: KindNoise, StartMin: 0, StdevC: 0.5},
			{Server: 3, Kind: KindDropout, StartMin: 30},
		},
	}
	inj := NewInjector(plan, c, &stubHost{}, nil)

	// Stuck: inside the window the reading is ValueC, outside it passes
	// through.
	if v, ok := inj.sensors[0].Sense(30, 15*time.Minute); !ok || v != 99 {
		t.Fatalf("stuck window: got (%v, %v), want (99, true)", v, ok)
	}
	if v, ok := inj.sensors[0].Sense(30, 25*time.Minute); !ok || v != 30 {
		t.Fatalf("after stuck window: got (%v, %v), want (30, true)", v, ok)
	}

	// Drift: 6 °C/h for 30 min = +3 °C.
	if v, ok := inj.sensors[1].Sense(30, 30*time.Minute); !ok || v != 33 {
		t.Fatalf("drift: got (%v, %v), want (33, true)", v, ok)
	}

	// Noise: perturbed but present, and deterministic per sensor RNG.
	v1, ok1 := inj.sensors[2].Sense(30, time.Minute)
	if !ok1 || v1 == 30 {
		t.Fatalf("noise: got (%v, %v), want a perturbed reading", v1, ok1)
	}
	c2, _ := cluster.New(cluster.PaperCluster(4))
	inj2 := NewInjector(plan, c2, &stubHost{}, nil)
	if v2, _ := inj2.sensors[2].Sense(30, time.Minute); v2 != v1 {
		t.Fatalf("noise not deterministic: %v vs %v", v1, v2)
	}

	// Dropout: no reading inside the open-ended window.
	if _, ok := inj.sensors[3].Sense(30, 29*time.Minute); !ok {
		t.Fatal("dropout before its window should pass through")
	}
	if _, ok := inj.sensors[3].Sense(30, 31*time.Minute); ok {
		t.Fatal("dropout window should suppress the reading")
	}

	// A crashed server's sensor reads nothing regardless of faults.
	inj.sensors[0].down = true
	if _, ok := inj.sensors[0].Sense(30, 25*time.Minute); ok {
		t.Fatal("a down server's sensor should read nothing")
	}
}

// TestCrashMarksEstimatorStale: a crash suppresses estimator updates
// through the sensor interposer, so StaleFor grows until the repair
// re-anchors the estimate.
func TestCrashMarksEstimatorStale(t *testing.T) {
	c := testCluster(t, 2)
	plan := &Plan{Crashes: []Crash{{Server: 0, AtMin: 1, RepairAfterMin: 10}}}
	inj := NewInjector(plan, c, &stubHost{}, nil)
	if err := inj.Tick(time.Minute, time.Minute); err != nil {
		t.Fatal(err)
	}
	est := c.Server(0).Estimator()
	for i := 0; i < 5; i++ {
		est.Update(30, time.Minute)
	}
	if got := est.StaleFor(); got != 5*time.Minute {
		t.Fatalf("StaleFor() = %v while down, want 5m", got)
	}
	if err := inj.Tick(11*time.Minute, time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Server(0).Estimator().StaleFor(); got != 0 {
		t.Fatalf("StaleFor() = %v after repair, want 0", got)
	}
}
