package fault

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"vmt/internal/topology"
)

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	if !(&Plan{Seed: 7}).Empty() {
		t.Error("seed-only plan should be empty")
	}
	if (&Plan{Crashes: []Crash{{Server: 0, AtMin: 1}}}).Empty() {
		t.Error("plan with a crash should not be empty")
	}
	if (&Plan{Stochastic: &Stochastic{RatePerHour: 0.01}}).Empty() {
		t.Error("plan with stochastic crashes should not be empty")
	}
	if (&Plan{Sensors: []SensorFault{{Kind: KindDropout}}}).Empty() {
		t.Error("plan with a sensor fault should not be empty")
	}
	if !(&Plan{Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2}}).Empty() {
		t.Error("topology-only plan should be empty: geometry alone changes no behavior")
	}
	if (&Plan{Domains: []DomainFault{{Kind: topology.DomainRack, AtMin: 1}}}).Empty() {
		t.Error("plan with a domain fault should not be empty")
	}
	if (&Plan{StochasticDomains: &StochasticDomains{Kind: topology.DomainRack, RatePerHour: 0.01}}).Empty() {
		t.Error("plan with stochastic domain trips should not be empty")
	}
	if (&Plan{Byzantine: []ByzantineFault{{Kind: ByzMelt, Bias: 0.5}}}).Empty() {
		t.Error("plan with a byzantine fault should not be empty")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr string // substring; "" means valid
	}{
		{name: "zero plan", plan: Plan{}},
		{
			name: "full valid plan",
			plan: Plan{
				Seed:       3,
				Crashes:    []Crash{{Server: 1, AtMin: 30, RepairAfterMin: 60}, {Server: 1, AtMin: 100}},
				Stochastic: &Stochastic{RatePerHour: 0.01, RepairAfterMin: 120},
				Sensors: []SensorFault{
					{Server: 0, Kind: KindStuck, StartMin: 10, EndMin: 20, ValueC: 35},
					{Server: 0, Kind: KindDropout, StartMin: 20},
					{Server: 2, Kind: KindNoise, StartMin: 0, StdevC: 0.5},
					{Server: 3, Kind: KindDrift, StartMin: 5, EndMin: 50, DriftCPerHour: 2},
				},
			},
		},
		{
			name:    "negative crash server",
			plan:    Plan{Crashes: []Crash{{Server: -1, AtMin: 1}}},
			wantErr: "negative server",
		},
		{
			name:    "NaN crash time",
			plan:    Plan{Crashes: []Crash{{Server: 0, AtMin: math.NaN()}}},
			wantErr: "at_min",
		},
		{
			name:    "negative repair (repair before crash)",
			plan:    Plan{Crashes: []Crash{{Server: 0, AtMin: 10, RepairAfterMin: -5}}},
			wantErr: "repair_after_min",
		},
		{
			name: "overlapping downtimes",
			plan: Plan{Crashes: []Crash{
				{Server: 0, AtMin: 10, RepairAfterMin: 60},
				{Server: 0, AtMin: 30, RepairAfterMin: 10},
			}},
			wantErr: "overlaps downtime",
		},
		{
			name: "crash after unrepaired crash",
			plan: Plan{Crashes: []Crash{
				{Server: 0, AtMin: 10},
				{Server: 0, AtMin: 500},
			}},
			wantErr: "overlaps downtime",
		},
		{
			name:    "stochastic NaN rate",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: math.NaN()}},
			wantErr: "rate_per_hour",
		},
		{
			name:    "stochastic negative rate",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: -0.1}},
			wantErr: "rate_per_hour",
		},
		{
			name:    "stochastic neither rate nor arrhenius",
			plan:    Plan{Stochastic: &Stochastic{}},
			wantErr: "exactly one of",
		},
		{
			name:    "stochastic both rate and arrhenius",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: 0.1, Arrhenius: true}},
			wantErr: "exactly one of",
		},
		{
			name:    "mtbf without arrhenius",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: 0.1, MTBFHours: 1000}},
			wantErr: "requires arrhenius",
		},
		{
			name: "arrhenius with mtbf",
			plan: Plan{Stochastic: &Stochastic{Arrhenius: true, MTBFHours: 1000}},
		},
		{
			name:    "unknown sensor kind",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: "flaky"}}},
			wantErr: "unknown kind",
		},
		{
			name:    "noise without stdev",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindNoise}}},
			wantErr: "needs stdev_c",
		},
		{
			name:    "negative stdev",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindNoise, StdevC: -1}}},
			wantErr: "stdev_c",
		},
		{
			name:    "window ends before it starts",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindStuck, StartMin: 50, EndMin: 20}}},
			wantErr: "must exceed start_min",
		},
		{
			name:    "infinite drift",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindDrift, DriftCPerHour: math.Inf(1)}}},
			wantErr: "must be finite",
		},
		{
			name: "overlapping sensor windows",
			plan: Plan{Sensors: []SensorFault{
				{Server: 0, Kind: KindStuck, StartMin: 10, EndMin: 30, ValueC: 1},
				{Server: 0, Kind: KindDropout, StartMin: 20, EndMin: 40},
			}},
			wantErr: "overlaps window",
		},
		{
			name: "open window overlaps later window",
			plan: Plan{Sensors: []SensorFault{
				{Server: 0, Kind: KindDropout, StartMin: 10},
				{Server: 0, Kind: KindStuck, StartMin: 20, EndMin: 30, ValueC: 1},
			}},
			wantErr: "overlaps window",
		},
		{
			name: "same windows on different servers",
			plan: Plan{Sensors: []SensorFault{
				{Server: 0, Kind: KindDropout, StartMin: 10},
				{Server: 1, Kind: KindDropout, StartMin: 10},
			}},
		},
		{
			name: "valid domain plan",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains: []DomainFault{
					{Kind: topology.DomainRack, Index: 1, AtMin: 60, RepairAfterMin: 120},
					{Kind: topology.DomainRack, Index: 1, AtMin: 300, RepairAfterMin: 60},
					{Kind: topology.DomainZone, Index: 0, Mode: ModeDerate, AtMin: 30, RepairAfterMin: 45, DerateInletDeltaC: 5},
				},
				StochasticDomains: &StochasticDomains{Kind: topology.DomainRow, RatePerHour: 0.01, RepairAfterMin: 90},
			},
		},
		{
			name:    "domains without topology",
			plan:    Plan{Domains: []DomainFault{{Kind: topology.DomainRack, AtMin: 5}}},
			wantErr: "need a topology",
		},
		{
			name: "unknown domain kind",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains:  []DomainFault{{Kind: "pdu", AtMin: 5}},
			},
			wantErr: "unknown domain kind",
		},
		{
			name: "invalid topology geometry",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 0, RacksPerRow: 3, RowsPerZone: 2},
				Domains:  []DomainFault{{Kind: topology.DomainRack, AtMin: 5}},
			},
			wantErr: "servers_per_rack",
		},
		{
			name: "derate without delta",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains:  []DomainFault{{Kind: topology.DomainZone, Mode: ModeDerate, AtMin: 5}},
			},
			wantErr: "derate needs derate_inlet_delta_c",
		},
		{
			name: "derate delta above cap",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains:  []DomainFault{{Kind: topology.DomainZone, Mode: ModeDerate, AtMin: 5, DerateInletDeltaC: MaxDerateDeltaC + 1}},
			},
			wantErr: "derate needs derate_inlet_delta_c",
		},
		{
			name: "crash mode with derate delta",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains:  []DomainFault{{Kind: topology.DomainRack, AtMin: 5, DerateInletDeltaC: 3}},
			},
			wantErr: "requires mode",
		},
		{
			name: "overlapping domain trips",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains: []DomainFault{
					{Kind: topology.DomainRack, Index: 1, AtMin: 60, RepairAfterMin: 120},
					{Kind: topology.DomainRack, Index: 1, AtMin: 100, RepairAfterMin: 30},
				},
			},
			wantErr: "overlaps window",
		},
		{
			name: "unrepaired domain trip overlaps later trip",
			plan: Plan{
				Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				Domains: []DomainFault{
					{Kind: topology.DomainRack, Index: 1, AtMin: 60},
					{Kind: topology.DomainRack, Index: 1, AtMin: 700},
				},
			},
			wantErr: "overlaps window",
		},
		{
			name: "stochastic domains zero rate",
			plan: Plan{
				Topology:          &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
				StochasticDomains: &StochasticDomains{Kind: topology.DomainRack, RatePerHour: 0},
			},
			wantErr: "rate_per_hour",
		},
		{
			name: "valid byzantine plan",
			plan: Plan{Byzantine: []ByzantineFault{
				{Server: 0, Kind: ByzMelt, StartMin: 10, Bias: 0.5, Jitter: 0.1},
				{Server: 0, Kind: ByzUtil, StartMin: 10, EndMin: 60, Bias: -0.3},
				{Server: 1, Kind: ByzMelt, StartMin: 10, Jitter: 0.2},
			}},
		},
		{
			name:    "byzantine unknown kind",
			plan:    Plan{Byzantine: []ByzantineFault{{Server: 0, Kind: "temp", StartMin: 0, Bias: 0.5}}},
			wantErr: "unknown kind",
		},
		{
			name:    "byzantine bias out of range",
			plan:    Plan{Byzantine: []ByzantineFault{{Server: 0, Kind: ByzMelt, StartMin: 0, Bias: 1.5}}},
			wantErr: "bias",
		},
		{
			name:    "byzantine no lie at all",
			plan:    Plan{Byzantine: []ByzantineFault{{Server: 0, Kind: ByzMelt, StartMin: 0}}},
			wantErr: "non-zero bias or jitter",
		},
		{
			name: "byzantine overlapping windows on one channel",
			plan: Plan{Byzantine: []ByzantineFault{
				{Server: 0, Kind: ByzMelt, StartMin: 10, EndMin: 60, Bias: 0.5},
				{Server: 0, Kind: ByzMelt, StartMin: 30, Bias: -0.5},
			}},
			wantErr: "overlaps window",
		},
		{
			name: "byzantine same window on different channels",
			plan: Plan{Byzantine: []ByzantineFault{
				{Server: 0, Kind: ByzMelt, StartMin: 10, Bias: 0.5},
				{Server: 0, Kind: ByzUtil, StartMin: 10, Bias: 0.5},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestPlanValidateFor(t *testing.T) {
	p := Plan{Crashes: []Crash{{Server: 5, AtMin: 1}}}
	if err := p.ValidateFor(6); err != nil {
		t.Fatalf("server 5 of 6: %v", err)
	}
	if err := p.ValidateFor(5); err == nil {
		t.Fatal("server 5 of 5 should be out of range")
	}
	s := Plan{Sensors: []SensorFault{{Server: 9, Kind: KindDropout}}}
	if err := s.ValidateFor(9); err == nil {
		t.Fatal("sensor server 9 of 9 should be out of range")
	}
	var nilPlan *Plan
	if err := nilPlan.ValidateFor(1); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	b := Plan{Byzantine: []ByzantineFault{{Server: 7, Kind: ByzMelt, StartMin: 0, Bias: 0.5}}}
	if err := b.ValidateFor(8); err != nil {
		t.Fatalf("byzantine server 7 of 8: %v", err)
	}
	if err := b.ValidateFor(7); err == nil {
		t.Fatal("byzantine server 7 of 7 should be out of range")
	}
}

// TestPlanValidateForDomainBounds is the regression test for domain
// references that validate in the abstract but exceed the domain count
// the topology spans at the actual cluster size: Validate cannot catch
// them (the count depends on the fleet), ValidateFor must.
func TestPlanValidateForDomainBounds(t *testing.T) {
	spec := &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2}
	// 26 servers → 7 racks (last partial), 3 rows, 2 zones.
	mk := func(kind string, index int) Plan {
		return Plan{
			Topology: spec,
			Domains:  []DomainFault{{Kind: kind, Index: index, AtMin: 60, RepairAfterMin: 30}},
		}
	}
	for _, tc := range []struct {
		kind  string
		index int
		ok    bool
	}{
		{topology.DomainRack, 6, true},
		{topology.DomainRack, 7, false},
		{topology.DomainRow, 2, true},
		{topology.DomainRow, 3, false},
		{topology.DomainZone, 1, true},
		{topology.DomainZone, 2, false},
	} {
		p := mk(tc.kind, tc.index)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s %d: Validate() = %v, want nil (bounds are ValidateFor's job)", tc.kind, tc.index, err)
		}
		err := p.ValidateFor(26)
		if tc.ok && err != nil {
			t.Errorf("%s %d of 26 servers: ValidateFor = %v, want nil", tc.kind, tc.index, err)
		}
		if !tc.ok && (err == nil || !strings.Contains(err.Error(), "out of range")) {
			t.Errorf("%s %d of 26 servers: ValidateFor = %v, want out-of-range error", tc.kind, tc.index, err)
		}
	}
}

// TestPlanValidateForDomainCrashOverlap rejects a scheduled domain
// crash whose downtime intersects a member server's own scheduled
// crash window — the injector cannot crash a server twice.
func TestPlanValidateForDomainCrashOverlap(t *testing.T) {
	spec := &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2}
	base := func() Plan {
		return Plan{
			Topology: spec,
			Domains:  []DomainFault{{Kind: topology.DomainRack, Index: 1, AtMin: 60, RepairAfterMin: 120}},
		}
	}
	// Server 5 is in rack 1 ([4, 8)); server 10 is not.
	p := base()
	p.Crashes = []Crash{{Server: 5, AtMin: 100, RepairAfterMin: 30}}
	if err := p.ValidateFor(26); err == nil || !strings.Contains(err.Error(), "overlaps crash") {
		t.Errorf("member crash inside domain window: ValidateFor = %v, want overlap error", err)
	}
	p = base()
	p.Crashes = []Crash{{Server: 5, AtMin: 10, RepairAfterMin: 20}}
	if err := p.ValidateFor(26); err != nil {
		t.Errorf("member crash repaired before domain trip: ValidateFor = %v, want nil", err)
	}
	p = base()
	p.Crashes = []Crash{{Server: 10, AtMin: 100, RepairAfterMin: 30}}
	if err := p.ValidateFor(26); err != nil {
		t.Errorf("crash outside the domain: ValidateFor = %v, want nil", err)
	}
	// Unrepaired member crash before the trip: the window never closes.
	p = base()
	p.Crashes = []Crash{{Server: 5, AtMin: 10}}
	if err := p.ValidateFor(26); err == nil || !strings.Contains(err.Error(), "overlaps crash") {
		t.Errorf("unrepaired member crash: ValidateFor = %v, want overlap error", err)
	}
	// Derate domains never crash members, so no overlap constraint.
	p = base()
	p.Domains[0].Mode = ModeDerate
	p.Domains[0].DerateInletDeltaC = 5
	p.Crashes = []Crash{{Server: 5, AtMin: 100, RepairAfterMin: 30}}
	if err := p.ValidateFor(26); err != nil {
		t.Errorf("derate domain over member crash: ValidateFor = %v, want nil", err)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed:       42,
		Crashes:    []Crash{{Server: 2, AtMin: 90, RepairAfterMin: 120}},
		Stochastic: &Stochastic{Arrhenius: true, MTBFHours: 5000, RepairAfterMin: 60},
		Sensors: []SensorFault{
			{Server: 0, Kind: KindNoise, StartMin: 10, EndMin: 60, StdevC: 0.25},
		},
		Topology: &topology.Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2},
		Domains: []DomainFault{
			{Kind: topology.DomainRack, Index: 1, AtMin: 60, RepairAfterMin: 120},
			{Kind: topology.DomainZone, Index: 0, Mode: ModeDerate, AtMin: 400, RepairAfterMin: 60, DerateInletDeltaC: 4},
		},
		StochasticDomains: &StochasticDomains{Kind: topology.DomainRow, RatePerHour: 0.005, RepairAfterMin: 90},
		Byzantine: []ByzantineFault{
			{Server: 1, Kind: ByzMelt, StartMin: 30, EndMin: 200, Bias: 0.4, Jitter: 0.05},
		},
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var got Plan
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\n in: %+v\nout: %+v", p, got)
	}
}
