package fault

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	if !(&Plan{Seed: 7}).Empty() {
		t.Error("seed-only plan should be empty")
	}
	if (&Plan{Crashes: []Crash{{Server: 0, AtMin: 1}}}).Empty() {
		t.Error("plan with a crash should not be empty")
	}
	if (&Plan{Stochastic: &Stochastic{RatePerHour: 0.01}}).Empty() {
		t.Error("plan with stochastic crashes should not be empty")
	}
	if (&Plan{Sensors: []SensorFault{{Kind: KindDropout}}}).Empty() {
		t.Error("plan with a sensor fault should not be empty")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr string // substring; "" means valid
	}{
		{name: "zero plan", plan: Plan{}},
		{
			name: "full valid plan",
			plan: Plan{
				Seed:       3,
				Crashes:    []Crash{{Server: 1, AtMin: 30, RepairAfterMin: 60}, {Server: 1, AtMin: 100}},
				Stochastic: &Stochastic{RatePerHour: 0.01, RepairAfterMin: 120},
				Sensors: []SensorFault{
					{Server: 0, Kind: KindStuck, StartMin: 10, EndMin: 20, ValueC: 35},
					{Server: 0, Kind: KindDropout, StartMin: 20},
					{Server: 2, Kind: KindNoise, StartMin: 0, StdevC: 0.5},
					{Server: 3, Kind: KindDrift, StartMin: 5, EndMin: 50, DriftCPerHour: 2},
				},
			},
		},
		{
			name:    "negative crash server",
			plan:    Plan{Crashes: []Crash{{Server: -1, AtMin: 1}}},
			wantErr: "negative server",
		},
		{
			name:    "NaN crash time",
			plan:    Plan{Crashes: []Crash{{Server: 0, AtMin: math.NaN()}}},
			wantErr: "at_min",
		},
		{
			name:    "negative repair (repair before crash)",
			plan:    Plan{Crashes: []Crash{{Server: 0, AtMin: 10, RepairAfterMin: -5}}},
			wantErr: "repair_after_min",
		},
		{
			name: "overlapping downtimes",
			plan: Plan{Crashes: []Crash{
				{Server: 0, AtMin: 10, RepairAfterMin: 60},
				{Server: 0, AtMin: 30, RepairAfterMin: 10},
			}},
			wantErr: "overlaps downtime",
		},
		{
			name: "crash after unrepaired crash",
			plan: Plan{Crashes: []Crash{
				{Server: 0, AtMin: 10},
				{Server: 0, AtMin: 500},
			}},
			wantErr: "overlaps downtime",
		},
		{
			name:    "stochastic NaN rate",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: math.NaN()}},
			wantErr: "rate_per_hour",
		},
		{
			name:    "stochastic negative rate",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: -0.1}},
			wantErr: "rate_per_hour",
		},
		{
			name:    "stochastic neither rate nor arrhenius",
			plan:    Plan{Stochastic: &Stochastic{}},
			wantErr: "exactly one of",
		},
		{
			name:    "stochastic both rate and arrhenius",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: 0.1, Arrhenius: true}},
			wantErr: "exactly one of",
		},
		{
			name:    "mtbf without arrhenius",
			plan:    Plan{Stochastic: &Stochastic{RatePerHour: 0.1, MTBFHours: 1000}},
			wantErr: "requires arrhenius",
		},
		{
			name: "arrhenius with mtbf",
			plan: Plan{Stochastic: &Stochastic{Arrhenius: true, MTBFHours: 1000}},
		},
		{
			name:    "unknown sensor kind",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: "flaky"}}},
			wantErr: "unknown kind",
		},
		{
			name:    "noise without stdev",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindNoise}}},
			wantErr: "needs stdev_c",
		},
		{
			name:    "negative stdev",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindNoise, StdevC: -1}}},
			wantErr: "stdev_c",
		},
		{
			name:    "window ends before it starts",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindStuck, StartMin: 50, EndMin: 20}}},
			wantErr: "must exceed start_min",
		},
		{
			name:    "infinite drift",
			plan:    Plan{Sensors: []SensorFault{{Server: 0, Kind: KindDrift, DriftCPerHour: math.Inf(1)}}},
			wantErr: "must be finite",
		},
		{
			name: "overlapping sensor windows",
			plan: Plan{Sensors: []SensorFault{
				{Server: 0, Kind: KindStuck, StartMin: 10, EndMin: 30, ValueC: 1},
				{Server: 0, Kind: KindDropout, StartMin: 20, EndMin: 40},
			}},
			wantErr: "overlaps window",
		},
		{
			name: "open window overlaps later window",
			plan: Plan{Sensors: []SensorFault{
				{Server: 0, Kind: KindDropout, StartMin: 10},
				{Server: 0, Kind: KindStuck, StartMin: 20, EndMin: 30, ValueC: 1},
			}},
			wantErr: "overlaps window",
		},
		{
			name: "same windows on different servers",
			plan: Plan{Sensors: []SensorFault{
				{Server: 0, Kind: KindDropout, StartMin: 10},
				{Server: 1, Kind: KindDropout, StartMin: 10},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestPlanValidateFor(t *testing.T) {
	p := Plan{Crashes: []Crash{{Server: 5, AtMin: 1}}}
	if err := p.ValidateFor(6); err != nil {
		t.Fatalf("server 5 of 6: %v", err)
	}
	if err := p.ValidateFor(5); err == nil {
		t.Fatal("server 5 of 5 should be out of range")
	}
	s := Plan{Sensors: []SensorFault{{Server: 9, Kind: KindDropout}}}
	if err := s.ValidateFor(9); err == nil {
		t.Fatal("sensor server 9 of 9 should be out of range")
	}
	var nilPlan *Plan
	if err := nilPlan.ValidateFor(1); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{
		Seed:       42,
		Crashes:    []Crash{{Server: 2, AtMin: 90, RepairAfterMin: 120}},
		Stochastic: &Stochastic{Arrhenius: true, MTBFHours: 5000, RepairAfterMin: 60},
		Sensors: []SensorFault{
			{Server: 0, Kind: KindNoise, StartMin: 10, EndMin: 60, StdevC: 0.25},
		},
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var got Plan
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed the plan:\n in: %+v\nout: %+v", p, got)
	}
}
