package fault

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/pcm"
	"vmt/internal/reliability"
	"vmt/internal/stats"
	"vmt/internal/telemetry"
)

// Host is the scheduler-side contract the injector needs on a crash:
// move the failed server's jobs elsewhere through the normal placement
// logic. moved counts re-placed jobs, lost counts jobs dropped because
// no capacity remained. Both managers in internal/sched implement it.
type Host interface {
	Evacuate(s *cluster.Server) (moved, lost int, err error)
}

// Injector applies a validated Plan to a cluster, one Tick per
// scheduler step. It runs on the engine's sequential fault band
// (between physics and scheduling), so all cluster mutation and all
// stochastic crash draws happen in server-ID order on one goroutine;
// per-server sensor RNGs keep the parallel physics phase
// deterministic for any PhysicsWorkers setting.
type Injector struct {
	plan Plan
	c    *cluster.Cluster
	host Host

	crashes   []Crash // sorted by (AtMin, Server)
	nextCrash int

	rng   *stats.RNG // stochastic crash draws only
	model reliability.Model

	down     []bool
	repairAt []time.Duration // 0 = no repair pending
	sensors  []*sensorState

	injected, repaired, evacJobs, lostJobs                         uint64
	crashCount, repairCount, evacCount, lostCount, migrationsCount *telemetry.Counter
}

// NewInjector wires a plan onto a cluster. The plan must already be
// validated for the cluster size. Sensor interposers are installed on
// every server (a crashed server's estimator reads nothing while it
// is down, whether or not it has explicit sensor faults).
func NewInjector(p *Plan, c *cluster.Cluster, host Host, reg *telemetry.Registry) *Injector {
	n := c.Len()
	inj := &Injector{
		plan:            *p,
		c:               c,
		host:            host,
		crashes:         append([]Crash(nil), p.Crashes...),
		rng:             stats.NewRNG(p.Seed ^ 0x8f1bbcdcbfa53e0b),
		model:           reliability.PaperModel(),
		down:            make([]bool, n),
		repairAt:        make([]time.Duration, n),
		sensors:         make([]*sensorState, n),
		crashCount:      reg.Counter("fault_injected_crashes"),
		repairCount:     reg.Counter("fault_injected_repairs"),
		evacCount:       reg.Counter("fault_evacuated_jobs"),
		lostCount:       reg.Counter("fault_lost_jobs"),
		migrationsCount: reg.Counter("sched_migrations"),
	}
	if st := p.Stochastic; st != nil && st.MTBFHours > 0 {
		inj.model.MTBFHours = st.MTBFHours
	}
	sort.Slice(inj.crashes, func(i, j int) bool {
		a, b := inj.crashes[i], inj.crashes[j]
		if a.AtMin != b.AtMin { //vmtlint:allow floateq exact schedule times tie-break on server ID; equal-bit times sort identically on every run
			return a.AtMin < b.AtMin
		}
		return a.Server < b.Server
	})
	for i := 0; i < n; i++ {
		ss := &sensorState{rng: stats.NewRNG(sensorSeed(p.Seed, i))}
		for _, f := range p.Sensors {
			if f.Server == i {
				ss.faults = append(ss.faults, f)
			}
		}
		sort.Slice(ss.faults, func(a, b int) bool { return ss.faults[a].StartMin < ss.faults[b].StartMin })
		inj.sensors[i] = ss
		c.Server(i).Estimator().SetSensor(ss)
	}
	return inj
}

// Tick processes faults due at sim time now, covering the step
// interval (now-dt, now]: repairs first, then scheduled crashes, then
// stochastic draws over the alive servers in ID order.
func (inj *Injector) Tick(now, dt time.Duration) error {
	for id := range inj.repairAt {
		if inj.down[id] && inj.repairAt[id] > 0 && inj.repairAt[id] <= now {
			inj.repair(id)
		}
	}
	for inj.nextCrash < len(inj.crashes) && durMin(inj.crashes[inj.nextCrash].AtMin) <= now {
		c := inj.crashes[inj.nextCrash]
		inj.nextCrash++
		if inj.down[c.Server] {
			continue // already down via a stochastic crash; scheduled repair still governed by that crash
		}
		if err := inj.crash(c.Server, c.RepairAfterMin, now); err != nil {
			return err
		}
	}
	if st := inj.plan.Stochastic; st != nil {
		dtHours := dt.Hours()
		for id := 0; id < inj.c.Len(); id++ {
			if inj.down[id] {
				continue
			}
			rate := st.RatePerHour
			if st.Arrhenius {
				rate = inj.model.FailureRatePerHour(inj.c.Server(id).AirTempC())
			}
			p := -math.Expm1(-rate * dtHours)
			if inj.rng.Float64() < p {
				if err := inj.crash(id, st.RepairAfterMin, now); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (inj *Injector) crash(id int, repairAfterMin float64, now time.Duration) error {
	s := inj.c.Server(id)
	inj.c.MarkFailed(id)
	inj.down[id] = true
	inj.sensors[id].down = true
	moved, lost, err := inj.host.Evacuate(s)
	if err != nil {
		return fmt.Errorf("fault: evacuating server %d: %w", id, err)
	}
	inj.injected++
	inj.evacJobs += uint64(moved)
	inj.lostJobs += uint64(lost)
	inj.crashCount.Inc()
	inj.evacCount.Add(uint64(moved))
	inj.lostCount.Add(uint64(lost))
	inj.migrationsCount.Add(uint64(moved))
	if repairAfterMin > 0 {
		inj.repairAt[id] = now + durMin(repairAfterMin)
	} else {
		inj.repairAt[id] = 0
	}
	return nil
}

func (inj *Injector) repair(id int) {
	inj.c.MarkRepaired(id)
	inj.down[id] = false
	inj.repairAt[id] = 0
	inj.sensors[id].down = false
	s := inj.c.Server(id)
	// A repaired server boots with a cold estimator: re-anchor the
	// shadow at the current air temperature so the estimate restarts
	// from a known state instead of the pre-crash trajectory.
	s.Estimator().Reset(s.AirTempC())
	inj.repaired++
	inj.repairCount.Inc()
}

// Crashes returns the number of injected crashes so far.
func (inj *Injector) Crashes() uint64 { return inj.injected }

// Repairs returns the number of completed repairs so far.
func (inj *Injector) Repairs() uint64 { return inj.repaired }

// Evacuated returns the number of jobs successfully re-placed off
// crashed servers.
func (inj *Injector) Evacuated() uint64 { return inj.evacJobs }

// Lost returns the number of jobs dropped during evacuation because
// the surviving servers had no capacity.
func (inj *Injector) Lost() uint64 { return inj.lostJobs }

// sensorState interposes on one server's melt-estimator input. Sense
// runs inside the (possibly parallel) physics phase, but only ever
// for its own server, with its own RNG, so draws are deterministic
// for any worker count. down is flipped only on the sequential fault
// band, which never overlaps physics.
type sensorState struct {
	faults []SensorFault // this server's, sorted by StartMin
	rng    *stats.RNG
	down   bool
}

var _ pcm.Sensor = (*sensorState)(nil)

// Sense maps the true air temperature to the sensed reading at sim
// time at. ok=false means no reading (dropout window or crashed
// server): the estimator skips the update and its estimate ages.
func (ss *sensorState) Sense(trueC float64, at time.Duration) (float64, bool) {
	if ss.down {
		return 0, false
	}
	f := ss.active(at)
	if f == nil {
		return trueC, true
	}
	switch f.Kind {
	case KindStuck:
		return f.ValueC, true
	case KindDrift:
		hours := (at - durMin(f.StartMin)).Hours()
		return trueC + f.DriftCPerHour*hours, true
	case KindNoise:
		return trueC + ss.rng.Normal(0, f.StdevC), true
	default: // KindDropout
		return 0, false
	}
}

func (ss *sensorState) active(at time.Duration) *SensorFault {
	for i := range ss.faults {
		f := &ss.faults[i]
		start := durMin(f.StartMin)
		if at < start {
			return nil // sorted: later windows start later still
		}
		if f.EndMin <= 0 || at < durMin(f.EndMin) {
			return f
		}
	}
	return nil
}

func durMin(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}

// sensorSeed derives a per-server RNG seed from the plan seed via a
// splitmix-style finalizer, so adjacent server IDs get uncorrelated
// streams.
func sensorSeed(seed uint64, server int) uint64 {
	z := seed ^ (uint64(server)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
