package fault

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vmt/internal/cluster"
	"vmt/internal/pcm"
	"vmt/internal/reliability"
	"vmt/internal/stats"
	"vmt/internal/telemetry"
	"vmt/internal/topology"
)

// Host is the scheduler-side contract the injector needs on a crash:
// move the failed server's jobs elsewhere through the normal placement
// logic. moved counts re-placed jobs, lost counts jobs dropped because
// no capacity remained. Both managers in internal/sched implement it.
type Host interface {
	Evacuate(s *cluster.Server) (moved, lost int, err error)
}

// Injector applies a validated Plan to a cluster, one Tick per
// scheduler step. It runs on the engine's sequential fault band
// (between physics and scheduling), so all cluster mutation and all
// stochastic crash draws happen in server-ID order on one goroutine;
// per-server sensor RNGs keep the parallel physics phase
// deterministic for any PhysicsWorkers setting.
type Injector struct {
	plan Plan
	c    *cluster.Cluster
	host Host

	crashes   []Crash // sorted by (AtMin, Server)
	nextCrash int

	rng   *stats.RNG // stochastic per-server crash draws only
	model reliability.Model

	down     []bool
	repairAt []time.Duration // 0 = no repair pending
	sensors  []*sensorState

	// Correlated failure domains. topo is nil unless the plan carries a
	// topology; domains is the scheduled trip list sorted by fire time;
	// domainRNG drives stochastic domain draws on its own stream so
	// adding a domain process never perturbs the per-server draws.
	topo            *topology.Topology
	domains         []DomainFault // sorted by (AtMin, Kind, Index)
	nextDomain      int
	domainRNG       *stats.RNG
	stochDomainDown []time.Duration // per-domain busy-until for the stochastic kind
	baseInlet       []float64       // pre-fault inlet temps, derate baseline
	derates         []activeDerate

	// Byzantine reporters: byz[id] is non-nil for servers with lying
	// report channels; byzServers lists them in ID order for the
	// per-tick refresh.
	byz        []*byzState
	byzServers []int

	injected, repaired, evacJobs, lostJobs, domainTrips uint64

	crashCount, repairCount, evacCount, lostCount, migrationsCount, domainTripCount *telemetry.Counter
}

// activeDerate is one in-effect cooling derate over the contiguous
// server range [lo, hi): every member's inlet is raised by deltaC
// until endAt (0 = never repairs). Overlapping derates stack.
type activeDerate struct {
	lo, hi int
	deltaC float64
	endAt  time.Duration
}

// NewInjector wires a plan onto a cluster. The plan must already be
// validated for the cluster size. Sensor interposers are installed on
// every server (a crashed server's estimator reads nothing while it
// is down, whether or not it has explicit sensor faults).
func NewInjector(p *Plan, c *cluster.Cluster, host Host, reg *telemetry.Registry) *Injector {
	n := c.Len()
	inj := &Injector{
		plan:            *p,
		c:               c,
		host:            host,
		crashes:         append([]Crash(nil), p.Crashes...),
		rng:             stats.NewRNG(p.Seed ^ 0x8f1bbcdcbfa53e0b),
		model:           reliability.PaperModel(),
		down:            make([]bool, n),
		repairAt:        make([]time.Duration, n),
		sensors:         make([]*sensorState, n),
		crashCount:      reg.Counter("fault_injected_crashes"),
		repairCount:     reg.Counter("fault_injected_repairs"),
		evacCount:       reg.Counter("fault_evacuated_jobs"),
		lostCount:       reg.Counter("fault_lost_jobs"),
		migrationsCount: reg.Counter("sched_migrations"),
		domainTripCount: reg.Counter("fault_domain_trips"),
	}
	if st := p.Stochastic; st != nil && st.MTBFHours > 0 {
		inj.model.MTBFHours = st.MTBFHours
	}
	sort.Slice(inj.crashes, func(i, j int) bool {
		a, b := inj.crashes[i], inj.crashes[j]
		if a.AtMin != b.AtMin { //vmtlint:allow floateq exact schedule times tie-break on server ID; equal-bit times sort identically on every run
			return a.AtMin < b.AtMin
		}
		return a.Server < b.Server
	})
	for i := 0; i < n; i++ {
		ss := &sensorState{rng: stats.NewRNG(sensorSeed(p.Seed, i))}
		for _, f := range p.Sensors {
			if f.Server == i {
				ss.faults = append(ss.faults, f)
			}
		}
		sort.Slice(ss.faults, func(a, b int) bool { return ss.faults[a].StartMin < ss.faults[b].StartMin })
		inj.sensors[i] = ss
		c.Server(i).Estimator().SetSensor(ss)
	}
	if p.Topology != nil {
		topo, err := topology.Build(*p.Topology, n)
		if err != nil {
			// The plan was validated for this cluster size (ValidateFor
			// builds the same topology); reaching here is a bug, not an
			// input error.
			panic(err)
		}
		inj.topo = topo
		inj.domains = append([]DomainFault(nil), p.Domains...)
		sort.Slice(inj.domains, func(i, j int) bool {
			a, b := inj.domains[i], inj.domains[j]
			if a.AtMin != b.AtMin { //vmtlint:allow floateq exact schedule times tie-break on (kind, index); equal-bit times sort identically on every run
				return a.AtMin < b.AtMin
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Index < b.Index
		})
		inj.baseInlet = make([]float64, n)
		for i := 0; i < n; i++ {
			inj.baseInlet[i] = c.Server(i).InletTempC()
		}
		if sd := p.StochasticDomains; sd != nil {
			count, err := topo.DomainCount(sd.Kind)
			if err != nil {
				panic(err) // kind validated in Plan.Validate
			}
			inj.domainRNG = stats.NewRNG(p.Seed ^ 0x71c9d1eadf5a6c8f)
			inj.stochDomainDown = make([]time.Duration, count)
		}
	}
	if len(p.Byzantine) > 0 {
		inj.byz = make([]*byzState, n)
		for _, b := range p.Byzantine {
			bz := inj.byz[b.Server]
			if bz == nil {
				bz = &byzState{rng: stats.NewRNG(byzSeed(p.Seed, b.Server))}
				inj.byz[b.Server] = bz
				inj.byzServers = append(inj.byzServers, b.Server)
			}
			bz.faults = append(bz.faults, b)
		}
		sort.Ints(inj.byzServers)
		for _, id := range inj.byzServers {
			bz := inj.byz[id]
			sort.Slice(bz.faults, func(a, b int) bool {
				fa, fb := bz.faults[a], bz.faults[b]
				if fa.StartMin != fb.StartMin { //vmtlint:allow floateq exact schedule times tie-break on kind; equal-bit times sort identically on every run
					return fa.StartMin < fb.StartMin
				}
				return fa.Kind < fb.Kind
			})
			c.Server(id).SetReportFilter(bz)
		}
	}
	return inj
}

// Tick processes faults due at sim time now, covering the step
// interval (now-dt, now]: derate expiries and repairs first, then
// scheduled per-server crashes, then scheduled domain trips, then
// stochastic draws (per-server, then per-domain) in ID order, and
// finally the per-tick refresh of Byzantine report lies. Everything
// here runs on the sequential fault band, so cluster mutation order —
// and therefore every downstream scheduler decision — is identical for
// any PhysicsWorkers setting.
func (inj *Injector) Tick(now, dt time.Duration) error {
	inj.expireDerates(now)
	for id := range inj.repairAt {
		if inj.down[id] && inj.repairAt[id] > 0 && inj.repairAt[id] <= now {
			inj.repair(id)
		}
	}
	for inj.nextCrash < len(inj.crashes) && durMin(inj.crashes[inj.nextCrash].AtMin) <= now {
		c := inj.crashes[inj.nextCrash]
		inj.nextCrash++
		if inj.down[c.Server] {
			continue // already down via a stochastic crash; scheduled repair still governed by that crash
		}
		if err := inj.crash(c.Server, c.RepairAfterMin, now); err != nil {
			return err
		}
	}
	for inj.nextDomain < len(inj.domains) && durMin(inj.domains[inj.nextDomain].AtMin) <= now {
		d := inj.domains[inj.nextDomain]
		inj.nextDomain++
		if err := inj.tripDomain(d.Kind, d.Index, d.EffectiveMode(), d.RepairAfterMin, d.DerateInletDeltaC, now); err != nil {
			return err
		}
	}
	if st := inj.plan.Stochastic; st != nil {
		dtHours := dt.Hours()
		for id := 0; id < inj.c.Len(); id++ {
			if inj.down[id] {
				continue
			}
			rate := st.RatePerHour
			if st.Arrhenius {
				rate = inj.model.FailureRatePerHour(inj.c.Server(id).AirTempC())
			}
			p := -math.Expm1(-rate * dtHours)
			if inj.rng.Float64() < p {
				if err := inj.crash(id, st.RepairAfterMin, now); err != nil {
					return err
				}
			}
		}
	}
	if sd := inj.plan.StochasticDomains; sd != nil && inj.topo != nil {
		p := -math.Expm1(-sd.RatePerHour * dt.Hours())
		for idx := range inj.stochDomainDown {
			if inj.stochDomainDown[idx] > now {
				continue // domain still in its correlated repair window
			}
			if inj.domainRNG.Float64() >= p {
				continue
			}
			if err := inj.tripDomain(sd.Kind, idx, sd.EffectiveMode(), sd.RepairAfterMin, sd.DerateInletDeltaC, now); err != nil {
				return err
			}
			if sd.RepairAfterMin > 0 {
				inj.stochDomainDown[idx] = now + durMin(sd.RepairAfterMin)
			} else {
				inj.stochDomainDown[idx] = time.Duration(math.MaxInt64)
			}
		}
	}
	for _, id := range inj.byzServers {
		inj.byz[id].refresh(now)
	}
	return nil
}

// tripDomain fires one correlated failure over the domain's contiguous
// server range: crash mode downs every alive member atomically with a
// shared repair window; derate mode raises every member's inlet
// temperature until the derate expires.
func (inj *Injector) tripDomain(kind string, index int, mode string, repairAfterMin, derateDeltaC float64, now time.Duration) error {
	lo, hi, err := inj.topo.DomainRange(kind, index)
	if err != nil {
		return fmt.Errorf("fault: domain trip: %w", err)
	}
	inj.domainTrips++
	inj.domainTripCount.Inc()
	if mode == ModeDerate {
		end := time.Duration(0)
		if repairAfterMin > 0 {
			end = now + durMin(repairAfterMin)
		}
		inj.derates = append(inj.derates, activeDerate{lo: lo, hi: hi, deltaC: derateDeltaC, endAt: end})
		inj.recomputeInlets(lo, hi)
		return nil
	}
	for id := lo; id < hi; id++ {
		if inj.down[id] {
			continue
		}
		if err := inj.crash(id, repairAfterMin, now); err != nil {
			return err
		}
	}
	return nil
}

// recomputeInlets resets inlet temperatures over [lo, hi) to the
// pre-fault baseline plus every in-effect derate covering each server,
// in derate list order — so inlets return exactly (bit-identically) to
// baseline once all derates expire.
func (inj *Injector) recomputeInlets(lo, hi int) {
	for id := lo; id < hi; id++ {
		c := inj.baseInlet[id]
		for _, d := range inj.derates {
			if id >= d.lo && id < d.hi {
				c += d.deltaC
			}
		}
		inj.c.Server(id).SetInletTempC(c)
	}
}

// expireDerates drops derates whose repair time has arrived and
// restores the affected inlet ranges.
func (inj *Injector) expireDerates(now time.Duration) {
	if len(inj.derates) == 0 {
		return
	}
	kept := inj.derates[:0]
	var expired []activeDerate
	for _, d := range inj.derates {
		if d.endAt > 0 && d.endAt <= now {
			expired = append(expired, d)
			continue
		}
		kept = append(kept, d)
	}
	inj.derates = kept
	for _, d := range expired {
		inj.recomputeInlets(d.lo, d.hi)
	}
}

func (inj *Injector) crash(id int, repairAfterMin float64, now time.Duration) error {
	s := inj.c.Server(id)
	inj.c.MarkFailed(id)
	inj.down[id] = true
	inj.sensors[id].down = true
	moved, lost, err := inj.host.Evacuate(s)
	if err != nil {
		return fmt.Errorf("fault: evacuating server %d: %w", id, err)
	}
	inj.injected++
	inj.evacJobs += uint64(moved)
	inj.lostJobs += uint64(lost)
	inj.crashCount.Inc()
	inj.evacCount.Add(uint64(moved))
	inj.lostCount.Add(uint64(lost))
	inj.migrationsCount.Add(uint64(moved))
	if repairAfterMin > 0 {
		inj.repairAt[id] = now + durMin(repairAfterMin)
	} else {
		inj.repairAt[id] = 0
	}
	return nil
}

func (inj *Injector) repair(id int) {
	inj.c.MarkRepaired(id)
	inj.down[id] = false
	inj.repairAt[id] = 0
	inj.sensors[id].down = false
	s := inj.c.Server(id)
	// A repaired server boots with a cold estimator: re-anchor the
	// shadow at the current air temperature so the estimate restarts
	// from a known state instead of the pre-crash trajectory.
	s.Estimator().Reset(s.AirTempC())
	inj.repaired++
	inj.repairCount.Inc()
}

// Crashes returns the number of injected crashes so far.
func (inj *Injector) Crashes() uint64 { return inj.injected }

// Repairs returns the number of completed repairs so far.
func (inj *Injector) Repairs() uint64 { return inj.repaired }

// Evacuated returns the number of jobs successfully re-placed off
// crashed servers.
func (inj *Injector) Evacuated() uint64 { return inj.evacJobs }

// Lost returns the number of jobs dropped during evacuation because
// the surviving servers had no capacity.
func (inj *Injector) Lost() uint64 { return inj.lostJobs }

// DomainTrips returns the number of correlated domain failures fired
// so far (scheduled and stochastic, crash and derate modes alike).
func (inj *Injector) DomainTrips() uint64 { return inj.domainTrips }

// sensorState interposes on one server's melt-estimator input. Sense
// runs inside the (possibly parallel) physics phase, but only ever
// for its own server, with its own RNG, so draws are deterministic
// for any worker count. down is flipped only on the sequential fault
// band, which never overlaps physics.
type sensorState struct {
	faults []SensorFault // this server's, sorted by StartMin
	rng    *stats.RNG
	down   bool
}

var _ pcm.Sensor = (*sensorState)(nil)

// Sense maps the true air temperature to the sensed reading at sim
// time at. ok=false means no reading (dropout window or crashed
// server): the estimator skips the update and its estimate ages.
func (ss *sensorState) Sense(trueC float64, at time.Duration) (float64, bool) {
	if ss.down {
		return 0, false
	}
	f := ss.active(at)
	if f == nil {
		return trueC, true
	}
	switch f.Kind {
	case KindStuck:
		return f.ValueC, true
	case KindDrift:
		hours := (at - durMin(f.StartMin)).Hours()
		return trueC + f.DriftCPerHour*hours, true
	case KindNoise:
		return trueC + ss.rng.Normal(0, f.StdevC), true
	default: // KindDropout
		return 0, false
	}
}

func (ss *sensorState) active(at time.Duration) *SensorFault {
	for i := range ss.faults {
		f := &ss.faults[i]
		start := durMin(f.StartMin)
		if at < start {
			return nil // sorted: later windows start later still
		}
		if f.EndMin <= 0 || at < durMin(f.EndMin) {
			return f
		}
	}
	return nil
}

func durMin(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}

// sensorSeed derives a per-server RNG seed from the plan seed via a
// splitmix-style finalizer, so adjacent server IDs get uncorrelated
// streams.
func sensorSeed(seed uint64, server int) uint64 {
	z := seed ^ (uint64(server)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// byzSeed derives a per-server Byzantine RNG stream, decorrelated from
// the same server's sensor stream by salting the plan seed first.
func byzSeed(seed uint64, server int) uint64 {
	return sensorSeed(seed^0xa24baed4963ee407, server)
}

// byzState holds one lying server's per-tick report offsets. refresh
// runs once per fault-band tick and consumes randomness; the Filter
// methods are pure reads of the refreshed state, because scheduler
// scans may consult a server's reports several times per tick and an
// RNG draw on the read path would break bit-identity across worker
// counts.
type byzState struct {
	faults []ByzantineFault // this server's, sorted by (StartMin, Kind)
	rng    *stats.RNG

	utilActive, meltActive bool
	utilOffset, meltOffset float64
}

var _ cluster.ReportFilter = (*byzState)(nil)

// refresh recomputes the active lie on each report channel at sim time
// at. The jitter draw happens here, once per active fault per tick, in
// the fault slice's deterministic order.
func (bz *byzState) refresh(at time.Duration) {
	bz.utilActive, bz.meltActive = false, false
	for i := range bz.faults {
		f := &bz.faults[i]
		if at < durMin(f.StartMin) {
			break // sorted: later windows start later still
		}
		if f.EndMin > 0 && at >= durMin(f.EndMin) {
			continue
		}
		off := f.Bias
		if f.Jitter > 0 {
			off += bz.rng.Normal(0, f.Jitter)
		}
		switch f.Kind {
		case ByzUtil:
			bz.utilActive, bz.utilOffset = true, off
		case ByzMelt:
			bz.meltActive, bz.meltOffset = true, off
		}
	}
}

// FilterUtilization applies the active utilization lie, clamped into
// the plausible [0, 1] range — a Byzantine reporter never claims an
// impossible value, which is exactly what makes it hard to detect.
func (bz *byzState) FilterUtilization(trueUtil float64) float64 {
	if !bz.utilActive {
		return trueUtil
	}
	return clamp01(trueUtil + bz.utilOffset)
}

// FilterMeltFrac applies the active melt-fraction lie, clamped into
// [0, 1].
func (bz *byzState) FilterMeltFrac(estFrac float64) float64 {
	if !bz.meltActive {
		return estFrac
	}
	return clamp01(estFrac + bz.meltOffset)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
