// Package fault injects deterministic failures into a simulation run:
// server crashes and repairs (scheduled or stochastic, optionally
// Arrhenius-coupled to per-server temperature) and melt-estimator
// sensor faults (stuck-at, drift, gaussian noise, dropout windows).
//
// A Plan is JSON-round-trippable, like experiment.Spec, so fault
// scenarios live in spec files next to the sweep axes they perturb.
// All randomness flows through seeded internal/stats RNGs: the same
// seed and plan reproduce the same crash times and sensor noise
// bit-for-bit regardless of Config.PhysicsWorkers.
package fault

import (
	"fmt"
	"math"
	"sort"
)

// Sensor fault kinds accepted by SensorFault.Kind.
const (
	KindStuck   = "stuck"   // estimator reads ValueC, ignoring the true temperature
	KindDrift   = "drift"   // reading drifts by DriftCPerHour from the window start
	KindNoise   = "noise"   // gaussian noise with StdevC added to the reading
	KindDropout = "dropout" // no reading at all; the estimate goes stale
)

// Plan schedules every fault injected into one run. The zero value
// injects nothing. Seed drives stochastic crash draws and sensor
// noise; two runs with the same Config and Plan are bit-identical.
type Plan struct {
	// Seed seeds the fault RNG streams. Independent from Config.Seed
	// so the same fault scenario can be replayed over different
	// inlet-temperature draws.
	Seed uint64 `json:"seed,omitempty"`

	// Crashes are scheduled at fixed sim times.
	Crashes []Crash `json:"crashes,omitempty"`

	// Stochastic, when non-nil, draws additional crashes each tick.
	Stochastic *Stochastic `json:"stochastic,omitempty"`

	// Sensors are melt-estimator sensor faults.
	Sensors []SensorFault `json:"sensors,omitempty"`
}

// Crash takes one server down at a fixed sim time.
type Crash struct {
	// Server is the target server index.
	Server int `json:"server"`

	// AtMin is the crash time in minutes from the start of the run.
	// Faults are processed on scheduler-step boundaries: the crash
	// lands on the first fault tick at or after AtMin.
	AtMin float64 `json:"at_min"`

	// RepairAfterMin is the downtime in minutes; 0 means the server
	// is never repaired.
	RepairAfterMin float64 `json:"repair_after_min,omitempty"`
}

// Stochastic draws crashes per alive server per tick from the seeded
// fault RNG. Exactly one of RatePerHour > 0 or Arrhenius must be set.
type Stochastic struct {
	// RatePerHour is a flat per-server failure rate.
	RatePerHour float64 `json:"rate_per_hour,omitempty"`

	// Arrhenius couples the failure rate to each server's air
	// temperature via reliability.Model.FailureRatePerHour.
	Arrhenius bool `json:"arrhenius,omitempty"`

	// MTBFHours overrides the Arrhenius model's reference MTBF
	// (default reliability.PaperModel, 70 000 h at 30 °C).
	MTBFHours float64 `json:"mtbf_hours,omitempty"`

	// RepairAfterMin is the downtime for stochastic crashes; 0 means
	// crashed servers stay down.
	RepairAfterMin float64 `json:"repair_after_min,omitempty"`
}

// SensorFault perturbs one server's melt-estimator input over a time
// window. While a dropout window is active the estimator receives no
// reading at all and its estimate ages; the scheduler treats estimates
// older than core.DefaultMaxEstimateAge as stale.
type SensorFault struct {
	// Server is the target server index.
	Server int `json:"server"`

	// Kind is one of "stuck", "drift", "noise", "dropout".
	Kind string `json:"kind"`

	// StartMin and EndMin bound the window in minutes; EndMin 0 means
	// the fault persists to the end of the run.
	StartMin float64 `json:"start_min"`
	EndMin   float64 `json:"end_min,omitempty"`

	// ValueC is the stuck-at reading for "stuck".
	ValueC float64 `json:"value_c,omitempty"`

	// DriftCPerHour is the drift slope for "drift".
	DriftCPerHour float64 `json:"drift_c_per_hour,omitempty"`

	// StdevC is the noise magnitude for "noise".
	StdevC float64 `json:"stdev_c,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.Crashes) == 0 && p.Stochastic == nil && len(p.Sensors) == 0
}

// Validate checks internal consistency: finite non-negative times and
// rates, known sensor kinds, no overlapping downtime or fault windows
// on the same server. Server indexes are bounds-checked separately by
// ValidateFor once the cluster size is known.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, c := range p.Crashes {
		if c.Server < 0 {
			return fmt.Errorf("fault: crash %d: negative server %d", i, c.Server)
		}
		if !finite(c.AtMin) || c.AtMin < 0 {
			return fmt.Errorf("fault: crash %d: at_min %v must be finite and >= 0", i, c.AtMin)
		}
		if !finite(c.RepairAfterMin) || c.RepairAfterMin < 0 {
			return fmt.Errorf("fault: crash %d: repair_after_min %v must be finite and >= 0 (repair cannot precede the crash)", i, c.RepairAfterMin)
		}
	}
	if err := p.validateCrashOverlap(); err != nil {
		return err
	}
	if s := p.Stochastic; s != nil {
		if !finite(s.RatePerHour) || s.RatePerHour < 0 {
			return fmt.Errorf("fault: stochastic rate_per_hour %v must be finite and >= 0", s.RatePerHour)
		}
		if !finite(s.MTBFHours) || s.MTBFHours < 0 {
			return fmt.Errorf("fault: stochastic mtbf_hours %v must be finite and >= 0", s.MTBFHours)
		}
		if !finite(s.RepairAfterMin) || s.RepairAfterMin < 0 {
			return fmt.Errorf("fault: stochastic repair_after_min %v must be finite and >= 0", s.RepairAfterMin)
		}
		hasRate := s.RatePerHour > 0
		if hasRate == s.Arrhenius {
			return fmt.Errorf("fault: stochastic needs exactly one of rate_per_hour > 0 or arrhenius")
		}
		if s.MTBFHours > 0 && !s.Arrhenius {
			return fmt.Errorf("fault: stochastic mtbf_hours requires arrhenius")
		}
	}
	for i, f := range p.Sensors {
		if f.Server < 0 {
			return fmt.Errorf("fault: sensor %d: negative server %d", i, f.Server)
		}
		switch f.Kind {
		case KindStuck, KindDrift, KindNoise, KindDropout:
		default:
			return fmt.Errorf("fault: sensor %d: unknown kind %q", i, f.Kind)
		}
		if !finite(f.StartMin) || f.StartMin < 0 {
			return fmt.Errorf("fault: sensor %d: start_min %v must be finite and >= 0", i, f.StartMin)
		}
		if !finite(f.EndMin) || f.EndMin < 0 {
			return fmt.Errorf("fault: sensor %d: end_min %v must be finite and >= 0", i, f.EndMin)
		}
		if f.EndMin > 0 && f.EndMin <= f.StartMin {
			return fmt.Errorf("fault: sensor %d: end_min %v must exceed start_min %v", i, f.EndMin, f.StartMin)
		}
		if !finite(f.ValueC) || !finite(f.DriftCPerHour) {
			return fmt.Errorf("fault: sensor %d: value_c and drift_c_per_hour must be finite", i)
		}
		if !finite(f.StdevC) || f.StdevC < 0 {
			return fmt.Errorf("fault: sensor %d: stdev_c %v must be finite and >= 0", i, f.StdevC)
		}
		if f.Kind == KindNoise && f.StdevC <= 0 {
			return fmt.Errorf("fault: sensor %d: noise needs stdev_c > 0", i)
		}
	}
	return p.validateSensorOverlap()
}

// ValidateFor runs Validate and bounds-checks server indexes against
// the cluster size.
func (p *Plan) ValidateFor(numServers int) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for i, c := range p.Crashes {
		if c.Server >= numServers {
			return fmt.Errorf("fault: crash %d: server %d out of range (cluster has %d)", i, c.Server, numServers)
		}
	}
	for i, f := range p.Sensors {
		if f.Server >= numServers {
			return fmt.Errorf("fault: sensor %d: server %d out of range (cluster has %d)", i, f.Server, numServers)
		}
	}
	return nil
}

// validateCrashOverlap rejects scheduled downtimes that overlap on
// the same server: the injector cannot crash a server that is already
// down, so an overlapping schedule is a spec mistake.
func (p *Plan) validateCrashOverlap() error {
	byServer := map[int][]Crash{}
	for _, c := range p.Crashes {
		byServer[c.Server] = append(byServer[c.Server], c)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer { //vmtlint:allow maporder keys are sorted immediately below
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		cs := byServer[s]
		sort.Slice(cs, func(i, j int) bool { return cs[i].AtMin < cs[j].AtMin })
		for i := 1; i < len(cs); i++ {
			prev := cs[i-1]
			if prev.RepairAfterMin <= 0 || cs[i].AtMin < prev.AtMin+prev.RepairAfterMin {
				return fmt.Errorf("fault: server %d: crash at %v min overlaps downtime of crash at %v min", s, cs[i].AtMin, prev.AtMin)
			}
		}
	}
	return nil
}

// validateSensorOverlap rejects overlapping fault windows on the same
// server so at most one sensor fault is active at any instant.
func (p *Plan) validateSensorOverlap() error {
	byServer := map[int][]SensorFault{}
	for _, f := range p.Sensors {
		byServer[f.Server] = append(byServer[f.Server], f)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer { //vmtlint:allow maporder keys are sorted immediately below
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		fs := byServer[s]
		sort.Slice(fs, func(i, j int) bool { return fs[i].StartMin < fs[j].StartMin })
		for i := 1; i < len(fs); i++ {
			prev := fs[i-1]
			if prev.EndMin <= 0 || fs[i].StartMin < prev.EndMin {
				return fmt.Errorf("fault: server %d: sensor fault window starting %v min overlaps window starting %v min", s, fs[i].StartMin, prev.StartMin)
			}
		}
	}
	return nil
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
