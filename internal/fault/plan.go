// Package fault injects deterministic failures into a simulation run:
// server crashes and repairs (scheduled or stochastic, optionally
// Arrhenius-coupled to per-server temperature), melt-estimator sensor
// faults (stuck-at, drift, gaussian noise, dropout windows), correlated
// failure domains over a datacenter topology (PDU trips crashing a
// whole rack atomically, cooling-zone failures derating every server in
// the zone), and Byzantine report faults (servers lying about their
// utilization or melt state within plausible ranges).
//
// A Plan is JSON-round-trippable, like experiment.Spec, so fault
// scenarios live in spec files next to the sweep axes they perturb.
// All randomness flows through seeded internal/stats RNGs: the same
// seed and plan reproduce the same crash times, sensor noise, domain
// trips, and Byzantine lies bit-for-bit regardless of
// Config.PhysicsWorkers.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"vmt/internal/topology"
)

// Sensor fault kinds accepted by SensorFault.Kind.
const (
	KindStuck   = "stuck"   // estimator reads ValueC, ignoring the true temperature
	KindDrift   = "drift"   // reading drifts by DriftCPerHour from the window start
	KindNoise   = "noise"   // gaussian noise with StdevC added to the reading
	KindDropout = "dropout" // no reading at all; the estimate goes stale
)

// Domain fault modes accepted by DomainFault.Mode and
// StochasticDomains.Mode.
const (
	// ModeCrash takes every server in the domain down atomically (a
	// PDU trip). The empty mode defaults to crash.
	ModeCrash = "crash"
	// ModeDerate raises every domain server's inlet temperature by
	// DerateInletDeltaC for the window (a cooling-zone failure: the
	// CRAC loop loses capacity but the servers keep running).
	ModeDerate = "derate"
)

// Byzantine report channels accepted by ByzantineFault.Kind.
const (
	// ByzUtil perturbs the server's reported utilization — the
	// telemetry channel the defensive scheduler layer cross-checks
	// against power draw.
	ByzUtil = "util"
	// ByzMelt perturbs the server's reported melt fraction — the
	// channel VMT-WA's placement actually consumes.
	ByzMelt = "melt"
)

// MaxDerateDeltaC bounds a derate fault's inlet increase: a cooling
// failure can recirculate only so much exhaust heat before it is a
// full outage (use ModeCrash for that).
const MaxDerateDeltaC = 30

// Plan schedules every fault injected into one run. The zero value
// injects nothing. Seed drives stochastic crash draws and sensor
// noise; two runs with the same Config and Plan are bit-identical.
type Plan struct {
	// Seed seeds the fault RNG streams. Independent from Config.Seed
	// so the same fault scenario can be replayed over different
	// inlet-temperature draws.
	Seed uint64 `json:"seed,omitempty"`

	// Crashes are scheduled at fixed sim times.
	Crashes []Crash `json:"crashes,omitempty"`

	// Stochastic, when non-nil, draws additional crashes each tick.
	Stochastic *Stochastic `json:"stochastic,omitempty"`

	// Sensors are melt-estimator sensor faults.
	Sensors []SensorFault `json:"sensors,omitempty"`

	// Topology declares the rack/row/zone hierarchy the domain faults
	// reference. Required whenever Domains or StochasticDomains is
	// set; the concrete domain count depends on the cluster size, so
	// domain indexes are bounds-checked by ValidateFor.
	Topology *topology.Spec `json:"topology,omitempty"`

	// Domains are scheduled correlated failures: every server in the
	// named domain crashes (or derates) atomically, with one shared
	// repair window.
	Domains []DomainFault `json:"domains,omitempty"`

	// StochasticDomains, when non-nil, draws additional domain trips
	// each tick from a dedicated seeded RNG stream.
	StochasticDomains *StochasticDomains `json:"stochastic_domains,omitempty"`

	// Byzantine are lying-report faults: the targeted server's
	// scheduler-visible utilization or melt reports are biased and
	// jittered within plausible ranges while the window is active.
	Byzantine []ByzantineFault `json:"byzantine,omitempty"`
}

// DomainFault trips one failure domain at a fixed sim time. All member
// servers fail (or derate) on the same tick and repair on the same
// tick — the correlated-loss pattern independent per-server crash
// rates cannot produce.
type DomainFault struct {
	// Kind is the domain level: topology.DomainRack, DomainRow, or
	// DomainZone.
	Kind string `json:"kind"`

	// Index is the domain index at that level (rack 0 is servers
	// [0, servers_per_rack), and so on in ID order).
	Index int `json:"index"`

	// Mode is ModeCrash (default when empty) or ModeDerate.
	Mode string `json:"mode,omitempty"`

	// AtMin is the trip time in minutes from the start of the run; the
	// trip lands on the first fault tick at or after it.
	AtMin float64 `json:"at_min"`

	// RepairAfterMin is the shared downtime (or derate duration) in
	// minutes; 0 means the domain never recovers.
	RepairAfterMin float64 `json:"repair_after_min,omitempty"`

	// DerateInletDeltaC is the inlet temperature increase for
	// ModeDerate (required positive there, rejected for ModeCrash).
	DerateInletDeltaC float64 `json:"derate_inlet_delta_c,omitempty"`
}

// EffectiveMode resolves the empty default to ModeCrash.
func (d DomainFault) EffectiveMode() string {
	if d.Mode == "" {
		return ModeCrash
	}
	return d.Mode
}

// StochasticDomains draws whole-domain trips per tick from the seeded
// domain RNG stream: each currently healthy domain of the given kind
// trips with probability 1-exp(-rate×dt).
type StochasticDomains struct {
	// Kind is the domain level the draws target.
	Kind string `json:"kind"`

	// RatePerHour is the per-domain trip rate.
	RatePerHour float64 `json:"rate_per_hour"`

	// Mode is ModeCrash (default when empty) or ModeDerate.
	Mode string `json:"mode,omitempty"`

	// RepairAfterMin is the shared downtime per trip; 0 means tripped
	// domains stay down.
	RepairAfterMin float64 `json:"repair_after_min,omitempty"`

	// DerateInletDeltaC is the inlet increase for ModeDerate.
	DerateInletDeltaC float64 `json:"derate_inlet_delta_c,omitempty"`
}

// EffectiveMode resolves the empty default to ModeCrash.
func (s StochasticDomains) EffectiveMode() string {
	if s.Mode == "" {
		return ModeCrash
	}
	return s.Mode
}

// ByzantineFault makes one server lie on one report channel over a
// time window. The lie is reported = clamp(true + bias + jitter×N(0,1))
// into the channel's plausible range ([0,1] for both utilization and
// melt fraction), with the gaussian drawn once per tick from the
// server's dedicated Byzantine RNG stream — in-range values that a
// naive range check cannot catch, which is exactly what the defensive
// scheduler layer's cross-checks are for.
type ByzantineFault struct {
	// Server is the lying server's index.
	Server int `json:"server"`

	// Kind is the report channel: ByzUtil or ByzMelt.
	Kind string `json:"kind"`

	// StartMin and EndMin bound the window in minutes; EndMin 0 means
	// the lie persists to the end of the run.
	StartMin float64 `json:"start_min"`
	EndMin   float64 `json:"end_min,omitempty"`

	// Bias is the additive offset on the reported value, in the
	// channel's own unit (fractions for both channels), clamped to
	// [-1, 1] by validation.
	Bias float64 `json:"bias,omitempty"`

	// Jitter is the per-tick gaussian stdev added on top of the bias.
	Jitter float64 `json:"jitter,omitempty"`
}

// Crash takes one server down at a fixed sim time.
type Crash struct {
	// Server is the target server index.
	Server int `json:"server"`

	// AtMin is the crash time in minutes from the start of the run.
	// Faults are processed on scheduler-step boundaries: the crash
	// lands on the first fault tick at or after AtMin.
	AtMin float64 `json:"at_min"`

	// RepairAfterMin is the downtime in minutes; 0 means the server
	// is never repaired.
	RepairAfterMin float64 `json:"repair_after_min,omitempty"`
}

// Stochastic draws crashes per alive server per tick from the seeded
// fault RNG. Exactly one of RatePerHour > 0 or Arrhenius must be set.
type Stochastic struct {
	// RatePerHour is a flat per-server failure rate.
	RatePerHour float64 `json:"rate_per_hour,omitempty"`

	// Arrhenius couples the failure rate to each server's air
	// temperature via reliability.Model.FailureRatePerHour.
	Arrhenius bool `json:"arrhenius,omitempty"`

	// MTBFHours overrides the Arrhenius model's reference MTBF
	// (default reliability.PaperModel, 70 000 h at 30 °C).
	MTBFHours float64 `json:"mtbf_hours,omitempty"`

	// RepairAfterMin is the downtime for stochastic crashes; 0 means
	// crashed servers stay down.
	RepairAfterMin float64 `json:"repair_after_min,omitempty"`
}

// SensorFault perturbs one server's melt-estimator input over a time
// window. While a dropout window is active the estimator receives no
// reading at all and its estimate ages; the scheduler treats estimates
// older than core.DefaultMaxEstimateAge as stale.
type SensorFault struct {
	// Server is the target server index.
	Server int `json:"server"`

	// Kind is one of "stuck", "drift", "noise", "dropout".
	Kind string `json:"kind"`

	// StartMin and EndMin bound the window in minutes; EndMin 0 means
	// the fault persists to the end of the run.
	StartMin float64 `json:"start_min"`
	EndMin   float64 `json:"end_min,omitempty"`

	// ValueC is the stuck-at reading for "stuck".
	ValueC float64 `json:"value_c,omitempty"`

	// DriftCPerHour is the drift slope for "drift".
	DriftCPerHour float64 `json:"drift_c_per_hour,omitempty"`

	// StdevC is the noise magnitude for "noise".
	StdevC float64 `json:"stdev_c,omitempty"`
}

// Empty reports whether the plan injects nothing. A plan that only
// declares a topology is empty: geometry without faults changes no
// behavior.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.Crashes) == 0 && p.Stochastic == nil && len(p.Sensors) == 0 &&
		len(p.Domains) == 0 && p.StochasticDomains == nil && len(p.Byzantine) == 0
}

// HasDomainFaults reports whether the plan schedules or draws
// correlated domain failures.
func (p *Plan) HasDomainFaults() bool {
	if p == nil {
		return false
	}
	return len(p.Domains) > 0 || p.StochasticDomains != nil
}

// HasByzantine reports whether the plan injects lying reports.
func (p *Plan) HasByzantine() bool {
	return p != nil && len(p.Byzantine) > 0
}

// ParsePlan decodes and validates a plan from JSON, rejecting unknown
// fields so typos fail loudly instead of silently defaulting — the
// same contract workload.ParseSourceSpec gives arrival sources.
// Server and domain indexes still need ValidateFor once the cluster
// size is known.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks internal consistency: finite non-negative times and
// rates, known sensor kinds, no overlapping downtime or fault windows
// on the same server. Server indexes are bounds-checked separately by
// ValidateFor once the cluster size is known.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, c := range p.Crashes {
		if c.Server < 0 {
			return fmt.Errorf("fault: crash %d: negative server %d", i, c.Server)
		}
		if !finite(c.AtMin) || c.AtMin < 0 {
			return fmt.Errorf("fault: crash %d: at_min %v must be finite and >= 0", i, c.AtMin)
		}
		if !finite(c.RepairAfterMin) || c.RepairAfterMin < 0 {
			return fmt.Errorf("fault: crash %d: repair_after_min %v must be finite and >= 0 (repair cannot precede the crash)", i, c.RepairAfterMin)
		}
	}
	if err := p.validateCrashOverlap(); err != nil {
		return err
	}
	if s := p.Stochastic; s != nil {
		if !finite(s.RatePerHour) || s.RatePerHour < 0 {
			return fmt.Errorf("fault: stochastic rate_per_hour %v must be finite and >= 0", s.RatePerHour)
		}
		if !finite(s.MTBFHours) || s.MTBFHours < 0 {
			return fmt.Errorf("fault: stochastic mtbf_hours %v must be finite and >= 0", s.MTBFHours)
		}
		if !finite(s.RepairAfterMin) || s.RepairAfterMin < 0 {
			return fmt.Errorf("fault: stochastic repair_after_min %v must be finite and >= 0", s.RepairAfterMin)
		}
		hasRate := s.RatePerHour > 0
		if hasRate == s.Arrhenius {
			return fmt.Errorf("fault: stochastic needs exactly one of rate_per_hour > 0 or arrhenius")
		}
		if s.MTBFHours > 0 && !s.Arrhenius {
			return fmt.Errorf("fault: stochastic mtbf_hours requires arrhenius")
		}
	}
	for i, f := range p.Sensors {
		if f.Server < 0 {
			return fmt.Errorf("fault: sensor %d: negative server %d", i, f.Server)
		}
		switch f.Kind {
		case KindStuck, KindDrift, KindNoise, KindDropout:
		default:
			return fmt.Errorf("fault: sensor %d: unknown kind %q", i, f.Kind)
		}
		if !finite(f.StartMin) || f.StartMin < 0 {
			return fmt.Errorf("fault: sensor %d: start_min %v must be finite and >= 0", i, f.StartMin)
		}
		if !finite(f.EndMin) || f.EndMin < 0 {
			return fmt.Errorf("fault: sensor %d: end_min %v must be finite and >= 0", i, f.EndMin)
		}
		if f.EndMin > 0 && f.EndMin <= f.StartMin {
			return fmt.Errorf("fault: sensor %d: end_min %v must exceed start_min %v", i, f.EndMin, f.StartMin)
		}
		if !finite(f.ValueC) || !finite(f.DriftCPerHour) {
			return fmt.Errorf("fault: sensor %d: value_c and drift_c_per_hour must be finite", i)
		}
		if !finite(f.StdevC) || f.StdevC < 0 {
			return fmt.Errorf("fault: sensor %d: stdev_c %v must be finite and >= 0", i, f.StdevC)
		}
		if f.Kind == KindNoise && f.StdevC <= 0 {
			return fmt.Errorf("fault: sensor %d: noise needs stdev_c > 0", i)
		}
	}
	if err := p.validateSensorOverlap(); err != nil {
		return err
	}
	if err := p.validateDomains(); err != nil {
		return err
	}
	return p.validateByzantine()
}

// validateDomains checks the topology declaration and every domain
// fault's internal consistency, including non-overlapping trip windows
// on the same domain. Domain indexes are bounds-checked by ValidateFor
// once the cluster size (and so the domain count) is known.
func (p *Plan) validateDomains() error {
	if p.HasDomainFaults() && p.Topology == nil {
		return fmt.Errorf("fault: domain faults need a topology")
	}
	if err := p.Topology.Validate(); err != nil {
		return err
	}
	validateDomainMode := func(what, mode string, repairAfterMin, derateDeltaC float64) error {
		switch mode {
		case ModeCrash, ModeDerate:
		default:
			return fmt.Errorf("fault: %s: unknown mode %q (want %s or %s)", what, mode, ModeCrash, ModeDerate)
		}
		if !finite(repairAfterMin) || repairAfterMin < 0 {
			return fmt.Errorf("fault: %s: repair_after_min %v must be finite and >= 0", what, repairAfterMin)
		}
		if !finite(derateDeltaC) {
			return fmt.Errorf("fault: %s: derate_inlet_delta_c must be finite", what)
		}
		if mode == ModeDerate {
			if derateDeltaC <= 0 || derateDeltaC > MaxDerateDeltaC {
				return fmt.Errorf("fault: %s: derate needs derate_inlet_delta_c in (0, %d], got %v",
					what, MaxDerateDeltaC, derateDeltaC)
			}
		} else if derateDeltaC != 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
			return fmt.Errorf("fault: %s: derate_inlet_delta_c requires mode %q", what, ModeDerate)
		}
		return nil
	}
	for i, d := range p.Domains {
		what := fmt.Sprintf("domain %d", i)
		if !topology.KnownKind(d.Kind) {
			return fmt.Errorf("fault: %s: unknown domain kind %q", what, d.Kind)
		}
		if d.Index < 0 {
			return fmt.Errorf("fault: %s: negative index %d", what, d.Index)
		}
		if !finite(d.AtMin) || d.AtMin < 0 {
			return fmt.Errorf("fault: %s: at_min %v must be finite and >= 0", what, d.AtMin)
		}
		if err := validateDomainMode(what, d.EffectiveMode(), d.RepairAfterMin, d.DerateInletDeltaC); err != nil {
			return err
		}
	}
	if err := p.validateDomainOverlap(); err != nil {
		return err
	}
	if sd := p.StochasticDomains; sd != nil {
		if !topology.KnownKind(sd.Kind) {
			return fmt.Errorf("fault: stochastic_domains: unknown domain kind %q", sd.Kind)
		}
		if !finite(sd.RatePerHour) || sd.RatePerHour <= 0 {
			return fmt.Errorf("fault: stochastic_domains: rate_per_hour %v must be finite and > 0", sd.RatePerHour)
		}
		if err := validateDomainMode("stochastic_domains", sd.EffectiveMode(), sd.RepairAfterMin, sd.DerateInletDeltaC); err != nil {
			return err
		}
	}
	return nil
}

// validateDomainOverlap rejects scheduled trips whose windows overlap
// on the same (kind, index) domain: the injector cannot trip a domain
// that is already tripped, so an overlapping schedule is a spec
// mistake — the same contract validateCrashOverlap enforces per
// server.
func (p *Plan) validateDomainOverlap() error {
	byDomain := map[string][]DomainFault{}
	for _, d := range p.Domains {
		key := fmt.Sprintf("%s/%d", d.Kind, d.Index)
		byDomain[key] = append(byDomain[key], d)
	}
	keys := make([]string, 0, len(byDomain))
	for k := range byDomain { //vmtlint:allow maporder keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ds := byDomain[k]
		sort.Slice(ds, func(i, j int) bool { return ds[i].AtMin < ds[j].AtMin })
		for i := 1; i < len(ds); i++ {
			prev := ds[i-1]
			if prev.RepairAfterMin <= 0 || ds[i].AtMin < prev.AtMin+prev.RepairAfterMin {
				return fmt.Errorf("fault: %s %d: trip at %v min overlaps window of trip at %v min",
					ds[i].Kind, ds[i].Index, ds[i].AtMin, prev.AtMin)
			}
		}
	}
	return nil
}

// validateByzantine checks the lying-report faults: known channels,
// plausible bias/jitter, and non-overlapping windows per (server,
// channel) so at most one lie governs a channel at any instant.
func (p *Plan) validateByzantine() error {
	for i, b := range p.Byzantine {
		if b.Server < 0 {
			return fmt.Errorf("fault: byzantine %d: negative server %d", i, b.Server)
		}
		switch b.Kind {
		case ByzUtil, ByzMelt:
		default:
			return fmt.Errorf("fault: byzantine %d: unknown kind %q (want %s or %s)", i, b.Kind, ByzUtil, ByzMelt)
		}
		if !finite(b.StartMin) || b.StartMin < 0 {
			return fmt.Errorf("fault: byzantine %d: start_min %v must be finite and >= 0", i, b.StartMin)
		}
		if !finite(b.EndMin) || b.EndMin < 0 {
			return fmt.Errorf("fault: byzantine %d: end_min %v must be finite and >= 0", i, b.EndMin)
		}
		if b.EndMin > 0 && b.EndMin <= b.StartMin {
			return fmt.Errorf("fault: byzantine %d: end_min %v must exceed start_min %v", i, b.EndMin, b.StartMin)
		}
		if !finite(b.Bias) || b.Bias < -1 || b.Bias > 1 {
			return fmt.Errorf("fault: byzantine %d: bias %v out of [-1, 1]", i, b.Bias)
		}
		if !finite(b.Jitter) || b.Jitter < 0 || b.Jitter > 1 {
			return fmt.Errorf("fault: byzantine %d: jitter %v out of [0, 1]", i, b.Jitter)
		}
		if b.Bias == 0 && b.Jitter == 0 { //vmtlint:allow floateq zero-value "no lie at all" rejection, exact by construction
			return fmt.Errorf("fault: byzantine %d: needs a non-zero bias or jitter", i)
		}
	}
	byChannel := map[string][]ByzantineFault{}
	for _, b := range p.Byzantine {
		key := fmt.Sprintf("%d/%s", b.Server, b.Kind)
		byChannel[key] = append(byChannel[key], b)
	}
	keys := make([]string, 0, len(byChannel))
	for k := range byChannel { //vmtlint:allow maporder keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bs := byChannel[k]
		sort.Slice(bs, func(i, j int) bool { return bs[i].StartMin < bs[j].StartMin })
		for i := 1; i < len(bs); i++ {
			prev := bs[i-1]
			if prev.EndMin <= 0 || bs[i].StartMin < prev.EndMin {
				return fmt.Errorf("fault: server %d: byzantine %s window starting %v min overlaps window starting %v min",
					bs[i].Server, bs[i].Kind, bs[i].StartMin, prev.StartMin)
			}
		}
	}
	return nil
}

// ValidateFor runs Validate and bounds-checks server and domain
// references against the cluster size: flat server indexes must fall
// inside the fleet, domain indexes inside the domain count the
// topology spans at that size, and scheduled domain-crash windows must
// not overlap a member server's own scheduled downtime (the injector
// cannot crash a server twice, so the combined schedule is a spec
// mistake).
func (p *Plan) ValidateFor(numServers int) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for i, c := range p.Crashes {
		if c.Server >= numServers {
			return fmt.Errorf("fault: crash %d: server %d out of range (cluster has %d)", i, c.Server, numServers)
		}
	}
	for i, f := range p.Sensors {
		if f.Server >= numServers {
			return fmt.Errorf("fault: sensor %d: server %d out of range (cluster has %d)", i, f.Server, numServers)
		}
	}
	for i, b := range p.Byzantine {
		if b.Server >= numServers {
			return fmt.Errorf("fault: byzantine %d: server %d out of range (cluster has %d)", i, b.Server, numServers)
		}
	}
	if p.Topology == nil {
		return nil
	}
	topo, err := topology.Build(*p.Topology, numServers)
	if err != nil {
		return err
	}
	for i, d := range p.Domains {
		count, err := topo.DomainCount(d.Kind)
		if err != nil {
			return fmt.Errorf("fault: domain %d: %w", i, err)
		}
		if d.Index >= count {
			return fmt.Errorf("fault: domain %d: %s %d out of range (cluster of %d has %d)",
				i, d.Kind, d.Index, numServers, count)
		}
		if d.EffectiveMode() != ModeCrash {
			continue
		}
		lo, hi, err := topo.DomainRange(d.Kind, d.Index)
		if err != nil {
			return fmt.Errorf("fault: domain %d: %w", i, err)
		}
		for j, c := range p.Crashes {
			if c.Server < lo || c.Server >= hi {
				continue
			}
			if windowsOverlap(d.AtMin, d.RepairAfterMin, c.AtMin, c.RepairAfterMin) {
				return fmt.Errorf("fault: domain %d (%s %d) downtime overlaps crash %d on member server %d",
					i, d.Kind, d.Index, j, c.Server)
			}
		}
	}
	return nil
}

// windowsOverlap reports whether two downtime windows [at, at+repair)
// intersect; a zero repair means the window never closes.
func windowsOverlap(at1, repair1, at2, repair2 float64) bool {
	if repair1 > 0 && at1+repair1 <= at2 {
		return false
	}
	if repair2 > 0 && at2+repair2 <= at1 {
		return false
	}
	return true
}

// validateCrashOverlap rejects scheduled downtimes that overlap on
// the same server: the injector cannot crash a server that is already
// down, so an overlapping schedule is a spec mistake.
func (p *Plan) validateCrashOverlap() error {
	byServer := map[int][]Crash{}
	for _, c := range p.Crashes {
		byServer[c.Server] = append(byServer[c.Server], c)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer { //vmtlint:allow maporder keys are sorted immediately below
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		cs := byServer[s]
		sort.Slice(cs, func(i, j int) bool { return cs[i].AtMin < cs[j].AtMin })
		for i := 1; i < len(cs); i++ {
			prev := cs[i-1]
			if prev.RepairAfterMin <= 0 || cs[i].AtMin < prev.AtMin+prev.RepairAfterMin {
				return fmt.Errorf("fault: server %d: crash at %v min overlaps downtime of crash at %v min", s, cs[i].AtMin, prev.AtMin)
			}
		}
	}
	return nil
}

// validateSensorOverlap rejects overlapping fault windows on the same
// server so at most one sensor fault is active at any instant.
func (p *Plan) validateSensorOverlap() error {
	byServer := map[int][]SensorFault{}
	for _, f := range p.Sensors {
		byServer[f.Server] = append(byServer[f.Server], f)
	}
	servers := make([]int, 0, len(byServer))
	for s := range byServer { //vmtlint:allow maporder keys are sorted immediately below
		servers = append(servers, s)
	}
	sort.Ints(servers)
	for _, s := range servers {
		fs := byServer[s]
		sort.Slice(fs, func(i, j int) bool { return fs[i].StartMin < fs[j].StartMin })
		for i := 1; i < len(fs); i++ {
			prev := fs[i-1]
			if prev.EndMin <= 0 || fs[i].StartMin < prev.EndMin {
				return fmt.Errorf("fault: server %d: sensor fault window starting %v min overlaps window starting %v min", s, fs[i].StartMin, prev.StartMin)
			}
		}
	}
	return nil
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
