package fault

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzPlanJSON drives the exact decode path spec files take
// (DisallowUnknownFields into Plan, then Validate): no input may
// panic, and any plan that validates must survive an
// encode-decode round trip unchanged — the property the run-cache key
// and spec files both depend on.
func FuzzPlanJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":7}`))
	f.Add([]byte(`{"crashes":[{"server":0,"at_min":30,"repair_after_min":60}]}`))
	f.Add([]byte(`{"stochastic":{"rate_per_hour":0.01,"repair_after_min":120}}`))
	f.Add([]byte(`{"stochastic":{"arrhenius":true,"mtbf_hours":5000}}`))
	f.Add([]byte(`{"sensors":[{"server":1,"kind":"noise","start_min":0,"stdev_c":0.5}]}`))
	f.Add([]byte(`{"sensors":[{"server":0,"kind":"dropout","start_min":10},{"server":0,"kind":"stuck","start_min":20,"end_min":30}]}`))
	f.Add([]byte(`{"crashes":[{"server":0,"at_min":1e999}]}`))
	f.Add([]byte(`{"stochastic":{"rate_per_hour":-1}}`))
	f.Add([]byte(`{"topology":{"servers_per_rack":4,"racks_per_row":3,"rows_per_zone":2},"domains":[{"kind":"rack","index":1,"at_min":60,"repair_after_min":120}]}`))
	f.Add([]byte(`{"topology":{"servers_per_rack":4,"racks_per_row":3,"rows_per_zone":2},"domains":[{"kind":"zone","index":0,"mode":"derate","at_min":30,"repair_after_min":60,"derate_inlet_delta_c":5}]}`))
	f.Add([]byte(`{"topology":{"servers_per_rack":8,"racks_per_row":2,"rows_per_zone":1},"stochastic_domains":{"kind":"rack","rate_per_hour":0.01,"repair_after_min":90}}`))
	f.Add([]byte(`{"byzantine":[{"server":0,"kind":"melt","start_min":10,"bias":0.5,"jitter":0.1},{"server":1,"kind":"util","start_min":20,"end_min":90,"bias":-0.3}]}`))
	f.Add([]byte(`{"domains":[{"kind":"rack","index":0,"at_min":5}]}`))
	f.Add([]byte(`{"topology":{"servers_per_rack":4,"racks_per_row":3,"rows_per_zone":2},"domains":[{"kind":"pdu","index":0,"at_min":5}]}`))
	f.Add([]byte(`{"topology":{"servers_per_rack":0,"racks_per_row":3,"rows_per_zone":2}}`))
	f.Add([]byte(`{"byzantine":[{"server":0,"kind":"melt","start_min":10,"bias":7}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var p Plan
		if err := dec.Decode(&p); err != nil {
			return // malformed JSON is rejected, never panics
		}
		if err := p.Validate(); err != nil {
			return // invalid plans are rejected, never panic
		}
		// Valid plans round-trip bit-identically.
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("valid plan failed to encode: %v", err)
		}
		dec2 := json.NewDecoder(bytes.NewReader(b))
		dec2.DisallowUnknownFields()
		var q Plan
		if err := dec2.Decode(&q); err != nil {
			t.Fatalf("re-decoding a valid plan: %v", err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("round trip invalidated the plan: %v", err)
		}
		// Canonical-form fixpoint: the re-encoded plan must match the
		// first encoding byte for byte — the property the run-cache key
		// depends on. (DeepEqual is too strict here: an explicit empty
		// JSON array decodes to an empty slice that omitempty then
		// drops, a semantic no-op.)
		b2, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("canonical form unstable:\n first: %s\nsecond: %s", b, b2)
		}
	})
}
