package thermal

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"vmt/internal/pcm"
)

// FuzzReadFleetState drives the fleet snapshot decoder with arbitrary
// input (the FuzzReadWindows pattern, applied to the SoA store's
// serialization boundary). The decoder must never panic; anything it
// accepts must satisfy the Validate invariants, survive a
// Encode → ReadFleetState round trip as a fixpoint, and restore
// cleanly into a matching fleet.
func FuzzReadFleetState(f *testing.F) {
	// Seed with real writer output from a stepped fleet plus edge
	// shapes; the committed corpus under testdata/fuzz mirrors these.
	fl, err := NewFleet(2)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fl.Init(i, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := fl.StepRange(0, 2, []float64{450, 100}, time.Minute); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fl.CaptureState().Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"v":1,"n":0}`)
	f.Add(`{"v":1,"n":1}` + "\n" + `{"id":0,"air_c":22,"wax_h_j":1.5e8,"wax_t_c":22,"melt":0.5,"inlet_c":22,"input_j":0,"eject_j":0,"stored_j":0}`)
	f.Add(`{"v":2,"n":0}`)
	f.Add(`{"v":1,"n":3}` + "\n" + `{"id":0}`)
	f.Add(`{"v":1,"n":1}` + "\n" + `{"id":0,"melt":1.5}`)
	f.Add(`{"v":1,"n":1}` + "\n" + `{"id":0,"air_c":1e999}`)
	f.Add(`{"v":1,"n":0} trailing`)
	f.Add(`{not json}`)

	f.Fuzz(func(t *testing.T, input string) {
		st, err := ReadFleetState(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("accepted state violates invariants: %v", err)
		}
		// Fixpoint: re-encode and decode again; the decoder must accept
		// its own writer's output and reproduce the state exactly
		// (floats round-trip via shortest representation).
		var out bytes.Buffer
		if err := st.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		again, err := ReadFleetState(&out)
		if err != nil {
			t.Fatalf("decode of re-encoded state failed: %v", err)
		}
		if again.N != st.N || len(again.Records) != len(st.Records) {
			t.Fatalf("round trip changed size: %d/%d -> %d/%d",
				st.N, len(st.Records), again.N, len(again.Records))
		}
		for i := range st.Records {
			if !recordsBitEqual(st.Records[i], again.Records[i]) {
				t.Fatalf("record %d changed in round trip: %+v -> %+v",
					i, st.Records[i], again.Records[i])
			}
		}
	})
}

// recordsBitEqual compares two records with bit equality on every
// float (struct equality would conflate 0 and -0 and trip on NaN,
// which Validate already excludes — bit equality states the fixpoint
// property directly).
func recordsBitEqual(a, b ServerRecord) bool {
	if a.ID != b.ID {
		return false
	}
	av := [...]float64{a.AirC, a.WaxHJ, a.WaxTC, a.Melt, a.InletC, a.InputJ, a.EjectJ, a.StoredJ}
	bv := [...]float64{b.AirC, b.WaxHJ, b.WaxTC, b.Melt, b.InletC, b.InputJ, b.EjectJ, b.StoredJ}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}
