// Package thermal implements the per-server lumped-parameter thermal
// model of the VMT reproduction: CPU power drives the air temperature
// at the wax through a first-order airflow node, the wax exchanges
// heat with that air, and whatever is not stored in the wax is ejected
// to the machine room as cooling load.
//
// The original study calibrated a CFD model of a physical test server
// and reduced it to per-server parameters for the DCsim event
// simulator. This package is that reduced model: an air node with heat
// capacity CAir coupled to the inlet through conductance KAir and to
// the wax pack through conductance HWax,
//
//	CAir·dTair/dt = P − KAir·(Tair − Tinlet) − HWax·(Tair − Twax)
//
// with the wax pack handling sensible/latent storage (package pcm).
// The instantaneous cooling load presented to the room is
// KAir·(Tair − Tinlet); heat stored in the wax is deferred load.
//
// Units: °C, W, J; time via time.Duration.
package thermal

import (
	"fmt"
	"time"

	"vmt/internal/workload"
)

// ServerSpec describes the simulated 2U server: a Sun Fire X4470
// chassis populated with four 8-core Xeon E7-4809 v4 CPUs, 100 W idle,
// 500 W peak, and 4.0 liters of wax behind the CPU heat sinks
// (Section IV-A), plus the reduced thermal-model parameters.
type ServerSpec struct {
	// CPUs and CoresPerCPU define the socket layout (4 × 8).
	CPUs        int
	CoresPerCPU int
	// IdlePowerW is drawn with no jobs placed; PeakPowerW caps the
	// total draw (the linear per-core model saturates there).
	IdlePowerW float64
	PeakPowerW float64
	// PowerScale converts Table I CPU-only per-core wattages into
	// attributable server dynamic power (memory, VRM, and fan power
	// scale with core activity). Calibrated so a round-robin cluster
	// under the two-day trace peaks just below the wax melting point,
	// the paper's qualitative anchor for "TTS alone cannot melt wax".
	PowerScale float64
	// AirConductanceWPerK (KAir) couples the air node to the inlet:
	// steady-state air temperature is Tinlet + P/KAir when the wax is
	// in equilibrium.
	AirConductanceWPerK float64
	// WaxConductanceWPerK (HWax) couples the air node to the wax pack
	// through the aluminum container surfaces.
	WaxConductanceWPerK float64
	// AirTimeConstant sets the air/chassis thermal lag; the node's
	// heat capacity is (KAir+HWax)·AirTimeConstant.
	AirTimeConstant time.Duration
	// WaxVolumeL is the deployed PCM volume (4.0 L per the CFD-derived
	// limit in the TTS paper).
	WaxVolumeL float64
	// SubStep is the internal integration step; model updates longer
	// than SubStep are subdivided for numerical stability.
	SubStep time.Duration
	// CPUThermalResistanceKPerW converts per-socket power into the die
	// temperature rise above the local air (junction-to-air through
	// the heat sink); CPULimitC is the throttling threshold. The CFD
	// study behind the 4.0 L wax figure verified CPU limits are not
	// exceeded — these two fields let the simulation re-check that
	// constraint under VMT's concentrated placement.
	CPUThermalResistanceKPerW float64
	CPULimitC                 float64
}

// PaperServer returns the calibrated specification used throughout the
// reproduction.
func PaperServer() ServerSpec {
	return ServerSpec{
		CPUs:                4,
		CoresPerCPU:         workload.CoresPerCPU,
		IdlePowerW:          100,
		PeakPowerW:          500,
		PowerScale:          1.5,
		AirConductanceWPerK: 22.35,
		WaxConductanceWPerK: 96,
		AirTimeConstant:     5 * time.Minute,
		WaxVolumeL:          4.0,
		SubStep:             10 * time.Second,
		// 0.25 K/W junction-to-air for a 2U heat sink; Xeon E7 Tcase
		// limits are low 80s °C.
		CPUThermalResistanceKPerW: 0.25,
		CPULimitC:                 85,
	}
}

// Cores returns the total core count (32 for the paper server).
func (s ServerSpec) Cores() int { return s.CPUs * s.CoresPerCPU }

// Validate reports whether the spec is physically sensible.
func (s ServerSpec) Validate() error {
	switch {
	case s.CPUs <= 0 || s.CoresPerCPU <= 0:
		return fmt.Errorf("thermal: need positive socket/core counts")
	case s.IdlePowerW < 0 || s.PeakPowerW <= s.IdlePowerW:
		return fmt.Errorf("thermal: need 0 <= idle < peak power, got %v/%v",
			s.IdlePowerW, s.PeakPowerW)
	case s.PowerScale <= 0:
		return fmt.Errorf("thermal: power scale must be positive")
	case s.AirConductanceWPerK <= 0 || s.WaxConductanceWPerK <= 0:
		return fmt.Errorf("thermal: conductances must be positive")
	case s.AirTimeConstant <= 0:
		return fmt.Errorf("thermal: air time constant must be positive")
	case s.WaxVolumeL <= 0:
		return fmt.Errorf("thermal: wax volume must be positive")
	case s.SubStep <= 0:
		return fmt.Errorf("thermal: substep must be positive")
	case s.CPUThermalResistanceKPerW < 0:
		return fmt.Errorf("thermal: negative CPU thermal resistance")
	}
	return nil
}

// CPUTempC estimates the hottest die temperature for a server drawing
// powerW with air at airTempC: the per-socket share of dynamic power
// through the junction-to-air resistance, above the local air.
func (s ServerSpec) CPUTempC(powerW, airTempC float64) float64 {
	dynamic := powerW - s.IdlePowerW
	if dynamic < 0 {
		dynamic = 0
	}
	perSocket := dynamic / float64(s.CPUs)
	return airTempC + perSocket*s.CPUThermalResistanceKPerW
}

// WouldThrottle reports whether that estimate exceeds the CPU limit.
func (s ServerSpec) WouldThrottle(powerW, airTempC float64) bool {
	return s.CPULimitC > 0 && s.CPUTempC(powerW, airTempC) > s.CPULimitC
}

// AirHeatCapacityJPerK returns the air/chassis node heat capacity
// implied by the configured time constant.
func (s ServerSpec) AirHeatCapacityJPerK() float64 {
	return (s.AirConductanceWPerK + s.WaxConductanceWPerK) * s.AirTimeConstant.Seconds()
}

// SteadyAirTempC returns the equilibrium air temperature for a given
// power draw once the wax has fully equilibrated (no net wax flow).
func (s ServerSpec) SteadyAirTempC(powerW, inletC float64) float64 {
	return inletC + powerW/s.AirConductanceWPerK
}
