package thermal

import (
	"fmt"
	"time"

	"vmt/internal/pcm"
)

// Node is the thermal state of one server: the air/chassis node plus
// the wax pack. Step advances the coupled system under a given power
// draw and reports the cooling load ejected to the room.
type Node struct {
	spec   ServerSpec
	inletC float64
	airC   float64
	pack   *pcm.Pack
	// cumulative energy accounting, used by conservation tests and
	// the cooling metrics
	inputJ  float64
	ejectJ  float64
	storedJ float64
}

// NewNode builds a node at thermal equilibrium with its inlet air: the
// air node and wax both start at inletC (fully solid wax, assuming the
// inlet is below the melting point, as in every scenario of the
// paper).
func NewNode(spec ServerSpec, mat pcm.Material, inletC float64) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pack, err := pcm.NewPack(mat, spec.WaxVolumeL, inletC)
	if err != nil {
		return nil, err
	}
	return &Node{spec: spec, inletC: inletC, airC: inletC, pack: pack}, nil
}

// Spec returns the node's server specification.
func (n *Node) Spec() ServerSpec { return n.spec }

// InletTempC returns the configured inlet temperature.
func (n *Node) InletTempC() float64 { return n.inletC }

// SetInletTempC overrides the inlet temperature (used by the inlet
// variation experiments, Figures 19–20).
func (n *Node) SetInletTempC(c float64) { n.inletC = c }

// AirTempC returns the current air temperature at the wax.
func (n *Node) AirTempC() float64 { return n.airC }

// WaxTempC returns the current wax temperature.
func (n *Node) WaxTempC() float64 { return n.pack.TempC() }

// MeltFrac returns the wax melt fraction in [0,1].
func (n *Node) MeltFrac() float64 { return n.pack.MeltFrac() }

// Pack exposes the wax pack (read-mostly; used by reporting).
func (n *Node) Pack() *pcm.Pack { return n.pack }

// StepResult reports the outcome of one Step.
type StepResult struct {
	// AirTempC and WaxTempC are the post-step temperatures.
	AirTempC, WaxTempC float64
	// MeltFrac is the post-step wax melt fraction.
	MeltFrac float64
	// CoolingLoadW is the mean heat flow ejected to the room over the
	// step: the quantity the datacenter cooling system must remove.
	CoolingLoadW float64
	// WaxFlowW is the mean heat flow into the wax over the step
	// (negative while the wax releases stored heat).
	WaxFlowW float64
}

// Step advances the node by dt under a constant power draw powerW.
// The step is internally subdivided per the spec's SubStep; each
// substep conserves energy exactly:
//
//	P·dt = CAir·ΔTair + KAir·(Tair−Tin)·dt + HWax·(Tair−Twax)·dt
func (n *Node) Step(powerW float64, dt time.Duration) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("thermal: non-positive step %v", dt)
	}
	if powerW < 0 {
		return StepResult{}, fmt.Errorf("thermal: negative power %v", powerW)
	}
	var ejected, stored float64
	remaining := dt
	cAir := n.spec.AirHeatCapacityJPerK()
	for remaining > 0 {
		h := n.spec.SubStep
		if h > remaining {
			h = remaining
		}
		sec := h.Seconds()
		toRoom := n.spec.AirConductanceWPerK * (n.airC - n.inletC)
		toWax := n.spec.WaxConductanceWPerK * (n.airC - n.pack.TempC())
		n.airC += sec * (powerW - toRoom - toWax) / cAir
		n.pack.Apply(toWax, h)
		ejected += toRoom * sec
		stored += toWax * sec
		remaining -= h
	}
	sec := dt.Seconds()
	n.inputJ += powerW * sec
	n.ejectJ += ejected
	n.storedJ += stored
	return StepResult{
		AirTempC:     n.airC,
		WaxTempC:     n.pack.TempC(),
		MeltFrac:     n.pack.MeltFrac(),
		CoolingLoadW: ejected / sec,
		WaxFlowW:     stored / sec,
	}, nil
}

// EnergyLedger reports cumulative energy totals since construction.
type EnergyLedger struct {
	InputJ, EjectedJ, WaxStoredJ float64
}

// Ledger returns the node's cumulative energy accounting.
func (n *Node) Ledger() EnergyLedger {
	return EnergyLedger{InputJ: n.inputJ, EjectedJ: n.ejectJ, WaxStoredJ: n.storedJ}
}

// AirEnergyJ returns the energy held by the air node relative to the
// inlet temperature — the remainder term in the conservation balance.
func (n *Node) AirEnergyJ() float64 {
	return n.spec.AirHeatCapacityJPerK() * (n.airC - n.inletC)
}
