package thermal

import (
	"fmt"
	"math"
	"time"

	"vmt/internal/pcm"
)

// Node is the thermal state of one server: the air/chassis node plus
// the wax pack. Step advances the coupled system under a given power
// draw and reports the cooling load ejected to the room.
type Node struct {
	spec   ServerSpec
	inletC float64
	airC   float64
	pack   *pcm.Pack
	// cAirJPerK caches spec.AirHeatCapacityJPerK(): the spec is
	// immutable after construction and the method (with its value
	// receiver copy) would otherwise run once per Step call.
	// invCAirPerJK is its reciprocal, so the substep loop multiplies
	// instead of divides.
	cAirJPerK    float64
	invCAirPerJK float64
	// curve caches the pack's enthalpy-curve segment parameters so the
	// substep loop can inline the temperature projection (the same
	// switch commitWax and the fleet kernels use) instead of calling
	// through the pack.
	curve pcm.CurveParams
	// cumulative energy accounting, used by conservation tests and
	// the cooling metrics
	inputJ  float64
	ejectJ  float64
	storedJ float64

	// Step-transition memo. The substep loop is a pure function of
	// (air temperature, wax enthalpy, power, dt) — plus the inlet and
	// spec, which are fixed between SetInletTempC calls — so a step
	// whose pre-state and inputs exactly match a memoized transition
	// replays the memoized outcome bit-identically without
	// integrating. Two slots (round-robin) cover both a true
	// floating-point fixed point and the period-2 last-ulp limit
	// cycles a settled air node falls into; long stretches of steady
	// load (cold-group servers over a diurnal trace) then cost a few
	// additions per tick. SetInletTempC invalidates the memo.
	memo     [2]stepMemo
	memoNext int
}

// stepMemo is one recorded step transition (see Node.memo). Keys are
// stored as raw IEEE-754 bit patterns and matched with integer
// equality: a memo hit must mean "the loop would recompute exactly
// this state", and bit equality is that predicate stated directly —
// no float comparison, no tolerance, nothing for the floateq analyzer
// to flag. (Bit matching is stricter than float == only at ±0, where
// a miss merely recomputes the identical result.) valid is the
// explicit unset marker; a zero-valued slot is never consulted.
type stepMemo struct {
	valid    bool
	airBits  uint64
	waxHBits uint64
	powBits  uint64
	dt       time.Duration
	postAirC float64
	postWaxH float64
	res      StepResult
	ejectJ   float64
	storedJ  float64
	inputJ   float64
}

// NewNode builds a node at thermal equilibrium with its inlet air: the
// air node and wax both start at inletC (fully solid wax, assuming the
// inlet is below the melting point, as in every scenario of the
// paper).
func NewNode(spec ServerSpec, mat pcm.Material, inletC float64) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pack, err := pcm.NewPack(mat, spec.WaxVolumeL, inletC)
	if err != nil {
		return nil, err
	}
	curve, err := pcm.CurveParamsFor(mat, spec.WaxVolumeL)
	if err != nil {
		return nil, err
	}
	cAir := spec.AirHeatCapacityJPerK()
	return &Node{
		spec:         spec,
		inletC:       inletC,
		airC:         inletC,
		pack:         pack,
		curve:        curve,
		cAirJPerK:    cAir,
		invCAirPerJK: 1 / cAir,
	}, nil
}

// Spec returns the node's server specification.
func (n *Node) Spec() ServerSpec { return n.spec }

// InletTempC returns the configured inlet temperature.
func (n *Node) InletTempC() float64 { return n.inletC }

// SetInletTempC overrides the inlet temperature (used by the inlet
// variation experiments, Figures 19–20).
func (n *Node) SetInletTempC(c float64) {
	n.inletC = c
	n.memo[0].valid = false
	n.memo[1].valid = false
}

// AirTempC returns the current air temperature at the wax.
func (n *Node) AirTempC() float64 { return n.airC }

// WaxTempC returns the current wax temperature.
func (n *Node) WaxTempC() float64 { return n.pack.TempC() }

// MeltFrac returns the wax melt fraction in [0,1].
func (n *Node) MeltFrac() float64 { return n.pack.MeltFrac() }

// Pack exposes the wax pack (read-mostly; used by reporting).
func (n *Node) Pack() *pcm.Pack { return n.pack }

// StepResult reports the outcome of one Step.
type StepResult struct {
	// AirTempC and WaxTempC are the post-step temperatures.
	AirTempC, WaxTempC float64
	// MeltFrac is the post-step wax melt fraction.
	MeltFrac float64
	// CoolingLoadW is the mean heat flow ejected to the room over the
	// step: the quantity the datacenter cooling system must remove.
	CoolingLoadW float64
	// WaxFlowW is the mean heat flow into the wax over the step
	// (negative while the wax releases stored heat).
	WaxFlowW float64
}

// Step advances the node by dt under a constant power draw powerW.
// The step is internally subdivided per the spec's SubStep; each
// substep conserves energy exactly:
//
//	P·dt = CAir·ΔTair + KAir·(Tair−Tin)·dt + HWax·(Tair−Twax)·dt
//
// Step is the scalar oracle the fleet kernels (StepRange, stepGroup)
// must reproduce bit for bit; the kernelparity analyzer verifies their
// substep bodies against the regions marked below.
//
//vmt:hotpath
func (n *Node) Step(powerW float64, dt time.Duration) (StepResult, error) {
	if dt <= 0 {
		return StepResult{}, fmt.Errorf("thermal: non-positive step %v", dt) //vmtlint:allow hotpath error path, off the steady-state path
	}
	if powerW < 0 {
		return StepResult{}, fmt.Errorf("thermal: negative power %v", powerW) //vmtlint:allow hotpath error path, off the steady-state path
	}
	pack := n.pack
	waxH, waxT := pack.IntegratorState()
	airC0, waxH0 := n.airC, waxH
	airBits0 := math.Float64bits(airC0)
	waxHBits0 := math.Float64bits(waxH0)
	powBits := math.Float64bits(powerW)
	for i := range n.memo {
		m := &n.memo[i]
		if m.valid && m.airBits == airBits0 && m.waxHBits == waxHBits0 &&
			m.powBits == powBits && m.dt == dt {
			// Exact pre-state and inputs: the full loop would recompute
			// exactly the memoized outcome.
			n.airC = m.postAirC
			pack.SetEnthalpyJ(m.postWaxH)
			n.inputJ += m.inputJ
			n.ejectJ += m.ejectJ
			n.storedJ += m.storedJ
			return m.res, nil
		}
	}
	// Invariant quantities are hoisted out of the substep loop and the
	// wax pack is advanced on locals (enthalpy plus its temperature
	// projection), committed once after the loop; the per-substep
	// arithmetic (and therefore every float result) is unchanged from
	// the straightforward form it replaces.
	var ejected, stored float64
	invCAir := n.invCAirPerJK
	kAir := n.spec.AirConductanceWPerK
	hWax := n.spec.WaxConductanceWPerK
	inlet := n.inletC
	airC := airC0
	sub := n.spec.SubStep
	subSec := sub.Seconds()
	mC := n.curve.MeltC
	hLo := n.curve.HMeltLoJ
	hHi := n.curve.HMeltHiJ
	invSol := n.curve.InvCapSolidJPerK
	invLiq := n.curve.InvCapLiquidJPerK
	// Counted loop over the full substeps plus one explicit trailing
	// partial: the same sequence of substep lengths the countdown form
	// produced, without per-iteration duration bookkeeping.
	nFull := int(dt / sub)
	partial := dt - time.Duration(nFull)*sub
	for i := 0; i < nFull; i++ {
		//vmt:kernel substep oracle begin
		toRoom := kAir * (airC - inlet)
		toWax := hWax * (airC - waxT)
		airC += subSec * (powerW - toRoom - toWax) * invCAir
		waxH += toWax * subSec
		// curve.TempAt, inlined on the hoisted segment parameters.
		switch {
		case waxH < hLo:
			waxT = waxH * invSol
		case waxH >= hHi:
			waxT = mC + (waxH-hHi)*invLiq
		default:
			waxT = mC
		}
		ejected += toRoom * subSec
		stored += toWax * subSec
		//vmt:kernel end
	}
	if partial > 0 {
		sec := partial.Seconds()
		//vmt:kernel substep-tail oracle begin
		toRoom := kAir * (airC - inlet)
		toWax := hWax * (airC - waxT)
		airC += sec * (powerW - toRoom - toWax) * invCAir
		waxH += toWax * sec
		ejected += toRoom * sec
		stored += toWax * sec
		//vmt:kernel end
	}
	pack.SetEnthalpyJ(waxH)
	n.airC = airC
	sec := dt.Seconds()
	inputJ := powerW * sec
	n.inputJ += inputJ
	n.ejectJ += ejected
	n.storedJ += stored
	res := StepResult{
		AirTempC:     n.airC,
		WaxTempC:     n.pack.TempC(),
		MeltFrac:     n.pack.MeltFrac(),
		CoolingLoadW: ejected / sec,
		WaxFlowW:     stored / sec,
	}
	// Memoize only transitions whose wax enthalpy stayed put: while the
	// wax is actively charging or discharging the pre-state can never
	// recur, so recording those steps would pay the copy for no future
	// hit. A stationary wax (enthalpy bit pattern unchanged) covers
	// both the true fixed point and the last-ulp air limit cycles.
	if math.Float64bits(waxH) == waxHBits0 {
		m := &n.memo[n.memoNext]
		m.valid = true
		m.airBits = airBits0
		m.waxHBits = waxHBits0
		m.powBits = powBits
		m.dt = dt
		m.postAirC = airC
		m.postWaxH = waxH
		m.res = res
		m.ejectJ = ejected
		m.storedJ = stored
		m.inputJ = inputJ
		n.memoNext = 1 - n.memoNext
	}
	return res, nil
}

// EnergyLedger reports cumulative energy totals since construction.
type EnergyLedger struct {
	InputJ, EjectedJ, WaxStoredJ float64
}

// Ledger returns the node's cumulative energy accounting.
func (n *Node) Ledger() EnergyLedger {
	return EnergyLedger{InputJ: n.inputJ, EjectedJ: n.ejectJ, WaxStoredJ: n.storedJ}
}

// AirEnergyJ returns the energy held by the air node relative to the
// inlet temperature — the remainder term in the conservation balance.
func (n *Node) AirEnergyJ() float64 {
	return n.cAirJPerK * (n.airC - n.inletC)
}
