package thermal

import (
	"testing"
	"time"

	"vmt/internal/pcm"
)

// BenchmarkNodeStep measures one server-minute of thermal simulation —
// the inner loop of every cluster experiment (a 1,000-server two-day
// run executes 2.88M of these).
func BenchmarkNodeStep(b *testing.B) {
	n, err := NewNode(PaperServer(), pcm.CommercialParaffin(), 22)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Step(300, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeStepSettled measures the memoized steady-state path:
// after the node equilibrates under constant power, repeated identical
// steps replay a recorded transition instead of integrating substeps.
// Cold-group servers spend most of a diurnal trace here.
func BenchmarkNodeStepSettled(b *testing.B) {
	n, err := NewNode(PaperServer(), pcm.CommercialParaffin(), 22)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if _, err := n.Step(150, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Step(150, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeStepMelting(b *testing.B) {
	n, err := NewNode(PaperServer(), pcm.CommercialParaffin(), 22)
	if err != nil {
		b.Fatal(err)
	}
	// Warm into the melting regime first.
	for i := 0; i < 120; i++ {
		if _, err := n.Step(400, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate to stay near the phase boundary.
		p := 400.0
		if i%2 == 1 {
			p = 150
		}
		if _, err := n.Step(p, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}
