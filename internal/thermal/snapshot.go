package thermal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Fleet state snapshots: the serialization boundary of the
// struct-of-arrays store. A snapshot is NDJSON — one header line
// followed by one line per server in strictly increasing ID order —
// the same stream shape the telemetry fleet log uses, so the tooling
// that replays those logs can replay these. Snapshots carry the
// integrated state and ledgers only; spec and material parameters are
// construction-time inputs and must already be loaded (via Init) on
// the fleet a snapshot is restored into.
//
// Floats round-trip exactly: encoding/json emits the shortest
// representation that parses back to the identical float64, so a
// capture → write → read → restore cycle reproduces fleet state bit
// for bit (the fuzz harness pins this as a fixpoint property).

// SnapshotVersion is the format version written in the header line.
const SnapshotVersion = 1

// FleetHeader is the first line of a fleet snapshot stream.
type FleetHeader struct {
	V int `json:"v"`
	N int `json:"n"`
}

// ServerRecord is one server's integrated state and ledgers.
type ServerRecord struct {
	ID int `json:"id"`
	// AirC is the air-node temperature; WaxHJ the pack enthalpy with
	// WaxTC and Melt its cached projections — carried verbatim rather
	// than recomputed on restore, because immediately after Init the
	// cached temperature is the inlet pinned exactly (Pack.Reset
	// semantics), not the round-tripped projection of the enthalpy.
	AirC   float64 `json:"air_c"`
	WaxHJ  float64 `json:"wax_h_j"`
	WaxTC  float64 `json:"wax_t_c"`
	Melt   float64 `json:"melt"`
	InletC float64 `json:"inlet_c"`
	// Cumulative energy ledgers.
	InputJ  float64 `json:"input_j"`
	EjectJ  float64 `json:"eject_j"`
	StoredJ float64 `json:"stored_j"`
}

// FleetState is a decoded snapshot: a header plus one record per
// server, Records[i].ID == i.
type FleetState struct {
	N       int
	Records []ServerRecord
}

// CaptureState copies the fleet's integrated state into a FleetState.
func (f *Fleet) CaptureState() *FleetState {
	st := &FleetState{N: f.n, Records: make([]ServerRecord, f.n)}
	for i := 0; i < f.n; i++ {
		st.Records[i] = ServerRecord{
			ID:      i,
			AirC:    f.airC[i],
			WaxHJ:   f.waxHJ[i],
			WaxTC:   f.waxTC[i],
			Melt:    f.meltFrac[i],
			InletC:  f.inletC[i],
			InputJ:  f.inputJ[i],
			EjectJ:  f.ejectJ[i],
			StoredJ: f.storedJ[i],
		}
	}
	return st
}

// RestoreState loads a captured state into the fleet. The fleet must
// be fully initialized and the same size as the snapshot. Step memos
// and settled flags are cleared — the restored pre-state may not match
// whatever transition a slot recorded — and the per-step outputs reset
// to zero until the next step.
func (f *Fleet) RestoreState(st *FleetState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if st.N != f.n {
		return fmt.Errorf("thermal: snapshot holds %d servers, fleet has %d", st.N, f.n)
	}
	if !f.Initialized() {
		return fmt.Errorf("thermal: cannot restore into an uninitialized fleet")
	}
	for i, r := range st.Records {
		f.airC[i] = r.AirC
		f.waxHJ[i] = r.WaxHJ
		f.waxTC[i] = r.WaxTC
		f.meltFrac[i] = r.Melt
		f.inletC[i] = r.InletC
		f.inputJ[i] = r.InputJ
		f.ejectJ[i] = r.EjectJ
		f.storedJ[i] = r.StoredJ
		f.coolingW[i] = 0
		f.waxFlowW[i] = 0
		f.settled[i] = false
		f.memo[i] = memoPair{}
	}
	return nil
}

// Validate checks the snapshot invariants the writer guarantees:
// record count matches the header, IDs are dense and in order, every
// float is finite, and melt fractions lie in [0,1].
func (st *FleetState) Validate() error {
	if st.N < 0 {
		return fmt.Errorf("thermal: snapshot header n %d negative", st.N)
	}
	if len(st.Records) != st.N {
		return fmt.Errorf("thermal: snapshot header n %d but %d records", st.N, len(st.Records))
	}
	for i, r := range st.Records {
		if r.ID != i {
			return fmt.Errorf("thermal: snapshot record %d has id %d (want dense ascending)", i, r.ID)
		}
		for _, v := range [...]float64{r.AirC, r.WaxHJ, r.WaxTC, r.Melt, r.InletC, r.InputJ, r.EjectJ, r.StoredJ} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("thermal: snapshot record %d holds non-finite value", i)
			}
		}
		if r.Melt < 0 || r.Melt > 1 {
			return fmt.Errorf("thermal: snapshot record %d melt fraction %v outside [0,1]", i, r.Melt)
		}
	}
	return nil
}

// Encode serializes the state as NDJSON: the header line, then one
// record line per server. (Named Encode rather than WriteTo to avoid
// colliding with the io.WriterTo signature convention.)
func (st *FleetState) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(FleetHeader{V: SnapshotVersion, N: st.N}); err != nil {
		return fmt.Errorf("thermal: snapshot header: %w", err)
	}
	for i := range st.Records {
		if err := enc.Encode(&st.Records[i]); err != nil {
			return fmt.Errorf("thermal: snapshot record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("thermal: snapshot flush: %w", err)
	}
	return nil
}

// ReadFleetState decodes and validates a snapshot stream. Anything it
// accepts satisfies the Validate invariants and survives a
// Encode → ReadFleetState round trip unchanged.
func ReadFleetState(r io.Reader) (*FleetState, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	var hdr FleetHeader
	haveHeader := false
	st := &FleetState{}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !haveHeader {
			if err := decodeLine(line, &hdr); err != nil {
				return nil, fmt.Errorf("thermal: snapshot line %d: %w", lineNo, err)
			}
			if hdr.V != SnapshotVersion {
				return nil, fmt.Errorf("thermal: snapshot line %d: unsupported version %d", lineNo, hdr.V)
			}
			st.N = hdr.N
			haveHeader = true
			continue
		}
		var rec ServerRecord
		if err := decodeLine(line, &rec); err != nil {
			return nil, fmt.Errorf("thermal: snapshot line %d: %w", lineNo, err)
		}
		st.Records = append(st.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("thermal: snapshot: %w", err)
	}
	if !haveHeader {
		return nil, fmt.Errorf("thermal: snapshot missing header line")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// decodeLine decodes one NDJSON line into v, rejecting trailing data
// after the JSON value.
func decodeLine(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after value")
	}
	return nil
}
