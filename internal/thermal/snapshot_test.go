package thermal

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"vmt/internal/pcm"
)

// TestSnapshotRoundTripBitIdentical: stepping a fleet 60 ticks, then
// capturing → serializing → restoring into a second identically built
// fleet and stepping both another 60 ticks, must keep the two fleets
// bit-identical throughout — snapshots are a checkpoint, not an
// approximation.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	const n = 8
	a := newTestFleet(t, n)
	power := make([]float64, n)
	for i := range power {
		power[i] = 100 + 50*float64(i%5)
	}
	for step := 0; step < 60; step++ {
		if _, err := a.StepRange(0, n, power, time.Minute); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := a.CaptureState().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadFleetState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b := newTestFleet(t, n)
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if math.Float64bits(a.waxHJ[i]) != math.Float64bits(b.waxHJ[i]) ||
			math.Float64bits(a.AirTempC(i)) != math.Float64bits(b.AirTempC(i)) ||
			math.Float64bits(a.WaxTempC(i)) != math.Float64bits(b.WaxTempC(i)) ||
			math.Float64bits(a.MeltFrac(i)) != math.Float64bits(b.MeltFrac(i)) {
			t.Fatalf("server %d: restored state differs from captured", i)
		}
	}
	for step := 0; step < 60; step++ {
		power[step%n] = 100 + float64(step%4)*100
		if _, err := a.StepRange(0, n, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		if _, err := b.StepRange(0, n, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(a.waxHJ[i]) != math.Float64bits(b.waxHJ[i]) ||
				math.Float64bits(a.AirTempC(i)) != math.Float64bits(b.AirTempC(i)) {
				t.Fatalf("step %d server %d: trajectories diverged after restore", step, i)
			}
			la, lb := a.Ledger(i), b.Ledger(i)
			if math.Float64bits(la.InputJ) != math.Float64bits(lb.InputJ) ||
				math.Float64bits(la.EjectedJ) != math.Float64bits(lb.EjectedJ) ||
				math.Float64bits(la.WaxStoredJ) != math.Float64bits(lb.WaxStoredJ) {
				t.Fatalf("step %d server %d: ledgers diverged after restore", step, i)
			}
		}
	}
}

// TestSnapshotPreservesInitVerbatimTemp: a snapshot of a freshly
// initialized fleet must restore the verbatim (non-round-tripped)
// cached wax temperature, not recompute it from the enthalpy.
func TestSnapshotPreservesInitVerbatimTemp(t *testing.T) {
	f := newTestFleet(t, 1)
	var buf bytes.Buffer
	if err := f.CaptureState().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadFleetState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestFleet(t, 1)
	if err := g.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(g.WaxTempC(0)) != math.Float64bits(f.WaxTempC(0)) {
		t.Fatalf("restored wax temp %v != captured %v", g.WaxTempC(0), f.WaxTempC(0))
	}
}

func TestSnapshotRestoreRejectsMismatch(t *testing.T) {
	f := newTestFleet(t, 2)
	st := f.CaptureState()

	big := newTestFleet(t, 3)
	if err := big.RestoreState(st); err == nil {
		t.Error("size mismatch should fail")
	}

	raw, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Init(0, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
		t.Fatal(err)
	}
	if err := raw.RestoreState(st); err == nil {
		t.Error("restore into a partially initialized fleet should fail")
	}
}

func TestSnapshotRestoreClearsMemoAndOutputs(t *testing.T) {
	f := newTestFleet(t, 1)
	power := []float64{150}
	for i := 0; i < 1500; i++ { // bit-exact settling takes ~1000 steps
		if _, err := f.StepRange(0, 1, power, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Settled(0) {
		t.Fatal("server should have settled")
	}
	st := f.CaptureState()
	if err := f.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if f.Settled(0) || f.CoolingLoadW(0) != 0 || f.WaxFlowW(0) != 0 {
		t.Error("restore must clear settled flags and per-step outputs")
	}
	// The next step must integrate (memo cleared), and land on the same
	// state the memo would have replayed — the steady state.
	if _, err := f.StepRange(0, 1, power, time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestReadFleetStateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no header":        `{"id":0,"air_c":22}`,
		"bad version":      `{"v":2,"n":0}`,
		"count mismatch":   `{"v":1,"n":2}` + "\n" + `{"id":0}`,
		"id gap":           `{"v":1,"n":1}` + "\n" + `{"id":1}`,
		"melt below zero":  `{"v":1,"n":1}` + "\n" + `{"id":0,"melt":-0.5}`,
		"melt above one":   `{"v":1,"n":1}` + "\n" + `{"id":0,"melt":1.5}`,
		"negative n":       `{"v":1,"n":-1}`,
		"trailing data":    `{"v":1,"n":0} {"x":1}`,
		"not json":         "not json\n",
		"non-finite float": `{"v":1,"n":1}` + "\n" + `{"id":0,"air_c":1e999}`,
	}
	for name, input := range cases {
		if _, err := ReadFleetState(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadFleetStateAcceptsBlankLines(t *testing.T) {
	input := "\n" + `{"v":1,"n":1}` + "\n\n" +
		`{"id":0,"air_c":22,"wax_h_j":1000,"wax_t_c":22,"melt":0,"inlet_c":22,"input_j":0,"eject_j":0,"stored_j":0}` + "\n\n"
	st, err := ReadFleetState(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 1 || len(st.Records) != 1 || st.Records[0].AirC != 22 {
		t.Fatalf("decoded %+v", st)
	}
}
