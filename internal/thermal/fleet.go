package thermal

import (
	"fmt"
	"math"
	"time"

	"vmt/internal/pcm"
)

// Fleet is the struct-of-arrays thermal state for a whole fleet of
// servers: every per-server scalar the integration kernel touches —
// temperature, enthalpy, inlet, conductances, enthalpy-curve segment
// parameters, energy ledgers, step-transition memos — lives in a flat
// parallel slice indexed by server ID. One Step over a contiguous ID
// range walks those slices in order, so the hot loop streams through
// memory instead of chasing a *Server → *Node → *Pack pointer chain
// per server, and disjoint ranges can be advanced concurrently with no
// sharing at all.
//
// Fleet is the production implementation of the physics; the scalar
// Node is retained, untouched, as the reference implementation. The
// two advance state with textually identical arithmetic (same
// expressions, same evaluation order), and the differential oracle
// test drives both over randomized fleets demanding bit-identical
// trajectories via math.Float64bits. Any intentional change to the
// kernel must be made to both in lockstep.
//
// Concurrency: StepRange calls over disjoint ranges touch disjoint
// slice elements only, so they may run on separate goroutines.
// Everything else (accessors, SetInletTempC, Restore) must not overlap
// a StepRange.
type Fleet struct {
	n int

	// Integrated state. waxTC and meltFrac are cached projections of
	// waxHJ through the per-server curve segments, refreshed on every
	// state change — except that initialization pins waxTC verbatim to
	// the inlet temperature, exactly as Pack.Reset does, so initial
	// states match the scalar path bit for bit.
	airC     []float64
	waxHJ    []float64
	waxTC    []float64
	meltFrac []float64
	inletC   []float64

	// Per-server spec parameters (hoisted once at Init, the way Node
	// caches them at construction). Indexed per server so heterogeneous
	// fleets are just different values in the slices.
	kAir    []float64 // AirConductanceWPerK
	hWax    []float64 // WaxConductanceWPerK
	cAir    []float64 // air heat capacity (J/K)
	invCAir []float64 // 1/cAir
	subStep []time.Duration
	subSec  []float64 // subStep in seconds, precomputed

	// Per-server enthalpy-curve segment parameters (see pcm.CurveParams).
	meltC     []float64
	hMeltLo   []float64
	hMeltHi   []float64
	invCapSol []float64
	invCapLiq []float64
	capSol    []float64
	latentJ   []float64

	// Cumulative energy ledgers (conservation tests, cooling metrics).
	inputJ  []float64
	ejectJ  []float64
	storedJ []float64

	// Per-step outputs, overwritten by each StepRange: the mean heat
	// flows over the last step (the StepResult fields that are not
	// state projections).
	coolingW []float64
	waxFlowW []float64

	// settled marks servers whose last step replayed a memoized
	// transition — the fleet's steady-state fraction, exposed for
	// telemetry. Purely observational.
	settled []bool

	// memo holds each server's two-slot step-transition memo (the
	// vectorized form of Node.memo): keys are raw IEEE-754 bit
	// patterns matched with integer equality, valid is the explicit
	// unset marker. A hit replays the recorded post-state and ledger
	// deltas bit-identically; everything derivable (projections,
	// mean flows, input energy) is recomputed from the same pure
	// functions that produced it, so nothing redundant is stored.
	memo []memoPair

	// Construction records, kept for snapshots and accessors.
	specs []ServerSpec
	mats  []pcm.Material
	init  []bool
}

// memoSlot is one recorded step transition of one server.
type memoSlot struct {
	valid    bool
	airBits  uint64
	waxHBits uint64
	powBits  uint64
	dt       time.Duration
	postAirC float64
	postWaxH float64
	ejectJ   float64
	storedJ  float64
}

// memoPair is a server's two-slot round-robin memo.
type memoPair struct {
	slot [2]memoSlot
	next uint8
}

// NewFleet allocates a store for n servers. Every server must be
// initialized with Init before the fleet can step.
func NewFleet(n int) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("thermal: need a positive fleet size, got %d", n)
	}
	return &Fleet{
		n:         n,
		airC:      make([]float64, n),
		waxHJ:     make([]float64, n),
		waxTC:     make([]float64, n),
		meltFrac:  make([]float64, n),
		inletC:    make([]float64, n),
		kAir:      make([]float64, n),
		hWax:      make([]float64, n),
		cAir:      make([]float64, n),
		invCAir:   make([]float64, n),
		subStep:   make([]time.Duration, n),
		subSec:    make([]float64, n),
		meltC:     make([]float64, n),
		hMeltLo:   make([]float64, n),
		hMeltHi:   make([]float64, n),
		invCapSol: make([]float64, n),
		invCapLiq: make([]float64, n),
		capSol:    make([]float64, n),
		latentJ:   make([]float64, n),
		inputJ:    make([]float64, n),
		ejectJ:    make([]float64, n),
		storedJ:   make([]float64, n),
		coolingW:  make([]float64, n),
		waxFlowW:  make([]float64, n),
		settled:   make([]bool, n),
		memo:      make([]memoPair, n),
		specs:     make([]ServerSpec, n),
		mats:      make([]pcm.Material, n),
		init:      make([]bool, n),
	}, nil
}

// Init configures server i at thermal equilibrium with its inlet air:
// air node and wax both start at inletC (fully solid wax below the
// melting point), exactly as NewNode does. Materials and specs may
// differ per server — heterogeneity is just different parameter values
// in the slices.
func (f *Fleet) Init(i int, spec ServerSpec, mat pcm.Material, inletC float64) error {
	if i < 0 || i >= f.n {
		return fmt.Errorf("thermal: fleet index %d out of range [0,%d)", i, f.n)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	cp, err := pcm.CurveParamsFor(mat, spec.WaxVolumeL)
	if err != nil {
		return err
	}
	cAir := spec.AirHeatCapacityJPerK()
	f.specs[i] = spec
	f.mats[i] = mat
	f.kAir[i] = spec.AirConductanceWPerK
	f.hWax[i] = spec.WaxConductanceWPerK
	f.cAir[i] = cAir
	f.invCAir[i] = 1 / cAir
	f.subStep[i] = spec.SubStep
	f.subSec[i] = spec.SubStep.Seconds()
	f.meltC[i] = cp.MeltC
	f.hMeltLo[i] = cp.HMeltLoJ
	f.hMeltHi[i] = cp.HMeltHiJ
	f.invCapSol[i] = cp.InvCapSolidJPerK
	f.invCapLiq[i] = cp.InvCapLiquidJPerK
	f.capSol[i] = cp.CapSolidJPerK
	f.latentJ[i] = cp.LatentJ
	f.inletC[i] = inletC
	f.airC[i] = inletC
	// Pack.Reset semantics: the enthalpy is the curve inversion at the
	// inlet, the cached temperature is the inlet verbatim (not the
	// round-tripped projection), and the melt fraction snaps to the
	// phase boundary.
	f.waxHJ[i] = cp.EnthalpyAt(inletC)
	f.waxTC[i] = inletC
	if inletC > mat.MeltTempC {
		f.meltFrac[i] = 1
	} else {
		f.meltFrac[i] = 0
	}
	f.inputJ[i] = 0
	f.ejectJ[i] = 0
	f.storedJ[i] = 0
	f.coolingW[i] = 0
	f.waxFlowW[i] = 0
	f.settled[i] = false
	f.memo[i] = memoPair{}
	f.init[i] = true
	return nil
}

// Len returns the fleet size.
func (f *Fleet) Len() int { return f.n }

// Initialized reports whether every server has been configured.
func (f *Fleet) Initialized() bool {
	for _, ok := range f.init {
		if !ok {
			return false
		}
	}
	return true
}

// StepRange advances servers [lo,hi) by dt, each under the constant
// power draw power[i]. Per-server outcomes land in the fleet's state
// and output slices (see View). On error it reports the offending
// server index; state already committed for earlier servers in the
// range stays committed, matching the scalar path's first-error
// semantics when callers stop at the first failure.
//
// Ranges that do not overlap may be stepped concurrently: the kernel
// reads and writes only index i of every slice while on server i.
//
//vmt:hotpath
func (f *Fleet) StepRange(lo, hi int, power []float64, dt time.Duration) (int, error) {
	if lo < 0 || hi > f.n || lo > hi {
		return lo, fmt.Errorf("thermal: fleet range [%d,%d) out of bounds [0,%d)", lo, hi, f.n) //vmtlint:allow hotpath error path, off the steady-state path
	}
	if dt <= 0 {
		return lo, fmt.Errorf("thermal: non-positive step %v", dt) //vmtlint:allow hotpath error path, off the steady-state path
	}
	sec := dt.Seconds()
	for i := lo; i < hi; i++ {
		if !f.init[i] {
			return i, fmt.Errorf("thermal: fleet server %d not initialized", i) //vmtlint:allow hotpath error path, off the steady-state path
		}
		powerW := power[i]
		if powerW < 0 {
			return i, fmt.Errorf("thermal: negative power %v", powerW) //vmtlint:allow hotpath error path, off the steady-state path
		}

		airC0 := f.airC[i]
		waxH0 := f.waxHJ[i]
		airBits0 := math.Float64bits(airC0)
		waxHBits0 := math.Float64bits(waxH0)
		powBits := math.Float64bits(powerW)

		// Memo check: a hit replays the recorded transition. The key is
		// (air, enthalpy, power, dt) exactly as in Node.Step — the
		// cached wax temperature is derived state under every reachable
		// pre-state, so it does not key.
		mp := &f.memo[i]
		replayed := false
		for s := range mp.slot {
			m := &mp.slot[s]
			if m.valid && m.airBits == airBits0 && m.waxHBits == waxHBits0 &&
				m.powBits == powBits && m.dt == dt {
				f.airC[i] = m.postAirC
				f.commitWax(i, m.postWaxH)
				f.inputJ[i] += powerW * sec
				f.ejectJ[i] += m.ejectJ
				f.storedJ[i] += m.storedJ
				f.coolingW[i] = m.ejectJ / sec
				f.waxFlowW[i] = m.storedJ / sec
				f.settled[i] = true
				replayed = true
				break
			}
		}
		if replayed {
			continue
		}

		// Integration kernel. The arithmetic below is textually
		// identical to Node.Step's substep loop — expression for
		// expression, in the same order — which is what makes the
		// fleet and the scalar oracle bit-identical.
		var ejected, stored float64
		invCAir := f.invCAir[i]
		kAir := f.kAir[i]
		hWax := f.hWax[i]
		inlet := f.inletC[i]
		airC := airC0
		waxH := waxH0
		waxT := f.waxTC[i]
		sub := f.subStep[i]
		subSec := f.subSec[i]
		mC := f.meltC[i]
		hLo := f.hMeltLo[i]
		hHi := f.hMeltHi[i]
		invSol := f.invCapSol[i]
		invLiq := f.invCapLiq[i]
		nFull := int(dt / sub)
		partial := dt - time.Duration(nFull)*sub
		for k := 0; k < nFull; k++ {
			//vmt:kernel substep mirror begin
			toRoom := kAir * (airC - inlet)
			toWax := hWax * (airC - waxT)
			airC += subSec * (powerW - toRoom - toWax) * invCAir
			waxH += toWax * subSec
			// curve.tempAt, inlined on the hoisted segment parameters.
			switch {
			case waxH < hLo:
				waxT = waxH * invSol
			case waxH >= hHi:
				waxT = mC + (waxH-hHi)*invLiq
			default:
				waxT = mC
			}
			ejected += toRoom * subSec
			stored += toWax * subSec
			//vmt:kernel end
		}
		if partial > 0 {
			psec := partial.Seconds()
			//vmt:kernel substep-tail mirror begin
			toRoom := kAir * (airC - inlet)
			toWax := hWax * (airC - waxT)
			airC += psec * (powerW - toRoom - toWax) * invCAir
			waxH += toWax * psec
			ejected += toRoom * psec
			stored += toWax * psec
			//vmt:kernel end
		}

		f.airC[i] = airC
		f.commitWax(i, waxH)
		f.inputJ[i] += powerW * sec
		f.ejectJ[i] += ejected
		f.storedJ[i] += stored
		f.coolingW[i] = ejected / sec
		f.waxFlowW[i] = stored / sec
		f.settled[i] = false

		// Memoize stationary-wax transitions only, like Node.Step: an
		// actively charging or discharging pre-state never recurs.
		if math.Float64bits(waxH) == waxHBits0 {
			m := &mp.slot[mp.next]
			m.valid = true
			m.airBits = airBits0
			m.waxHBits = waxHBits0
			m.powBits = powBits
			m.dt = dt
			m.postAirC = airC
			m.postWaxH = waxH
			m.ejectJ = ejected
			m.storedJ = stored
			mp.next = 1 - mp.next
		}
	}
	return -1, nil
}

// vecLanes is the group width of the substep-major kernel
// (StepRangeVec): small enough that a group's loop-carried state fits
// the register file plus first cache lines, wide enough to keep a
// superscalar core's floating-point units fed with independent chains.
const vecLanes = 8

// StepRangeVec advances servers [lo,hi) by dt with the same contract
// and bit-identical results as StepRange, but schedules the arithmetic
// substep-major over groups of vecLanes servers: substep k runs for
// every lane of a group before substep k+1 runs for any. Each server's
// floating-point operation sequence is exactly StepRange's (lanes
// never mix), so per-server results cannot differ; what changes is
// that the lanes' independent dependency chains interleave in the
// instruction stream, letting an out-of-order core overlap them
// instead of stalling on one server's ~30-cycle-per-substep chain.
// This is the kernel the cluster's physics fan-out path uses; the
// serial path keeps the plain StepRange loop as the readable
// reference implementation, in the same spirit as the scalar Node
// oracle.
//
// A group falls back to StepRange when it is narrower than vecLanes
// (range tail), when a lane is uninitialized or has negative power
// (so the first-error semantics and message match exactly), when a
// lane hits its step-transition memo (replay is already cheap), or
// when lanes disagree on substep length (the substep loop needs one
// trip count).
//
//vmt:hotpath
func (f *Fleet) StepRangeVec(lo, hi int, power []float64, dt time.Duration) (int, error) {
	if lo < 0 || hi > f.n || lo > hi {
		return lo, fmt.Errorf("thermal: fleet range [%d,%d) out of bounds [0,%d)", lo, hi, f.n) //vmtlint:allow hotpath error path, off the steady-state path
	}
	if dt <= 0 {
		return lo, fmt.Errorf("thermal: non-positive step %v", dt) //vmtlint:allow hotpath error path, off the steady-state path
	}
	sec := dt.Seconds()
	for g := lo; g < hi; {
		end := g + vecLanes
		if end > hi {
			end = hi
		}
		if end-g < vecLanes || !f.vecEligible(g, power, dt) {
			if idx, err := f.StepRange(g, end, power, dt); err != nil {
				return idx, err
			}
			g = end
			continue
		}
		f.stepGroup(g, power, sec, dt)
		g = end
	}
	return -1, nil
}

// vecEligible reports whether servers [g, g+vecLanes) can take the
// substep-major path: all initialized, non-negative power, a shared
// substep length, and no pending memo replay.
//
//vmt:hotpath
func (f *Fleet) vecEligible(g int, power []float64, dt time.Duration) bool {
	sub := f.subStep[g]
	for j := 0; j < vecLanes; j++ {
		i := g + j
		if !f.init[i] || power[i] < 0 || f.subStep[i] != sub {
			return false
		}
		airBits := math.Float64bits(f.airC[i])
		waxHBits := math.Float64bits(f.waxHJ[i])
		powBits := math.Float64bits(power[i])
		mp := &f.memo[i]
		for s := range mp.slot {
			m := &mp.slot[s]
			if m.valid && m.airBits == airBits && m.waxHBits == waxHBits &&
				m.powBits == powBits && m.dt == dt {
				return false
			}
		}
	}
	return true
}

// stepGroup integrates servers [g, g+vecLanes) substep-major. Every
// statement in the lane body is the corresponding Node.Step statement
// on lane slots — expression for expression, in the same order — so
// each lane's result is bit-identical to the scalar loop's. The
// kernelparity analyzer verifies the marked regions against the
// oracle's structurally. The caller (StepRangeVec) has already
// validated every lane.
//
//vmt:hotpath
func (f *Fleet) stepGroup(g int, power []float64, sec float64, dt time.Duration) {
	var (
		airV, waxHV, waxTV                [vecLanes]float64
		air0V, waxH0V                     [vecLanes]float64
		powV, inletV, kAirV, hWaxV        [vecLanes]float64
		invCAirV                          [vecLanes]float64
		mCV, hLoV, hHiV, invSolV, invLiqV [vecLanes]float64
		ejV, stV                          [vecLanes]float64
	)
	for j := 0; j < vecLanes; j++ {
		i := g + j
		airV[j] = f.airC[i]
		waxHV[j] = f.waxHJ[i]
		waxTV[j] = f.waxTC[i]
		air0V[j] = airV[j]
		waxH0V[j] = waxHV[j]
		powV[j] = power[i]
		inletV[j] = f.inletC[i]
		kAirV[j] = f.kAir[i]
		hWaxV[j] = f.hWax[i]
		invCAirV[j] = f.invCAir[i]
		mCV[j] = f.meltC[i]
		hLoV[j] = f.hMeltLo[i]
		hHiV[j] = f.hMeltHi[i]
		invSolV[j] = f.invCapSol[i]
		invLiqV[j] = f.invCapLiq[i]
	}
	sub := f.subStep[g]
	subSec := f.subSec[g]
	nFull := int(dt / sub)
	partial := dt - time.Duration(nFull)*sub
	for k := 0; k < nFull; k++ {
		for j := 0; j < vecLanes; j++ {
			//vmt:kernel substep mirror begin
			toRoom := kAirV[j] * (airV[j] - inletV[j])
			toWax := hWaxV[j] * (airV[j] - waxTV[j])
			airV[j] += subSec * (powV[j] - toRoom - toWax) * invCAirV[j]
			waxHV[j] += toWax * subSec
			switch {
			case waxHV[j] < hLoV[j]:
				waxTV[j] = waxHV[j] * invSolV[j]
			case waxHV[j] >= hHiV[j]:
				waxTV[j] = mCV[j] + (waxHV[j]-hHiV[j])*invLiqV[j]
			default:
				waxTV[j] = mCV[j]
			}
			ejV[j] += toRoom * subSec
			stV[j] += toWax * subSec
			//vmt:kernel end
		}
	}
	if partial > 0 {
		psec := partial.Seconds()
		for j := 0; j < vecLanes; j++ {
			//vmt:kernel substep-tail mirror begin
			toRoom := kAirV[j] * (airV[j] - inletV[j])
			toWax := hWaxV[j] * (airV[j] - waxTV[j])
			airV[j] += psec * (powV[j] - toRoom - toWax) * invCAirV[j]
			waxHV[j] += toWax * psec
			ejV[j] += toRoom * psec
			stV[j] += toWax * psec
			//vmt:kernel end
		}
	}
	for j := 0; j < vecLanes; j++ {
		i := g + j
		f.airC[i] = airV[j]
		f.commitWax(i, waxHV[j])
		f.inputJ[i] += powV[j] * sec
		f.ejectJ[i] += ejV[j]
		f.storedJ[i] += stV[j]
		f.coolingW[i] = ejV[j] / sec
		f.waxFlowW[i] = stV[j] / sec
		f.settled[i] = false
		if math.Float64bits(waxHV[j]) == math.Float64bits(waxH0V[j]) {
			mp := &f.memo[i]
			m := &mp.slot[mp.next]
			m.valid = true
			m.airBits = math.Float64bits(air0V[j])
			m.waxHBits = math.Float64bits(waxH0V[j])
			m.powBits = math.Float64bits(powV[j])
			m.dt = dt
			m.postAirC = airV[j]
			m.postWaxH = waxHV[j]
			m.ejectJ = ejV[j]
			m.storedJ = stV[j]
			mp.next = 1 - mp.next
		}
	}
}

// commitWax stores a new enthalpy for server i and refreshes the
// cached temperature and melt-fraction projections (curve.state,
// inlined — melt fraction keeps true division by the latent heat so it
// can never round above 1 inside the segment).
//
//vmt:hotpath
func (f *Fleet) commitWax(i int, h float64) {
	f.waxHJ[i] = h
	switch {
	case h < f.hMeltLo[i]:
		f.waxTC[i] = h * f.invCapSol[i]
		f.meltFrac[i] = 0
	case h >= f.hMeltHi[i]:
		f.waxTC[i] = f.meltC[i] + (h-f.hMeltHi[i])*f.invCapLiq[i]
		f.meltFrac[i] = 1
	default:
		f.waxTC[i] = f.meltC[i]
		f.meltFrac[i] = (h - f.hMeltLo[i]) / f.latentJ[i]
	}
}

// View is the read-only window onto the fleet's per-server slices the
// sampling reduction iterates. The slices are owned by the fleet and
// overwritten by subsequent steps; callers that retain values across
// steps must copy them, and no caller may write through them.
type View struct {
	// AirTempC and MeltFrac are the current state projections.
	AirTempC []float64
	MeltFrac []float64
	// CoolingLoadW and WaxFlowW are the mean heat flows over the last
	// step (to the room, and into the wax).
	CoolingLoadW []float64
	WaxFlowW     []float64
	// WaxStoredJ is the cumulative energy parked in wax since
	// construction (the WaxStoredJ ledger), per server.
	WaxStoredJ []float64
	// Settled marks servers whose last step replayed a memoized
	// steady-state transition.
	Settled []bool
}

// View returns the fleet's live per-server slices for fixed-order
// reductions.
//
//vmt:hotpath
func (f *Fleet) View() View {
	return View{
		AirTempC:     f.airC,
		MeltFrac:     f.meltFrac,
		CoolingLoadW: f.coolingW,
		WaxFlowW:     f.waxFlowW,
		WaxStoredJ:   f.storedJ,
		Settled:      f.settled,
	}
}

// AirTempC returns server i's current air temperature at the wax.
func (f *Fleet) AirTempC(i int) float64 { return f.airC[i] }

// WaxTempC returns server i's current wax temperature.
func (f *Fleet) WaxTempC(i int) float64 { return f.waxTC[i] }

// MeltFrac returns server i's wax melt fraction in [0,1].
func (f *Fleet) MeltFrac(i int) float64 { return f.meltFrac[i] }

// EnthalpyJ returns server i's pack enthalpy relative to fully solid
// wax at refTempC (Pack.EnthalpyJ semantics).
func (f *Fleet) EnthalpyJ(i int, refTempC float64) float64 {
	return f.waxHJ[i] - f.capSol[i]*refTempC
}

// InletTempC returns server i's configured inlet temperature.
func (f *Fleet) InletTempC(i int) float64 { return f.inletC[i] }

// SetInletTempC overrides server i's inlet temperature (inlet
// variation experiments) and invalidates its step memo, exactly as
// Node.SetInletTempC does.
func (f *Fleet) SetInletTempC(i int, c float64) {
	f.inletC[i] = c
	f.memo[i].slot[0].valid = false
	f.memo[i].slot[1].valid = false
}

// Settled reports whether server i's last step replayed a memoized
// steady-state transition.
func (f *Fleet) Settled(i int) bool { return f.settled[i] }

// CoolingLoadW returns server i's mean heat flow to the room over the
// last step.
func (f *Fleet) CoolingLoadW(i int) float64 { return f.coolingW[i] }

// WaxFlowW returns server i's mean heat flow into the wax over the
// last step.
func (f *Fleet) WaxFlowW(i int) float64 { return f.waxFlowW[i] }

// Ledger returns server i's cumulative energy accounting.
func (f *Fleet) Ledger(i int) EnergyLedger {
	return EnergyLedger{InputJ: f.inputJ[i], EjectedJ: f.ejectJ[i], WaxStoredJ: f.storedJ[i]}
}

// AirEnergyJ returns the energy held by server i's air node relative
// to its inlet temperature — the remainder term in the conservation
// balance.
func (f *Fleet) AirEnergyJ(i int) float64 {
	return f.cAir[i] * (f.airC[i] - f.inletC[i])
}

// Spec returns server i's specification.
func (f *Fleet) Spec(i int) ServerSpec { return f.specs[i] }

// Material returns server i's PCM material.
func (f *Fleet) Material(i int) pcm.Material { return f.mats[i] }
