package thermal

import (
	"math"
	"testing"
	"time"

	"vmt/internal/pcm"
)

func newTestFleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f, err := NewFleet(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := f.Init(i, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestNewFleetRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewFleet(n); err == nil {
			t.Errorf("NewFleet(%d) should fail", n)
		}
	}
}

func TestFleetInitValidates(t *testing.T) {
	f, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Init(-1, PaperServer(), pcm.CommercialParaffin(), 22); err == nil {
		t.Error("negative index should fail")
	}
	if err := f.Init(2, PaperServer(), pcm.CommercialParaffin(), 22); err == nil {
		t.Error("out-of-range index should fail")
	}
	bad := PaperServer()
	bad.SubStep = 0
	if err := f.Init(0, bad, pcm.CommercialParaffin(), 22); err == nil {
		t.Error("invalid spec should fail")
	}
	badMat := pcm.CommercialParaffin()
	badMat.LatentHeatJPerKg = 0
	if err := f.Init(0, PaperServer(), badMat, 22); err == nil {
		t.Error("invalid material should fail")
	}
	if f.Initialized() {
		t.Error("fleet should not report initialized")
	}
	if err := f.Init(0, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
		t.Fatal(err)
	}
	if f.Initialized() {
		t.Error("fleet with one uninitialized server should not report initialized")
	}
	if err := f.Init(1, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
		t.Fatal(err)
	}
	if !f.Initialized() {
		t.Error("fully configured fleet should report initialized")
	}
}

func TestFleetInitMatchesNode(t *testing.T) {
	// Initial state must match NewNode bit for bit — including the
	// Pack.Reset quirk of pinning the cached wax temperature verbatim.
	for _, inlet := range []float64{22, 25.3, 40.1} {
		f, err := NewFleet(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Init(0, PaperServer(), pcm.CommercialParaffin(), inlet); err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(PaperServer(), pcm.CommercialParaffin(), inlet)
		if err != nil {
			t.Fatal(err)
		}
		h, wt := node.Pack().IntegratorState()
		if math.Float64bits(f.waxHJ[0]) != math.Float64bits(h) {
			t.Errorf("inlet %v: enthalpy %v != node %v", inlet, f.waxHJ[0], h)
		}
		if math.Float64bits(f.WaxTempC(0)) != math.Float64bits(wt) {
			t.Errorf("inlet %v: wax temp %v != node %v", inlet, f.WaxTempC(0), wt)
		}
		if f.MeltFrac(0) != node.MeltFrac() {
			t.Errorf("inlet %v: melt %v != node %v", inlet, f.MeltFrac(0), node.MeltFrac())
		}
		if f.AirTempC(0) != inlet || f.InletTempC(0) != inlet {
			t.Errorf("inlet %v: air/inlet not pinned", inlet)
		}
		if math.Float64bits(f.EnthalpyJ(0, 22)) != math.Float64bits(node.Pack().EnthalpyJ(22)) {
			t.Errorf("inlet %v: EnthalpyJ mismatch", inlet)
		}
	}
}

func TestFleetStepRejectsBadInput(t *testing.T) {
	f := newTestFleet(t, 4)
	power := make([]float64, 4)
	if _, err := f.StepRange(0, 4, power, 0); err == nil {
		t.Error("zero dt should fail")
	}
	if _, err := f.StepRange(-1, 4, power, time.Minute); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := f.StepRange(0, 5, power, time.Minute); err == nil {
		t.Error("hi out of range should fail")
	}
	if _, err := f.StepRange(3, 2, power, time.Minute); err == nil {
		t.Error("inverted range should fail")
	}
	power[2] = -5
	idx, err := f.StepRange(0, 4, power, time.Minute)
	if err == nil {
		t.Fatal("negative power should fail")
	}
	if idx != 2 {
		t.Errorf("error index = %d, want 2 (the offending server)", idx)
	}
}

func TestFleetStepRequiresInit(t *testing.T) {
	f, err := NewFleet(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Init(0, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
		t.Fatal(err)
	}
	idx, err := f.StepRange(0, 3, make([]float64, 3), time.Minute)
	if err == nil {
		t.Fatal("stepping an uninitialized server should fail")
	}
	if idx != 1 {
		t.Errorf("error index = %d, want 1 (first uninitialized)", idx)
	}
}

func TestFleetViewAliasesState(t *testing.T) {
	f := newTestFleet(t, 3)
	v := f.View()
	if len(v.AirTempC) != 3 || len(v.MeltFrac) != 3 || len(v.CoolingLoadW) != 3 ||
		len(v.WaxFlowW) != 3 || len(v.WaxStoredJ) != 3 || len(v.Settled) != 3 {
		t.Fatal("view slices must span the fleet")
	}
	power := []float64{400, 100, 250}
	if _, err := f.StepRange(0, 3, power, time.Minute); err != nil {
		t.Fatal(err)
	}
	// The view is live: the same slices the step wrote.
	for i := 0; i < 3; i++ {
		if v.AirTempC[i] != f.AirTempC(i) || v.CoolingLoadW[i] != f.CoolingLoadW(i) {
			t.Fatalf("server %d: view is not live", i)
		}
	}
	if v.AirTempC[0] <= 22 {
		t.Error("loaded server should have warmed above its inlet")
	}
}

func TestFleetSetInletInvalidatesMemo(t *testing.T) {
	f := newTestFleet(t, 1)
	power := []float64{150}
	// Settle to the memoized steady state. Reaching the bit-exact fixed
	// point takes ~1000 minute-steps: the analog transient decays in a
	// few time constants, but the last ulps of enthalpy drain
	// geometrically.
	for i := 0; i < 1500; i++ {
		if _, err := f.StepRange(0, 1, power, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Settled(0) {
		t.Fatal("server should settle under 25 h of constant load")
	}
	f.SetInletTempC(0, 27)
	if f.InletTempC(0) != 27 {
		t.Fatal("inlet not updated")
	}
	if _, err := f.StepRange(0, 1, power, time.Minute); err != nil {
		t.Fatal(err)
	}
	if f.Settled(0) {
		t.Error("memo must not replay across an inlet change")
	}
	if f.AirTempC(0) <= 22+150/PaperServer().AirConductanceWPerK-1 {
		t.Error("air temperature should drift toward the warmer inlet")
	}
}

func TestFleetSpecMaterialAccessors(t *testing.T) {
	f, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	s := PaperServer()
	s.WaxVolumeL = 2.5
	if err := f.Init(0, s, pcm.Inert(), 22); err != nil {
		t.Fatal(err)
	}
	if err := f.Init(1, PaperServer(), pcm.CommercialParaffin(), 22); err != nil {
		t.Fatal(err)
	}
	if f.Spec(0).WaxVolumeL != 2.5 || f.Material(0).Name != pcm.Inert().Name {
		t.Error("server 0 spec/material not retained")
	}
	if f.Material(1).Name != pcm.CommercialParaffin().Name {
		t.Error("server 1 material not retained")
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
}

// TestFleetMeltFracBounds drives a server through full melt and
// refreeze; the melt fraction must stay in [0,1] at every step.
func TestFleetMeltFracBounds(t *testing.T) {
	f := newTestFleet(t, 1)
	check := func(phase string) {
		t.Helper()
		m := f.MeltFrac(0)
		if m < 0 || m > 1 {
			t.Fatalf("%s: melt fraction %v outside [0,1]", phase, m)
		}
	}
	power := []float64{500}
	for i := 0; i < 2000; i++ { // full melt and beyond
		if _, err := f.StepRange(0, 1, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		check("melting")
	}
	if f.MeltFrac(0) != 1 {
		t.Fatalf("peak load for 33 h should fully melt the wax, got %v", f.MeltFrac(0))
	}
	power[0] = 100
	for i := 0; i < 2000; i++ {
		if _, err := f.StepRange(0, 1, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		check("refreezing")
	}
	if f.MeltFrac(0) != 0 {
		t.Fatalf("idle load for 33 h should refreeze the wax, got %v", f.MeltFrac(0))
	}
}

// TestFleetEnergyConservation checks the ledger identity
// input = ejected + wax-stored + air-node energy at every step.
func TestFleetEnergyConservation(t *testing.T) {
	f := newTestFleet(t, 2)
	power := []float64{380, 120}
	for step := 0; step < 500; step++ {
		if _, err := f.StepRange(0, 2, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			l := f.Ledger(i)
			balance := l.InputJ - l.EjectedJ - l.WaxStoredJ - f.AirEnergyJ(i)
			if scale := math.Max(l.InputJ, 1); math.Abs(balance)/scale > 1e-9 {
				t.Fatalf("step %d server %d: energy imbalance %v J of %v J input",
					step, i, balance, l.InputJ)
			}
		}
	}
}
