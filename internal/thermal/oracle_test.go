package thermal

import (
	"math"
	"testing"
	"time"

	"vmt/internal/pcm"
	"vmt/internal/stats"
)

// Differential oracle: the struct-of-arrays Fleet and the retained
// scalar Node are two implementations of the same physics, and every
// trajectory they produce must agree bit for bit — math.Float64bits
// equality on every state variable, every output, every ledger, every
// step. The fleets here are randomized the way a real run stresses the
// kernel: seeded job churn (quantized power levels), crash phases
// (power pinned to zero, as the fault injector does), mixed materials
// and specs, inlet overrides, and step lengths that exercise both the
// counted substep loop and the trailing partial substep.

// oracleFleet pairs a Fleet with its per-server scalar shadow.
type oracleFleet struct {
	fleet *Fleet
	nodes []*Node
}

// newOracleFleet builds n servers with materials and specs cycling
// through a heterogeneous palette, both as a Fleet and as scalar
// Nodes.
func newOracleFleet(t *testing.T, n int) *oracleFleet {
	t.Helper()
	mats := []pcm.Material{
		pcm.CommercialParaffin(),
		pcm.PureNParaffin(40),
		pcm.CommercialParaffin().WithLatentHeat(180_000),
		pcm.Inert(),
	}
	specs := []ServerSpec{PaperServer()}
	{
		s := PaperServer()
		s.WaxVolumeL = 2.5
		s.AirConductanceWPerK = 18
		specs = append(specs, s)
	}
	{
		s := PaperServer()
		s.SubStep = 7 * time.Second // non-divisor of the minute steps below
		s.AirTimeConstant = 3 * time.Minute
		specs = append(specs, s)
	}
	inlets := []float64{22, 25, 18.5}

	f, err := NewFleet(n)
	if err != nil {
		t.Fatal(err)
	}
	of := &oracleFleet{fleet: f, nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		mat := mats[i%len(mats)]
		spec := specs[i%len(specs)]
		inlet := inlets[i%len(inlets)]
		if err := f.Init(i, spec, mat, inlet); err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(spec, mat, inlet)
		if err != nil {
			t.Fatal(err)
		}
		of.nodes[i] = node
	}
	return of
}

// requireBitIdentical compares every observable of fleet server i
// against its scalar shadow with bit equality.
func (of *oracleFleet) requireBitIdentical(t *testing.T, step, i int, res StepResult) {
	t.Helper()
	f, node := of.fleet, of.nodes[i]
	checks := []struct {
		name       string
		fleet, ref float64
	}{
		{"airC", f.AirTempC(i), node.AirTempC()},
		{"waxH", f.waxHJ[i], nodeWaxH(node)},
		{"waxT", f.WaxTempC(i), node.WaxTempC()},
		{"melt", f.MeltFrac(i), node.MeltFrac()},
		{"res.AirTempC", f.AirTempC(i), res.AirTempC},
		{"res.WaxTempC", f.WaxTempC(i), res.WaxTempC},
		{"res.MeltFrac", f.MeltFrac(i), res.MeltFrac},
		{"coolingW", f.CoolingLoadW(i), res.CoolingLoadW},
		{"waxFlowW", f.WaxFlowW(i), res.WaxFlowW},
		{"inputJ", f.Ledger(i).InputJ, node.Ledger().InputJ},
		{"ejectJ", f.Ledger(i).EjectedJ, node.Ledger().EjectedJ},
		{"storedJ", f.Ledger(i).WaxStoredJ, node.Ledger().WaxStoredJ},
		{"airEnergyJ", f.AirEnergyJ(i), node.AirEnergyJ()},
	}
	for _, c := range checks {
		if math.Float64bits(c.fleet) != math.Float64bits(c.ref) {
			t.Fatalf("step %d server %d: %s diverged: fleet %v (%#x) vs scalar %v (%#x)",
				step, i, c.name, c.fleet, math.Float64bits(c.fleet),
				c.ref, math.Float64bits(c.ref))
		}
	}
}

func nodeWaxH(n *Node) float64 {
	h, _ := n.Pack().IntegratorState()
	return h
}

// TestFleetOracleBitIdentical drives both implementations through 400
// steps of randomized load with crash phases, inlet overrides, and
// varying step lengths, demanding bit-identical trajectories
// throughout.
func TestFleetOracleBitIdentical(t *testing.T) {
	const n = 32
	of := newOracleFleet(t, n)
	f := of.fleet
	rng := stats.NewRNG(7)
	spec := PaperServer()
	perCore := spec.PowerScale * 9.5

	power := make([]float64, n)
	crashed := make([]bool, n)
	// Step lengths mix the common tick with lengths that leave a
	// trailing partial substep (61 s, 90 s) and long multi-substep
	// steps (7 min).
	dts := []time.Duration{
		time.Minute, time.Minute, time.Minute, 61 * time.Second,
		90 * time.Second, 7 * time.Minute,
	}
	for step := 0; step < 400; step++ {
		dt := dts[step%len(dts)]
		// Seeded job churn: a few servers change core occupancy each
		// step, quantized to per-core power levels like the cluster's
		// placement bookkeeping produces.
		for k := 0; k < 5; k++ {
			i := rng.Intn(n)
			cores := rng.Intn(33)
			power[i] = spec.IdlePowerW + float64(cores)*perCore
			if power[i] > spec.PeakPowerW {
				power[i] = spec.PeakPowerW
			}
		}
		// Fault churn: crash → zero power (what the injector's crashed
		// servers draw); repair → back to idle.
		if step%17 == 0 {
			i := rng.Intn(n)
			crashed[i] = !crashed[i]
		}
		// Inlet variation, exercising memo invalidation on both sides.
		if step%83 == 41 {
			i := rng.Intn(n)
			c := 20 + rng.Float64()*6
			f.SetInletTempC(i, c)
			of.nodes[i].SetInletTempC(c)
		}
		for i := range power {
			if crashed[i] {
				power[i] = 0
			} else if power[i] == 0 {
				power[i] = spec.IdlePowerW
			}
		}
		if idx, err := f.StepRange(0, n, power, dt); err != nil {
			t.Fatalf("step %d: fleet step failed at server %d: %v", step, idx, err)
		}
		for i := 0; i < n; i++ {
			res, err := of.nodes[i].Step(power[i], dt)
			if err != nil {
				t.Fatalf("step %d server %d: scalar step failed: %v", step, i, err)
			}
			of.requireBitIdentical(t, step, i, res)
		}
	}
}

// TestFleetOracleSteadyStateMemo holds constant load long enough for
// every server to settle, checks the memo replay path stays
// bit-identical to the scalar memo replay, and that the settled flags
// report the steady state.
func TestFleetOracleSteadyStateMemo(t *testing.T) {
	const n = 8
	of := newOracleFleet(t, n)
	f := of.fleet
	power := make([]float64, n)
	for i := range power {
		power[i] = 100 + 25*float64(i%4)
	}
	// Long enough for air and wax to reach their bit-exact fixed points
	// (the analog transient decays within a few ~32 min time constants,
	// but draining the last ulps of enthalpy takes ~1000 minute-steps).
	for step := 0; step < 2000; step++ {
		if idx, err := f.StepRange(0, n, power, time.Minute); err != nil {
			t.Fatalf("step %d: fleet step failed at server %d: %v", step, idx, err)
		}
		for i := 0; i < n; i++ {
			res, err := of.nodes[i].Step(power[i], time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			of.requireBitIdentical(t, step, i, res)
		}
	}
	for i := 0; i < n; i++ {
		if !f.Settled(i) {
			t.Errorf("server %d not settled after 33 h of constant load", i)
		}
	}
	// A load change must drop the settled flag and stay bit-identical
	// through the transient.
	power[0] = 450
	for step := 0; step < 5; step++ {
		if _, err := f.StepRange(0, n, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			res, err := of.nodes[i].Step(power[i], time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			of.requireBitIdentical(t, 2000+step, i, res)
		}
		if step == 0 && f.Settled(0) {
			t.Error("server 0 still settled immediately after a load change")
		}
	}
}

// TestFleetOracleChunkedStepping verifies StepRange over disjoint
// chunks is the same function as one full-range call: the property the
// cluster's parallel fan-out depends on.
func TestFleetOracleChunkedStepping(t *testing.T) {
	const n = 24
	a := newOracleFleet(t, n).fleet
	b := newOracleFleet(t, n).fleet
	rng := stats.NewRNG(11)
	power := make([]float64, n)
	for step := 0; step < 50; step++ {
		for i := range power {
			power[i] = 100 + rng.Float64()*350
		}
		if _, err := a.StepRange(0, n, power, time.Minute); err != nil {
			t.Fatal(err)
		}
		// Uneven chunks, stepped out of order: ranges are disjoint so
		// order cannot matter.
		for _, r := range [][2]int{{17, 24}, {5, 17}, {0, 5}} {
			if _, err := b.StepRange(r[0], r[1], power, time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(a.AirTempC(i)) != math.Float64bits(b.AirTempC(i)) ||
				math.Float64bits(a.waxHJ[i]) != math.Float64bits(b.waxHJ[i]) {
				t.Fatalf("step %d server %d: chunked stepping diverged from full-range", step, i)
			}
		}
	}
}

// requireFleetsBitIdentical compares every per-server column of two
// fleets — state, projections, outputs, ledgers, settled flags, and
// the step-transition memos, which govern future behavior — with bit
// equality.
func requireFleetsBitIdentical(t *testing.T, step int, a, b *Fleet) {
	t.Helper()
	if a.n != b.n {
		t.Fatalf("fleet sizes differ: %d vs %d", a.n, b.n)
	}
	for i := 0; i < a.n; i++ {
		cols := []struct {
			name string
			x, y float64
		}{
			{"airC", a.airC[i], b.airC[i]},
			{"waxHJ", a.waxHJ[i], b.waxHJ[i]},
			{"waxTC", a.waxTC[i], b.waxTC[i]},
			{"meltFrac", a.meltFrac[i], b.meltFrac[i]},
			{"inputJ", a.inputJ[i], b.inputJ[i]},
			{"ejectJ", a.ejectJ[i], b.ejectJ[i]},
			{"storedJ", a.storedJ[i], b.storedJ[i]},
			{"coolingW", a.coolingW[i], b.coolingW[i]},
			{"waxFlowW", a.waxFlowW[i], b.waxFlowW[i]},
		}
		for _, c := range cols {
			if math.Float64bits(c.x) != math.Float64bits(c.y) {
				t.Fatalf("step %d server %d: %s diverged: %v (%#x) vs %v (%#x)",
					step, i, c.name, c.x, math.Float64bits(c.x), c.y, math.Float64bits(c.y))
			}
		}
		if a.settled[i] != b.settled[i] {
			t.Fatalf("step %d server %d: settled flag diverged: %v vs %v",
				step, i, a.settled[i], b.settled[i])
		}
		if a.memo[i] != b.memo[i] {
			t.Fatalf("step %d server %d: step-transition memo diverged", step, i)
		}
	}
}

// TestFleetOracleVecKernel pins the substep-major StepRangeVec to the
// plain StepRange: twin fleets driven by the two kernels through the
// same randomized churn must stay bit-identical in every column after
// every step. The homogeneous fleet takes the vec path proper (with a
// non-multiple-of-vecLanes size and unaligned chunk boundaries); the
// heterogeneous oracle palette mixes substep lengths inside groups,
// forcing the per-group scalar fallback.
func TestFleetOracleVecKernel(t *testing.T) {
	spec := PaperServer()
	perCore := spec.PowerScale * 9.5
	dts := []time.Duration{
		time.Minute, time.Minute, 61 * time.Second, 90 * time.Second, 7 * time.Minute,
	}

	churn := func(t *testing.T, a, b *Fleet, n, steps int, seed uint64) {
		t.Helper()
		rng := stats.NewRNG(seed)
		power := make([]float64, n)
		for i := range power {
			power[i] = spec.IdlePowerW
		}
		// Unaligned chunk boundaries for the vec side: group starts at
		// 5 and 17 exercise ranges that do not begin on a lane multiple,
		// and the fleet tail is narrower than vecLanes.
		chunks := [][2]int{{0, 5}, {5, 17}, {17, n}}
		for step := 0; step < steps; step++ {
			dt := dts[step%len(dts)]
			for k := 0; k < 5; k++ {
				i := rng.Intn(n)
				cores := rng.Intn(33)
				power[i] = spec.IdlePowerW + float64(cores)*perCore
				if power[i] > spec.PeakPowerW {
					power[i] = spec.PeakPowerW
				}
			}
			if idx, err := a.StepRange(0, n, power, dt); err != nil {
				t.Fatalf("step %d: scalar kernel failed at server %d: %v", step, idx, err)
			}
			for _, r := range chunks {
				if idx, err := b.StepRangeVec(r[0], r[1], power, dt); err != nil {
					t.Fatalf("step %d: vec kernel failed at server %d: %v", step, idx, err)
				}
			}
			requireFleetsBitIdentical(t, step, a, b)
		}
	}

	t.Run("homogeneous", func(t *testing.T) {
		const n = 53 // tail of 53 % vecLanes servers
		mat := pcm.CommercialParaffin()
		a, err := NewFleet(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewFleet(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := a.Init(i, spec, mat, 22); err != nil {
				t.Fatal(err)
			}
			if err := b.Init(i, spec, mat, 22); err != nil {
				t.Fatal(err)
			}
		}
		churn(t, a, b, n, 300, 13)
	})

	t.Run("heterogeneous", func(t *testing.T) {
		const n = 29
		a := newOracleFleet(t, n).fleet
		b := newOracleFleet(t, n).fleet
		churn(t, a, b, n, 300, 17)
	})

	t.Run("settled memo replay", func(t *testing.T) {
		const n = 16
		mat := pcm.CommercialParaffin()
		a, err := NewFleet(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewFleet(n)
		if err != nil {
			t.Fatal(err)
		}
		power := make([]float64, n)
		for i := 0; i < n; i++ {
			if err := a.Init(i, spec, mat, 22); err != nil {
				t.Fatal(err)
			}
			if err := b.Init(i, spec, mat, 22); err != nil {
				t.Fatal(err)
			}
			power[i] = 100 + 25*float64(i%4)
		}
		// Constant load until every server settles: the vec side's
		// groups then all contain memo hits and take the fallback.
		for step := 0; step < 2000; step++ {
			if _, err := a.StepRange(0, n, power, time.Minute); err != nil {
				t.Fatal(err)
			}
			if _, err := b.StepRangeVec(0, n, power, time.Minute); err != nil {
				t.Fatal(err)
			}
			requireFleetsBitIdentical(t, step, a, b)
		}
		for i := 0; i < n; i++ {
			if !b.Settled(i) {
				t.Fatalf("server %d not settled after 33 h of constant load", i)
			}
		}
		// Perturb one lane: its group mixes a memo miss with seven hits
		// and must still replay/integrate bit-identically.
		power[3] = 450
		for step := 0; step < 5; step++ {
			if _, err := a.StepRange(0, n, power, time.Minute); err != nil {
				t.Fatal(err)
			}
			if _, err := b.StepRangeVec(0, n, power, time.Minute); err != nil {
				t.Fatal(err)
			}
			requireFleetsBitIdentical(t, 2000+step, a, b)
		}
	})
}

// TestFleetVecKernelErrorParity verifies StepRangeVec reproduces
// StepRange's first-error semantics exactly: same offending index,
// same message, and bit-identical committed state for the servers
// before it, wherever the bad lane falls in a group.
func TestFleetVecKernelErrorParity(t *testing.T) {
	spec := PaperServer()
	mat := pcm.CommercialParaffin()
	const n = 12
	for _, bad := range []int{0, 3, 7, 11} {
		a, err := NewFleet(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewFleet(n)
		if err != nil {
			t.Fatal(err)
		}
		power := make([]float64, n)
		for i := 0; i < n; i++ {
			if err := a.Init(i, spec, mat, 22); err != nil {
				t.Fatal(err)
			}
			if err := b.Init(i, spec, mat, 22); err != nil {
				t.Fatal(err)
			}
			power[i] = 250
		}
		power[bad] = -1
		ia, errA := a.StepRange(0, n, power, time.Minute)
		ib, errB := b.StepRangeVec(0, n, power, time.Minute)
		if errA == nil || errB == nil {
			t.Fatalf("bad=%d: expected errors, got %v / %v", bad, errA, errB)
		}
		if ia != ib || errA.Error() != errB.Error() {
			t.Fatalf("bad=%d: error parity broken: scalar (%d, %v) vs vec (%d, %v)",
				bad, ia, errA, ib, errB)
		}
		requireFleetsBitIdentical(t, 0, a, b)
	}

	// An uninitialized server reports identically through both kernels.
	a, err := NewFleet(4)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, 4)
	ia, errA := a.StepRange(0, 4, power, time.Minute)
	b, err := NewFleet(4)
	if err != nil {
		t.Fatal(err)
	}
	ib, errB := b.StepRangeVec(0, 4, power, time.Minute)
	if errA == nil || errB == nil || ia != ib || errA.Error() != errB.Error() {
		t.Fatalf("uninit parity broken: scalar (%d, %v) vs vec (%d, %v)", ia, errA, ib, errB)
	}
}
