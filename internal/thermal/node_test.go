package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/pcm"
)

func newNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(PaperServer(), pcm.CommercialParaffin(), 22)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpecValidate(t *testing.T) {
	if err := PaperServer().Validate(); err != nil {
		t.Fatalf("PaperServer invalid: %v", err)
	}
	cases := []func(*ServerSpec){
		func(s *ServerSpec) { s.CPUs = 0 },
		func(s *ServerSpec) { s.CoresPerCPU = 0 },
		func(s *ServerSpec) { s.IdlePowerW = -1 },
		func(s *ServerSpec) { s.PeakPowerW = s.IdlePowerW },
		func(s *ServerSpec) { s.PowerScale = 0 },
		func(s *ServerSpec) { s.AirConductanceWPerK = 0 },
		func(s *ServerSpec) { s.WaxConductanceWPerK = -1 },
		func(s *ServerSpec) { s.AirTimeConstant = 0 },
		func(s *ServerSpec) { s.WaxVolumeL = 0 },
		func(s *ServerSpec) { s.SubStep = 0 },
	}
	for i, mutate := range cases {
		s := PaperServer()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCores(t *testing.T) {
	if got := PaperServer().Cores(); got != 32 {
		t.Fatalf("Cores = %d, want 32", got)
	}
}

func TestStepRejectsBadInput(t *testing.T) {
	n := newNode(t)
	if _, err := n.Step(100, 0); err == nil {
		t.Fatal("zero dt should fail")
	}
	if _, err := n.Step(-1, time.Minute); err == nil {
		t.Fatal("negative power should fail")
	}
}

// Idle server converges to the steady-state temperature below melting.
func TestIdleSteadyState(t *testing.T) {
	n := newNode(t)
	spec := PaperServer()
	var last StepResult
	for i := 0; i < 300; i++ { // 5 hours (combined time constant ≈ 32 min)
		var err error
		last, err = n.Step(spec.IdlePowerW, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
	}
	want := spec.SteadyAirTempC(spec.IdlePowerW, 22) // 22 + 100/22.35 ≈ 26.5
	if math.Abs(last.AirTempC-want) > 0.05 {
		t.Fatalf("idle air temp = %v, want ≈%v", last.AirTempC, want)
	}
	if last.MeltFrac != 0 {
		t.Fatalf("idle server should not melt wax, frac=%v", last.MeltFrac)
	}
	// At steady state the whole draw goes to the room.
	if math.Abs(last.CoolingLoadW-spec.IdlePowerW) > 0.5 {
		t.Fatalf("steady cooling load = %v, want ≈%v", last.CoolingLoadW, spec.IdlePowerW)
	}
}

// A hot server pins its air temperature near the melting point while
// the wax melts, then rises once fully melted — the TTS mechanism.
func TestMeltingPinsAirTemp(t *testing.T) {
	n := newNode(t)
	const power = 400 // well above melt threshold (22+400/22.35 ≈ 39.9)
	sawPinned := false
	var full StepResult
	for i := 0; i < 20*60; i++ {
		res, err := n.Step(power, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeltFrac > 0.2 && res.MeltFrac < 0.8 {
			// During bulk melting the wax holds the air down near the
			// melting point (within the KAir/HWax divider).
			if res.AirTempC < 35.7 || res.AirTempC > 37.0 {
				t.Fatalf("air %.2f°C during melt (frac %.2f), want pinned near 35.7",
					res.AirTempC, res.MeltFrac)
			}
			sawPinned = true
		}
		full = res
	}
	if !sawPinned {
		t.Fatal("never observed bulk melting")
	}
	if full.MeltFrac != 1 {
		t.Fatalf("wax should be fully melted, frac=%v", full.MeltFrac)
	}
	want := PaperServer().SteadyAirTempC(power, 22)
	if math.Abs(full.AirTempC-want) > 0.2 {
		t.Fatalf("post-melt air = %v, want ≈%v", full.AirTempC, want)
	}
}

// While melting, the cooling load is clamped below the applied power:
// the wax absorbs the difference (thermal time shifting).
func TestWaxDefersCoolingLoad(t *testing.T) {
	n := newNode(t)
	const power = 400
	// Warm up to the melting regime.
	for i := 0; i < 60; i++ {
		if _, err := n.Step(power, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	res, err := n.Step(power, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeltFrac <= 0 || res.MeltFrac >= 1 {
		t.Fatalf("expected mid-melt, frac=%v", res.MeltFrac)
	}
	if res.WaxFlowW <= 0 {
		t.Fatalf("wax should be absorbing, flow=%v", res.WaxFlowW)
	}
	if res.CoolingLoadW >= power {
		t.Fatalf("cooling load %v not reduced below power %v", res.CoolingLoadW, power)
	}
	// Step-level balance: load + wax flow + air heating == power.
	// (air term is small near quasi-steady state)
	if res.CoolingLoadW+res.WaxFlowW > power+1 {
		t.Fatalf("flows exceed input: %v + %v > %v", res.CoolingLoadW, res.WaxFlowW, power)
	}
}

// After load drops, melted wax refreezes and releases its stored heat:
// the cooling load temporarily exceeds the applied power.
func TestRefreezeReleasesHeat(t *testing.T) {
	n := newNode(t)
	for i := 0; i < 10*60; i++ {
		if _, err := n.Step(400, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if n.MeltFrac() < 0.5 {
		t.Fatalf("warm-up melted only %v", n.MeltFrac())
	}
	sawRelease := false
	for i := 0; i < 6*60; i++ {
		res, err := n.Step(100, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if res.WaxFlowW < -1 && res.CoolingLoadW > 100 {
			sawRelease = true
		}
	}
	if !sawRelease {
		t.Fatal("refreeze never released heat to the room")
	}
	if n.MeltFrac() > 0.05 {
		t.Fatalf("wax should largely refreeze at idle, frac=%v", n.MeltFrac())
	}
}

// Exact discrete energy conservation across an arbitrary power history.
func TestEnergyConservation(t *testing.T) {
	n := newNode(t)
	powers := []float64{100, 350, 500, 80, 420, 150, 470, 100}
	for _, p := range powers {
		for i := 0; i < 90; i++ {
			if _, err := n.Step(p, time.Minute); err != nil {
				t.Fatal(err)
			}
		}
	}
	led := n.Ledger()
	waxDelta := n.Pack().EnthalpyJ(22) // started solid at 22°C
	balance := led.InputJ - led.EjectedJ - n.AirEnergyJ() - waxDelta
	if math.Abs(balance) > 1e-6*led.InputJ {
		t.Fatalf("energy imbalance %v J of %v J input", balance, led.InputJ)
	}
	if math.Abs(led.WaxStoredJ-waxDelta) > 1e-6*led.InputJ {
		t.Fatalf("ledger wax %v != enthalpy delta %v", led.WaxStoredJ, waxDelta)
	}
}

// Property: conservation holds for random power sequences, and state
// stays within physical bounds.
func TestConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		n, err := NewNode(PaperServer(), pcm.CommercialParaffin(), 22)
		if err != nil {
			return false
		}
		for _, r := range raw {
			p := float64(r % 501)
			if _, err := n.Step(p, 5*time.Minute); err != nil {
				return false
			}
			if n.MeltFrac() < 0 || n.MeltFrac() > 1 {
				return false
			}
		}
		led := n.Ledger()
		balance := led.InputJ - led.EjectedJ - n.AirEnergyJ() - n.Pack().EnthalpyJ(22)
		return math.Abs(balance) <= 1e-6*(led.InputJ+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The calibration anchor: a round-robin server under the paper mix at
// 95% utilization stays just below the melting point (TTS alone cannot
// melt wax in this datacenter), while a hot-group server under VMT
// exceeds it.
func TestCalibrationAnchors(t *testing.T) {
	spec := PaperServer()
	// Round-robin server: paper-mix mean per-core dynamic power.
	mixPerCore := 4.2775 * spec.PowerScale // W/core, see workload.PaperMix
	rrPower := spec.IdlePowerW + 0.95*32*mixPerCore
	rrTemp := spec.SteadyAirTempC(rrPower, 22)
	if rrTemp >= 35.7 {
		t.Fatalf("RR peak steady temp %v must stay below PMT 35.7", rrTemp)
	}
	if rrTemp < 34.5 {
		t.Fatalf("RR peak steady temp %v should approach PMT (calibration drifted)", rrTemp)
	}
	// Hot-group server at GV=22: 18,240 hot cores over 616 servers.
	hotPerCore := 6.3198 * spec.PowerScale
	hotPower := spec.IdlePowerW + 18240.0/616*hotPerCore
	hotTemp := spec.SteadyAirTempC(hotPower, 22)
	if hotTemp <= 35.7+1 {
		t.Fatalf("hot group steady temp %v must clear PMT with margin", hotTemp)
	}
}

func TestSetInletTemp(t *testing.T) {
	n := newNode(t)
	n.SetInletTempC(24)
	if n.InletTempC() != 24 {
		t.Fatalf("inlet = %v", n.InletTempC())
	}
	for i := 0; i < 300; i++ {
		if _, err := n.Step(100, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	want := PaperServer().SteadyAirTempC(100, 24)
	if math.Abs(n.AirTempC()-want) > 0.1 {
		t.Fatalf("air = %v, want %v", n.AirTempC(), want)
	}
}

func TestStepSubdividesLongSteps(t *testing.T) {
	// A single 1-hour step must land on the same state as 60 1-minute
	// steps (both subdivide to the same 10s grid).
	a := newNode(t)
	b := newNode(t)
	if _, err := a.Step(400, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := b.Step(400, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(a.AirTempC()-b.AirTempC()) > 1e-9 {
		t.Fatalf("air temps diverge: %v vs %v", a.AirTempC(), b.AirTempC())
	}
	if math.Abs(a.MeltFrac()-b.MeltFrac()) > 1e-12 {
		t.Fatalf("melt fracs diverge: %v vs %v", a.MeltFrac(), b.MeltFrac())
	}
}

func TestCPUTempAndThrottle(t *testing.T) {
	spec := PaperServer()
	// Idle: die at air temperature.
	if got := spec.CPUTempC(spec.IdlePowerW, 30); got != 30 {
		t.Fatalf("idle die temp = %v", got)
	}
	// Below idle power is clamped.
	if got := spec.CPUTempC(50, 30); got != 30 {
		t.Fatalf("sub-idle die temp = %v", got)
	}
	// Full dynamic power: 400 W over 4 sockets × 0.25 K/W = +25 °C.
	if got := spec.CPUTempC(500, 40); math.Abs(got-65) > 1e-12 {
		t.Fatalf("full-load die temp = %v, want 65", got)
	}
	if spec.WouldThrottle(500, 40) {
		t.Fatal("65 °C should not throttle")
	}
	if !spec.WouldThrottle(500, 61) {
		t.Fatal("86 °C should throttle")
	}
	// Zero limit disables the check.
	spec.CPULimitC = 0
	if spec.WouldThrottle(500, 200) {
		t.Fatal("disabled limit should never throttle")
	}
	spec = PaperServer()
	spec.CPUThermalResistanceKPerW = -1
	if err := spec.Validate(); err == nil {
		t.Fatal("negative resistance should fail validation")
	}
}
