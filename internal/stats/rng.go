package stats

import "math"

// RNG is a small, deterministic pseudo-random number generator used for
// reproducible experiments (inlet temperature variation, trace noise).
//
// It implements SplitMix64, which has excellent statistical quality for
// the modest demands of this simulator and — unlike math/rand's global
// state — guarantees identical streams across runs and platforms for a
// given seed. The zero value is usable and equivalent to NewRNG(0).
type RNG struct {
	state uint64
	// spare caches the second deviate produced by the Box–Muller
	// transform so Normal() consumes one uniform pair per two calls.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normal deviate with the given mean and standard
// deviation using the Marsaglia polar form of Box–Muller.
func (r *RNG) Normal(mean, stdev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stdev*r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 { //vmtlint:allow floateq Marsaglia rejection of the exact degenerate draw
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return mean + stdev*u*m
	}
}

// Poisson draws a Poisson deviate with the given mean using inversion
// for small means and a normal approximation for large ones.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(r.Normal(lambda, math.Sqrt(lambda)) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Mix64 applies the SplitMix64 finalizer to x: a bijective avalanche
// mix. Callers use it to derive decorrelated substream seeds from
// (seed, index) pairs — the basis of random-access generators whose
// value at index i is a pure function of the seed, independent of how
// many other indices were evaluated first.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Shuffle permutes the integers [0,n) uniformly (Fisher–Yates) and
// returns the permutation.
func (r *RNG) Shuffle(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
