package stats

import (
	"fmt"
	"time"
)

// Series is a uniformly sampled time series: Values[i] is the sample at
// Start + i×Step. It is the common currency between the simulator
// (which produces per-minute samples) and the reporting layer.
type Series struct {
	Start  time.Duration // simulation time of Values[0]
	Step   time.Duration // sampling interval, > 0
	Values []float64
}

// NewSeries returns an empty series with the given step.
func NewSeries(step time.Duration) *Series {
	if step <= 0 {
		panic("stats: series step must be positive")
	}
	return &Series{Step: step}
}

// NewSeriesCap returns an empty series with capacity preallocated for
// n samples — the simulator knows its sample count up front, and
// growing per-minute series by repeated append doubling is measurable
// across a sweep.
func NewSeriesCap(step time.Duration, n int) *Series {
	s := NewSeries(step)
	if n > 0 {
		s.Values = make([]float64, 0, n)
	}
	return s
}

// Append adds a sample at the next slot.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the simulation time of sample i.
func (s *Series) TimeAt(i int) time.Duration {
	return s.Start + time.Duration(i)*s.Step
}

// Peak returns the maximum sample and its time. It returns an error on
// an empty series.
func (s *Series) Peak() (float64, time.Duration, error) {
	i := MaxIndex(s.Values)
	if i < 0 {
		return 0, 0, ErrEmpty
	}
	return s.Values[i], s.TimeAt(i), nil
}

// Mean returns the mean of the samples.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// WindowMax returns a new series where each sample is the maximum over
// a trailing window of n samples (n ≥ 1). Used to smooth instantaneous
// cooling load into a "provisioning" view.
func (s *Series) WindowMax(n int) *Series {
	if n < 1 {
		panic("stats: window must be >= 1")
	}
	out := &Series{Start: s.Start, Step: s.Step, Values: make([]float64, len(s.Values))}
	for i := range s.Values {
		lo := i - n + 1
		if lo < 0 {
			lo = 0
		}
		m := s.Values[lo]
		for _, v := range s.Values[lo+1 : i+1] {
			if v > m {
				m = v
			}
		}
		out.Values[i] = m
	}
	return out
}

// Downsample returns every k-th sample (k ≥ 1), preserving the start
// time. Useful to thin per-minute data for plotting.
func (s *Series) Downsample(k int) *Series {
	if k < 1 {
		panic("stats: downsample factor must be >= 1")
	}
	out := &Series{Start: s.Start, Step: s.Step * time.Duration(k)}
	for i := 0; i < len(s.Values); i += k {
		out.Values = append(out.Values, s.Values[i])
	}
	return out
}

// String summarizes the series for debugging.
func (s *Series) String() string {
	if len(s.Values) == 0 {
		return fmt.Sprintf("Series(step=%v, empty)", s.Step)
	}
	peak, at, _ := s.Peak()
	return fmt.Sprintf("Series(step=%v, n=%d, mean=%.2f, peak=%.2f@%v)",
		s.Step, len(s.Values), s.Mean(), peak, at)
}
