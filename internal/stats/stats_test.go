package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	got := Mean([]float64{1, 2, 3, 4})
	if got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestSumKahanStability(t *testing.T) {
	// 1e7 additions of 0.1 should land very close to 1e6.
	xs := make([]float64, 1e7)
	for i := range xs {
		xs[i] = 0.1
	}
	got := Sum(xs)
	if math.Abs(got-1e6) > 1e-6 {
		t.Fatalf("Sum drift: got %v, want 1e6", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Fatalf("Min = %v, %v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 7 {
		t.Fatalf("Max = %v, %v", hi, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMaxIndex(t *testing.T) {
	if got := MaxIndex(nil); got != -1 {
		t.Fatalf("MaxIndex(nil) = %d, want -1", got)
	}
	if got := MaxIndex([]float64{1, 5, 5, 2}); got != 1 {
		t.Fatalf("MaxIndex = %d, want first occurrence 1", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{4}); got != 0 {
		t.Fatalf("StdDev single = %v, want 0", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("Percentile(nil) err = %v", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("Percentile(101) should error")
	}
	// Input must not be mutated.
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-9) > 1e-12 {
		t.Fatalf("Percentile(90) = %v, want 9", got)
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
	if Lerp(10, 20, 0.5) != 15 {
		t.Fatal("Lerp misbehaves")
	}
}

// Property: percentile is monotonic in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		prev := lo
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(xs, p)
			if err != nil {
				return false
			}
			if v < prev-1e-9 || v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp always returns a value within [lo,hi] when lo <= hi.
func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
