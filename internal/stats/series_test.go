package stats

import (
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries(time.Minute)
	for _, v := range []float64{1, 5, 3} {
		s.Append(v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.TimeAt(2); got != 2*time.Minute {
		t.Fatalf("TimeAt(2) = %v", got)
	}
	peak, at, err := s.Peak()
	if err != nil || peak != 5 || at != time.Minute {
		t.Fatalf("Peak = %v @ %v, err %v", peak, at, err)
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestSeriesPeakEmpty(t *testing.T) {
	s := NewSeries(time.Second)
	if _, _, err := s.Peak(); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestNewSeriesPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive step")
		}
	}()
	NewSeries(0)
}

func TestWindowMax(t *testing.T) {
	s := NewSeries(time.Minute)
	for _, v := range []float64{1, 3, 2, 5, 0} {
		s.Append(v)
	}
	w := s.WindowMax(2)
	want := []float64{1, 3, 3, 5, 5}
	for i, v := range want {
		if w.Values[i] != v {
			t.Fatalf("WindowMax[%d] = %v, want %v", i, w.Values[i], v)
		}
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries(time.Minute)
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	d := s.Downsample(3)
	if d.Step != 3*time.Minute {
		t.Fatalf("Step = %v", d.Step)
	}
	want := []float64{0, 3, 6, 9}
	if len(d.Values) != len(want) {
		t.Fatalf("len = %d", len(d.Values))
	}
	for i, v := range want {
		if d.Values[i] != v {
			t.Fatalf("Downsample[%d] = %v, want %v", i, d.Values[i], v)
		}
	}
}

func TestSeriesString(t *testing.T) {
	s := NewSeries(time.Minute)
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
	s.Append(4)
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}
