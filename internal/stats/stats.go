// Package stats provides small numeric helpers shared by the VMT
// simulator: summary statistics, percentiles, and deterministic
// pseudo-random deviates for reproducible experiments.
//
// Everything here operates on plain float64 slices. Functions never
// mutate their inputs unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensation so that long,
// fine-grained simulation series (tens of millions of small energy
// increments) do not accumulate drift.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MaxIndex returns the index of the largest element (first occurrence),
// or -1 for empty input.
func MaxIndex(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// StdDev returns the population standard deviation of xs (0 for fewer
// than two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. The input is not
// modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
