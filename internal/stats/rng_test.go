package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	mu := Mean(xs)
	sd := StdDev(xs)
	if math.Abs(mu-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ≈10", mu)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("Normal stdev = %v, want ≈2", sd)
	}
}

func TestNormalZeroStdev(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if got := r.Normal(3, 0); got != 3 {
			t.Fatalf("Normal(3,0) = %v", got)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Shuffle(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformityRough(t *testing.T) {
	// Chi-square-ish sanity check over 16 buckets.
	r := NewRNG(123)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*16)]++
	}
	want := n / 16
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates from %d", i, c, want)
		}
	}
}
