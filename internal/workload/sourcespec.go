package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// SourceSpec is the declarative, JSON-serializable description of an
// open-loop job source — the arrival-stream sibling of fault.Plan. A
// spec names a generator kind and its parameters; unknown fields are
// rejected, valid specs re-encode to a canonical fixed point (the
// property the run-cache key depends on), and New builds the
// JobSource.
//
// Kinds and their parameters (cross-kind parameters must be unset):
//
//	"poisson":    level, events        — shot noise around level
//	"bursty":     level, burst_util, burst_prob, epoch_min — MMPP on/off
//	"flashcrowd": level, spike_util, spike_every_min, spike_decay_min
//
// step_s (default 60) sets the sampling granularity of the per-tick
// kinds; seed selects the deterministic stream.
type SourceSpec struct {
	// Kind selects the generator: "poisson", "bursty", or "flashcrowd".
	Kind string `json:"kind"`
	// Seed drives the generator's substreams; same seed, same stream.
	Seed uint64 `json:"seed,omitempty"`
	// StepS is the sampling granularity in seconds (default 60).
	StepS float64 `json:"step_s,omitempty"`
	// Level is the base (calm/mean) target utilization in (0,1].
	Level float64 `json:"level,omitempty"`

	// Events is the poisson kind's mean arrival events per step;
	// relative noise is 1/sqrt(events).
	Events float64 `json:"events,omitempty"`

	// BurstUtil is the bursty kind's in-burst utilization in (0,1].
	BurstUtil float64 `json:"burst_util,omitempty"`
	// BurstProb is the per-epoch burst probability in (0,1].
	BurstProb float64 `json:"burst_prob,omitempty"`
	// EpochMin is the bursty kind's epoch length in minutes.
	EpochMin float64 `json:"epoch_min,omitempty"`

	// SpikeUtil is the flashcrowd kind's spike amplitude (added to
	// Level, clamped to 1).
	SpikeUtil float64 `json:"spike_util,omitempty"`
	// SpikeEveryMin is the flashcrowd window length in minutes: one
	// spike launches per window.
	SpikeEveryMin float64 `json:"spike_every_min,omitempty"`
	// SpikeDecayMin is the spike's exponential decay constant in
	// minutes.
	SpikeDecayMin float64 `json:"spike_decay_min,omitempty"`
}

// isSet reports whether a float parameter was explicitly provided.
// Comparing bit patterns sidesteps float equality: only the exact zero
// value (the JSON-absent default) reads as unset.
func isSet(v float64) bool { return math.Float64bits(v) != 0 }

// finitePositive reports a usable parameter value: set, finite, > 0.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// Validate reports whether the spec is well-formed: a known kind, its
// required parameters in range, and no parameters from other kinds.
func (s *SourceSpec) Validate() error {
	type param struct {
		name string
		val  float64
	}
	poisson := []param{{"events", s.Events}}
	bursty := []param{{"burst_util", s.BurstUtil}, {"burst_prob", s.BurstProb}, {"epoch_min", s.EpochMin}}
	flash := []param{{"spike_util", s.SpikeUtil}, {"spike_every_min", s.SpikeEveryMin}, {"spike_decay_min", s.SpikeDecayMin}}

	var foreign []param
	switch s.Kind {
	case "poisson":
		foreign = append(bursty, flash...)
		if !finitePositive(s.Events) {
			return fmt.Errorf("workload: poisson source needs events > 0, got %v", s.Events)
		}
		if !(s.Level > 0 && s.Level <= 1) {
			return fmt.Errorf("workload: poisson source needs level in (0,1], got %v", s.Level)
		}
	case "bursty":
		foreign = append(poisson, flash...)
		if !(s.Level > 0 && s.Level <= 1) {
			return fmt.Errorf("workload: bursty source needs level in (0,1], got %v", s.Level)
		}
		if !(s.BurstUtil > 0 && s.BurstUtil <= 1) {
			return fmt.Errorf("workload: bursty source needs burst_util in (0,1], got %v", s.BurstUtil)
		}
		if !(s.BurstProb > 0 && s.BurstProb <= 1) {
			return fmt.Errorf("workload: bursty source needs burst_prob in (0,1], got %v", s.BurstProb)
		}
		if !finitePositive(s.EpochMin) {
			return fmt.Errorf("workload: bursty source needs epoch_min > 0, got %v", s.EpochMin)
		}
	case "flashcrowd":
		foreign = append(poisson, bursty...)
		if !(s.Level > 0 && s.Level <= 1) {
			return fmt.Errorf("workload: flashcrowd source needs level in (0,1], got %v", s.Level)
		}
		if !(s.SpikeUtil > 0 && s.SpikeUtil <= 1) {
			return fmt.Errorf("workload: flashcrowd source needs spike_util in (0,1], got %v", s.SpikeUtil)
		}
		if !finitePositive(s.SpikeEveryMin) {
			return fmt.Errorf("workload: flashcrowd source needs spike_every_min > 0, got %v", s.SpikeEveryMin)
		}
		if !finitePositive(s.SpikeDecayMin) {
			return fmt.Errorf("workload: flashcrowd source needs spike_decay_min > 0, got %v", s.SpikeDecayMin)
		}
	default:
		return fmt.Errorf("workload: unknown source kind %q", s.Kind)
	}
	for _, p := range foreign {
		if isSet(p.val) {
			return fmt.Errorf("workload: %s does not apply to kind %q", p.name, s.Kind)
		}
	}
	if isSet(s.StepS) && !finitePositive(s.StepS) {
		return fmt.Errorf("workload: step_s must be > 0, got %v", s.StepS)
	}
	return nil
}

// Step returns the sampling granularity: StepS seconds, defaulting to
// one minute when unset.
func (s *SourceSpec) Step() time.Duration {
	if !isSet(s.StepS) {
		return time.Minute
	}
	return time.Duration(s.StepS * float64(time.Second))
}

// New validates the spec and builds its JobSource.
func (s *SourceSpec) New() (JobSource, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	minutes := func(m float64) time.Duration {
		return time.Duration(m * float64(time.Minute))
	}
	switch s.Kind {
	case "poisson":
		return NewPoissonSource(s.Seed, s.Step(), s.Level, s.Events), nil
	case "bursty":
		return NewBurstySource(s.Seed, minutes(s.EpochMin), s.Level, s.BurstUtil, s.BurstProb), nil
	case "flashcrowd":
		return NewFlashCrowdSource(s.Seed, s.Level, s.SpikeUtil,
			minutes(s.SpikeEveryMin), minutes(s.SpikeDecayMin)), nil
	}
	return nil, fmt.Errorf("workload: unknown source kind %q", s.Kind)
}

// ParseSourceSpec decodes and validates a spec from JSON, rejecting
// unknown fields so typos fail loudly instead of silently defaulting.
func ParseSourceSpec(data []byte) (*SourceSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SourceSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: decoding source spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
