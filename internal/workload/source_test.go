package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// Every generator must be a pure function of (config, now): evaluating
// instants in any order, with repeats, yields the same values as a
// fresh source evaluated in ascending order. This is the property that
// makes stepped sessions resumable.
func TestSourcesAreRandomAccess(t *testing.T) {
	sources := map[string]func() JobSource{
		"poisson": func() JobSource { return NewPoissonSource(7, time.Minute, 0.6, 25) },
		"bursty":  func() JobSource { return NewBurstySource(7, 15*time.Minute, 0.3, 0.9, 0.2) },
		"flashcrowd": func() JobSource {
			return NewFlashCrowdSource(7, 0.3, 0.5, 30*time.Minute, 10*time.Minute)
		},
	}
	for name, mk := range sources {
		t.Run(name, func(t *testing.T) {
			ordered := mk()
			want := make([]float64, 200)
			for i := range want {
				want[i] = ordered.At(time.Duration(i) * 37 * time.Second)
			}
			f := func(perm []uint8) bool {
				scattered := mk()
				// Evaluate a scattered subset first, then re-check the
				// full ascending sweep bit for bit.
				for _, p := range perm {
					scattered.At(time.Duration(p) * 37 * time.Second)
				}
				for i := range want {
					got := scattered.At(time.Duration(i) * 37 * time.Second)
					if math.Float64bits(got) != math.Float64bits(want[i]) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSourcesStayInRange(t *testing.T) {
	sources := []JobSource{
		NewPoissonSource(3, time.Minute, 0.95, 4), // few events: high relative noise
		NewBurstySource(3, time.Minute, 0.05, 1.0, 0.9),
		NewFlashCrowdSource(3, 0.8, 1.0, 5*time.Minute, 20*time.Minute), // stacking tails
	}
	for _, src := range sources {
		for i := 0; i < 10000; i++ {
			u := src.At(time.Duration(i) * 30 * time.Second)
			if math.IsNaN(u) || u < 0 || u > 1 {
				t.Fatalf("%T.At(tick %d) = %v, out of [0,1]", src, i, u)
			}
		}
		if src.Horizon() != 0 {
			t.Fatalf("%T.Horizon() = %v, want open-ended 0", src, src.Horizon())
		}
	}
}

func TestPoissonSourceTracksLevel(t *testing.T) {
	src := NewPoissonSource(11, time.Minute, 0.5, 100)
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += src.At(time.Duration(i) * time.Minute)
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean utilization %v, want ≈0.5", mean)
	}
}

func TestBurstySourceBurstFraction(t *testing.T) {
	src := NewBurstySource(11, 10*time.Minute, 0.2, 0.9, 0.25)
	bursts, epochs := 0, 2000
	for e := 0; e < epochs; e++ {
		u := src.At(time.Duration(e) * 10 * time.Minute)
		switch {
		case u > 0.85:
			bursts++
		case u > 0.25:
			t.Fatalf("epoch %d utilization %v is neither calm nor burst", e, u)
		}
	}
	frac := float64(bursts) / float64(epochs)
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("burst fraction %v, want ≈0.25", frac)
	}
}

func TestFlashCrowdSpikesAndDecays(t *testing.T) {
	src := NewFlashCrowdSource(5, 0.2, 0.6, time.Hour, 10*time.Minute)
	// Scan a day at fine resolution: must see at least one clear spike
	// above base, and the long-run minimum must return near base.
	peak, trough := 0.0, 1.0
	for i := 0; i < 24*60; i++ {
		u := src.At(time.Duration(i) * time.Minute)
		peak = math.Max(peak, u)
		trough = math.Min(trough, u)
	}
	if peak < 0.5 {
		t.Fatalf("peak %v: spikes not visible above base 0.2", peak)
	}
	if trough > 0.25 {
		t.Fatalf("trough %v: spikes never decay back toward base 0.2", trough)
	}
}

func TestSourceSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec SourceSpec
		ok   bool
	}{
		{"poisson ok", SourceSpec{Kind: "poisson", Level: 0.6, Events: 25}, true},
		{"bursty ok", SourceSpec{Kind: "bursty", Level: 0.3, BurstUtil: 0.9, BurstProb: 0.2, EpochMin: 15}, true},
		{"flashcrowd ok", SourceSpec{Kind: "flashcrowd", Level: 0.3, SpikeUtil: 0.5, SpikeEveryMin: 30, SpikeDecayMin: 10}, true},
		{"unknown kind", SourceSpec{Kind: "diurnal", Level: 0.5}, false},
		{"empty kind", SourceSpec{}, false},
		{"poisson no events", SourceSpec{Kind: "poisson", Level: 0.6}, false},
		{"poisson level over 1", SourceSpec{Kind: "poisson", Level: 1.5, Events: 10}, false},
		{"poisson nan events", SourceSpec{Kind: "poisson", Level: 0.5, Events: math.NaN()}, false},
		{"poisson inf level", SourceSpec{Kind: "poisson", Level: math.Inf(1), Events: 10}, false},
		{"cross-kind field", SourceSpec{Kind: "poisson", Level: 0.6, Events: 25, BurstProb: 0.1}, false},
		{"bursty with spike", SourceSpec{Kind: "bursty", Level: 0.3, BurstUtil: 0.9, BurstProb: 0.2, EpochMin: 15, SpikeUtil: 0.5}, false},
		{"bad step", SourceSpec{Kind: "poisson", Level: 0.6, Events: 25, StepS: -1}, false},
		{"burst prob over 1", SourceSpec{Kind: "bursty", Level: 0.3, BurstUtil: 0.9, BurstProb: 1.2, EpochMin: 15}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("invalid spec accepted")
			}
			if c.ok {
				src, err := c.spec.New()
				if err != nil || src == nil {
					t.Fatalf("New() = %v, %v", src, err)
				}
			}
		})
	}
}

func TestParseSourceSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSourceSpec([]byte(`{"kind":"poisson","level":0.5,"events":10,"typo":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	spec, err := ParseSourceSpec([]byte(`{"kind":"poisson","level":0.5,"events":10,"step_s":30}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Step() != 30*time.Second {
		t.Fatalf("Step() = %v, want 30s", spec.Step())
	}
	if (&SourceSpec{Kind: "poisson", Level: 0.5, Events: 10}).Step() != time.Minute {
		t.Fatal("default step should be one minute")
	}
}
