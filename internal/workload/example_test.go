package workload_test

import (
	"fmt"

	"vmt/internal/workload"
)

func ExampleTableI() {
	for _, w := range workload.TableI() {
		fmt.Printf("%-13s %5.1f W  %s\n", w.Name, w.CPUPowerW, w.Class)
	}
	// Output:
	// WebSearch      37.2 W  hot
	// DataCaching    13.5 W  cold
	// VideoEncoding  60.9 W  hot
	// VirusScan       3.4 W  cold
	// Clustering     59.5 W  hot
}

func ExampleMix_HotShare() {
	fmt.Printf("%.0f%% of the paper mix is hot-class work\n",
		workload.PaperMix().HotShare()*100)
	// Output: 60% of the paper mix is hot-class work
}

func ExampleNewMix() {
	mix, err := workload.NewMix(
		workload.MixEntry{Workload: workload.WebSearch, Share: 3},
		workload.MixEntry{Workload: workload.DataCaching, Share: 1},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("search share after normalization: %.2f\n", mix.Share("WebSearch"))
	// Output: search share after normalization: 0.75
}
