package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIMatchesPaper(t *testing.T) {
	want := []struct {
		name  string
		power float64
		class Class
	}{
		{"WebSearch", 37.2, Hot},
		{"DataCaching", 13.5, Cold},
		{"VideoEncoding", 60.9, Hot},
		{"VirusScan", 3.4, Cold},
		{"Clustering", 59.5, Hot},
	}
	got := TableI()
	if len(got) != len(want) {
		t.Fatalf("TableI has %d entries", len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.name || g.CPUPowerW != w.power || g.Class != w.class {
			t.Errorf("TableI[%d] = %+v, want %+v", i, g, w)
		}
	}
}

func TestClassString(t *testing.T) {
	if Hot.String() != "hot" || Cold.String() != "cold" {
		t.Fatal("Class.String mismatch")
	}
}

func TestPerCorePower(t *testing.T) {
	if got := WebSearch.PerCorePowerW(); math.Abs(got-37.2/8) > 1e-12 {
		t.Fatalf("per-core power = %v", got)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("Clustering")
	if err != nil || w.CPUPowerW != 59.5 {
		t.Fatalf("ByName: %v, %v", w, err)
	}
	if _, err := ByName("Nope"); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestValidate(t *testing.T) {
	if err := (Workload{Name: "", CPUPowerW: 1}).Validate(); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := (Workload{Name: "x", CPUPowerW: 0}).Validate(); err == nil {
		t.Fatal("zero power should fail")
	}
	for _, w := range TableI() {
		if err := w.Validate(); err != nil {
			t.Errorf("TableI %s invalid: %v", w.Name, err)
		}
	}
}

func TestPaperMixHotShare(t *testing.T) {
	m := PaperMix()
	// 25+15+20 = 60% hot per Section IV-E ("roughly 60-40 split").
	if got := m.HotShare(); math.Abs(got-0.60) > 1e-12 {
		t.Fatalf("hot share = %v, want 0.60", got)
	}
}

func TestMixNormalization(t *testing.T) {
	m, err := NewMix(MixEntry{WebSearch, 2}, MixEntry{VirusScan, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Share("WebSearch"); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("share = %v, want 0.25", got)
	}
	if got := m.Share("VirusScan"); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("share = %v, want 0.75", got)
	}
	if got := m.Share("Absent"); got != 0 {
		t.Fatalf("absent share = %v", got)
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewMix(); err == nil {
		t.Fatal("empty mix should fail")
	}
	if _, err := NewMix(MixEntry{WebSearch, 0}); err == nil {
		t.Fatal("zero share should fail")
	}
	if _, err := NewMix(MixEntry{WebSearch, 1}, MixEntry{WebSearch, 1}); err == nil {
		t.Fatal("duplicate entries should fail")
	}
}

func TestMixEntriesAreCopies(t *testing.T) {
	m := PaperMix()
	es := m.Entries()
	es[0].Share = 99
	if m.Entries()[0].Share == 99 {
		t.Fatal("Entries leaked internal state")
	}
}

func TestMeanPerCorePower(t *testing.T) {
	m, err := NewMix(MixEntry{WebSearch, 0.5}, MixEntry{DataCaching, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*37.2/8 + 0.5*13.5/8
	if got := m.MeanPerCorePowerW(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean per-core power = %v, want %v", got, want)
	}
}

func TestPairMix(t *testing.T) {
	m, err := PairMix(WebSearch, DataCaching, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Share("WebSearch")-0.3) > 1e-12 {
		t.Fatalf("ratio share = %v", m.Share("WebSearch"))
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if _, err := PairMix(WebSearch, DataCaching, bad); err == nil {
			t.Errorf("ratio %v should fail", bad)
		}
	}
}

// Property: mix shares always normalize to 1 and stay positive.
func TestMixNormalizationProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		sa, sb, sc := float64(a)+1, float64(b)+1, float64(c)+1
		m, err := NewMix(
			MixEntry{WebSearch, sa},
			MixEntry{DataCaching, sb},
			MixEntry{Clustering, sc},
		)
		if err != nil {
			return false
		}
		var sum float64
		for _, e := range m.Entries() {
			if e.Share <= 0 {
				return false
			}
			sum += e.Share
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
