// Package workload defines the five Google-style datacenter workloads
// of the VMT paper's scale-out study (Table I), their thermal
// classification, and standard mixes.
//
// All five are user-facing: Web Search and Data Caching are latency
// critical (millisecond/microsecond QoS); Video Encoding, Virus
// Scanning, and Clustering demand near-term completion but tolerate
// seconds of slack, enabling contention-mitigation colocation.
package workload

import (
	"fmt"
	"sort"
)

// Class is the VMT thermal classification of a workload: hot jobs can
// melt significant wax over a peak load cycle when grouped with other
// hot jobs; cold jobs cannot.
type Class int

const (
	// Cold workloads have power/temperature profiles too low to melt
	// wax even in isolation.
	Cold Class = iota
	// Hot workloads melt significant wax when colocated with other
	// hot jobs over a peak cycle.
	Hot
)

// String returns "hot" or "cold", matching the Table I labels.
func (c Class) String() string {
	if c == Hot {
		return "hot"
	}
	return "cold"
}

// Workload describes one of the service types placed on the cluster.
type Workload struct {
	// Name identifies the workload ("WebSearch", …).
	Name string
	// CPUPowerW is the dynamic power of the workload saturating a
	// single 8-core Xeon E7-4809 v4 CPU (Table I; each server carries
	// four such CPUs).
	CPUPowerW float64
	// Class is the VMT hot/cold classification derived from the power
	// profile.
	Class Class
	// LatencyCritical marks the strict-QoS services (Web Search, Data
	// Caching) whose queries cannot be deferred at all.
	LatencyCritical bool
}

// CoresPerCPU is the core count of the Xeon E7-4809 v4 that the
// Table I per-CPU wattages are normalized to.
const CoresPerCPU = 8

// PerCorePowerW returns the workload's dynamic power per occupied core.
func (w Workload) PerCorePowerW() float64 { return w.CPUPowerW / CoresPerCPU }

// Validate reports whether the definition is usable.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if w.CPUPowerW <= 0 {
		return fmt.Errorf("workload %s: non-positive CPU power %v", w.Name, w.CPUPowerW)
	}
	return nil
}

// The Table I workload catalog.
var (
	// WebSearch is the CloudSuite Web Search benchmark: sharded index
	// serving with strict QoS. Hot.
	WebSearch = Workload{Name: "WebSearch", CPUPowerW: 37.2, Class: Hot, LatencyCritical: true}
	// DataCaching is CloudSuite's Memcached serving a social-media
	// working set: memory bound, low CPU power. Cold.
	DataCaching = Workload{Name: "DataCaching", CPUPowerW: 13.5, Class: Cold, LatencyCritical: true}
	// VideoEncoding is SPEC 2006 h264: re-encoding uploads at several
	// bitrates. Compute heavy. Hot.
	VideoEncoding = Workload{Name: "VideoEncoding", CPUPowerW: 60.9, Class: Hot}
	// VirusScan scans freshly uploaded files before sharing. Very low
	// CPU power. Cold.
	VirusScan = Workload{Name: "VirusScan", CPUPowerW: 3.4, Class: Cold}
	// Clustering computes ad-targeting clusters from user actions.
	// Compute intensive. Hot.
	Clustering = Workload{Name: "Clustering", CPUPowerW: 59.5, Class: Hot}
)

// TableI returns the five scale-out-study workloads in the paper's
// table order.
func TableI() []Workload {
	return []Workload{WebSearch, DataCaching, VideoEncoding, VirusScan, Clustering}
}

// ByName returns the Table I workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range TableI() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Mix assigns each workload a share of the total cluster load. Shares
// must be positive and are normalized to sum to one.
type Mix struct {
	entries []MixEntry
}

// MixEntry is one workload's share of a Mix.
type MixEntry struct {
	Workload Workload
	Share    float64
}

// NewMix builds a mix from workload/share pairs, normalizing shares.
func NewMix(entries ...MixEntry) (*Mix, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	var total float64
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if err := e.Workload.Validate(); err != nil {
			return nil, err
		}
		if e.Share <= 0 {
			return nil, fmt.Errorf("workload: share for %s must be positive, got %v",
				e.Workload.Name, e.Share)
		}
		if seen[e.Workload.Name] {
			return nil, fmt.Errorf("workload: duplicate mix entry %s", e.Workload.Name)
		}
		seen[e.Workload.Name] = true
		total += e.Share
	}
	mix := &Mix{entries: make([]MixEntry, len(entries))}
	copy(mix.entries, entries)
	for i := range mix.entries {
		mix.entries[i].Share /= total
	}
	// Deterministic ordering by name for reproducibility.
	sort.Slice(mix.entries, func(i, j int) bool {
		return mix.entries[i].Workload.Name < mix.entries[j].Workload.Name
	})
	return mix, nil
}

// Entries returns the normalized entries in name order.
func (m *Mix) Entries() []MixEntry {
	out := make([]MixEntry, len(m.entries))
	copy(out, m.entries)
	return out
}

// HotShare returns the fraction of load carried by hot-class
// workloads.
func (m *Mix) HotShare() float64 {
	var hot float64
	for _, e := range m.entries {
		if e.Workload.Class == Hot {
			hot += e.Share
		}
	}
	return hot
}

// Share returns the normalized share of the named workload (0 if
// absent).
func (m *Mix) Share(name string) float64 {
	for _, e := range m.entries {
		if e.Workload.Name == name {
			return e.Share
		}
	}
	return 0
}

// MeanPerCorePowerW returns the load-weighted mean per-core dynamic
// power of the mix — what a perfectly balanced (round-robin) scheduler
// sees on every server.
func (m *Mix) MeanPerCorePowerW() float64 {
	var p float64
	for _, e := range m.entries {
		p += e.Share * e.Workload.PerCorePowerW()
	}
	return p
}

// PaperMix returns the scale-out study's five-workload mix: the total
// Google-trace load divided so hot jobs carry roughly 60% and cold jobs
// 40% (Section IV-E).
func PaperMix() *Mix {
	m, err := NewMix(
		MixEntry{WebSearch, 0.25},
		MixEntry{DataCaching, 0.25},
		MixEntry{VideoEncoding, 0.15},
		MixEntry{VirusScan, 0.15},
		MixEntry{Clustering, 0.20},
	)
	if err != nil {
		panic("workload: PaperMix is invalid: " + err.Error())
	}
	return m
}

// PairMix returns a two-workload mix with the given work ratio
// (fraction of load on a; the remainder on b). Used by the Figure 1
// feasibility sweeps. ratio must lie strictly inside (0,1) to keep
// both entries present; use ratio 0/1 via single-workload mixes.
func PairMix(a, b Workload, ratio float64) (*Mix, error) {
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("workload: pair ratio must be in (0,1), got %v", ratio)
	}
	return NewMix(MixEntry{a, ratio}, MixEntry{b, 1 - ratio})
}
