package workload

import (
	"math"
	"time"

	"vmt/internal/stats"
)

// JobSource supplies the cluster's target utilization over time. It is
// the seam between load generation and placement: the finite diurnal
// trace satisfies it, and so do the open-loop generators below, so the
// schedulers never know whether they are replaying the paper's two-day
// trace or absorbing a synthetic arrival stream.
//
// Implementations must be deterministic pure functions of their
// configuration: At(d) returns the same value no matter how many other
// instants were evaluated first. That property is what lets a stepped
// session resume mid-run bit-identically to a monolithic one.
type JobSource interface {
	// At returns the target fleet utilization in [0,1] at simulation
	// time now.
	At(now time.Duration) float64
	// Horizon returns the time at which the source is exhausted. Zero
	// means open-ended: the source generates load forever and the
	// caller decides when to stop.
	Horizon() time.Duration
}

// Substream salts keep the generators' per-index RNG streams disjoint
// even under identical seeds.
const (
	saltPoisson    = 0x706f6973736f6e31 // "poisson1"
	saltBursty     = 0x6275727374793131 // "bursty11"
	saltFlashCrowd = 0x666c617368637231 // "flashcr1"
)

// subRNG returns a generator whose stream is a pure function of
// (seed, salt, index): random access into a family of decorrelated
// substreams, one per tick or epoch.
func subRNG(seed, salt, index uint64) *stats.RNG {
	return stats.NewRNG(stats.Mix64(seed ^ (salt + 0x9e3779b97f4a7c15*index)))
}

// PoissonSource models steady traffic with shot noise: each step-long
// tick draws an independent Poisson count of arrival events around a
// configured mean, so utilization fluctuates around Level with
// relative noise 1/sqrt(Events). Open-ended.
type PoissonSource struct {
	seed   uint64
	step   time.Duration
	level  float64 // mean target utilization in (0,1]
	events float64 // mean arrival events per step; larger = smoother
}

// NewPoissonSource builds a shot-noise source around mean utilization
// level with the given mean events per step. step is the sampling
// granularity; the same (seed, step) pair reproduces the same stream.
func NewPoissonSource(seed uint64, step time.Duration, level, events float64) *PoissonSource {
	return &PoissonSource{seed: seed, step: step, level: level, events: events}
}

// At returns the tick's utilization: Level scaled by the tick's Poisson
// event count over its mean.
func (s *PoissonSource) At(now time.Duration) float64 {
	if now < 0 {
		now = 0
	}
	i := uint64(now / s.step)
	n := subRNG(s.seed, saltPoisson, i).Poisson(s.events)
	return stats.Clamp(s.level*float64(n)/s.events, 0, 1)
}

// Horizon reports the source as open-ended.
func (s *PoissonSource) Horizon() time.Duration { return 0 }

// BurstySource is a two-state modulated process (an MMPP in discrete
// time): load sits at a calm Level, but each epoch independently flips
// into a burst at BurstUtil with probability BurstProb. Epochs are
// EpochMin minutes long, so bursts arrive in sustained squalls rather
// than single-tick spikes — the pattern that stresses wax budgeting,
// because a burst can outlast the melt headroom. Open-ended.
type BurstySource struct {
	seed      uint64
	epoch     time.Duration
	level     float64
	burstUtil float64
	burstProb float64
}

// NewBurstySource builds an on-off burst source. Each epoch of the
// given length runs at burstUtil with probability burstProb, else at
// level.
func NewBurstySource(seed uint64, epoch time.Duration, level, burstUtil, burstProb float64) *BurstySource {
	return &BurstySource{seed: seed, epoch: epoch, level: level, burstUtil: burstUtil, burstProb: burstProb}
}

// At returns the epoch's state: burst or calm.
func (s *BurstySource) At(now time.Duration) float64 {
	if now < 0 {
		now = 0
	}
	e := uint64(now / s.epoch)
	if subRNG(s.seed, saltBursty, e).Float64() < s.burstProb {
		return stats.Clamp(s.burstUtil, 0, 1)
	}
	return stats.Clamp(s.level, 0, 1)
}

// Horizon reports the source as open-ended.
func (s *BurstySource) Horizon() time.Duration { return 0 }

// FlashCrowdSource models viral traffic: a calm base Level plus
// recurring flash crowds. Each window of SpikeEvery length launches one
// spike at a seeded uniform offset within the window; a spike raises
// utilization by SpikeUtil instantly and decays exponentially with
// time constant SpikeDecay, so late spikes ride on the tails of
// earlier ones. Open-ended.
type FlashCrowdSource struct {
	seed       uint64
	level      float64
	spikeUtil  float64
	spikeEvery time.Duration
	spikeDecay time.Duration
	// lookback is how many past windows can still contribute: tails are
	// truncated at 8 decay constants (exp(-8) ≈ 3e-4 of the spike), so
	// At stays a bounded pure function of now.
	lookback int64
}

// NewFlashCrowdSource builds a flash-crowd source over base utilization
// level: one spike of amplitude spikeUtil per window of spikeEvery,
// decaying with time constant spikeDecay.
func NewFlashCrowdSource(seed uint64, level, spikeUtil float64, spikeEvery, spikeDecay time.Duration) *FlashCrowdSource {
	lb := int64(8*spikeDecay/spikeEvery) + 1
	return &FlashCrowdSource{
		seed: seed, level: level, spikeUtil: spikeUtil,
		spikeEvery: spikeEvery, spikeDecay: spikeDecay, lookback: lb,
	}
}

// At sums the base level and the decayed tails of every spike launched
// within the lookback horizon.
func (s *FlashCrowdSource) At(now time.Duration) float64 {
	if now < 0 {
		now = 0
	}
	u := s.level
	widx := int64(now / s.spikeEvery)
	for k := int64(0); k <= s.lookback; k++ {
		w := widx - k
		if w < 0 {
			break
		}
		off := subRNG(s.seed, saltFlashCrowd, uint64(w)).Float64()
		t0 := time.Duration(w)*s.spikeEvery + time.Duration(off*float64(s.spikeEvery))
		if t0 > now {
			continue
		}
		u += s.spikeUtil * math.Exp(-float64(now-t0)/float64(s.spikeDecay))
	}
	return stats.Clamp(u, 0, 1)
}

// Horizon reports the source as open-ended.
func (s *FlashCrowdSource) Horizon() time.Duration { return 0 }
