package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// FuzzSourceSpecJSON drives the job-source spec decoder the same way
// FuzzPlanJSON drives fault plans: arbitrary bytes must either be
// rejected or decode to a spec whose canonical re-encoding is a fixed
// point, and whose generator produces finite in-range utilizations.
func FuzzSourceSpecJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"poisson","level":0.6,"events":25}`))
	f.Add([]byte(`{"kind":"poisson","seed":7,"step_s":30,"level":0.95,"events":4}`))
	f.Add([]byte(`{"kind":"bursty","level":0.3,"burst_util":0.9,"burst_prob":0.2,"epoch_min":15}`))
	f.Add([]byte(`{"kind":"flashcrowd","seed":5,"level":0.2,"spike_util":0.6,"spike_every_min":60,"spike_decay_min":10}`))
	f.Add([]byte(`{"kind":"diurnal"}`))
	f.Add([]byte(`{"kind":"poisson","level":1e999,"events":10}`))
	f.Add([]byte(`{"kind":"poisson","level":0.5,"events":10,"burst_prob":0.1}`))
	f.Add([]byte(`{"kind":"bursty","level":0.3,"burst_util":0.9,"burst_prob":-0.2,"epoch_min":15}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSourceSpec(data)
		if err != nil {
			return // malformed or invalid specs are rejected, never panic
		}
		// Valid specs round-trip bit-identically.
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		spec2, err := ParseSourceSpec(b)
		if err != nil {
			t.Fatalf("re-decoding a valid spec: %v", err)
		}
		// Canonical-form fixpoint: the re-encoded spec must match the
		// first encoding byte for byte — the property the run-cache key
		// depends on.
		b2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("canonical form unstable:\n first: %s\nsecond: %s", b, b2)
		}
		// A valid spec must build a working generator.
		src, err := spec.New()
		if err != nil {
			t.Fatalf("valid spec rejected by New: %v", err)
		}
		for _, at := range []time.Duration{0, spec.Step(), time.Hour, 48 * time.Hour} {
			u := src.At(at)
			if math.IsNaN(u) || u < 0 || u > 1 {
				t.Fatalf("At(%v) = %v, out of [0,1]", at, u)
			}
		}
	})
}
