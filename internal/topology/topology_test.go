package topology

import (
	"encoding/json"
	"testing"
)

func testSpec() Spec {
	return Spec{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 2}
}

func TestSpecValidate(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{ServersPerRack: 0, RacksPerRow: 3, RowsPerZone: 2},
		{ServersPerRack: 4, RacksPerRow: -1, RowsPerZone: 2},
		{ServersPerRack: 4, RacksPerRow: 3, RowsPerZone: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v should fail validation", bad)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec should validate (absent topology): %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"servers_per_rack":4,"racks_per_row":3,"rows_per_zone":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec([]byte(`{"servers_per_rack":4,"racks_per_row":3,"rows_per_zone":2,"typo":1}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
	if _, err := ParseSpec([]byte(`{"servers_per_rack":0}`)); err == nil {
		t.Fatal("invalid spec should be rejected on decode")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := testSpec()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != s {
		t.Fatalf("round trip changed the spec: %+v != %+v", *got, s)
	}
}

// TestDomainGeometry pins the ID-order layout: 26 servers in racks of
// 4, rows of 3 racks, zones of 2 rows — a partially filled tail at
// every level.
func TestDomainGeometry(t *testing.T) {
	topo, err := Build(testSpec(), 26)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Racks(); got != 7 {
		t.Errorf("Racks() = %d, want 7", got)
	}
	if got := topo.Rows(); got != 3 {
		t.Errorf("Rows() = %d, want 3", got)
	}
	if got := topo.Zones(); got != 2 {
		t.Errorf("Zones() = %d, want 2", got)
	}

	cases := []struct {
		kind   string
		index  int
		lo, hi int
	}{
		{DomainRack, 0, 0, 4},
		{DomainRack, 6, 24, 26}, // partial tail rack
		{DomainRow, 0, 0, 12},
		{DomainRow, 2, 24, 26}, // partial tail row
		{DomainZone, 0, 0, 24},
		{DomainZone, 1, 24, 26},
	}
	for _, c := range cases {
		lo, hi, err := topo.DomainRange(c.kind, c.index)
		if err != nil {
			t.Errorf("DomainRange(%s, %d): %v", c.kind, c.index, err)
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("DomainRange(%s, %d) = [%d,%d), want [%d,%d)", c.kind, c.index, lo, hi, c.lo, c.hi)
		}
	}
}

// TestMembershipMatchesRanges: the Of accessors agree with the range
// resolution for every server.
func TestMembershipMatchesRanges(t *testing.T) {
	topo, err := Build(testSpec(), 26)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < topo.NumServers(); id++ {
		for kind, of := range map[string]int{
			DomainRack: topo.RackOf(id),
			DomainRow:  topo.RowOf(id),
			DomainZone: topo.ZoneOf(id),
		} {
			lo, hi, err := topo.DomainRange(kind, of)
			if err != nil {
				t.Fatalf("server %d: DomainRange(%s, %d): %v", id, kind, of, err)
			}
			if id < lo || id >= hi {
				t.Errorf("server %d: %s %d spans [%d,%d), excludes its member", id, kind, of, lo, hi)
			}
		}
	}
}

func TestDomainRangeErrors(t *testing.T) {
	topo, err := Build(testSpec(), 26)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := topo.DomainRange("pdu", 0); err == nil {
		t.Error("unknown kind should error")
	}
	if _, _, err := topo.DomainRange(DomainRack, 7); err == nil {
		t.Error("rack index past the fleet should error")
	}
	if _, _, err := topo.DomainRange(DomainRack, -1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := topo.DomainCount("pod"); err == nil {
		t.Error("unknown kind should error in DomainCount")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{}, 10); err == nil {
		t.Error("zero spec should not build")
	}
	if _, err := Build(testSpec(), 0); err == nil {
		t.Error("empty fleet should not build")
	}
}

func TestKnownKind(t *testing.T) {
	for _, k := range []string{DomainRack, DomainRow, DomainZone} {
		if !KnownKind(k) {
			t.Errorf("KnownKind(%q) = false", k)
		}
	}
	if KnownKind("pdu") || KnownKind("") {
		t.Error("unknown kinds should not be known")
	}
}
