// Package topology models the datacenter's physical hierarchy: servers
// mount into racks (one PDU per rack), racks line up into rows, and
// rows share a cooling zone (one CRAC loop per zone). The hierarchy is
// derived arithmetically from server IDs — server i sits in rack
// i/ServersPerRack, and racks fill rows and rows fill zones in ID
// order — so every domain is a contiguous ID range and the mapping is
// deterministic, allocation-free, and identical on every run.
//
// A Spec is JSON-round-trippable and validated on decode, like
// fault.Plan and workload.SourceSpec, so fault scenarios can carry
// their topology inline. The fault engine uses domains to trip
// correlated failures (a PDU loss crashes a whole rack atomically; a
// cooling-zone failure derates every server in the zone); the planned
// recirculation work reuses the same rack/row geometry for cross-server
// heat interference.
package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Domain kinds accepted by DomainCount and DomainRange.
const (
	DomainRack = "rack" // one PDU: servers_per_rack consecutive servers
	DomainRow  = "row"  // racks_per_row consecutive racks
	DomainZone = "zone" // one cooling loop: rows_per_zone consecutive rows
)

// KnownKind reports whether kind names a modeled failure-domain level.
func KnownKind(kind string) bool {
	switch kind {
	case DomainRack, DomainRow, DomainZone:
		return true
	}
	return false
}

// Spec declares the hierarchy's branching factors. All three must be
// positive; the cluster size itself is supplied when the spec is bound
// to a fleet (Build), so one spec serves every sweep point.
type Spec struct {
	// ServersPerRack is the number of servers sharing one rack (and
	// one PDU).
	ServersPerRack int `json:"servers_per_rack"`
	// RacksPerRow is the number of racks in one row.
	RacksPerRow int `json:"racks_per_row"`
	// RowsPerZone is the number of rows sharing one cooling zone.
	RowsPerZone int `json:"rows_per_zone"`
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.ServersPerRack <= 0 {
		return fmt.Errorf("topology: servers_per_rack must be positive, got %d", s.ServersPerRack)
	}
	if s.RacksPerRow <= 0 {
		return fmt.Errorf("topology: racks_per_row must be positive, got %d", s.RacksPerRow)
	}
	if s.RowsPerZone <= 0 {
		return fmt.Errorf("topology: rows_per_zone must be positive, got %d", s.RowsPerZone)
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected so spec-file typos fail loudly — the same contract as
// fault.Plan and workload.SourceSpec.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Topology binds a validated Spec to a concrete fleet size. The last
// rack (and row, and zone) may be partially filled when the cluster
// size is not a multiple of the branching factors; its domain range is
// clipped to the fleet.
type Topology struct {
	spec Spec
	n    int
}

// Build binds spec to a fleet of numServers servers.
func Build(spec Spec, numServers int) (*Topology, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if numServers <= 0 {
		return nil, fmt.Errorf("topology: need a positive server count, got %d", numServers)
	}
	return &Topology{spec: spec, n: numServers}, nil
}

// Spec returns the branching factors the topology was built from.
func (t *Topology) Spec() Spec { return t.spec }

// NumServers returns the fleet size the topology is bound to.
func (t *Topology) NumServers() int { return t.n }

// serversPerDomain returns the span of one domain of the given kind in
// servers, or 0 for an unknown kind.
func (t *Topology) serversPerDomain(kind string) int {
	switch kind {
	case DomainRack:
		return t.spec.ServersPerRack
	case DomainRow:
		return t.spec.ServersPerRack * t.spec.RacksPerRow
	case DomainZone:
		return t.spec.ServersPerRack * t.spec.RacksPerRow * t.spec.RowsPerZone
	}
	return 0
}

// Racks returns the number of (possibly partially filled) racks.
func (t *Topology) Racks() int { return ceilDiv(t.n, t.serversPerDomain(DomainRack)) }

// Rows returns the number of rows.
func (t *Topology) Rows() int { return ceilDiv(t.n, t.serversPerDomain(DomainRow)) }

// Zones returns the number of cooling zones.
func (t *Topology) Zones() int { return ceilDiv(t.n, t.serversPerDomain(DomainZone)) }

// DomainCount returns how many domains of the given kind the fleet
// spans.
func (t *Topology) DomainCount(kind string) (int, error) {
	span := t.serversPerDomain(kind)
	if span == 0 {
		return 0, fmt.Errorf("topology: unknown domain kind %q (want %s, %s, or %s)",
			kind, DomainRack, DomainRow, DomainZone)
	}
	return ceilDiv(t.n, span), nil
}

// DomainRange resolves domain index of the given kind to its server-ID
// range [lo, hi), clipped to the fleet size.
func (t *Topology) DomainRange(kind string, index int) (lo, hi int, err error) {
	count, err := t.DomainCount(kind)
	if err != nil {
		return 0, 0, err
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("topology: %s %d out of range (fleet has %d)", kind, index, count)
	}
	span := t.serversPerDomain(kind)
	lo = index * span
	hi = lo + span
	if hi > t.n {
		hi = t.n
	}
	return lo, hi, nil
}

// RackOf returns the rack index holding server id.
func (t *Topology) RackOf(id int) int { return id / t.spec.ServersPerRack }

// RowOf returns the row index holding server id.
func (t *Topology) RowOf(id int) int { return id / t.serversPerDomain(DomainRow) }

// ZoneOf returns the cooling-zone index holding server id.
func (t *Topology) ZoneOf(id int) int { return id / t.serversPerDomain(DomainZone) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }
