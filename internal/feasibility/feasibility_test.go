package feasibility

import (
	"testing"

	"vmt/internal/workload"
)

func TestValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperParams()
	bad.PeakUtil = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero peak util should fail")
	}
	bad = PaperParams()
	bad.Server.CPUs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad server should fail")
	}
}

func TestClassStrings(t *testing.T) {
	if TTSWorks.String() != "VMT/TTS" || NeedsVMT.String() != "Needs VMT" || Neither.String() != "Neither" {
		t.Fatal("legend labels wrong")
	}
}

func TestClassifyBounds(t *testing.T) {
	p := PaperParams()
	if _, err := p.Classify(workload.WebSearch, workload.VirusScan, -0.1); err == nil {
		t.Fatal("negative ratio should fail")
	}
	if _, err := p.Classify(workload.WebSearch, workload.VirusScan, 1.1); err == nil {
		t.Fatal("ratio above 1 should fail")
	}
}

// Two cold workloads can never melt wax regardless of placement.
func TestAllColdIsNeither(t *testing.T) {
	p := PaperParams()
	pts, err := p.Sweep(workload.VirusScan, workload.DataCaching, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Class != Neither {
			t.Fatalf("ratio %v: class %v, want Neither", pt.RatioPct, pt.Class)
		}
	}
}

// A pure hot workload concentrated on full servers exceeds the melting
// point, so hot-containing mixes are at least VMT-feasible wherever the
// hot workload contributes work.
func TestHotMixesNeedVMTOrBetter(t *testing.T) {
	p := PaperParams()
	pts, err := p.Sweep(workload.VirusScan, workload.VideoEncoding, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		hotShare := 100 - pt.RatioPct // B = VideoEncoding
		if hotShare == 0 {
			if pt.Class != Neither {
				t.Fatalf("pure VirusScan should be Neither, got %v", pt.Class)
			}
			continue
		}
		if pt.Class == Neither {
			t.Fatalf("ratio %v: VideoEncoding present but class Neither (seg temp %.2f)",
				pt.RatioPct, pt.SegregatedTempC)
		}
	}
}

// Balanced temperature is monotone in the hot workload's share, and the
// class bands appear in order: Neither/NeedsVMT at cold-heavy ratios,
// TTSWorks only where balanced placement crosses the melting point.
func TestRegionOrdering(t *testing.T) {
	p := PaperParams()
	// A = VirusScan (cold), B = Clustering (hot): balanced temp falls
	// as the VirusScan share (ratio) grows.
	pts, err := p.Sweep(workload.VirusScan, workload.Clustering, 5)
	if err != nil {
		t.Fatal(err)
	}
	sawTTS, sawNeed := false, false
	for i, pt := range pts {
		if i > 0 && pt.BalancedTempC > pts[i-1].BalancedTempC+1e-9 {
			t.Fatalf("balanced temp should fall with cold share at %v%%", pt.RatioPct)
		}
		switch pt.Class {
		case TTSWorks:
			sawTTS = true
			if sawNeed {
				t.Fatal("TTSWorks after NeedsVMT along falling temperature")
			}
		case NeedsVMT:
			sawNeed = true
		}
	}
	if !sawTTS {
		t.Fatal("clustering-heavy end should support TTS")
	}
	if !sawNeed {
		t.Fatal("middle ratios should need VMT")
	}
}

// The paper's motivating observation (Figure 1): mixes of a hot and a
// cold workload show all three bands — TTS suffices only at hot-heavy
// ratios, a wide middle band needs VMT, and cold-heavy ratios are
// beyond help. Caching-Search is the canonical panel.
func TestCachingSearchShowsAllThreeBands(t *testing.T) {
	p := PaperParams()
	pts, err := p.Sweep(workload.DataCaching, workload.WebSearch, 5)
	if err != nil {
		t.Fatal(err)
	}
	count := map[Class]int{}
	for _, pt := range pts {
		count[pt.Class]++
	}
	if count[TTSWorks] == 0 || count[NeedsVMT] == 0 || count[Neither] == 0 {
		t.Fatalf("expected all three bands, got %v", count)
	}
	// VMT widens the usable band: yellow must be non-trivial.
	if count[NeedsVMT] < count[TTSWorks] {
		t.Fatalf("the VMT-only band should dominate TTS's: %v", count)
	}
	// Pure caching (ratio 100%) cannot melt under any placement.
	if pts[len(pts)-1].Class != Neither {
		t.Fatalf("pure DataCaching should be Neither, got %v", pts[len(pts)-1].Class)
	}
	// Pure search (ratio 0%) melts even balanced.
	if pts[0].Class != TTSWorks {
		t.Fatalf("pure WebSearch should support TTS, got %v", pts[0].Class)
	}
}

func TestSweepStepValidation(t *testing.T) {
	p := PaperParams()
	if _, err := p.Sweep(workload.WebSearch, workload.VirusScan, 0); err == nil {
		t.Fatal("zero step should fail")
	}
	if _, err := p.Sweep(workload.WebSearch, workload.VirusScan, 101); err == nil {
		t.Fatal("oversized step should fail")
	}
}

func TestPaperPairs(t *testing.T) {
	pairs := PaperPairs()
	if len(pairs) != 6 {
		t.Fatalf("want 6 panels, got %d", len(pairs))
	}
	seen := map[string]bool{}
	for _, pr := range pairs {
		if seen[pr.Name] {
			t.Fatalf("duplicate panel %s", pr.Name)
		}
		seen[pr.Name] = true
		if err := pr.A.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := pr.B.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClassifyMix(t *testing.T) {
	p := PaperParams()
	pt, err := p.ClassifyMix(workload.PaperMix())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's five-workload mix is the canonical "needs VMT" case:
	// balanced placement stays below the melting point, concentration
	// exceeds it.
	if pt.Class != NeedsVMT {
		t.Fatalf("paper mix class = %v, want NeedsVMT (balanced %.2f)", pt.Class, pt.BalancedTempC)
	}
	if pt.BalancedTempC >= 35.7 || pt.SegregatedTempC < 35.7 {
		t.Fatalf("temps inconsistent: %.2f / %.2f", pt.BalancedTempC, pt.SegregatedTempC)
	}
	coldOnly, err := workload.NewMix(
		workload.MixEntry{Workload: workload.VirusScan, Share: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	pt, err = p.ClassifyMix(coldOnly)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Class != Neither {
		t.Fatalf("cold-only mix class = %v, want Neither", pt.Class)
	}
	bad := PaperParams()
	bad.PeakUtil = 0
	if _, err := bad.ClassifyMix(workload.PaperMix()); err == nil {
		t.Fatal("invalid params should fail")
	}
}
