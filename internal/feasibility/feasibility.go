// Package feasibility reproduces Figure 1: for pairwise workload
// mixes swept across the work ratio, it classifies whether plain TTS
// can melt wax (exhaust temperature already exceeds the physical
// melting point), whether VMT placement is required (only a segregated
// hot group can exceed it), or whether no placement can help.
//
// The classification uses the calibrated steady-state thermal model at
// peak utilization, which is exactly the quantity the figure plots
// (peak exhaust temperature versus work ratio).
package feasibility

import (
	"fmt"

	"vmt/internal/thermal"
	"vmt/internal/workload"
)

// Class labels one operating point.
type Class int

const (
	// Neither: no placement policy reaches the melting point.
	Neither Class = iota
	// NeedsVMT: balanced placement stays below the melting point but
	// concentrating the hotter workload exceeds it.
	NeedsVMT
	// TTSWorks: even balanced placement melts wax; a passive system
	// suffices (VMT also works).
	TTSWorks
)

// String implements fmt.Stringer with the figure's legend labels.
func (c Class) String() string {
	switch c {
	case TTSWorks:
		return "VMT/TTS"
	case NeedsVMT:
		return "Needs VMT"
	default:
		return "Neither"
	}
}

// Params configures the sweep.
type Params struct {
	Server thermal.ServerSpec
	// InletTempC is the room supply temperature.
	InletTempC float64
	// MeltTempC is the wax physical melting temperature.
	MeltTempC float64
	// PeakUtil is the utilization at which exhaust temperature is
	// evaluated (the worst-case day peak).
	PeakUtil float64
}

// PaperParams returns the calibrated figure configuration.
func PaperParams() Params {
	return Params{
		Server:     thermal.PaperServer(),
		InletTempC: 22,
		MeltTempC:  35.7,
		PeakUtil:   0.95,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.Server.Validate(); err != nil {
		return err
	}
	if p.PeakUtil <= 0 || p.PeakUtil > 1 {
		return fmt.Errorf("feasibility: peak utilization %v out of (0,1]", p.PeakUtil)
	}
	return nil
}

// serverTempAt returns the steady exhaust temperature of a server
// whose occupied cores draw perCoreW each at utilization u.
func (p Params) serverTempAt(perCoreW, u float64) float64 {
	cores := float64(p.Server.Cores()) * u
	power := p.Server.IdlePowerW + cores*perCoreW*p.Server.PowerScale
	if power > p.Server.PeakPowerW {
		power = p.Server.PeakPowerW
	}
	return p.Server.SteadyAirTempC(power, p.InletTempC)
}

// Point is one sample of a pairwise sweep.
type Point struct {
	// RatioPct is the percentage of work from workload A.
	RatioPct float64
	// BalancedTempC is the peak exhaust temperature with balanced
	// (round-robin) placement — the y-value the figure plots.
	BalancedTempC float64
	// SegregatedTempC is the hottest achievable server temperature
	// when the hotter workload is concentrated.
	SegregatedTempC float64
	Class           Class
}

// Classify evaluates one work ratio (0..1, the share of a) of the
// pair (a, b).
func (p Params) Classify(a, b workload.Workload, ratio float64) (Point, error) {
	if err := p.Validate(); err != nil {
		return Point{}, err
	}
	if ratio < 0 || ratio > 1 {
		return Point{}, fmt.Errorf("feasibility: ratio %v out of [0,1]", ratio)
	}
	mixedPerCore := ratio*a.PerCorePowerW() + (1-ratio)*b.PerCorePowerW()
	balanced := p.serverTempAt(mixedPerCore, p.PeakUtil)

	// Segregation concentrates the hotter workload on a dedicated
	// group: those servers run fully occupied by it (possible whenever
	// that workload contributes any work at all).
	hotter := a
	hotShare := ratio
	if b.PerCorePowerW() > a.PerCorePowerW() {
		hotter, hotShare = b, 1-ratio
	}
	segregated := balanced
	if hotShare > 0 {
		segregated = p.serverTempAt(hotter.PerCorePowerW(), 1)
	}

	pt := Point{RatioPct: ratio * 100, BalancedTempC: balanced, SegregatedTempC: segregated}
	switch {
	case balanced >= p.MeltTempC:
		pt.Class = TTSWorks
	case segregated >= p.MeltTempC:
		pt.Class = NeedsVMT
	default:
		pt.Class = Neither
	}
	return pt, nil
}

// Sweep classifies the pair across work ratios 0..100% in steps of
// stepPct.
func (p Params) Sweep(a, b workload.Workload, stepPct float64) ([]Point, error) {
	if stepPct <= 0 || stepPct > 100 {
		return nil, fmt.Errorf("feasibility: step %v%% out of (0,100]", stepPct)
	}
	var out []Point
	for r := 0.0; r <= 100.0000001; r += stepPct {
		pt, err := p.Classify(a, b, r/100)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Pair names one of the figure's six panels.
type Pair struct {
	Name string
	A, B workload.Workload
}

// PaperPairs returns the six mixes of Figure 1. ("Scanning" is
// VirusScan; "Caching" Data Caching; "Search" Web Search; "Video"
// Video Encoding.)
func PaperPairs() []Pair {
	return []Pair{
		{"Caching-Search", workload.DataCaching, workload.WebSearch},
		{"Scanning-Clustering", workload.VirusScan, workload.Clustering},
		{"Clustering-Video", workload.Clustering, workload.VideoEncoding},
		{"Scanning-Video", workload.VirusScan, workload.VideoEncoding},
		{"Scanning-Search", workload.VirusScan, workload.WebSearch},
		{"Search-Clustering", workload.WebSearch, workload.Clustering},
	}
}

// ClassifyMix evaluates a full workload mix rather than a pair: the
// balanced temperature uses the mix's mean per-core power, and the
// segregated temperature concentrates the mix's hottest workload.
func (p Params) ClassifyMix(m *workload.Mix) (Point, error) {
	if err := p.Validate(); err != nil {
		return Point{}, err
	}
	entries := m.Entries()
	if len(entries) == 0 {
		return Point{}, fmt.Errorf("feasibility: empty mix")
	}
	balanced := p.serverTempAt(m.MeanPerCorePowerW(), p.PeakUtil)
	hottest := entries[0].Workload
	for _, e := range entries[1:] {
		if e.Workload.PerCorePowerW() > hottest.PerCorePowerW() {
			hottest = e.Workload
		}
	}
	segregated := p.serverTempAt(hottest.PerCorePowerW(), 1)
	pt := Point{BalancedTempC: balanced, SegregatedTempC: segregated}
	switch {
	case balanced >= p.MeltTempC:
		pt.Class = TTSWorks
	case segregated >= p.MeltTempC:
		pt.Class = NeedsVMT
	default:
		pt.Class = Neither
	}
	return pt, nil
}
