package sim

import (
	"testing"
	"time"
)

func BenchmarkPeriodicDispatch(b *testing.B) {
	e := NewEngine()
	count := 0
	if _, err := e.Every(0, time.Second, PriorityModel, func(time.Duration) { count++ }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.RunUntil(e.Now() + time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManyOneShots(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			if _, err := e.At(time.Duration(j)*time.Millisecond, PriorityModel,
				func(time.Duration) {}); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.RunUntil(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
