package sim

import (
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/telemetry"
)

func TestOneShotOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	must := func(_ EventID, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.At(3*time.Second, PriorityModel, func(time.Duration) { got = append(got, 3) }))
	must(e.At(1*time.Second, PriorityModel, func(time.Duration) { got = append(got, 1) }))
	must(e.At(2*time.Second, PriorityModel, func(time.Duration) { got = append(got, 2) }))
	if err := e.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", e.Now())
	}
}

func TestSameInstantPriorityThenFIFO(t *testing.T) {
	e := NewEngine()
	var got []string
	add := func(p Priority, tag string) {
		if _, err := e.At(time.Second, p, func(time.Duration) { got = append(got, tag) }); err != nil {
			t.Fatal(err)
		}
	}
	add(PriorityMetrics, "metrics")
	add(PriorityScheduler, "sched1")
	add(PriorityModel, "model")
	add(PriorityScheduler, "sched2")
	if err := e.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"model", "sched1", "sched2", "metrics"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestPeriodicEvent(t *testing.T) {
	e := NewEngine()
	var fires []time.Duration
	if _, err := e.Every(0, time.Minute, PriorityModel, func(now time.Duration) {
		fires = append(fires, now)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(fires) != 6 { // 0,1,2,3,4,5 minutes inclusive
		t.Fatalf("fired %d times: %v", len(fires), fires)
	}
	for i, at := range fires {
		if at != time.Duration(i)*time.Minute {
			t.Fatalf("fire %d at %v", i, at)
		}
	}
}

func TestCancelPeriodic(t *testing.T) {
	e := NewEngine()
	count := 0
	id, err := e.Every(0, time.Minute, PriorityModel, func(time.Duration) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(2*time.Minute+time.Second, PriorityModel, func(time.Duration) {
		e.Cancel(id)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 3 { // fires at 0, 1m, 2m
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestCancelFromOwnHandler(t *testing.T) {
	e := NewEngine()
	count := 0
	var id EventID
	id, err := e.Every(0, time.Second, PriorityModel, func(time.Duration) {
		count++
		if count == 2 {
			e.Cancel(id)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.At(time.Second, PriorityModel, func(time.Duration) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(time.Second, PriorityModel, func(time.Duration) {}); err == nil {
		t.Fatal("scheduling in past should fail")
	}
	if _, err := e.After(-time.Second, PriorityModel, func(time.Duration) {}); err == nil {
		t.Fatal("negative delay should fail")
	}
	if _, err := e.Every(0, 0, PriorityModel, func(time.Duration) {}); err == nil {
		t.Fatal("zero interval should fail")
	}
	if err := e.RunUntil(time.Second); err == nil {
		t.Fatal("running backwards should fail")
	}
}

func TestHandlerSchedulesMore(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	if _, err := e.At(time.Second, PriorityModel, func(now time.Duration) {
		got = append(got, now)
		if _, err := e.After(time.Second, PriorityModel, func(n2 time.Duration) {
			got = append(got, n2)
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 2*time.Second {
		t.Fatalf("got %v", got)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	count := 0
	if _, err := e.Every(0, time.Minute, PriorityModel, func(time.Duration) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	// Resume: next fire at 2m still pending.
	if err := e.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count after resume = %d, want 3", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

// Property: N one-shot events with arbitrary non-negative offsets all
// fire exactly once, in non-decreasing time order.
func TestEventDeliveryProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var times []time.Duration
		for _, r := range raw {
			at := time.Duration(r) * time.Millisecond
			if _, err := e.At(at, PriorityModel, func(now time.Duration) {
				times = append(times, now)
			}); err != nil {
				return false
			}
		}
		if err := e.RunUntil(time.Duration(1<<16) * time.Millisecond); err != nil {
			return false
		}
		if len(times) != len(raw) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	if _, err := e.Every(0, time.Second, PriorityModel, func(time.Duration) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 11 {
		t.Fatalf("Fired = %d, want 11", e.Fired())
	}
}

func TestInstrumentedEngineCountsAndOrder(t *testing.T) {
	run := func(reg *telemetry.Registry) []int {
		e := NewEngine()
		e.Instrument(reg)
		var order []int
		if _, err := e.Every(0, time.Second, PriorityScheduler, func(time.Duration) {
			order = append(order, 2)
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Every(0, time.Second, PriorityModel, func(time.Duration) {
			order = append(order, 1)
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.At(2*time.Second, Priority(999), func(time.Duration) {
			order = append(order, 3)
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.RunUntil(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		return order
	}

	reg := telemetry.NewRegistry()
	instrumented := run(reg)
	plain := run(nil)
	if len(instrumented) != len(plain) {
		t.Fatalf("dispatch count changed: %d vs %d", len(instrumented), len(plain))
	}
	for i := range plain {
		if instrumented[i] != plain[i] {
			t.Fatalf("instrumentation changed event order at %d: %v vs %v",
				i, instrumented, plain)
		}
	}

	if got := reg.Counter("sim_events_dispatched").Value(); got != 9 {
		t.Fatalf("sim_events_dispatched = %d, want 9", got)
	}
	if hwm := reg.Gauge("sim_queue_depth_hwm").Value(); hwm < 3 {
		t.Fatalf("sim_queue_depth_hwm = %v, want ≥ 3", hwm)
	}
	// The out-of-band priority lands in the "other" bucket; the named
	// bands accumulated (possibly tiny but counted) wall time.
	for _, name := range []string{"sim_wall_ns_model", "sim_wall_ns_scheduler"} {
		if _, ok := find(reg, name); !ok {
			t.Fatalf("missing band counter %s", name)
		}
	}
}

// buildMixedEngine loads an engine with the cluster pipeline's shape:
// periodic bands at mixed priorities, one-shots, a mid-run cancel, and
// a handler that schedules more work. Each dispatch appends (tag, now)
// so two engines' traces can be compared exactly.
func buildMixedEngine(log *[]string) *Engine {
	e := NewEngine()
	rec := func(tag string) Handler {
		return func(now time.Duration) { *log = append(*log, tag+"@"+now.String()) }
	}
	e.Every(0, time.Minute, PriorityScheduler, rec("sched"))
	e.Every(time.Minute, time.Minute, PriorityModel, rec("model"))
	e.Every(time.Minute, time.Minute, PriorityMetrics, rec("metrics"))
	e.At(90*time.Second, PriorityFault, rec("fault"))
	cancelID, _ := e.Every(0, 2*time.Minute, PriorityFault, rec("periodic-fault"))
	e.At(5*time.Minute+time.Second, PriorityModel, func(now time.Duration) {
		e.Cancel(cancelID)
		*log = append(*log, "cancel@"+now.String())
		e.After(30*time.Second, PriorityScheduler, rec("late"))
	})
	return e
}

// Property: advancing the same event load through arbitrary ragged
// RunUntil chunks dispatches the identical sequence as one monolithic
// RunUntil, with the same final clock and fired count.
func TestChunkedRunUntilMatchesMonolithic(t *testing.T) {
	const end = 10 * time.Minute
	var mono []string
	me := buildMixedEngine(&mono)
	if err := me.RunUntil(end); err != nil {
		t.Fatal(err)
	}

	f := func(raw []uint8) bool {
		var chunked []string
		ce := buildMixedEngine(&chunked)
		at := time.Duration(0)
		for _, r := range raw {
			at += time.Duration(r) * time.Second
			if at > end {
				at = end
			}
			if err := ce.RunUntil(at); err != nil {
				return false
			}
		}
		if err := ce.RunUntil(end); err != nil {
			return false
		}
		if ce.Now() != me.Now() || ce.Fired() != me.Fired() {
			return false
		}
		if len(chunked) != len(mono) {
			return false
		}
		for i := range mono {
			if chunked[i] != mono[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Stepping one event at a time via StepEvent replays the monolithic
// dispatch sequence exactly, and NextAt agrees with what fires next.
func TestStepEventMatchesMonolithic(t *testing.T) {
	const end = 10 * time.Minute
	var mono []string
	me := buildMixedEngine(&mono)
	if err := me.RunUntil(end); err != nil {
		t.Fatal(err)
	}

	var stepped []string
	se := buildMixedEngine(&stepped)
	for {
		at, ok := se.NextAt()
		if !ok || at > end {
			break
		}
		fired, err := se.StepEvent(end)
		if err != nil {
			t.Fatal(err)
		}
		if !fired {
			t.Fatalf("NextAt said %v fires but StepEvent dispatched nothing", at)
		}
		if se.Now() != at {
			t.Fatalf("StepEvent advanced clock to %v, NextAt promised %v", se.Now(), at)
		}
	}
	// One more StepEvent at the boundary must be a no-op.
	if fired, err := se.StepEvent(end); err != nil || fired {
		t.Fatalf("StepEvent past drain: fired=%v err=%v", fired, err)
	}
	if se.Fired() != me.Fired() {
		t.Fatalf("Fired = %d, monolithic fired %d", se.Fired(), me.Fired())
	}
	if len(stepped) != len(mono) {
		t.Fatalf("dispatched %d events, monolithic dispatched %d", len(stepped), len(mono))
	}
	for i := range mono {
		if stepped[i] != mono[i] {
			t.Fatalf("dispatch %d = %q, monolithic %q", i, stepped[i], mono[i])
		}
	}
}

func TestStepEventRejectsPastLimit(t *testing.T) {
	e := NewEngine()
	if _, err := e.At(time.Second, PriorityModel, func(time.Duration) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StepEvent(time.Second); err == nil {
		t.Fatal("StepEvent with limit before now should fail")
	}
}

func TestNextAtSkipsCanceled(t *testing.T) {
	e := NewEngine()
	id, err := e.At(time.Second, PriorityModel, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(2*time.Second, PriorityModel, func(time.Duration) {}); err != nil {
		t.Fatal(err)
	}
	e.Cancel(id)
	at, ok := e.NextAt()
	if !ok || at != 2*time.Second {
		t.Fatalf("NextAt = %v, %v; want 2s, true", at, ok)
	}
	e2 := NewEngine()
	if _, ok := e2.NextAt(); ok {
		t.Fatal("NextAt on empty engine should report no event")
	}
}

// find reports whether the registry snapshot has the named counter.
func find(reg *telemetry.Registry, name string) (uint64, bool) {
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}
