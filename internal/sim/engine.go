// Package sim implements a deterministic discrete-event simulation
// engine, the substrate standing in for DCsim in the VMT reproduction.
//
// The engine maintains a priority queue of timestamped events. Events
// scheduled for the same instant fire in a stable order: first by
// priority (lower fires first), then by scheduling sequence number.
// Determinism is essential so that the paper's experiments reproduce
// bit-for-bit across runs.
//
// Typical use:
//
//	eng := sim.NewEngine()
//	eng.Every(0, time.Minute, sim.PriorityModel, func(now time.Duration) {
//	        ... advance physics ...
//	})
//	eng.RunUntil(48 * time.Hour)
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"vmt/internal/telemetry"
)

// Priority orders events that share a timestamp. Lower values fire
// first. The bands below encode the per-tick pipeline of the cluster
// simulation: physics advances first, then the scheduler reacts, then
// metrics observe the settled state.
type Priority int

const (
	// PriorityModel is for physical-model updates (thermal, wax).
	PriorityModel Priority = 100
	// PriorityFault is for fault injection: crashes and repairs land
	// after the physics settles but before the scheduler reacts, so a
	// crash at tick t is visible to the same tick's rebalancing.
	PriorityFault Priority = 150
	// PriorityScheduler is for load placement and rebalancing.
	PriorityScheduler Priority = 200
	// PriorityMetrics is for observers sampling the settled state.
	PriorityMetrics Priority = 300
)

// Handler is an event callback. now is the simulation time at which the
// event fires.
type Handler func(now time.Duration)

type event struct {
	at       time.Duration
	priority Priority
	seq      uint64 // tiebreaker: FIFO among equal (at, priority)
	fn       Handler
	interval time.Duration // > 0 for periodic events
	id       uint64
	canceled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all scheduling must happen from the goroutine
// running RunUntil (typically from inside handlers).
type Engine struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	nextID  uint64
	// live indexes queued events by ID so Cancel can mark the event
	// itself; dispatch then checks a plain struct field instead of
	// paying a map lookup per event on the steady-state path.
	live  map[uint64]*event
	fired uint64
	// pool recycles one-shot event structs so bursty task-arrival
	// workloads do not allocate one event per scheduled callback.
	pool []*event
	// metrics is nil unless Instrument was called; dispatch pays one
	// nil check per event when uninstrumented.
	metrics *engineMetrics
}

// engineMetrics holds the engine's resolved instruments. Wall time is
// attributed per priority band so a profile shows where a run spends
// its time: physics, scheduling, or observation.
type engineMetrics struct {
	dispatched *telemetry.Counter
	queueHWM   *telemetry.Gauge
	bandNanos  map[Priority]*telemetry.Counter
	otherNanos *telemetry.Counter
}

// Instrument registers the engine's instruments in r and starts
// updating them: sim_events_dispatched, sim_queue_depth_hwm (peak
// queue length), and sim_wall_ns_{model,scheduler,metrics,other}
// (wall time per priority band). Instrumentation only observes —
// event order and simulation results are unchanged.
func (e *Engine) Instrument(r *telemetry.Registry) {
	if r == nil {
		return
	}
	e.metrics = &engineMetrics{
		dispatched: r.Counter("sim_events_dispatched"),
		queueHWM:   r.Gauge("sim_queue_depth_hwm"),
		bandNanos: map[Priority]*telemetry.Counter{
			PriorityModel:     r.Counter("sim_wall_ns_model"),
			PriorityScheduler: r.Counter("sim_wall_ns_scheduler"),
			PriorityMetrics:   r.Counter("sim_wall_ns_metrics"),
		},
		otherNanos: r.Counter("sim_wall_ns_other"),
	}
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{live: make(map[uint64]*event)}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events dispatched so far (for tests and
// progress reporting).
func (e *Engine) Fired() uint64 { return e.fired }

// EventID identifies a scheduled event so it can be canceled.
type EventID uint64

// At schedules fn to run once at absolute simulation time at. Scheduling
// in the past (at < Now()) is an error.
func (e *Engine) At(at time.Duration, p Priority, fn Handler) (EventID, error) {
	if at < e.now {
		return 0, fmt.Errorf("sim: cannot schedule at %v, now is %v", at, e.now)
	}
	return e.push(at, p, fn, 0), nil
}

// After schedules fn to run once delay from now.
func (e *Engine) After(delay time.Duration, p Priority, fn Handler) (EventID, error) {
	if delay < 0 {
		return 0, fmt.Errorf("sim: negative delay %v", delay)
	}
	return e.push(e.now+delay, p, fn, 0), nil
}

// Every schedules fn to run at start and then every interval thereafter
// until the engine stops or the event is canceled.
func (e *Engine) Every(start, interval time.Duration, p Priority, fn Handler) (EventID, error) {
	if start < e.now {
		return 0, fmt.Errorf("sim: cannot schedule at %v, now is %v", start, e.now)
	}
	if interval <= 0 {
		return 0, fmt.Errorf("sim: non-positive interval %v", interval)
	}
	return e.push(start, p, fn, interval), nil
}

func (e *Engine) push(at time.Duration, p Priority, fn Handler, interval time.Duration) EventID {
	e.nextSeq++
	e.nextID++
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool = e.pool[:n-1]
		*ev = event{}
	} else {
		ev = &event{}
	}
	ev.at, ev.priority, ev.seq = at, p, e.nextSeq
	ev.fn, ev.interval, ev.id = fn, interval, e.nextID
	heap.Push(&e.queue, ev)
	e.live[e.nextID] = ev
	if e.metrics != nil {
		e.metrics.queueHWM.SetMax(float64(e.queue.Len()))
	}
	return EventID(e.nextID)
}

// retire removes a finished (fired one-shot or canceled) event from the
// live index and recycles its struct. The pool is capped so a burst of
// one-shots does not pin memory forever.
func (e *Engine) retire(ev *event) {
	delete(e.live, ev.id)
	if len(e.pool) < 64 {
		ev.fn = nil // drop the handler reference while pooled
		e.pool = append(e.pool, ev)
	}
}

// Cancel prevents a scheduled (or periodic) event from firing again.
// Canceling an already-fired one-shot event is a harmless no-op.
func (e *Engine) Cancel(id EventID) {
	if ev, ok := e.live[uint64(id)]; ok {
		ev.canceled = true
	}
}

// NextAt returns the timestamp of the next live event in the queue.
// ok is false when the queue holds no dispatchable event (empty, or
// only canceled husks awaiting collection).
func (e *Engine) NextAt() (at time.Duration, ok bool) {
	// Canceled events are collected lazily at dispatch; peek past them
	// here so the reported timestamp is one that will actually fire.
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if !next.canceled {
			return next.at, true
		}
		heap.Pop(&e.queue)
		e.retire(next)
	}
	return 0, false
}

// StepEvent dispatches the single next event if it fires at or before
// limit, advancing the clock to its timestamp. It reports whether an
// event fired; when none did (queue empty, or the next event lies
// strictly beyond limit) the clock is left untouched so the caller
// decides where it settles. StepEvent is the re-entrant core RunUntil
// loops over: dispatching events one at a time through any sequence of
// limits produces exactly the dispatch order of one monolithic run,
// because order depends only on the queue, never on the chunking.
func (e *Engine) StepEvent(limit time.Duration) (bool, error) {
	if limit < e.now {
		return false, fmt.Errorf("sim: limit %v before now %v", limit, e.now)
	}
	for {
		next, ok := e.peek()
		if !ok || next.at > limit {
			return false, nil
		}
		heap.Pop(&e.queue)
		e.dispatch(next)
		return true, nil
	}
}

// peek returns the next live event, lazily collecting canceled ones.
func (e *Engine) peek() (*event, bool) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if !next.canceled {
			return next, true
		}
		heap.Pop(&e.queue)
		e.retire(next)
	}
	return nil, false
}

// dispatch fires ev (already popped), advances the clock to its
// timestamp, and requeues it when periodic.
func (e *Engine) dispatch(ev *event) {
	e.now = ev.at
	e.fired++
	if m := e.metrics; m != nil {
		m.dispatched.Inc()
		start := time.Now() //vmtlint:allow detrand observational: per-band wall-time metric only
		ev.fn(e.now)
		band, ok := m.bandNanos[ev.priority]
		if !ok {
			band = m.otherNanos
		}
		band.Add(uint64(time.Since(start))) //vmtlint:allow detrand observational: per-band wall-time metric only
	} else {
		ev.fn(e.now)
	}
	if ev.interval > 0 && !ev.canceled {
		ev.at += ev.interval
		e.nextSeq++
		ev.seq = e.nextSeq
		heap.Push(&e.queue, ev)
	} else {
		// Fired one-shot, or a periodic event canceled mid-dispatch.
		e.retire(ev)
	}
}

// RunUntil dispatches events in order until the queue empties or the
// next event lies strictly beyond end. The clock finishes at end.
// Calling RunUntil repeatedly with an increasing end is equivalent to
// one call with the final end: the engine is re-entrant, which is what
// lets a Session advance the same run tick by tick.
func (e *Engine) RunUntil(end time.Duration) error {
	if end < e.now {
		return fmt.Errorf("sim: end %v before now %v", end, e.now)
	}
	for {
		next, ok := e.peek()
		if !ok || next.at > end {
			break
		}
		heap.Pop(&e.queue)
		e.dispatch(next)
	}
	e.now = end
	return nil
}

// Pending returns the number of events currently queued (periodic
// events count once).
func (e *Engine) Pending() int { return e.queue.Len() }
