package trace

import (
	"strings"
	"testing"
	"time"
)

func TestFromReaderFractions(t *testing.T) {
	in := "0.25\n0.5\n# comment\n\n0.95\n"
	tr, err := FromReader(strings.NewReader(in), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.At(time.Hour) != 0.5 {
		t.Fatalf("At(1h) = %v", tr.At(time.Hour))
	}
	if tr.Duration() != 2*time.Hour {
		t.Fatalf("duration = %v", tr.Duration())
	}
}

func TestFromReaderPercentAutoDetect(t *testing.T) {
	tr, err := FromReader(strings.NewReader("25\n50\n95\n"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := tr.Peak()
	if peak != 0.95 {
		t.Fatalf("peak = %v, want 0.95", peak)
	}
}

func TestFromReaderHeader(t *testing.T) {
	tr, err := FromReader(strings.NewReader("utilization\n0.1\n0.2\n"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestFromReaderErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"single sample", "0.5\n"},
		{"garbage mid-file", "0.5\nbogus\n0.7\n"},
		{"two headers", "a\nb\n0.5\n0.6\n"},
		{"over 100", "150\n50\n"},
		{"negative", "-0.5\n0.5\n"},
	}
	for _, c := range cases {
		if _, err := FromReader(strings.NewReader(c.in), time.Minute); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := FromReader(strings.NewReader("0.5\n0.6\n"), 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestFromReaderInterpolates(t *testing.T) {
	tr, err := FromReader(strings.NewReader("0\n1\n"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(30 * time.Minute); got != 0.5 {
		t.Fatalf("midpoint = %v, want 0.5", got)
	}
}
