package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func noiseless() Spec {
	s := PaperTwoDay()
	s.NoiseAmp = 0
	return s
}

func TestValidate(t *testing.T) {
	good := PaperTwoDay()
	if err := good.Validate(); err != nil {
		t.Fatalf("PaperTwoDay invalid: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Days = 0 },
		func(s *Spec) { s.PeakUtil = nil },
		func(s *Spec) { s.TroughUtil = -0.1 },
		func(s *Spec) { s.TroughUtil = 1.1 },
		func(s *Spec) { s.PeakHours = []float64{24} },
		func(s *Spec) { s.PeakHours = nil },
		func(s *Spec) { s.TroughHour = -1 },
		func(s *Spec) { s.PeakHours = []float64{s.TroughHour} },
		func(s *Spec) { s.NoiseAmp = -0.1 },
		func(s *Spec) { s.PeakUtil = []float64{0.1} }, // below trough
		func(s *Spec) { s.PeakUtil = []float64{1.5} },
	}
	for i, mutate := range cases {
		s := PaperTwoDay()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenerateRejectsBadStep(t *testing.T) {
	if _, err := Generate(PaperTwoDay(), 0); err == nil {
		t.Fatal("zero step should fail")
	}
}

func TestPaperShapeExtremes(t *testing.T) {
	tr, err := Generate(noiseless(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Troughs at h5 and h29, peaks at h20 (0.90) and h46 (0.95).
	checks := []struct {
		at   time.Duration
		want float64
	}{
		{5 * time.Hour, 0.25},
		{29 * time.Hour, 0.25},
		{20 * time.Hour, 0.90},
		{46 * time.Hour, 0.95},
	}
	for _, c := range checks {
		if got := tr.At(c.at); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	peak, at := tr.Peak()
	if math.Abs(peak-0.95) > 1e-6 {
		t.Errorf("global peak = %v, want 0.95", peak)
	}
	if math.Abs(at.Hours()-46) > 0.1 {
		t.Errorf("global peak at %v, want ≈46h", at)
	}
}

func TestDayBoundaryContinuity(t *testing.T) {
	tr, err := Generate(noiseless(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The curve must be continuous across midnight: descent from day
	// 0's peak continues into day 1's early morning.
	before := tr.At(24*time.Hour - time.Minute)
	after := tr.At(24*time.Hour + time.Minute)
	if math.Abs(before-after) > 0.01 {
		t.Fatalf("discontinuity at midnight: %v vs %v", before, after)
	}
	// And it must still be descending toward the 29h trough.
	if !(after < before) {
		t.Fatalf("should be descending through midnight: %v -> %v", before, after)
	}
}

func TestMonotoneSegments(t *testing.T) {
	tr, err := Generate(noiseless(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending from 5h to 20h.
	prev := tr.At(5 * time.Hour)
	for h := 5.25; h <= 20; h += 0.25 {
		cur := tr.At(time.Duration(h * float64(time.Hour)))
		if cur < prev-1e-9 {
			t.Fatalf("not ascending at h=%.2f: %v < %v", h, cur, prev)
		}
		prev = cur
	}
	// Descending from 20h to 29h.
	for h := 20.25; h <= 29; h += 0.25 {
		cur := tr.At(time.Duration(h * float64(time.Hour)))
		if cur > prev+1e-9 {
			t.Fatalf("not descending at h=%.2f: %v > %v", h, cur, prev)
		}
		prev = cur
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a, err := Generate(PaperTwoDay(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(PaperTwoDay(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.samples {
		if a.samples[i] != b.samples[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	c := PaperTwoDay()
	c.Seed++
	cc, err := Generate(c, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.samples {
		if a.samples[i] == cc.samples[i] {
			same++
		}
	}
	if same == len(a.samples) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr, err := Generate(noiseless(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Step() != time.Minute {
		t.Fatalf("Step = %v", tr.Step())
	}
	if tr.Duration() != 48*time.Hour {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.Len() != 48*60+1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	vs := tr.Values()
	vs[0] = 42
	if tr.samples[0] == 42 {
		t.Fatal("Values leaked internal state")
	}
	// Clamping beyond the ends.
	if tr.At(-time.Hour) != tr.samples[0] {
		t.Fatal("At before start should clamp")
	}
	if tr.At(100*time.Hour) != tr.samples[len(tr.samples)-1] {
		t.Fatal("At past end should clamp")
	}
}

// Property: all samples stay within [0,1] for arbitrary valid specs.
func TestBoundsProperty(t *testing.T) {
	f := func(peakPct, troughPct, noisePct uint8, seed uint64) bool {
		trough := float64(troughPct%50) / 100 // 0..0.49
		peak := 0.5 + float64(peakPct%51)/100 // 0.5..1.0
		noise := float64(noisePct%10) / 100   // 0..0.09
		s := Spec{
			Days:       1,
			PeakUtil:   []float64{peak},
			TroughUtil: trough,
			PeakHours:  []float64{20},
			TroughHour: 5,
			NoiseAmp:   noise,
			Seed:       seed,
		}
		tr, err := Generate(s, 5*time.Minute)
		if err != nil {
			return false
		}
		for _, v := range tr.Values() {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
