// Package trace generates the diurnal datacenter load trace driving the
// VMT scale-out study. The paper uses a two-day trace of Google
// datacenter load normalized per Kontorinis et al.; this package
// synthesizes the same published shape: load peaks near hours 20 and 46
// at up to 95% utilization and troughs near hours 5 and 29 — two
// atypically heavy back-to-back days chosen to stress the cooling
// system (Section IV-E, Figure 8).
package trace

import (
	"fmt"
	"math"
	"time"

	"vmt/internal/stats"
)

// Spec parameterizes a synthetic diurnal trace.
type Spec struct {
	// Days is the trace length in days.
	Days int
	// PeakUtil is the peak utilization (0..1] reached on each day;
	// entry i applies to day i (the last entry repeats if Days exceeds
	// its length).
	PeakUtil []float64
	// TroughUtil is the overnight minimum utilization.
	TroughUtil float64
	// PeakHours places each day's peak within its 24-hour day; entry i
	// applies to day i (the last entry repeats). The paper's trace
	// peaks near hour 20 on day one and hour 46 (= hour 22 of day two)
	// on day two. Every peak hour must exceed TroughHour.
	PeakHours []float64
	// TroughHour places the overnight minimum (e.g. hour 5): the
	// asymmetric long climb and short descent of user-facing load.
	TroughHour float64
	// NoiseAmp adds smoothed, seeded white noise of the given
	// amplitude (fraction of utilization) to mimic query jitter.
	// Zero disables noise.
	NoiseAmp float64
	// PeakSharpness shapes how pointed the daily peak is: 1 (and 0,
	// the zero value) gives a plain half-cosine; larger values spend
	// less time near the peak, matching the spiky profile of real
	// user-facing load. Must be ≥ 1 (after zero-defaulting).
	PeakSharpness float64
	// Seed drives the noise generator; same seed, same trace.
	Seed uint64
}

// PaperTwoDay returns the Figure 8 scenario: two consecutive worst-case
// days peaking at 90% and 95% server utilization with 25% overnight
// troughs.
func PaperTwoDay() Spec {
	return Spec{
		Days:          2,
		PeakUtil:      []float64{0.90, 0.95},
		TroughUtil:    0.25,
		PeakHours:     []float64{20, 22}, // peaks at h20 and h46
		TroughHour:    5,
		NoiseAmp:      0.01,
		PeakSharpness: 2.0,
		Seed:          1802, // ISCA 2018 submission, arbitrary but fixed
	}
}

// Validate reports whether the spec is self-consistent.
func (s Spec) Validate() error {
	switch {
	case s.Days <= 0:
		return fmt.Errorf("trace: days must be positive, got %d", s.Days)
	case len(s.PeakUtil) == 0:
		return fmt.Errorf("trace: need at least one peak utilization")
	case s.TroughUtil < 0 || s.TroughUtil > 1:
		return fmt.Errorf("trace: trough utilization %v out of [0,1]", s.TroughUtil)
	case len(s.PeakHours) == 0:
		return fmt.Errorf("trace: need at least one peak hour")
	case s.TroughHour < 0 || s.TroughHour >= 24:
		return fmt.Errorf("trace: trough hour must lie in [0,24)")
	case s.NoiseAmp < 0:
		return fmt.Errorf("trace: negative noise amplitude")
	//vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
	case s.PeakSharpness != 0 && s.PeakSharpness < 1:
		return fmt.Errorf("trace: peak sharpness must be >= 1, got %v", s.PeakSharpness)
	}
	for i, ph := range s.PeakHours {
		if ph <= s.TroughHour || ph >= 24 {
			return fmt.Errorf("trace: day %d peak hour %v must lie in (trough hour, 24)", i, ph)
		}
	}
	for i, p := range s.PeakUtil {
		if p <= s.TroughUtil || p > 1 {
			return fmt.Errorf("trace: day %d peak %v must lie in (trough, 1]", i, p)
		}
	}
	return nil
}

// Trace is a sampled utilization series in [0,1].
type Trace struct {
	step    time.Duration
	samples []float64
}

// Generate samples the spec's load curve every step.
func Generate(spec Spec, step time.Duration) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if step <= 0 {
		return nil, fmt.Errorf("trace: step must be positive, got %v", step)
	}
	total := time.Duration(spec.Days) * 24 * time.Hour
	n := int(total/step) + 1
	tr := &Trace{step: step, samples: make([]float64, n)}
	for i := range tr.samples {
		tr.samples[i] = spec.utilAt(time.Duration(i) * step)
	}
	if spec.NoiseAmp > 0 {
		applyNoise(tr.samples, spec.NoiseAmp, spec.Seed)
	}
	return tr, nil
}

// utilAt evaluates the noiseless diurnal curve at simulation time d.
// Between consecutive extremes (trough→peak, peak→trough) the curve is
// a half-cosine ease, which matches the smooth rise and fall of the
// published trace while hitting the extremes exactly.
func (s Spec) utilAt(d time.Duration) float64 {
	hours := d.Hours()
	day := int(hours / 24)
	h := math.Mod(hours, 24)

	// Work in a frame where the trough is hour zero; climb is the
	// trough→peak span of the day that owns the current segment.
	rel := math.Mod(h-s.TroughHour+24, 24)
	sharp := s.PeakSharpness
	if sharp == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		sharp = 1
	}
	if h < s.TroughHour {
		// Early-morning hours still descend from *yesterday's* peak.
		climb := s.peakHourForDay(day-1) - s.TroughHour
		return easeDown(s.peakForDay(day-1), s.TroughUtil, (rel-climb)/(24-climb), sharp)
	}
	climb := s.peakHourForDay(day) - s.TroughHour
	if rel <= climb {
		// Ascending half-cosine from trough toward today's peak.
		return easeUp(s.TroughUtil, s.peakForDay(day), rel/climb, sharp)
	}
	// Descending from today's peak toward tomorrow's trough.
	return easeDown(s.peakForDay(day), s.TroughUtil, (rel-climb)/(24-climb), sharp)
}

func (s Spec) peakForDay(day int) float64 {
	return indexOrEdge(s.PeakUtil, day)
}

func (s Spec) peakHourForDay(day int) float64 {
	return indexOrEdge(s.PeakHours, day)
}

// indexOrEdge returns xs[day], clamping day to the valid range so the
// first/last entry extends beyond the configured days.
func indexOrEdge(xs []float64, day int) float64 {
	if day < 0 {
		day = 0
	}
	if day >= len(xs) {
		day = len(xs) - 1
	}
	return xs[day]
}

// easeUp interpolates from trough a up to peak b as t goes 0→1: a
// half-cosine raised to the sharpness power, which preserves the
// endpoints and monotonicity while spending less time near the peak
// for sharpness > 1.
func easeUp(a, b, t, sharp float64) float64 {
	t = stats.Clamp(t, 0, 1)
	f := math.Pow((1-math.Cos(math.Pi*t))/2, sharp)
	return a + (b-a)*f
}

// easeDown interpolates from peak a down to trough b as t goes 0→1,
// mirroring easeUp so the curve is sharp at the peak on both sides.
func easeDown(a, b, t, sharp float64) float64 {
	t = stats.Clamp(t, 0, 1)
	f := math.Pow((1+math.Cos(math.Pi*t))/2, sharp)
	return b + (a-b)*f
}

// applyNoise perturbs samples with smoothed white noise, clamped to
// [0,1].
func applyNoise(samples []float64, amp float64, seed uint64) {
	rng := stats.NewRNG(seed)
	raw := make([]float64, len(samples))
	for i := range raw {
		raw[i] = rng.Normal(0, amp)
	}
	// Three-tap smoothing keeps minute-scale jitter from looking like
	// white static while preserving the seeded determinism.
	for i := range samples {
		n := raw[i]
		if i > 0 {
			n += raw[i-1]
		}
		if i+1 < len(raw) {
			n += raw[i+1]
		}
		samples[i] = stats.Clamp(samples[i]+n/3, 0, 1)
	}
}

// Step returns the sampling interval.
func (t *Trace) Step() time.Duration { return t.step }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.samples) }

// Duration returns the time covered by the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.samples)-1) * t.step
}

// Horizon returns the trace's end time, satisfying workload.JobSource:
// a finite trace is a job source that runs out.
func (t *Trace) Horizon() time.Duration { return t.Duration() }

// At returns the utilization at time d, linearly interpolating between
// samples and clamping beyond the ends.
func (t *Trace) At(d time.Duration) float64 {
	if d <= 0 {
		return t.samples[0]
	}
	if d >= t.Duration() {
		return t.samples[len(t.samples)-1]
	}
	pos := float64(d) / float64(t.step)
	i := int(pos)
	frac := pos - float64(i)
	return stats.Lerp(t.samples[i], t.samples[i+1], frac)
}

// Values returns a copy of the raw samples.
func (t *Trace) Values() []float64 {
	out := make([]float64, len(t.samples))
	copy(out, t.samples)
	return out
}

// Peak returns the maximum utilization and its time.
func (t *Trace) Peak() (float64, time.Duration) {
	i := stats.MaxIndex(t.samples)
	return t.samples[i], time.Duration(i) * t.step
}

// FromSamples builds a trace directly from utilization samples in
// [0,1], sampled every step — the programmatic sibling of FromReader,
// used when a forecast (not a file) supplies the series.
func FromSamples(samples []float64, step time.Duration) (*Trace, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: step must be positive, got %v", step)
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("trace: need at least two samples, got %d", len(samples))
	}
	for i, v := range samples {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("trace: sample %v at index %d out of [0,1]", v, i)
		}
	}
	out := make([]float64, len(samples))
	copy(out, samples)
	return &Trace{step: step, samples: out}, nil
}
