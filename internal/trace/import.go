package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"vmt/internal/stats"
)

// FromReader builds a trace from externally supplied utilization
// samples, one value per line in [0,1] (or percentages in (1,100],
// auto-detected), sampled uniformly every step. Blank lines and lines
// starting with '#' are skipped; a single optional non-numeric header
// line is tolerated. This is the hook for feeding a production trace —
// the paper's Google trace arrives exactly as such a normalized series.
func FromReader(r io.Reader, step time.Duration) (*Trace, error) {
	if step <= 0 {
		return nil, fmt.Errorf("trace: step must be positive, got %v", step)
	}
	var samples []float64
	sc := bufio.NewScanner(r)
	line := 0
	headerSkipped := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			if !headerSkipped && len(samples) == 0 {
				headerSkipped = true
				continue
			}
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		samples = append(samples, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("trace: need at least two samples, got %d", len(samples))
	}
	// Percentage auto-detection: any value above 1 means the series is
	// in percent.
	maxV, _ := stats.Max(samples)
	if maxV > 1 {
		if maxV > 100 {
			return nil, fmt.Errorf("trace: sample %v exceeds 100%%", maxV)
		}
		for i := range samples {
			samples[i] /= 100
		}
	}
	for i, v := range samples {
		if v < 0 {
			return nil, fmt.Errorf("trace: negative sample %v at index %d", v, i)
		}
	}
	return &Trace{step: step, samples: samples}, nil
}
