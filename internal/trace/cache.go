package trace

import (
	"fmt"
	"sync"
	"time"
)

// Generated traces are immutable (every accessor reads or copies), so
// sweeps that run hundreds of configurations over the same spec can
// share one decoded trace instead of re-synthesizing ~2,900 samples
// per run. Spec contains slices and cannot be a map key directly; its
// printed form (plus the step) is a faithful identity because
// generation is a pure function of exactly those inputs.
var (
	cacheMu    sync.Mutex
	traceCache = map[string]*Trace{}
)

// cachedMaxEntries bounds the cache; property tests that synthesize
// many random specs must not grow it without limit. Dropping the whole
// map is cheap and keeps the steady state (a few sweep specs) hot.
const cachedMaxEntries = 256

// Cached returns a shared trace for the spec/step pair, generating and
// memoizing it on first use. The returned trace must be treated as
// read-only (all Trace methods are). Safe for concurrent use — batch
// runners hit it from every worker.
func Cached(spec Spec, step time.Duration) (*Trace, error) {
	key := fmt.Sprintf("%+v|%d", spec, step)
	cacheMu.Lock()
	if tr, ok := traceCache[key]; ok {
		cacheMu.Unlock()
		return tr, nil
	}
	cacheMu.Unlock()

	// Generate outside the lock: synthesis is the expensive part, and
	// two racing generators produce identical traces anyway.
	tr, err := Generate(spec, step)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if prev, ok := traceCache[key]; ok {
		return prev, nil
	}
	if len(traceCache) >= cachedMaxEntries {
		traceCache = map[string]*Trace{}
	}
	traceCache[key] = tr
	return tr, nil
}
