package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the format a Prometheus server
// scrapes from /metrics:
//
//	# TYPE sim_events_dispatched counter
//	sim_events_dispatched 172800
//	# TYPE pcm_melt_frac histogram
//	pcm_melt_frac_bucket{le="0.1"} 12
//	...
//	pcm_melt_frac_bucket{le="+Inf"} 288000
//	pcm_melt_frac_sum 96432.5
//	pcm_melt_frac_count 288000
//
// Instrument names are sanitized to the Prometheus grammar (invalid
// runes become '_'); histogram buckets are converted from the
// registry's per-range counts to Prometheus's cumulative convention.
// Output is deterministic: snapshots are already name-sorted.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, c := range snap.Counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.Le != nil {
				le = promFloat(*b.Le)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		// A histogram that never declared buckets still exposes the
		// mandatory +Inf bucket so scrapers see a complete family.
		if len(h.Buckets) == 0 {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes an instrument name to the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*. Empty names become "_".
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float in the exposition format: Prometheus spells
// special values +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
