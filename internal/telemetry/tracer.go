package telemetry

import (
	"sync"
	"time"
)

// SpanEvent is one traced unit of work: a named simulation phase that
// ran at simulation time At and took Wall of wall-clock time, starting
// WallStart after the run began. Args carries a few key gauges sampled
// when the span closed (cooling load, melt fraction, hot-group size).
// Run distinguishes concurrent runs in a batch (RunMany tags it).
type SpanEvent struct {
	// Name is the phase, e.g. "physics", "schedule", "sample".
	Name string `json:"name"`
	// Run is the batch index of the run emitting the event (0 for a
	// solo run).
	Run int `json:"run"`
	// At is the simulation time of the tick.
	At time.Duration `json:"sim_ns"`
	// WallStart is the wall-clock offset from the start of the run.
	WallStart time.Duration `json:"wall_start_ns"`
	// Wall is the wall-clock duration of the phase.
	Wall time.Duration `json:"wall_ns"`
	// AllocBytes is the heap allocated during the span (band profiling
	// only; zero when profiling is off). Exported as a Chrome trace
	// counter event alongside the span.
	AllocBytes uint64 `json:"alloc_b,omitempty"`
	// Args are key gauges sampled at span close.
	Args map[string]float64 `json:"args,omitempty"`
}

// Tracer receives span events. Implementations must be safe for
// concurrent use when shared across RunMany workers; they must only
// record — a Tracer that mutates simulation state breaks the
// instrumented-equals-uninstrumented invariant.
type Tracer interface {
	Emit(ev SpanEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(SpanEvent)

// Emit implements Tracer.
func (f TracerFunc) Emit(ev SpanEvent) { f(ev) }

// Recorder is a Tracer that appends events to memory for later export.
// Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []SpanEvent
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(ev SpanEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// runTagger stamps a fixed run index onto every event before
// forwarding, so a shared tracer can tell batch runs apart.
type runTagger struct {
	t   Tracer
	run int
}

// WithRun wraps t so every emitted event carries the given run index.
// A nil t yields nil.
func WithRun(t Tracer, run int) Tracer {
	if t == nil {
		return nil
	}
	return runTagger{t: t, run: run}
}

// Emit implements Tracer.
func (rt runTagger) Emit(ev SpanEvent) {
	ev.Run = rt.run
	rt.t.Emit(ev)
}
