package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the bounded-memory half of the observability layer: a
// windowed time-series sampler whose state is O(windows), never
// O(ticks). A long-lived streaming engine can observe one value per
// tick for millions of ticks; the sampler aggregates each fixed-width
// window of ticks into min/max/mean/p99, keeps only a ring of recent
// sealed windows in memory, and hands every sealed window to an
// optional sink (e.g. an NDJSON stream on disk) the moment it closes —
// flush-per-window, not flush-per-run.

// Default sizing: windows of one simulated hour at the paper's
// one-minute step, a ring holding roughly a day of recent windows, and
// a per-window reservoir big enough that p99 is exact for windows up
// to 512 samples.
const (
	DefaultWindowTicks = 60
	DefaultRingWindows = 24
	maxWindowSamples   = 512
)

// Window is one sealed aggregation window of a time series.
type Window struct {
	// Index is the window's ordinal: ticks [Index*W, (Index+1)*W).
	Index int64
	// StartTick is the first tick covered (Index * windowTicks).
	StartTick int64
	// Count is the number of observations that landed in the window.
	Count uint64
	// Min, Max, Sum aggregate the observations exactly.
	Min, Max, Sum float64
	// Mean is Sum/Count.
	Mean float64
	// P99 is the 99th-percentile observation. Exact for windows with at
	// most 512 samples; computed over a deterministic systematic
	// subsample (every k-th observation) beyond that.
	P99 float64
}

// WindowRecord is the streamed form of a sealed window: one NDJSON
// line in the stream sink format, carrying the series name and the
// batch run index so interleaved streams from concurrent runs stay
// separable.
type WindowRecord struct {
	Series    string  `json:"series"`
	Run       int     `json:"run,omitempty"`
	Window    int64   `json:"window"`
	StartTick int64   `json:"start_tick"`
	Count     uint64  `json:"count"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Mean      float64 `json:"mean"`
	P99       float64 `json:"p99"`
	Sum       float64 `json:"sum"`
}

// WindowSink receives sealed windows as they close. Implementations
// must be safe for concurrent use when shared across runs (the NDJSON
// sink is) and must only record — the zero-perturbation contract of
// the package applies.
type WindowSink interface {
	EmitWindow(rec WindowRecord)
}

// TimeSeries aggregates a stream of (tick, value) observations into
// fixed-width windows, holding at most ringWindows sealed windows plus
// one open accumulator — bounded memory regardless of run length.
// Observe must be called with non-decreasing ticks (simulation time
// only moves forward); methods are safe for concurrent use with reads
// (Windows/Last), though a single series is typically fed from one
// goroutine. A nil *TimeSeries ignores observations, so call sites can
// hold optional series without branching.
type TimeSeries struct {
	mu          sync.Mutex
	name        string
	run         int
	windowTicks int64
	sink        WindowSink

	// ring of sealed windows: ring[(start+i)%len] for i < count.
	ring  []Window
	start int
	count int

	// open window accumulator.
	open    bool
	cur     Window
	curN    uint64 // observations seen in the open window
	stride  uint64 // systematic-sampling stride for the p99 reservoir
	samples []float64
}

// NewTimeSeries returns a sampler aggregating windowTicks ticks per
// window and retaining ringWindows sealed windows. Non-positive
// arguments select the defaults. sink may be nil (aggregate only).
func NewTimeSeries(name string, windowTicks, ringWindows int, sink WindowSink) *TimeSeries {
	if windowTicks <= 0 {
		windowTicks = DefaultWindowTicks
	}
	if ringWindows <= 0 {
		ringWindows = DefaultRingWindows
	}
	return &TimeSeries{
		name:        name,
		windowTicks: int64(windowTicks),
		sink:        sink,
		ring:        make([]Window, ringWindows),
	}
}

// Name returns the series name.
func (ts *TimeSeries) Name() string {
	if ts == nil {
		return ""
	}
	return ts.name
}

// Observe records v at the given tick. Ticks must not decrease between
// calls; a tick that lands past the open window seals it (emitting to
// the sink) and opens the next. A nil series ignores the call.
func (ts *TimeSeries) Observe(tick int64, v float64) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	idx := tick / ts.windowTicks
	if tick < 0 {
		idx = 0
	}
	if ts.open && idx != ts.cur.Index {
		ts.sealLocked()
	}
	if !ts.open {
		ts.cur = Window{Index: idx, StartTick: idx * ts.windowTicks, Min: v, Max: v}
		ts.open = true
		ts.curN = 0
		ts.stride = 1
		ts.samples = ts.samples[:0]
	}
	if v < ts.cur.Min {
		ts.cur.Min = v
	}
	if v > ts.cur.Max {
		ts.cur.Max = v
	}
	ts.cur.Sum += v
	ts.cur.Count++
	// Deterministic p99 reservoir: keep every stride-th observation;
	// when the reservoir fills, drop every other retained sample and
	// double the stride. No randomness — the same observation sequence
	// always retains the same subsample.
	if ts.curN%ts.stride == 0 {
		if len(ts.samples) == maxWindowSamples {
			kept := ts.samples[:0]
			for i := 0; i < maxWindowSamples; i += 2 {
				kept = append(kept, ts.samples[i])
			}
			ts.samples = kept
			ts.stride *= 2
		}
		ts.samples = append(ts.samples, v)
	}
	ts.curN++
}

// sealLocked closes the open window: finalizes mean and p99, pushes it
// into the ring (evicting the oldest), and emits it to the sink.
func (ts *TimeSeries) sealLocked() {
	if !ts.open {
		return
	}
	w := ts.cur
	if w.Count > 0 {
		// Clamp: summation rounding can push Sum/Count a ulp past the
		// exact extrema, and the stream validator holds min ≤ mean ≤ max.
		w.Mean = clamp(w.Sum/float64(w.Count), w.Min, w.Max)
		w.P99 = percentile(ts.samples, 0.99)
	}
	if ts.count == len(ts.ring) {
		ts.start = (ts.start + 1) % len(ts.ring)
		ts.count--
	}
	ts.ring[(ts.start+ts.count)%len(ts.ring)] = w
	ts.count++
	ts.open = false
	if ts.sink != nil {
		ts.sink.EmitWindow(WindowRecord{
			Series:    ts.name,
			Run:       ts.run,
			Window:    w.Index,
			StartTick: w.StartTick,
			Count:     w.Count,
			Min:       w.Min,
			Max:       w.Max,
			Mean:      w.Mean,
			P99:       w.P99,
			Sum:       w.Sum,
		})
	}
}

// SealThrough seals the open window if the given tick is at or past
// the last tick the window covers — every observation the window could
// ever receive has arrived, so it can reach the sink now instead of
// waiting for the next observation (or end-of-run Flush) to close it.
// The sealed record is identical either way; only the emission time
// moves. Partial windows stay open. Nil-safe.
func (ts *TimeSeries) SealThrough(tick int64) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.open && (ts.cur.Index+1)*ts.windowTicks-1 <= tick {
		ts.sealLocked()
	}
}

// Flush seals the open window, if any, so a finished run's trailing
// partial window reaches the sink.
func (ts *TimeSeries) Flush() {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.sealLocked()
}

// Windows returns a copy of the retained sealed windows, oldest first.
func (ts *TimeSeries) Windows() []Window {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Window, ts.count)
	for i := 0; i < ts.count; i++ {
		out[i] = ts.ring[(ts.start+i)%len(ts.ring)]
	}
	return out
}

// Last returns the most recently sealed window, or false if none has
// sealed yet.
func (ts *TimeSeries) Last() (Window, bool) {
	if ts == nil {
		return Window{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.count == 0 {
		return Window{}, false
	}
	return ts.ring[(ts.start+ts.count-1)%len(ts.ring)], true
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// percentile returns the p-quantile (0 < p ≤ 1) of vs by
// nearest-rank over a sorted copy. Empty input yields 0.
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Stream is a named set of time series sharing one window
// configuration and sink — the bounded-memory telemetry surface a run
// feeds. Series are created on first use; a nil *Stream hands out nil
// series, so an unstreamed run pays only nil checks. Safe for
// concurrent use.
type Stream struct {
	mu          sync.Mutex
	windowTicks int
	ringWindows int
	sink        WindowSink
	run         int
	series      map[string]*TimeSeries
}

// StreamOptions configures a Stream.
type StreamOptions struct {
	// WindowTicks is the number of ticks aggregated per window
	// (non-positive → DefaultWindowTicks).
	WindowTicks int
	// RingWindows is how many sealed windows each series retains in
	// memory (non-positive → DefaultRingWindows).
	RingWindows int
	// Sink, when non-nil, receives every sealed window as it closes.
	Sink WindowSink
}

// NewStream returns an empty stream with the given options.
func NewStream(opts StreamOptions) *Stream {
	if opts.WindowTicks <= 0 {
		opts.WindowTicks = DefaultWindowTicks
	}
	if opts.RingWindows <= 0 {
		opts.RingWindows = DefaultRingWindows
	}
	return &Stream{
		windowTicks: opts.WindowTicks,
		ringWindows: opts.RingWindows,
		sink:        opts.Sink,
		series:      make(map[string]*TimeSeries),
	}
}

// Series returns the named series, creating it if needed. Nil-safe.
func (s *Stream) Series(name string) *TimeSeries {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.series[name]
	if !ok {
		ts = NewTimeSeries(name, s.windowTicks, s.ringWindows, s.sink)
		ts.run = s.run
		s.series[name] = ts
	}
	return ts
}

// ForRun returns a stream sharing this stream's window configuration
// and sink but with its own series, every emitted window tagged with
// the given batch run index — the Stream analogue of WithRun for
// tracers, used by RunMany so concurrent runs sharing one sink stay
// separable. A nil receiver yields nil.
func (s *Stream) ForRun(run int) *Stream {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Stream{
		windowTicks: s.windowTicks,
		ringWindows: s.ringWindows,
		sink:        s.sink,
		run:         run,
		series:      make(map[string]*TimeSeries),
	}
}

// Flush seals every series' open window. Call at end of run so
// trailing partial windows reach the sink.
func (s *Stream) Flush() {
	if s == nil {
		return
	}
	for _, ts := range s.sorted() {
		ts.Flush()
	}
}

// SealThrough asks every series to seal windows wholly covered by
// ticks ≤ tick (see TimeSeries.SealThrough) — the incremental flush a
// stepped session calls on step boundaries so completed windows reach
// the sink while the session is paused. Series order is deterministic
// (sorted by name). Nil-safe.
func (s *Stream) SealThrough(tick int64) {
	if s == nil {
		return
	}
	for _, ts := range s.sorted() {
		ts.SealThrough(tick)
	}
}

// Snapshot returns the retained windows of every series as records,
// sorted by series name then window index — a deterministic view for
// live endpoints and tests.
func (s *Stream) Snapshot() []WindowRecord {
	if s == nil {
		return nil
	}
	var out []WindowRecord
	for _, ts := range s.sorted() {
		for _, w := range ts.Windows() {
			out = append(out, WindowRecord{
				Series:    ts.Name(),
				Run:       s.run,
				Window:    w.Index,
				StartTick: w.StartTick,
				Count:     w.Count,
				Min:       w.Min,
				Max:       w.Max,
				Mean:      w.Mean,
				P99:       w.P99,
				Sum:       w.Sum,
			})
		}
	}
	return out
}

// sorted returns the series ordered by name (deterministic iteration).
func (s *Stream) sorted() []*TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for name := range s.series { //vmtlint:allow maporder names are sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*TimeSeries, len(names))
	for i, name := range names {
		out[i] = s.series[name]
	}
	return out
}

// validateWindowRecord rejects records no sealed window could have
// produced, so decoded streams carry the writer's invariants.
func validateWindowRecord(rec WindowRecord) error {
	if rec.Series == "" {
		return fmt.Errorf("window missing series name")
	}
	if rec.Run < 0 {
		return fmt.Errorf("series %q: negative run %d", rec.Series, rec.Run)
	}
	if rec.Window < 0 || rec.StartTick < 0 {
		return fmt.Errorf("series %q: negative window index or start tick", rec.Series)
	}
	if rec.Count > 0 {
		if rec.Min > rec.Max {
			return fmt.Errorf("series %q window %d: min %g > max %g", rec.Series, rec.Window, rec.Min, rec.Max)
		}
		if rec.Mean < rec.Min || rec.Mean > rec.Max {
			return fmt.Errorf("series %q window %d: mean %g outside [min, max]", rec.Series, rec.Window, rec.Mean)
		}
		if rec.P99 < rec.Min || rec.P99 > rec.Max {
			return fmt.Errorf("series %q window %d: p99 %g outside [min, max]", rec.Series, rec.Window, rec.P99)
		}
	}
	return nil
}
