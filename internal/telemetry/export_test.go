package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleRecorder() *Recorder {
	rec := NewRecorder()
	for run := 0; run < 2; run++ {
		tr := WithRun(rec, run)
		for i := 0; i < 3; i++ {
			tr.Emit(SpanEvent{
				Name:      "physics",
				At:        time.Duration(i) * time.Minute,
				WallStart: time.Duration(i*10) * time.Microsecond,
				Wall:      5 * time.Microsecond,
				Args:      map[string]float64{"cooling_load_w": float64(100 + i)},
			})
			tr.Emit(SpanEvent{
				Name:      "schedule",
				At:        time.Duration(i) * time.Minute,
				WallStart: time.Duration(i*10+5) * time.Microsecond,
				Wall:      2 * time.Microsecond,
			})
		}
	}
	return rec
}

func TestWriteJSONL(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if ev.Name == "" {
			t.Fatalf("line %d missing name", lines)
		}
		lines++
	}
	if lines != rec.Len() {
		t.Fatalf("wrote %d lines for %d events", lines, rec.Len())
	}
}

// TestChromeTraceIsValid verifies the export satisfies the Chrome
// trace_event JSON object format that chrome://tracing and Perfetto
// load: a traceEvents array of events with name/ph/pid/tid, complete
// ("X") events carrying non-negative microsecond timestamps.
func TestChromeTraceIsValid(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	spans, metas := 0, 0
	for i, ev := range decoded.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil {
			t.Fatalf("event %d incomplete: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts == nil || *ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("span %d has bad timing: %+v", i, ev)
			}
			if ev.Tid == nil || *ev.Tid <= 0 {
				t.Fatalf("span %d missing thread: %+v", i, ev)
			}
			if _, ok := ev.Args["sim_time_s"]; !ok {
				t.Fatalf("span %d missing sim_time_s arg", i)
			}
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != rec.Len() {
		t.Fatalf("exported %d spans for %d events", spans, rec.Len())
	}
	// Two runs × two phases: process and thread metadata for each.
	if metas != 8 {
		t.Fatalf("metadata events = %d, want 8", metas)
	}
	// Distinct runs land in distinct processes.
	pids := map[int]bool{}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph == "X" {
			pids[*ev.Pid] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want 2 distinct", pids)
	}
}

func TestChromeTraceArgsCarryGauges(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cooling_load_w") {
		t.Fatal("gauge args missing from chrome trace")
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Events()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, wrote %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Name != w.Name || g.Run != w.Run || g.At != w.At ||
			g.WallStart != w.WallStart || g.Wall != w.Wall {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Args) != len(w.Args) {
			t.Fatalf("event %d: args %v, want %v", i, g.Args, w.Args)
		}
		for k, v := range w.Args {
			if g.Args[k] != v {
				t.Fatalf("event %d: arg %s = %v, want %v", i, k, g.Args[k], v)
			}
		}
	}
}

func TestReadJSONLEmptyAndBlank(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty input: got %v, %v", evs, err)
	}
	evs, err = ReadJSONL(strings.NewReader("\n\n  \n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank lines: got %v, %v", evs, err)
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"{not json}",
		`{"name":"x"} trailing`,
		`{"run":1}`,                   // missing name
		`{"name":"x","run":-1}`,       // negative run
		`{"name":"x","wall_ns":-5}`,   // negative wall time
		`{"name":"x"}` + "\n" + `???`, // good line then bad line
	} {
		if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadJSONL(%q) = nil error, want failure", bad)
		}
	}
}

func TestReadSnapshotRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ticks").Add(42)
	reg.Counter("drops").Add(0)
	reg.Gauge("melt_frac").Set(0.37)
	h := reg.Histogram("phase_ms", 1, 5, 10)
	for _, v := range []float64{0.5, 2, 7, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := reg.Snapshot()
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestReadSnapshotRejectsInvalid(t *testing.T) {
	for name, bad := range map[string]string{
		"not json":         `{`,
		"empty name":       `{"counters":[{"name":"","value":1}]}`,
		"duplicate name":   `{"gauges":[{"name":"g","value":1},{"name":"g","value":2}]}`,
		"count no buckets": `{"histograms":[{"name":"h","count":3,"sum":1,"buckets":[]}]}`,
		"inf not last":     `{"histograms":[{"name":"h","count":1,"sum":1,"buckets":[{"le":null,"count":1},{"le":5,"count":0}]}]}`,
		"bounds decrease":  `{"histograms":[{"name":"h","count":2,"sum":1,"buckets":[{"le":5,"count":1},{"le":2,"count":0},{"le":null,"count":1}]}]}`,
		"count mismatch":   `{"histograms":[{"name":"h","count":9,"sum":1,"buckets":[{"le":5,"count":1},{"le":null,"count":1}]}]}`,
	} {
		if _, err := ReadSnapshot(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: ReadSnapshot accepted invalid input", name)
		}
	}
	// Same-name instruments of different kinds are fine (separate
	// namespaces, as in the registry itself).
	ok := `{"counters":[{"name":"x","value":1}],"gauges":[{"name":"x","value":2}]}`
	if _, err := ReadSnapshot(strings.NewReader(ok)); err != nil {
		t.Errorf("cross-section name reuse rejected: %v", err)
	}
}

func TestChromeTraceEmptyRecorder(t *testing.T) {
	rec := NewRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["traceEvents"]; !ok {
		t.Fatal("traceEvents key must exist even when empty")
	}
}
