package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleRecorder() *Recorder {
	rec := NewRecorder()
	for run := 0; run < 2; run++ {
		tr := WithRun(rec, run)
		for i := 0; i < 3; i++ {
			tr.Emit(SpanEvent{
				Name:      "physics",
				At:        time.Duration(i) * time.Minute,
				WallStart: time.Duration(i*10) * time.Microsecond,
				Wall:      5 * time.Microsecond,
				Args:      map[string]float64{"cooling_load_w": float64(100 + i)},
			})
			tr.Emit(SpanEvent{
				Name:      "schedule",
				At:        time.Duration(i) * time.Minute,
				WallStart: time.Duration(i*10+5) * time.Microsecond,
				Wall:      2 * time.Microsecond,
			})
		}
	}
	return rec
}

func TestWriteJSONL(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if ev.Name == "" {
			t.Fatalf("line %d missing name", lines)
		}
		lines++
	}
	if lines != rec.Len() {
		t.Fatalf("wrote %d lines for %d events", lines, rec.Len())
	}
}

// TestChromeTraceIsValid verifies the export satisfies the Chrome
// trace_event JSON object format that chrome://tracing and Perfetto
// load: a traceEvents array of events with name/ph/pid/tid, complete
// ("X") events carrying non-negative microsecond timestamps.
func TestChromeTraceIsValid(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	spans, metas := 0, 0
	for i, ev := range decoded.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil {
			t.Fatalf("event %d incomplete: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts == nil || *ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("span %d has bad timing: %+v", i, ev)
			}
			if ev.Tid == nil || *ev.Tid <= 0 {
				t.Fatalf("span %d missing thread: %+v", i, ev)
			}
			if _, ok := ev.Args["sim_time_s"]; !ok {
				t.Fatalf("span %d missing sim_time_s arg", i)
			}
		case "M":
			metas++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != rec.Len() {
		t.Fatalf("exported %d spans for %d events", spans, rec.Len())
	}
	// Two runs × two phases: process and thread metadata for each.
	if metas != 8 {
		t.Fatalf("metadata events = %d, want 8", metas)
	}
	// Distinct runs land in distinct processes.
	pids := map[int]bool{}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph == "X" {
			pids[*ev.Pid] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("pids = %v, want 2 distinct", pids)
	}
}

func TestChromeTraceArgsCarryGauges(t *testing.T) {
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cooling_load_w") {
		t.Fatal("gauge args missing from chrome trace")
	}
}

func TestChromeTraceEmptyRecorder(t *testing.T) {
	rec := NewRecorder()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["traceEvents"]; !ok {
		t.Fatal("traceEvents key must exist even when empty")
	}
}
