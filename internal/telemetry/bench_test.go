package telemetry

import (
	"testing"
)

// The contention microbenchmarks bound the cost instrumented hot paths
// pay per update with every core hammering the same instruments —
// the worst case RunMany produces with a shared registry.

func BenchmarkCounterContended(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("events")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSetMaxContended(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("hwm")
	b.RunParallel(func(pb *testing.PB) {
		i := 0.0
		for pb.Next() {
			i++
			g.SetMax(i)
		}
	})
}

func BenchmarkHistogramContended(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("melt", LinearBounds(0, 1, 10)...)
	b.RunParallel(func(pb *testing.PB) {
		v := 0.0
		for pb.Next() {
			v += 0.1
			if v > 1 {
				v = 0
			}
			h.Observe(v)
		}
	})
}

func BenchmarkNilCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRecorderEmit(b *testing.B) {
	rec := NewRecorder()
	ev := SpanEvent{Name: "physics"}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec.Emit(ev)
		}
	})
}
