package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzReadJSONL drives the JSONL trace decoder with arbitrary input.
// The decoder must never panic, and on success every decoded event
// must satisfy the writer invariants and survive a write→read round
// trip unchanged.
func FuzzReadJSONL(f *testing.F) {
	// Seed with real writer output plus edge shapes.
	rec := sampleRecorder()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"name":"physics","run":0,"sim_ns":60000000000,"wall_start_ns":10000,"wall_ns":5000}`)
	f.Add(`{"name":"sample","args":{"cooling_load_w":123.5}}`)
	f.Add(`{not json}`)
	f.Add(`{"name":""}`)
	f.Add(`{"name":"x","run":-1}`)
	f.Add(`{"name":"x"} trailing`)

	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, ev := range events {
			if ev.Name == "" || ev.Run < 0 || ev.Wall < 0 || ev.WallStart < 0 {
				t.Fatalf("event %d violates invariants: %+v", i, ev)
			}
		}
		// Round trip: re-encode the decoded events and decode again;
		// the decoder must accept its own writer's output and agree.
		rt := NewRecorder()
		for _, ev := range events {
			rt.Emit(ev)
		}
		var out bytes.Buffer
		if err := rt.WriteJSONL(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadJSONL(&out)
		if err != nil {
			t.Fatalf("decode of re-encoded stream failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
	})
}

// FuzzReadWindows drives the streaming NDJSON window decoder with
// arbitrary input (mirror of FuzzReadJSONL for the windowed
// time-series stream). The decoder must never panic; anything it
// accepts must satisfy the sealed-window invariants and survive an
// encode→decode round trip.
func FuzzReadWindows(f *testing.F) {
	// Seed with real sink output plus edge shapes.
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	s := NewStream(StreamOptions{WindowTicks: 3, RingWindows: 2, Sink: sink})
	for i := int64(0); i < 10; i++ {
		s.Series("cooling_load_w").Observe(i, float64(100+i))
		s.Series("melt_frac").Observe(i, float64(i)/10)
	}
	s.Flush()
	f.Add(buf.String())
	f.Add("")
	f.Add("\n\n")
	f.Add(`{"series":"x","window":0,"start_tick":0,"count":1,"min":1,"max":1,"mean":1,"p99":1,"sum":1}`)
	f.Add(`{"series":"x","run":3,"window":2,"start_tick":120,"count":0,"min":0,"max":0,"mean":0,"p99":0,"sum":0}`)
	f.Add(`{"series":""}`)
	f.Add(`{"series":"x","count":1,"min":5,"max":1}`)
	f.Add(`{"series":"x"} trailing`)
	f.Add(`{not json}`)

	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadWindows(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, rec := range recs {
			if err := validateWindowRecord(rec); err != nil {
				t.Fatalf("record %d violates invariants after accept: %v", i, err)
			}
		}
		// Round trip: re-encode through the sink and decode again.
		var out bytes.Buffer
		rt := NewNDJSONSink(&out)
		for _, rec := range recs {
			rt.EmitWindow(rec)
		}
		if err := rt.Err(); err != nil {
			t.Fatalf("re-encode of accepted records failed: %v", err)
		}
		again, err := ReadWindows(&out)
		if err != nil {
			t.Fatalf("decode of re-encoded stream failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range again {
			if again[i] != recs[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}

// FuzzWritePrometheus drives the exposition encoder with arbitrary
// snapshots (decoded via ReadSnapshot, so any accepted snapshot is
// fair game). The encoder must never panic or error on an in-memory
// writer, and its output must obey the exposition grammar: every line
// parses, metric names are sanitized, histogram bucket series are
// cumulative and end at the count.
func FuzzWritePrometheus(f *testing.F) {
	reg := NewRegistry()
	reg.Counter("ticks").Add(7)
	reg.Gauge("melt frac").Set(0.25)
	h := reg.Histogram("phase_ms", 1, 10)
	h.Observe(0.5)
	h.Observe(25)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"counters":[{"name":"0weird name!","value":1}]}`)
	f.Add(`{"gauges":[{"name":"g","value":1e308}]}`)
	f.Add(`{"histograms":[{"name":"h","count":1,"sum":2,"buckets":[{"le":null,"count":1}]}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		snap, err := ReadSnapshot(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WritePrometheus(&out, snap); err != nil {
			t.Fatalf("encode of accepted snapshot failed: %v", err)
		}
		checkPrometheusInvariants(t, out.String())
	})
}

// FuzzReadSnapshot drives the metrics snapshot decoder with arbitrary
// JSON. The decoder must never panic; anything it accepts must
// re-encode to a snapshot it accepts again (idempotent validation).
func FuzzReadSnapshot(f *testing.F) {
	reg := NewRegistry()
	reg.Counter("ticks").Add(7)
	reg.Gauge("melt_frac").Set(0.25)
	h := reg.Histogram("phase_ms", 1, 10)
	h.Observe(0.5)
	h.Observe(25)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"counters":null,"gauges":null,"histograms":null}`)
	f.Add(`{"counters":[{"name":"c","value":1}]}`)
	f.Add(`{"histograms":[{"name":"h","count":1,"sum":2,"buckets":[{"le":null,"count":1}]}]}`)
	f.Add(`{"histograms":[{"name":"h","count":9,"sum":2,"buckets":[{"le":null,"count":1}]}]}`)
	f.Add(`not json`)

	f.Fuzz(func(t *testing.T, input string) {
		snap, err := ReadSnapshot(strings.NewReader(input))
		if err != nil {
			return
		}
		re, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("re-marshal of accepted snapshot failed: %v", err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(re)); err != nil {
			t.Fatalf("validation not idempotent: %v\ninput: %s", err, re)
		}
	})
}
