package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Fleet state telemetry: a per-tick snapshot of every server's
// observable state, published through an atomic pointer so a live
// endpoint (the cliobs /fleet handler) can scrape mid-run without
// touching the engine goroutine, and optionally streamed to an NDJSON
// log — the per-server ground truth vmtdiff replays to pinpoint the
// first divergent tick/server/field between two runs.

// ServerState is one server's observable state at a sample tick.
type ServerState struct {
	ID       int     `json:"id"`
	AirTempC float64 `json:"air_temp_c"`
	MeltFrac float64 `json:"melt_frac"`
	// Group is the scheduler's placement group ("hot", "cold", or ""
	// for ungrouped baselines).
	Group string `json:"group,omitempty"`
	// Crashed reports fault-injected downtime.
	Crashed bool `json:"crashed,omitempty"`
}

// FleetSnapshot is the cluster's observable state at one sample tick.
type FleetSnapshot struct {
	// Tick is the sample index (1-based: the first sample after one
	// elapsed step is tick 1).
	Tick int64 `json:"tick"`
	// SimNS is the simulation time in nanoseconds.
	SimNS int64 `json:"sim_ns"`
	// Run is the batch run index (0 for a solo run).
	Run int `json:"run,omitempty"`
	// CoolingLoadW and TotalPowerW summarize the fleet.
	CoolingLoadW float64 `json:"cooling_load_w"`
	TotalPowerW  float64 `json:"total_power_w"`
	// Servers holds per-server state in server-ID order.
	Servers []ServerState `json:"servers"`
}

// FleetSink receives fleet snapshots as they are published.
// Implementations must be safe for concurrent use and must only
// record.
type FleetSink interface {
	EmitFleet(snap *FleetSnapshot)
}

// FleetPublisher retains the latest fleet snapshot behind an atomic
// pointer — a scrape-safe live view: the simulation goroutine
// publishes a fresh immutable snapshot each sample tick, readers load
// whatever is current without locks or tearing. An optional sink
// additionally receives every snapshot (the fleet log). A nil
// publisher ignores publishes, so call sites can hold one without
// branching.
type FleetPublisher struct {
	cur  atomic.Pointer[FleetSnapshot]
	sink FleetSink
}

// NewFleetPublisher returns a publisher; sink may be nil (live view
// only).
func NewFleetPublisher(sink FleetSink) *FleetPublisher {
	return &FleetPublisher{sink: sink}
}

// Publish installs snap as the current snapshot and forwards it to the
// sink. The caller must not mutate snap afterwards — readers hold it.
func (p *FleetPublisher) Publish(snap *FleetSnapshot) {
	if p == nil || snap == nil {
		return
	}
	p.cur.Store(snap)
	if p.sink != nil {
		p.sink.EmitFleet(snap)
	}
}

// Load returns the most recently published snapshot, or nil. The
// returned snapshot is shared — treat it as read-only.
func (p *FleetPublisher) Load() *FleetSnapshot {
	if p == nil {
		return nil
	}
	return p.cur.Load()
}

// NDJSONFleetLog streams fleet snapshots as newline-delimited JSON,
// one snapshot per line, flushed per line. Safe for concurrent use;
// errors latch like NDJSONSink's.
type NDJSONFleetLog struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte // reused line buffer
	err error
}

// NewNDJSONFleetLog returns a log writing to w.
func NewNDJSONFleetLog(w io.Writer) *NDJSONFleetLog {
	return &NDJSONFleetLog{w: bufio.NewWriter(w)}
}

// EmitFleet implements FleetSink.
func (l *NDJSONFleetLog) EmitFleet(snap *FleetSnapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	// The log writes one full-fleet line per sample tick, so encoding is
	// the telemetry layer's hottest byte path; the hand-rolled encoder
	// (byte-identical to encoding/json for this shape) keeps it off the
	// reflection path and reuses one buffer across ticks.
	b, err := appendFleetJSON(l.buf[:0], snap)
	if err != nil {
		l.err = fmt.Errorf("telemetry: fleet log encode: %w", err)
		return
	}
	b = append(b, '\n')
	l.buf = b
	if _, err := l.w.Write(b); err != nil {
		l.err = fmt.Errorf("telemetry: fleet log write: %w", err)
		return
	}
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("telemetry: fleet log flush: %w", err)
	}
}

// appendFleetJSON appends snap encoded exactly as encoding/json would
// (field order, omitempty, float formatting, string escaping), without
// the reflection cost — TestFleetEncoderMatchesEncodingJSON pins the
// byte equivalence.
func appendFleetJSON(b []byte, snap *FleetSnapshot) ([]byte, error) {
	var err error
	b = append(b, `{"tick":`...)
	b = strconv.AppendInt(b, snap.Tick, 10)
	b = append(b, `,"sim_ns":`...)
	b = strconv.AppendInt(b, snap.SimNS, 10)
	if snap.Run != 0 {
		b = append(b, `,"run":`...)
		b = strconv.AppendInt(b, int64(snap.Run), 10)
	}
	b = append(b, `,"cooling_load_w":`...)
	if b, err = appendJSONFloat(b, snap.CoolingLoadW); err != nil {
		return nil, err
	}
	b = append(b, `,"total_power_w":`...)
	if b, err = appendJSONFloat(b, snap.TotalPowerW); err != nil {
		return nil, err
	}
	b = append(b, `,"servers":`...)
	if snap.Servers == nil {
		return append(b, `null}`...), nil
	}
	b = append(b, '[')
	for i, sv := range snap.Servers {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"id":`...)
		b = strconv.AppendInt(b, int64(sv.ID), 10)
		b = append(b, `,"air_temp_c":`...)
		if b, err = appendJSONFloat(b, sv.AirTempC); err != nil {
			return nil, err
		}
		b = append(b, `,"melt_frac":`...)
		if b, err = appendJSONFloat(b, sv.MeltFrac); err != nil {
			return nil, err
		}
		if sv.Group != "" {
			b = append(b, `,"group":`...)
			b = appendJSONString(b, sv.Group)
		}
		if sv.Crashed {
			b = append(b, `,"crashed":true`...)
		}
		b = append(b, '}')
	}
	return append(b, `]}`...), nil
}

// appendJSONFloat mirrors encoding/json's float64 encoding: shortest
// representation, 'f' form except for very small/large magnitudes, and
// the same exponent cleanup. Non-finite values are an error, as in
// encoding/json.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("unsupported value: %g", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	//vmtlint:allow floateq exact zero test mirrors encoding/json's format selection bit-for-bit
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// appendJSONString appends s as a JSON string. Plain ASCII (the group
// names the simulation emits) takes the fast path; anything needing
// escapes defers to encoding/json so the output stays byte-identical.
func appendJSONString(b []byte, s string) []byte {
	plain := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' ||
			c == '<' || c == '>' || c == '&' {
			plain = false
			break
		}
	}
	if plain {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	enc, err := json.Marshal(s)
	if err != nil {
		// A string never fails to marshal; keep the signature simple.
		return append(b, `""`...)
	}
	return append(b, enc...)
}

// Err returns the first write error, if any.
func (l *NDJSONFleetLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// ReadFleetLog decodes a stream in the NDJSONFleetLog format. Every
// decoded snapshot satisfies the publisher invariants: non-negative
// tick/run, servers in strictly increasing ID order. A malformed line
// aborts with an error naming the line.
func ReadFleetLog(r io.Reader) ([]*FleetSnapshot, error) {
	var snaps []*FleetSnapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		snap := new(FleetSnapshot)
		dec := json.NewDecoder(bytes.NewReader(line))
		if err := dec.Decode(snap); err != nil {
			return nil, fmt.Errorf("telemetry: fleet log line %d: %w", lineNo, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("telemetry: fleet log line %d: trailing data after snapshot", lineNo)
		}
		if err := validateFleetSnapshot(snap); err != nil {
			return nil, fmt.Errorf("telemetry: fleet log line %d: %w", lineNo, err)
		}
		snaps = append(snaps, snap)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: fleet log: %w", err)
	}
	return snaps, nil
}

func validateFleetSnapshot(snap *FleetSnapshot) error {
	if snap.Tick < 0 || snap.SimNS < 0 || snap.Run < 0 {
		return fmt.Errorf("snapshot tick %d: negative tick, time, or run", snap.Tick)
	}
	for i, sv := range snap.Servers {
		if i > 0 && sv.ID <= snap.Servers[i-1].ID {
			return fmt.Errorf("snapshot tick %d: server IDs not strictly increasing at index %d", snap.Tick, i)
		}
	}
	return nil
}
