package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestTimeSeriesWindowAggregation(t *testing.T) {
	ts := NewTimeSeries("load", 10, 4, nil)
	// Window 0: ticks 0..9, values 1..10.
	for i := 0; i < 10; i++ {
		ts.Observe(int64(i), float64(i+1))
	}
	// Crossing into window 1 seals window 0.
	ts.Observe(10, 100)
	w, ok := ts.Last()
	if !ok {
		t.Fatal("no sealed window after crossing a boundary")
	}
	if w.Index != 0 || w.StartTick != 0 {
		t.Fatalf("sealed window indexing wrong: %+v", w)
	}
	if w.Count != 10 || w.Min != 1 || w.Max != 10 || w.Sum != 55 {
		t.Fatalf("aggregates wrong: %+v", w)
	}
	if w.Mean != 5.5 {
		t.Fatalf("mean = %g, want 5.5", w.Mean)
	}
	// Nearest-rank p99 of 10 samples is the 10th value.
	if w.P99 != 10 {
		t.Fatalf("p99 = %g, want 10", w.P99)
	}
}

func TestTimeSeriesFlushSealsPartialWindow(t *testing.T) {
	ts := NewTimeSeries("load", 10, 4, nil)
	ts.Observe(3, 7)
	if _, ok := ts.Last(); ok {
		t.Fatal("window sealed before boundary or flush")
	}
	ts.Flush()
	w, ok := ts.Last()
	if !ok || w.Count != 1 || w.Min != 7 || w.Max != 7 || w.Mean != 7 {
		t.Fatalf("flush did not seal the partial window: %+v, ok=%v", w, ok)
	}
	// Double flush is a no-op.
	ts.Flush()
	if got := len(ts.Windows()); got != 1 {
		t.Fatalf("second flush created a window: %d windows", got)
	}
}

func TestTimeSeriesSealThrough(t *testing.T) {
	ts := NewTimeSeries("load", 10, 4, nil)
	for tick := int64(0); tick < 10; tick++ {
		ts.Observe(tick, float64(tick))
	}
	// Window 0 covers ticks [0,9]; tick 8 leaves it incomplete.
	ts.SealThrough(8)
	if _, ok := ts.Last(); ok {
		t.Fatal("SealThrough sealed an incomplete window")
	}
	ts.SealThrough(9)
	w, ok := ts.Last()
	if !ok || w.Index != 0 || w.Count != 10 || w.Min != 0 || w.Max != 9 {
		t.Fatalf("SealThrough(9) did not seal window 0: %+v, ok=%v", w, ok)
	}
	// The record matches what a boundary-crossing Observe would have
	// sealed, and the next Observe opens window 1 cleanly.
	ts.Observe(10, 42)
	ts.Flush()
	ws := ts.Windows()
	if len(ws) != 2 || ws[1].Index != 1 || ws[1].Count != 1 || ws[1].Min != 42 {
		t.Fatalf("post-seal observation mishandled: %+v", ws)
	}
	// Nil receiver and no-open-window cases are no-ops.
	var nilTS *TimeSeries
	nilTS.SealThrough(100)
	ts.SealThrough(100)
}

func TestStreamSealThrough(t *testing.T) {
	var recs []WindowRecord
	sink := windowSinkFunc(func(rec WindowRecord) { recs = append(recs, rec) })
	s := NewStream(StreamOptions{WindowTicks: 5, Sink: sink})
	a := s.Series("a")
	b := s.Series("b")
	for tick := int64(0); tick < 5; tick++ {
		a.Observe(tick, 1)
		b.Observe(tick, 2)
	}
	s.SealThrough(4)
	if len(recs) != 2 || recs[0].Series != "a" || recs[1].Series != "b" {
		t.Fatalf("SealThrough emitted %+v, want one window per series in name order", recs)
	}
	var nilStream *Stream
	nilStream.SealThrough(4)
}

// TestTimeSeriesBoundedMemory is the bounded-memory contract: after
// observing 10x more windows than the ring retains (and far more ticks
// than that), retained state is O(ring + reservoir), not O(ticks).
func TestTimeSeriesBoundedMemory(t *testing.T) {
	const (
		windowTicks = 10
		ringWindows = 8
		numWindows  = 10 * ringWindows
	)
	sealed := 0
	sink := windowSinkFunc(func(WindowRecord) { sealed++ })
	ts := NewTimeSeries("load", windowTicks, ringWindows, sink)
	tick := int64(0)
	for w := 0; w < numWindows; w++ {
		for i := 0; i < windowTicks; i++ {
			ts.Observe(tick, float64(tick%97))
			tick++
		}
	}
	ts.Flush()
	if sealed != numWindows {
		t.Fatalf("sink saw %d windows, want %d", sealed, numWindows)
	}
	ws := ts.Windows()
	if len(ws) != ringWindows {
		t.Fatalf("ring retains %d windows, want %d", len(ws), ringWindows)
	}
	// The retained windows are the most recent ones, oldest first.
	for i, w := range ws {
		want := int64(numWindows - ringWindows + i)
		if w.Index != want {
			t.Fatalf("ring[%d].Index = %d, want %d", i, w.Index, want)
		}
	}
	// The p99 reservoir never outgrows its cap.
	if cap(ts.samples) > 2*maxWindowSamples {
		t.Fatalf("reservoir capacity %d exceeds bound", cap(ts.samples))
	}
}

// TestTimeSeriesP99Decimation: beyond the reservoir cap the p99 comes
// from a deterministic systematic subsample — same input, same answer,
// and still within the window's [min, max].
func TestTimeSeriesP99Decimation(t *testing.T) {
	run := func() Window {
		ts := NewTimeSeries("x", 1<<20, 2, nil)
		for i := 0; i < 5000; i++ {
			ts.Observe(int64(i), float64(i)) // all in window 0
		}
		ts.Flush()
		w, _ := ts.Last()
		return w
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("decimated window not deterministic: %+v vs %+v", a, b)
	}
	if a.Count != 5000 {
		t.Fatalf("count = %d", a.Count)
	}
	if a.P99 < a.Min || a.P99 > a.Max {
		t.Fatalf("p99 %g outside [%g, %g]", a.P99, a.Min, a.Max)
	}
	// 99th percentile of 0..4999 is near 4950; the subsample keeps it
	// in the right neighborhood.
	if a.P99 < 4500 {
		t.Fatalf("p99 %g implausibly low", a.P99)
	}
}

func TestTimeSeriesNilSafety(t *testing.T) {
	var ts *TimeSeries
	ts.Observe(0, 1) // must not panic
	ts.Flush()
	if ws := ts.Windows(); ws != nil {
		t.Fatalf("nil series returned windows: %v", ws)
	}
	if _, ok := ts.Last(); ok {
		t.Fatal("nil series has a last window")
	}
	if ts.Name() != "" {
		t.Fatal("nil series has a name")
	}

	var s *Stream
	if s.Series("x") != nil {
		t.Fatal("nil stream handed out a series")
	}
	s.Flush()
	if s.Snapshot() != nil {
		t.Fatal("nil stream snapshot non-nil")
	}
	if s.ForRun(3) != nil {
		t.Fatal("nil stream ForRun non-nil")
	}
}

func TestStreamSeriesSharedConfigAndSnapshot(t *testing.T) {
	s := NewStream(StreamOptions{WindowTicks: 5, RingWindows: 2})
	a := s.Series("b_series")
	if s.Series("b_series") != a {
		t.Fatal("Series not idempotent")
	}
	s.Series("a_series").Observe(0, 1)
	a.Observe(0, 2)
	for i := int64(0); i < 12; i++ {
		s.Series("a_series").Observe(i, float64(i))
		a.Observe(i, float64(-i))
	}
	s.Flush()
	snap := s.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	// Sorted by series name, windows ascending within a series.
	for i := 1; i < len(snap); i++ {
		if snap[i].Series < snap[i-1].Series {
			t.Fatalf("snapshot not sorted by series: %q after %q", snap[i].Series, snap[i-1].Series)
		}
		if snap[i].Series == snap[i-1].Series && snap[i].Window <= snap[i-1].Window {
			t.Fatalf("windows not ascending within %q", snap[i].Series)
		}
	}
}

func TestStreamForRunTagsRecords(t *testing.T) {
	var mu sync.Mutex
	var recs []WindowRecord
	sink := windowSinkFunc(func(r WindowRecord) { mu.Lock(); recs = append(recs, r); mu.Unlock() })
	base := NewStream(StreamOptions{WindowTicks: 2, RingWindows: 2, Sink: sink})
	forked := base.ForRun(7)
	forked.Series("x").Observe(0, 1)
	forked.Series("x").Observe(2, 1) // seals window 0
	forked.Flush()
	base.Series("x").Observe(0, 1)
	base.Flush()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Run != 7 || recs[1].Run != 7 {
		t.Fatalf("forked stream records not tagged with run 7: %+v", recs)
	}
	if recs[2].Run != 0 {
		t.Fatalf("base stream record tagged: %+v", recs[2])
	}
}

func TestValidateWindowRecord(t *testing.T) {
	good := WindowRecord{Series: "s", Window: 1, StartTick: 10, Count: 3, Min: 1, Max: 5, Mean: 3, P99: 5, Sum: 9}
	if err := validateWindowRecord(good); err != nil {
		t.Fatalf("good record rejected: %v", err)
	}
	bad := []WindowRecord{
		{},
		{Series: "s", Run: -1},
		{Series: "s", Window: -1},
		{Series: "s", StartTick: -4},
		{Series: "s", Count: 1, Min: 2, Max: 1},
		{Series: "s", Count: 1, Min: 1, Max: 2, Mean: 3},
		{Series: "s", Count: 1, Min: 1, Max: 2, Mean: 1.5, P99: math.Nextafter(2, 3)},
	}
	for i, rec := range bad {
		if err := validateWindowRecord(rec); err == nil {
			t.Errorf("bad record %d accepted: %+v", i, rec)
		}
	}
}

// windowSinkFunc adapts a function to WindowSink.
type windowSinkFunc func(WindowRecord)

func (f windowSinkFunc) EmitWindow(rec WindowRecord) { f(rec) }
