package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderRecordsInOrder(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 3; i++ {
		rec.Emit(SpanEvent{Name: "physics", At: time.Duration(i) * time.Minute})
	}
	if rec.Len() != 3 {
		t.Fatalf("len = %d, want 3", rec.Len())
	}
	evs := rec.Events()
	for i, ev := range evs {
		if ev.At != time.Duration(i)*time.Minute {
			t.Fatalf("event %d at %v", i, ev.At)
		}
	}
	// Events returns a copy: mutating it must not affect the recorder.
	evs[0].Name = "mutated"
	if rec.Events()[0].Name != "physics" {
		t.Fatal("Events should return a copy")
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset should clear events")
	}
}

func TestTracerFunc(t *testing.T) {
	var got SpanEvent
	tr := TracerFunc(func(ev SpanEvent) { got = ev })
	tr.Emit(SpanEvent{Name: "sample"})
	if got.Name != "sample" {
		t.Fatalf("got %+v", got)
	}
}

func TestWithRunTagsEvents(t *testing.T) {
	rec := NewRecorder()
	tagged := WithRun(rec, 7)
	tagged.Emit(SpanEvent{Name: "physics"})
	if got := rec.Events()[0].Run; got != 7 {
		t.Fatalf("run = %d, want 7", got)
	}
	if WithRun(nil, 1) != nil {
		t.Fatal("WithRun(nil) should be nil")
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	rec := NewRecorder()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			tr := WithRun(rec, run)
			for i := 0; i < per; i++ {
				tr.Emit(SpanEvent{Name: "schedule", At: time.Duration(i)})
			}
		}(w)
	}
	wg.Wait()
	if rec.Len() != workers*per {
		t.Fatalf("len = %d, want %d", rec.Len(), workers*per)
	}
	perRun := map[int]int{}
	for _, ev := range rec.Events() {
		perRun[ev.Run]++
	}
	for w := 0; w < workers; w++ {
		if perRun[w] != per {
			t.Fatalf("run %d recorded %d events, want %d", w, perRun[w], per)
		}
	}
}
