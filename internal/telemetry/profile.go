package telemetry

import (
	"runtime/metrics"
	"time"
)

// Per-band span profiling: wall time and allocation deltas for each
// engine band (physics, fault, schedule, sample), with the profiler's
// own cost accounted separately so the band numbers stay honest. The
// profiler reads the runtime's cumulative heap-allocation counter
// (/gc/heap/allocs:bytes via runtime/metrics — no stop-the-world)
// around each span; the delta is that band's allocation bill.
//
// Attribution caveat: the allocation counter is process-global, so
// alloc deltas are exact for a solo run and an over-count when
// concurrent runs (RunMany) or background goroutines allocate during
// the span. Wall time has the same property; both are still the right
// signal for "which band got expensive".

// allocMetric is the cumulative bytes allocated by the process.
const allocMetric = "/gc/heap/allocs:bytes"

// BandProfiler hands out per-band instruments backed by a Registry:
// band_wall_ns_<band>, band_alloc_bytes_<band>, band_spans_<band>,
// plus the shared profiler_self_ns self-overhead counter. A nil
// profiler hands out nil bands, which record nothing.
type BandProfiler struct {
	reg  *Registry
	self *Counter
}

// NewBandProfiler returns a profiler registering its instruments in r.
// A nil registry yields a nil profiler (profiling disabled).
func NewBandProfiler(r *Registry) *BandProfiler {
	if r == nil {
		return nil
	}
	return &BandProfiler{reg: r, self: r.Counter("profiler_self_ns")}
}

// Band is one profiled engine band. Bracket the band's work with
// Begin/End.
type Band struct {
	self    *Counter
	wall    *Counter
	alloc   *Counter
	spans   *Counter
	sample  [1]metrics.Sample
	started bool
	t0      time.Time
	a0      uint64
}

// Band returns the named band's instruments, creating the counters on
// first use. Each Band value is owned by one goroutine (the engine's);
// the counters it updates are shared and atomic.
func (p *BandProfiler) Band(name string) *Band {
	if p == nil {
		return nil
	}
	b := &Band{
		self:  p.self,
		wall:  p.reg.Counter("band_wall_ns_" + name),
		alloc: p.reg.Counter("band_alloc_bytes_" + name),
		spans: p.reg.Counter("band_spans_" + name),
	}
	b.sample[0].Name = allocMetric
	return b
}

// Begin starts a span: it records the profiler's own entry cost into
// profiler_self_ns and arms the wall/alloc cursors. Nil-safe.
func (b *Band) Begin() {
	if b == nil {
		return
	}
	entry := time.Now()
	metrics.Read(b.sample[:])
	b.a0 = b.sample[0].Value.Uint64()
	b.started = true
	// The wall cursor is armed last so the band is not billed for the
	// profiler's own metric read; the gap is self-overhead.
	b.t0 = time.Now()
	b.self.Add(uint64(b.t0.Sub(entry)))
}

// End closes the span, adds the wall/alloc deltas to the band's
// counters, and returns them so a tracer can attach the allocation
// delta to its span event. Nil-safe; End without Begin records
// nothing.
func (b *Band) End() (wallNS, allocBytes uint64) {
	if b == nil || !b.started {
		return 0, 0
	}
	b.started = false
	// Wall delta first — everything after this line is self-overhead.
	wallNS = uint64(time.Since(b.t0))
	selfStart := time.Now()
	metrics.Read(b.sample[:])
	if a1 := b.sample[0].Value.Uint64(); a1 > b.a0 {
		allocBytes = a1 - b.a0
	}
	b.wall.Add(wallNS)
	b.alloc.Add(allocBytes)
	b.spans.Inc()
	b.self.Add(uint64(time.Since(selfStart)))
	return wallNS, allocBytes
}
