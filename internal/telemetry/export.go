package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSONL writes the recorded events one JSON object per line — the
// stream-friendly structured log form (jq-able, appendable).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// understood by chrome://tracing and Perfetto). Timestamps and
// durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object container variant of the
// trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded events as Chrome trace_event
// JSON, loadable directly in chrome://tracing or https://ui.perfetto.dev.
// Each batch run becomes a process (pid = run+1) and each phase name a
// named thread within it; spans are laid out on the wall-clock
// timeline with the simulation time attached as an argument.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()

	// Deterministic thread numbering: phase names sorted per run.
	type key struct {
		run  int
		name string
	}
	names := map[key]bool{}
	for _, ev := range events {
		names[key{ev.Run, ev.Name}] = true
	}
	keys := make([]key, 0, len(names))
	for k := range names { //vmtlint:allow maporder keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].run != keys[j].run {
			return keys[i].run < keys[j].run
		}
		return keys[i].name < keys[j].name
	})
	tids := make(map[key]int, len(keys))
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	nextTid := map[int]int{}
	for _, k := range keys {
		nextTid[k.run]++
		tids[k] = nextTid[k.run]
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "process_name", Ph: "M", Pid: k.run + 1,
				Args: map[string]any{"name": fmt.Sprintf("vmt run %d", k.run)},
			},
			chromeEvent{
				Name: "thread_name", Ph: "M", Pid: k.run + 1, Tid: tids[k],
				Args: map[string]any{"name": k.name},
			})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  "vmt",
			Ph:   "X",
			Ts:   float64(ev.WallStart) / float64(time.Microsecond),
			Dur:  float64(ev.Wall) / float64(time.Microsecond),
			Pid:  ev.Run + 1,
			Tid:  tids[key{ev.Run, ev.Name}],
			Args: map[string]any{"sim_time_s": ev.At.Seconds()},
		}
		for k, v := range ev.Args {
			ce.Args[k] = v
		}
		out.TraceEvents = append(out.TraceEvents, ce)
		// Band profiling attaches an allocation delta; surface it as a
		// Chrome counter event ("C") so Perfetto draws a per-phase
		// allocation track alongside the spans.
		if ev.AllocBytes > 0 {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "alloc_bytes",
				Cat:  "vmt",
				Ph:   "C",
				Ts:   float64(ev.WallStart) / float64(time.Microsecond),
				Pid:  ev.Run + 1,
				Args: map[string]any{ev.Name: float64(ev.AllocBytes)},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSONL decodes a stream in the WriteJSONL format back into span
// events: one JSON object per line, blank lines ignored. It is the
// inverse of WriteJSONL — a round trip reproduces the event slice
// exactly. Any malformed line aborts with an error naming the line.
func ReadJSONL(r io.Reader) ([]SpanEvent, error) {
	var events []SpanEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev SpanEvent
		dec := json.NewDecoder(bytes.NewReader(line))
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", lineNo, err)
		}
		// Trailing garbage after the object ("{}x") must not pass.
		if dec.More() {
			return nil, fmt.Errorf("telemetry: jsonl line %d: trailing data after event", lineNo)
		}
		if err := validateSpanEvent(ev); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", lineNo, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: jsonl: %w", err)
	}
	return events, nil
}

// validateSpanEvent rejects events no Tracer could have emitted, so
// downstream consumers of a decoded stream can rely on the same
// invariants the writers guarantee.
func validateSpanEvent(ev SpanEvent) error {
	if ev.Name == "" {
		return fmt.Errorf("event missing name")
	}
	if ev.Run < 0 {
		return fmt.Errorf("event %q: negative run %d", ev.Name, ev.Run)
	}
	if ev.Wall < 0 || ev.WallStart < 0 {
		return fmt.Errorf("event %q: negative wall time", ev.Name)
	}
	return nil
}

// ReadSnapshot decodes a metrics snapshot in the Registry.WriteJSON
// format and validates it: names must be present and unique per
// section, and histogram bucket counts must be cumulative with the
// final +Inf (null le) bucket equal to the total count. It is the
// inverse of WriteJSON for any snapshot a Registry can produce.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: snapshot: %w", err)
	}
	seen := map[string]bool{}
	uniq := func(section, name string) error {
		if name == "" {
			return fmt.Errorf("telemetry: snapshot: %s with empty name", section)
		}
		k := section + "\x00" + name
		if seen[k] {
			return fmt.Errorf("telemetry: snapshot: duplicate %s %q", section, name)
		}
		seen[k] = true
		return nil
	}
	for _, c := range snap.Counters {
		if err := uniq("counter", c.Name); err != nil {
			return Snapshot{}, err
		}
	}
	for _, g := range snap.Gauges {
		if err := uniq("gauge", g.Name); err != nil {
			return Snapshot{}, err
		}
	}
	for _, h := range snap.Histograms {
		if err := uniq("histogram", h.Name); err != nil {
			return Snapshot{}, err
		}
		if len(h.Buckets) == 0 {
			if h.Count != 0 {
				return Snapshot{}, fmt.Errorf("telemetry: snapshot: histogram %q: count %d with no buckets", h.Name, h.Count)
			}
			continue
		}
		var prevLe float64
		var total uint64
		for i, b := range h.Buckets {
			last := i == len(h.Buckets)-1
			if last != (b.Le == nil) {
				return Snapshot{}, fmt.Errorf("telemetry: snapshot: histogram %q: +Inf bucket must be last and only last", h.Name)
			}
			if b.Le != nil {
				if i > 0 && *b.Le <= prevLe {
					return Snapshot{}, fmt.Errorf("telemetry: snapshot: histogram %q: bucket bounds not increasing", h.Name)
				}
				prevLe = *b.Le
			}
			total += b.Count
		}
		if total != h.Count {
			return Snapshot{}, fmt.Errorf("telemetry: snapshot: histogram %q: bucket counts sum to %d, want %d", h.Name, total, h.Count)
		}
	}
	return snap, nil
}
