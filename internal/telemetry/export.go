package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteJSONL writes the recorded events one JSON object per line — the
// stream-friendly structured log form (jq-able, appendable).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// understood by chrome://tracing and Perfetto). Timestamps and
// durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object container variant of the
// trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the recorded events as Chrome trace_event
// JSON, loadable directly in chrome://tracing or https://ui.perfetto.dev.
// Each batch run becomes a process (pid = run+1) and each phase name a
// named thread within it; spans are laid out on the wall-clock
// timeline with the simulation time attached as an argument.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()

	// Deterministic thread numbering: phase names sorted per run.
	type key struct {
		run  int
		name string
	}
	names := map[key]bool{}
	for _, ev := range events {
		names[key{ev.Run, ev.Name}] = true
	}
	keys := make([]key, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].run != keys[j].run {
			return keys[i].run < keys[j].run
		}
		return keys[i].name < keys[j].name
	})
	tids := make(map[key]int, len(keys))
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	nextTid := map[int]int{}
	for _, k := range keys {
		nextTid[k.run]++
		tids[k] = nextTid[k.run]
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "process_name", Ph: "M", Pid: k.run + 1,
				Args: map[string]any{"name": fmt.Sprintf("vmt run %d", k.run)},
			},
			chromeEvent{
				Name: "thread_name", Ph: "M", Pid: k.run + 1, Tid: tids[k],
				Args: map[string]any{"name": k.name},
			})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  "vmt",
			Ph:   "X",
			Ts:   float64(ev.WallStart) / float64(time.Microsecond),
			Dur:  float64(ev.Wall) / float64(time.Microsecond),
			Pid:  ev.Run + 1,
			Tid:  tids[key{ev.Run, ev.Name}],
			Args: map[string]any{"sim_time_s": ev.At.Seconds()},
		}
		for k, v := range ev.Args {
			ce.Args[k] = v
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
