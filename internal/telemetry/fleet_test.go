package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFleetPublisherLiveView(t *testing.T) {
	var p *FleetPublisher
	p.Publish(&FleetSnapshot{Tick: 1}) // nil publisher: no-op
	if p.Load() != nil {
		t.Fatal("nil publisher loaded a snapshot")
	}

	p = NewFleetPublisher(nil)
	if p.Load() != nil {
		t.Fatal("fresh publisher has a snapshot")
	}
	p.Publish(nil) // ignored
	if p.Load() != nil {
		t.Fatal("nil snapshot published")
	}
	a := &FleetSnapshot{Tick: 1, SimNS: 60e9}
	b := &FleetSnapshot{Tick: 2, SimNS: 120e9}
	p.Publish(a)
	p.Publish(b)
	if got := p.Load(); got != b {
		t.Fatalf("Load = %+v, want latest", got)
	}
}

// TestFleetPublisherScrapeSafety hammers Load from readers while a
// writer publishes — the mid-run scrape the /fleet endpoint performs.
// Run under -race (check.sh does) this proves the claim.
func TestFleetPublisherScrapeSafety(t *testing.T) {
	p := NewFleetPublisher(nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap := p.Load(); snap != nil && snap.Tick < 0 {
					t.Error("torn snapshot")
					return
				}
			}
		}()
	}
	for i := int64(1); i <= 1000; i++ {
		p.Publish(&FleetSnapshot{Tick: i, Servers: []ServerState{{ID: 0, AirTempC: 20}}})
	}
	close(stop)
	wg.Wait()
}

func TestFleetLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewNDJSONFleetLog(&buf)
	p := NewFleetPublisher(log)
	for i := int64(1); i <= 3; i++ {
		p.Publish(&FleetSnapshot{
			Tick:         i,
			SimNS:        i * 60e9,
			CoolingLoadW: 1000 + float64(i),
			TotalPowerW:  5000,
			Servers: []ServerState{
				{ID: 0, AirTempC: 25.5, MeltFrac: 0.25, Group: "hot"},
				{ID: 1, AirTempC: 22, Group: "cold", Crashed: i == 2},
			},
		})
	}
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	snaps, err := ReadFleetLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("decoded %d snapshots, want 3", len(snaps))
	}
	if snaps[1].Tick != 2 || !snaps[1].Servers[1].Crashed || snaps[1].Servers[0].Group != "hot" {
		t.Fatalf("snapshot 1 mangled: %+v", snaps[1])
	}
	if snaps[0].Servers[0].MeltFrac != 0.25 {
		t.Fatalf("melt frac mangled: %+v", snaps[0].Servers[0])
	}
}

func TestReadFleetLogRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      "{x}\n",
		"trailing":      `{"tick":1,"sim_ns":1,"cooling_load_w":0,"total_power_w":0} junk` + "\n",
		"negative tick": `{"tick":-1,"sim_ns":0,"cooling_load_w":0,"total_power_w":0}` + "\n",
		"unsorted ids": `{"tick":1,"sim_ns":1,"cooling_load_w":0,"total_power_w":0,` +
			`"servers":[{"id":1,"air_temp_c":1,"melt_frac":0},{"id":0,"air_temp_c":1,"melt_frac":0}]}` + "\n",
	}
	for name, input := range cases {
		if _, err := ReadFleetLog(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

// TestFleetEncoderMatchesEncodingJSON pins the hand-rolled fleet
// encoder to encoding/json byte-for-byte across the shapes and float
// regimes the simulation produces — plus the edge cases it does not,
// so the formats can never drift apart.
func TestFleetEncoderMatchesEncodingJSON(t *testing.T) {
	snaps := []*FleetSnapshot{
		{Tick: 1, SimNS: 60e9, CoolingLoadW: 29.47977274821823, TotalPowerW: 1951.65625,
			Servers: []ServerState{
				{ID: 0, AirTempC: 22.37546580513657, MeltFrac: 0, Group: "hot"},
				{ID: 1, AirTempC: -3.5, MeltFrac: 0.9999999999999999, Group: "cold", Crashed: true},
				{ID: 2, AirTempC: 0, MeltFrac: 1},
			}},
		// Run omitempty, empty and nil server slices.
		{Tick: 7, SimNS: 0, Run: 3, CoolingLoadW: 0, TotalPowerW: 0, Servers: []ServerState{}},
		{Tick: 0, SimNS: 1, CoolingLoadW: 1, TotalPowerW: 2},
		// Float regimes where encoding/json switches to 'e' form, on
		// both sides of the exponent-cleanup rule.
		{Tick: 2, SimNS: 2, CoolingLoadW: 1e-7, TotalPowerW: 1e21,
			Servers: []ServerState{{ID: 0, AirTempC: 2.5e-9, MeltFrac: 3e22},
				{ID: 9, AirTempC: -1e-300, MeltFrac: 5e-324}}},
		// A group string that needs escaping falls back to encoding/json.
		{Tick: 3, SimNS: 3, CoolingLoadW: 1, TotalPowerW: 1,
			Servers: []ServerState{{ID: 0, AirTempC: 1, MeltFrac: 0, Group: `we"ird<&>\n`}}},
	}
	for i, snap := range snaps {
		want, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendFleetJSON(nil, snap)
		if err != nil {
			t.Fatalf("snap %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("snap %d encoding diverged:\n got  %s\n want %s", i, got, want)
		}
	}
	// Non-finite floats are rejected, as encoding/json rejects them.
	if _, err := appendFleetJSON(nil, &FleetSnapshot{CoolingLoadW: math.NaN()}); err == nil {
		t.Error("NaN not rejected")
	}
	if _, err := appendFleetJSON(nil, &FleetSnapshot{Servers: []ServerState{{AirTempC: math.Inf(1)}}}); err == nil {
		t.Error("+Inf not rejected")
	}
}
