package telemetry

import (
	"bufio"
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim_events_dispatched").Add(42)
	reg.Gauge("queue depth/hwm").Set(7.5) // name needs sanitizing
	h := reg.Histogram("pcm_melt_frac", 0.5, 1)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sim_events_dispatched counter\nsim_events_dispatched 42\n",
		"# TYPE queue_depth_hwm gauge\nqueue_depth_hwm 7.5\n",
		"# TYPE pcm_melt_frac histogram\n",
		`pcm_melt_frac_bucket{le="0.5"} 1`,
		`pcm_melt_frac_bucket{le="1"} 2`,
		`pcm_melt_frac_bucket{le="+Inf"} 3`,
		"pcm_melt_frac_sum 3\n",
		"pcm_melt_frac_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// promLine matches the exposition grammar this encoder may emit: a
// TYPE comment or a sample line with an optional single le label.
var promLine = regexp.MustCompile(
	`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"\\\n]+"\}|_sum|_count)? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN))$`)

// checkPrometheusInvariants asserts every line parses and histogram
// bucket series are cumulative, ending at the count.
func checkPrometheusInvariants(t *testing.T, out string) {
	t.Helper()
	lastBucket := map[string]uint64{}
	counts := map[string]uint64{}
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !promLine.MatchString(line) {
			t.Fatalf("line violates exposition grammar: %q", line)
		}
		if i := strings.Index(line, "_bucket{le="); i >= 0 {
			name := line[:i]
			v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if v < lastBucket[name] {
				t.Fatalf("bucket series for %s not cumulative: %q after %d", name, line, lastBucket[name])
			}
			lastBucket[name] = v
		}
		if i := strings.Index(line, "_count "); i >= 0 && !strings.HasPrefix(line, "# TYPE") {
			name := line[:i]
			v, err := strconv.ParseUint(line[i+len("_count "):], 10, 64)
			if err == nil {
				counts[name] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name, count := range counts {
		if last, ok := lastBucket[name]; ok && last != count {
			t.Fatalf("histogram %s: +Inf bucket %d != count %d", name, last, count)
		}
	}
}

func TestWritePrometheusInvariants(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(1)
	reg.Gauge("inf").Set(math.Inf(1))
	reg.Gauge("neg").Set(math.Inf(-1))
	reg.Gauge("nan").Set(math.NaN())
	reg.Gauge("0bad name!").Set(-2.5e-9)
	h := reg.Histogram("lat", 1, 10, 100)
	for i := 0; i < 250; i++ {
		h.Observe(float64(i))
	}
	reg.Histogram("empty", 5) // declared, never observed
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	checkPrometheusInvariants(t, buf.String())
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ok_name":    "ok_name",
		"with space": "with_space",
		"0leading":   "_leading",
		"x0":         "x0",
		"":           "_",
		"a:b":        "a:b",
		"héat":       "h_at",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
