// Package telemetry is the simulator's observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms), a run tracer
// producing structured span events, and exporters for text, JSON,
// JSONL, and Chrome trace_event formats.
//
// The package is stdlib-only and built around one invariant: telemetry
// observes, it never perturbs. Instruments are updated with atomic
// operations, instrument handles are nil-safe (updating a nil counter
// is a no-op), and nothing in this package feeds back into simulation
// state — an instrumented run produces bit-identical results to an
// uninstrumented one.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil Counter ignores updates, so call sites can hold
// optional instruments without branching.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (zero for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64. A nil Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (e.g. peak queue depth).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add increments the gauge by v (atomically, CAS loop).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations ≤ bounds[i]; one extra bucket catches the overflow.
// A nil Histogram ignores observations.
type Histogram struct {
	bounds []float64 // sorted upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // atomic float accumulator
}

// newHistogram builds a histogram over the given sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (zero for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations (zero for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Registry is a named collection of instruments. Instruments are
// created on first use and shared thereafter; all methods are safe for
// concurrent use. A nil *Registry is valid and hands out nil
// instruments, so an uninstrumented component pays only nil checks.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds if needed. Later calls reuse the existing
// histogram and ignore bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// LinearBounds returns n+1 evenly spaced bucket bounds from lo to hi,
// a convenience for histograms over a known range (e.g. melt fraction
// in [0,1]).
func LinearBounds(lo, hi float64, n int) []float64 {
	if n < 1 || hi <= lo {
		return []float64{lo}
	}
	bounds := make([]float64, n+1)
	for i := range bounds {
		bounds[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return bounds
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketPoint is one histogram bucket: observations ≤ UpperBound.
// The overflow bucket reports +Inf, serialized as null in JSON (JSON
// has no infinity), so Le uses a pointer.
type BucketPoint struct {
	Le    *float64 `json:"le"` // nil ⇒ +Inf
	Count uint64   `json:"count"`
}

// HistogramPoint is one histogram in a snapshot.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketPoint `json:"buckets"`
}

// Snapshot is a consistent, name-sorted view of every instrument —
// deterministic output for rendering and tests. (Individual values are
// read atomically; the set is not a cross-instrument transaction.)
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// Snapshot captures the current values of all instruments, sorted by
// name. Safe to call while updates continue. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters { //vmtlint:allow maporder sections are sorted by name below
		snap.Counters = append(snap.Counters, CounterPoint{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges { //vmtlint:allow maporder sections are sorted by name below
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms { //vmtlint:allow maporder sections are sorted by name below
		hp := HistogramPoint{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			bp := BucketPoint{Count: h.counts[i].Load()}
			if i < len(h.bounds) {
				le := h.bounds[i]
				bp.Le = &le
			}
			hp.Buckets = append(hp.Buckets, bp)
		}
		snap.Histograms = append(snap.Histograms, hp)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WriteText renders the snapshot as aligned name/value lines, one
// instrument per line (histograms expand to one line per bucket).
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "%s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %g\n", h.Name, h.Count, h.Name, h.Sum); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if b.Le != nil {
				le = fmt.Sprintf("%g", *b.Le)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
