package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// NDJSONSink streams sealed windows as newline-delimited JSON, one
// WindowRecord per line, flushing after every window — so a long run's
// telemetry is on disk (and tail-able) while the run is still going,
// and the process holds O(1) buffered bytes instead of O(run) events.
// Safe for concurrent use; encode errors are latched and reported by
// Err/Close rather than panicking mid-run.
type NDJSONSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewNDJSONSink returns a sink writing to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: bufio.NewWriter(w)}
}

// EmitWindow implements WindowSink: encode one line and flush.
func (s *NDJSONSink) EmitWindow(rec WindowRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = fmt.Errorf("telemetry: ndjson encode: %w", err)
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = fmt.Errorf("telemetry: ndjson write: %w", err)
		return
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("telemetry: ndjson flush: %w", err)
	}
}

// Err returns the first write error, if any.
func (s *NDJSONSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadWindows decodes a stream in the NDJSONSink format: one
// WindowRecord JSON object per line, blank lines ignored. It is the
// inverse of the sink for any stream a Stream can produce; every
// decoded record satisfies the sealed-window invariants (non-empty
// series, min ≤ mean ≤ max, p99 within range). A malformed line aborts
// with an error naming the line.
func ReadWindows(r io.Reader) ([]WindowRecord, error) {
	var recs []WindowRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec WindowRecord
		dec := json.NewDecoder(bytes.NewReader(line))
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("telemetry: ndjson line %d: %w", lineNo, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("telemetry: ndjson line %d: trailing data after record", lineNo)
		}
		if err := validateWindowRecord(rec); err != nil {
			return nil, fmt.Errorf("telemetry: ndjson line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: ndjson: %w", err)
	}
	return recs, nil
}
