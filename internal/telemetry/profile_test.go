package telemetry

import (
	"testing"
)

func TestBandProfilerNilSafety(t *testing.T) {
	if p := NewBandProfiler(nil); p != nil {
		t.Fatal("profiler over a nil registry should be nil")
	}
	var p *BandProfiler
	b := p.Band("physics")
	if b != nil {
		t.Fatal("nil profiler handed out a band")
	}
	b.Begin() // all no-ops
	if w, a := b.End(); w != 0 || a != 0 {
		t.Fatalf("nil band returned deltas: %d, %d", w, a)
	}
}

func TestBandProfilerRecordsSpans(t *testing.T) {
	reg := NewRegistry()
	p := NewBandProfiler(reg)
	b := p.Band("physics")

	var sink []byte
	for i := 0; i < 10; i++ {
		b.Begin()
		// Do measurable work: allocate ~64 KiB.
		sink = make([]byte, 64<<10)
		wall, _ := b.End()
		if wall == 0 {
			t.Fatal("zero wall delta for non-empty span")
		}
	}
	_ = sink

	if got := reg.Counter("band_spans_physics").Value(); got != 10 {
		t.Fatalf("band_spans_physics = %d, want 10", got)
	}
	if reg.Counter("band_wall_ns_physics").Value() == 0 {
		t.Fatal("no wall time recorded")
	}
	// 10 spans each allocating 64 KiB must show at least that much.
	if got := reg.Counter("band_alloc_bytes_physics").Value(); got < 10*64<<10 {
		t.Fatalf("band_alloc_bytes_physics = %d, want >= %d", got, 10*64<<10)
	}
	// Self-overhead was accounted and is separate from the band bill.
	if reg.Counter("profiler_self_ns").Value() == 0 {
		t.Fatal("no self-overhead recorded")
	}
}

func TestBandEndWithoutBegin(t *testing.T) {
	reg := NewRegistry()
	b := NewBandProfiler(reg).Band("fault")
	if w, a := b.End(); w != 0 || a != 0 {
		t.Fatalf("End without Begin returned deltas: %d, %d", w, a)
	}
	if reg.Counter("band_spans_fault").Value() != 0 {
		t.Fatal("span counted without Begin")
	}
	// Begin/End/End: the second End is a no-op.
	b.Begin()
	b.End()
	b.End()
	if got := reg.Counter("band_spans_fault").Value(); got != 1 {
		t.Fatalf("band_spans_fault = %d, want 1", got)
	}
}
