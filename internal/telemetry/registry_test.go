package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Fatal("same name should return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.SetMax(2) // below current: no change
	if got := g.Value(); got != 3.5 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax = %v, want 7", got)
	}
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Add = %v, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("melt", 0.25, 0.5, 0.75)
	for _, v := range []float64{0.1, 0.25, 0.3, 0.9, 1.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.1+0.25+0.3+0.9+1.5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	counts := []uint64{}
	for _, b := range snap.Histograms[0].Buckets {
		counts = append(counts, b.Count)
	}
	// ≤0.25: {0.1, 0.25}; ≤0.5: {0.3}; ≤0.75: {}; overflow: {0.9, 1.5}
	want := []uint64{2, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, want)
		}
	}
	last := snap.Histograms[0].Buckets[len(counts)-1]
	if last.Le != nil {
		t.Fatal("overflow bucket should have nil (infinite) bound")
	}
	// Re-asking with different bounds returns the existing histogram.
	if r.Histogram("melt", 0.5) != h {
		t.Fatal("same name should return the same histogram")
	}
}

func TestLinearBounds(t *testing.T) {
	b := LinearBounds(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	if got := LinearBounds(2, 1, 4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("degenerate bounds = %v", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 1)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should stay zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
		r.Gauge(name).Set(1)
		r.Histogram(name, 1).Observe(0)
	}
	snap := r.Snapshot()
	wantOrder := []string{"alpha", "mid", "zeta"}
	for i, want := range wantOrder {
		if snap.Counters[i].Name != want || snap.Gauges[i].Name != want ||
			snap.Histograms[i].Name != want {
			t.Fatalf("snapshot not name-sorted: %+v", snap)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("hwm").SetMax(float64(i))
				r.Histogram("h", 0.5).Observe(float64(i%2) * 0.9)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Fatalf("gauge sum = %v, want %d", got, workers*per)
	}
	if got := r.Gauge("hwm").Value(); got != per-1 {
		t.Fatalf("hwm = %v, want %d", got, per-1)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events").Add(42)
	r.Gauge("queue_hwm").Set(7)
	r.Histogram("melt", 0.5, 1).Observe(0.4)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sim_events 42\n",
		"queue_hwm 7\n",
		"melt_count 1\n",
		`melt_bucket{le="0.5"} 1`,
		`melt_bucket{le="+Inf"} 0`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 42 {
		t.Fatalf("decoded snapshot = %+v", snap)
	}
}
