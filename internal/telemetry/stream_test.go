package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// errWriter fails after n successful writes.
type errWriter struct {
	n   int
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

func TestNDJSONSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	s := NewStream(StreamOptions{WindowTicks: 3, RingWindows: 2, Sink: sink})
	series := s.Series("cooling_load_w")
	for i := int64(0); i < 10; i++ {
		series.Observe(i, float64(100+i))
	}
	s.Flush()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	// 10 ticks at 3 per window = 3 sealed + 1 flushed partial.
	lines := strings.Count(buf.String(), "\n")
	if lines != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", lines, buf.String())
	}
	recs, err := ReadWindows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("decoded %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Series != "cooling_load_w" || rec.Window != int64(i) {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
	// Window 1 covers ticks 3..5 → values 103..105.
	if recs[1].Min != 103 || recs[1].Max != 105 || recs[1].Count != 3 || recs[1].Mean != 104 {
		t.Fatalf("window 1 aggregates: %+v", recs[1])
	}
}

func TestNDJSONSinkFlushesPerWindow(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	ts := NewTimeSeries("x", 2, 2, sink)
	ts.Observe(0, 1)
	ts.Observe(1, 2)
	if buf.Len() != 0 {
		t.Fatal("bytes written before the window sealed")
	}
	ts.Observe(2, 3) // seals window 0
	if buf.Len() == 0 {
		t.Fatal("sealed window not flushed to the writer")
	}
}

func TestNDJSONSinkLatchesWriteError(t *testing.T) {
	boom := errors.New("disk full")
	sink := NewNDJSONSink(&errWriter{n: 0, err: boom})
	sink.EmitWindow(WindowRecord{Series: "x", Count: 1})
	if err := sink.Err(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	// Later emissions are no-ops, the first error sticks.
	sink.EmitWindow(WindowRecord{Series: "y", Count: 1})
	if err := sink.Err(); !errors.Is(err, boom) {
		t.Fatalf("err after second emit = %v", err)
	}
}

func TestReadWindowsRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        "{nope}\n",
		"trailing":        `{"series":"s"} extra` + "\n",
		"missing series":  `{"window":1}` + "\n",
		"negative run":    `{"series":"s","run":-2}` + "\n",
		"min above max":   `{"series":"s","count":1,"min":2,"max":1,"mean":1.5,"p99":1.5}` + "\n",
		"mean outside":    `{"series":"s","count":1,"min":1,"max":2,"mean":9,"p99":1.5}` + "\n",
		"p99 outside":     `{"series":"s","count":1,"min":1,"max":2,"mean":1.5,"p99":7}` + "\n",
		"negative window": `{"series":"s","window":-1}` + "\n",
	}
	for name, input := range cases {
		if _, err := ReadWindows(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
	// Blank lines are fine; empty input decodes to nothing.
	recs, err := ReadWindows(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank input: %v, %d records", err, len(recs))
	}
}
