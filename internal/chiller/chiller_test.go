package chiller

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/stats"
)

func load(vals ...float64) *stats.Series {
	s := stats.NewSeries(time.Hour)
	for _, v := range vals {
		s.Append(v)
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := PaperPlant(1e6).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Plant{
		{CapacityW: 0, NominalCOP: 4},
		{CapacityW: 1e6, NominalCOP: 0},
		{CapacityW: 1e6, NominalCOP: 4, PartLoadPenalty: -1},
		{CapacityW: 1e6, NominalCOP: 4, PartLoadPenalty: 1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCOPBehavior(t *testing.T) {
	p := PaperPlant(1e6)
	// Full load runs at nominal COP.
	if got := p.COPAt(1e6); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("full-load COP = %v", got)
	}
	// Part load is derated.
	half := p.COPAt(5e5)
	if half >= 4.5 {
		t.Fatalf("part-load COP %v should be below nominal", half)
	}
	// Lower load, worse COP (monotone derating).
	if q := p.COPAt(1e5); q >= half {
		t.Fatalf("10%% load COP %v should be below 50%% load %v", q, half)
	}
	// Zero/negative loads are safe.
	if p.COPAt(0) != 4.5 || p.COPAt(-5) != 4.5 {
		t.Fatal("idle COP should be nominal")
	}
	// No penalty → constant COP.
	flat := Plant{CapacityW: 1e6, NominalCOP: 4, PartLoadPenalty: 0}
	if flat.COPAt(1e5) != 4 {
		t.Fatal("zero penalty should give constant COP")
	}
}

func TestElectricalPower(t *testing.T) {
	p := Plant{CapacityW: 1e6, NominalCOP: 5, PartLoadPenalty: 0}
	if got := p.ElectricalPowerW(1e6); math.Abs(got-2e5) > 1e-9 {
		t.Fatalf("power = %v, want 200kW", got)
	}
	if p.ElectricalPowerW(0) != 0 {
		t.Fatal("idle plant should draw nothing")
	}
}

func TestEvaluateEnergyAndViolations(t *testing.T) {
	p := Plant{CapacityW: 1000, NominalCOP: 4, PartLoadPenalty: 0}
	// 3 hours: 400 W, 800 W, 1200 W (violation).
	ev, err := p.Evaluate(load(400, 800, 1200))
	if err != nil {
		t.Fatal(err)
	}
	wantKWh := (400 + 800 + 1200) / 4.0 / 1000
	if math.Abs(ev.EnergyKWh-wantKWh) > 1e-12 {
		t.Fatalf("energy = %v, want %v", ev.EnergyKWh, wantKWh)
	}
	if ev.Violations != 1 || ev.ViolationTime != time.Hour {
		t.Fatalf("violations = %d / %v", ev.Violations, ev.ViolationTime)
	}
	if math.Abs(ev.WorstOverloadPct-20) > 1e-12 {
		t.Fatalf("worst overload = %v, want 20%%", ev.WorstOverloadPct)
	}
	if math.Abs(ev.UtilizationPct-80) > 1e-12 {
		t.Fatalf("utilization = %v, want 80%%", ev.UtilizationPct)
	}
	if math.Abs(ev.PeakElectricalW-300) > 1e-12 {
		t.Fatalf("peak electrical = %v, want 300", ev.PeakElectricalW)
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := PaperPlant(1000)
	if _, err := p.Evaluate(load()); err == nil {
		t.Fatal("empty series should fail")
	}
	bad := Plant{}
	if _, err := bad.Evaluate(load(1)); err == nil {
		t.Fatal("invalid plant should fail")
	}
}

func TestSizeForPeak(t *testing.T) {
	p, err := SizeForPeak(load(500, 900, 700), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.CapacityW-990) > 1e-9 {
		t.Fatalf("capacity = %v, want 990", p.CapacityW)
	}
	ev, err := p.Evaluate(load(500, 900, 700))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Violations != 0 {
		t.Fatal("sized plant should not violate its own series")
	}
	if _, err := SizeForPeak(load(), 0); err == nil {
		t.Fatal("empty series should fail")
	}
	if _, err := SizeForPeak(load(1), -0.1); err == nil {
		t.Fatal("negative margin should fail")
	}
	if _, err := SizeForPeak(load(0, 0), 0); err == nil {
		t.Fatal("zero peak should fail")
	}
}

// Property: electrical power is monotone in heat load, non-negative,
// and at least the nominal-COP draw (derating only ever costs energy).
func TestPowerMonotoneProperty(t *testing.T) {
	p := PaperPlant(1e6)
	f := func(a, b uint32) bool {
		qa := float64(a % 2_000_000)
		qb := float64(b % 2_000_000)
		if qa > qb {
			qa, qb = qb, qa
		}
		ea, eb := p.ElectricalPowerW(qa), p.ElectricalPowerW(qb)
		return ea <= eb+1e-9 && ea >= 0 && ea >= qa/p.NominalCOP-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
