// Package chiller models the datacenter cooling plant that the VMT
// paper's economics implicitly size: a heat-removal system with a
// finite capacity and a part-load efficiency curve. It turns cluster
// cooling-load series into plant electrical energy, detects capacity
// violations (the failure mode oversubscription risks), and sizes
// plants for a given load.
//
// The efficiency model is a standard water-cooled chiller abstraction:
// a nominal coefficient of performance (COP — watts of heat removed
// per electrical watt) derated at part load, since pumps/fans/controls
// impose a floor:
//
//	P_elec(q) = q / COP(q/cap),  COP(x) = nominal × x / (x + k(1−x))
//
// with k the part-load penalty (k=0: constant COP).
package chiller

import (
	"fmt"
	"time"

	"vmt/internal/stats"
)

// Plant describes one cooling plant.
type Plant struct {
	// CapacityW is the maximum heat removal rate.
	CapacityW float64
	// NominalCOP is the full-load coefficient of performance
	// (typical water-cooled plants: 4–6).
	NominalCOP float64
	// PartLoadPenalty is k in the derating curve; 0 disables it.
	PartLoadPenalty float64
}

// PaperPlant returns a plant sized at capacityW with a COP of 4.5 and
// a modest part-load penalty, representative of the chilled-water
// systems the paper's $/kW figures describe.
func PaperPlant(capacityW float64) Plant {
	return Plant{CapacityW: capacityW, NominalCOP: 4.5, PartLoadPenalty: 0.15}
}

// Validate reports whether the plant is usable.
func (p Plant) Validate() error {
	switch {
	case p.CapacityW <= 0:
		return fmt.Errorf("chiller: capacity must be positive")
	case p.NominalCOP <= 0:
		return fmt.Errorf("chiller: COP must be positive")
	case p.PartLoadPenalty < 0 || p.PartLoadPenalty >= 1:
		return fmt.Errorf("chiller: part-load penalty %v out of [0,1)", p.PartLoadPenalty)
	}
	return nil
}

// COPAt returns the effective COP at heat load q (W). Below-zero loads
// are treated as zero; loads beyond capacity run at nominal COP (the
// plant cannot remove them — see Evaluate's violation accounting).
func (p Plant) COPAt(q float64) float64 {
	if q <= 0 {
		return p.NominalCOP
	}
	x := q / p.CapacityW
	if x >= 1 {
		return p.NominalCOP
	}
	if p.PartLoadPenalty == 0 { //vmtlint:allow floateq zero-value "unset" sentinel, exact by construction
		return p.NominalCOP
	}
	return p.NominalCOP * x / (x + p.PartLoadPenalty*(1-x))
}

// ElectricalPowerW returns the plant draw while removing heat at q W.
func (p Plant) ElectricalPowerW(q float64) float64 {
	if q <= 0 {
		return 0
	}
	return q / p.COPAt(q)
}

// Evaluation summarizes a plant against a heat-load series.
type Evaluation struct {
	// EnergyKWh is the plant's electrical energy over the series.
	EnergyKWh float64
	// PeakElectricalW is the plant's maximum draw.
	PeakElectricalW float64
	// Violations counts samples whose heat load exceeded capacity —
	// intervals where the room heats up instead.
	Violations int
	// ViolationTime is the total duration over capacity.
	ViolationTime time.Duration
	// WorstOverloadPct is the largest excursion over capacity, as a
	// percentage of capacity (0 when no violation).
	WorstOverloadPct float64
	// UtilizationPct is mean load over capacity.
	UtilizationPct float64
}

// Evaluate runs the plant against a cooling-load series (watts).
func (p Plant) Evaluate(load *stats.Series) (Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Evaluation{}, err
	}
	if load.Len() == 0 {
		return Evaluation{}, fmt.Errorf("chiller: empty load series")
	}
	var ev Evaluation
	stepH := load.Step.Hours()
	for _, q := range load.Values {
		e := p.ElectricalPowerW(q)
		ev.EnergyKWh += e * stepH / 1000
		if e > ev.PeakElectricalW {
			ev.PeakElectricalW = e
		}
		if q > p.CapacityW {
			ev.Violations++
			ev.ViolationTime += load.Step
			if over := (q - p.CapacityW) / p.CapacityW * 100; over > ev.WorstOverloadPct {
				ev.WorstOverloadPct = over
			}
		}
	}
	ev.UtilizationPct = load.Mean() / p.CapacityW * 100
	return ev, nil
}

// SizeForPeak returns a plant whose capacity covers the series' peak
// with the given fractional margin (e.g. 0.05 for 5% headroom).
func SizeForPeak(load *stats.Series, marginFrac float64) (Plant, error) {
	if marginFrac < 0 {
		return Plant{}, fmt.Errorf("chiller: negative margin")
	}
	peak, _, err := load.Peak()
	if err != nil {
		return Plant{}, fmt.Errorf("chiller: %w", err)
	}
	if peak <= 0 {
		return Plant{}, fmt.Errorf("chiller: non-positive peak %v", peak)
	}
	return PaperPlant(peak * (1 + marginFrac)), nil
}
