package cluster

import (
	"sort"

	"vmt/internal/workload"
)

// registry interns workloads into dense indices shared by every server
// in a cluster. Placement scans compare per-workload job counts across
// hundreds of servers per decision; keying those counts by the
// Workload struct would hash it once per server per scan, which
// profiling shows dominating whole-cluster runs. With the registry a
// scan resolves the index once and reads plain slice elements.
// The one-entry memo short-circuits the map hash for the common case —
// a scheduler placing or evicting a run of jobs of the same workload
// resolves the same index many times in a row. Like the rest of the
// scheduling state it is single-threaded: only the scheduler band
// touches the registry (the parallel physics phase never does).
type registry struct {
	index map[workload.Workload]int
	list  []workload.Workload
	// byName holds registry indices ordered by workload name, giving
	// scans a deterministic name-sorted iteration without building and
	// sorting a fresh slice per call. Rebuilt on intern, which is rare
	// after warmup (the workload set is fixed per run).
	byName []int

	memoW   workload.Workload
	memoI   int
	hasMemo bool
}

func newRegistry() *registry {
	return &registry{index: make(map[workload.Workload]int)}
}

// intern returns the workload's index, assigning one on first use.
func (r *registry) intern(w workload.Workload) int {
	if r.hasMemo && r.memoW == w { //vmtlint:allow floateq interning memo; must match map-key equality bit-for-bit
		return r.memoI
	}
	i, ok := r.index[w]
	if !ok {
		i = len(r.list)
		r.index[w] = i
		r.list = append(r.list, w)
		r.byName = append(r.byName, i)
		sort.Slice(r.byName, func(a, b int) bool {
			return r.list[r.byName[a]].Name < r.list[r.byName[b]].Name
		})
	}
	r.memoW, r.memoI, r.hasMemo = w, i, true
	return i
}

// lookup returns the index without assigning.
func (r *registry) lookup(w workload.Workload) (int, bool) {
	if r.hasMemo && r.memoW == w { //vmtlint:allow floateq interning memo; must match map-key equality bit-for-bit
		return r.memoI, true
	}
	i, ok := r.index[w]
	if ok {
		r.memoW, r.memoI, r.hasMemo = w, i, true
	}
	return i, ok
}
