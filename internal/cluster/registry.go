package cluster

import "vmt/internal/workload"

// registry interns workloads into dense indices shared by every server
// in a cluster. Placement scans compare per-workload job counts across
// hundreds of servers per decision; keying those counts by the
// Workload struct would hash it once per server per scan, which
// profiling shows dominating whole-cluster runs. With the registry a
// scan resolves the index once and reads plain slice elements.
type registry struct {
	index map[workload.Workload]int
	list  []workload.Workload
}

func newRegistry() *registry {
	return &registry{index: make(map[workload.Workload]int)}
}

// intern returns the workload's index, assigning one on first use.
func (r *registry) intern(w workload.Workload) int {
	if i, ok := r.index[w]; ok {
		return i
	}
	i := len(r.list)
	r.index[w] = i
	r.list = append(r.list, w)
	return i
}

// lookup returns the index without assigning.
func (r *registry) lookup(w workload.Workload) (int, bool) {
	i, ok := r.index[w]
	return i, ok
}
