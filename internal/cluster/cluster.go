package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"vmt/internal/pcm"
	"vmt/internal/stats"
	"vmt/internal/thermal"
	"vmt/internal/workload"
)

// Config describes a homogeneous cluster (the paper schedules at the
// cluster level within homogeneous clusters; the scale-out study uses
// 1,000 servers, parameter sweeps 100).
type Config struct {
	// NumServers is the cluster size.
	NumServers int
	// Server is the per-server hardware/thermal specification.
	Server thermal.ServerSpec
	// Material is the deployed PCM.
	Material pcm.Material
	// InletTempC is the mean server inlet temperature.
	InletTempC float64
	// InletStdevC adds per-server normally distributed inlet
	// variation (Figures 19–20); zero for a uniform room.
	InletStdevC float64
	// Seed drives the inlet variation draw.
	Seed uint64
	// PhysicsWorkers bounds the goroutines advancing per-server
	// physics inside one Step. Servers couple only through the
	// scheduler, never through physics, and the post-step aggregation
	// is a sequential reduction in server-ID order — so results are
	// bit-identical for every worker count. Zero picks an automatic
	// value (parallel only for large clusters); negative is invalid.
	PhysicsWorkers int
}

// PaperCluster returns the scale-out configuration: n paper servers
// with commercial paraffin at a 22 °C inlet.
func PaperCluster(n int) Config {
	return Config{
		NumServers: n,
		Server:     thermal.PaperServer(),
		Material:   pcm.CommercialParaffin(),
		InletTempC: 22,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumServers <= 0 {
		return fmt.Errorf("cluster: need a positive server count, got %d", c.NumServers)
	}
	if c.InletStdevC < 0 {
		return fmt.Errorf("cluster: negative inlet stdev")
	}
	if c.PhysicsWorkers < 0 {
		return fmt.Errorf("cluster: negative physics worker count %d", c.PhysicsWorkers)
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	return c.Material.Validate()
}

// Cluster is a collection of servers stepped in lockstep. The hot
// thermal state lives in a struct-of-arrays thermal.Fleet — parallel
// slices indexed by server ID — so one Step is a cache-friendly sweep
// over contiguous ranges instead of a pointer chase through per-server
// node structs; Server keeps the job bookkeeping and delegates its
// thermal accessors into the store.
type Cluster struct {
	cfg     Config
	servers []*Server
	fleet   *thermal.Fleet
	// ests is the dense estimator column: servers[i].est points at
	// ests[i], so the per-tick estimator pass walks contiguous memory
	// in step with the fleet's air-temperature slice instead of chasing
	// per-server heap pointers.
	ests []pcm.Estimator
	reg  *registry
	// workers is the resolved physics worker count (≥1; 1 = serial).
	workers int
	// Per-server scratch reused across Steps so the steady-state
	// physics path allocates nothing. stepPow carries each server's
	// draw into the fleet kernel; airBuf/meltBuf back the Sample
	// snapshots; chunkIdx/chunkErr carry each worker chunk's first
	// failure to the sequential reduction.
	stepPow  []float64
	airBuf   []float64
	meltBuf  []float64
	chunkIdx []int
	chunkErr []error
	// failedCount tracks crashed servers (fault injection) so the
	// schedulers' alive-prefix sizing can skip the scan when zero.
	failedCount int
}

// Automatic physics parallelism: below the threshold a goroutine
// handoff costs more than the physics; above it, workers are sized so
// each keeps a meaningful slab of servers.
const (
	autoParallelMinServers = 256
	autoServersPerWorker   = 64
	autoMaxPhysicsWorkers  = 8
)

func resolveWorkers(cfg Config) int {
	w := cfg.PhysicsWorkers
	if w == 0 {
		if cfg.NumServers < autoParallelMinServers {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
		if max := cfg.NumServers / autoServersPerWorker; w > max {
			w = max
		}
		if w > autoMaxPhysicsWorkers {
			w = autoMaxPhysicsWorkers
		}
	}
	if w > cfg.NumServers {
		w = cfg.NumServers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// New builds a cluster per the configuration. With InletStdevC > 0,
// each server's inlet is drawn once from N(InletTempC, InletStdevC²)
// using the configured seed.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	reg := newRegistry()
	fleet, err := thermal.NewFleet(cfg.NumServers)
	if err != nil {
		return nil, err
	}
	servers := make([]*Server, cfg.NumServers)
	ests := make([]pcm.Estimator, cfg.NumServers)
	for i := range servers {
		inlet := cfg.InletTempC
		if cfg.InletStdevC > 0 {
			inlet = rng.Normal(cfg.InletTempC, cfg.InletStdevC)
		}
		s, err := newServer(i, cfg.Server, cfg.Material, inlet, reg, fleet, &ests[i])
		if err != nil {
			return nil, err
		}
		servers[i] = s
	}
	n := cfg.NumServers
	workers := resolveWorkers(cfg)
	return &Cluster{
		cfg:      cfg,
		servers:  servers,
		fleet:    fleet,
		ests:     ests,
		reg:      reg,
		workers:  workers,
		stepPow:  make([]float64, n),
		airBuf:   make([]float64, n),
		meltBuf:  make([]float64, n),
		chunkIdx: make([]int, 0, workers),
		chunkErr: make([]error, 0, workers),
	}, nil
}

// Fleet exposes the cluster's struct-of-arrays thermal store (tests,
// telemetry snapshots, benchmarks). The fleet is owned by the cluster;
// callers must not step it directly between cluster Steps.
func (c *Cluster) Fleet() *thermal.Fleet { return c.fleet }

// PhysicsWorkers returns the resolved per-Step physics worker count.
func (c *Cluster) PhysicsWorkers() int { return c.workers }

// SetPhysicsWorkers overrides the physics worker count (minimum 1,
// capped at the server count). Results are bit-identical for any
// value; the knob only trades goroutines for wall time, and exists so
// determinism tests can pin specific counts.
func (c *Cluster) SetPhysicsWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.servers) {
		n = len(c.servers)
	}
	c.workers = n
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Len returns the number of servers.
//
//vmt:hotpath
func (c *Cluster) Len() int { return len(c.servers) }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Servers returns the server slice (shared; do not reorder).
//
//vmt:hotpath
func (c *Cluster) Servers() []*Server { return c.servers }

// MarkFailed crashes server i: it stops drawing power and offering
// capacity until MarkRepaired. Idempotent.
func (c *Cluster) MarkFailed(i int) {
	s := c.servers[i]
	if !s.failed {
		s.failed = true
		c.failedCount++
	}
}

// MarkRepaired brings server i back. Idempotent.
func (c *Cluster) MarkRepaired(i int) {
	s := c.servers[i]
	if s.failed {
		s.failed = false
		c.failedCount--
	}
}

// FailedServers returns how many servers are currently crashed.
func (c *Cluster) FailedServers() int { return c.failedCount }

// TotalCores returns the cluster-wide core count.
func (c *Cluster) TotalCores() int {
	return len(c.servers) * c.cfg.Server.Cores()
}

// BusyCores returns the cluster-wide occupied core count.
func (c *Cluster) BusyCores() int {
	var n int
	for _, s := range c.servers {
		n += s.busyCores
	}
	return n
}

// WorkloadIndex returns the registry index for w (assigning one if w
// is new to the cluster). Schedulers resolve the index once per scan
// and use Server.JobsAt for hash-free count reads.
//
//vmt:hotpath
func (c *Cluster) WorkloadIndex(w workload.Workload) int {
	return c.reg.intern(w) //vmtlint:allow hotpath interning miss is once per workload name; steady-state scans hit the memo
}

// JobCount returns the cluster-wide job count for workload w.
func (c *Cluster) JobCount(w workload.Workload) int {
	i, ok := c.reg.lookup(w)
	if !ok {
		return 0
	}
	var n int
	for _, s := range c.servers {
		n += s.JobsAt(i)
	}
	return n
}

// Sample is one cluster-wide observation after a Step.
type Sample struct {
	// TotalPowerW is the aggregate electrical draw.
	TotalPowerW float64
	// CoolingLoadW is the aggregate heat ejected to the room — what
	// the cooling system must remove right now.
	CoolingLoadW float64
	// WaxFlowW is the aggregate heat flow into wax (negative while
	// stored heat is being released).
	WaxFlowW float64
	// MeanAirTempC and MeanMeltFrac summarize the fleet.
	MeanAirTempC float64
	MeanMeltFrac float64
	// MaxCPUTempC is the fleet's hottest estimated die temperature,
	// and ThrottlingServers counts servers over the CPU limit — the
	// constraint VMT's concentrated placement must not break.
	MaxCPUTempC       float64
	ThrottlingServers int
	// WaxEnergyJ is the cumulative energy parked in wax since the run
	// started (the sum of every server's wax ledger, in ID order).
	WaxEnergyJ float64
	// SettledServers counts servers whose physics step replayed a
	// memoized steady-state transition — the fleet's settled fraction,
	// an observability signal for how much of the cluster is coasting.
	SettledServers int
	// AirTempC and MeltFrac are per-server snapshots (ground truth),
	// indexed by server ID — the raw material of the paper's heat
	// maps. The backing arrays are owned by the cluster and reused by
	// the next Step; callers that retain a snapshot across steps must
	// copy them.
	AirTempC []float64
	MeltFrac []float64
}

// Step advances every server by dt and returns the aggregate sample.
//
// The per-server physics is embarrassingly parallel (servers couple
// only through the scheduler between steps), so it fans out across
// PhysicsWorkers goroutines writing disjoint per-server slots; the
// aggregation below is a single sequential reduction in server-ID
// order, which keeps every float sum in a fixed order and the result
// bit-identical for any worker count.
func (c *Cluster) Step(dt time.Duration) (Sample, error) {
	// Power is a pure function of job occupancy, fixed for the whole
	// step; gather it once so the fleet kernel reads a flat slice.
	for i, s := range c.servers {
		c.stepPow[i] = s.PowerW()
	}
	if err := c.stepPhysics(dt); err != nil {
		return Sample{}, err
	}
	v := c.fleet.View()
	sample := Sample{AirTempC: c.airBuf, MeltFrac: c.meltBuf}
	// Hoisted spec scalars; keep in sync with ServerSpec.CPUTempC and
	// ServerSpec.WouldThrottle (inlining them here avoids copying the
	// full spec struct per server per tick).
	idleW := c.cfg.Server.IdlePowerW
	cpus := float64(c.cfg.Server.CPUs)
	rCPU := c.cfg.Server.CPUThermalResistanceKPerW
	limitC := c.cfg.Server.CPULimitC
	var sumAir, sumMelt float64
	for i := range c.servers {
		air := v.AirTempC[i]
		melt := v.MeltFrac[i]
		pw := c.stepPow[i]
		sample.TotalPowerW += pw
		sample.CoolingLoadW += v.CoolingLoadW[i]
		sample.WaxFlowW += v.WaxFlowW[i]
		c.airBuf[i] = air
		c.meltBuf[i] = melt
		sumAir += air
		sumMelt += melt
		dynamic := pw - idleW
		if dynamic < 0 {
			dynamic = 0
		}
		cpu := air + dynamic/cpus*rCPU
		if cpu > sample.MaxCPUTempC {
			sample.MaxCPUTempC = cpu
		}
		if limitC > 0 && cpu > limitC {
			sample.ThrottlingServers++
		}
		sample.WaxEnergyJ += v.WaxStoredJ[i]
		if v.Settled[i] {
			sample.SettledServers++
		}
	}
	// Same ID-order addition sequence as stats.Mean over the snapshot
	// arrays, folded into the reduction pass above.
	if n := float64(len(c.servers)); n > 0 {
		sample.MeanAirTempC = sumAir / n
		sample.MeanMeltFrac = sumMelt / n
	}
	return sample, nil
}

// physBlock is the cache-blocking granularity of the parallel physics
// path: each worker walks its chunk in blocks of this many servers,
// running the physics step and then the estimator pass over the same
// block while its air-temperature column is still cache-resident. The
// serial path deliberately stays the plain two-pass loop over the
// plain kernel — it is the readable reference implementation, in the
// same spirit as the scalar Node oracle; the blocked path uses the
// substep-major thermal.Fleet.StepRangeVec kernel (bit-identical by
// construction and by the worker-count property tests).
const physBlock = 2048

// stepPhysics advances the fleet store by dt and feeds each server's
// estimator the post-step air temperature — serially, or fanned out
// over disjoint contiguous ID ranges. Per-server outcomes land in the
// fleet's slices either way, and the per-server arithmetic is
// range-independent, so results are bit-identical at any worker count.
// On error, the lowest-ID failure is reported; servers before it have
// committed their step, servers after it in the same chunk have not
// (earlier blocks of a failed chunk have committed both passes).
func (c *Cluster) stepPhysics(dt time.Duration) error {
	n := len(c.servers)
	if c.workers <= 1 {
		if idx, err := c.fleet.StepRange(0, n, c.stepPow, dt); err != nil {
			return fmt.Errorf("cluster: server %d: %w", idx, err)
		}
		c.updateEstimators(0, n, dt)
		return nil
	}
	chunk := (n + c.workers - 1) / c.workers
	c.chunkIdx = c.chunkIdx[:0]
	c.chunkErr = c.chunkErr[:0]
	for lo := 0; lo < n; lo += chunk {
		c.chunkIdx = append(c.chunkIdx, n)
		c.chunkErr = append(c.chunkErr, nil)
	}
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for b := lo; b < hi; b += physBlock {
				e := b + physBlock
				if e > hi {
					e = hi
				}
				idx, err := c.fleet.StepRangeVec(b, e, c.stepPow, dt)
				if err != nil {
					c.chunkIdx[w], c.chunkErr[w] = idx, err
					return
				}
				c.updateEstimators(b, e, dt)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Report the lowest-ID failure, matching the ID-order error
	// precedence of the old per-server reduction.
	first, firstIdx := error(nil), n
	for w, err := range c.chunkErr {
		if err != nil && c.chunkIdx[w] < firstIdx {
			first, firstIdx = err, c.chunkIdx[w]
		}
	}
	if first != nil {
		return fmt.Errorf("cluster: server %d: %w", firstIdx, first)
	}
	return nil
}

// updateEstimators feeds servers [lo,hi) their post-step air
// temperatures. Estimators are per-server independent, so running all
// of a chunk's updates after its physics (rather than interleaved
// per-server) changes no values.
//
//vmt:hotpath
func (c *Cluster) updateEstimators(lo, hi int, dt time.Duration) {
	v := c.fleet.View()
	// Walk the dense estimator column directly (servers[i].est aliases
	// ests[i]) so the pass streams contiguous estimator state alongside
	// the air-temperature slice.
	for i := lo; i < hi; i++ {
		c.ests[i].Update(v.AirTempC[i], dt)
	}
}
