package cluster

import (
	"fmt"
	"time"

	"vmt/internal/pcm"
	"vmt/internal/stats"
	"vmt/internal/thermal"
	"vmt/internal/workload"
)

// Config describes a homogeneous cluster (the paper schedules at the
// cluster level within homogeneous clusters; the scale-out study uses
// 1,000 servers, parameter sweeps 100).
type Config struct {
	// NumServers is the cluster size.
	NumServers int
	// Server is the per-server hardware/thermal specification.
	Server thermal.ServerSpec
	// Material is the deployed PCM.
	Material pcm.Material
	// InletTempC is the mean server inlet temperature.
	InletTempC float64
	// InletStdevC adds per-server normally distributed inlet
	// variation (Figures 19–20); zero for a uniform room.
	InletStdevC float64
	// Seed drives the inlet variation draw.
	Seed uint64
}

// PaperCluster returns the scale-out configuration: n paper servers
// with commercial paraffin at a 22 °C inlet.
func PaperCluster(n int) Config {
	return Config{
		NumServers: n,
		Server:     thermal.PaperServer(),
		Material:   pcm.CommercialParaffin(),
		InletTempC: 22,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumServers <= 0 {
		return fmt.Errorf("cluster: need a positive server count, got %d", c.NumServers)
	}
	if c.InletStdevC < 0 {
		return fmt.Errorf("cluster: negative inlet stdev")
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	return c.Material.Validate()
}

// Cluster is a collection of servers stepped in lockstep.
type Cluster struct {
	cfg     Config
	servers []*Server
	reg     *registry
}

// New builds a cluster per the configuration. With InletStdevC > 0,
// each server's inlet is drawn once from N(InletTempC, InletStdevC²)
// using the configured seed.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	reg := newRegistry()
	servers := make([]*Server, cfg.NumServers)
	for i := range servers {
		inlet := cfg.InletTempC
		if cfg.InletStdevC > 0 {
			inlet = rng.Normal(cfg.InletTempC, cfg.InletStdevC)
		}
		s, err := newServer(i, cfg.Server, cfg.Material, inlet, reg)
		if err != nil {
			return nil, err
		}
		servers[i] = s
	}
	return &Cluster{cfg: cfg, servers: servers, reg: reg}, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Len returns the number of servers.
func (c *Cluster) Len() int { return len(c.servers) }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Servers returns the server slice (shared; do not reorder).
func (c *Cluster) Servers() []*Server { return c.servers }

// TotalCores returns the cluster-wide core count.
func (c *Cluster) TotalCores() int {
	return len(c.servers) * c.cfg.Server.Cores()
}

// BusyCores returns the cluster-wide occupied core count.
func (c *Cluster) BusyCores() int {
	var n int
	for _, s := range c.servers {
		n += s.busyCores
	}
	return n
}

// WorkloadIndex returns the registry index for w (assigning one if w
// is new to the cluster). Schedulers resolve the index once per scan
// and use Server.JobsAt for hash-free count reads.
func (c *Cluster) WorkloadIndex(w workload.Workload) int {
	return c.reg.intern(w)
}

// JobCount returns the cluster-wide job count for workload w.
func (c *Cluster) JobCount(w workload.Workload) int {
	i, ok := c.reg.lookup(w)
	if !ok {
		return 0
	}
	var n int
	for _, s := range c.servers {
		n += s.JobsAt(i)
	}
	return n
}

// Sample is one cluster-wide observation after a Step.
type Sample struct {
	// TotalPowerW is the aggregate electrical draw.
	TotalPowerW float64
	// CoolingLoadW is the aggregate heat ejected to the room — what
	// the cooling system must remove right now.
	CoolingLoadW float64
	// WaxFlowW is the aggregate heat flow into wax (negative while
	// stored heat is being released).
	WaxFlowW float64
	// MeanAirTempC and MeanMeltFrac summarize the fleet.
	MeanAirTempC float64
	MeanMeltFrac float64
	// MaxCPUTempC is the fleet's hottest estimated die temperature,
	// and ThrottlingServers counts servers over the CPU limit — the
	// constraint VMT's concentrated placement must not break.
	MaxCPUTempC       float64
	ThrottlingServers int
	// AirTempC and MeltFrac are per-server snapshots (ground truth),
	// indexed by server ID — the raw material of the paper's heat
	// maps.
	AirTempC []float64
	MeltFrac []float64
}

// Step advances every server by dt and returns the aggregate sample.
func (c *Cluster) Step(dt time.Duration) (Sample, error) {
	sample := Sample{
		AirTempC: make([]float64, len(c.servers)),
		MeltFrac: make([]float64, len(c.servers)),
	}
	for i, s := range c.servers {
		res, err := s.step(dt)
		if err != nil {
			return Sample{}, fmt.Errorf("cluster: server %d: %w", i, err)
		}
		sample.TotalPowerW += s.PowerW()
		sample.CoolingLoadW += res.CoolingLoadW
		sample.WaxFlowW += res.WaxFlowW
		sample.AirTempC[i] = res.AirTempC
		sample.MeltFrac[i] = res.MeltFrac
		if cpu := c.cfg.Server.CPUTempC(s.PowerW(), res.AirTempC); cpu > sample.MaxCPUTempC {
			sample.MaxCPUTempC = cpu
		}
		if c.cfg.Server.WouldThrottle(s.PowerW(), res.AirTempC) {
			sample.ThrottlingServers++
		}
	}
	sample.MeanAirTempC = stats.Mean(sample.AirTempC)
	sample.MeanMeltFrac = stats.Mean(sample.MeltFrac)
	return sample, nil
}
