package cluster

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/stats"
	"vmt/internal/workload"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(PaperCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := PaperCluster(10).Validate(); err != nil {
		t.Fatalf("PaperCluster invalid: %v", err)
	}
	bad := PaperCluster(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero servers should fail")
	}
	bad = PaperCluster(10)
	bad.InletStdevC = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative stdev should fail")
	}
	bad = PaperCluster(10)
	bad.Server.CPUs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad server spec should fail")
	}
	bad = PaperCluster(10)
	bad.Material.DensityKgPerL = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad material should fail")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New should propagate validation errors")
	}
}

func TestClusterShape(t *testing.T) {
	c := newCluster(t, 10)
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.TotalCores() != 320 {
		t.Fatalf("TotalCores = %d", c.TotalCores())
	}
	for i := 0; i < 10; i++ {
		if c.Server(i).ID() != i {
			t.Fatalf("server %d has ID %d", i, c.Server(i).ID())
		}
	}
}

func TestPlaceRemoveBookkeeping(t *testing.T) {
	c := newCluster(t, 2)
	s := c.Server(0)
	if err := s.Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(workload.VirusScan); err != nil {
		t.Fatal(err)
	}
	if s.BusyCores() != 3 || s.FreeCores() != 29 {
		t.Fatalf("cores: busy=%d free=%d", s.BusyCores(), s.FreeCores())
	}
	if s.Jobs(workload.WebSearch) != 2 || s.Jobs(workload.VirusScan) != 1 {
		t.Fatal("job counts wrong")
	}
	if c.JobCount(workload.WebSearch) != 2 || c.BusyCores() != 3 {
		t.Fatal("cluster aggregates wrong")
	}
	if err := s.Remove(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	if s.Jobs(workload.WebSearch) != 1 || s.BusyCores() != 2 {
		t.Fatal("removal bookkeeping wrong")
	}
	if err := s.Remove(workload.Clustering); err == nil {
		t.Fatal("removing absent workload should fail")
	}
}

func TestPlaceFullServer(t *testing.T) {
	c := newCluster(t, 1)
	s := c.Server(0)
	for i := 0; i < 32; i++ {
		if err := s.Place(workload.VirusScan); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Place(workload.VirusScan); err == nil {
		t.Fatal("33rd job should fail")
	}
	if s.Utilization() != 1 {
		t.Fatalf("utilization = %v", s.Utilization())
	}
}

func TestPowerModel(t *testing.T) {
	c := newCluster(t, 1)
	s := c.Server(0)
	spec := c.Config().Server
	if got := s.PowerW(); got != spec.IdlePowerW {
		t.Fatalf("idle power = %v", got)
	}
	for i := 0; i < 4; i++ {
		if err := s.Place(workload.VideoEncoding); err != nil {
			t.Fatal(err)
		}
	}
	want := spec.IdlePowerW + 4*workload.VideoEncoding.PerCorePowerW()*spec.PowerScale
	if got := s.PowerW(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("power = %v, want %v", got, want)
	}
}

func TestPowerCapsAtPeak(t *testing.T) {
	cfg := PaperCluster(1)
	cfg.Server.PowerScale = 10 // force the cap
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Server(0)
	for i := 0; i < 32; i++ {
		if err := s.Place(workload.VideoEncoding); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.PowerW(); got != cfg.Server.PeakPowerW {
		t.Fatalf("power = %v, want cap %v", got, cfg.Server.PeakPowerW)
	}
}

func TestStepAggregates(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if err := c.Server(i).Place(workload.Clustering); err != nil {
				t.Fatal(err)
			}
		}
	}
	sample, err := c.Step(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	wantPower := 4 * c.Server(0).PowerW()
	if math.Abs(sample.TotalPowerW-wantPower) > 1e-9 {
		t.Fatalf("total power = %v, want %v", sample.TotalPowerW, wantPower)
	}
	if len(sample.AirTempC) != 4 || len(sample.MeltFrac) != 4 {
		t.Fatal("per-server snapshots missing")
	}
	if sample.MeanAirTempC <= 22 {
		t.Fatalf("mean air temp %v should exceed inlet", sample.MeanAirTempC)
	}
	if sample.CoolingLoadW <= 0 {
		t.Fatalf("cooling load %v", sample.CoolingLoadW)
	}
}

func TestInletVariationDeterministic(t *testing.T) {
	cfg := PaperCluster(50)
	cfg.InletStdevC = 2
	cfg.Seed = 7
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inlets []float64
	for i := 0; i < 50; i++ {
		if a.Server(i).InletTempC() != b.Server(i).InletTempC() {
			t.Fatal("same seed produced different inlets")
		}
		inlets = append(inlets, a.Server(i).InletTempC())
	}
	if sd := stats.StdDev(inlets); sd < 1 || sd > 3 {
		t.Fatalf("inlet stdev = %v, want ≈2", sd)
	}
	if mu := stats.Mean(inlets); math.Abs(mu-22) > 1 {
		t.Fatalf("inlet mean = %v, want ≈22", mu)
	}
}

func TestNoVariationUniformInlets(t *testing.T) {
	c := newCluster(t, 10)
	for i := 0; i < 10; i++ {
		if c.Server(i).InletTempC() != 22 {
			t.Fatalf("server %d inlet %v", i, c.Server(i).InletTempC())
		}
	}
}

// Property: busy cores always equal the sum of per-workload jobs and
// never exceed capacity, across random place/remove sequences.
func TestBookkeepingProperty(t *testing.T) {
	wls := workload.TableI()
	f := func(ops []uint8) bool {
		c, err := New(PaperCluster(3))
		if err != nil {
			return false
		}
		for _, op := range ops {
			s := c.Server(int(op) % 3)
			w := wls[int(op>>2)%len(wls)]
			if op%2 == 0 {
				if s.FreeCores() > 0 {
					if err := s.Place(w); err != nil {
						return false
					}
				}
			} else if s.Jobs(w) > 0 {
				if err := s.Remove(w); err != nil {
					return false
				}
			}
		}
		for i := 0; i < 3; i++ {
			s := c.Server(i)
			sum := 0
			for _, w := range wls {
				sum += s.Jobs(w)
			}
			if sum != s.BusyCores() || s.BusyCores() > s.Cores() || s.BusyCores() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The scheduler-visible melt estimate must track ground truth through
// a realistic melt cycle.
func TestReportedMeltTracksTruth(t *testing.T) {
	c := newCluster(t, 1)
	s := c.Server(0)
	for i := 0; i < 30; i++ {
		if err := s.Place(workload.VideoEncoding); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12*60; i++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(s.MeltFrac() - s.ReportedMeltFrac()); d > 0.08 {
			t.Fatalf("estimator drift %v at minute %d (truth %v, reported %v)",
				d, i, s.MeltFrac(), s.ReportedMeltFrac())
		}
	}
	if s.MeltFrac() < 0.9 {
		t.Fatalf("hot server should have melted most wax, frac=%v", s.MeltFrac())
	}
}

func TestAccessors(t *testing.T) {
	c := newCluster(t, 3)
	if len(c.Servers()) != 3 {
		t.Fatal("Servers length")
	}
	s := c.Server(1)
	if s.AirTempC() != 22 || s.WaxTempC() != 22 {
		t.Fatal("thermal accessors")
	}
	if c.Fleet() == nil || c.Fleet().Len() != 3 {
		t.Fatal("cluster should expose its fleet store")
	}
	s.SetInletTempC(25)
	if s.InletTempC() != 25 {
		t.Fatal("SetInletTempC")
	}
	i := c.WorkloadIndex(workload.WebSearch)
	if j := c.WorkloadIndex(workload.WebSearch); j != i {
		t.Fatal("index not stable")
	}
	if s.JobsAt(i) != 0 || s.JobsAt(-1) != 0 || s.JobsAt(99) != 0 {
		t.Fatal("JobsAt bounds")
	}
}

func TestWorkloadsListing(t *testing.T) {
	c := newCluster(t, 1)
	s := c.Server(0)
	if len(s.Workloads()) != 0 {
		t.Fatal("fresh server should run nothing")
	}
	if err := s.Place(workload.WebSearch); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(workload.Clustering); err != nil {
		t.Fatal(err)
	}
	ws := s.Workloads()
	if len(ws) != 2 || ws[0].Name != "Clustering" || ws[1].Name != "WebSearch" {
		t.Fatalf("Workloads = %v", ws)
	}
	if err := s.Remove(workload.Clustering); err != nil {
		t.Fatal(err)
	}
	if got := s.Workloads(); len(got) != 1 || got[0].Name != "WebSearch" {
		t.Fatalf("after removal: %v", got)
	}
}
