package cluster

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vmt/internal/workload"
)

// Random job churn must never break the physics invariants: every
// server's melt fraction stays in [0,1], and energy is conserved
// exactly — input splits into ejected heat, wax storage, and air
// sensible heat, with nothing created or lost. This pins the
// lookup-table enthalpy math and the step-transition memo to the
// first-principles balance under arbitrary load sequences.
func TestEnergyConservationRandomJobs(t *testing.T) {
	wls := workload.TableI()
	f := func(ops []uint8, seed uint64) bool {
		const n = 4
		c, err := New(PaperCluster(n))
		if err != nil {
			return false
		}
		for k, op := range ops {
			s := c.Server(int(op) % n)
			w := wls[int(op>>2)%len(wls)]
			switch {
			case op%3 == 0 && s.FreeCores() > 0:
				if err := s.Place(w); err != nil {
					t.Logf("place: %v", err)
					return false
				}
			case op%3 == 1 && s.Jobs(w) > 0:
				if err := s.Remove(w); err != nil {
					t.Logf("remove: %v", err)
					return false
				}
			}
			// Vary the step length so substep partials get exercised.
			dt := time.Minute + time.Duration(op%5)*17*time.Second
			sample, err := c.Step(dt)
			if err != nil {
				t.Logf("step %d: %v", k, err)
				return false
			}
			if sample.MeanMeltFrac < 0 || sample.MeanMeltFrac > 1 {
				t.Logf("step %d: mean melt %v out of bounds", k, sample.MeanMeltFrac)
				return false
			}
			for i := 0; i < n; i++ {
				if f := c.Server(i).MeltFrac(); f < 0 || f > 1 {
					t.Logf("step %d: server %d melt %v out of bounds", k, i, f)
					return false
				}
				if f := c.Server(i).ReportedMeltFrac(); f < 0 || f > 1 {
					t.Logf("step %d: server %d reported melt %v out of bounds", k, i, f)
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			s := c.Server(i)
			led := s.Ledger()
			residual := led.InputJ - led.EjectedJ - led.WaxStoredJ - s.AirEnergyJ()
			// Tolerance scales with turnover; each substep balances
			// exactly, so only accumulated rounding remains.
			tol := 1e-6 * (math.Abs(led.InputJ) + math.Abs(led.EjectedJ) + 1)
			if math.Abs(residual) > tol {
				t.Logf("server %d: conservation residual %v (input %v)", i, residual, led.InputJ)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The melt-fraction and enthalpy-conservation invariants hold on the
// struct-of-arrays store itself: after heavy mixed load, every View
// slot satisfies melt ∈ [0,1] and the per-server ledger balance
// input = ejected + wax-stored + air-node energy.
func TestFleetStoreInvariants(t *testing.T) {
	const n = 512
	c, err := New(PaperCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	wls := workload.TableI()
	for i := 0; i < n; i++ {
		s := c.Server(i)
		for j := 0; j < i%33; j++ {
			if err := s.Place(wls[(i+j)%len(wls)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for step := 0; step < 200; step++ {
		if _, err := c.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	f := c.Fleet()
	v := f.View()
	for i := 0; i < n; i++ {
		if v.MeltFrac[i] < 0 || v.MeltFrac[i] > 1 {
			t.Fatalf("server %d: melt %v outside [0,1]", i, v.MeltFrac[i])
		}
		led := f.Ledger(i)
		if math.Float64bits(led.WaxStoredJ) != math.Float64bits(v.WaxStoredJ[i]) {
			t.Fatalf("server %d: view ledger disagrees with accessor", i)
		}
		residual := led.InputJ - led.EjectedJ - led.WaxStoredJ - f.AirEnergyJ(i)
		tol := 1e-6 * (math.Abs(led.InputJ) + math.Abs(led.EjectedJ) + 1)
		if math.Abs(residual) > tol {
			t.Fatalf("server %d: conservation residual %v (input %v)", i, residual, led.InputJ)
		}
	}
}

// The fan-out must stay invisible at fleet scale: N=100k servers with
// PhysicsWorkers 1/2/4/8/16 — plus 7, whose uneven chunks exercise the
// boundary arithmetic — produce bit-identical per-server state. Load
// varies per server so a chunk-offset bug cannot cancel out.
func TestStepPhysicsWorkersBitIdenticalAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-server fleet comparison is a long test")
	}
	const n = 100_000
	build := func() *Cluster {
		c, err := New(PaperCluster(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s := c.Server(i)
			for j := 0; j < (i*7)%33; j++ {
				if err := s.Place(workload.VideoEncoding); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c
	}
	ref := build()
	ref.SetPhysicsWorkers(1)
	const steps = 3
	for step := 0; step < steps; step++ {
		if _, err := ref.Step(time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	refV := ref.Fleet().View()
	for _, workers := range []int{2, 4, 7, 8, 16} {
		c := build()
		c.SetPhysicsWorkers(workers)
		var sample Sample
		var err error
		for step := 0; step < steps; step++ {
			if sample, err = c.Step(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		if sample.MeanMeltFrac < 0 || sample.MeanMeltFrac > 1 {
			t.Fatalf("workers=%d: mean melt %v out of bounds", workers, sample.MeanMeltFrac)
		}
		v := c.Fleet().View()
		for i := 0; i < n; i++ {
			if math.Float64bits(refV.AirTempC[i]) != math.Float64bits(v.AirTempC[i]) ||
				math.Float64bits(refV.MeltFrac[i]) != math.Float64bits(v.MeltFrac[i]) ||
				math.Float64bits(refV.CoolingLoadW[i]) != math.Float64bits(v.CoolingLoadW[i]) ||
				math.Float64bits(refV.WaxStoredJ[i]) != math.Float64bits(v.WaxStoredJ[i]) {
				t.Fatalf("workers=%d: server %d diverged from workers=1", workers, i)
			}
		}
	}
}

// The per-tick physics fan-out must be invisible: stepping identical
// clusters with 1, 2, and 8 workers through the same job sequence
// leaves every server in a bit-identical state.
func TestStepPhysicsWorkersBitIdentical(t *testing.T) {
	wls := workload.TableI()
	build := func(workers int) *Cluster {
		cfg := PaperCluster(6)
		cfg.PhysicsWorkers = workers
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	clusters := []*Cluster{build(1), build(2), build(8)}
	for step := 0; step < 240; step++ {
		for _, c := range clusters {
			s := c.Server(step % c.Len())
			w := wls[step%len(wls)]
			if step%7 == 3 && s.Jobs(w) > 0 {
				if err := s.Remove(w); err != nil {
					t.Fatal(err)
				}
			} else if s.FreeCores() > 0 {
				if err := s.Place(w); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := c.Step(time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		ref := clusters[0]
		for ci, c := range clusters[1:] {
			for i := 0; i < ref.Len(); i++ {
				a, b := ref.Server(i), c.Server(i)
				if math.Float64bits(a.AirTempC()) != math.Float64bits(b.AirTempC()) ||
					math.Float64bits(a.MeltFrac()) != math.Float64bits(b.MeltFrac()) {
					t.Fatalf("step %d: server %d diverged with %d workers (air %v vs %v, melt %v vs %v)",
						step, i, clusters[ci+1].PhysicsWorkers(),
						a.AirTempC(), b.AirTempC(), a.MeltFrac(), b.MeltFrac())
				}
			}
		}
	}
}
