// Package cluster implements the simulated server cluster: servers
// that combine the thermal model with job occupancy and the linear
// per-core power model, plus the cluster-wide stepping and sampling
// machinery that the schedulers and experiments drive.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"vmt/internal/pcm"
	"vmt/internal/thermal"
	"vmt/internal/workload"
)

// Server is one simulated machine: thermal state plus job bookkeeping.
// Jobs are single-core tasks tagged with their workload; per Section
// IV-B they are assigned separate physical cores and never share SMT
// contexts.
type Server struct {
	id   int
	spec thermal.ServerSpec
	node *thermal.Node
	est  *pcm.Estimator

	// cores caches spec.Cores(): the scheduler scan loops read
	// FreeCores for every server they visit, and the spec is immutable
	// after construction.
	cores int

	// reg is the cluster-wide workload interner; counts[i] is the job
	// count for the workload with registry index i.
	reg       *registry
	counts    []int
	busyCores int
	// dynamicPowerW tracks the summed per-core power of placed jobs
	// incrementally. Summing counts on demand would be slow in the
	// scheduler's scan loops, and map-based summation would add floats
	// in randomized iteration order, breaking determinism.
	dynamicPowerW float64

	// failed marks a crashed server (fault injection): it draws no
	// power and offers no capacity until repaired, but its physics
	// keeps stepping so the wax refreezes realistically.
	failed bool
}

func newServer(id int, spec thermal.ServerSpec, mat pcm.Material, inletC float64, reg *registry) (*Server, error) {
	node, err := thermal.NewNode(spec, mat, inletC)
	if err != nil {
		return nil, err
	}
	est, err := pcm.NewEstimator(mat, spec.WaxVolumeL, inletC, spec.WaxConductanceWPerK)
	if err != nil {
		return nil, err
	}
	return &Server{
		id:    id,
		spec:  spec,
		node:  node,
		est:   est,
		cores: spec.Cores(),
		reg:   reg,
	}, nil
}

// ID returns the server's index within its cluster.
func (s *Server) ID() int { return s.id }

// Cores returns the server's total core count.
func (s *Server) Cores() int { return s.cores }

// BusyCores returns the number of occupied cores.
func (s *Server) BusyCores() int { return s.busyCores }

// FreeCores returns the number of unoccupied cores. A failed server
// has none, which keeps every scheduler scan loop from placing onto
// it without any policy-side special-casing.
func (s *Server) FreeCores() int {
	if s.failed {
		return 0
	}
	return s.cores - s.busyCores
}

// Failed reports whether the server is currently crashed.
func (s *Server) Failed() bool { return s.failed }

// Estimator exposes the server's melt-fraction estimator so fault
// injection can interpose a sensor and reset it on repair.
func (s *Server) Estimator() *pcm.Estimator { return s.est }

// Jobs returns the job count for workload w.
func (s *Server) Jobs(w workload.Workload) int {
	i, ok := s.reg.lookup(w)
	if !ok {
		return 0
	}
	return s.JobsAt(i)
}

// JobsAt returns the job count for the workload with the given
// registry index (see Cluster.WorkloadIndex) — the allocation- and
// hash-free fast path the schedulers' scan loops use.
func (s *Server) JobsAt(i int) int {
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// Workloads returns the workloads currently running on the server,
// sorted by name for deterministic iteration.
func (s *Server) Workloads() []workload.Workload {
	var out []workload.Workload
	for i, n := range s.counts {
		if n > 0 {
			out = append(out, s.reg.list[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LargestJob returns the workload of the given class with the most
// jobs on s, scanning in name order so ties break deterministically
// (first name wins). It is the allocation-free form of filtering
// Workloads() by class and taking the max — the shape of VMT-WA's
// per-tick rebalancing query.
func (s *Server) LargestJob(class workload.Class) (workload.Workload, bool) {
	var best workload.Workload
	bestN := 0
	found := false
	for _, i := range s.reg.byName {
		if i >= len(s.counts) {
			continue
		}
		n := s.counts[i]
		if n == 0 {
			continue
		}
		w := s.reg.list[i]
		if w.Class != class {
			continue
		}
		if !found || n > bestN {
			best, bestN, found = w, n, true
		}
	}
	return best, found
}

// Utilization returns busy cores over total cores.
func (s *Server) Utilization() float64 {
	return float64(s.busyCores) / float64(s.cores)
}

// Place assigns one job of workload w to a free core.
func (s *Server) Place(w workload.Workload) error {
	if s.FreeCores() == 0 {
		return fmt.Errorf("cluster: server %d full", s.id)
	}
	i := s.reg.intern(w)
	for len(s.counts) <= i {
		s.counts = append(s.counts, 0)
	}
	s.counts[i]++
	s.busyCores++
	s.dynamicPowerW += w.PerCorePowerW() * s.spec.PowerScale
	return nil
}

// Remove evicts one job of workload w.
func (s *Server) Remove(w workload.Workload) error {
	i, ok := s.reg.lookup(w)
	if !ok || s.JobsAt(i) == 0 {
		return fmt.Errorf("cluster: server %d has no %s job", s.id, w.Name)
	}
	s.counts[i]--
	s.busyCores--
	s.dynamicPowerW -= w.PerCorePowerW() * s.spec.PowerScale
	if s.busyCores == 0 {
		s.dynamicPowerW = 0 // shed any accumulated rounding residue
	}
	return nil
}

// PowerW returns the server's current draw under the linear per-core
// model: idle power plus each occupied core's workload-specific
// dynamic power, capped at the nameplate peak.
func (s *Server) PowerW() float64 {
	if s.failed {
		return 0
	}
	p := s.spec.IdlePowerW + s.dynamicPowerW
	if p > s.spec.PeakPowerW {
		p = s.spec.PeakPowerW
	}
	return p
}

// AirTempC returns the current air temperature at the wax.
func (s *Server) AirTempC() float64 { return s.node.AirTempC() }

// MeltFrac returns the ground-truth wax melt fraction.
func (s *Server) MeltFrac() float64 { return s.node.MeltFrac() }

// ReportedMeltFrac returns the melt fraction from the server's
// lookup-table estimator — the value the cluster scheduler actually
// sees (VMT-WA consumes this, not ground truth).
func (s *Server) ReportedMeltFrac() float64 { return s.est.MeltFrac() }

// InletTempC returns the server's inlet temperature.
func (s *Server) InletTempC() float64 { return s.node.InletTempC() }

// SetInletTempC overrides the inlet temperature (inlet variation
// studies).
func (s *Server) SetInletTempC(c float64) { s.node.SetInletTempC(c) }

// Node exposes the underlying thermal node for tests and reporting.
func (s *Server) Node() *thermal.Node { return s.node }

// step advances the server's physics by dt at its current power draw
// and feeds the estimator the same sensed air temperature.
func (s *Server) step(dt time.Duration) (thermal.StepResult, error) {
	res, err := s.node.Step(s.PowerW(), dt)
	if err != nil {
		return res, err
	}
	s.est.Update(res.AirTempC, dt)
	return res, nil
}
