// Package cluster implements the simulated server cluster: servers
// that combine the thermal model with job occupancy and the linear
// per-core power model, plus the cluster-wide stepping and sampling
// machinery that the schedulers and experiments drive.
package cluster

import (
	"fmt"
	"sort"

	"vmt/internal/pcm"
	"vmt/internal/thermal"
	"vmt/internal/workload"
)

// Server is one simulated machine: job bookkeeping plus a view onto
// its slot in the cluster's struct-of-arrays thermal store. Jobs are
// single-core tasks tagged with their workload; per Section IV-B they
// are assigned separate physical cores and never share SMT contexts.
//
// The thermal state itself lives in the cluster-owned thermal.Fleet —
// parallel slices indexed by server ID, advanced by one cache-friendly
// loop per Step — and the thermal accessors here delegate to that
// store, so the public Server API is unchanged from the per-Node
// layout it replaces.
type Server struct {
	id    int
	spec  thermal.ServerSpec
	fleet *thermal.Fleet
	est   *pcm.Estimator

	// cores caches spec.Cores(): the scheduler scan loops read
	// FreeCores for every server they visit, and the spec is immutable
	// after construction.
	cores int

	// reg is the cluster-wide workload interner; counts[i] is the job
	// count for the workload with registry index i.
	reg       *registry
	counts    []int
	busyCores int
	// dynamicPowerW tracks the summed per-core power of placed jobs
	// incrementally. Summing counts on demand would be slow in the
	// scheduler's scan loops, and map-based summation would add floats
	// in randomized iteration order, breaking determinism.
	dynamicPowerW float64

	// failed marks a crashed server (fault injection): it draws no
	// power and offers no capacity until repaired, but its physics
	// keeps stepping so the wax refreezes realistically.
	failed bool

	// filter interposes on the server's *reported* telemetry
	// (utilization, melt fraction) without touching the authoritative
	// bookkeeping — the seam Byzantine fault injection uses to make a
	// server lie to the scheduler while physics and placement stay
	// truthful.
	filter ReportFilter

	// quarantined marks a server whose reports the defense layer has
	// flagged as implausible: schedulers should ignore its telemetry
	// and fall back to trust-free placement for it.
	quarantined bool
}

// ReportFilter rewrites a server's reported telemetry before the
// scheduler sees it. Implementations must be pure functions of state
// updated only on the sequential fault band: report accessors may be
// called several times per tick by scheduler scans, so a filter that
// consumed randomness per call would break bit-identity across worker
// counts.
type ReportFilter interface {
	// FilterUtilization maps the true utilization to the reported one.
	FilterUtilization(trueUtil float64) float64
	// FilterMeltFrac maps the estimator's melt fraction to the
	// reported one.
	FilterMeltFrac(estFrac float64) float64
}

// newServer wires server id into the cluster's dense stores: its
// thermal slot in the fleet, and its estimator initialized in place in
// the cluster-owned estimator column (so the per-tick estimator pass
// streams contiguous memory).
func newServer(id int, spec thermal.ServerSpec, mat pcm.Material, inletC float64, reg *registry, fleet *thermal.Fleet, est *pcm.Estimator) (*Server, error) {
	if err := fleet.Init(id, spec, mat, inletC); err != nil {
		return nil, err
	}
	if err := pcm.InitEstimator(est, mat, spec.WaxVolumeL, inletC, spec.WaxConductanceWPerK); err != nil {
		return nil, err
	}
	return &Server{
		id:    id,
		spec:  spec,
		fleet: fleet,
		est:   est,
		cores: spec.Cores(),
		reg:   reg,
	}, nil
}

// ID returns the server's index within its cluster.
func (s *Server) ID() int { return s.id }

// Cores returns the server's total core count.
func (s *Server) Cores() int { return s.cores }

// BusyCores returns the number of occupied cores.
//
//vmt:hotpath
func (s *Server) BusyCores() int { return s.busyCores }

// FreeCores returns the number of unoccupied cores. A failed server
// has none, which keeps every scheduler scan loop from placing onto
// it without any policy-side special-casing.
//
//vmt:hotpath
func (s *Server) FreeCores() int {
	if s.failed {
		return 0
	}
	return s.cores - s.busyCores
}

// Failed reports whether the server is currently crashed.
//
//vmt:hotpath
func (s *Server) Failed() bool { return s.failed }

// Estimator exposes the server's melt-fraction estimator so fault
// injection can interpose a sensor and reset it on repair.
func (s *Server) Estimator() *pcm.Estimator { return s.est }

// Jobs returns the job count for workload w.
func (s *Server) Jobs(w workload.Workload) int {
	i, ok := s.reg.lookup(w)
	if !ok {
		return 0
	}
	return s.JobsAt(i)
}

// JobsAt returns the job count for the workload with the given
// registry index (see Cluster.WorkloadIndex) — the allocation- and
// hash-free fast path the schedulers' scan loops use.
//
//vmt:hotpath
func (s *Server) JobsAt(i int) int {
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// Workloads returns the workloads currently running on the server,
// sorted by name for deterministic iteration.
func (s *Server) Workloads() []workload.Workload {
	var out []workload.Workload
	for i, n := range s.counts {
		if n > 0 {
			out = append(out, s.reg.list[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LargestJob returns the workload of the given class with the most
// jobs on s, scanning in name order so ties break deterministically
// (first name wins). It is the allocation-free form of filtering
// Workloads() by class and taking the max — the shape of VMT-WA's
// per-tick rebalancing query.
func (s *Server) LargestJob(class workload.Class) (workload.Workload, bool) {
	var best workload.Workload
	bestN := 0
	found := false
	for _, i := range s.reg.byName {
		if i >= len(s.counts) {
			continue
		}
		n := s.counts[i]
		if n == 0 {
			continue
		}
		w := s.reg.list[i]
		if w.Class != class {
			continue
		}
		if !found || n > bestN {
			best, bestN, found = w, n, true
		}
	}
	return best, found
}

// Utilization returns busy cores over total cores.
func (s *Server) Utilization() float64 {
	return float64(s.busyCores) / float64(s.cores)
}

// Place assigns one job of workload w to a free core.
func (s *Server) Place(w workload.Workload) error {
	if s.FreeCores() == 0 {
		return fmt.Errorf("cluster: server %d full", s.id)
	}
	i := s.reg.intern(w)
	for len(s.counts) <= i {
		s.counts = append(s.counts, 0)
	}
	s.counts[i]++
	s.busyCores++
	s.dynamicPowerW += w.PerCorePowerW() * s.spec.PowerScale
	return nil
}

// Remove evicts one job of workload w.
func (s *Server) Remove(w workload.Workload) error {
	i, ok := s.reg.lookup(w)
	if !ok || s.JobsAt(i) == 0 {
		return fmt.Errorf("cluster: server %d has no %s job", s.id, w.Name)
	}
	s.counts[i]--
	s.busyCores--
	s.dynamicPowerW -= w.PerCorePowerW() * s.spec.PowerScale
	if s.busyCores == 0 {
		s.dynamicPowerW = 0 // shed any accumulated rounding residue
	}
	return nil
}

// PowerW returns the server's current draw under the linear per-core
// model: idle power plus each occupied core's workload-specific
// dynamic power, capped at the nameplate peak.
func (s *Server) PowerW() float64 {
	if s.failed {
		return 0
	}
	p := s.spec.IdlePowerW + s.dynamicPowerW
	if p > s.spec.PeakPowerW {
		p = s.spec.PeakPowerW
	}
	return p
}

// AirTempC returns the current air temperature at the wax.
func (s *Server) AirTempC() float64 { return s.fleet.AirTempC(s.id) }

// WaxTempC returns the current wax temperature.
func (s *Server) WaxTempC() float64 { return s.fleet.WaxTempC(s.id) }

// MeltFrac returns the ground-truth wax melt fraction.
func (s *Server) MeltFrac() float64 { return s.fleet.MeltFrac(s.id) }

// ReportedMeltFrac returns the melt fraction from the server's
// lookup-table estimator — the value the cluster scheduler actually
// sees (VMT-WA consumes this, not ground truth) — rewritten by the
// report filter when one is installed.
func (s *Server) ReportedMeltFrac() float64 {
	f := s.est.MeltFrac()
	if s.filter != nil {
		return s.filter.FilterMeltFrac(f)
	}
	return f
}

// ReportedUtilization returns the utilization the server claims to the
// scheduler: the true value unless a report filter (Byzantine fault)
// rewrites it. Placement bookkeeping never consumes this — it exists
// for telemetry-driven checks, which is exactly why the defense layer
// cross-validates it against the power draw.
func (s *Server) ReportedUtilization() float64 {
	u := s.Utilization()
	if s.filter != nil {
		return s.filter.FilterUtilization(u)
	}
	return u
}

// SetReportFilter installs (or, with nil, removes) a report filter.
func (s *Server) SetReportFilter(f ReportFilter) { s.filter = f }

// ReportsQuarantined reports whether the defense layer currently
// distrusts this server's telemetry.
//
//vmt:hotpath
func (s *Server) ReportsQuarantined() bool { return s.quarantined }

// SetReportsQuarantined flags or clears telemetry quarantine.
func (s *Server) SetReportsQuarantined(q bool) { s.quarantined = q }

// InletTempC returns the server's inlet temperature.
func (s *Server) InletTempC() float64 { return s.fleet.InletTempC(s.id) }

// SetInletTempC overrides the inlet temperature (inlet variation
// studies).
func (s *Server) SetInletTempC(c float64) { s.fleet.SetInletTempC(s.id, c) }

// Settled reports whether the server's last physics step replayed a
// memoized steady-state transition.
func (s *Server) Settled() bool { return s.fleet.Settled(s.id) }

// Ledger returns the server's cumulative thermal energy accounting.
func (s *Server) Ledger() thermal.EnergyLedger { return s.fleet.Ledger(s.id) }

// AirEnergyJ returns the energy held by the server's air node relative
// to its inlet temperature — the remainder term in the conservation
// balance.
func (s *Server) AirEnergyJ() float64 { return s.fleet.AirEnergyJ(s.id) }
