package cluster

import (
	"fmt"
	"testing"
	"time"

	"vmt/internal/workload"
)

// BenchmarkClusterStepWorkers measures one cluster tick at different
// physics fan-outs (results are bit-identical across all of them; the
// knob trades goroutines for wall time on multi-core hosts).
func BenchmarkClusterStepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := PaperCluster(256)
			cfg.PhysicsWorkers = workers
			c, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Load a third of the fleet so hot and cold paths both run.
			for i := 0; i < c.Len(); i += 3 {
				for j := 0; j < 16; j++ {
					if err := c.Server(i).Place(workload.VideoEncoding); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Step(time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
