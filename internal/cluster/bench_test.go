package cluster

import (
	"fmt"
	"testing"
	"time"

	"vmt/internal/workload"
)

// BenchmarkFleetStep measures one cluster tick over the
// struct-of-arrays fleet store at fleet scales from 1k to 1M servers
// and physics fan-outs 1/4/8. Results are bit-identical across worker
// counts; the fan-out only trades goroutines for wall time, and only
// pays on hosts with free cores (GOMAXPROCS>1). A third of the fleet
// carries load so the settled memo path, the integrating path, and the
// estimator all contribute, as in a real diurnal run.
func BenchmarkFleetStep(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				cfg := PaperCluster(n)
				cfg.PhysicsWorkers = workers
				c, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < c.Len(); i += 3 {
					for j := 0; j < 16; j++ {
						if err := c.Server(i).Place(workload.VideoEncoding); err != nil {
							b.Fatal(err)
						}
					}
				}
				// One warm step so scratch and estimator state are hot.
				if _, err := c.Step(time.Minute); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := c.Step(time.Minute); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkClusterStepWorkers measures one cluster tick at different
// physics fan-outs (results are bit-identical across all of them; the
// knob trades goroutines for wall time on multi-core hosts).
func BenchmarkClusterStepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := PaperCluster(256)
			cfg.PhysicsWorkers = workers
			c, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Load a third of the fleet so hot and cold paths both run.
			for i := 0; i < c.Len(); i += 3 {
				for j := 0; j < 16; j++ {
					if err := c.Server(i).Place(workload.VideoEncoding); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Step(time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
