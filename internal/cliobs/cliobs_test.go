package cliobs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmt"
	"vmt/internal/trace"
)

func smallCfg() vmt.Config {
	cfg := vmt.Scenario(5, vmt.PolicyVMTTA, 22)
	spec := trace.PaperTwoDay()
	spec.Days = 1
	spec.PeakUtil = []float64{0.95}
	spec.PeakHours = []float64{20}
	cfg.Trace = spec
	return cfg
}

func TestFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterFlags(fs)
	if err := fs.Parse([]string{
		"-trace", "t.json", "-metrics", "m.txt",
		"-cpuprofile", "c.pprof", "-debug-addr", ":0",
	}); err != nil {
		t.Fatal(err)
	}
	if o.TracePath != "t.json" || o.MetricsPath != "m.txt" ||
		o.CPUProfilePath != "c.pprof" || o.DebugAddr != ":0" {
		t.Fatalf("flags not bound: %+v", o)
	}
	if !o.Enabled() {
		t.Fatal("Enabled() should be true")
	}
	if (&Observability{}).Enabled() {
		t.Fatal("zero Observability should be disabled")
	}
}

// TestStartRunClose drives the full CLI path: flags → Start → a real
// run through the process-wide defaults → Close, then checks each
// artifact.
func TestStartRunClose(t *testing.T) {
	dir := t.TempDir()
	o := &Observability{
		TracePath:      filepath.Join(dir, "trace.json"),
		MetricsPath:    filepath.Join(dir, "metrics.txt"),
		CPUProfilePath: filepath.Join(dir, "cpu.pprof"),
		DebugAddr:      "127.0.0.1:0",
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := vmt.Run(smallCfg()); err != nil {
		o.Close()
		t.Fatal(err)
	}

	// The debug server exposes expvar with the live registry.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", o.Addr()))
	if err != nil {
		o.Close()
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "vmt_metrics") ||
		!strings.Contains(string(body), "sim_events_dispatched") {
		t.Fatalf("expvar output missing metrics: %.300s", body)
	}

	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	// Chrome trace artifact is valid JSON with span events.
	raw, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid chrome JSON: %v", err)
	}
	spans := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace has no span events")
	}

	// Metrics text dump has the engine counters.
	mtxt, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mtxt), "sim_events_dispatched") {
		t.Fatalf("metrics dump missing counters:\n%s", mtxt)
	}

	// The CPU profile exists and is non-trivial (pprof files start with
	// a gzip header).
	prof, err := os.ReadFile(o.CPUProfilePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Fatalf("cpu profile does not look like a pprof file (%d bytes)", len(prof))
	}
}

func TestJSONVariants(t *testing.T) {
	dir := t.TempDir()
	o := &Observability{
		TracePath:   filepath.Join(dir, "trace.jsonl"),
		MetricsPath: filepath.Join(dir, "metrics.json"),
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := vmt.Run(smallCfg()); err != nil {
		o.Close()
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
	mraw, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics .json is not JSON: %v", err)
	}
}

func TestCloseWithoutStartIsSafe(t *testing.T) {
	if err := (&Observability{}).Close(); err != nil {
		t.Fatal(err)
	}
}
