package cliobs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmt"
	"vmt/internal/telemetry"
	"vmt/internal/trace"
)

func smallCfg() vmt.Config {
	cfg := vmt.Scenario(5, vmt.PolicyVMTTA, 22)
	spec := trace.PaperTwoDay()
	spec.Days = 1
	spec.PeakUtil = []float64{0.95}
	spec.PeakHours = []float64{20}
	cfg.Trace = spec
	return cfg
}

func TestFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterFlags(fs)
	if err := fs.Parse([]string{
		"-trace", "t.json", "-metrics", "m.txt",
		"-cpuprofile", "c.pprof", "-debug-addr", ":0",
	}); err != nil {
		t.Fatal(err)
	}
	if o.TracePath != "t.json" || o.MetricsPath != "m.txt" ||
		o.CPUProfilePath != "c.pprof" || o.DebugAddr != ":0" {
		t.Fatalf("flags not bound: %+v", o)
	}
	if !o.Enabled() {
		t.Fatal("Enabled() should be true")
	}
	if (&Observability{}).Enabled() {
		t.Fatal("zero Observability should be disabled")
	}
}

// TestStartRunClose drives the full CLI path: flags → Start → a real
// run through the process-wide defaults → Close, then checks each
// artifact.
func TestStartRunClose(t *testing.T) {
	dir := t.TempDir()
	o := &Observability{
		TracePath:      filepath.Join(dir, "trace.json"),
		MetricsPath:    filepath.Join(dir, "metrics.txt"),
		CPUProfilePath: filepath.Join(dir, "cpu.pprof"),
		DebugAddr:      "127.0.0.1:0",
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := vmt.Run(smallCfg()); err != nil {
		o.Close()
		t.Fatal(err)
	}

	// The debug server exposes expvar with the live registry.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", o.Addr()))
	if err != nil {
		o.Close()
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "vmt_metrics") ||
		!strings.Contains(string(body), "sim_events_dispatched") {
		t.Fatalf("expvar output missing metrics: %.300s", body)
	}

	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	// Chrome trace artifact is valid JSON with span events.
	raw, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid chrome JSON: %v", err)
	}
	spans := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("trace has no span events")
	}

	// Metrics text dump has the engine counters.
	mtxt, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mtxt), "sim_events_dispatched") {
		t.Fatalf("metrics dump missing counters:\n%s", mtxt)
	}

	// The CPU profile exists and is non-trivial (pprof files start with
	// a gzip header).
	prof, err := os.ReadFile(o.CPUProfilePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Fatalf("cpu profile does not look like a pprof file (%d bytes)", len(prof))
	}
}

func TestJSONVariants(t *testing.T) {
	dir := t.TempDir()
	o := &Observability{
		TracePath:   filepath.Join(dir, "trace.jsonl"),
		MetricsPath: filepath.Join(dir, "metrics.json"),
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := vmt.Run(smallCfg()); err != nil {
		o.Close()
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
	mraw, err := os.ReadFile(o.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics .json is not JSON: %v", err)
	}
}

func TestCloseWithoutStartIsSafe(t *testing.T) {
	if err := (&Observability{}).Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingFlagsAndLiveEndpoints drives the streaming layer the
// way the CLI does: -stream, -fleet-log, -profile-bands, and the
// /metrics and /fleet live endpoints on the debug server.
func TestStreamingFlagsAndLiveEndpoints(t *testing.T) {
	dir := t.TempDir()
	o := &Observability{
		MetricsPath:  filepath.Join(dir, "metrics.txt"),
		StreamPath:   filepath.Join(dir, "stream.ndjson"),
		StreamWindow: 32,
		FleetLogPath: filepath.Join(dir, "fleet.ndjson"),
		ProfileBands: true,
		DebugAddr:    "127.0.0.1:0",
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := vmt.Run(smallCfg()); err != nil {
		o.Close()
		t.Fatal(err)
	}

	// /metrics serves Prometheus text exposition, including the band
	// profiles -profile-bands enabled.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", o.Addr()))
	if err != nil {
		o.Close()
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE sim_events_dispatched counter",
		"band_wall_ns_physics",
		"profiler_self_ns",
		"pcm_melt_frac_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(string(promBody), want) {
			t.Errorf("/metrics missing %q:\n%.400s", want, promBody)
		}
	}

	// /fleet serves the latest snapshot as JSON.
	resp, err = http.Get(fmt.Sprintf("http://%s/fleet", o.Addr()))
	if err != nil {
		o.Close()
		t.Fatal(err)
	}
	fleetBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap struct {
		Tick    int64 `json:"tick"`
		Servers []struct {
			ID       int     `json:"id"`
			AirTempC float64 `json:"air_temp_c"`
			Group    string  `json:"group"`
		} `json:"servers"`
	}
	if err := json.Unmarshal(fleetBody, &snap); err != nil {
		t.Fatalf("/fleet is not JSON: %v\n%.300s", err, fleetBody)
	}
	if snap.Tick == 0 || len(snap.Servers) != 5 {
		t.Fatalf("/fleet snapshot wrong shape: tick=%d servers=%d", snap.Tick, len(snap.Servers))
	}
	if snap.Servers[0].Group == "" {
		t.Error("/fleet snapshot missing placement groups for a grouping policy")
	}

	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	// The stream file holds valid window records covering the run.
	sf, err := os.Open(o.StreamPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadWindows(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, rec := range recs {
		series[rec.Series] = true
	}
	if !series["cooling_load_w"] || !series["hot_group_size"] {
		t.Fatalf("stream file missing expected series: %v", series)
	}

	// The fleet log replays into per-tick snapshots.
	ff, err := os.Open(o.FleetLogPath)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := telemetry.ReadFleetLog(ff)
	ff.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("fleet log is empty")
	}
	if int64(len(snaps)) != snaps[len(snaps)-1].Tick {
		t.Fatalf("fleet log has %d snapshots but last tick is %d", len(snaps), snaps[len(snaps)-1].Tick)
	}
}
