package cliobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"vmt"
)

// SessionServer drives a live vmt.Session over the cliobs debug mux.
// Sessions are not goroutine-safe, so every endpoint serialises
// through the server's mutex; the simulation only advances when a
// client asks it to, which is the point — an external controller owns
// the clock.
//
// Endpoints (on the -debug-addr listener, next to /metrics and /fleet):
//
//	GET  /observe            latest Observation as JSON (never advances)
//	POST /step?n=5           advance n ticks (default 1), return the
//	                         post-step Observation
//	POST /place?workload=WebSearch&server=3
//	                         enqueue a one-shot placement directive for
//	                         the next matching arrival
type SessionServer struct {
	mu       sync.Mutex
	sess     *vmt.Session
	done     chan struct{}
	doneOnce sync.Once
}

// The default mux is process-global and panics on duplicate patterns,
// so the handlers register once and read the active server through an
// atomic pointer, mirroring the /metrics and /fleet wiring.
var (
	sessionOnce sync.Once
	liveSession atomic.Pointer[SessionServer]
)

// ServeSession installs s behind /observe, /step, and /place on the
// default mux (served by the -debug-addr listener) and returns the
// server handle. Call at most one session per process at a time; a
// second call retargets the endpoints to the new session.
func ServeSession(s *vmt.Session) *SessionServer {
	ss := &SessionServer{sess: s, done: make(chan struct{})}
	sessionOnce.Do(registerSessionHandlers)
	liveSession.Store(ss)
	return ss
}

// Done is closed when a /step drives a finite-horizon session to
// completion. Open-ended sessions never close it; interrupt the
// process instead.
func (ss *SessionServer) Done() <-chan struct{} { return ss.done }

func registerSessionHandlers() {
	http.HandleFunc("/observe", func(w http.ResponseWriter, r *http.Request) {
		ss := liveSession.Load()
		if ss == nil {
			http.Error(w, "no session being served", http.StatusNotFound)
			return
		}
		ss.mu.Lock()
		obs := ss.sess.Observe()
		ss.mu.Unlock()
		writeObservation(w, obs)
	})
	http.HandleFunc("/step", func(w http.ResponseWriter, r *http.Request) {
		ss := liveSession.Load()
		if ss == nil {
			http.Error(w, "no session being served", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		n := 1
		if q := r.URL.Query().Get("n"); q != "" {
			var err error
			if n, err = strconv.Atoi(q); err != nil {
				http.Error(w, fmt.Sprintf("bad n: %v", err), http.StatusBadRequest)
				return
			}
		}
		ss.mu.Lock()
		err := ss.sess.Step(n)
		obs := ss.sess.Observe()
		ss.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		if obs.Done {
			ss.doneOnce.Do(func() { close(ss.done) })
		}
		writeObservation(w, obs)
	})
	http.HandleFunc("/place", func(w http.ResponseWriter, r *http.Request) {
		ss := liveSession.Load()
		if ss == nil {
			http.Error(w, "no session being served", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		server, err := strconv.Atoi(q.Get("server"))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad server: %v", err), http.StatusBadRequest)
			return
		}
		ss.mu.Lock()
		err = ss.sess.Place(q.Get("workload"), server)
		ss.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

func writeObservation(w http.ResponseWriter, obs vmt.Observation) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(obs); err != nil {
		// Headers are gone; nothing useful to report to the client.
		return
	}
}
