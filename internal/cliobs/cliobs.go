// Package cliobs wires the shared observability command-line flags —
// run tracing, metrics dumps, CPU profiles, and a live debug server —
// into the vmt binaries. Both cmd/vmtsim and cmd/vmtsweep register the
// same flags through it so every tool observes runs the same way:
//
//	-trace out.json      write a Chrome trace_event file (Perfetto)
//	-trace out.jsonl     write spans as JSON lines instead
//	-metrics out.txt     dump the metrics registry on exit (.json for JSON)
//	-cpuprofile out.pprof  write a CPU profile for go tool pprof
//	-debug-addr :8080    serve expvar + net/http/pprof while running
//	-stream out.ndjson   stream windowed time-series telemetry, one
//	                     sealed window per line, flushed as it closes
//	-stream-window 60    ticks aggregated per stream window
//	-fleet-log out.ndjson  stream one fleet snapshot per sample tick
//	-profile-bands       profile engine bands (wall + alloc per band)
//
// With -debug-addr the server additionally exposes live endpoints:
// /metrics serves the registry in Prometheus text exposition format
// and /fleet serves the latest fleet snapshot as JSON — both safe to
// scrape mid-run (the fleet view reads an atomic pointer to an
// immutable snapshot, never the engine's state).
//
// The sinks are installed as the process-wide defaults
// (vmt.SetDefaultObservers), so runs constructed deep inside the
// sweep helpers report too. Telemetry is observational only: enabling
// any of these flags cannot change simulation results.
package cliobs

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"vmt"
	"vmt/internal/telemetry"
)

// Observability carries the flag values and the sinks they activate.
// Zero value is inert; populate via RegisterFlags + flag parsing, then
// bracket the program body with Start and Close.
type Observability struct {
	TracePath      string
	MetricsPath    string
	CPUProfilePath string
	DebugAddr      string
	StreamPath     string
	StreamWindow   int
	FleetLogPath   string
	ProfileBands   bool

	registry    *telemetry.Registry
	recorder    *telemetry.Recorder
	stream      *telemetry.Stream
	streamSink  *telemetry.NDJSONSink
	fleet       *telemetry.FleetPublisher
	fleetLog    *telemetry.NDJSONFleetLog
	cpuFile     *os.File
	traceFile   *os.File
	metricsFile *os.File
	streamFile  *os.File
	fleetFile   *os.File
	listener    net.Listener
}

// RegisterFlags adds the shared observability flags to fs and returns
// the Observability they populate.
func RegisterFlags(fs *flag.FlagSet) *Observability {
	o := &Observability{}
	fs.StringVar(&o.TracePath, "trace", "",
		"write a run trace to this file (.json → Chrome trace_event for Perfetto, .jsonl → JSON lines)")
	fs.StringVar(&o.MetricsPath, "metrics", "",
		"dump the metrics registry to this file on exit (.json → JSON, otherwise text)")
	fs.StringVar(&o.CPUProfilePath, "cpuprofile", "",
		"write a CPU profile to this file")
	fs.StringVar(&o.DebugAddr, "debug-addr", "",
		"serve expvar, net/http/pprof, /metrics (Prometheus), and /fleet (JSON) on this address while running (e.g. localhost:8080)")
	fs.StringVar(&o.StreamPath, "stream", "",
		"stream windowed time-series telemetry to this NDJSON file, one sealed window per line, flushed as each window closes")
	fs.IntVar(&o.StreamWindow, "stream-window", telemetry.DefaultWindowTicks,
		"ticks aggregated per stream window")
	fs.StringVar(&o.FleetLogPath, "fleet-log", "",
		"stream one fleet snapshot (per-server temperature, melt fraction, group, crash state) per sample tick to this NDJSON file")
	fs.BoolVar(&o.ProfileBands, "profile-bands", false,
		"profile engine bands: per-band wall time and allocation counters, plus alloc tracks in -trace output")
	return o
}

// expvar and default-mux registration are process-global and panic on
// duplicates, so the published variable and the live endpoints read
// through atomic pointers that Start retargets.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[telemetry.Registry]
	liveOnce   sync.Once
	liveReg    atomic.Pointer[telemetry.Registry]
	liveFleet  atomic.Pointer[telemetry.FleetPublisher]
)

func publishExpvar() {
	expvar.Publish("vmt_metrics", expvar.Func(func() any {
		r := expvarReg.Load()
		if r == nil {
			return nil
		}
		return r.Snapshot()
	}))
}

// registerLiveHandlers installs /metrics and /fleet on the default
// mux (where the debug server already serves expvar and pprof). Both
// endpoints are scrape-safe mid-run: the registry snapshot reads
// atomic instruments, and the fleet view loads an atomic pointer to an
// immutable snapshot — neither touches the engine goroutine.
func registerLiveHandlers() {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r := liveReg.Load()
		if r == nil {
			http.Error(w, "metrics not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := telemetry.WritePrometheus(w, r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	http.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		var snap *telemetry.FleetSnapshot
		if p := liveFleet.Load(); p != nil {
			snap = p.Load()
		}
		if snap == nil {
			http.Error(w, "no fleet snapshot yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := enc.Encode(snap); err != nil {
			// Headers are gone; nothing useful to report to the client.
			return
		}
	})
}

// Enabled reports whether any observability flag was set.
func (o *Observability) Enabled() bool {
	return o.TracePath != "" || o.MetricsPath != "" ||
		o.CPUProfilePath != "" || o.DebugAddr != "" ||
		o.StreamPath != "" || o.FleetLogPath != "" || o.ProfileBands
}

// Start activates the sinks the parsed flags requested and installs
// them as the process-wide defaults. It returns an error if a file or
// listener cannot be created; in that case nothing is installed.
func (o *Observability) Start() error {
	if o.CPUProfilePath != "" {
		f, err := os.Create(o.CPUProfilePath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		o.cpuFile = f
	}
	// Output files open up front so a bad path fails before the
	// simulation, not after it.
	if o.MetricsPath != "" || o.DebugAddr != "" || o.ProfileBands {
		o.registry = telemetry.NewRegistry()
		if o.MetricsPath != "" {
			f, err := os.Create(o.MetricsPath)
			if err != nil {
				o.stopProfile()
				return fmt.Errorf("metrics: %w", err)
			}
			o.metricsFile = f
		}
	}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			o.stopProfile()
			o.closeFiles()
			return fmt.Errorf("trace: %w", err)
		}
		o.recorder = telemetry.NewRecorder()
		o.traceFile = f
	}
	if o.StreamPath != "" {
		f, err := os.Create(o.StreamPath)
		if err != nil {
			o.stopProfile()
			o.closeFiles()
			return fmt.Errorf("stream: %w", err)
		}
		o.streamFile = f
		o.streamSink = telemetry.NewNDJSONSink(f)
		o.stream = telemetry.NewStream(telemetry.StreamOptions{
			WindowTicks: o.StreamWindow,
			Sink:        o.streamSink,
		})
	}
	// The fleet publisher exists whenever anything consumes it: the
	// NDJSON log, or the debug server's /fleet live view.
	if o.FleetLogPath != "" {
		f, err := os.Create(o.FleetLogPath)
		if err != nil {
			o.stopProfile()
			o.closeFiles()
			return fmt.Errorf("fleet-log: %w", err)
		}
		o.fleetFile = f
		o.fleetLog = telemetry.NewNDJSONFleetLog(f)
		o.fleet = telemetry.NewFleetPublisher(o.fleetLog)
	} else if o.DebugAddr != "" {
		o.fleet = telemetry.NewFleetPublisher(nil)
	}
	if o.DebugAddr != "" {
		ln, err := net.Listen("tcp", o.DebugAddr)
		if err != nil {
			o.stopProfile()
			o.closeFiles()
			return fmt.Errorf("debug-addr: %w", err)
		}
		o.listener = ln
		expvarOnce.Do(publishExpvar)
		expvarReg.Store(o.registry)
		liveOnce.Do(registerLiveHandlers)
		liveReg.Store(o.registry)
		liveFleet.Store(o.fleet)
		go http.Serve(ln, nil) // expvar + pprof + /metrics + /fleet on the default mux
	}
	var tracer telemetry.Tracer
	if o.recorder != nil {
		tracer = o.recorder
	}
	vmt.SetDefaultObservers(vmt.Observers{
		Metrics:      o.registry,
		Tracer:       tracer,
		Stream:       o.stream,
		Fleet:        o.fleet,
		ProfileBands: o.ProfileBands,
	})
	return nil
}

// Addr returns the debug server's listen address ("" when disabled) —
// useful when -debug-addr picked an ephemeral port.
func (o *Observability) Addr() string {
	if o.listener == nil {
		return ""
	}
	return o.listener.Addr().String()
}

func (o *Observability) stopProfile() {
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		o.cpuFile.Close()
		o.cpuFile = nil
	}
}

func (o *Observability) closeFiles() {
	if o.traceFile != nil {
		o.traceFile.Close()
		o.traceFile = nil
	}
	if o.metricsFile != nil {
		o.metricsFile.Close()
		o.metricsFile = nil
	}
	if o.streamFile != nil {
		o.streamFile.Close()
		o.streamFile = nil
	}
	if o.fleetFile != nil {
		o.fleetFile.Close()
		o.fleetFile = nil
	}
}

// Close flushes every active sink: it stops the CPU profile, writes
// the trace and metrics files, shuts down the debug listener, and
// clears the process defaults. Safe to call when nothing was enabled.
func (o *Observability) Close() error {
	vmt.SetDefaultObservers(vmt.Observers{})
	o.stopProfile()
	if o.listener != nil {
		o.listener.Close()
		o.listener = nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Runs seal their own trailing windows, but a stream can still
	// hold a partial window if the process stops between runs; flush
	// it, then surface any latched write error before closing the
	// file.
	if o.stream != nil {
		o.stream.Flush()
		keep(o.streamSink.Err())
		o.stream, o.streamSink = nil, nil
	}
	if o.streamFile != nil {
		keep(o.streamFile.Close())
		o.streamFile = nil
	}
	if o.fleetLog != nil {
		keep(o.fleetLog.Err())
		o.fleetLog = nil
	}
	if o.fleetFile != nil {
		keep(o.fleetFile.Close())
		o.fleetFile = nil
	}
	if o.traceFile != nil {
		keep(flushFile(o.traceFile, o.TracePath, func(f *os.File) error {
			if strings.EqualFold(filepath.Ext(o.TracePath), ".jsonl") {
				return o.recorder.WriteJSONL(f)
			}
			return o.recorder.WriteChromeTrace(f)
		}))
		o.traceFile = nil
	}
	if o.metricsFile != nil {
		keep(flushFile(o.metricsFile, o.MetricsPath, func(f *os.File) error {
			if strings.EqualFold(filepath.Ext(o.MetricsPath), ".json") {
				return o.registry.WriteJSON(f)
			}
			return o.registry.WriteText(f)
		}))
		o.metricsFile = nil
	}
	return firstErr
}

func flushFile(f *os.File, path string, write func(*os.File) error) error {
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
