// Package cliobs wires the shared observability command-line flags —
// run tracing, metrics dumps, CPU profiles, and a live debug server —
// into the vmt binaries. Both cmd/vmtsim and cmd/vmtsweep register the
// same flags through it so every tool observes runs the same way:
//
//	-trace out.json      write a Chrome trace_event file (Perfetto)
//	-trace out.jsonl     write spans as JSON lines instead
//	-metrics out.txt     dump the metrics registry on exit (.json for JSON)
//	-cpuprofile out.pprof  write a CPU profile for go tool pprof
//	-debug-addr :8080    serve expvar + net/http/pprof while running
//
// The sinks are installed as the process-wide defaults
// (vmt.SetDefaultObservability), so runs constructed deep inside the
// sweep helpers report too. Telemetry is observational only: enabling
// any of these flags cannot change simulation results.
package cliobs

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"vmt"
	"vmt/internal/telemetry"
)

// Observability carries the flag values and the sinks they activate.
// Zero value is inert; populate via RegisterFlags + flag parsing, then
// bracket the program body with Start and Close.
type Observability struct {
	TracePath      string
	MetricsPath    string
	CPUProfilePath string
	DebugAddr      string

	registry    *telemetry.Registry
	recorder    *telemetry.Recorder
	cpuFile     *os.File
	traceFile   *os.File
	metricsFile *os.File
	listener    net.Listener
}

// RegisterFlags adds the shared observability flags to fs and returns
// the Observability they populate.
func RegisterFlags(fs *flag.FlagSet) *Observability {
	o := &Observability{}
	fs.StringVar(&o.TracePath, "trace", "",
		"write a run trace to this file (.json → Chrome trace_event for Perfetto, .jsonl → JSON lines)")
	fs.StringVar(&o.MetricsPath, "metrics", "",
		"dump the metrics registry to this file on exit (.json → JSON, otherwise text)")
	fs.StringVar(&o.CPUProfilePath, "cpuprofile", "",
		"write a CPU profile to this file")
	fs.StringVar(&o.DebugAddr, "debug-addr", "",
		"serve expvar and net/http/pprof on this address while running (e.g. localhost:8080)")
	return o
}

// expvar registration is process-global and panics on duplicates, so
// the published variable reads through an atomic pointer that Start
// retargets.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[telemetry.Registry]
)

func publishExpvar() {
	expvar.Publish("vmt_metrics", expvar.Func(func() any {
		r := expvarReg.Load()
		if r == nil {
			return nil
		}
		return r.Snapshot()
	}))
}

// Enabled reports whether any observability flag was set.
func (o *Observability) Enabled() bool {
	return o.TracePath != "" || o.MetricsPath != "" ||
		o.CPUProfilePath != "" || o.DebugAddr != ""
}

// Start activates the sinks the parsed flags requested and installs
// them as the process-wide defaults. It returns an error if a file or
// listener cannot be created; in that case nothing is installed.
func (o *Observability) Start() error {
	if o.CPUProfilePath != "" {
		f, err := os.Create(o.CPUProfilePath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		o.cpuFile = f
	}
	// Output files open up front so a bad path fails before the
	// simulation, not after it.
	if o.MetricsPath != "" || o.DebugAddr != "" {
		o.registry = telemetry.NewRegistry()
		if o.MetricsPath != "" {
			f, err := os.Create(o.MetricsPath)
			if err != nil {
				o.stopProfile()
				return fmt.Errorf("metrics: %w", err)
			}
			o.metricsFile = f
		}
	}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			o.stopProfile()
			o.closeFiles()
			return fmt.Errorf("trace: %w", err)
		}
		o.recorder = telemetry.NewRecorder()
		o.traceFile = f
	}
	if o.DebugAddr != "" {
		ln, err := net.Listen("tcp", o.DebugAddr)
		if err != nil {
			o.stopProfile()
			o.closeFiles()
			return fmt.Errorf("debug-addr: %w", err)
		}
		o.listener = ln
		expvarOnce.Do(publishExpvar)
		expvarReg.Store(o.registry)
		go http.Serve(ln, nil) // expvar + pprof live on the default mux
	}
	var tracer telemetry.Tracer
	if o.recorder != nil {
		tracer = o.recorder
	}
	vmt.SetDefaultObservability(o.registry, tracer)
	return nil
}

// Addr returns the debug server's listen address ("" when disabled) —
// useful when -debug-addr picked an ephemeral port.
func (o *Observability) Addr() string {
	if o.listener == nil {
		return ""
	}
	return o.listener.Addr().String()
}

func (o *Observability) stopProfile() {
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		o.cpuFile.Close()
		o.cpuFile = nil
	}
}

func (o *Observability) closeFiles() {
	if o.traceFile != nil {
		o.traceFile.Close()
		o.traceFile = nil
	}
	if o.metricsFile != nil {
		o.metricsFile.Close()
		o.metricsFile = nil
	}
}

// Close flushes every active sink: it stops the CPU profile, writes
// the trace and metrics files, shuts down the debug listener, and
// clears the process defaults. Safe to call when nothing was enabled.
func (o *Observability) Close() error {
	vmt.SetDefaultObservability(nil, nil)
	o.stopProfile()
	if o.listener != nil {
		o.listener.Close()
		o.listener = nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.traceFile != nil {
		keep(flushFile(o.traceFile, o.TracePath, func(f *os.File) error {
			if strings.EqualFold(filepath.Ext(o.TracePath), ".jsonl") {
				return o.recorder.WriteJSONL(f)
			}
			return o.recorder.WriteChromeTrace(f)
		}))
		o.traceFile = nil
	}
	if o.metricsFile != nil {
		keep(flushFile(o.metricsFile, o.MetricsPath, func(f *os.File) error {
			if strings.EqualFold(filepath.Ext(o.MetricsPath), ".json") {
				return o.registry.WriteJSON(f)
			}
			return o.registry.WriteText(f)
		}))
		o.metricsFile = nil
	}
	return firstErr
}

func flushFile(f *os.File, path string, write func(*os.File) error) error {
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
