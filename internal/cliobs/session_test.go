package cliobs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"vmt"
	"vmt/internal/workload"
)

// TestServeSession drives the HTTP step/observe seam end to end: an
// open-ended source session served on an ephemeral debug port,
// advanced and inspected purely through the endpoints.
func TestServeSession(t *testing.T) {
	o := &Observability{DebugAddr: "127.0.0.1:0"}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	cfg := vmt.Scenario(4, vmt.PolicyVMTTA, 22)
	cfg.Step = 2 * time.Minute
	cfg.Source = &workload.SourceSpec{Kind: "poisson", Level: 0.5, Events: 30}
	s, err := vmt.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ServeSession(s)
	base := "http://" + o.Addr()

	var obs vmt.Observation
	getJSON := func(resp *http.Response, err error) vmt.Observation {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var o vmt.Observation
		if err := json.Unmarshal(body, &o); err != nil {
			t.Fatalf("not an observation: %v\n%.300s", err, body)
		}
		return o
	}

	// Before any step: tick 0, no server state yet.
	obs = getJSON(http.Get(base + "/observe"))
	if obs.Tick != 0 || len(obs.Servers) != 0 {
		t.Fatalf("pre-step observation: %+v", obs)
	}

	// GET /step is refused; the clock only moves on POST.
	resp, err := http.Get(base + "/step")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /step status %d", resp.StatusCode)
	}

	obs = getJSON(http.Post(base+"/step?n=3", "", nil))
	if obs.Tick != 3 || len(obs.Servers) != 4 {
		t.Fatalf("after /step?n=3: tick=%d servers=%d", obs.Tick, len(obs.Servers))
	}
	if obs.TotalPowerW <= 0 {
		t.Fatalf("aggregates not populated: %+v", obs)
	}

	// A placement directive funnels the next matching arrival.
	resp, err = http.Post(fmt.Sprintf("%s/place?workload=%s&server=2",
		base, workload.WebSearch.Name), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /place status %d", resp.StatusCode)
	}
	obs = getJSON(http.Post(base+"/step", "", nil))
	if obs.Tick != 4 {
		t.Fatalf("default step count: tick=%d", obs.Tick)
	}
	if obs.PlacementsOverridden != 1 {
		t.Fatalf("placements overridden = %d, want 1", obs.PlacementsOverridden)
	}

	// Bad requests come back as client errors, not panics.
	resp, err = http.Post(base+"/step?n=bogus", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/place?workload=nope&server=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown workload") {
		t.Fatalf("bad place: status %d body %s", resp.StatusCode, body)
	}
}

// TestServeSessionDone checks the finite-horizon path: a /step that
// reaches the horizon closes Done() so the serving process can exit.
func TestServeSessionDone(t *testing.T) {
	o := &Observability{DebugAddr: "127.0.0.1:0"}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	cfg := vmt.Scenario(3, vmt.PolicyRoundRobin, 0)
	cfg.Step = 2 * time.Minute
	cfg.Source = &workload.SourceSpec{Kind: "poisson", Level: 0.4, Events: 20}
	cfg.Horizon = 10 * time.Minute // 5 ticks
	s, err := vmt.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ss := ServeSession(s)

	resp, err := http.Post("http://"+o.Addr()+"/step?n=999", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var obs vmt.Observation
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	if !obs.Done || obs.Tick != 5 {
		t.Fatalf("clamped step: %+v", obs)
	}
	select {
	case <-ss.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done() not closed after the horizon step")
	}
}
