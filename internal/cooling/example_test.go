package cooling_test

import (
	"fmt"

	"vmt/internal/cooling"
)

func ExampleExtraServersPct() {
	// The Section V-E conversion: shaving 12.8% off the peak leaves
	// room for 14.7% more servers under the unchanged cooling budget.
	fmt.Printf("%.1f%%\n", cooling.ExtraServersPct(12.8))
	fmt.Printf("%.1f%%\n", cooling.ExtraServersPct(6))
	// Output:
	// 14.7%
	// 6.4%
}
