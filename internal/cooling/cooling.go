// Package cooling summarizes cluster cooling-load series: peak load,
// peak reduction against a baseline, and the oversubscription headroom
// those reductions buy. The cooling system must be provisioned for the
// peak, so the peak — not the mean — is the figure of merit throughout
// the paper's evaluation.
package cooling

import (
	"fmt"
	"time"

	"vmt/internal/stats"
)

// Summary condenses one cooling-load series.
type Summary struct {
	// PeakW is the maximum instantaneous cooling load and PeakAt its
	// simulation time.
	PeakW  float64
	PeakAt time.Duration
	// MeanW is the average load over the run.
	MeanW float64
	// TroughW is the minimum load.
	TroughW float64
	// FlatnessPct is trough/peak ×100 — TTS and VMT aim to raise it.
	FlatnessPct float64
}

// Summarize reduces a cooling-load series (watts).
func Summarize(s *stats.Series) (Summary, error) {
	peak, at, err := s.Peak()
	if err != nil {
		return Summary{}, fmt.Errorf("cooling: %w", err)
	}
	trough, err := stats.Min(s.Values)
	if err != nil {
		return Summary{}, fmt.Errorf("cooling: %w", err)
	}
	sum := Summary{
		PeakW:   peak,
		PeakAt:  at,
		MeanW:   s.Mean(),
		TroughW: trough,
	}
	if peak > 0 {
		sum.FlatnessPct = trough / peak * 100
	}
	return sum, nil
}

// PeakReductionPct returns how much lower variant's peak cooling load
// is than baseline's, as a percentage of the baseline peak — the
// paper's headline metric (12.8% for VMT at GV=22).
func PeakReductionPct(baseline, variant *stats.Series) (float64, error) {
	b, err := Summarize(baseline)
	if err != nil {
		return 0, err
	}
	v, err := Summarize(variant)
	if err != nil {
		return 0, err
	}
	if b.PeakW <= 0 {
		return 0, fmt.Errorf("cooling: non-positive baseline peak %v", b.PeakW)
	}
	return (b.PeakW - v.PeakW) / b.PeakW * 100, nil
}

// ExtraServersPct converts a peak cooling reduction into the extra
// servers that fit under the unchanged cooling budget: shaving r%
// off the peak leaves room for 1/(1−r) × the original fleet
// (Section V-E: 12.8% → 14.6% more servers).
func ExtraServersPct(reductionPct float64) float64 {
	r := reductionPct / 100
	if r >= 1 {
		return 0 // degenerate: the entire load vanished
	}
	return (1/(1-r) - 1) * 100
}
