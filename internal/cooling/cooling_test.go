package cooling

import (
	"math"
	"testing"
	"time"

	"vmt/internal/stats"
)

func series(vals ...float64) *stats.Series {
	s := stats.NewSeries(time.Minute)
	for _, v := range vals {
		s.Append(v)
	}
	return s
}

func TestSummarize(t *testing.T) {
	sum, err := Summarize(series(100, 300, 200, 50))
	if err != nil {
		t.Fatal(err)
	}
	if sum.PeakW != 300 || sum.PeakAt != time.Minute {
		t.Fatalf("peak %v@%v", sum.PeakW, sum.PeakAt)
	}
	if sum.TroughW != 50 {
		t.Fatalf("trough %v", sum.TroughW)
	}
	if math.Abs(sum.MeanW-162.5) > 1e-12 {
		t.Fatalf("mean %v", sum.MeanW)
	}
	if math.Abs(sum.FlatnessPct-50.0/300*100) > 1e-12 {
		t.Fatalf("flatness %v", sum.FlatnessPct)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(series()); err == nil {
		t.Fatal("empty series should fail")
	}
}

func TestPeakReduction(t *testing.T) {
	base := series(100, 400, 200)
	variant := series(110, 348, 210)
	got, err := PeakReductionPct(base, variant)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-13) > 1e-12 {
		t.Fatalf("reduction = %v, want 13", got)
	}
	// A worse variant yields a negative reduction, not an error.
	worse := series(100, 500)
	got, err = PeakReductionPct(base, worse)
	if err != nil {
		t.Fatal(err)
	}
	if got >= 0 {
		t.Fatalf("worse variant should be negative, got %v", got)
	}
}

func TestPeakReductionBadBaseline(t *testing.T) {
	if _, err := PeakReductionPct(series(0, 0), series(1)); err == nil {
		t.Fatal("zero baseline should fail")
	}
	if _, err := PeakReductionPct(series(), series(1)); err == nil {
		t.Fatal("empty baseline should fail")
	}
	if _, err := PeakReductionPct(series(1), series()); err == nil {
		t.Fatal("empty variant should fail")
	}
}

func TestExtraServersPaperNumbers(t *testing.T) {
	// Section V-E: 12.8% reduction → 14.6% more servers; 6% → 6.4%.
	if got := ExtraServersPct(12.8); math.Abs(got-14.678899082568805) > 1e-9 {
		t.Fatalf("12.8%% → %v", got)
	}
	if got := ExtraServersPct(6); math.Abs(got-6.3829787234042605) > 1e-9 {
		t.Fatalf("6%% → %v", got)
	}
	if got := ExtraServersPct(0); got != 0 {
		t.Fatalf("0%% → %v", got)
	}
	if got := ExtraServersPct(100); got != 0 {
		t.Fatalf("degenerate 100%% → %v", got)
	}
}
