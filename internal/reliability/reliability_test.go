package reliability

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	if err := PaperModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{MTBFHours: 0, DoublingC: 10}).Validate(); err == nil {
		t.Fatal("zero MTBF should fail")
	}
	if err := (Model{MTBFHours: 1, DoublingC: 0}).Validate(); err == nil {
		t.Fatal("zero doubling should fail")
	}
	if err := (RotationSchedule{}).Validate(); err == nil {
		t.Fatal("empty rotation should fail")
	}
	if err := (RotationSchedule{HotMonths: -1, ColdMonths: 3}).Validate(); err == nil {
		t.Fatal("negative months should fail")
	}
}

func TestFailureRateAnchors(t *testing.T) {
	m := PaperModel()
	// At the reference temperature the rate is exactly 1/MTBF.
	if got := m.FailureRatePerHour(30); math.Abs(got-1.0/70000) > 1e-15 {
		t.Fatalf("rate at 30°C = %v", got)
	}
	// +10°C doubles, −10°C halves.
	if got := m.FailureRatePerHour(40); math.Abs(got-2.0/70000) > 1e-15 {
		t.Fatalf("rate at 40°C = %v", got)
	}
	if got := m.FailureRatePerHour(20); math.Abs(got-0.5/70000) > 1e-15 {
		t.Fatalf("rate at 20°C = %v", got)
	}
}

func TestCumulativeFailureMTBFPoint(t *testing.T) {
	m := PaperModel()
	// After exactly one MTBF at the reference temperature, failure
	// probability is 1−1/e ≈ 63.2%.
	got := m.CumulativeFailure(30, 70_000*time.Hour)
	if math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Fatalf("failure after one MTBF = %v", got)
	}
}

func TestCurveShape(t *testing.T) {
	m := PaperModel()
	rot := PaperRotation(38, 29)
	curve, err := CumulativeFailureCurve(m, rot, 36)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 37 || curve[0] != 0 {
		t.Fatalf("curve shape: len=%d first=%v", len(curve), curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("curve not strictly increasing at %d", i)
		}
		if curve[i] < 0 || curve[i] > 1 {
			t.Fatalf("curve out of bounds at %d: %v", i, curve[i])
		}
	}
}

func TestRotationAveragesBetweenExtremes(t *testing.T) {
	m := PaperModel()
	months := 36
	hotOnly, err := SteadyCurve(m, 38, months)
	if err != nil {
		t.Fatal(err)
	}
	coldOnly, err := SteadyCurve(m, 29, months)
	if err != nil {
		t.Fatal(err)
	}
	rotating, err := CumulativeFailureCurve(m, PaperRotation(38, 29), months)
	if err != nil {
		t.Fatal(err)
	}
	if !(rotating[months] > coldOnly[months] && rotating[months] < hotOnly[months]) {
		t.Fatalf("rotation %v should lie between cold %v and hot %v",
			rotating[months], coldOnly[months], hotOnly[months])
	}
}

// Figure 7's headline: with a 20%/month rotation, the 3-year cumulative
// failure rate for VMT is less than one percentage point above round
// robin (paper quotes 0.4–0.6%).
func TestPaperDeltaSmall(t *testing.T) {
	m := PaperModel()
	// Representative simulated temperatures: RR mean ≈ 31.5 °C, hot
	// group ≈ 34 °C, cold group ≈ 29.5 °C (time-averaged, not peak).
	cmp, err := Compare(m, 31.5, PaperRotation(34.0, 29.5), 36)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DeltaPct <= 0 {
		t.Fatalf("VMT should fail slightly more than RR, delta=%v", cmp.DeltaPct)
	}
	// The paper reports a 0.4–0.6 point gap; with our slightly wider
	// hot/cold temperature contrast the gap stays under 2 points —
	// the same qualitative conclusion (thermal wear from VMT rotation
	// is negligible over a server lifetime).
	if cmp.DeltaPct > 2.0 {
		t.Fatalf("delta %v%% too large for the paper's conclusion", cmp.DeltaPct)
	}
	// Sanity on the absolute 3-year magnitude (paper plots ≈25–35%).
	if cmp.RR[36] < 0.15 || cmp.RR[36] > 0.45 {
		t.Fatalf("3-year RR failure %v outside plausible band", cmp.RR[36])
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Model{}, 30, PaperRotation(38, 29), 12); err == nil {
		t.Fatal("invalid model should fail")
	}
	if _, err := CumulativeFailureCurve(PaperModel(), PaperRotation(38, 29), -1); err == nil {
		t.Fatal("negative horizon should fail")
	}
	if _, err := CumulativeFailureCurve(PaperModel(), RotationSchedule{}, 12); err == nil {
		t.Fatal("invalid rotation should fail")
	}
}

// Property: cumulative failure is monotone in temperature and time.
func TestMonotonicityProperty(t *testing.T) {
	m := PaperModel()
	f := func(t1, t2 uint8, months uint8) bool {
		a := 20 + float64(t1%30)
		b := 20 + float64(t2%30)
		if a > b {
			a, b = b, a
		}
		n := int(months%48) + 1
		ca, err := SteadyCurve(m, a, n)
		if err != nil {
			return false
		}
		cb, err := SteadyCurve(m, b, n)
		if err != nil {
			return false
		}
		return cb[n] >= ca[n]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
