// Package reliability models the thermal-wear cost of VMT (Section
// IV-D, Figure 7): servers in the hot group run hotter and fail more
// often, so the fleet is rotated between groups for wear leveling.
//
// The model starts from a 70,000-hour MTBF at 30 °C (Intel server
// board estimates) and applies the classic rule of thumb that every
// +10 °C doubles the component failure rate. Failures are treated as
// exponential (constant hazard at a given temperature), so cumulative
// failure probability over a duty cycle multiplies through the
// temperature history.
package reliability

import (
	"fmt"
	"math"
	"time"
)

// Model holds the failure-rate parameters.
type Model struct {
	// MTBFHours is the mean time between failures at RefTempC.
	MTBFHours float64
	// RefTempC anchors the MTBF.
	RefTempC float64
	// DoublingC is the temperature rise that doubles the failure
	// rate (10 °C per El-Sayed et al. / Patterson).
	DoublingC float64
}

// PaperModel returns the Section IV-D parameters: 70,000 h MTBF at
// 30 °C, doubling every 10 °C.
func PaperModel() Model {
	return Model{MTBFHours: 70_000, RefTempC: 30, DoublingC: 10}
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.MTBFHours <= 0 {
		return fmt.Errorf("reliability: MTBF must be positive, got %v", m.MTBFHours)
	}
	if m.DoublingC <= 0 {
		return fmt.Errorf("reliability: doubling interval must be positive, got %v", m.DoublingC)
	}
	return nil
}

// FailureRatePerHour returns the hazard rate at the given component
// temperature.
func (m Model) FailureRatePerHour(tempC float64) float64 {
	return math.Exp2((tempC-m.RefTempC)/m.DoublingC) / m.MTBFHours
}

// CumulativeFailure returns the probability that a server running at
// tempC for the duration has failed at least once.
func (m Model) CumulativeFailure(tempC float64, d time.Duration) float64 {
	return 1 - math.Exp(-m.FailureRatePerHour(tempC)*d.Hours())
}

// RotationSchedule describes the hot/cold duty cycle: with the paper's
// 20% monthly rotation and a 60/40 workload split, each server spends
// three months in the hot group then two months in the cold group.
type RotationSchedule struct {
	// HotMonths and ColdMonths set the cycle lengths.
	HotMonths, ColdMonths int
	// HotTempC and ColdTempC are the representative component
	// temperatures in each group (taken from simulation output).
	HotTempC, ColdTempC float64
}

// PaperRotation returns the Figure 7 schedule (3 hot months, 2 cold
// months) at the given group temperatures.
func PaperRotation(hotTempC, coldTempC float64) RotationSchedule {
	return RotationSchedule{HotMonths: 3, ColdMonths: 2, HotTempC: hotTempC, ColdTempC: coldTempC}
}

// Validate reports whether the schedule is usable.
func (r RotationSchedule) Validate() error {
	if r.HotMonths < 0 || r.ColdMonths < 0 || r.HotMonths+r.ColdMonths == 0 {
		return fmt.Errorf("reliability: need a non-empty rotation cycle")
	}
	return nil
}

// hoursPerMonth uses the 365.25/12-day average month.
const hoursPerMonth = 365.25 / 12 * 24

// CumulativeFailureCurve returns the month-by-month cumulative failure
// probability over months, for a server following the rotation under
// model m. Element i is the probability of at least one failure within
// the first i months (element 0 is 0).
func CumulativeFailureCurve(m Model, r RotationSchedule, months int) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if months < 0 {
		return nil, fmt.Errorf("reliability: negative horizon")
	}
	curve := make([]float64, months+1)
	var hazard float64 // integrated failure rate so far
	cycle := r.HotMonths + r.ColdMonths
	for i := 1; i <= months; i++ {
		pos := (i - 1) % cycle
		temp := r.HotTempC
		if pos >= r.HotMonths {
			temp = r.ColdTempC
		}
		hazard += m.FailureRatePerHour(temp) * hoursPerMonth
		curve[i] = 1 - math.Exp(-hazard)
	}
	return curve, nil
}

// SteadyCurve returns the cumulative failure curve for a fleet that
// never rotates, running at a single temperature — the round-robin
// baseline of Figure 7, which keeps every server at the fleet-average
// temperature.
func SteadyCurve(m Model, tempC float64, months int) ([]float64, error) {
	return CumulativeFailureCurve(m, RotationSchedule{HotMonths: 1, ColdMonths: 0, HotTempC: tempC}, months)
}

// Comparison summarizes a VMT-vs-round-robin reliability study.
type Comparison struct {
	Months   int
	RR, VMT  []float64
	DeltaPct float64 // VMT − RR at the horizon, in percentage points
}

// Compare produces the Figure 7 comparison: round robin at the fleet
// mean temperature versus VMT-WA rotating between the hot and cold
// group temperatures.
func Compare(m Model, meanTempC float64, rot RotationSchedule, months int) (Comparison, error) {
	rr, err := SteadyCurve(m, meanTempC, months)
	if err != nil {
		return Comparison{}, err
	}
	vmt, err := CumulativeFailureCurve(m, rot, months)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Months:   months,
		RR:       rr,
		VMT:      vmt,
		DeltaPct: (vmt[months] - rr[months]) * 100,
	}, nil
}
