package reliability_test

import (
	"fmt"
	"time"

	"vmt/internal/reliability"
)

func ExampleModel_FailureRatePerHour() {
	m := reliability.PaperModel()
	base := m.FailureRatePerHour(30)
	fmt.Printf("rate doubles per +10 °C: %.2f\n", m.FailureRatePerHour(40)/base)
	// Output: rate doubles per +10 °C: 2.00
}

func ExampleModel_CumulativeFailure() {
	m := reliability.PaperModel()
	p := m.CumulativeFailure(30, 70_000*time.Hour) // one MTBF
	fmt.Printf("failure probability after one MTBF: %.1f%%\n", p*100)
	// Output: failure probability after one MTBF: 63.2%
}
