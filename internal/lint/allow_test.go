package lint

import (
	"errors"
	"strings"
	"testing"
)

func TestParseAllowComment(t *testing.T) {
	cases := []struct {
		name   string
		raw    string
		want   string // analyzer name on success, "" on error
		reason string
		errSub string // substring of the error message, "" for success
		notDir bool   // expect ErrNotDirective
	}{
		{name: "trailing reason", raw: "//vmtlint:allow floateq zero sentinel", want: "floateq", reason: "zero sentinel"},
		{name: "multi-word reason", raw: "//vmtlint:allow detrand observational: tracer timing only", want: "detrand", reason: "observational: tracer timing only"},
		{name: "tabs between fields", raw: "//vmtlint:allow\tmaporder\tsorted below", want: "maporder", reason: "sorted below"},
		{name: "ordinary comment", raw: "// just prose", notDir: true},
		{name: "doc comment", raw: "// vmtlintish but not a directive", notDir: true},
		{name: "empty line comment", raw: "//", notDir: true},
		{name: "block non-directive", raw: "/* prose */", notDir: true},
		{name: "missing reason", raw: "//vmtlint:allow floateq", errSub: "needs a reason"},
		{name: "reason all spaces", raw: "//vmtlint:allow floateq    ", errSub: "needs a reason"},
		{name: "missing analyzer", raw: "//vmtlint:allow", errSub: "needs an analyzer name"},
		{name: "unknown analyzer", raw: "//vmtlint:allow speling because", errSub: "unknown analyzer"},
		{name: "allow pseudo-analyzer", raw: "//vmtlint:allow allow hiding the hider", errSub: "unknown analyzer"},
		{name: "unknown verb", raw: "//vmtlint:ignore floateq reason", errSub: "unknown vmtlint directive"},
		{name: "space before marker", raw: "// vmtlint:allow floateq reason", errSub: "no space allowed"},
		{name: "block directive", raw: "/* vmtlint:allow floateq reason */", errSub: "must be a line comment"},
		{name: "block directive tight", raw: "/*vmtlint:allow floateq reason*/", errSub: "must be a line comment"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			name, reason, err := ParseAllowComment(c.raw)
			if c.notDir {
				if !errors.Is(err, ErrNotDirective) {
					t.Fatalf("ParseAllowComment(%q) err = %v, want ErrNotDirective", c.raw, err)
				}
				return
			}
			if c.errSub != "" {
				if err == nil || errors.Is(err, ErrNotDirective) {
					t.Fatalf("ParseAllowComment(%q) err = %v, want message containing %q", c.raw, err, c.errSub)
				}
				if !strings.Contains(err.Error(), c.errSub) {
					t.Fatalf("ParseAllowComment(%q) err = %q, want substring %q", c.raw, err, c.errSub)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAllowComment(%q) unexpected error: %v", c.raw, err)
			}
			if name != c.want || reason != c.reason {
				t.Fatalf("ParseAllowComment(%q) = (%q, %q), want (%q, %q)", c.raw, name, reason, c.want, c.reason)
			}
		})
	}
}

// FuzzParseAllowComment holds the parser to its contract on arbitrary
// input: never panic, never accept a directive without a known
// analyzer and a non-empty reason, classify non-comments as
// not-a-directive, and stay deterministic.
func FuzzParseAllowComment(f *testing.F) {
	f.Add("//vmtlint:allow floateq zero sentinel")
	f.Add("//vmtlint:allow detrand observational: tracer timing only")
	f.Add("//vmtlint:allow")
	f.Add("//vmtlint:allow floateq")
	f.Add("//vmtlint:allow nosuch reason")
	f.Add("//vmtlint:ignore floateq reason")
	f.Add("// vmtlint:allow floateq reason")
	f.Add("/* vmtlint:allow floateq reason */")
	f.Add("// plain comment")
	f.Add("//")
	f.Add("")
	f.Add("//vmtlint:allow\tmaporder\tsorted below")
	f.Fuzz(func(t *testing.T, raw string) {
		name, reason, err := ParseAllowComment(raw)
		name2, reason2, err2 := ParseAllowComment(raw)
		if name != name2 || reason != reason2 || (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic: (%q,%q,%v) vs (%q,%q,%v)", name, reason, err, name2, reason2, err2)
		}
		if !strings.HasPrefix(raw, "//") && !strings.HasPrefix(raw, "/*") && !errors.Is(err, ErrNotDirective) {
			t.Fatalf("non-comment %q classified as directive material: (%q, %q, %v)", raw, name, reason, err)
		}
		if err == nil {
			if !knownAnalyzer(name) {
				t.Fatalf("accepted unknown analyzer %q from %q", name, raw)
			}
			if strings.TrimSpace(reason) == "" {
				t.Fatalf("accepted empty reason from %q", raw)
			}
		} else if name != "" || reason != "" {
			t.Fatalf("error path leaked values (%q, %q) from %q", name, reason, raw)
		}
	})
}
