package lint

import (
	"go/ast"
	"go/types"
)

// FloatKey flags map types keyed by a floating-point (or complex)
// type, directly or through a named float type. Float keys are a
// determinism trap twice over: NaN keys are unequal to themselves
// (entries become unreachable and count toward len), and keys produced
// by arithmetic differ by rounding across evaluation orders, so the
// "same" key inserted by two code paths lands in two buckets. Key maps
// by an exact representation instead — int64 ticks, math.Float64bits,
// or a formatted string — or justify verbatim-copied sweep-parameter
// lookups with //vmtlint:allow floatkey, which doubles as an inventory
// of every such table in the tree. Struct keys that merely contain a
// float field are NOT flagged: the tree uses value structs (Workload,
// curve keys) as identity tokens whose fields are copied, never
// computed, and struct equality on verbatim copies is exact.
var FloatKey = &Analyzer{
	Name: "floatkey",
	Doc: "flags map types with floating-point keys — NaN self-inequality and " +
		"rounding-dependent key identity break determinism; key by int64, " +
		"math.Float64bits, or a formatted string, or justify with " +
		"//vmtlint:allow floatkey",
	Run: runFloatKey,
}

func runFloatKey(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			mt, ok := n.(*ast.MapType)
			if !ok {
				return true
			}
			kt := info.TypeOf(mt.Key)
			if kt == nil {
				return true
			}
			if isFloat(kt) {
				pass.Reportf(mt.Pos(),
					"map keyed by %s — NaN keys are unequal to themselves and rounding makes key identity order-dependent; key by int64 or math.Float64bits instead",
					types.TypeString(kt, nil))
			}
			return true
		})
	}
}
