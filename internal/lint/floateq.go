package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != with a floating-point operand, plus switch
// statements whose tag is a float. Sweeps and reducers must bucket and
// compare via epsilon or integer/string keys: exact float comparison
// on computed values is where "the same sweep point" silently becomes
// "two different rows" after an innocent refactor reorders an
// arithmetic expression. The one legitimate exact comparison — the
// zero-value "field unset" sentinel resolved in withDefaults-style
// code — is annotated with //vmtlint:allow floateq at each site, which
// doubles as an inventory of every such sentinel in the tree.
// _test.go files are outside the loader's scope and unaffected.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= with a float operand (directly or inside a " +
		"comparable composite — a struct field or array element) and " +
		"switches on float tags; compare via epsilon or integer keys, " +
		"or justify zero-value sentinels with //vmtlint:allow floateq",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				tx, ty := info.TypeOf(n.X), info.TypeOf(n.Y)
				switch {
				case isFloat(tx) || isFloat(ty):
					pass.Reportf(n.OpPos,
						"%s on float operands (%s %s %s); compare via epsilon or integer keys",
						n.Op, types.ExprString(n.X), n.Op, types.ExprString(n.Y))
				case containsFloat(tx) || containsFloat(ty):
					pass.Reportf(n.OpPos,
						"%s on composite values containing floats (%s %s %s); compare fields via epsilon or justify the zero-value sentinel",
						n.Op, types.ExprString(n.X), n.Op, types.ExprString(n.Y))
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(info.TypeOf(n.Tag)) {
					pass.Reportf(n.Switch,
						"switch on float tag %s compares floats exactly; compare via epsilon or integer keys",
						types.ExprString(n.Tag))
				}
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// containsFloat reports whether comparing values of t with == compares
// floats bit-for-bit somewhere inside: a struct field or array element
// that is (or recursively contains) a float. Pointers, interfaces,
// maps, slices, and channels stop the walk — their == is identity, not
// a float comparison.
func containsFloat(t types.Type) bool {
	return typeHasFloat(t, map[types.Type]bool{})
}

func typeHasFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasFloat(u.Elem(), seen)
	}
	return false
}
