package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces the allocation discipline of //vmt:hotpath
// functions: the per-tick kernels (Fleet.StepRange, StepRangeVec,
// Node.Step), the estimator pass, and the scheduler group scans. The
// PR 2/PR 7 performance story depends on these staying zero-alloc in
// steady state; that property is currently guarded by benchmarks,
// which notice a regression but cannot name the construct that caused
// it. This analyzer bans the alloc-prone constructs statically:
//
//   - closure literals and go/defer statements;
//   - map and slice composite literals, and the make/new/append
//     builtins (fixed-size arrays and struct literals are fine);
//   - string concatenation and any call into fmt;
//   - implicit or explicit conversions to interface types (boxing);
//   - function/method values used as values (capturing may allocate);
//   - calls to static callees that are not themselves //vmt:hotpath,
//     except a small allowlist of known-inlined leaves (the math
//     package, time.Duration's arithmetic methods) and the alloc-free
//     builtins (len/cap/copy/min/max).
//
// Dynamic calls — through func-typed variables, parameters, fields, or
// interface methods — are permitted: they are how the kernels take
// injected behavior, and the injected value's own body is checked
// wherever it is declared. Error paths that genuinely must allocate
// (fmt.Errorf on a bounds violation) carry a //vmtlint:allow hotpath
// with the justification that they are off the steady-state path.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //vmt:hotpath must be statically free of alloc-prone " +
		"constructs: closures, defer/go, map/slice literals, make/new/append, fmt and " +
		"string concatenation, interface conversions, escaping function values, and " +
		"calls to non-hotpath static callees off the known-inlined allowlist",
	Run: runHotpath,
}

// hotpathBuiltins are the builtins that never allocate.
var hotpathBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "min": true, "max": true,
}

func runHotpath(pass *Pass) {
	l := pass.Pkg.loader
	if l == nil {
		return
	}
	facts := l.modInfo().factsFor(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Pkg.Info.Defs[fd.Name]; obj != nil && facts.hotpath[obj] != nil {
				checkHotpathBody(pass, fd)
			}
		}
	}
}

// hotpathCheck carries one function's walk.
type hotpathCheck struct {
	pass *Pass
	// funIdents are identifiers appearing in call position; the
	// function-value check skips them.
	funIdents map[*ast.Ident]bool
	// flaggedArgs are the argument expressions of calls already
	// diagnosed; interface-conversion checks skip them to avoid
	// piling three findings onto one fmt.Errorf.
	flaggedArgs map[ast.Expr]bool
	// results are the enclosing function's result types, for checking
	// return statements against interface results.
	results []types.Type
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	c := &hotpathCheck{
		pass:        pass,
		funIdents:   map[*ast.Ident]bool{},
		flaggedArgs: map[ast.Expr]bool{},
	}
	if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		sig := obj.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			c.results = append(c.results, sig.Results().At(i).Type())
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			c.funIdents[fun] = true
		case *ast.SelectorExpr:
			c.funIdents[fun.Sel] = true
		}
		return true
	})
	ast.Inspect(fd.Body, c.visit)
}

func (c *hotpathCheck) visit(n ast.Node) bool {
	switch t := n.(type) {
	case *ast.FuncLit:
		c.pass.Reportf(t.Pos(), "closure literal in hotpath (captured variables allocate)")
		return false
	case *ast.DeferStmt:
		c.pass.Reportf(t.Pos(), "defer in hotpath (allocates a defer record per call)")
	case *ast.GoStmt:
		c.pass.Reportf(t.Pos(), "go statement in hotpath (spawning allocates)")
	case *ast.CompositeLit:
		c.checkCompositeLit(t)
	case *ast.CallExpr:
		c.checkCall(t)
	case *ast.BinaryExpr:
		if t.Op == token.ADD && c.isString(t) {
			c.pass.Reportf(t.Pos(), "string concatenation in hotpath (allocates)")
		}
	case *ast.AssignStmt:
		if t.Tok == token.ADD_ASSIGN && len(t.Lhs) == 1 && c.isString(t.Lhs[0]) {
			c.pass.Reportf(t.Pos(), "string concatenation in hotpath (allocates)")
		}
		if len(t.Lhs) == len(t.Rhs) {
			for i := range t.Lhs {
				c.checkConversion(t.Rhs[i], c.typeOf(t.Lhs[i]), "assignment")
			}
		}
	case *ast.ValueSpec:
		if len(t.Names) == len(t.Values) {
			for i := range t.Names {
				c.checkConversion(t.Values[i], c.typeOf(t.Names[i]), "assignment")
			}
		}
	case *ast.ReturnStmt:
		if len(t.Results) == len(c.results) {
			for i, e := range t.Results {
				c.checkConversion(e, c.results[i], "return")
			}
		}
	case *ast.Ident:
		c.checkFuncValue(t)
	}
	return true
}

func (c *hotpathCheck) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	// Assignment targets that are plain identifiers may only be in
	// Defs/Uses, not Types.
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.Pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func (c *hotpathCheck) isString(e ast.Expr) bool {
	t := c.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *hotpathCheck) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map composite literal in hotpath (allocates)")
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice composite literal in hotpath (allocates)")
	}
}

// checkCall classifies one call: conversion, builtin, static, or
// dynamic — flagging the banned kinds and checking interface boxing of
// the arguments of calls that survive.
func (c *hotpathCheck) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := c.pass.Pkg.Info.Types[fun]; ok && tv.IsType() {
		// Explicit conversion T(x): fine unless T is an interface.
		if len(call.Args) == 1 {
			c.checkConversion(call.Args[0], tv.Type, "conversion")
		}
		return
	}
	obj := c.calleeObject(fun)
	if b, ok := obj.(*types.Builtin); ok {
		if !hotpathBuiltins[b.Name()] {
			c.flagCall(call, "call to builtin %s in hotpath (allocates)", b.Name())
		}
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// Dynamic: through a func-typed variable, parameter, field, or
		// a computed expression. The callee's body is checked where it
		// is declared.
		c.checkCallArgs(call)
		return
	}
	if c.staticCalleeOK(fn) {
		c.checkCallArgs(call)
		return
	}
	c.flagCall(call, "call to non-hotpath function %s in hotpath (mark it //vmt:hotpath or hoist it off the hot path)", objName(fn))
}

// flagCall reports a call and exempts its arguments from the
// conversion checks — one finding per banned call, not one per boxed
// argument.
func (c *hotpathCheck) flagCall(call *ast.CallExpr, format string, args ...any) {
	c.pass.Reportf(call.Pos(), format, args...)
	for _, a := range call.Args {
		c.flaggedArgs[a] = true
	}
}

func (c *hotpathCheck) calleeObject(fun ast.Expr) types.Object {
	switch t := fun.(type) {
	case *ast.Ident:
		return c.pass.Pkg.Info.Uses[t]
	case *ast.SelectorExpr:
		return c.pass.Pkg.Info.Uses[t.Sel]
	}
	return nil
}

// staticCalleeOK reports whether a hotpath function may call fn:
// interface methods (dynamic dispatch, checked at the implementation),
// module-local functions marked //vmt:hotpath, and the external
// known-inlined allowlist — all of package math, and time.Duration's
// pure-arithmetic methods.
func (c *hotpathCheck) staticCalleeOK(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return true
		}
		if named, ok := recv.Type().(*types.Named); ok {
			if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Duration" {
				return true
			}
		}
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error and friends
	}
	mi := c.pass.Pkg.loader.modInfo()
	if mi.known(pkg.Path()) {
		return mi.hotpathDecl(fn) != nil
	}
	return pkg.Path() == "math"
}

func (c *hotpathCheck) checkCallArgs(call *ast.CallExpr) {
	sig, ok := c.pass.Pkg.Info.Types[ast.Unparen(call.Fun)].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		default:
			pt = params.At(params.Len() - 1).Type()
		}
		c.checkConversion(arg, pt, "argument")
	}
}

// checkConversion flags expr when assigning/passing/returning it as
// `to` boxes a concrete value into an interface. nil and
// interface-to-interface conversions don't allocate and are exempt.
func (c *hotpathCheck) checkConversion(expr ast.Expr, to types.Type, context string) {
	if to == nil || !types.IsInterface(to) || c.flaggedArgs[expr] {
		return
	}
	tv, ok := c.pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	c.pass.Reportf(expr.Pos(),
		"%s converts %s to interface %s in hotpath (boxing allocates)",
		context, tv.Type.String(), to.String())
}

// checkFuncValue flags a function or method used as a value rather
// than called — capturing a method value allocates its receiver
// binding.
func (c *hotpathCheck) checkFuncValue(id *ast.Ident) {
	if c.funIdents[id] {
		return
	}
	if fn, ok := c.pass.Pkg.Info.Uses[id].(*types.Func); ok {
		c.pass.Reportf(id.Pos(), "function value %s escapes in hotpath (capturing may allocate)", objName(fn))
	}
}
