// Package detrand is a vmtlint fixture: wall-clock and ambient-entropy
// sources that must not appear in deterministic simulation code, plus
// the negatives that must pass and a justified suppression.
package detrand

import (
	cryptorand "crypto/rand" // want "ambient entropy"
	"math/rand"              // want "global, unseeded-by-default PRNG"
	randv2 "math/rand/v2"    // want "global, unseeded-by-default PRNG"
	"time"
)

func jitter() float64 {
	return rand.Float64() + randv2.Float64()
}

func entropy(b []byte) {
	_, _ = cryptorand.Read(b)
}

func stamp() time.Duration {
	t0 := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until reads the wall clock"
}

// Referencing the function without calling it is still a wall-clock
// dependency, and the function-typed variable it lands in is tainted:
// calling it later is diagnosed too.
func alias() time.Time {
	clock := time.Now // want "time.Now reads the wall clock"
	return clock()    // want "clock transitively reaches time.Now"
}

// Negatives: simulation-time arithmetic and look-alike methods on
// local types are fine.
type fakeClock struct{}

func (fakeClock) Now() time.Duration                  { return 0 }
func (fakeClock) Since(time.Duration)                 {}
func (fakeClock) Until(d time.Duration) time.Duration { return d }

func simTime(c fakeClock, step time.Duration) time.Duration {
	c.Since(c.Now())
	return c.Now() + 3*step
}

// The sanctioned escape hatch: a justified allow is honored.
func spanTiming() time.Time {
	//vmtlint:allow detrand fixture: observational span timing only
	return time.Now()
}

func trailingAllow() time.Time {
	return time.Now() //vmtlint:allow detrand fixture: trailing-comment form
}
