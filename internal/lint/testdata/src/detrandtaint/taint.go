// Package detrandtaint is the scoped half of the interprocedural taint
// fixture: references into detrandtaintdep helpers that transitively
// reach the wall clock are diagnosed here, at the reference site, with
// the call chain in the message.
package detrandtaint

import (
	"time"

	dep "fixture/detrandtaintdep"
)

func direct() time.Time {
	return dep.Stamp() // want "detrandtaintdep.Stamp transitively reaches time.Now"
}

func indirect(t0 time.Time) time.Duration {
	return dep.Elapsed(t0) // want "detrandtaintdep.Elapsed transitively reaches time.Since"
}

// A method value carries its method's taint.
func methodValue(p *dep.Profiler) func() time.Duration {
	return p.Lap // want "detrandtaintdep.Profiler.Lap transitively reaches time.Since"
}

// A function-typed field assigned from a tainted function is tainted.
func fieldCall(p *dep.Profiler) time.Time {
	return p.Begin() // want "Begin transitively reaches time.Now"
}

// Deterministic dependency helpers are not diagnosed.
func clean(d time.Duration) time.Duration {
	return dep.Scale(d)
}

// The allow machinery covers transitive findings like any other.
func sanctioned() time.Time {
	return dep.Stamp() //vmtlint:allow detrand fixture: observational timing only
}
