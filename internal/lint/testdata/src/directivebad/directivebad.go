// Package directivebad is a vmtlint fixture: malformed //vmt:
// directives are diagnostics from the always-on, unsuppressable allow
// pseudo-analyzer, so a typo can never silently drop an annotation.
package directivebad

/* want "vmt:hotpath takes no arguments" */ //vmt:hotpath always
/* want "vmt:kernel needs arguments" */ //vmt:kernel
/* want "missing a role" */ //vmt:kernel substep
/* want `may not be named "end"` */ //vmt:kernel end oracle
/* want "must be letters, digits" */ //vmt:kernel sub.step oracle
/* want `unknown role "driver"` */ //vmt:kernel substep driver
/* want `trailing "begin now"` */ //vmt:kernel substep oracle begin now
/* want `unknown vmt directive "teleport"` */ //vmt:teleport
/* want "no space allowed" */ // vmt:hotpath
/* want "must be a line comment" */ /* vmt:hotpath */

// Well-formed directives produce nothing here; the analyzers that
// consume them do their own semantic validation.
//
//vmt:hotpath
func fine() {}
