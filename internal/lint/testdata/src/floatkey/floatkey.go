// Package floatkey is a vmtlint fixture: map types keyed by floats —
// directly, through a named type, or through a struct field — and the
// exact-keyed negatives.
package floatkey

// The direct form.
func histogram(vs []float64) map[float64]int { // want "map keyed by float64"
	counts := map[float64]int{} // want "map keyed by float64"
	for _, v := range vs {
		counts[v]++
	}
	return counts
}

// A named float type does not launder the hazard.
type tempC float64

var byTemp map[tempC][]int // want "map keyed by .*tempC"

// A struct key containing a float field is deliberately NOT flagged:
// the tree uses value structs as identity tokens whose fields are
// copied verbatim, and struct equality on exact copies is exact.
type sweepPoint struct {
	GV      float64
	Servers int
	Policy  string
}

var results map[sweepPoint]float64

// float32 is the same trap.
func bucket32() map[float32]string { // want "map keyed by float32"
	return nil
}

// Negatives: exact key representations pass.

var byTick map[int64]float64

var byName map[string][]float64

// Float VALUES are fine — only keys participate in hash equality.
var gauges map[string]float64

// Keying by the bit pattern is the sanctioned exact representation.
var byBits map[uint64]float64

type exactPoint struct {
	GVMilli int64
	Servers int
}

var exact map[exactPoint]float64
