// Package strictallow is a vmtlint fixture for -strict mode: allows
// that suppress a real finding stay silent; allows that excuse nothing
// are themselves diagnostics from the always-on "allow" analyzer.
package strictallow

// A used allow is invisible under strict.
func used(v float64) float64 {
	if v == 0 { //vmtlint:allow floateq zero-value "unset" sentinel fixture
		return 22
	}
	return v
}

// An allow on a line that produces no finding is dead weight — the
// code it excused drifted away — and strict reports it where it sits.
func unusedTrailing(a, b int) bool {
	return a == b /* want "unused vmtlint:allow floateq" */ //vmtlint:allow floateq ints never needed this
}

func unusedAbove(a, b int) bool {
	/* want "unused vmtlint:allow maporder" */ //vmtlint:allow maporder nothing ranges a map here
	return a == b
}

// Duplicate allows covering one finding are both "used": strict judges
// each record by whether it suppressed something, and both reach the
// diagnostic below.
func duplicated(a, b float64) bool {
	//vmtlint:allow floateq duplicate above, still covering
	return a == b //vmtlint:allow floateq duplicate trailing, still covering
}
