// Package hotpath is a vmtlint fixture: every alloc-prone construct
// the //vmt:hotpath discipline bans, and the negatives (allowlisted
// callees, dynamic calls, arrays) it must accept.
package hotpath

import (
	"fmt"
	"math"
	"time"
)

// plain is deliberately unmarked: calling it from a hotpath is the
// static-callee violation.
func plain() float64 { return 42 }

//vmt:hotpath
func leaf(x float64) float64 { return x + 1 }

// Negatives: marked module-local callees, the math allowlist, dynamic
// calls through parameters, time.Duration arithmetic, alloc-free
// builtins, and fixed-size arrays are all fine.
//
//vmt:hotpath
func okCalls(xs []float64, d time.Duration, f func(float64) float64) float64 {
	y := leaf(xs[0])
	y += math.Sqrt(y)
	y += f(y)
	y += d.Seconds()
	if len(xs) > 1 {
		y += xs[1]
	}
	var arr [4]float64
	arr[0] = y
	return max(arr[0], 0)
}

//vmt:hotpath
func closure() func() {
	return func() {} // want "closure literal in hotpath"
}

//vmt:hotpath
func deferred(mu interface{ Unlock() }) {
	defer mu.Unlock() // want "defer in hotpath"
}

//vmt:hotpath
func spawn() {
	go plain() // want "go statement in hotpath" "call to non-hotpath function hotpath.plain in hotpath"
}

//vmt:hotpath
func literals() ([]int, map[string]int) {
	s := []int{1}         // want "slice composite literal in hotpath"
	m := map[string]int{} // want "map composite literal in hotpath"
	return s, m
}

//vmt:hotpath
func builtins(xs []float64) []float64 {
	ys := make([]float64, 1) // want "call to builtin make in hotpath"
	return append(xs, ys[0]) // want "call to builtin append in hotpath"
}

//vmt:hotpath
func concat(a, b string) string {
	a += b       // want "string concatenation in hotpath"
	return a + b // want "string concatenation in hotpath"
}

// A banned call is one finding, not one per boxed argument.
//
//vmt:hotpath
func format(x float64) string {
	return fmt.Sprintf("%v", x) // want "call to non-hotpath function fmt.Sprintf in hotpath"
}

//vmt:hotpath
func box(x float64) any {
	var v any = x // want "assignment converts float64 to interface"
	_ = v
	return x // want "return converts float64 to interface"
}

//vmt:hotpath
func convert(x float64) float64 {
	_ = any(x) // want "conversion converts float64 to interface"
	return x
}

//vmt:hotpath
func argBox(s interface{ Store(v any) }, x float64) {
	s.Store(x) // want "argument converts float64 to interface"
}

//vmt:hotpath
func escape() func() float64 {
	g := plain // want "function value hotpath.plain escapes in hotpath"
	return g
}

//vmt:hotpath
func callsUnmarked() float64 {
	return plain() // want "call to non-hotpath function hotpath.plain in hotpath"
}

// The sanctioned escape hatch: error paths off the steady state carry
// an allow with the justification.
//
//vmt:hotpath
func allowedColdPath() float64 {
	return plain() //vmtlint:allow hotpath fixture: cold path, runs once at startup
}
