// Package allowbad is a vmtlint fixture: malformed suppression
// directives are diagnostics themselves, so a typo can never silently
// disable an analyzer. The want expectations ride in block comments
// because the directive under test owns the line's trailing comment.
package allowbad

/* want "needs a reason" */ //vmtlint:allow detrand
var a = 1

/* want "unknown analyzer" */ //vmtlint:allow nosuchanalyzer because I said so
var b = 2

/* want "unknown vmtlint directive" */ //vmtlint:ignore detrand some reason
var c = 3

/* want "no space allowed" */ // vmtlint:allow detrand some reason
var d = 4

/* want "must be a line comment" */ /* vmtlint:allow detrand some reason */
var e = 5

/* want "needs an analyzer name" */ //vmtlint:allow
var f = 6

// A well-formed directive is not a diagnostic, even with nothing to
// suppress.
//
//vmtlint:allow floateq fixture: well-formed directive with nothing to suppress
var g = 7
