// Package detrandtaintdep is the unscoped half of the interprocedural
// taint fixture: helpers here read the wall clock, and detrandtaint
// (the scoped consumer) must see that taint at its reference sites.
// Nothing in this package is linted directly.
package detrandtaintdep

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time { return time.Now() }

// Elapsed reads the wall clock through time.Since.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Scale is deterministic; references to it must stay clean.
func Scale(d time.Duration) time.Duration { return 2 * d }

// Profiler carries wall-clock taint in a function-typed field and a
// method.
type Profiler struct {
	Begin func() time.Time
}

// NewProfiler seeds Begin with the tainted Stamp.
func NewProfiler() *Profiler { return &Profiler{Begin: Stamp} }

// Lap reads the wall clock through time.Since and the Begin field.
func (p *Profiler) Lap() time.Duration { return time.Since(p.Begin()) }
