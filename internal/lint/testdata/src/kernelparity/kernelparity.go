// Package kernelparity is a vmtlint fixture: //vmt:kernel groups that
// must verify (α-renamed scalar↔slot forms, op= against its desugared
// spelling), a mirror that genuinely diverges, and every structural
// misuse of the directive grammar.
package kernelparity

// The passing region form: the mirror writes slot expressions and the
// plain-assignment spelling of the oracle's op=; both serialize to the
// same canonical stream.
func scaleOracle(acc, k float64) float64 {
	//vmt:kernel scale oracle begin
	acc += k * 2
	//vmt:kernel end
	return acc
}

func scaleMirror(v []float64, j int, kk float64) {
	//vmt:kernel scale mirror begin
	v[j] = v[j] + kk*2
	//vmt:kernel end
}

// The passing whole-function form, scalar against slots.
//
//vmt:kernel proj oracle
func projOracle(h, lo, inv float64) float64 {
	if h < lo {
		return h * inv
	}
	return lo
}

// projMirror is projOracle lane-for-lane.
//
//vmt:kernel proj mirror
func projMirror(hv []float64, lov, invv []float64, j int) float64 {
	if hv[j] < lov[j] {
		return hv[j] * invv[j]
	}
	return lov[j]
}

// A real divergence: the mirror adds a where the oracle adds b. The
// diagnostic lands on the exact divergent token.
func saxpyOracle(a, x, b float64) float64 {
	var y, out float64
	//vmt:kernel saxpy oracle begin
	y = a*x + b
	out = y
	//vmt:kernel end
	return out
}

func saxpyMirror(a, x, b float64) float64 {
	var y, out float64
	//vmt:kernel saxpy mirror begin
	y = a*x + a // want `kernel group "saxpy" diverges from oracle: "v2" here, "v4" in the oracle`
	out = y
	//vmt:kernel end
	return out
}

// Lane discipline: one region may use only one lane index.
func lanesOracle(acc, d float64) float64 {
	//vmt:kernel lanes oracle begin
	acc += d
	//vmt:kernel end
	return acc
}

func lanesMirror(v, w []float64, j, k int) {
	//vmt:kernel lanes mirror begin
	v[j] = v[j] + w[k] // want "uses a second lane index \"k\""
	//vmt:kernel end
}

// Constructs the serializer does not understand are conservative
// errors, never silent passes.
func weirdOracle(ch chan int) {
	//vmt:kernel weird oracle begin
	ch <- 1 // want "oracle: unsupported statement"
	//vmt:kernel end
}

func weirdMirror(ch chan int) {
	//vmt:kernel weird mirror begin
	ch <- 1
	//vmt:kernel end
}

// Group-structure misuses.
func noOracle(x float64) float64 {
	/* want "has no oracle in this package" */ //vmt:kernel orphangroup mirror begin
	x += 1
	//vmt:kernel end
	return x
}

func noMirror(x float64) float64 {
	/* want "has no mirror; nothing to verify" */ //vmt:kernel lonely oracle begin
	x += 1
	//vmt:kernel end
	return x
}

func dupOracle(x float64) float64 {
	/* want "has no mirror; nothing to verify" */ //vmt:kernel dup oracle begin
	x += 1
	//vmt:kernel end
	/* want `duplicate oracle for kernel group "dup"` */ //vmt:kernel dup oracle begin
	x += 1
	//vmt:kernel end
	return x
}

// Marker misuses.
func markerMisuse(x float64) float64 {
	/* want "end without a matching begin" */ //vmt:kernel end
	/* want "has no mirror" */ //vmt:kernel nest1 oracle begin
	/* want "regions cannot nest in one block" */ //vmt:kernel nest2 oracle begin
	x += 1
	//vmt:kernel end
	/* want "empty vmt:kernel region" */ //vmt:kernel empty oracle begin
	//vmt:kernel end
	/* want "must be a function's doc comment" */ //vmt:kernel stray oracle
	return x
}

/* want "marker outside any function body" */ //vmt:kernel end
