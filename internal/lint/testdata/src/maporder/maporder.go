// Package maporder is a vmtlint fixture: map iterations whose bodies
// are order-dependent (append, float/string folds, telemetry writes),
// the order-independent negatives, and the sanctioned sorted-after
// pattern behind a justified allow.
package maporder

import (
	"sort"

	"vmt/internal/telemetry"
)

func collectKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to a slice"
		keys = append(keys, k)
	}
	return keys
}

func foldFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "folds into a float accumulator"
		sum += v
	}
	return sum
}

// The spelled-out fold is the same bug.
func foldSpelled(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "folds into a float accumulator"
		total = total + v
	}
	return total
}

func buildLabel(m map[string]string) string {
	s := ""
	for _, v := range m { // want "folds into a string accumulator"
		s += v
	}
	return s
}

func emitGauges(m map[string]float64, reg *telemetry.Registry) {
	for name, v := range m { // want "writes telemetry"
		reg.Gauge(name).Set(v)
	}
}

// Telemetry routed through a caller-defined interface is the same
// order-dependent write — the selector resolves to a local method, but
// its signature takes a telemetry value.
type spanEmitter interface {
	Emit(telemetry.SpanEvent)
}

func emitSpans(m map[string]float64, e spanEmitter) {
	for name, v := range m { // want "writes telemetry via e.Emit"
		e.Emit(telemetry.SpanEvent{Name: name, Args: map[string]float64{"v": v}})
	}
}

// A function value bound to a telemetry method hides the package from
// the selector check entirely; the signature still gives it away.
func emitViaFunc(m map[string]float64, tr telemetry.Tracer) {
	emit := tr.Emit
	for name := range m { // want "writes telemetry via emit"
		emit(telemetry.SpanEvent{Name: name})
	}
}

// Negatives: order-independent bodies pass.

// Integer folds commute exactly.
func countCores(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Map-to-map copies land identically in any order.
func merge(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Validation that ranges without accumulating is fine.
func allPositive(m map[string]float64) bool {
	ok := true
	for _, v := range m {
		if v <= 0 {
			ok = false
		}
	}
	return ok
}

// Calling a telemetry-free function value is not a telemetry write.
func applyAll(m map[string]int, visit func(string, int)) {
	for k, v := range m {
		visit(k, v)
	}
}

// Ranging a slice is never flagged, whatever the body does.
func fromSlice(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// The sanctioned collect-then-sort pattern carries its justification.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //vmtlint:allow maporder keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
