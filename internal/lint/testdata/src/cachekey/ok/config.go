// Package cachekeyok is a vmtlint fixture: a miniature clone of the
// root package's Config / hashableConfig / cacheKeyExclusions triple in
// which every exported Config field is either hashed or documented as
// excluded — the clean state the cachekey analyzer accepts silently.
// TestCacheKeyFlips mutates this source in memory to prove the two
// failure modes fire.
package cachekeyok

type material struct{ MeltC float64 }

// Config is the fixture's run configuration.
type Config struct {
	Servers  int
	GV       float64
	Material material
	// Workers and Metrics are observational knobs.
	Workers int
	Metrics *int
	// unexported state is invisible to the cache-key contract.
	session string
}

// hashableConfig shadows Config with the fields that determine a run.
type hashableConfig struct {
	Servers  int
	GV       float64
	Material material
}

// cacheKeyExclusions documents the deliberate omissions.
var cacheKeyExclusions = map[string]string{
	"Workers": "observational: results identical for any worker count",
	"Metrics": "observational: telemetry never alters results",
}

func configKey(c Config) hashableConfig {
	_ = cacheKeyExclusions
	_ = c.session
	return hashableConfig{Servers: c.Servers, GV: c.GV, Material: c.Material}
}
