// Package cachekeyextra is a vmtlint fixture: the ok fixture's clone
// with exactly one extra exported Config field that neither
// hashableConfig nor cacheKeyExclusions knows about — the
// forgot-to-update-the-cache-key mistake, which must produce exactly
// one diagnostic.
package cachekeyextra

type material struct{ MeltC float64 }

// Config is the fixture's run configuration.
type Config struct {
	Servers  int
	GV       float64
	Material material
	Workers  int
	Metrics  *int
	// NewKnob was added without updating the cache key.
	NewKnob float64 // want "neither hashed in hashableConfig nor excluded in cacheKeyExclusions"
}

// hashableConfig shadows Config with the fields that determine a run.
type hashableConfig struct {
	Servers  int
	GV       float64
	Material material
}

// cacheKeyExclusions documents the deliberate omissions.
var cacheKeyExclusions = map[string]string{
	"Workers": "observational: results identical for any worker count",
	"Metrics": "observational: telemetry never alters results",
}

func configKey(c Config) hashableConfig {
	_ = cacheKeyExclusions
	_ = c.NewKnob
	return hashableConfig{Servers: c.Servers, GV: c.GV, Material: c.Material}
}
