// Package floateq is a vmtlint fixture: exact float comparisons that
// must be flagged, the integer/string negatives, and the zero-value
// sentinel idiom behind a justified allow.
package floateq

func eq(a, b float64) bool {
	return a == b // want "== on float operands"
}

func ne(a, b float32) bool {
	return a != b // want "!= on float operands"
}

// Named types with a float underlying are still floats.
type celsius float64

func named(c celsius) bool {
	return c == 36.6 // want "== on float operands"
}

// A float on either side taints the comparison.
func mixed(a float64) bool {
	return 0.98 == a // want "== on float operands"
}

func switchTag(x float64) int {
	switch x { // want "switch on float tag"
	case 1:
		return 1
	}
	return 0
}

// Negatives: exact comparison is fine on non-floats, and float
// ordering (<, <=) is not equality.
func intEq(a, b int) bool       { return a == b }
func strEq(a, b string) bool    { return a == b }
func ordered(a, b float64) bool { return a < b }

type pair struct{ x, y int }

func structEq(a, b pair) bool { return a == b }

// Composites that carry a float anywhere inside compare those floats
// bit-for-bit under == and are flagged with the composite message.
type spec struct {
	Name  string
	TempC float64
}

func specEq(a, b spec) bool {
	return a == b // want "== on composite values containing floats"
}

func specSentinel(s spec) bool {
	return s != (spec{}) // want "!= on composite values containing floats"
}

type grid [4]float32

func gridEq(a, b grid) bool {
	return a == b // want "== on composite values containing floats"
}

// The walk is recursive: a float buried one struct down still taints
// the outer comparison.
type wrapped struct {
	id    int
	inner spec
}

func wrappedEq(a, b wrapped) bool {
	return a == b // want "== on composite values containing floats"
}

// Pointer, map, slice, and interface members stop the walk: == on the
// outer value compares identity, never the floats behind them.
type byRef struct {
	id  int
	ptr *float64
	fn  interface{ M() float64 }
}

func byRefEq(a, b byRef) bool { return a == b }

// An array of ints is still exact-comparable.
type counts [3]int

func countsEq(a, b counts) bool { return a == b }

// The sentinel allow works on composites exactly as on bare floats.
func specDefault(s spec) spec {
	if s == (spec{}) { //vmtlint:allow floateq zero-value "unset" sentinel fixture
		return spec{Name: "default", TempC: 22}
	}
	return s
}

// The zero-value "unset" sentinel is the one sanctioned exact
// comparison, and it carries its justification.
func withDefault(v float64) float64 {
	if v == 0 { //vmtlint:allow floateq zero-value "unset" sentinel fixture
		return 22
	}
	return v
}
