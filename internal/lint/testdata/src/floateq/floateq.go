// Package floateq is a vmtlint fixture: exact float comparisons that
// must be flagged, the integer/string negatives, and the zero-value
// sentinel idiom behind a justified allow.
package floateq

func eq(a, b float64) bool {
	return a == b // want "== on float operands"
}

func ne(a, b float32) bool {
	return a != b // want "!= on float operands"
}

// Named types with a float underlying are still floats.
type celsius float64

func named(c celsius) bool {
	return c == 36.6 // want "== on float operands"
}

// A float on either side taints the comparison.
func mixed(a float64) bool {
	return 0.98 == a // want "== on float operands"
}

func switchTag(x float64) int {
	switch x { // want "switch on float tag"
	case 1:
		return 1
	}
	return 0
}

// Negatives: exact comparison is fine on non-floats, and float
// ordering (<, <=) is not equality.
func intEq(a, b int) bool       { return a == b }
func strEq(a, b string) bool    { return a == b }
func ordered(a, b float64) bool { return a < b }

type pair struct{ x, y int }

func structEq(a, b pair) bool { return a == b }

// The zero-value "unset" sentinel is the one sanctioned exact
// comparison, and it carries its justification.
func withDefault(v float64) float64 {
	if v == 0 { //vmtlint:allow floateq zero-value "unset" sentinel fixture
		return 22
	}
	return v
}
