package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose loop body has
// order-dependent effects: appending to a slice, folding into a float
// (or concatenating onto a string) accumulator, or writing telemetry.
// Go randomizes map iteration order per run, so any such loop produces
// results that differ between two executions of the same Config — the
// exact bug class that breaks bit-identity across PhysicsWorkers and
// replay order. Order-independent bodies (validation, map-to-map
// copies, integer counting) pass; loops that collect keys and sort
// before use carry a //vmtlint:allow with that justification.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose body appends to a slice, folds into a " +
		"float/string accumulator, or writes telemetry — order-dependent " +
		"effects under Go's randomized map order; iterate sorted keys instead",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if reason := orderDependentEffect(info, rs.Body); reason != "" {
				pass.Reportf(rs.Pos(),
					"map iteration with an order-dependent body (%s); iterate a sorted key slice instead",
					reason)
			}
			return true
		})
	}
}

// orderDependentEffect scans a map-range body for the first effect
// whose outcome depends on iteration order, returning a description or
// "".
func orderDependentEffect(info *types.Info, body *ast.BlockStmt) string {
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			reason = assignEffect(info, n)
		case *ast.CallExpr:
			if fn := calledObject(info, n); fn != nil && fn.Pkg() != nil &&
				strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") {
				reason = "writes telemetry via " + fn.Name()
				break
			}
			// The selector check above misses telemetry writes routed
			// through caller-defined seams: a local interface whose
			// method takes a telemetry value, or a function-typed
			// variable bound to a telemetry method. Catch those by the
			// callee's signature — any parameter mentioning an
			// internal/telemetry type means the call feeds telemetry.
			if sigTakesTelemetry(info.TypeOf(n.Fun)) {
				reason = "writes telemetry via " + types.ExprString(n.Fun)
			}
		}
		return reason == ""
	})
	return reason
}

// sigTakesTelemetry reports whether t is a function signature with a
// parameter that is (or contains) an internal/telemetry type.
func sigTakesTelemetry(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if mentionsTelemetry(params.At(i).Type(), map[types.Type]bool{}) {
			return true
		}
	}
	return false
}

// mentionsTelemetry walks a type looking for anything defined in
// internal/telemetry.
func mentionsTelemetry(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj != nil && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/telemetry") {
			return true
		}
		return mentionsTelemetry(t.Underlying(), seen)
	case *types.Pointer:
		return mentionsTelemetry(t.Elem(), seen)
	case *types.Slice:
		return mentionsTelemetry(t.Elem(), seen)
	case *types.Array:
		return mentionsTelemetry(t.Elem(), seen)
	case *types.Chan:
		return mentionsTelemetry(t.Elem(), seen)
	case *types.Map:
		return mentionsTelemetry(t.Key(), seen) || mentionsTelemetry(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if mentionsTelemetry(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Interface:
		for i := 0; i < t.NumMethods(); i++ {
			if mentionsTelemetry(t.Method(i).Type(), seen) {
				return true
			}
		}
	case *types.Signature:
		for _, tuple := range []*types.Tuple{t.Params(), t.Results()} {
			for i := 0; i < tuple.Len(); i++ {
				if mentionsTelemetry(tuple.At(i).Type(), seen) {
					return true
				}
			}
		}
	}
	return false
}

// assignEffect classifies one assignment inside the body.
func assignEffect(info *types.Info, as *ast.AssignStmt) string {
	for _, rhs := range as.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin && id.Name == "append" {
					return "appends to a slice"
				}
			}
		}
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if kind := accumulatorKind(info.TypeOf(as.Lhs[0])); kind != "" {
			return "folds into a " + kind + " accumulator"
		}
	case token.ASSIGN:
		// x = x + y is the spelled-out fold.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if kind := accumulatorKind(info.TypeOf(as.Lhs[0])); kind != "" &&
						(types.ExprString(bin.X) == types.ExprString(as.Lhs[0]) ||
							types.ExprString(bin.Y) == types.ExprString(as.Lhs[0])) {
						return "folds into a " + kind + " accumulator"
					}
				}
			}
		}
	}
	return ""
}

// accumulatorKind reports whether t is a type whose repeated folding is
// order-sensitive: floats (rounding is not associative) and strings
// (concatenation is not commutative). Integer folds commute exactly and
// pass.
func accumulatorKind(t types.Type) string {
	if t == nil {
		return ""
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case b.Info()&(types.IsFloat|types.IsComplex) != 0:
		return "float"
	case b.Info()&types.IsString != 0:
		return "string"
	}
	return ""
}

// calledObject resolves the function or method object a call invokes
// through a selector, or nil.
func calledObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}
