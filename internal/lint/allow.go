package lint

import (
	"errors"
	"fmt"
	"go/token"
	"strings"
)

// Suppression syntax:
//
//	//vmtlint:allow <analyzer> <reason>
//
// The comment suppresses <analyzer>'s diagnostics on its own line and
// on the line directly below it — so it works both as a trailing
// comment on the offending line and as a whole-line comment above it.
// The reason is mandatory: an allow is a reviewed exception, and the
// justification must live next to the code it excuses. Malformed
// directives (wrong verb, unknown analyzer, missing reason, a stray
// space before "vmtlint:", a block comment) are themselves diagnostics
// from the always-on "allow" pseudo-analyzer, so a typo can never
// silently disable a check.

// ErrNotDirective reports that a comment is not a vmtlint directive at
// all (an ordinary comment). It is the only non-diagnostic outcome of
// ParseAllowComment.
var ErrNotDirective = errors.New("not a vmtlint directive")

const directiveMarker = "vmtlint:"

// ParseAllowComment parses one raw comment ("//..." or "/*...*/"). On
// success it returns the suppressed analyzer's name and the non-empty
// reason. Any malformed directive returns a descriptive error;
// comments that are not directives return ErrNotDirective.
func ParseAllowComment(raw string) (name, reason string, err error) {
	var body string
	var block bool
	switch {
	case strings.HasPrefix(raw, "//"):
		body = raw[2:]
	case strings.HasPrefix(raw, "/*"):
		body = strings.TrimSuffix(raw[2:], "*/")
		block = true
	default:
		return "", "", ErrNotDirective
	}
	trimmed := strings.TrimSpace(body)
	if !strings.HasPrefix(trimmed, directiveMarker) {
		return "", "", ErrNotDirective
	}
	if block {
		return "", "", fmt.Errorf("vmtlint directive must be a line comment (//%s...), not a block comment", directiveMarker)
	}
	if !strings.HasPrefix(body, directiveMarker) {
		return "", "", fmt.Errorf("malformed vmtlint directive: no space allowed between // and %q", directiveMarker)
	}
	rest := strings.TrimPrefix(body, directiveMarker)
	verb := rest
	if i := strings.IndexFunc(rest, isSpace); i >= 0 {
		verb, rest = rest[:i], rest[i:]
	} else {
		rest = ""
	}
	if verb != "allow" {
		return "", "", fmt.Errorf("unknown vmtlint directive %q (only \"allow\" exists)", verb)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", fmt.Errorf("vmtlint:allow needs an analyzer name (one of %s)", analyzerNames())
	}
	name = fields[0]
	if !knownAnalyzer(name) {
		return "", "", fmt.Errorf("vmtlint:allow names unknown analyzer %q (want one of %s)", name, analyzerNames())
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
	if reason == "" {
		return "", "", fmt.Errorf("vmtlint:allow %s needs a reason — suppressions must carry their justification", name)
	}
	return name, reason, nil
}

func isSpace(r rune) bool { return r == ' ' || r == '\t' }

func knownAnalyzer(name string) bool {
	for _, a := range Analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func analyzerNames() string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// An allowRecord is one parsed //vmtlint:allow directive. used flips
// when the record suppresses a diagnostic, so strict mode can report
// the allows that excuse nothing.
type allowRecord struct {
	pos      token.Position
	analyzer string
	used     bool
}

// allowIndex holds a package's suppression directives: a per-file,
// per-line lookup for covers, plus the flat collection-ordered list
// strict mode iterates (never the maps — their order is random).
type allowIndex struct {
	lookup map[string]map[int][]*allowRecord
	all    []*allowRecord
}

func (ai *allowIndex) add(pos token.Position, analyzer string) {
	rec := &allowRecord{pos: pos, analyzer: analyzer}
	byLine, ok := ai.lookup[pos.Filename]
	if !ok {
		byLine = map[int][]*allowRecord{}
		ai.lookup[pos.Filename] = byLine
	}
	byLine[pos.Line] = append(byLine[pos.Line], rec)
	ai.all = append(ai.all, rec)
}

// covers reports whether d is suppressed: an allow for its analyzer on
// the same line or the line directly above. Every matching record is
// marked used, not just the first — duplicate allows both "work", and
// strict mode judges them individually.
func (ai *allowIndex) covers(d Diagnostic) bool {
	byLine, ok := ai.lookup[d.Position.Filename]
	if !ok {
		return false
	}
	hit := false
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		for _, rec := range byLine[line] {
			if rec.analyzer == d.Analyzer {
				rec.used = true
				hit = true
			}
		}
	}
	return hit
}

// unused reports, as always-on "allow" diagnostics, every directive
// whose analyzer ran over this package without producing a finding the
// directive suppressed. Allows naming analyzers that were scoped out
// are left alone: "unused" can only be judged where the analyzer
// actually looked.
func (ai *allowIndex) unused(ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, rec := range ai.all {
		if rec.used || !ran[rec.analyzer] {
			continue
		}
		diags = append(diags, Diagnostic{
			Position: rec.pos,
			Analyzer: AllowAnalyzerName,
			Message: fmt.Sprintf("unused vmtlint:allow %s — %s reports nothing here; delete the directive or restore the code it excused",
				rec.analyzer, rec.analyzer),
		})
	}
	return diags
}

// collectAllows scans a package's comments for vmtlint directives,
// returning the suppression index and a diagnostic for every malformed
// directive.
func collectAllows(pkg *Package) (*allowIndex, []Diagnostic) {
	ai := &allowIndex{lookup: map[string]map[int][]*allowRecord{}}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				name, _, err := ParseAllowComment(c.Text)
				if errors.Is(err, ErrNotDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if err != nil {
					diags = append(diags, Diagnostic{
						Position: pos,
						Analyzer: AllowAnalyzerName,
						Message:  err.Error(),
					})
					continue
				}
				ai.add(pos, name)
			}
		}
	}
	return ai, diags
}
