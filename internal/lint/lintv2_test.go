package lint

// Tests for the module-wide semantic analyzers: interprocedural
// determinism taint, the //vmt:hotpath allocation discipline, the
// //vmt:kernel parity checker (including a one-token mutation of the
// real thermal kernels), the //vmt: directive grammar, and the NDJSON
// round trip.

import (
	"bytes"
	"errors"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHotpathFixture(t *testing.T)      { lintFixture(t, "hotpath", Hotpath) }
func TestKernelParityFixture(t *testing.T) { lintFixture(t, "kernelparity", KernelParity) }

// TestDirectiveBadFixture pins the //vmt: grammar diagnostics: no
// analyzers run, every finding comes from the allow pseudo-analyzer.
func TestDirectiveBadFixture(t *testing.T) { lintFixture(t, "directivebad") }

// TestDetrandTaintFixture exercises the cross-package taint pass: the
// dep fixture is loaded into the same loader first so the consumer's
// import resolves, then only the consumer is linted.
func TestDetrandTaintFixture(t *testing.T) {
	loader := testLoader(t)
	if _, err := loader.LoadDir(filepath.Join("testdata", "src", "detrandtaintdep"), "fixture/detrandtaintdep"); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "detrandtaint"), "fixture/detrandtaint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	diffWants(t, pkg, RunUnscoped(pkg, []*Analyzer{Detrand}))
}

// loadThermalOverlay reads the real internal/thermal sources (non-test
// files) into an overlay map for in-memory mutation.
func loadThermalOverlay(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("..", "thermal")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[filepath.Join(dir, name)] = string(src)
	}
	return files
}

// TestKernelParityRealTree verifies the shipped invariant: the thermal
// package's substep kernels (Node.Step oracle, StepRange and stepGroup
// mirrors) are structurally equivalent, so kernelparity stays silent.
func TestKernelParityRealTree(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadFiles("vmt/internal/thermal", loadThermalOverlay(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	for _, d := range RunUnscoped(pkg, []*Analyzer{KernelParity}) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestKernelParityCatchesMutation flips one token in stepGroup's
// mirror lane body and demands kernelparity name the exact divergent
// position — the property the bit-identity story rests on.
func TestKernelParityCatchesMutation(t *testing.T) {
	files := loadThermalOverlay(t)
	fleet := filepath.Join("..", "thermal", "fleet.go")
	const orig = "waxHV[j] += toWax * subSec"
	const mutated = "waxHV[j] += toRoom * subSec"
	src, ok := files[fleet]
	if !ok || !strings.Contains(src, orig) {
		t.Fatalf("fleet.go no longer contains %q; update the mutation test", orig)
	}
	files[fleet] = strings.Replace(src, orig, mutated, 1)

	// Expected position: the mutated operand's line and column.
	wantLine, wantCol := 0, 0
	for i, line := range strings.Split(files[fleet], "\n") {
		if idx := strings.Index(line, mutated); idx >= 0 {
			wantLine = i + 1
			wantCol = idx + strings.Index(mutated, "toRoom") + 1
			break
		}
	}

	loader := testLoader(t)
	pkg, err := loader.LoadFiles("vmt/internal/thermal", files)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	diags := RunUnscoped(pkg, []*Analyzer{KernelParity})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "kernelparity" {
		t.Errorf("analyzer = %q, want kernelparity", d.Analyzer)
	}
	if !strings.Contains(d.Message, `kernel group "substep" diverges from oracle`) {
		t.Errorf("message does not name the divergence: %s", d.Message)
	}
	if !strings.Contains(d.Message, `"v1" here, "v5" in the oracle`) {
		t.Errorf("message does not pin the divergent atoms: %s", d.Message)
	}
	if d.Position.Line != wantLine || d.Position.Column != wantCol {
		t.Errorf("diagnostic at %d:%d, want %d:%d (the mutated operand)",
			d.Position.Line, d.Position.Column, wantLine, wantCol)
	}
}

// TestJSONRoundTrip pins the NDJSON wire format: one object per line,
// and ReadJSON(WriteJSON(x)) == x field for field.
func TestJSONRoundTrip(t *testing.T) {
	in := []Diagnostic{
		{
			Position: token.Position{Filename: "internal/sim/clock.go", Line: 5, Column: 27},
			Analyzer: "detrand",
			Message:  `time.Now reads the wall clock; "quoted" and → unicode survive`,
		},
		{
			Position: token.Position{Filename: "session.go", Line: 283, Column: 3},
			Analyzer: "detrand",
			Message:  "telemetry.Band.Begin transitively reaches time.Now",
			Allowed:  true,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("got %d NDJSON lines, want %d:\n%s", len(lines), len(in), buf.String())
	}
	for _, line := range lines {
		if strings.ContainsAny(line, "\r") || !strings.HasPrefix(line, "{") {
			t.Errorf("line is not a bare JSON object: %q", line)
		}
	}
	out, err := ReadJSON(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip returned %d diagnostics, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("diagnostic %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := ReadJSON(strings.NewReader("{not json}\n")); err == nil {
		t.Error("ReadJSON accepted malformed input")
	}
}

// FuzzParseHotpathComment holds the hotpath directive parser to its
// contract: never panic, classify non-comments and foreign verbs as
// not-a-directive, reject arguments, and stay deterministic.
func FuzzParseHotpathComment(f *testing.F) {
	f.Add("//vmt:hotpath")
	f.Add("//vmt:hotpath extra")
	f.Add("//vmt:kernel substep oracle")
	f.Add("// vmt:hotpath")
	f.Add("/* vmt:hotpath */")
	f.Add("// plain comment")
	f.Add("//")
	f.Add("")
	f.Add("//vmt:hotpath\t")
	f.Fuzz(func(t *testing.T, raw string) {
		err := ParseHotpathComment(raw)
		err2 := ParseHotpathComment(raw)
		if (err == nil) != (err2 == nil) || (err != nil && err2 != nil && err.Error() != err2.Error()) {
			t.Fatalf("non-deterministic: %v vs %v", err, err2)
		}
		if !strings.HasPrefix(raw, "//") && !strings.HasPrefix(raw, "/*") && !errors.Is(err, ErrNotDirective) {
			t.Fatalf("non-comment %q classified as directive material: %v", raw, err)
		}
		if err == nil {
			body := strings.TrimSpace(strings.TrimPrefix(raw, "//"))
			if !strings.HasPrefix(body, "vmt:hotpath") {
				t.Fatalf("accepted %q as a hotpath directive", raw)
			}
		}
	})
}

// FuzzParseKernelComment holds the kernel directive parser to its
// contract: never panic, only well-formed group/role/begin (or bare
// end) parses, parsed groups are always valid identifiers, and the
// parse is deterministic.
func FuzzParseKernelComment(f *testing.F) {
	f.Add("//vmt:kernel substep oracle")
	f.Add("//vmt:kernel substep mirror begin")
	f.Add("//vmt:kernel end")
	f.Add("//vmt:kernel")
	f.Add("//vmt:kernel substep")
	f.Add("//vmt:kernel end oracle")
	f.Add("//vmt:kernel sub.step oracle")
	f.Add("//vmt:kernel substep driver")
	f.Add("//vmt:kernel substep oracle begin now")
	f.Add("// vmt:kernel substep oracle")
	f.Add("/* vmt:kernel substep oracle */")
	f.Add("//vmt:hotpath")
	f.Add("// plain comment")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		d, err := ParseKernelComment(raw)
		d2, err2 := ParseKernelComment(raw)
		if d != d2 || (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic: (%+v,%v) vs (%+v,%v)", d, err, d2, err2)
		}
		if !strings.HasPrefix(raw, "//") && !strings.HasPrefix(raw, "/*") && !errors.Is(err, ErrNotDirective) {
			t.Fatalf("non-comment %q classified as directive material: %v", raw, err)
		}
		if err != nil {
			if d != (KernelDirective{}) {
				t.Fatalf("error path leaked directive %+v from %q", d, raw)
			}
			return
		}
		if d.End {
			if d.Group != "" || d.Role != "" || !d.Region {
				t.Fatalf("malformed end directive %+v from %q", d, raw)
			}
			return
		}
		if !validKernelGroup(d.Group) || d.Group == "end" {
			t.Fatalf("accepted invalid group %q from %q", d.Group, raw)
		}
		if d.Role != kernelRoleOracle && d.Role != kernelRoleMirror {
			t.Fatalf("accepted invalid role %q from %q", d.Role, raw)
		}
	})
}
