// Package lint is a from-scratch static-analysis driver for the vmt
// module, built on the standard library only (go/parser, go/ast,
// go/types, go/importer — no golang.org/x/tools dependency, matching
// the repo's no-deps ethos).
//
// It exists to enforce the simulator's two load-bearing promises at
// compile time rather than discovering their violation at golden-test
// time (or worse, in a silently poisoned result):
//
//   - determinism: a Config bit-identically determines a Run,
//     regardless of worker count, replay order, or wall-clock;
//   - cache soundness: the content-addressed run cache's key sees
//     every Config field that can change a Result.
//
// The analyzers (detrand, maporder, floateq, cachekey) encode those
// invariants; cmd/vmtlint is the CLI driver and scripts/check.sh runs
// it between vet and build.
//
// Scope: the loader analyzes non-test files only. _test.go files are
// exercised by `go test` itself and may legitimately use wall-clock
// timing or exact float comparison against golden fixtures.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("vmt/internal/pcm"); fixture loads may
	// override it so Scope rules can be exercised from testdata.
	Path string
	// Dir is the directory the files came from ("" for in-memory loads).
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check errors. Code that passes
	// `go build` type-checks cleanly, so a non-empty slice usually
	// means the loader's import environment is broken — the driver
	// treats it as a hard failure rather than linting half-typed code.
	TypeErrors []error

	// loader is the Loader that type-checked this package; the
	// module-wide analyzers (detrand taint, hotpath) reach through it
	// for facts about the packages this one's identifiers resolve into.
	loader *Loader
}

// Loader discovers and type-checks the packages of one Go module
// without shelling out to the go command. Module-local import paths
// resolve through the loader itself (memoized, dependency order);
// everything else (the standard library) resolves through
// go/importer's gc importer, falling back to the slower from-source
// importer when export data is unavailable.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	dirs    map[string]string // import path → directory
	pkgs    map[string]*Package
	loading map[string]bool
	gc      types.Importer
	source  types.Importer
	checked int
	mod     *moduleInfo
}

// NewLoader discovers the module rooted at moduleDir (the directory
// holding go.mod) and returns a loader for its packages.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		fset:       fset,
		dirs:       map[string]string{},
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		gc:         importer.Default(),
		source:     importer.ForCompiler(fset, "source", nil),
	}
	if err := l.discover(); err != nil {
		return nil, err
	}
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// discover walks the module tree recording every directory that holds
// non-test Go files. Directories named testdata or vendor, and hidden
// directories, are skipped — the same exclusions the go tool applies.
func (l *Loader) discover() error {
	return filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir &&
			(name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		imp := l.ModulePath
		if rel != "." {
			imp = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// goFiles lists the non-test .go files of dir, sorted by name so load
// results are independent of readdir order.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// PackageDir returns the directory of a discovered module package.
func (l *Loader) PackageDir(path string) (string, bool) {
	dir, ok := l.dirs[path]
	return dir, ok
}

// Checked returns how many packages this loader has parsed and
// type-checked. The diagnostics cache's contract is observable here: a
// fully warm cached run never calls check, so Checked stays zero.
func (l *Loader) Checked() int { return l.checked }

// ModulePackages returns the sorted import paths of every package the
// loader discovered in the module.
func (l *Loader) ModulePackages() []string {
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs { //vmtlint:allow maporder paths are sorted immediately below
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Load type-checks the module package with the given import path,
// loading its module-local dependencies first. Results are memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	files, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	return l.check(path, dir, files, nil)
}

// LoadDir type-checks the Go files of an arbitrary directory (a
// testdata fixture) as a package with the given import path. The
// fixture may import module packages; they resolve against the real
// tree.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	files, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(asPath, dir, files, nil)
}

// LoadFiles type-checks an in-memory package: filename → source. Used
// by tests that mutate a fixture (e.g. dropping one cache-key
// exclusion) without touching disk.
func (l *Loader) LoadFiles(asPath string, files map[string]string) (*Package, error) {
	names := make([]string, 0, len(files))
	for name := range files { //vmtlint:allow maporder names are sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	return l.check(asPath, "", names, files)
}

// check parses and type-checks one package. When overlay is non-nil,
// file names index into it instead of the filesystem.
func (l *Loader) check(path, dir string, files []string, overlay map[string]string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	l.checked++

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, loader: l}
	for _, name := range files {
		var src any
		if overlay != nil {
			src = overlay[name]
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	// Pre-load module-local imports so importFor finds them memoized.
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if l.isModuleLocal(ip) && ip != path {
				if _, err := l.Load(ip); err != nil {
					return nil, fmt.Errorf("lint: loading %s (imported by %s): %w", ip, path, err)
				}
			}
		}
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) isModuleLocal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// importFor resolves one import during type-checking: module-local
// paths from the loader's memoized packages, everything else from the
// gc importer (compiled export data, fast) with a from-source fallback.
func (l *Loader) importFor(path string) (*types.Package, error) {
	// Anything already loaded under this path wins — this lets one
	// testdata fixture import another that was loaded into the same
	// loader under a synthetic path.
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if l.isModuleLocal(path) {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if p, err := l.gc.Import(path); err == nil {
		return p, nil
	}
	return l.source.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
