package lint

import (
	"strings"
	"testing"
)

func TestCacheKeyOKFixture(t *testing.T) { lintFixture(t, "cachekey/ok", CacheKey) }

// TestCacheKeyExtraFieldFixture is the forgot-to-update-the-cache-key
// scenario: one new exported Config field and nothing else changed must
// yield exactly one diagnostic, naming that field.
func TestCacheKeyExtraFieldFixture(t *testing.T) {
	pkg := loadFixture(t, "cachekey/extra")
	diags := RunUnscoped(pkg, []*Analyzer{CacheKey})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics (%v), want exactly 1", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "NewKnob") {
		t.Errorf("diagnostic %q does not name the uncovered field NewKnob", diags[0].Message)
	}
	lintFixture(t, "cachekey/extra", CacheKey)
}

// mutateOK loads the clean cachekey fixture with one in-memory edit
// applied, returning the resulting diagnostics.
func mutateOK(t *testing.T, old, new string) []Diagnostic {
	t.Helper()
	src := fixtureSource(t, "cachekey/ok", "config.go")
	mutated := strings.Replace(src, old, new, 1)
	if mutated == src {
		t.Fatalf("mutation %q not found in fixture source", old)
	}
	pkg, err := testLoader(t).LoadFiles("fixture/cachekeymut", map[string]string{"config.go": mutated})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("mutated fixture has type errors: %v", pkg.TypeErrors)
	}
	return RunUnscoped(pkg, []*Analyzer{CacheKey})
}

// TestCacheKeyFlips proves the analyzer is live in both directions:
// the clean fixture is silent, and each single-edit regression flips
// exactly the matching diagnostic on.
func TestCacheKeyFlips(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		pkg := loadFixture(t, "cachekey/ok")
		if diags := RunUnscoped(pkg, []*Analyzer{CacheKey}); len(diags) != 0 {
			t.Fatalf("clean fixture produced diagnostics: %v", diags)
		}
	})

	t.Run("dropped exclusion uncovers a field", func(t *testing.T) {
		diags := mutateOK(t,
			"\t\"Workers\": \"observational: results identical for any worker count\",\n", "")
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics (%v), want 1", len(diags), diags)
		}
		if !strings.Contains(diags[0].Message, "Workers") || !strings.Contains(diags[0].Message, "neither hashed") {
			t.Errorf("diagnostic %q should report Workers as neither hashed nor excluded", diags[0].Message)
		}
	})

	t.Run("excluding a hashed field is a contradiction", func(t *testing.T) {
		diags := mutateOK(t,
			"\t\"Workers\":",
			"\t\"Servers\": \"bogus: this field is hashed\",\n\t\"Workers\":")
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics (%v), want 1", len(diags), diags)
		}
		if !strings.Contains(diags[0].Message, "Servers") || !strings.Contains(diags[0].Message, "both hashed") {
			t.Errorf("diagnostic %q should report Servers as both hashed and excluded", diags[0].Message)
		}
	})

	t.Run("stale exclusion key", func(t *testing.T) {
		diags := mutateOK(t,
			"\t\"Workers\":",
			"\t\"Ghost\": \"no such field anymore\",\n\t\"Workers\":")
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics (%v), want 1", len(diags), diags)
		}
		if !strings.Contains(diags[0].Message, "Ghost") || !strings.Contains(diags[0].Message, "stale") {
			t.Errorf("diagnostic %q should report Ghost as a stale exclusion", diags[0].Message)
		}
	})

	t.Run("missing exclusions map", func(t *testing.T) {
		src := fixtureSource(t, "cachekey/ok", "config.go")
		mutated := strings.ReplaceAll(src, "cacheKeyExclusions", "renamedExclusions")
		pkg, err := testLoader(t).LoadFiles("fixture/cachekeymut", map[string]string{"config.go": mutated})
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("mutated fixture has type errors: %v", pkg.TypeErrors)
		}
		if diags := RunUnscoped(pkg, []*Analyzer{CacheKey}); len(diags) == 0 {
			t.Fatal("removing cacheKeyExclusions produced no diagnostics")
		}
	})
}
