package lint

// The diagnostics cache: vmtlint's analogue of the simulator's
// content-addressed run cache. Type-checking the whole module from
// scratch costs a couple of seconds per invocation; the diagnostics a
// package produces are a pure function of its source, the sources of
// its module-local dependencies (type information flows across package
// boundaries), the analyzer set, the strict flag, and the toolchain.
// So the cache keys each package by a sha256 over exactly those
// inputs — computed with parser.ImportsOnly walks, never a type
// check — and a warm run loads nothing at all: Loader.Checked() == 0.
//
// Mirroring internal/experiment's cache discipline, the key must see
// every input that can change the output. The recipe folds in:
//
//   - cacheVersion (bumped when the entry format or recipe changes),
//   - runtime.Version() (the toolchain's type-checker),
//   - the analyzer names and the strict flag,
//   - the module's own lint sources when linting this repo, so
//     editing an analyzer invalidates every entry automatically,
//   - the package's file names and contents, and recursively the
//     content hashes of its module-local imports.
//
// Corrupt or unreadable entries are treated as misses and rewritten —
// a damaged cache can cost time, never correctness.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheVersion names the on-disk entry format and the key recipe. Bump
// it when either changes shape.
const cacheVersion = "vmtlint-cache-v2"

// Cache is a directory of per-package diagnostic entries keyed by
// content hash. The zero value is not usable; OpenCache creates the
// directory and returns a ready cache.
type Cache struct {
	dir    string
	hits   int
	misses int
}

// OpenCache opens (creating if needed) a diagnostics cache rooted at
// dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Hits returns how many packages were answered from disk.
func (c *Cache) Hits() int { return c.hits }

// Misses returns how many packages had to be type-checked and linted.
func (c *Cache) Misses() int { return c.misses }

// cachedDiag is one Diagnostic flattened for JSON. File is stored
// relative to the module root when possible so a relocated checkout
// still resolves positions.
type cachedDiag struct {
	File     string `json:"file"`
	Offset   int    `json:"offset"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed,omitempty"`
}

// cacheEntry is the on-disk record for one (package, key) pair.
type cacheEntry struct {
	Version     string       `json:"version"`
	Key         string       `json:"key"`
	Diagnostics []cachedDiag `json:"diagnostics"`
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get loads the entry for key, rebuilding Diagnostics with filenames
// resolved against modDir. Any read, parse, or consistency failure is
// a miss: the entry will be recomputed and rewritten.
func (c *Cache) get(key, modDir string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != cacheVersion || e.Key != key {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(e.Diagnostics))
	for _, d := range e.Diagnostics {
		file := d.File
		if file != "" && !filepath.IsAbs(file) {
			file = filepath.Join(modDir, filepath.FromSlash(file))
		}
		diags = append(diags, Diagnostic{
			Position: token.Position{Filename: file, Offset: d.Offset, Line: d.Line, Column: d.Column},
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Allowed:  d.Allowed,
		})
	}
	return diags, true
}

// put stores diags under key, writing via a temp file and rename so a
// crashed run never leaves a torn entry behind.
func (c *Cache) put(key, modDir string, diags []Diagnostic) error {
	e := cacheEntry{Version: cacheVersion, Key: key}
	for _, d := range diags {
		file := d.Position.Filename
		if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		e.Diagnostics = append(e.Diagnostics, cachedDiag{
			File:     file,
			Offset:   d.Position.Offset,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Allowed:  d.Allowed,
		})
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("lint: cache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("lint: cache: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.entryPath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: cache: %w", err)
	}
	return nil
}

// A Keyer computes cache keys for module packages without loading
// them: file contents are hashed directly and imports are discovered
// with parser.ImportsOnly, so keying a fully-cached module performs no
// type-checking at all. Content hashes are memoized per Keyer.
type Keyer struct {
	l       *Loader
	memo    map[string]string
	walking map[string]bool
}

// NewKeyer returns a Keyer over the loader's module.
func NewKeyer(l *Loader) *Keyer {
	return &Keyer{l: l, memo: map[string]string{}, walking: map[string]bool{}}
}

// Key returns the cache key for linting the package at path with the
// given analyzers and strictness.
func (k *Keyer) Key(path string, analyzers []*Analyzer, strict bool) (string, error) {
	content, err := k.contentHash(path)
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", cacheVersion)
	fmt.Fprintf(h, "go %s\n", runtime.Version())
	fmt.Fprintf(h, "analyzers %s\n", strings.Join(names, ","))
	fmt.Fprintf(h, "strict %v\n", strict)
	// When the module being linted is this repo, the analyzers'
	// behavior is defined by its own lint sources: fold them in so an
	// analyzer edit invalidates the whole cache without a version bump.
	for _, tool := range []string{k.l.ModulePath + "/internal/lint", k.l.ModulePath + "/cmd/vmtlint"} {
		if _, ok := k.l.PackageDir(tool); !ok {
			continue
		}
		th, err := k.contentHash(tool)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "tool %s %s\n", tool, th)
	}
	fmt.Fprintf(h, "pkg %s %s\n", path, content)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// contentHash hashes a package's non-test sources plus, recursively,
// the content hashes of its module-local imports — the exact closure
// whose edits can change the package's type information and therefore
// its diagnostics.
func (k *Keyer) contentHash(path string) (string, error) {
	if h, ok := k.memo[path]; ok {
		return h, nil
	}
	if k.walking[path] {
		return "", fmt.Errorf("lint: import cycle through %q", path)
	}
	k.walking[path] = true
	defer delete(k.walking, path)

	dir, ok := k.l.PackageDir(path)
	if !ok {
		return "", fmt.Errorf("lint: unknown module package %q", path)
	}
	files, err := goFiles(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	depSet := map[string]bool{}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", fmt.Errorf("lint: cache: %w", err)
		}
		fmt.Fprintf(h, "file %s %d\n", filepath.Base(name), len(data))
		h.Write(data)
		f, err := parser.ParseFile(token.NewFileSet(), name, data, parser.ImportsOnly)
		if err != nil {
			return "", fmt.Errorf("lint: cache: %w", err)
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if k.l.isModuleLocal(ip) && ip != path {
				depSet[ip] = true
			}
		}
	}
	deps := make([]string, 0, len(depSet))
	for dep := range depSet { //vmtlint:allow maporder deps are sorted immediately below
		deps = append(deps, dep)
	}
	sort.Strings(deps)
	for _, dep := range deps {
		dh, err := k.contentHash(dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", dep, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	k.memo[path] = sum
	return sum, nil
}

// A TypeCheckError reports that a package failed to type-check, which
// the driver treats as a load failure rather than linting half-typed
// code.
type TypeCheckError struct {
	Path string
	Errs []error
}

func (e *TypeCheckError) Error() string {
	return fmt.Sprintf("lint: type-checking %s failed: %v (%d errors)", e.Path, e.Errs[0], len(e.Errs))
}

// RunCached lints the named module packages, answering from cache
// where the key matches and type-checking only the misses. With a nil
// cache it degrades to the plain Run/RunStrict path. Diagnostics come
// back in the driver's canonical order and include suppressed findings
// (Allowed=true) — filter with Live for the exit-code view.
func RunCached(l *Loader, cache *Cache, paths []string, analyzers []*Analyzer, strict bool) ([]Diagnostic, error) {
	keyer := NewKeyer(l)
	var all []Diagnostic
	for _, path := range paths {
		var key string
		if cache != nil {
			var err error
			key, err = keyer.Key(path, analyzers, strict)
			if err != nil {
				return nil, err
			}
			if diags, ok := cache.get(key, l.ModuleDir); ok {
				cache.hits++
				all = append(all, diags...)
				continue
			}
			cache.misses++
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, &TypeCheckError{Path: path, Errs: pkg.TypeErrors}
		}
		diags := runPackage(pkg, analyzers, true, strict)
		sortDiagnostics(diags)
		if cache != nil {
			if err := cache.put(key, l.ModuleDir, diags); err != nil {
				return nil, err
			}
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}
