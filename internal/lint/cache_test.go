package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// cacheModule lays out a two-package scratch module (pkg b imports
// pkg a) with one suppressed violation and one live one, so cached
// runs carry real diagnostics, not just empty entries.
func cacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module vmt\n\ngo 1.24\n",
		"internal/pcm/a.go": `package pcm

func Answer() int { return 42 }
`,
		"internal/sim/b.go": `package sim

import (
	"time"

	"vmt/internal/pcm"
)

func Stamp() int64 { return time.Now().UnixNano() + int64(pcm.Answer()) }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCachedModule is one full cold-or-warm lint of the scratch module
// through a fresh loader, returning the loader (for Checked), the
// cache (for hit/miss counts), and the diagnostics.
func runCachedModule(t *testing.T, modDir, cacheDir string, strict bool) (*Loader, *Cache, []Diagnostic) {
	t.Helper()
	loader, err := NewLoader(modDir)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunCached(loader, cache, loader.ModulePackages(), Analyzers, strict)
	if err != nil {
		t.Fatal(err)
	}
	return loader, cache, diags
}

func diagStrings(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

// The satellite's acceptance test: a warm second run answers every
// package from the cache and performs zero parses and type-checks.
func TestCacheWarmRunSkipsTypeChecking(t *testing.T) {
	modDir := cacheModule(t)
	cacheDir := t.TempDir()

	cold, coldCache, coldDiags := runCachedModule(t, modDir, cacheDir, false)
	if cold.Checked() == 0 {
		t.Fatal("cold run should have type-checked packages")
	}
	if coldCache.Hits() != 0 || coldCache.Misses() != 2 {
		t.Fatalf("cold run: %d hits, %d misses, want 0/2", coldCache.Hits(), coldCache.Misses())
	}
	if len(coldDiags) != 1 || coldDiags[0].Analyzer != "detrand" {
		t.Fatalf("cold diagnostics = %v", diagStrings(coldDiags))
	}

	warm, warmCache, warmDiags := runCachedModule(t, modDir, cacheDir, false)
	if n := warm.Checked(); n != 0 {
		t.Fatalf("warm run type-checked %d packages, want 0", n)
	}
	if warmCache.Hits() != 2 || warmCache.Misses() != 0 {
		t.Fatalf("warm run: %d hits, %d misses, want 2/0", warmCache.Hits(), warmCache.Misses())
	}
	got, want := diagStrings(warmDiags), diagStrings(coldDiags)
	if len(got) != len(want) {
		t.Fatalf("warm diagnostics %v != cold %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("warm diagnostic %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// Editing a leaf dependency invalidates its dependents: touching
// internal/a re-keys both a and b, so both miss and re-check.
func TestCacheDependencyEditInvalidatesDependents(t *testing.T) {
	modDir := cacheModule(t)
	cacheDir := t.TempDir()
	runCachedModule(t, modDir, cacheDir, false)

	aPath := filepath.Join(modDir, "internal", "pcm", "a.go")
	if err := os.WriteFile(aPath, []byte("package pcm\n\nfunc Answer() int { return 43 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, cache, _ := runCachedModule(t, modDir, cacheDir, false)
	if cache.Hits() != 0 || cache.Misses() != 2 {
		t.Fatalf("after dep edit: %d hits, %d misses, want 0/2", cache.Hits(), cache.Misses())
	}
	if loader.Checked() != 2 {
		t.Fatalf("after dep edit: type-checked %d, want 2", loader.Checked())
	}
}

// Editing only the dependent leaves the dependency's entry warm: b
// misses (and type-checking it re-loads a), but a itself hits.
func TestCacheLeafEditLeavesDependencyWarm(t *testing.T) {
	modDir := cacheModule(t)
	cacheDir := t.TempDir()
	runCachedModule(t, modDir, cacheDir, false)

	bPath := filepath.Join(modDir, "internal", "sim", "b.go")
	src := `package sim

import "vmt/internal/pcm"

func Stamp() int64 { return int64(pcm.Answer()) }
`
	if err := os.WriteFile(bPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cache, diags := runCachedModule(t, modDir, cacheDir, false)
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Fatalf("after leaf edit: %d hits, %d misses, want 1/1", cache.Hits(), cache.Misses())
	}
	if len(diags) != 0 {
		t.Fatalf("fixed module still reports %v", diagStrings(diags))
	}
}

// The strict flag is part of the key: entries written by a default run
// cannot answer a -strict run, whose diagnostic set can differ.
func TestCacheStrictFlagSeparatesKeys(t *testing.T) {
	modDir := cacheModule(t)
	cacheDir := t.TempDir()
	runCachedModule(t, modDir, cacheDir, false)

	_, cache, _ := runCachedModule(t, modDir, cacheDir, true)
	if cache.Hits() != 0 || cache.Misses() != 2 {
		t.Fatalf("strict run against default cache: %d hits, %d misses, want 0/2", cache.Hits(), cache.Misses())
	}
}

// A corrupt entry is a miss, never an error and never stale output:
// the run recomputes, rewrites the entry, and the next run hits again.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	modDir := cacheModule(t)
	cacheDir := t.TempDir()
	runCachedModule(t, modDir, cacheDir, false)

	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("cache entries = %v (err %v), want 2", entries, err)
	}
	for _, e := range entries {
		if err := os.WriteFile(e, []byte("{torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, cache, diags := runCachedModule(t, modDir, cacheDir, false)
	if cache.Hits() != 0 || cache.Misses() != 2 {
		t.Fatalf("corrupt entries: %d hits, %d misses, want 0/2", cache.Hits(), cache.Misses())
	}
	if len(diags) != 1 {
		t.Fatalf("recomputed diagnostics = %v", diagStrings(diags))
	}
	_, cache, _ = runCachedModule(t, modDir, cacheDir, false)
	if cache.Hits() != 2 || cache.Misses() != 0 {
		t.Fatalf("after rewrite: %d hits, %d misses, want 2/0", cache.Hits(), cache.Misses())
	}
}

// Keys are stable across Keyer instances and loaders for unchanged
// sources — the property that makes the cache warm at all.
func TestKeyerStableAcrossLoaders(t *testing.T) {
	modDir := cacheModule(t)
	l1, err := NewLoader(modDir)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLoader(modDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range l1.ModulePackages() {
		k1, err := NewKeyer(l1).Key(path, Analyzers, true)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := NewKeyer(l2).Key(path, Analyzers, true)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("%s: keys differ across loaders: %s vs %s", path, k1, k2)
		}
	}
	if l1.Checked() != 0 || l2.Checked() != 0 {
		t.Fatalf("keying type-checked packages (%d, %d), want 0", l1.Checked(), l2.Checked())
	}
}

// A type-error package surfaces as a TypeCheckError from the cached
// driver, and nothing is cached for it.
func TestRunCachedTypeError(t *testing.T) {
	modDir := t.TempDir()
	for name, src := range map[string]string{
		"go.mod":    "module scratch\n\ngo 1.24\n",
		"broken.go": "package scratch\n\nfunc Bad() int { return \"not an int\" }\n",
	} {
		if err := os.WriteFile(filepath.Join(modDir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := NewLoader(modDir)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCached(loader, cache, loader.ModulePackages(), Analyzers, false)
	terr, ok := err.(*TypeCheckError)
	if !ok {
		t.Fatalf("err = %v, want *TypeCheckError", err)
	}
	if terr.Path != "scratch" || len(terr.Errs) == 0 {
		t.Fatalf("TypeCheckError = %+v", terr)
	}
}
