package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
)

// NDJSON diagnostics for CI consumption: one JSON object per line, so
// a consumer can stream, grep, or `jq -c` without buffering the whole
// report. The stream includes suppressed findings with "allowed": true
// — CI dashboards want to see what was waived, not just what fired.

// jsonDiag is the wire form of one Diagnostic. Offset is omitted
// deliberately: it is a byte position into a FileSet the consumer
// doesn't have, and keeping it out makes the round trip exact.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

// WriteJSON writes diagnostics as NDJSON, one object per line.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline NDJSON needs
	for _, d := range diags {
		jd := jsonDiag{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Allowed:  d.Allowed,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON decodes an NDJSON diagnostics stream written by WriteJSON.
// Blank lines are skipped; anything else that fails to decode is an
// error naming the offending line.
func ReadJSON(r io.Reader) ([]Diagnostic, error) {
	var diags []Diagnostic
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var jd jsonDiag
		if err := json.Unmarshal(line, &jd); err != nil {
			return nil, fmt.Errorf("lint: NDJSON line %d: %w", lineNo, err)
		}
		diags = append(diags, Diagnostic{
			Position: token.Position{Filename: jd.File, Line: jd.Line, Column: jd.Col},
			Analyzer: jd.Analyzer,
			Message:  jd.Message,
			Allowed:  jd.Allowed,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: reading NDJSON: %w", err)
	}
	return diags, nil
}
