package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestDetrandFixture(t *testing.T)  { lintFixture(t, "detrand", Detrand) }
func TestMapOrderFixture(t *testing.T) { lintFixture(t, "maporder", MapOrder) }
func TestFloatEqFixture(t *testing.T)  { lintFixture(t, "floateq", FloatEq) }
func TestFloatKeyFixture(t *testing.T) { lintFixture(t, "floatkey", FloatKey) }

// TestAllowFixture runs no analyzers at all: malformed-directive
// diagnostics come from the always-on suppression scanner.
func TestAllowFixture(t *testing.T) { lintFixture(t, "allowbad") }

// TestStrictAllowFixture pins strict mode: used allows stay silent,
// dead allows are diagnostics, duplicates covering one finding are
// both used.
func TestStrictAllowFixture(t *testing.T) {
	lintFixtureStrict(t, "strictallow", FloatEq, MapOrder)
}

// TestStrictIsStrictOnly pins that plain Run never reports unused
// allows — strict is opt-in, so the default exit-0 contract of a clean
// tree cannot flip when an allow goes stale.
func TestStrictIsStrictOnly(t *testing.T) {
	pkg := loadFixture(t, "strictallow")
	for _, d := range RunUnscoped(pkg, []*Analyzer{FloatEq, MapOrder}) {
		t.Errorf("non-strict run reported: %s", d)
	}
}

// TestStrictScopeAwareness: an allow naming an analyzer that is scoped
// out of its package is never reported unused — the analyzer did not
// look, so unusedness was never tested.
func TestStrictScopeAwareness(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadFiles("fixture/scoped", map[string]string{
		"scoped.go": `package scoped

func f(a, b int) bool {
	//vmtlint:allow detrand detrand is scoped out here, so this is not judged
	return a == b
}

func g(a, b int) bool {
	//vmtlint:allow floateq floateq does run here, and this excuses nothing
	return a == b
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	diags := RunStrict([]*Package{pkg}, []*Analyzer{Detrand, FloatEq})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics (%v), want exactly the floateq one", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != AllowAnalyzerName ||
		!strings.Contains(d.Message, "unused vmtlint:allow floateq") || d.Position.Line != 9 {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Position: token.Position{Filename: "internal/sim/engine.go", Line: 42},
		Analyzer: "detrand",
		Message:  "time.Now reads the wall clock",
	}
	want := "internal/sim/engine.go:42: [detrand] time.Now reads the wall clock"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{Detrand, "vmt", true},
		{Detrand, "vmt/internal/sim", true},
		{Detrand, "vmt/internal/sched", true},
		{Detrand, "vmt/internal/sched/sub", true},
		{Detrand, "vmt/internal/telemetry", false},
		{Detrand, "vmt/cmd/vmtsim", false},
		{Detrand, "vmtother", false},
		{CacheKey, "vmt", true},
		{CacheKey, "vmt/internal/experiment", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Scope(c.path); got != c.want {
			t.Errorf("%s.Scope(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
	if MapOrder.Scope != nil || FloatEq.Scope != nil || FloatKey.Scope != nil {
		t.Error("maporder, floateq, and floatkey are module-wide; Scope should be nil")
	}
}

// TestSuppressionAdjacency pins the allow comment's reach: its own
// line and the line directly below, nothing further.
func TestSuppressionAdjacency(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadFiles("fixture/adjacency", map[string]string{
		"adj.go": `package adjacency

func trailing(a, b float64) bool {
	return a == b //vmtlint:allow floateq suppressed on the same line
}

func above(a, b float64) bool {
	//vmtlint:allow floateq suppressed from the line above
	return a == b
}

func tooFar(a, b float64) bool {
	//vmtlint:allow floateq two lines up reaches nothing

	return a == b
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	diags := RunUnscoped(pkg, []*Analyzer{FloatEq})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics (%v), want exactly the out-of-reach one", len(diags), diags)
	}
	if diags[0].Position.Line != 15 {
		t.Errorf("surviving diagnostic at line %d, want 15 (allow two lines up must not reach)", diags[0].Position.Line)
	}
}

// TestRepoIsClean is the in-process form of the acceptance criterion
// `go run ./cmd/vmtlint -strict ./...` exits 0: the tree carries no
// unsuppressed violations of its own invariants and no stale allows.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := testLoader(t)
	var pkgs []*Package
	for _, path := range loader.ModulePackages() {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("type-checking %s: %v", path, pkg.TypeErrors)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range RunStrict(pkgs, Analyzers) {
		t.Errorf("unsuppressed violation: %s", d)
	}
}

// TestLoaderDiscoversModule sanity-checks discovery: the root package,
// a nested internal package, and a command must all be present, and
// testdata must not.
func TestLoaderDiscoversModule(t *testing.T) {
	loader := testLoader(t)
	paths := loader.ModulePackages()
	want := []string{"vmt", "vmt/internal/lint", "vmt/internal/sim", "vmt/cmd/vmtlint"}
	for _, w := range want {
		found := false
		for _, p := range paths {
			found = found || p == w
		}
		if !found {
			t.Errorf("ModulePackages missing %q", w)
		}
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("ModulePackages includes testdata package %q", p)
		}
	}
}
