package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// CacheKey structurally verifies the contract behind the
// content-addressed run cache: every exported field of the run Config
// must be either hashed (present by name in hashableConfig, the shadow
// struct configKey feeds to experiment.Key) or deliberately excluded
// (a key of the cacheKeyExclusions table, with its reason). Without
// this check, adding a Config field and forgetting the cache key is a
// silent cache-poisoning incident: two configs that differ only in the
// new field hash identically, and the second "run" returns the first
// run's results. The check is reflect-free and purely syntactic, so it
// fails at lint time, not at the first cache collision in production.
//
// It also polices the table itself: a stale exclusion naming a field
// Config no longer has, or a field that is simultaneously hashed and
// excluded, is a diagnostic.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc: "checks that every exported Config field is hashed in " +
		"hashableConfig or listed in cacheKeyExclusions, so new fields " +
		"cannot silently escape the run-cache key",
	Scope: func(path string) bool { return path == "vmt" },
	Run:   runCacheKey,
}

// The three declarations the analyzer pattern-matches, by name.
const (
	cachekeyConfigName     = "Config"
	cachekeyHashableName   = "hashableConfig"
	cachekeyExclusionsName = "cacheKeyExclusions"
)

func runCacheKey(pass *Pass) {
	config := findStruct(pass.Pkg, cachekeyConfigName)
	if config == nil {
		// Nothing to check: the package has no run Config (the scope
		// rule normally guarantees one, but fixtures may not).
		return
	}
	hashable := findStruct(pass.Pkg, cachekeyHashableName)
	if hashable == nil {
		pass.Reportf(config.Pos(),
			"%s exists but %s does not; the run cache has no canonical key struct to check against",
			cachekeyConfigName, cachekeyHashableName)
		return
	}
	exclusions, exclPos := findStringKeyedMapLit(pass.Pkg, cachekeyExclusionsName)
	if exclusions == nil {
		pass.Reportf(config.Pos(),
			"%s exists but %s (the documented observational-exclusion set) does not",
			cachekeyConfigName, cachekeyExclusionsName)
		return
	}

	hashed := map[string]bool{}
	for _, f := range hashable.Fields.List {
		for _, name := range f.Names {
			hashed[name.Name] = true
		}
	}

	configFields := map[string]bool{}
	for _, f := range config.Fields.List {
		for _, name := range f.Names {
			configFields[name.Name] = true
			if !name.IsExported() {
				continue
			}
			inHash, inExcl := hashed[name.Name], exclusions[name.Name]
			switch {
			case inHash && inExcl:
				pass.Reportf(name.Pos(),
					"%s.%s is both hashed in %s and excluded in %s; pick one",
					cachekeyConfigName, name.Name, cachekeyHashableName, cachekeyExclusionsName)
			case !inHash && !inExcl:
				pass.Reportf(name.Pos(),
					"%s.%s is neither hashed in %s nor excluded in %s; the run cache would silently ignore it (cache-poisoning hazard)",
					cachekeyConfigName, name.Name, cachekeyHashableName, cachekeyExclusionsName)
			}
		}
	}

	for name, pos := range exclPos {
		if !configFields[name] {
			pass.Reportf(pos,
				"%s lists %q, which is not a field of %s; stale exclusions hide future coverage gaps",
				cachekeyExclusionsName, name, cachekeyConfigName)
		}
	}
}

// findStruct returns the struct type declared under the given name in
// the package, or nil.
func findStruct(pkg *Package, name string) *ast.StructType {
	var found *ast.StructType
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != name {
				return found == nil
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				found = st
			}
			return false
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// findStringKeyedMapLit returns the string keys (and their positions)
// of the map composite literal bound to the named package-level var,
// or nil if the declaration is missing or not a keyed map literal.
func findStringKeyedMapLit(pkg *Package, name string) (map[string]bool, map[string]token.Pos) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if ident.Name != name || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys := map[string]bool{}
					poss := map[string]token.Pos{}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						bl, ok := kv.Key.(*ast.BasicLit)
						if !ok || bl.Kind != token.STRING {
							continue
						}
						k, err := strconv.Unquote(bl.Value)
						if err != nil {
							continue
						}
						keys[k] = true
						poss[k] = bl.Pos()
					}
					return keys, poss
				}
			}
		}
	}
	return nil, nil
}
