package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// KernelParity turns the scalar↔SoA↔vec bit-identity invariant into a
// lint diagnostic. The PR 7 performance story rests on "the vector
// kernel is expression-for-expression identical to the scalar oracle,
// so textual identity is bit identity" (amd64 Go does not fuse or
// reassociate float operations, so an identical evaluation tree is an
// identical rounding sequence). Until now that claim was enforced by
// comments and a differential test; this analyzer enforces it
// structurally.
//
// Functions or statement regions are paired with //vmt:kernel
// directives (see directive.go). Within one package, every group names
// exactly one oracle and at least one mirror; each mirror must be
// structurally equivalent to the oracle under a name-normalizing
// comparison:
//
//   - identifiers are canonicalized: local variable `airC` in the
//     scalar and slot expression `airV[j]` in the SoA kernel both
//     serialize to the same canonical atom, numbered by first use;
//   - a region may use at most one lane-index variable (the `j` in
//     `airV[j]`), so slots cannot silently cross lanes;
//   - `x op= e`, `x++`, and `:=` desugar to their plain-assignment
//     forms, and every binary/unary expression is serialized fully
//     parenthesized, so formatting and sugar differences cannot mask
//     (or fake) a structural difference;
//   - literals compare by exact token (1.0 ≠ 1.00), constants by
//     exact value;
//   - comments and positions are ignored.
//
// The first divergent node is reported at its exact position in the
// mirror, with the oracle-side position in the message. Constructs the
// serializer does not understand are conservative errors, never
// silent passes.
var KernelParity = &Analyzer{
	Name: "kernelparity",
	Doc: "functions/regions paired via //vmt:kernel <group> <oracle|mirror> must be " +
		"structurally equivalent under name-normalizing AST comparison; reports the " +
		"exact first-divergence node so scalar, SoA, and vec kernels provably share " +
		"one float evaluation order",
	Run: runKernelParity,
}

// kernelRegion is one //vmt:kernel-delimited region: a whole function
// body or a begin/end statement span.
type kernelRegion struct {
	group string
	role  string
	pos   token.Pos // directive position, anchor for structural diags
	stmts []ast.Stmt
}

func runKernelParity(pass *Pass) {
	var regions []kernelRegion
	for _, f := range pass.Pkg.Files {
		regions = append(regions, collectKernelRegions(pass, f)...)
	}
	groups := map[string][]kernelRegion{}
	var names []string
	for _, r := range regions {
		if _, ok := groups[r.group]; !ok {
			names = append(names, r.group)
		}
		groups[r.group] = append(groups[r.group], r)
	}
	sort.Strings(names)
	for _, name := range names {
		checkKernelGroup(pass, name, groups[name])
	}
}

// collectKernelRegions extracts every kernel region of one file:
// doc-comment whole-function regions, then begin/end statement regions
// matched to the innermost statement list that contains them.
func collectKernelRegions(pass *Pass, f *ast.File) []kernelRegion {
	var regions []kernelRegion

	// Whole-function form: //vmt:kernel <group> <role> on the doc.
	inDoc := map[*ast.Comment]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			d, err := ParseKernelComment(c.Text)
			if err != nil || d.Region {
				continue
			}
			inDoc[c] = true
			if fd.Body == nil {
				pass.Reportf(c.Pos(), "vmt:kernel on a function with no body")
				continue
			}
			regions = append(regions, kernelRegion{group: d.Group, role: d.Role, pos: c.Pos(), stmts: fd.Body.List})
		}
	}

	// Region form: begin/end markers inside statement lists.
	var markers []kernelMarker
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, err := ParseKernelComment(c.Text)
			if err != nil {
				continue
			}
			if !d.Region {
				if !inDoc[c] {
					pass.Reportf(c.Pos(), "whole-function vmt:kernel directive must be a function's doc comment (use \"begin\"/\"end\" inside a body)")
				}
				continue
			}
			markers = append(markers, kernelMarker{dir: d, pos: c.Pos()})
		}
	}
	if len(markers) == 0 {
		return regions
	}
	claimed := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		var open, close token.Pos
		switch t := n.(type) {
		case *ast.BlockStmt:
			list, open, close = t.List, t.Lbrace, t.Rbrace
		case *ast.CaseClause:
			list, open, close = t.Body, t.Colon, t.End()
		case *ast.CommClause:
			list, open, close = t.Body, t.Colon, t.End()
		default:
			return true
		}
		regions = append(regions, regionsInList(pass, markers, claimed, list, open, close)...)
		return true
	})
	for i, m := range markers {
		if !claimed[i] {
			pass.Reportf(m.pos, "vmt:kernel marker outside any function body")
		}
	}
	return regions
}

type kernelMarker struct {
	dir KernelDirective
	pos token.Pos
}

// regionsInList pairs begin/end markers that sit at this statement
// list's own level (not inside one of its statements) and slices out
// the statements between each pair.
func regionsInList(pass *Pass, markers []kernelMarker, claimed map[int]bool, list []ast.Stmt, open, close token.Pos) []kernelRegion {
	atLevel := func(pos token.Pos) bool {
		if pos <= open || pos >= close {
			return false
		}
		for _, s := range list {
			if pos >= s.Pos() && pos < s.End() {
				return false
			}
		}
		return true
	}
	var regions []kernelRegion
	openIdx := -1
	for i, m := range markers {
		if !atLevel(m.pos) {
			continue
		}
		claimed[i] = true
		switch {
		case m.dir.End && openIdx < 0:
			pass.Reportf(m.pos, "vmt:kernel end without a matching begin in this block")
		case m.dir.End:
			begin := markers[openIdx]
			var stmts []ast.Stmt
			for _, s := range list {
				if s.Pos() > begin.pos && s.End() <= m.pos {
					stmts = append(stmts, s)
				}
			}
			if len(stmts) == 0 {
				pass.Reportf(begin.pos, "empty vmt:kernel region for group %q", begin.dir.Group)
			} else {
				regions = append(regions, kernelRegion{group: begin.dir.Group, role: begin.dir.Role, pos: begin.pos, stmts: stmts})
			}
			openIdx = -1
		case openIdx >= 0:
			pass.Reportf(m.pos, "vmt:kernel begin for group %q while group %q is still open (regions cannot nest in one block)", m.dir.Group, markers[openIdx].dir.Group)
		default:
			openIdx = i
		}
	}
	if openIdx >= 0 {
		pass.Reportf(markers[openIdx].pos, "unterminated vmt:kernel begin for group %q", markers[openIdx].dir.Group)
	}
	return regions
}

// checkKernelGroup validates one group's oracle/mirror structure and
// compares every mirror against the oracle.
func checkKernelGroup(pass *Pass, name string, regions []kernelRegion) {
	var oracle *kernelRegion
	var mirrors []kernelRegion
	for i := range regions {
		r := regions[i]
		if r.role == kernelRoleOracle {
			if oracle != nil {
				pass.Reportf(r.pos, "duplicate oracle for kernel group %q (first at %s)", name, pass.Pkg.Fset.Position(oracle.pos))
				continue
			}
			oracle = &regions[i]
		} else {
			mirrors = append(mirrors, r)
		}
	}
	if oracle == nil {
		for _, m := range mirrors {
			pass.Reportf(m.pos, "kernel group %q has no oracle in this package (groups are package-local)", name)
		}
		return
	}
	if len(mirrors) == 0 {
		pass.Reportf(oracle.pos, "kernel group %q has no mirror; nothing to verify against the oracle", name)
		return
	}
	oracleToks, err := serializeKernel(pass.Pkg, oracle.stmts)
	if err != nil {
		pass.Reportf(err.pos, "kernel group %q oracle: %s (mirrors unverified)", name, err.msg)
		return
	}
	for _, m := range mirrors {
		mirrorToks, err := serializeKernel(pass.Pkg, m.stmts)
		if err != nil {
			pass.Reportf(err.pos, "kernel group %q mirror: %s", name, err.msg)
			continue
		}
		compareKernel(pass, name, oracleToks, mirrorToks, m.pos)
	}
}

// compareKernel reports the first divergent token between a mirror and
// its oracle, at the mirror's exact node position.
func compareKernel(pass *Pass, name string, oracle, mirror []kpTok, mirrorPos token.Pos) {
	n := len(oracle)
	if len(mirror) < n {
		n = len(mirror)
	}
	for i := 0; i < n; i++ {
		if oracle[i].text != mirror[i].text {
			pass.Reportf(mirror[i].pos,
				"kernel group %q diverges from oracle: %s here, %s in the oracle (at %s)",
				name, kpQuote(mirror[i].text), kpQuote(oracle[i].text), pass.Pkg.Fset.Position(oracle[i].pos))
			return
		}
	}
	switch {
	case len(mirror) < len(oracle):
		pass.Reportf(mirrorPos,
			"kernel group %q mirror ends before the oracle: oracle continues with %s (at %s)",
			name, kpQuote(oracle[n].text), pass.Pkg.Fset.Position(oracle[n].pos))
	case len(mirror) > len(oracle):
		pass.Reportf(mirror[n].pos,
			"kernel group %q mirror continues past the oracle's end with %s",
			name, kpQuote(mirror[n].text))
	}
}

func kpQuote(tok string) string { return fmt.Sprintf("%q", tok) }

// kpTok is one token of a serialized kernel region: canonical text
// plus the source position it came from.
type kpTok struct {
	text string
	pos  token.Pos
}

type kpError struct {
	msg string
	pos token.Pos
}

// kpSerializer flattens a statement list into a canonical token
// stream. Variables (scalar `airC` or slot `airV[j]`) become "v%d"
// atoms numbered by first use; everything else serializes by exact
// structure.
type kpSerializer struct {
	pkg     *Package
	toks    []kpTok
	atoms   map[types.Object]string
	laneIdx types.Object
	err     *kpError
}

func serializeKernel(pkg *Package, stmts []ast.Stmt) ([]kpTok, *kpError) {
	s := &kpSerializer{pkg: pkg, atoms: map[types.Object]string{}}
	for _, st := range stmts {
		s.stmt(st)
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.toks, nil
}

func (s *kpSerializer) emit(text string, pos token.Pos) {
	if s.err == nil {
		s.toks = append(s.toks, kpTok{text: text, pos: pos})
	}
}

func (s *kpSerializer) fail(pos token.Pos, format string, args ...any) {
	if s.err == nil {
		s.err = &kpError{msg: fmt.Sprintf(format, args...), pos: pos}
	}
}

func (s *kpSerializer) objOf(id *ast.Ident) types.Object {
	if obj := s.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return s.pkg.Info.Defs[id]
}

// atom returns the canonical name of a variable slot, allocating the
// next "v%d" on first use.
func (s *kpSerializer) atom(obj types.Object) string {
	if name, ok := s.atoms[obj]; ok {
		return name
	}
	name := fmt.Sprintf("v%d", len(s.atoms)+1)
	s.atoms[obj] = name
	return name
}

func (s *kpSerializer) stmt(st ast.Stmt) {
	if s.err != nil {
		return
	}
	switch t := st.(type) {
	case *ast.AssignStmt:
		s.assign(t)
	case *ast.IncDecStmt:
		// x++ desugars to x = (x + 1).
		s.expr(t.X)
		s.emit("=", t.TokPos)
		s.emit("(", t.TokPos)
		s.expr(t.X)
		if t.Tok == token.INC {
			s.emit("+", t.TokPos)
		} else {
			s.emit("-", t.TokPos)
		}
		s.emit("INT:1", t.TokPos)
		s.emit(")", t.TokPos)
	case *ast.ExprStmt:
		s.expr(t.X)
	case *ast.BlockStmt:
		s.emit("{", t.Lbrace)
		for _, inner := range t.List {
			s.stmt(inner)
		}
		s.emit("}", t.Rbrace)
	case *ast.IfStmt:
		s.emit("if", t.If)
		if t.Init != nil {
			s.stmt(t.Init)
			s.emit(";", t.If)
		}
		s.expr(t.Cond)
		s.stmt(t.Body)
		if t.Else != nil {
			s.emit("else", t.Body.End())
			s.stmt(t.Else)
		}
	case *ast.SwitchStmt:
		s.emit("switch", t.Switch)
		if t.Init != nil {
			s.stmt(t.Init)
			s.emit(";", t.Switch)
		}
		if t.Tag != nil {
			s.expr(t.Tag)
		}
		s.stmt(t.Body)
	case *ast.CaseClause:
		if t.List == nil {
			s.emit("default", t.Case)
		} else {
			s.emit("case", t.Case)
			for i, e := range t.List {
				if i > 0 {
					s.emit(",", e.Pos())
				}
				s.expr(e)
			}
		}
		s.emit(":", t.Colon)
		for _, inner := range t.Body {
			s.stmt(inner)
		}
	case *ast.ForStmt:
		s.emit("for", t.For)
		if t.Init != nil {
			s.stmt(t.Init)
		}
		s.emit(";", t.For)
		if t.Cond != nil {
			s.expr(t.Cond)
		}
		s.emit(";", t.For)
		if t.Post != nil {
			s.stmt(t.Post)
		}
		s.stmt(t.Body)
	case *ast.RangeStmt:
		s.emit("for", t.For)
		if t.Key != nil {
			s.expr(t.Key)
			if t.Value != nil {
				s.emit(",", t.Value.Pos())
				s.expr(t.Value)
			}
			s.emit("=", t.TokPos) // := normalizes to =
		}
		s.emit("range", t.Range)
		s.expr(t.X)
		s.stmt(t.Body)
	case *ast.ReturnStmt:
		s.emit("return", t.Return)
		for i, e := range t.Results {
			if i > 0 {
				s.emit(",", e.Pos())
			}
			s.expr(e)
		}
	case *ast.BranchStmt:
		s.emit(t.Tok.String(), t.TokPos)
		if t.Label != nil {
			s.emit(t.Label.Name, t.Label.Pos())
		}
	default:
		s.fail(st.Pos(), "unsupported statement %T in kernel region", st)
	}
}

// assign serializes assignments with := and op= desugared: `x += e`
// and `x = x + e` produce identical streams, so sugar choices cannot
// mask a real difference.
func (s *kpSerializer) assign(t *ast.AssignStmt) {
	if t.Tok == token.ASSIGN || t.Tok == token.DEFINE {
		for i, e := range t.Lhs {
			if i > 0 {
				s.emit(",", e.Pos())
			}
			s.expr(e)
		}
		s.emit("=", t.TokPos)
		for i, e := range t.Rhs {
			if i > 0 {
				s.emit(",", e.Pos())
			}
			s.expr(e)
		}
		return
	}
	if len(t.Lhs) != 1 || len(t.Rhs) != 1 {
		s.fail(t.Pos(), "unsupported %s with %d targets in kernel region", t.Tok, len(t.Lhs))
		return
	}
	op, ok := kpAssignOps[t.Tok]
	if !ok {
		s.fail(t.Pos(), "unsupported assignment operator %s in kernel region", t.Tok)
		return
	}
	s.expr(t.Lhs[0])
	s.emit("=", t.TokPos)
	s.emit("(", t.TokPos)
	s.expr(t.Lhs[0])
	s.emit(op, t.TokPos)
	s.expr(t.Rhs[0])
	s.emit(")", t.TokPos)
}

var kpAssignOps = map[token.Token]string{
	token.ADD_ASSIGN: "+",
	token.SUB_ASSIGN: "-",
	token.MUL_ASSIGN: "*",
	token.QUO_ASSIGN: "/",
	token.REM_ASSIGN: "%",
}

func (s *kpSerializer) expr(e ast.Expr) {
	if s.err != nil {
		return
	}
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		s.ident(t)
	case *ast.BasicLit:
		s.emit(t.Kind.String()+":"+t.Value, t.Pos())
	case *ast.BinaryExpr:
		s.emit("(", t.Pos())
		s.expr(t.X)
		s.emit(t.Op.String(), t.OpPos)
		s.expr(t.Y)
		s.emit(")", t.Pos())
	case *ast.UnaryExpr:
		s.emit("(", t.Pos())
		s.emit(t.Op.String(), t.OpPos)
		s.expr(t.X)
		s.emit(")", t.Pos())
	case *ast.IndexExpr:
		s.index(t)
	case *ast.SelectorExpr:
		s.selector(t)
	case *ast.CallExpr:
		s.call(t)
	default:
		s.fail(e.Pos(), "unsupported expression %T in kernel region", e)
	}
}

func (s *kpSerializer) ident(t *ast.Ident) {
	obj := s.objOf(t)
	switch o := obj.(type) {
	case *types.Var:
		s.emit(s.atom(o), t.Pos())
	case *types.Const:
		s.emit("const:"+o.Val().ExactString(), t.Pos())
	case *types.Func:
		s.emit(o.FullName(), t.Pos())
	case *types.TypeName:
		s.emit(types.TypeString(o.Type(), nil), t.Pos())
	case *types.Builtin:
		s.emit(o.Name(), t.Pos())
	case nil:
		s.emit(t.Name, t.Pos()) // blank identifier
	default:
		s.fail(t.Pos(), "unsupported identifier kind %T in kernel region", obj)
	}
}

// index serializes var[lane] slot expressions as the same canonical
// atom a plain scalar variable gets — the heart of the scalar↔SoA
// comparison. Only one lane-index variable may appear in a region.
func (s *kpSerializer) index(t *ast.IndexExpr) {
	baseID, ok := ast.Unparen(t.X).(*ast.Ident)
	if ok {
		base, bok := s.objOf(baseID).(*types.Var)
		idxID, iok := ast.Unparen(t.Index).(*ast.Ident)
		if bok && iok {
			if idx, ok := s.objOf(idxID).(*types.Var); ok {
				if s.laneIdx == nil {
					s.laneIdx = idx
				}
				if s.laneIdx != idx {
					s.fail(t.Index.Pos(), "kernel region uses a second lane index %q (already using %q); slots may not cross lanes", idxID.Name, s.laneIdx.Name())
					return
				}
				s.emit(s.atom(base), t.Pos())
				return
			}
		}
	}
	s.expr(t.X)
	s.emit("[", t.Lbrack)
	s.expr(t.Index)
	s.emit("]", t.Rbrack)
}

func (s *kpSerializer) selector(t *ast.SelectorExpr) {
	if id, ok := t.X.(*ast.Ident); ok {
		if _, isPkg := s.pkg.Info.Uses[id].(*types.PkgName); isPkg {
			obj := s.pkg.Info.Uses[t.Sel]
			if c, ok := obj.(*types.Const); ok {
				s.emit("const:"+c.Val().ExactString(), t.Pos())
				return
			}
			if obj != nil && obj.Pkg() != nil {
				s.emit(obj.Pkg().Path()+"."+obj.Name(), t.Pos())
				return
			}
		}
	}
	s.expr(t.X)
	s.emit(".", t.Sel.Pos())
	s.emit(t.Sel.Name, t.Sel.Pos())
}

func (s *kpSerializer) call(t *ast.CallExpr) {
	if t.Ellipsis != token.NoPos {
		s.fail(t.Pos(), "unsupported variadic call in kernel region")
		return
	}
	fun := ast.Unparen(t.Fun)
	if tv, ok := s.pkg.Info.Types[fun]; ok && tv.IsType() {
		s.emit(types.TypeString(tv.Type, nil), fun.Pos())
	} else {
		s.expr(fun)
	}
	s.emit("(", t.Lparen)
	for i, a := range t.Args {
		if i > 0 {
			s.emit(",", a.Pos())
		}
		s.expr(a)
	}
	s.emit(")", t.Rparen)
}

// String renders a token stream for debugging.
func kpTokens(toks []kpTok) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.text
	}
	return strings.Join(parts, " ")
}
