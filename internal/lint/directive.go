package lint

// Annotation syntax. Alongside the //vmtlint: suppression namespace,
// the analyzers read a //vmt: namespace of positive annotations:
//
//	//vmt:hotpath
//	    On a function's doc comment: the function body must be free of
//	    alloc-prone constructs (the hotpath analyzer's contract).
//
//	//vmt:kernel <group> <oracle|mirror>
//	    On a function's doc comment: the whole body is a kernel region
//	    of <group>.
//
//	//vmt:kernel <group> <oracle|mirror> begin
//	//vmt:kernel end
//	    Inside a function body: the statements between the two markers
//	    (within one block) form a kernel region of <group>.
//
// Every group must have exactly one oracle; every mirror must be
// structurally equivalent to it under the kernelparity analyzer's
// name-normalizing comparison.
//
// Like the suppression grammar, the annotation grammar is strict and
// typo-hostile: a malformed //vmt: comment is a diagnostic from the
// always-on, unsuppressable "allow" pseudo-analyzer, so a misspelled
// role can never silently drop a function out of the discipline it
// claims.

import (
	"errors"
	"fmt"
	"strings"
)

const vmtMarker = "vmt:"

// kernelRoleOracle and kernelRoleMirror are the two kernel roles.
const (
	kernelRoleOracle = "oracle"
	kernelRoleMirror = "mirror"
)

// KernelDirective is one parsed //vmt:kernel comment.
type KernelDirective struct {
	// Group names the kernel family ("substep"). Empty for end markers.
	Group string
	// Role is "oracle" or "mirror". Empty for end markers.
	Role string
	// Region is true for begin/end marker forms (a statement region
	// inside a body), false for the whole-function doc-comment form.
	Region bool
	// End is true for the closing "//vmt:kernel end" marker.
	End bool
}

// vmtBody extracts the directive body of a raw comment: the text after
// the "vmt:" marker. ok is false for comments that are not //vmt:
// directives at all. A block comment or a space before the marker is
// directive material with a syntax error, mirroring ParseAllowComment.
func vmtBody(raw string) (body string, ok bool, err error) {
	var inner string
	var block bool
	switch {
	case strings.HasPrefix(raw, "//"):
		inner = raw[2:]
	case strings.HasPrefix(raw, "/*"):
		inner = strings.TrimSuffix(raw[2:], "*/")
		block = true
	default:
		return "", false, nil
	}
	trimmed := strings.TrimSpace(inner)
	if !strings.HasPrefix(trimmed, vmtMarker) {
		return "", false, nil
	}
	if block {
		return "", true, fmt.Errorf("vmt directive must be a line comment (//%s...), not a block comment", vmtMarker)
	}
	if !strings.HasPrefix(inner, vmtMarker) {
		return "", true, fmt.Errorf("malformed vmt directive: no space allowed between // and %q", vmtMarker)
	}
	return strings.TrimPrefix(inner, vmtMarker), true, nil
}

// vmtVerb splits a directive body into its verb and the remainder.
func vmtVerb(body string) (verb, rest string) {
	verb = body
	if i := strings.IndexFunc(body, isSpace); i >= 0 {
		verb, rest = body[:i], body[i:]
	}
	return verb, rest
}

// ParseHotpathComment parses one raw comment as a //vmt:hotpath
// directive. nil means the comment is a well-formed hotpath
// annotation; ErrNotDirective means it is an ordinary comment or some
// other //vmt: verb; any other error describes a malformed hotpath
// directive.
func ParseHotpathComment(raw string) error {
	body, ok, err := vmtBody(raw)
	if !ok {
		return ErrNotDirective
	}
	if err != nil {
		return err
	}
	verb, rest := vmtVerb(body)
	if verb != "hotpath" {
		return ErrNotDirective
	}
	if strings.TrimSpace(rest) != "" {
		return fmt.Errorf("vmt:hotpath takes no arguments (got %q); the annotation is the whole contract", strings.TrimSpace(rest))
	}
	return nil
}

// ParseKernelComment parses one raw comment as a //vmt:kernel
// directive. ErrNotDirective means the comment is ordinary or some
// other //vmt: verb; any other error describes a malformed kernel
// directive.
func ParseKernelComment(raw string) (KernelDirective, error) {
	body, ok, err := vmtBody(raw)
	if !ok {
		return KernelDirective{}, ErrNotDirective
	}
	if err != nil {
		return KernelDirective{}, err
	}
	verb, rest := vmtVerb(body)
	if verb != "kernel" {
		return KernelDirective{}, ErrNotDirective
	}
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return KernelDirective{}, fmt.Errorf("vmt:kernel needs arguments: \"<group> <oracle|mirror> [begin]\" or \"end\"")
	case len(fields) == 1 && fields[0] == "end":
		return KernelDirective{Region: true, End: true}, nil
	case len(fields) == 1:
		return KernelDirective{}, fmt.Errorf("vmt:kernel %s is missing a role (oracle or mirror)", fields[0])
	}
	group, role := fields[0], fields[1]
	if group == "end" {
		return KernelDirective{}, fmt.Errorf("vmt:kernel group may not be named %q (reserved for the end marker)", "end")
	}
	if !validKernelGroup(group) {
		return KernelDirective{}, fmt.Errorf("vmt:kernel group %q must be letters, digits, '_' or '-'", group)
	}
	if role != kernelRoleOracle && role != kernelRoleMirror {
		return KernelDirective{}, fmt.Errorf("vmt:kernel %s has unknown role %q (want oracle or mirror)", group, role)
	}
	switch {
	case len(fields) == 2:
		return KernelDirective{Group: group, Role: role}, nil
	case len(fields) == 3 && fields[2] == "begin":
		return KernelDirective{Group: group, Role: role, Region: true}, nil
	default:
		return KernelDirective{}, fmt.Errorf("vmt:kernel %s %s: trailing %q (only \"begin\" may follow the role)", group, role, strings.Join(fields[2:], " "))
	}
}

func validKernelGroup(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return s != ""
}

// collectVmtDiags scans a package's comments for malformed //vmt:
// directives — including unknown verbs, so a typo can never silently
// drop an annotation. Well-formed directives produce nothing here;
// the analyzers that consume them do their own semantic validation.
func collectVmtDiags(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				body, ok, err := vmtBody(c.Text)
				var msg string
				switch {
				case !ok:
					continue
				case err != nil:
					msg = err.Error()
				default:
					verb, _ := vmtVerb(body)
					switch verb {
					case "hotpath":
						if herr := ParseHotpathComment(c.Text); herr != nil && !errors.Is(herr, ErrNotDirective) {
							msg = herr.Error()
						}
					case "kernel":
						if _, kerr := ParseKernelComment(c.Text); kerr != nil && !errors.Is(kerr, ErrNotDirective) {
							msg = kerr.Error()
						}
					default:
						msg = fmt.Sprintf("unknown vmt directive %q (hotpath and kernel exist)", verb)
					}
				}
				if msg == "" {
					continue
				}
				diags = append(diags, Diagnostic{
					Position: pkg.Fset.Position(c.Pos()),
					Analyzer: AllowAnalyzerName,
					Message:  msg,
				})
			}
		}
	}
	return diags
}
