package lint

// The annotated-fixture harness: a testdata package declares its
// expected diagnostics inline with `// want "regexp"` comments (or
// `/* want "regexp" */` where the line's trailing position is taken by
// a directive under test), and lintFixture diffs the analyzer's actual
// output against them. Every diagnostic must match a want on its line
// and every want must be consumed — so a fixture pins both the
// positives and the negatives of an analyzer.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// testLoader returns a loader rooted at this repo's module, shared per
// test via t.Cleanup-free memoization (loaders are cheap; a fresh one
// per call keeps tests independent).
func testLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

// loadFixture type-checks testdata/src/<name> as a standalone package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader := testLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

// lintFixture runs the analyzers over a fixture and diffs diagnostics
// against its want comments.
func lintFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	diffWants(t, pkg, RunUnscoped(pkg, analyzers))
}

// lintFixtureStrict is lintFixture with unused-allow detection on.
func lintFixtureStrict(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	diffWants(t, pkg, RunUnscopedStrict(pkg, analyzers))
}

type wantExpectation struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

// diffWants checks diagnostics against the package's want comments.
func diffWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Position.Filename] {
			if !w.matched && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.re)
			}
		}
	}
}

// parseWants extracts `want "regexp"...` comments, keyed by file.
func parseWants(t *testing.T, pkg *Package) map[string][]*wantExpectation {
	t.Helper()
	wants := map[string][]*wantExpectation{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				body := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(c.Text, "/*") {
					body = strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				}
				body = strings.TrimSpace(body)
				rest, ok := strings.CutPrefix(body, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					rest = rest[len(q):]
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants[pos.Filename] = append(wants[pos.Filename], &wantExpectation{
						re:   regexp.MustCompile(pattern),
						line: pos.Line,
					})
				}
			}
		}
	}
	return wants
}

// fixtureSource reads one file of a fixture for mutation-based tests.
func fixtureSource(t *testing.T, name, file string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", name, file))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
