package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand forbids wall-clock and ambient-entropy sources inside the
// simulation-critical packages. A Config must bit-identically determine
// a Run; `time.Now` in the sim clock or global `math/rand` in a policy
// breaks that silently — results drift between invocations without a
// single test failing until a golden fixture happens to notice.
// Randomness must come from the seeded, deterministic
// internal/stats.RNG; wall-clock readings are legitimate only in
// observational code (telemetry tracers, progress lines), which earns
// an explicit //vmtlint:allow with its justification.
//
// The check is interprocedural: entropy roots (time.Now/Since/Until,
// os.Getenv, anything in math/rand, math/rand/v2, or crypto/rand)
// taint every function and function-typed variable/field that
// transitively reaches them, across the whole module. A helper in an
// unscoped package (say telemetry) that reads the wall clock is
// diagnosed at its call site inside a scoped package, with the call
// chain in the message. Tainted helpers declared inside the scoped
// packages themselves are not re-reported at call sites — their bodies
// already carry the direct diagnostic (or its allow).
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbids time.Now/Since/Until, os.Getenv and math|crypto/rand — direct or " +
		"transitively reached through module helpers, method values, and function-typed " +
		"fields — in simulation-critical packages (root study code, " +
		"internal/{sim,cluster,pcm,thermal,sched,fault}); " +
		"use the seeded internal/stats RNG and simulation time instead",
	Scope: detrandScope,
	Run:   runDetrand,
}

var detrandScope = scopeSet("vmt",
	"vmt/internal/sim",
	"vmt/internal/cluster",
	"vmt/internal/pcm",
	"vmt/internal/thermal",
	"vmt/internal/sched",
	"vmt/internal/fault",
)

// detrandImports are entropy sources that have no place in
// deterministic simulation code, even transitively.
var detrandImports = map[string]string{
	"math/rand":    "global, unseeded-by-default PRNG",
	"math/rand/v2": "global, unseeded-by-default PRNG",
	"crypto/rand":  "ambient entropy",
}

// detrandTimeFuncs are the package-level time functions that read the
// wall clock.
var detrandTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(pass *Pass) {
	var tainted map[types.Object]*taintTrace
	if l := pass.Pkg.loader; l != nil {
		tainted = l.modInfo().taintFor(pass.Pkg)
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, ok := detrandImports[path]; ok {
				pass.Reportf(imp.Pos(),
					"import %q (%s) in deterministic simulation code; use the seeded internal/stats RNG",
					path, why)
			}
		}
		lhs := assignTargets(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := t.X.(*ast.Ident); ok {
					if pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
						reportQualifiedRef(pass, t, pkgName.Imported().Path())
						// A qualified reference to a tainted helper in
						// another module package (dep.Stamp) is the
						// transitive case; stdlib members are never in
						// the taint map, so this cannot double-report
						// the direct diagnostics above.
						reportTaintedRef(pass, t.Sel, lhs, tainted)
						return false
					}
				}
			case *ast.Ident:
				reportTaintedRef(pass, t, lhs, tainted)
			}
			return true
		})
	}
}

// reportQualifiedRef handles a package-qualified selector (pkg.Name).
// The rand packages are covered by the import ban, so their members are
// not re-reported here.
func reportQualifiedRef(pass *Pass, sel *ast.SelectorExpr, pkgPath string) {
	switch pkgPath {
	case "time":
		if detrandTimeFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in deterministic simulation code; derive timing from simulation time",
				sel.Sel.Name)
		}
	case "os":
		if sel.Sel.Name == "Getenv" {
			pass.Reportf(sel.Pos(),
				"os.Getenv reads the ambient environment in deterministic simulation code; plumb settings through Config fields")
		}
	}
}

// reportTaintedRef diagnoses a use of an entropy-tainted object: a
// function declared outside the scoped packages, a method value, or a
// function-typed variable/field assigned from a tainted function.
func reportTaintedRef(pass *Pass, id *ast.Ident, lhs map[*ast.Ident]bool, tainted map[types.Object]*taintTrace) {
	if lhs[id] {
		return
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil || tainted[obj] == nil {
		return
	}
	// A tainted function declared in the analyzed package or any other
	// scoped package already carries a diagnostic (or its allow) on the
	// entropy use inside its body; re-reporting every call site would
	// just cascade the same finding.
	if _, isFunc := obj.(*types.Func); isFunc && obj.Pkg() != nil {
		declPath := obj.Pkg().Path()
		if declPath == pass.Pkg.Path || detrandScope(declPath) {
			return
		}
	}
	tr := tainted[obj]
	pass.Reportf(id.Pos(),
		"%s transitively reaches %s in deterministic simulation code (%s); derive timing and randomness from simulation state",
		objName(obj), tr.root, taintChain(obj, tainted))
}

// assignTargets collects the identifiers a file assigns into (plain
// assignments, var specs, composite-literal keys). The taint walk skips
// them: the assignment that *introduces* taint is diagnosed through its
// right-hand side, not by flagging its own target.
func assignTargets(f *ast.File) map[*ast.Ident]bool {
	targets := map[*ast.Ident]bool{}
	add := func(e ast.Expr) {
		switch t := e.(type) {
		case *ast.Ident:
			targets[t] = true
		case *ast.SelectorExpr:
			targets[t.Sel] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, e := range t.Lhs {
				add(e)
			}
		case *ast.CompositeLit:
			for _, elt := range t.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					add(kv.Key)
				}
			}
		}
		return true
	})
	return targets
}
