package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand forbids wall-clock and ambient-entropy sources inside the
// simulation-critical packages. A Config must bit-identically determine
// a Run; `time.Now` in the sim clock or global `math/rand` in a policy
// breaks that silently — results drift between invocations without a
// single test failing until a golden fixture happens to notice.
// Randomness must come from the seeded, deterministic
// internal/stats.RNG; wall-clock readings are legitimate only in
// observational code (telemetry tracers, progress lines), which earns
// an explicit //vmtlint:allow with its justification.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbids time.Now/Since/Until and math|crypto/rand imports in " +
		"simulation-critical packages (root study code, internal/{sim,cluster,pcm,thermal,sched,fault}); " +
		"use the seeded internal/stats RNG and simulation time instead",
	Scope: scopeSet("vmt",
		"vmt/internal/sim",
		"vmt/internal/cluster",
		"vmt/internal/pcm",
		"vmt/internal/thermal",
		"vmt/internal/sched",
		"vmt/internal/fault",
	),
	Run: runDetrand,
}

// detrandImports are entropy sources that have no place in
// deterministic simulation code, even transitively.
var detrandImports = map[string]string{
	"math/rand":    "global, unseeded-by-default PRNG",
	"math/rand/v2": "global, unseeded-by-default PRNG",
	"crypto/rand":  "ambient entropy",
}

// detrandTimeFuncs are the package-level time functions that read the
// wall clock.
var detrandTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, ok := detrandImports[path]; ok {
				pass.Reportf(imp.Pos(),
					"import %q (%s) in deterministic simulation code; use the seeded internal/stats RNG",
					path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !detrandTimeFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in deterministic simulation code; derive timing from simulation time",
				sel.Sel.Name)
			return true
		})
	}
}
