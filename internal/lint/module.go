package lint

// Module-wide semantic facts. The per-package analyzers of PR 4–7 saw
// one type-checked package at a time; the interprocedural checks
// (detrand's taint pass, hotpath's call discipline) need facts about
// the packages a file's identifiers resolve into. moduleInfo hangs off
// the Loader — which already memoizes every package it type-checks,
// including the module-local import closure of whatever is being
// linted — and lazily builds two indexes per loaded package:
//
//   - directive facts: which functions carry //vmt:hotpath, keyed by
//     their types.Object so a thermal call site can ask about a pcm
//     callee;
//   - taint facts: which functions and function-typed variables/fields
//     transitively reach an entropy root (wall clock, PRNG,
//     environment).
//
// Cache soundness: these facts are pure functions of the analyzed
// package's source plus its module-local import closure's sources —
// exactly the closure the diagnostics cache's content hash already
// covers (Keyer.contentHash folds in every dependency's file contents
// recursively), so no new key input is needed.
//
// Known limitation, by design: taint does not flow through function
// parameters or interface dispatch — a helper that *receives* a
// tainted func value is judged at the call site that passed it, where
// the reference to the tainted function is visible and diagnosed.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// moduleInfo is the loader's lazily built cross-package fact store.
type moduleInfo struct {
	l     *Loader
	facts map[*Package]*pkgFacts
	taint map[*Package]map[types.Object]*taintTrace
}

func (l *Loader) modInfo() *moduleInfo {
	if l.mod == nil {
		l.mod = &moduleInfo{
			l:     l,
			facts: map[*Package]*pkgFacts{},
			taint: map[*Package]map[types.Object]*taintTrace{},
		}
	}
	return l.mod
}

// pkgFacts are the per-package ingredients of the module-wide passes.
type pkgFacts struct {
	// hotpath maps a function object to its //vmt:hotpath-annotated
	// declaration.
	hotpath map[types.Object]*ast.FuncDecl
	// funcs lists every function/method declaration with a body, in
	// file order (deterministic fixpoint iteration order).
	funcs []funcFact
	// assigns lists every assignment into a function-typed variable or
	// struct field, in file order. These are the taint edges that cover
	// method values and func-typed fields.
	assigns []assignFact
}

type funcFact struct {
	obj  types.Object
	body *ast.BlockStmt
	pkg  *Package
}

type assignFact struct {
	obj types.Object // the function-typed variable or field assigned
	rhs ast.Expr
	pkg *Package
}

// factsFor builds (memoized) the directive and call-graph facts of one
// loaded package.
func (m *moduleInfo) factsFor(pkg *Package) *pkgFacts {
	if f, ok := m.facts[pkg]; ok {
		return f
	}
	f := &pkgFacts{hotpath: map[types.Object]*ast.FuncDecl{}}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if fd.Body != nil {
				f.funcs = append(f.funcs, funcFact{obj: obj, body: fd.Body, pkg: pkg})
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if ParseHotpathComment(c.Text) == nil {
						f.hotpath[obj] = fd
					}
				}
			}
		}
		collectAssignFacts(pkg, file, f)
	}
	m.facts[pkg] = f
	return f
}

// collectAssignFacts records every assignment whose target is a
// function-typed variable or struct field: plain assignments,
// short declarations, var specs, and keyed struct literals.
func collectAssignFacts(pkg *Package, file *ast.File, f *pkgFacts) {
	addTarget := func(lhs ast.Expr, rhs ast.Expr) {
		var obj types.Object
		switch t := lhs.(type) {
		case *ast.Ident:
			obj = pkg.Info.Defs[t]
			if obj == nil {
				obj = pkg.Info.Uses[t]
			}
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[t.Sel]
		}
		if obj == nil || rhs == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
			return
		}
		f.assigns = append(f.assigns, assignFact{obj: obj, rhs: rhs, pkg: pkg})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Lhs) == len(t.Rhs) {
				for i := range t.Lhs {
					addTarget(t.Lhs[i], t.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(t.Names) == len(t.Values) {
				for i := range t.Names {
					addTarget(t.Names[i], t.Values[i])
				}
			}
		case *ast.CompositeLit:
			for _, elt := range t.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						addTarget(key, kv.Value)
					}
				}
			}
		}
		return true
	})
}

// hotpathDecl returns the //vmt:hotpath declaration of obj, looking in
// whatever package the loader has for obj's package path.
func (m *moduleInfo) hotpathDecl(obj types.Object) *ast.FuncDecl {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	pkg, ok := m.l.pkgs[obj.Pkg().Path()]
	if !ok {
		return nil
	}
	return m.factsFor(pkg).hotpath[obj]
}

// known reports whether the loader holds (has type-checked) the
// package with the given import path — module packages and loaded
// fixtures alike.
func (m *moduleInfo) known(path string) bool {
	_, ok := m.l.pkgs[path]
	return ok
}

// A taintTrace explains why an object is entropy-tainted: root is the
// entropy source's qualified name, via the next hop toward it (nil
// when the object references the root directly).
type taintTrace struct {
	root string
	via  types.Object
}

// entropyRoot classifies obj as an entropy source, returning its
// qualified name ("time.Now") and whether it is one. The roots are the
// wall clock (time.Now/Since/Until), the environment (os.Getenv), and
// anything at all out of the rand packages.
func entropyRoot(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	switch path {
	case "time":
		if _, ok := obj.(*types.Func); ok && (name == "Now" || name == "Since" || name == "Until") {
			return "time." + name, true
		}
	case "os":
		if name == "Getenv" {
			return "os.Getenv", true
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return path + "." + name, true
	}
	return "", false
}

// taintFor computes (memoized) the entropy-tainted objects reachable
// from pkg: its own declarations plus those of every loader-known
// package in its import closure. The fixpoint propagates taint along
// two edge kinds:
//
//   - a function is tainted when its body references an entropy root
//     or a tainted object (closure literals inside the body count —
//     a nested func() { time.Now() } taints the enclosing function);
//   - a function-typed variable or field is tainted when it is
//     assigned an expression referencing an entropy root or tainted
//     object. Closure-literal bodies are excluded on this edge: the
//     literal's entropy is already diagnosed inside the literal (or
//     taints its enclosing function), and re-propagating it through
//     the variable would double-report every call site.
func (m *moduleInfo) taintFor(pkg *Package) map[types.Object]*taintTrace {
	if t, ok := m.taint[pkg]; ok {
		return t
	}
	closure := m.importClosure(pkg)
	var funcs []funcFact
	var assigns []assignFact
	for _, p := range closure {
		f := m.factsFor(p)
		funcs = append(funcs, f.funcs...)
		assigns = append(assigns, f.assigns...)
	}
	tainted := map[types.Object]*taintTrace{}
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if tainted[fn.obj] != nil {
				continue
			}
			if tr := findTaintedRef(fn.pkg, fn.body, tainted, false); tr != nil {
				tainted[fn.obj] = tr
				changed = true
			}
		}
		for _, as := range assigns {
			if tainted[as.obj] != nil {
				continue
			}
			if tr := findTaintedRef(as.pkg, as.rhs, tainted, true); tr != nil {
				tainted[as.obj] = tr
				changed = true
			}
		}
	}
	m.taint[pkg] = tainted
	return tainted
}

// findTaintedRef walks n for the first identifier resolving to an
// entropy root or an already-tainted object, returning the trace to
// record (nil if none). skipFuncLits excludes closure-literal bodies
// (the variable-assignment edge).
func findTaintedRef(pkg *Package, n ast.Node, tainted map[types.Object]*taintTrace, skipFuncLits bool) *taintTrace {
	var found *taintTrace
	ast.Inspect(n, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		if skipFuncLits {
			if _, ok := node.(*ast.FuncLit); ok {
				return false
			}
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if root, ok := entropyRoot(obj); ok {
			found = &taintTrace{root: root}
			return false
		}
		if tr := tainted[obj]; tr != nil {
			found = &taintTrace{root: tr.root, via: obj}
			return false
		}
		return true
	})
	return found
}

// taintChain renders the path from obj to its entropy root:
// "telemetry.Band.Begin → time.Now".
func taintChain(obj types.Object, tainted map[types.Object]*taintTrace) string {
	var parts []string
	seen := map[types.Object]bool{}
	for obj != nil && !seen[obj] {
		seen[obj] = true
		parts = append(parts, objName(obj))
		tr := tainted[obj]
		if tr == nil {
			break
		}
		if tr.via == nil {
			parts = append(parts, tr.root)
			break
		}
		obj = tr.via
	}
	return strings.Join(parts, " → ")
}

// objName renders an object for diagnostics: package-qualified, with
// the module path stripped to keep messages readable.
func objName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return shortPkgPath(fn.Pkg().Path()) + "." + named.Obj().Name() + "." + fn.Name()
			}
		}
		return shortPkgPath(fn.Pkg().Path()) + "." + fn.Name()
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return shortPkgPath(obj.Pkg().Path()) + "." + obj.Name()
	}
	return obj.Name()
}

// shortPkgPath trims an import path to its last element ("telemetry"
// for "vmt/internal/telemetry") — diagnostics name files anyway, so
// the full path is noise.
func shortPkgPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// importClosure returns pkg plus every loader-known package reachable
// through its imports, deterministically ordered (pkg first, then
// dependencies sorted by path).
func (m *moduleInfo) importClosure(pkg *Package) []*Package {
	seen := map[string]bool{pkg.Path: true}
	var deps []string
	var walk func(p *Package)
	walk = func(p *Package) {
		for _, file := range p.Files {
			for _, imp := range file.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if seen[ip] {
					continue
				}
				seen[ip] = true
				dep, ok := m.l.pkgs[ip]
				if !ok {
					continue
				}
				deps = append(deps, ip)
				walk(dep)
			}
		}
	}
	walk(pkg)
	sort.Strings(deps)
	closure := []*Package{pkg}
	for _, ip := range deps {
		closure = append(closure, m.l.pkgs[ip])
	}
	return closure
}
