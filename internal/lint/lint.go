package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("[detrand]") and in
	// //vmtlint:allow suppressions.
	Name string
	// Doc is a one-paragraph description for `vmtlint -list`.
	Doc string
	// Scope reports whether the analyzer applies to the package with
	// the given import path. nil means every package.
	Scope func(pkgPath string) bool
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(*Pass)
}

// Analyzers is the registry the driver and the //vmtlint:allow
// validator share. Order is presentation order for `vmtlint -list`.
var Analyzers = []*Analyzer{Detrand, MapOrder, FloatEq, FloatKey, CacheKey, Hotpath, KernelParity}

// AllowAnalyzerName is the pseudo-analyzer that owns diagnostics about
// the suppression comments themselves (malformed directive, unknown
// analyzer, missing reason). It is always on and cannot be suppressed.
const AllowAnalyzerName = "allow"

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, formatted as "file:line: [analyzer] message".
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
	// Allowed marks a finding suppressed by a //vmtlint:allow directive.
	// The public Run entry points drop allowed diagnostics; the cache
	// and the -json output keep them so CI can see what was waived.
	Allowed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Position.Filename, d.Position.Line, d.Analyzer, d.Message)
}

// Run applies the analyzers to every package, honoring Scope rules and
// //vmtlint:allow suppressions, and returns the surviving diagnostics
// sorted by file, line, analyzer, and message. Diagnostics about the
// suppression comments themselves are always included.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runAll(pkgs, analyzers, false)
}

// RunStrict is Run plus unused-allow detection: a //vmtlint:allow that
// suppresses nothing — because the code it excused drifted away — is
// itself a diagnostic from the always-on "allow" pseudo-analyzer.
// Detection is scope-aware: an allow naming an analyzer that does not
// run over its package is never reported, since its unusedness was
// never actually tested.
func RunStrict(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runAll(pkgs, analyzers, true)
}

func runAll(pkgs []*Package, analyzers []*Analyzer, strict bool) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, Live(runPackage(pkg, analyzers, true, strict))...)
	}
	sortDiagnostics(all)
	return all
}

// Live filters diagnostics down to the unsuppressed ones.
func Live(diags []Diagnostic) []Diagnostic {
	live := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Allowed {
			live = append(live, d)
		}
	}
	return live
}

// RunUnscoped is Run for a single package with Scope rules ignored —
// the fixture-test entry point, where a testdata package stands in for
// a real one.
func RunUnscoped(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := Live(runPackage(pkg, analyzers, false, false))
	sortDiagnostics(diags)
	return diags
}

// RunUnscopedStrict is RunUnscoped with unused-allow detection, for
// fixtures that pin strict mode's diagnostics.
func RunUnscopedStrict(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := Live(runPackage(pkg, analyzers, false, true))
	sortDiagnostics(diags)
	return diags
}

// runPackage returns every diagnostic of one package, suppressed ones
// included (marked Allowed rather than dropped, so the cache and the
// -json output retain them).
func runPackage(pkg *Package, analyzers []*Analyzer, useScope, strict bool) []Diagnostic {
	allows, diags := collectAllows(pkg)
	diags = append(diags, collectVmtDiags(pkg)...)
	ran := map[string]bool{}
	for _, a := range analyzers {
		if useScope && a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	for i := range diags {
		if diags[i].Analyzer != AllowAnalyzerName && allows.covers(diags[i]) {
			diags[i].Allowed = true
		}
	}
	if strict {
		diags = append(diags, allows.unused(ran)...)
	}
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// scopeSet builds a Scope function matching the module root package
// exactly and each other entry as itself or any subpackage. The root
// must match exactly — a prefix match on "vmt" would swallow the whole
// module.
func scopeSet(root string, prefixes ...string) func(string) bool {
	return func(path string) bool {
		if path == root {
			return true
		}
		for _, p := range prefixes {
			if path == p || len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/' {
				return true
			}
		}
		return false
	}
}
