package qos

import (
	"math"
	"testing"
)

func TestServiceValidate(t *testing.T) {
	if err := WebSearch().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DataCaching().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := WebSearch()
	bad.BaseServiceTimeS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero service time should fail")
	}
	bad = WebSearch()
	bad.CacheSensitivity = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative sensitivity should fail")
	}
	bad = DataCaching()
	bad.NetworkRTTS = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative RTT should fail")
	}
}

func TestMixValidate(t *testing.T) {
	s := WebSearch()
	c := DataCaching()
	if err := (Mix{Primary: s, Cores: 6}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Mix{Primary: s, Cores: 0}).Validate(); err == nil {
		t.Fatal("zero cores should fail")
	}
	if err := (Mix{Primary: s, Cores: 2, Partner: &c, PartnerCores: 0}).Validate(); err == nil {
		t.Fatal("partner without cores should fail")
	}
	if err := (Mix{Primary: s, Cores: 2, Partner: &c, PartnerCores: 4, PartnerUtil: 2}).Validate(); err == nil {
		t.Fatal("bad partner utilization should fail")
	}
}

func TestErlangC(t *testing.T) {
	// Single server: Erlang C equals utilization.
	if got := erlangC(1, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("erlangC(1, 0.5) = %v", got)
	}
	if got := erlangC(4, 0); got != 0 {
		t.Fatalf("zero load should not queue, got %v", got)
	}
	if got := erlangC(2, 2); got != 1 {
		t.Fatalf("saturated should always queue, got %v", got)
	}
	// Known value: c=2, a=1 → ErlangB = 0.2 → ErlangC = 0.2/(1−0.5·0.8) = 1/3.
	if got := erlangC(2, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("erlangC(2,1) = %v, want 1/3", got)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	m := Mix{Primary: DataCaching(), Cores: 6}
	prev := 0.0
	for _, rps := range []float64{10_000, 30_000, 50_000, 60_000} {
		l, err := m.Evaluate(rps)
		if err != nil {
			t.Fatalf("rps %v: %v", rps, err)
		}
		if l.MeanS <= prev {
			t.Fatalf("latency should grow with load at %v rps", rps)
		}
		if l.P90S < l.MeanS {
			t.Fatalf("p90 %v below mean %v", l.P90S, l.MeanS)
		}
		prev = l.MeanS
	}
}

func TestSaturationRejected(t *testing.T) {
	m := Mix{Primary: DataCaching(), Cores: 6}
	if _, err := m.Evaluate(500_000); err == nil {
		t.Fatal("hopeless load should saturate")
	}
	if _, err := m.Evaluate(-1); err == nil {
		t.Fatal("negative load should fail")
	}
}

// Figure 6, search panels: colocation with caching degrades web search
// latency across the entire client range, and the penalty grows with
// the number of caching cores.
func TestSearchColocationAlwaysWorse(t *testing.T) {
	f := PaperFixture()
	pts, err := f.SearchCurves(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range pts {
		solo := pt.Lat["6C"]
		two := pt.Lat["2C+Caching"]
		four := pt.Lat["4C+Caching"]
		if !(two.MeanS > solo.MeanS) || !(four.MeanS > solo.MeanS) {
			t.Fatalf("clients=%v: colocated (%.3f, %.3f) should exceed solo %.3f",
				pt.ClientsPerCore, two.MeanS, four.MeanS, solo.MeanS)
		}
	}
	// The degradation grows with load (compare the ends).
	first := pts[0]
	last := pts[len(pts)-1]
	gapFirst := first.Lat["2C+Caching"].MeanS - first.Lat["6C"].MeanS
	gapLast := last.Lat["2C+Caching"].MeanS - last.Lat["6C"].MeanS
	if gapLast <= gapFirst {
		t.Fatalf("colocation gap should widen with load: %v -> %v", gapFirst, gapLast)
	}
}

// Figure 6, search magnitudes: latencies land in the paper's 0.05–0.5 s
// band across the 10–50 clients/core sweep.
func TestSearchMagnitudes(t *testing.T) {
	f := PaperFixture()
	pts, err := f.SearchCurves(nil)
	if err != nil {
		t.Fatal(err)
	}
	lo := pts[0].Lat["6C"]
	hi := pts[len(pts)-1].Lat["2C+Caching"]
	if lo.MeanS < 0.01 || lo.MeanS > 0.12 {
		t.Fatalf("light-load search mean %v s outside plausible band", lo.MeanS)
	}
	if hi.P90S < 0.2 || hi.P90S > 1.2 {
		t.Fatalf("heavy-load colocated p90 %v s outside plausible band", hi.P90S)
	}
}

// Figure 6, caching panels: at very low load the homogeneous 6-core
// pool wins; in the middle range the mixtures are similar or better;
// at the high end 6C is again at least as good.
func TestCachingMixtureCrossover(t *testing.T) {
	f := PaperFixture()
	pts, err := f.CachingCurves(nil)
	if err != nil {
		t.Fatal(err)
	}
	byRPS := func(r float64) CachingPoint {
		for _, pt := range pts {
			if pt.RPSPerCore == r {
				return pt
			}
		}
		t.Fatalf("missing point %v", r)
		return CachingPoint{}
	}
	low := byRPS(25_000)
	if !(low.Lat["6C"].MeanS <= low.Lat["2C+Search"].MeanS &&
		low.Lat["6C"].MeanS <= low.Lat["4C+Search"].MeanS) {
		t.Fatalf("6C should win at low load: %+v", low.Lat)
	}
	mid := byRPS(45_000)
	bestMix := math.Min(mid.Lat["2C+Search"].MeanS, mid.Lat["4C+Search"].MeanS)
	if bestMix > mid.Lat["6C"].MeanS*1.10 {
		t.Fatalf("mid-range mixture (%.6f) should be similar or better than 6C (%.6f)",
			bestMix, mid.Lat["6C"].MeanS)
	}
	high := byRPS(57_500)
	if high.Lat["6C"].MeanS > math.Min(high.Lat["2C+Search"].MeanS, high.Lat["4C+Search"].MeanS)*1.15 {
		t.Fatalf("6C should be competitive at high load: %+v", high.Lat)
	}
}

func TestCachingCurvesCoverPaperRange(t *testing.T) {
	f := PaperFixture()
	pts, err := f.CachingCurves(nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].RPSPerCore != 25_000 || pts[len(pts)-1].RPSPerCore != 60_000 {
		t.Fatalf("sweep range wrong: %v..%v", pts[0].RPSPerCore, pts[len(pts)-1].RPSPerCore)
	}
	// Every configuration must survive to the top of the published
	// x-range (the paper's curves do not truncate).
	last := pts[len(pts)-1]
	for _, name := range []string{"6C", "2C+Search", "4C+Search"} {
		if _, ok := last.Lat[name]; !ok {
			t.Fatalf("configuration %s saturated before 60k rps/core", name)
		}
	}
}

func TestEvaluateClosedErrors(t *testing.T) {
	m := Mix{Primary: WebSearch(), Cores: 6}
	if _, err := m.EvaluateClosed(0, 1); err == nil {
		t.Fatal("zero clients should fail")
	}
	if _, err := m.EvaluateClosed(10, 0); err == nil {
		t.Fatal("zero think time should fail")
	}
	if _, err := (Mix{Primary: WebSearch(), Cores: 0}).EvaluateClosed(10, 1); err == nil {
		t.Fatal("invalid mix should fail")
	}
}

func TestClosedLoopSelfLimits(t *testing.T) {
	// Even absurd client counts converge (latency grows, throughput
	// pins at capacity) rather than erroring out.
	m := Mix{Primary: WebSearch(), Cores: 6}
	l, err := m.EvaluateClosed(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.MeanS < 1 {
		t.Fatalf("500 clients/core should be deeply saturated, mean=%v", l.MeanS)
	}
}

func TestNeighborServicesValidate(t *testing.T) {
	for _, s := range []Service{VideoEncoding(), Clustering(), VirusScan()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
	}
}

func TestBlend(t *testing.T) {
	b, err := Blend([]Service{DataCaching(), VirusScan()}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (DataCaching().MemoryPressure + VirusScan().MemoryPressure) / 2
	if math.Abs(b.MemoryPressure-want) > 1e-12 {
		t.Fatalf("blend pressure = %v, want %v", b.MemoryPressure, want)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Weighted blend leans toward the heavier weight.
	c, err := Blend([]Service{DataCaching(), VirusScan()}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.MemoryPressure <= b.MemoryPressure {
		t.Fatal("weighting toward caching should raise pressure")
	}
}

func TestBlendErrors(t *testing.T) {
	if _, err := Blend(nil, nil); err == nil {
		t.Fatal("empty blend should fail")
	}
	if _, err := Blend([]Service{DataCaching()}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := Blend([]Service{DataCaching()}, []float64{0}); err == nil {
		t.Fatal("zero weight should fail")
	}
	bad := DataCaching()
	bad.BaseServiceTimeS = 0
	if _, err := Blend([]Service{bad}, []float64{1}); err == nil {
		t.Fatal("invalid service should fail")
	}
}
