// Package qos models the latency of colocated latency-critical
// services (Section IV-C, Figure 6): Web Search and Data Caching
// sharing a multicore CPU on separate physical cores, interfering only
// through the last-level cache and memory bandwidth.
//
// The original figure comes from measurements of CloudSuite on a
// 6-core Xeon E5-2420. We substitute an analytic model that preserves
// the published behaviors:
//
//   - Data Caching: at very low and very high load the homogeneous
//     6-core configuration wins (queueing pool advantage); in the
//     middle range a mixture with Web Search is similar or better,
//     because caching's self-inflicted memory-bandwidth contention
//     exceeds the pressure compute-bound search applies.
//   - Web Search: colocation with caching degrades latency across the
//     whole load range (cache interference grows with load).
//
// Each core pool is an M/M/c queue whose service rate is inflated by
// interference from its own and its partner's memory pressure.
package qos

import (
	"fmt"
	"math"
)

// Service describes one latency-critical workload's queueing and
// interference character.
type Service struct {
	Name string
	// BaseServiceTimeS is the uncontended mean service time of one
	// request on one core.
	BaseServiceTimeS float64
	// MemoryPressure is the memory-bandwidth/LLC pressure one core of
	// this service applies at full load (arbitrary units in [0,1]).
	MemoryPressure float64
	// CacheSensitivity scales how much foreign memory pressure
	// inflates this service's service time.
	CacheSensitivity float64
	// SelfInterference scales how much the service's own aggregate
	// pressure (other cores running the same service) inflates it.
	SelfInterference float64
	// NetworkRTTS is the fixed network/stack time added to every
	// request, outside the CPU queueing model.
	NetworkRTTS float64
}

// WebSearch returns the search-side model: compute bound (low memory
// pressure), very cache sensitive, light self-interference. Load is
// expressed in clients per core; each client issues one outstanding
// request at a time with ~1 s think time, so arrival rate ≈ clients ×
// 1/thinkTime while latency ≪ think time.
func WebSearch() Service {
	return Service{
		Name:             "WebSearch",
		BaseServiceTimeS: 0.025, // 25 ms of core time per query
		MemoryPressure:   0.25,
		CacheSensitivity: 0.45,
		SelfInterference: 0.35,
	}
}

// DataCaching returns the memcached-side model: very short requests,
// heavy memory pressure, strong self-interference (bandwidth bound),
// mild sensitivity to compute-heavy neighbors.
func DataCaching() Service {
	return Service{
		Name:             "DataCaching",
		BaseServiceTimeS: 0.000012, // 12 µs of core time per request
		MemoryPressure:   0.85,
		CacheSensitivity: 0.45,
		SelfInterference: 0.45,
		NetworkRTTS:      0.000050, // 50 µs network/stack floor
	}
}

// Validate reports whether the service definition is usable.
func (s Service) Validate() error {
	if s.BaseServiceTimeS <= 0 {
		return fmt.Errorf("qos: %s: service time must be positive", s.Name)
	}
	if s.MemoryPressure < 0 || s.CacheSensitivity < 0 || s.SelfInterference < 0 {
		return fmt.Errorf("qos: %s: interference factors must be non-negative", s.Name)
	}
	if s.NetworkRTTS < 0 {
		return fmt.Errorf("qos: %s: negative network RTT", s.Name)
	}
	return nil
}

// Mix is a placement of a primary service on a shared CPU.
type Mix struct {
	// Primary runs on Cores cores.
	Primary Service
	Cores   int
	// Partner (optional) occupies PartnerCores at PartnerUtil
	// utilization, contributing foreign memory pressure.
	Partner      *Service
	PartnerCores int
	PartnerUtil  float64
}

// Validate reports whether the mix is well formed.
func (m Mix) Validate() error {
	if err := m.Primary.Validate(); err != nil {
		return err
	}
	if m.Cores <= 0 {
		return fmt.Errorf("qos: need at least one core for %s", m.Primary.Name)
	}
	if m.Partner != nil {
		if err := m.Partner.Validate(); err != nil {
			return err
		}
		if m.PartnerCores <= 0 {
			return fmt.Errorf("qos: partner needs cores")
		}
		if m.PartnerUtil < 0 || m.PartnerUtil > 1 {
			return fmt.Errorf("qos: partner utilization %v out of [0,1]", m.PartnerUtil)
		}
	}
	return nil
}

// serviceTimeS returns the primary's interference-inflated service
// time at the given primary utilization (0..1).
func (m Mix) serviceTimeS(primaryUtil float64) float64 {
	p := m.Primary
	// Own pressure grows with cores actively running the service.
	self := p.SelfInterference * p.MemoryPressure * primaryUtil * float64(m.Cores-1)
	var foreign float64
	if m.Partner != nil {
		foreign = p.CacheSensitivity * m.Partner.MemoryPressure *
			m.PartnerUtil * float64(m.PartnerCores)
	}
	// Normalize pressure per core of a 6-core die so factors are
	// comparable across splits.
	inflate := 1 + (self+foreign)/6
	return p.BaseServiceTimeS * inflate
}

// Latency holds mean and 90th-percentile sojourn times in seconds.
type Latency struct {
	MeanS, P90S float64
}

// Evaluate returns the primary service's latency at the given offered
// load per core (requests per second per core). Loads at or beyond the
// interference-adjusted capacity saturate; Evaluate then returns an
// error, mirroring a dropped-QoS regime.
func (m Mix) Evaluate(loadPerCoreRPS float64) (Latency, error) {
	if err := m.Validate(); err != nil {
		return Latency{}, err
	}
	if loadPerCoreRPS < 0 {
		return Latency{}, fmt.Errorf("qos: negative load")
	}
	lambda := loadPerCoreRPS * float64(m.Cores)
	// Service time depends on utilization, which depends on service
	// time; iterate the fixed point (converges fast: inflation is an
	// affine function of utilization).
	s := m.Primary.BaseServiceTimeS
	for i := 0; i < 50; i++ {
		util := lambda * s / float64(m.Cores)
		if util > 1 {
			util = 1
		}
		next := m.serviceTimeS(util)
		if math.Abs(next-s) < 1e-12 {
			s = next
			break
		}
		s = next
	}
	mu := 1 / s
	c := float64(m.Cores)
	if lambda >= c*mu {
		return Latency{}, fmt.Errorf("qos: %s saturated at %.0f rps/core (capacity %.0f)",
			m.Primary.Name, loadPerCoreRPS, c*mu/c)
	}
	pq := erlangC(m.Cores, lambda/mu)
	waitMean := pq / (c*mu - lambda)
	mean := waitMean + s
	// 90th percentile: P(W > t) = pq·exp(−(cµ−λ)t); service time is
	// exponential with 90th percentile ln(10)·s.
	var wait90 float64
	if pq > 0.1 {
		wait90 = math.Log(pq/0.1) / (c*mu - lambda)
	}
	p90 := wait90 + math.Log(10)*s
	rtt := m.Primary.NetworkRTTS
	return Latency{MeanS: mean + rtt, P90S: p90 + rtt}, nil
}

// erlangC returns the probability an arrival must queue in an M/M/c
// system with offered load a = λ/µ erlangs.
func erlangC(c int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	// Iterative Erlang B, then convert to Erlang C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// VideoEncoding returns the h264 encoder's interference character:
// compute bound with moderate memory traffic; it has no latency SLO of
// its own in these studies and only matters as a neighbor.
func VideoEncoding() Service {
	return Service{
		Name:             "VideoEncoding",
		BaseServiceTimeS: 1, // batch-ish; unused as a primary
		MemoryPressure:   0.40,
		CacheSensitivity: 0.2,
		SelfInterference: 0.2,
	}
}

// Clustering returns the ad-clustering job's interference character:
// compute intensive, streaming access patterns.
func Clustering() Service {
	return Service{
		Name:             "Clustering",
		BaseServiceTimeS: 1,
		MemoryPressure:   0.45,
		CacheSensitivity: 0.2,
		SelfInterference: 0.2,
	}
}

// VirusScan returns the scanner's interference character: light in
// every dimension.
func VirusScan() Service {
	return Service{
		Name:             "VirusScan",
		BaseServiceTimeS: 1,
		MemoryPressure:   0.10,
		CacheSensitivity: 0.1,
		SelfInterference: 0.1,
	}
}

// Blend composes neighbor services into one equivalent partner whose
// memory pressure is the weighted mean — the aggregate pressure a
// primary sees from a mixed set of co-runners. Weights must be
// positive and are normalized.
func Blend(services []Service, weights []float64) (Service, error) {
	if len(services) == 0 || len(services) != len(weights) {
		return Service{}, fmt.Errorf("qos: blend needs matching services and weights")
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return Service{}, fmt.Errorf("qos: blend weight %d must be positive", i)
		}
		if err := services[i].Validate(); err != nil {
			return Service{}, err
		}
		total += w
	}
	out := Service{Name: "blend", BaseServiceTimeS: 1}
	for i, s := range services {
		f := weights[i] / total
		out.MemoryPressure += f * s.MemoryPressure
		out.CacheSensitivity += f * s.CacheSensitivity
		out.SelfInterference += f * s.SelfInterference
	}
	return out, nil
}
