package qos

import "fmt"

// EvaluateClosed returns latency under a closed-loop population of
// clients (Web Search style): clients × cores users, each thinking for
// thinkS seconds between requests. The interactive response time law
// λ = N/(Z+R) is iterated to a fixed point, so the system degrades
// gracefully instead of diverging at saturation.
func (m Mix) EvaluateClosed(clientsPerCore, thinkS float64) (Latency, error) {
	if err := m.Validate(); err != nil {
		return Latency{}, err
	}
	if clientsPerCore <= 0 || thinkS <= 0 {
		return Latency{}, fmt.Errorf("qos: need positive clients and think time")
	}
	n := clientsPerCore * float64(m.Cores)
	// Find the self-consistent response time R: the open model driven
	// at λ = N/(Z+R) must predict response R. The predicted response
	// decreases as the assumed R grows (higher R → lower λ → less
	// queueing), so g(R) = predicted(R) − R is decreasing and a
	// bisection converges; an over-capacity λ counts as g(R) > 0.
	lo, hi := 0.0, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		l, err := m.evalAtLambda(n / (thinkS + mid))
		if err != nil || l.MeanS > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	lat, err := m.evalAtLambda(n / (thinkS + hi))
	if err != nil {
		return Latency{}, fmt.Errorf("qos: closed loop failed to converge: %w", err)
	}
	return lat, nil
}

// evalAtLambda shares the open-loop math with Evaluate.
func (m Mix) evalAtLambda(lambda float64) (Latency, error) {
	return m.Evaluate(lambda / float64(m.Cores))
}

// CachingPoint is one sample of the Figure 6 caching panels.
type CachingPoint struct {
	RPSPerCore float64
	// Lat maps configuration name ("6C", "2C+Search", "4C+Search")
	// to the caching latency; a missing key means that configuration
	// saturated at this load.
	Lat map[string]Latency
}

// SearchPoint is one sample of the Figure 6 search panels.
type SearchPoint struct {
	ClientsPerCore float64
	Lat            map[string]Latency
}

// Fixture pins the paper's colocation operating points: caching fixed
// at 45k RPS per core when sharing with search, search fixed at 37.5
// clients per core when sharing with caching, on a 6-core CPU.
type Fixture struct {
	Caching, Search           Service
	CachingFixedRPSPerCore    float64
	SearchFixedClientsPerCore float64
	SearchThinkS              float64
}

// PaperFixture returns the Section IV-C experiment setup.
func PaperFixture() Fixture {
	return Fixture{
		Caching:                   DataCaching(),
		Search:                    WebSearch(),
		CachingFixedRPSPerCore:    45_000,
		SearchFixedClientsPerCore: 37.5,
		SearchThinkS:              1.0,
	}
}

// searchUtil estimates the utilization search cores run at when fixed
// at the partner operating point (used as foreign pressure).
func (f Fixture) searchUtil() float64 {
	lambdaPerCore := f.SearchFixedClientsPerCore / f.SearchThinkS
	u := lambdaPerCore * f.Search.BaseServiceTimeS
	if u > 1 {
		u = 1
	}
	return u
}

// cachingUtil estimates the utilization caching cores run at when
// fixed at the partner operating point.
func (f Fixture) cachingUtil() float64 {
	u := f.CachingFixedRPSPerCore * f.Caching.BaseServiceTimeS
	if u > 1 {
		u = 1
	}
	return u
}

// CachingCurves sweeps caching load per core across the Figure 6 range
// for the three configurations of the caching panels.
func (f Fixture) CachingCurves(loads []float64) ([]CachingPoint, error) {
	sweep := loads
	if sweep == nil {
		for r := 25_000.0; r <= 60_000; r += 2_500 {
			sweep = append(sweep, r)
		}
	}
	su := f.searchUtil()
	mixes := map[string]Mix{
		"6C":        {Primary: f.Caching, Cores: 6},
		"2C+Search": {Primary: f.Caching, Cores: 2, Partner: &f.Search, PartnerCores: 4, PartnerUtil: su},
		"4C+Search": {Primary: f.Caching, Cores: 4, Partner: &f.Search, PartnerCores: 2, PartnerUtil: su},
	}
	var out []CachingPoint
	for _, rps := range sweep {
		pt := CachingPoint{RPSPerCore: rps, Lat: make(map[string]Latency)}
		for name, m := range mixes {
			l, err := m.Evaluate(rps)
			if err != nil {
				continue // saturated: the curve ends here
			}
			pt.Lat[name] = l
		}
		if len(pt.Lat) == 0 {
			return nil, fmt.Errorf("qos: all caching configurations saturated at %.0f rps/core", rps)
		}
		out = append(out, pt)
	}
	return out, nil
}

// SearchCurves sweeps search clients per core across the Figure 6
// range for the three configurations of the search panels.
func (f Fixture) SearchCurves(clients []float64) ([]SearchPoint, error) {
	sweep := clients
	if sweep == nil {
		for c := 10.0; c <= 50; c += 2.5 {
			sweep = append(sweep, c)
		}
	}
	cu := f.cachingUtil()
	mixes := map[string]Mix{
		"6C":         {Primary: f.Search, Cores: 6},
		"2C+Caching": {Primary: f.Search, Cores: 2, Partner: &f.Caching, PartnerCores: 4, PartnerUtil: cu},
		"4C+Caching": {Primary: f.Search, Cores: 4, Partner: &f.Caching, PartnerCores: 2, PartnerUtil: cu},
	}
	var out []SearchPoint
	for _, c := range sweep {
		pt := SearchPoint{ClientsPerCore: c, Lat: make(map[string]Latency)}
		for name, m := range mixes {
			l, err := m.EvaluateClosed(c, f.SearchThinkS)
			if err != nil {
				return nil, err
			}
			pt.Lat[name] = l
		}
		out = append(out, pt)
	}
	return out, nil
}
