// Package experiment is the declarative experiment engine beneath the
// vmt study facade: a JSON-serializable study specification (a base
// configuration, swept axes, baseline semantics, and a named reducer),
// deterministic grid expansion, and a content-addressed run cache with
// dedup planning.
//
// The package is simulator-agnostic. A Spec describes *which*
// configurations to run as generic settings maps; the root vmt package
// maps settings onto concrete Configs, executes the deduplicated plan
// through its batch runner, and implements the named reducers. That
// split keeps this core testable (and raceable) without running any
// physics, and keeps the spec format decoupled from Go types so
// studies can be loaded from files.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// Reducer names understood by the engine. The implementations live in
// the root package (they read simulation results); the names live here
// so spec validation and documentation have one source of truth.
const (
	// ReducePeakReduction emits one row per grid point: the point's
	// axis labels plus "reduction_pct", its peak cooling-load reduction
	// against the matched baseline.
	ReducePeakReduction = "peak_reduction"
	// ReducePeakReductionMean averages reduction_pct over the MeanOver
	// axes (e.g. seeds), emitting one row per remaining label tuple.
	ReducePeakReductionMean = "peak_reduction_mean"
	// ReducePeakReductionBest maximizes reduction_pct over the BestOver
	// axis (e.g. retuning the GV per swept material), emitting the best
	// value and the winning axis value as "best_<axis>".
	ReducePeakReductionBest = "peak_reduction_best"
)

// KnownReducers lists every reducer name the engine accepts.
func KnownReducers() []string {
	return []string{ReducePeakReduction, ReducePeakReductionMean, ReducePeakReductionBest}
}

// Settings is a bag of named configuration values. Values must stay
// JSON-basic (bool, float64/int, string, []float64/[]any, nested
// map[string]any) so specs round-trip through files; the root package
// owns the key vocabulary and its mapping onto simulator Configs.
type Settings = map[string]any

// Case is one named settings overlay of a bundle axis — e.g. the
// "wa-oracle" variant of an ablation, which flips several knobs at
// once.
type Case struct {
	Name string   `json:"name"`
	Set  Settings `json:"set"`
}

// Axis is one swept dimension: either a scalar axis (Values, applied
// under the axis name as a setting) or a bundle axis (Cases, each a
// named overlay). Exactly one of Values/Cases must be non-empty.
type Axis struct {
	Name   string `json:"name"`
	Values []any  `json:"values,omitempty"`
	Cases  []Case `json:"cases,omitempty"`
}

// Baseline describes the reference runs reductions are measured
// against. The baseline configuration is the spec's Base with Set
// applied on top; one baseline runs per combination of the Vary axes'
// values (axes not listed are dropped — every point along them shares
// the same baseline).
type Baseline struct {
	Set  Settings `json:"set"`
	Vary []string `json:"vary,omitempty"`
}

// Spec is a declarative study: run the cross product of Axes over
// Base, compare each point against its matched Baseline run, and
// reduce with the named Reducer. The zero value is invalid; construct
// specs in Go or decode them from JSON and Validate before executing.
type Spec struct {
	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Base        Settings  `json:"base,omitempty"`
	Axes        []Axis    `json:"axes,omitempty"`
	Baseline    *Baseline `json:"baseline,omitempty"`
	Reducer     string    `json:"reducer"`
	// MeanOver names the axes ReducePeakReductionMean averages out.
	MeanOver []string `json:"mean_over,omitempty"`
	// BestOver names the axis ReducePeakReductionBest maximizes over.
	BestOver string `json:"best_over,omitempty"`
}

// Point is one expanded grid point: its position in grid order, the
// axis labels that identify it (scalar value or case name per axis),
// and the merged settings to build its configuration from.
type Point struct {
	Index    int
	Labels   map[string]any
	Settings Settings
}

// Row is one reduced output row: the surviving axis labels plus the
// reducer's numeric outputs.
type Row struct {
	Labels map[string]any     `json:"labels"`
	Values map[string]float64 `json:"values"`
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("experiment: spec needs a name")
	}
	known := false
	for _, r := range KnownReducers() {
		if s.Reducer == r {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("experiment: unknown reducer %q (known: %v)", s.Reducer, KnownReducers())
	}
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		switch {
		case ax.Name == "":
			return fmt.Errorf("experiment: axis needs a name")
		case seen[ax.Name]:
			return fmt.Errorf("experiment: duplicate axis %q", ax.Name)
		case len(ax.Values) == 0 && len(ax.Cases) == 0:
			return fmt.Errorf("experiment: axis %q has no values", ax.Name)
		case len(ax.Values) > 0 && len(ax.Cases) > 0:
			return fmt.Errorf("experiment: axis %q mixes scalar values and cases", ax.Name)
		}
		seen[ax.Name] = true
		names := map[string]bool{}
		for _, c := range ax.Cases {
			if c.Name == "" {
				return fmt.Errorf("experiment: axis %q has an unnamed case", ax.Name)
			}
			if names[c.Name] {
				return fmt.Errorf("experiment: axis %q duplicates case %q", ax.Name, c.Name)
			}
			names[c.Name] = true
		}
	}
	if s.Baseline == nil {
		return fmt.Errorf("experiment: spec %q needs a baseline (reducer %s compares against one)",
			s.Name, s.Reducer)
	}
	for _, v := range s.Baseline.Vary {
		if !seen[v] {
			return fmt.Errorf("experiment: baseline varies unknown axis %q", v)
		}
	}
	for _, m := range s.MeanOver {
		if !seen[m] {
			return fmt.Errorf("experiment: mean_over names unknown axis %q", m)
		}
	}
	if s.Reducer == ReducePeakReductionMean && len(s.MeanOver) == 0 {
		return fmt.Errorf("experiment: reducer %s needs mean_over axes", s.Reducer)
	}
	if s.Reducer == ReducePeakReductionBest {
		if s.BestOver == "" {
			return fmt.Errorf("experiment: reducer %s needs a best_over axis", s.Reducer)
		}
		if !seen[s.BestOver] {
			return fmt.Errorf("experiment: best_over names unknown axis %q", s.BestOver)
		}
	}
	return nil
}

// axisLabel returns axis ax's label for position i (scalar value or
// case name).
func axisLabel(ax Axis, i int) any {
	if len(ax.Cases) > 0 {
		return ax.Cases[i].Name
	}
	return ax.Values[i]
}

// axisLen returns the number of positions along ax.
func axisLen(ax Axis) int {
	if len(ax.Cases) > 0 {
		return len(ax.Cases)
	}
	return len(ax.Values)
}

// applyAxis merges axis ax's position i into settings.
func applyAxis(dst Settings, ax Axis, i int) {
	if len(ax.Cases) > 0 {
		for k, v := range ax.Cases[i].Set {
			dst[k] = v
		}
		return
	}
	dst[ax.Name] = ax.Values[i]
}

// expand builds the cross product of the given axes over base, in
// grid order: the last axis varies fastest. The expansion is
// deterministic — identical specs expand to identical point lists.
func expand(base Settings, axes []Axis) []Point {
	n := 1
	for _, ax := range axes {
		n *= axisLen(ax)
	}
	pts := make([]Point, 0, n)
	idx := make([]int, len(axes))
	for {
		p := Point{
			Index:    len(pts),
			Labels:   make(map[string]any, len(axes)),
			Settings: make(Settings, len(base)+len(axes)),
		}
		for k, v := range base {
			p.Settings[k] = v
		}
		for a, ax := range axes {
			p.Labels[ax.Name] = axisLabel(ax, idx[a])
			applyAxis(p.Settings, ax, idx[a])
		}
		pts = append(pts, p)
		// Odometer increment, last axis fastest.
		a := len(axes) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < axisLen(axes[a]) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			break
		}
	}
	return pts
}

// Points expands the full grid in deterministic order.
func (s Spec) Points() []Point {
	return expand(s.Base, s.Axes)
}

// BaselinePoints expands the baseline runs: the cross product of the
// Vary axes (in spec order) over Base, with Baseline.Set applied last
// so it wins over base and axis settings.
func (s Spec) BaselinePoints() []Point {
	if s.Baseline == nil {
		return nil
	}
	var vary []Axis
	for _, ax := range s.Axes {
		for _, name := range s.Baseline.Vary {
			if ax.Name == name {
				vary = append(vary, ax)
			}
		}
	}
	pts := expand(s.Base, vary)
	for i := range pts {
		for k, v := range s.Baseline.Set {
			pts[i].Settings[k] = v
		}
	}
	return pts
}

// BaselineIndex maps each grid point to its baseline: for point p,
// out[p.Index] is the index into BaselinePoints() of the baseline
// sharing p's Vary-axis labels.
func (s Spec) BaselineIndex(points, baselines []Point) ([]int, error) {
	byKey := make(map[string]int, len(baselines))
	for i, b := range baselines {
		k, err := varyKey(s.Baseline.Vary, b.Labels)
		if err != nil {
			return nil, err
		}
		byKey[k] = i
	}
	out := make([]int, len(points))
	for i, p := range points {
		k, err := varyKey(s.Baseline.Vary, p.Labels)
		if err != nil {
			return nil, err
		}
		b, ok := byKey[k]
		if !ok {
			return nil, fmt.Errorf("experiment: point %d has no baseline for %s", i, k)
		}
		out[i] = b
	}
	return out, nil
}

// varyKey canonicalizes the labels of the named axes into a matching
// key.
func varyKey(vary []string, labels map[string]any) (string, error) {
	vals := make([]any, len(vary))
	for i, name := range vary {
		vals[i] = labels[name]
	}
	b, err := json.Marshal(vals)
	if err != nil {
		return "", fmt.Errorf("experiment: unhashable labels: %w", err)
	}
	return string(b), nil
}

// Encode writes the spec as indented JSON.
func (s Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSpec reads one JSON spec and validates it. Unknown fields are
// rejected so typos in hand-written spec files fail loudly.
func DecodeSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("experiment: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
