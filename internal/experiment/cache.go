package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key canonicalizes v into a content address: the sha256 of its JSON
// encoding. encoding/json sorts map keys, so maps with identical
// contents hash identically regardless of insertion order. Callers
// hash a fully-resolved value (defaults applied, observational fields
// stripped) so that configurations that simulate identically address
// the same cache slot.
func Key(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("experiment: hashing: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is a content-addressed store of completed run results keyed
// by canonical config hash. It is safe for concurrent use. A session
// cache lets studies that share runs (notably round-robin baselines)
// simulate each distinct configuration exactly once.
type Cache struct {
	mu      sync.Mutex
	store   map[string]entry
	enabled bool
	hits    uint64
	misses  uint64
	// verify, when non-nil, fingerprints values at Commit and
	// re-checks the fingerprint on every read: an entry mutated since
	// it was stored (a torn write, an aliasing caller scribbling on a
	// shared result) is quarantined — deleted and recomputed as a
	// miss — never silently returned.
	verify      func(any) uint64
	corruptions uint64
}

// entry pairs a stored value with the fingerprint it had at Commit.
type entry struct {
	value any
	fp    uint64
}

// NewCache returns an empty, enabled cache with no verifier.
func NewCache() *Cache {
	return &Cache{store: make(map[string]entry), enabled: true}
}

// SetVerifier installs an integrity fingerprint: fp is evaluated over
// each value when stored and again on every cache read; a mismatch
// quarantines the entry (see Corruptions). A nil fp disables
// verification. Not safe to change while reads are in flight.
func (c *Cache) SetVerifier(fp func(any) uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.verify = fp
}

// Corruptions returns how many stored entries failed integrity
// verification on read since the last Reset.
func (c *Cache) Corruptions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corruptions
}

// SetEnabled toggles the cache. While disabled, Plan dedups nothing
// and Commit stores nothing, so every requested run executes — the
// behavior studies had before the cache existed.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Enabled reports whether the cache is active.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Reset drops all stored results and zeroes the hit/miss/corruption
// counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = make(map[string]entry)
	c.hits, c.misses, c.corruptions = 0, 0, 0
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.store)
}

// Stats returns the cumulative hit and miss counts since the last
// Reset. A hit is a requested run that did not need to execute —
// answered from the store or deduplicated against an identical run in
// the same batch; a miss is a run that actually executed.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Plan describes how to satisfy one batch of keyed requests: Run
// lists the request indices that must actually execute (first
// occurrence of each missing key, in request order), and source maps
// every request index to either -1 (answered from cache; cached[i]
// holds the result) or a position in Run.
type Plan struct {
	Run    []int
	source []int
	cached []any
	keys   []string
	// corrupt counts stored entries this plan quarantined (integrity
	// check failed); each was deleted and re-planned as a miss.
	corrupt int
}

// Misses returns how many of the batch's requests must execute.
func (p *Plan) Misses() int { return len(p.Run) }

// Corrupt returns how many stored entries this plan quarantined.
func (p *Plan) Corrupt() int { return p.corrupt }

// Plan computes the dedup plan for the given keys. With the cache
// disabled the plan is the identity: every request runs, nothing is
// deduplicated, so disabled-cache executions match the pre-cache
// code paths run for run.
func (c *Cache) Plan(keys []string) *Plan {
	p := &Plan{
		source: make([]int, len(keys)),
		cached: make([]any, len(keys)),
		keys:   keys,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		p.Run = make([]int, len(keys))
		for i := range keys {
			p.Run[i] = i
			p.source[i] = i
			c.misses++
		}
		return p
	}
	firstRun := make(map[string]int, len(keys))
	for i, k := range keys {
		if e, ok := c.store[k]; ok {
			if c.verify != nil && c.verify(e.value) != e.fp {
				// Quarantine: the stored value no longer matches its
				// commit-time fingerprint. Drop it and fall through to
				// the miss path so it recomputes.
				delete(c.store, k)
				c.corruptions++
				p.corrupt++
			} else {
				p.source[i] = -1
				p.cached[i] = e.value
				c.hits++
				continue
			}
		}
		if at, ok := firstRun[k]; ok {
			p.source[i] = at
			c.hits++
			continue
		}
		c.misses++
		firstRun[k] = len(p.Run)
		p.source[i] = len(p.Run)
		p.Run = append(p.Run, i)
	}
	return p
}

// Commit merges freshly-executed results back into the batch and, if
// the cache is enabled, stores them for future sessions of the same
// process. fresh must align with plan.Run; nil entries (failed runs)
// are passed through but never cached. The returned slice aligns with
// the original request keys.
func (c *Cache) Commit(p *Plan, fresh []any) []any {
	if len(fresh) != len(p.Run) {
		panic(fmt.Sprintf("experiment: Commit got %d results for %d planned runs", len(fresh), len(p.Run)))
	}
	out := make([]any, len(p.source))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, src := range p.source {
		if src < 0 {
			out[i] = p.cached[i]
			continue
		}
		out[i] = fresh[src]
		if c.enabled && fresh[src] != nil {
			e := entry{value: fresh[src]}
			if c.verify != nil {
				e.fp = c.verify(e.value)
			}
			c.store[p.keys[i]] = e
		}
	}
	return out
}
